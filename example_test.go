package dramhit_test

import (
	"fmt"
	"sort"

	"dramhit"
)

// ExampleNew shows the batch helpers: insert a dataset, read it back.
func ExampleNew() {
	t := dramhit.New(dramhit.Config{Slots: 1 << 16})
	h := t.NewHandle()

	keys := []uint64{10, 20, 30}
	vals := []uint64{100, 200, 300}
	h.PutBatch(keys, vals)

	out := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	h.GetBatch(keys, out, found)
	fmt.Println(out, found)
	// Output: [100 200 300] [true true true]
}

// ExampleHandle_Submit demonstrates the raw asynchronous interface with
// out-of-order completion matched by request ID.
func ExampleHandle_Submit() {
	t := dramhit.New(dramhit.Config{Slots: 1 << 12})
	h := t.NewHandle()

	reqs := []dramhit.Request{
		{Op: dramhit.Put, Key: 1, Value: 11},
		{Op: dramhit.Put, Key: 2, Value: 22},
		{Op: dramhit.Get, Key: 1, ID: 100},
		{Op: dramhit.Get, Key: 2, ID: 200},
		{Op: dramhit.Get, Key: 3, ID: 300}, // absent
	}
	resps := make([]dramhit.Response, 8)
	n := 0
	for len(reqs) > 0 {
		nreq, nresp := h.Submit(reqs, resps[n:])
		reqs = reqs[nreq:]
		n += nresp
	}
	for {
		nresp, done := h.Flush(resps[n:])
		n += nresp
		if done {
			break
		}
	}

	// Completions may arrive in any order; sort by ID for stable output.
	got := resps[:n]
	sort.Slice(got, func(i, j int) bool { return got[i].ID < got[j].ID })
	for _, r := range got {
		fmt.Printf("id=%d value=%d found=%v\n", r.ID, r.Value, r.Found)
	}
	// Output:
	// id=100 value=11 found=true
	// id=200 value=22 found=true
	// id=300 value=0 found=false
}

// ExampleHandle_SubmitBytes shows the network-facing byte pipeline on the
// bucket layout: byte-string requests complete in submission order through a
// callback, so a protocol server can append each reply straight to its
// connection write buffer — no per-op channels, no reorder buffer.
func ExampleHandle_SubmitBytes() {
	t := dramhit.New(dramhit.Config{Slots: 1 << 12, Layout: dramhit.LayoutBucket})
	h := t.NewHandle()

	h.OnByteComplete(func(c dramhit.ByteCompletion) {
		fmt.Printf("id=%d op=%v found=%v value=%q\n", c.ID, c.Op, c.Found, c.Value)
	})

	h.SubmitBytes(dramhit.Put, 1, []byte("user1"), []byte("alice"))
	h.SubmitBytes(dramhit.Get, 2, []byte("user1"), nil)
	h.SubmitBytes(dramhit.Get, 3, []byte("user2"), nil) // absent
	h.SubmitBytes(dramhit.Delete, 4, []byte("user1"), nil)
	h.FlushBytes() // completions fire FIFO, in submission order
	// Output:
	// id=1 op=put found=false value=""
	// id=2 op=get found=true value="alice"
	// id=3 op=get found=false value=""
	// id=4 op=delete found=true value=""
}

// ExampleNewPartitioned shows delegated counting with DRAMHiT-P.
func ExampleNewPartitioned() {
	p := dramhit.NewPartitioned(dramhit.PartitionedConfig{
		Slots: 1 << 12, Producers: 1, Consumers: 2,
	})
	p.Start()
	defer p.Close()

	w := p.NewWriteHandle()
	defer w.Close()
	for i := 0; i < 5; i++ {
		w.Upsert(777, 1) // fire-and-forget, applied by the partition owner
	}
	w.Barrier() // read-your-writes point

	r := p.NewReadHandle()
	v, ok := r.Get(777)
	fmt.Println(v, ok)
	// Output: 5 true
}

// ExampleNewResizable shows the auto-growing variant.
func ExampleNewResizable() {
	t := dramhit.NewResizable(16)
	for k := uint64(0); k < 1000; k++ {
		t.Put(k, k*2)
	}
	v, _ := t.Get(999)
	fmt.Println(t.Len(), v, t.Grows() > 0)
	// Output: 1000 1998 true
}
