// Package-level benchmarks: one testing.B benchmark per table and figure of
// the paper's evaluation (driving the same experiment runners as
// cmd/dramhit-bench in quick mode), plus the ablations DESIGN.md calls out.
// Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports Mops (or cycles/msg) for the headline series as
// custom metrics, so `go test -bench` output doubles as a compact
// reproduction summary.
package dramhit_test

import (
	"testing"

	"dramhit/internal/bench"
	"dramhit/internal/memsim"
	"dramhit/internal/simtable"
)

// runExperiment executes a registered experiment once per benchmark
// iteration and reports the last value of each series as a metric.
func runExperiment(b *testing.B, id string) {
	r, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var a *bench.Artifact
	for i := 0; i < b.N; i++ {
		a = r(bench.Config{Quick: true, Seed: 42})
	}
	for _, s := range a.Series {
		if len(s.Y) == 0 {
			continue
		}
		b.ReportMetric(s.Y[len(s.Y)-1], metricName(s.Name))
	}
}

func metricName(series string) string {
	out := make([]rune, 0, len(series))
	for _, r := range series {
		switch r {
		case ' ', '(', ')':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out) + "_last"
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6a(b *testing.B)  { runExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { runExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)  { runExperiment(b, "fig6c") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)  { runExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { runExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)  { runExperiment(b, "fig8c") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10a(b *testing.B) { runExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { runExperiment(b, "fig10b") }
func BenchmarkFig10c(b *testing.B) { runExperiment(b, "fig10c") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12a(b *testing.B) { runExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B) { runExperiment(b, "fig12b") }

// Ablations (DESIGN.md §6).
func BenchmarkAblationWindow(b *testing.B)  { runExperiment(b, "ablation-window") }
func BenchmarkAblationRatio(b *testing.B)   { runExperiment(b, "ablation-ratio") }
func BenchmarkAblationSection(b *testing.B) { runExperiment(b, "ablation-section") }

// BenchmarkHeadline reproduces the abstract's headline configuration in one
// number each: large uniform table, 64 Intel threads.
func BenchmarkHeadline(b *testing.B) {
	cases := []struct {
		name string
		kind simtable.Kind
		mix  simtable.OpMix
	}{
		{"DRAMHiT-reads", simtable.DRAMHiT, simtable.Finds},
		{"DRAMHiT-writes", simtable.DRAMHiT, simtable.Inserts},
		{"Folklore-reads", simtable.Folklore, simtable.Finds},
		{"Folklore-writes", simtable.Folklore, simtable.Inserts},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				r := simtable.Run(simtable.Config{
					Machine: memsim.IntelSkylake(), Kind: c.kind, Threads: 64,
					Slots: simtable.DefaultLarge, MeasureOps: 60_000, Seed: 42,
				}, c.mix)
				mops = r.Mops
			}
			b.ReportMetric(mops, "Mops")
		})
	}
}
