// Package dramhit is a Go implementation of DRAMHiT, the hash table
// architected for the speed of DRAM (Narayanan, Detweiler, Huang, Burtsev —
// EuroSys 2023), together with the baselines and substrates of the paper's
// evaluation.
//
// The library treats the memory subsystem the way a distributed system
// treats its network: requests are submitted in batches through an
// asynchronous interface, every table access is prefetched before it is
// touched, completions arrive out of order carrying caller-chosen IDs, and —
// in the partitioned variant — updates are delegated over explicit message
// queues to partition-owner threads so contended cache lines never bounce
// between cores.
//
// # The three tables
//
//   - New / Table / Handle: the core DRAMHiT table. Per-goroutine Handles
//     own a prefetch pipeline; Submit/Flush move batches through it.
//   - NewPartitioned / Partitioned: DRAMHiT-P. Reads execute directly from
//     any goroutine; writes are delegated (fire-and-forget) to consumer
//     goroutines, each the single writer of its partitions.
//   - NewFolklore: the synchronous lock-free baseline (Maier et al.) the
//     paper builds on and measures against.
//
// # Quick start
//
//	t := dramhit.New(dramhit.Config{Slots: 1 << 20})
//	h := t.NewHandle()
//	h.PutBatch(keys, values)
//	vals := make([]uint64, len(keys))
//	found := make([]bool, len(keys))
//	h.GetBatch(keys, vals, found)
//
// Values equal to ReservedValue must not be stored (the claim-then-publish
// protocol reserves it); every key value, including 0 and ^0, is usable.
//
// The full reproduction of the paper's evaluation — the cycle-level memory
// simulator, the figure harness, the k-mer macrobenchmark — lives under
// internal/ and is driven by the cmd/ tools; see README.md and DESIGN.md.
package dramhit

import (
	"net/http"

	idramhit "dramhit/internal/dramhit"
	"dramhit/internal/dramhitp"
	"dramhit/internal/folklore"
	"dramhit/internal/growt"
	"dramhit/internal/obs"
	"dramhit/internal/shardmap"
	"dramhit/internal/slotarr"
	"dramhit/internal/table"
)

// Op identifies a hash-table operation in a batched request.
type Op = table.Op

// Operation kinds for Request.Op.
const (
	// Get looks up Key; it is the only operation that produces a Response.
	Get = table.Get
	// Put inserts or silently overwrites.
	Put = table.Put
	// Upsert inserts Value or atomically adds it to the existing value.
	Upsert = table.Upsert
	// Delete tombstones the key (slots are reclaimed on resize only).
	Delete = table.Delete
)

// Request is one element of a submitted batch; ID is echoed in the matching
// Response so out-of-order completions can be matched.
type Request = table.Request

// Response is one element of a completed batch.
type Response = table.Response

// ReservedValue is the single value-space sentinel used by the atomicity
// protocol; storing it is not allowed.
const ReservedValue = slotarr.InFlightValue

// ProbeKernel selects the hot-path probe strategy (Config.ProbeKernel and
// PartitionedConfig.ProbeKernel): KernelSWAR (the zero value and default)
// probes a whole 64-byte cache line per step with the lane-parallel
// branch-free kernel; KernelScalar keeps the slot-by-slot loop for ablation
// and A/B benchmarking.
type ProbeKernel = table.ProbeKernel

// Probe kernel choices.
const (
	// KernelSWAR is the line-granular lane-compare kernel (default).
	KernelSWAR = table.KernelSWAR
	// KernelScalar is the slot-by-slot probe loop (A/B baseline).
	KernelScalar = table.KernelScalar
)

// ProbeFilter selects whether probes consult the packed tag-fingerprint
// sidecar before loading key lines (Config.ProbeFilter and
// PartitionedConfig.ProbeFilter): FilterTags (the zero value and default)
// rejects cache lines whose tag word proves no lane can match; FilterNone
// disables the sidecar for ablation. Scalar-kernel tables always run
// FilterNone — the filter is line-granular.
type ProbeFilter = table.ProbeFilter

// Probe filter choices.
const (
	// FilterTags gates line probes on the packed tag sidecar (default).
	FilterTags = table.FilterTags
	// FilterNone probes key lines unconditionally (A/B baseline).
	FilterNone = table.FilterNone
)

// Layout selects the physical slot layout (Config.Layout and
// PartitionedConfig.Layout): LayoutFlat (the zero value and default) is the
// open-addressed 16-byte-slot array with the optional tag sidecar —
// bit-identical to pre-layout builds; LayoutBucket is the one-line bucket
// layout: 64-byte buckets whose first word holds the publish bitmap and
// seven fingerprints in-cell, whose seven slots reference records in a
// log-structured arena, and which resizes itself — enabling the byte-string
// API (GetBytes/PutBytes/UpsertBytes/DeleteBytes) on handles.
type Layout = table.Layout

// Layout choices.
const (
	// LayoutFlat is the open-addressed flat slot array (default).
	LayoutFlat = table.LayoutFlat
	// LayoutBucket is the in-cell-metadata bucket layout over the KV arena.
	LayoutBucket = table.LayoutBucket
)

// ParseLayout maps "flat" (or "") and "bucket" to the Layout values.
func ParseLayout(s string) (Layout, error) { return table.ParseLayout(s) }

// Combining selects whether handles merge in-flight same-key requests
// (Config.Combining and PartitionedConfig.Combining): CombineOn (the zero
// value and default) folds duplicate Upserts and piggybacks duplicate Gets
// inside the prefetch window; CombineOff disables merging for A/B runs.
type Combining = table.Combining

// Combining choices.
const (
	// CombineOn merges in-window duplicate-key requests (default).
	CombineOn = table.CombineOn
	// CombineOff submits every request individually (A/B baseline).
	CombineOff = table.CombineOff
)

// ParseCombining maps "on" (or "") and "off" to the Combining values.
func ParseCombining(s string) (Combining, error) { return table.ParseCombining(s) }

// GovernorMode selects the adaptive pipeline governor (Config.Governor and
// PartitionedConfig.Governor): GovernorOff (the zero value) keeps handles
// exactly as configured — bit-identical to pre-governor builds; GovernorAuto
// attaches a per-table hill-climbing controller that retunes the live
// pipeline (prefetch-window depth, in-window combining, the tag filter, and
// a synchronous direct mode) from the handles' own counters; GovernorDirect
// forces the direct mode unconditionally — the folklore execution model on
// DRAMHiT's kernel.
type GovernorMode = table.GovernorMode

// Governor modes.
const (
	// GovernorOff disables adaptation (the zero value; bit-identical to an
	// ungoverned table).
	GovernorOff = table.GovernorOff
	// GovernorAuto self-tunes window/combining/filter/direct per epoch.
	GovernorAuto = table.GovernorAuto
	// GovernorDirect pins the synchronous inline probe path.
	GovernorDirect = table.GovernorDirect
)

// ParseGovernor maps "off" (or ""), "auto" and "direct" to the GovernorMode
// values.
func ParseGovernor(s string) (GovernorMode, error) { return table.ParseGovernor(s) }

// ResizeMode selects how the resizable table migrates at a doubling:
// ResizeIncremental (the zero value and default) migrates cooperatively in
// fixed-size chunks with no global write stall; ResizeGate migrates the
// whole table under the exclusive gate for A/B runs.
type ResizeMode = table.ResizeMode

// Resize mode choices.
const (
	// ResizeIncremental migrates in helping-claimed chunks (default).
	ResizeIncremental = table.ResizeIncremental
	// ResizeGate migrates stop-the-world under the gate (A/B baseline).
	ResizeGate = table.ResizeGate
)

// ParseResizeMode maps "incremental" (or "") and "gate" to the ResizeMode
// values.
func ParseResizeMode(s string) (ResizeMode, error) { return table.ParseResizeMode(s) }

// Config parameterizes the core table.
type Config = idramhit.Config

// Table is the core DRAMHiT hash table.
type Table = idramhit.Table

// Handle is a single-goroutine accessor owning a prefetch pipeline.
type Handle = idramhit.Handle

// Stats carries per-handle observability counters.
type Stats = idramhit.Stats

// ByteCompletion reports one finished byte-string request to the callback a
// Handle.OnByteComplete armed — the completion record of the network-facing
// byte pipeline (SubmitBytes/FlushBytes, bucket layout only).
type ByteCompletion = idramhit.ByteCompletion

// DefaultPrefetchWindow is the default pipeline depth.
const DefaultPrefetchWindow = idramhit.DefaultPrefetchWindow

// New creates a DRAMHiT table.
func New(cfg Config) *Table { return idramhit.New(cfg) }

// BigTable stores tuples larger than 16 bytes under the paper's versioned
// (seqlock) atomicity protocol.
type BigTable = idramhit.BigTable

// NewBigTable creates a BigTable of n slots with vsize-byte values.
func NewBigTable(n uint64, vsize int) *BigTable { return idramhit.NewBigTable(n, vsize) }

// PartitionedConfig parameterizes DRAMHiT-P.
type PartitionedConfig = dramhitp.Config

// Partitioned is the DRAMHiT-P table: partitioned storage, delegated
// writes, direct reads.
type Partitioned = dramhitp.Table

// WriteHandle is a per-goroutine delegated-write endpoint.
type WriteHandle = dramhitp.WriteHandle

// ReadHandle is a per-goroutine direct-read pipeline.
type ReadHandle = dramhitp.ReadHandle

// NewPartitioned creates a DRAMHiT-P table; call Start before use and Close
// when done.
func NewPartitioned(cfg PartitionedConfig) *Partitioned { return dramhitp.New(cfg) }

// Folklore is the synchronous lock-free baseline table.
type Folklore = folklore.Table

// NewFolklore creates a Folklore table with n slots.
func NewFolklore(n uint64) *Folklore { return folklore.New(n) }

// Map is the minimal synchronous interface implemented by the baselines and
// by the Sync adapters of the asynchronous tables.
type Map = table.Map

// Resizable is an automatically growing table built on the Folklore layout —
// the capability the paper defers to Growt. Operations take a shared gate
// (one uncontended atomic each); resizes migrate incrementally: helping
// operations copy fixed-size chunks into a successor table and retire old
// slots with the MovedKey sentinel, so no operation ever stalls for more
// than one chunk copy. See internal/growt for the protocol.
type Resizable = growt.Table

// NewResizable creates a resizable table with an initial capacity of n
// slots; it grows (or compacts tombstones) when fill exceeds 75%.
func NewResizable(n uint64) *Resizable { return growt.New(n) }

// NewResizableMode is NewResizable with an explicit migration mode —
// ResizeGate selects the stop-the-world baseline the resize-ab experiment
// compares against.
func NewResizableMode(n uint64, mode ResizeMode) *Resizable {
	return growt.New(n, growt.WithResizeMode(mode))
}

// Sharded is the horizontal shard router over the Folklore layout: keys are
// ranged over N independent shards by a dedicated selector hash, and shards
// split (or merge) online — cooperatively, chunk by chunk, never stopping
// the world — under fill pressure or the explicit Split/Merge API. See
// internal/shardmap for the protocol.
type Sharded = shardmap.Map

// NewSharded creates a sharded map with n total slots across the initial
// shard count (default 1; see ShardedOption).
func NewSharded(n uint64, opts ...ShardedOption) *Sharded { return shardmap.New(n, opts...) }

// ShardedOption configures NewSharded.
type ShardedOption = shardmap.Option

// WithShards sets the initial shard count (a power of two).
func WithShards(n int) ShardedOption { return shardmap.WithShards(n) }

// ShardedBatched routes the batched Submit pipeline over N dramhit shards,
// each with its own prefetch windows, combining and governor; handles
// scatter a batch across shard-local rings and gather completions with no
// global lock.
type ShardedBatched = shardmap.Batched

// ShardedBatchedConfig parameterizes NewShardedBatched; Table.Slots is the
// total capacity, divided across shards.
type ShardedBatchedConfig = shardmap.BatchedConfig

// NewShardedBatched creates the sharded batched table.
func NewShardedBatched(cfg ShardedBatchedConfig) *ShardedBatched {
	return shardmap.NewBatched(cfg)
}

// Observability is the unified observability registry (see internal/obs):
// attach one via Config.Observe / PartitionedConfig.Observe (or
// Folklore.Observe) to collect sharded hot-path counters, mergeable latency
// histograms, pipeline gauges, and sampled request-lifecycle traces, and
// serve them over HTTP with ServeObservability.
type Observability = obs.Registry

// NewObservability creates a registry with the default trace configuration
// (4096-event ring, 1-in-256 request sampling).
func NewObservability() *Observability { return obs.New() }

// NewObservabilityWith creates a registry with an explicit trace-ring
// capacity and sampling rate; traceCap 0 disables lifecycle tracing.
func NewObservabilityWith(traceCap, sampleN int) *Observability {
	return obs.NewWith(traceCap, sampleN)
}

// ServeObservability exposes reg on addr (e.g. ":8090"): Prometheus text
// format at /metrics, sampled lifecycle events at /trace, expvar at
// /debug/vars, and net/http/pprof at /debug/pprof/. Close the returned
// server to stop.
func ServeObservability(addr string, reg *Observability) (*http.Server, error) {
	return obs.Serve(addr, reg)
}
