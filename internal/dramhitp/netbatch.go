package dramhitp

import (
	"time"

	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// The partitioned reader's byte-lookup pipeline: the dramhitp twin of
// dramhit's netbatch. Reads are not delegated — any thread probes any
// partition directly — so a byte Get pipelines exactly like a uint64 one:
// prefetch the home bucket line of the key's partition at submit, resolve
// synchronously at drain. Completions fire in submission order (the bucket
// engine resolves a probe in one call, so there is no out-of-order retire),
// which is what lets a protocol server write replies straight into a
// connection buffer from the callback.
//
// Writes stay on the WriteHandle's synchronous byte API (PutBytes and
// friends): variable-length records do not fit delegation messages, and the
// engine's CAS protocol already serializes racing writers.

// bGetPending is one in-flight byte lookup: the caller's key (owned by the
// caller until the completion fires), the echo id, and the partition/hash
// pair located at submit so the drain skips re-hashing.
type bGetPending struct {
	key   []byte
	id    uint64
	part  uint64
	hv    uint64
	start int64 // submit stamp for op-latency recording; 0 = not armed
}

// OnGetBytesComplete arms the byte-lookup pipeline with its completion
// callback and allocates the ring (same capacity as the uint64 ring). Must
// be called before SubmitGetBytes and only while no byte lookups are in
// flight. Bucket layout only. value aliases the arena record — consume it
// inside the callback or copy.
func (r *ReadHandle) OnGetBytesComplete(fn func(id uint64, value []byte, found bool)) {
	r.t.requireBucket()
	if r.PendingGetBytes() != 0 {
		panic("dramhitp: OnGetBytesComplete with byte lookups in flight")
	}
	r.onBGet = fn
	if r.bq == nil {
		r.bq = make([]bGetPending, len(r.q))
	}
}

// PendingGetBytes returns the number of in-flight byte lookups.
func (r *ReadHandle) PendingGetBytes() int { return r.bqhead - r.bqtail }

// SubmitGetBytes enqueues one byte-string lookup after prefetching its home
// bucket line, draining the oldest first if the window is full. Drained
// completions fire before SubmitGetBytes returns, in submission order. Byte
// lookups order only against other byte lookups on this handle.
func (r *ReadHandle) SubmitGetBytes(id uint64, key []byte) {
	if r.onBGet == nil {
		panic("dramhitp: SubmitGetBytes before OnGetBytesComplete")
	}
	for r.PendingGetBytes() >= r.window {
		r.drainGetBytes()
	}
	part, hv := r.t.locateBucketBytes(key)
	r.t.parts[part].bkt.Prefetch(hv)
	if r.hot != nil {
		// Byte keys rank by hash in the sketch (uint64 identities).
		r.hot.OfferSampled(hv)
	}
	p := bGetPending{key: key, id: id, part: part, hv: hv}
	if r.opLat {
		p.start = time.Now().UnixNano()
	}
	r.bq[r.bqhead&r.mask] = p
	r.bqhead++
}

// FlushGetBytes drains every in-flight byte lookup, firing the completion
// callback for each in submission order, then publishes observability
// counters (the byte pipeline's Flush-boundary publish).
func (r *ReadHandle) FlushGetBytes() {
	for r.PendingGetBytes() > 0 {
		r.drainGetBytes()
	}
	if r.obsw != nil {
		r.obsPublish()
	}
}

// drainGetBytes resolves the oldest byte lookup against its partition's
// bucket engine — the home line was prefetched at submit — and fires the
// completion callback.
func (r *ReadHandle) drainGetBytes() {
	slot := &r.bq[r.bqtail&r.mask]
	p := *slot
	*slot = bGetPending{} // release the caller's buffer promptly
	r.bqtail++

	bh := r.rbhs[p.part]
	pre := bh.Lines + bh.Hops
	v, ok := bh.Get(p.key)
	r.Filter.KeyLines += bh.Lines + bh.Hops - pre
	r.complete(ok)
	if p.start != 0 {
		r.obsw.Op[obs.OpClass(table.Get, ok)].Record(uint64(time.Now().UnixNano() - p.start))
	}
	r.onBGet(p.id, v, ok)
}
