package dramhitp

import (
	"sync"
	"testing"

	"dramhit/internal/table"
	"dramhit/internal/tabletest"
	"dramhit/internal/workload"
)

func newTestTable(n uint64, kernel table.ProbeKernel) *Table {
	t := New(Config{
		Slots:                 n,
		Producers:             32, // headroom for conformance clones
		Consumers:             2,
		PartitionsPerConsumer: 2,
		ProbeKernel:           kernel,
	})
	t.Start()
	return t
}

func TestConformance(t *testing.T) {
	tabletest.Run(t, "DRAMHiT-P", func(n uint64) table.Map {
		return newTestTable(n, table.KernelScalar).NewSync()
	}, tabletest.LooseCapacity())
}

func TestConformanceSIMD(t *testing.T) {
	tabletest.Run(t, "DRAMHiT-P-SIMD", func(n uint64) table.Map {
		return newTestTable(n, table.KernelSWAR).NewSync()
	}, tabletest.LooseCapacity())
}

func TestPartitionMapping(t *testing.T) {
	tbl := New(Config{Slots: 4096, Producers: 1, Consumers: 4, PartitionsPerConsumer: 3})
	if tbl.Partitions() != 12 {
		t.Fatalf("partitions = %d, want 12", tbl.Partitions())
	}
	// Every key must map to a valid partition and owner, and the owner
	// assignment must be round-robin.
	for _, k := range workload.UniqueKeys(1, 10000) {
		part, local := tbl.locate(k)
		if part >= 12 {
			t.Fatalf("partition %d out of range", part)
		}
		if local >= tbl.partSlots {
			t.Fatalf("local slot %d out of range", local)
		}
		if owner := tbl.ownerOf(part); owner != int(part%4) {
			t.Fatalf("owner of partition %d = %d", part, owner)
		}
	}
	tbl.Start()
	tbl.Close()
}

func TestPartitionDistribution(t *testing.T) {
	// Uniform keys must spread across partitions roughly evenly.
	tbl := New(Config{Slots: 1 << 16, Producers: 1, Consumers: 4, PartitionsPerConsumer: 2})
	counts := make([]int, tbl.Partitions())
	const n = 80000
	for _, k := range workload.UniqueKeys(2, n) {
		part, _ := tbl.locate(k)
		counts[part]++
	}
	mean := n / tbl.Partitions()
	for p, c := range counts {
		if c < mean*8/10 || c > mean*12/10 {
			t.Errorf("partition %d has %d keys, mean %d", p, c, mean)
		}
	}
	tbl.Start()
	tbl.Close()
}

func TestFireAndForgetPipeline(t *testing.T) {
	// The real usage pattern: writers stream updates without barriers,
	// flush at the end, then readers verify.
	tbl := New(Config{Slots: 1 << 15, Producers: 4, Consumers: 3})
	tbl.Start()
	defer tbl.Close()

	const perWriter = 4000
	keys := workload.UniqueKeys(3, 4*perWriter)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wh := tbl.NewWriteHandle()
			defer wh.Close()
			for _, k := range keys[w*perWriter : (w+1)*perWriter] {
				wh.Put(k, k^0xdead)
			}
			wh.Barrier()
		}(w)
	}
	wg.Wait()

	r := tbl.NewReadHandle()
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	r.GetBatch(keys, vals, found)
	for i, k := range keys {
		if !found[i] || vals[i] != k^0xdead {
			t.Fatalf("key %d: (%d, %v)", i, vals[i], found[i])
		}
	}
	if r.Gets != uint64(len(keys)) || r.Hits != uint64(len(keys)) {
		t.Fatalf("reader stats: gets=%d hits=%d", r.Gets, r.Hits)
	}
	if tbl.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tbl.Len(), len(keys))
	}
}

func TestUpsertCountingAcrossWriters(t *testing.T) {
	// Delegated upserts from many writers must aggregate exactly: the
	// single-writer-per-partition design serializes them.
	tbl := New(Config{Slots: 8192, Producers: 6, Consumers: 2})
	tbl.Start()
	defer tbl.Close()
	keys := workload.UniqueKeys(4, 64)
	const rounds = 500
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wh := tbl.NewWriteHandle()
			defer wh.Close()
			for r := 0; r < rounds; r++ {
				for _, k := range keys {
					wh.Upsert(k, 1)
				}
			}
			wh.Barrier()
		}()
	}
	wg.Wait()
	r := tbl.NewReadHandle()
	for _, k := range keys {
		if v, ok := r.Get(k); !ok || v != 6*rounds {
			t.Fatalf("count for %d = (%d, %v), want %d", k, v, ok, 6*rounds)
		}
	}
}

func TestPartitionFullFlagDeniesInserts(t *testing.T) {
	// Saturate one tiny partition; the full flag must start denying
	// producer-side sends and Dropped must grow, while other partitions
	// continue to accept.
	tbl := New(Config{Slots: 64, Producers: 1, Consumers: 2, PartitionsPerConsumer: 2})
	tbl.Start()
	defer tbl.Close()
	w := tbl.NewWriteHandle()
	defer w.Close()

	denied := 0
	for _, k := range workload.UniqueKeys(5, 4096) {
		if !w.Put(k, 1) {
			denied++
		}
	}
	w.Barrier()
	if denied == 0 {
		t.Fatal("no insert was denied despite 64 slots and 4096 keys")
	}
	total := tbl.Len()
	if total > 64 {
		t.Fatalf("Len = %d exceeds capacity 64", total)
	}
	if total < 48 {
		t.Fatalf("Len = %d; partitions should be nearly full", total)
	}
	if tbl.Dropped() == 0 {
		t.Fatal("Dropped counter did not increase")
	}
}

func TestReadsDontBlockOnWriters(t *testing.T) {
	// Readers proceed against partitions while a writer streams updates.
	tbl := New(Config{Slots: 1 << 14, Producers: 1, Consumers: 2})
	tbl.Start()
	defer tbl.Close()
	keys := workload.UniqueKeys(6, 2000)
	w := tbl.NewWriteHandle()
	for _, k := range keys {
		w.Put(k, 5)
	}
	w.Barrier()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w.Put(keys[i%len(keys)], uint64(i))
		}
	}()
	r := tbl.NewReadHandle()
	for round := 0; round < 50; round++ {
		for _, k := range keys[:100] {
			if _, ok := r.Get(k); !ok {
				t.Error("key vanished during concurrent writes")
			}
		}
	}
	close(stop)
	wg.Wait()
	w.Close()
}

func TestSIMDAndScalarAgree(t *testing.T) {
	// The SIMD probe must produce the same table contents as the scalar
	// probe for the same input stream, including tombstone handling.
	mkTable := func(kernel table.ProbeKernel) *Table {
		tbl := New(Config{Slots: 2048, Producers: 1, Consumers: 2, ProbeKernel: kernel})
		tbl.Start()
		return tbl
	}
	a, b := mkTable(table.KernelScalar), mkTable(table.KernelSWAR)
	defer a.Close()
	defer b.Close()
	wa, wb := a.NewWriteHandle(), b.NewWriteHandle()
	keys := workload.UniqueKeys(7, 900)
	for i, k := range keys {
		wa.Put(k, k+1)
		wb.Put(k, k+1)
		if i%7 == 0 {
			wa.Delete(k)
			wb.Delete(k)
		}
		if i%11 == 0 {
			wa.Upsert(k, 3)
			wb.Upsert(k, 3)
		}
	}
	wa.Barrier()
	wb.Barrier()
	ra, rb := a.NewReadHandle(), b.NewReadHandle()
	for _, k := range keys {
		va, oka := ra.Get(k)
		vb, okb := rb.Get(k)
		if va != vb || oka != okb {
			t.Fatalf("divergence on key %d: scalar (%d,%v) simd (%d,%v)", k, va, oka, vb, okb)
		}
	}
	wa.Close()
	wb.Close()
}

func TestSIMDReadPipelineAgreesWithScalar(t *testing.T) {
	// The branchless read pipeline must return exactly what the scalar one
	// does, including misses and reprobe chains.
	mk := func(kernel table.ProbeKernel) (*Table, []uint64) {
		tbl := New(Config{Slots: 4096, Producers: 1, Consumers: 2, ProbeKernel: kernel})
		tbl.Start()
		w := tbl.NewWriteHandle()
		keys := workload.UniqueKeys(42, 2500) // ~61% fill: real reprobes
		for _, k := range keys {
			w.Put(k, k^7)
		}
		w.Barrier()
		w.Close()
		return tbl, keys
	}
	scalarT, keys := mk(table.KernelScalar)
	simdT, _ := mk(table.KernelSWAR)
	defer scalarT.Close()
	defer simdT.Close()

	probe := append(append([]uint64{}, keys...), workload.UniqueKeys(43, 500)...) // hits + misses
	for _, tbl := range []*Table{scalarT, simdT} {
		r := tbl.NewReadHandle()
		vals := make([]uint64, len(probe))
		found := make([]bool, len(probe))
		r.GetBatch(probe, vals, found)
		for i, k := range probe {
			wantFound := i < len(keys)
			if found[i] != wantFound {
				t.Fatalf("kernel=%v key %d: found=%v want %v", tbl.kernel, i, found[i], wantFound)
			}
			if wantFound && vals[i] != k^7 {
				t.Fatalf("kernel=%v key %d: value %d want %d", tbl.kernel, i, vals[i], k^7)
			}
		}
	}
}

func TestCloseIsIdempotentAndSafe(t *testing.T) {
	tbl := New(Config{Slots: 256, Producers: 2, Consumers: 1})
	tbl.Start()
	w := tbl.NewWriteHandle()
	w.Put(1, 2)
	w.Close()
	tbl.Close()
	tbl.Close() // second close is a no-op
}

func TestStartTwicePanics(t *testing.T) {
	tbl := New(Config{Slots: 256})
	tbl.Start()
	defer tbl.Close()
	defer func() {
		if recover() == nil {
			t.Error("second Start did not panic")
		}
	}()
	tbl.Start()
}

func TestTooManyWriteHandlesPanics(t *testing.T) {
	tbl := New(Config{Slots: 256, Producers: 1, Consumers: 1})
	tbl.Start()
	defer tbl.Close()
	w := tbl.NewWriteHandle()
	defer w.Close()
	defer func() {
		if recover() == nil {
			t.Error("excess NewWriteHandle did not panic")
		}
	}()
	tbl.NewWriteHandle()
}
