package dramhitp

import (
	"dramhit/internal/table"
)

// Sync adapts the partitioned table to the synchronous table.Map interface
// for the conformance suite and for callers that need read-your-writes. It
// issues a delegation barrier after every update, which forfeits the entire
// point of fire-and-forget delegation — use WriteHandle/ReadHandle directly
// in performance-sensitive code.
type Sync struct {
	t *Table
	w *WriteHandle
	r *ReadHandle
	// dirty is set by writes and cleared by the barrier a subsequent read
	// issues, so write bursts cost one barrier, not one per write.
	dirty bool
}

// settle barriers if there are unexecuted writes from this view.
func (s *Sync) settle() {
	if s.dirty {
		s.w.Barrier()
		s.dirty = false
	}
}

// NewSync returns a synchronous single-goroutine view. Each view consumes
// one producer slot; Config.Producers bounds how many can exist. The view's
// WriteHandle is closed by Table.Close (via closeIssued), so callers using
// NewSync exclusively can simply Close the table... but see CloseSync.
func (t *Table) NewSync() *Sync {
	return &Sync{t: t, w: t.NewWriteHandle(), r: t.NewReadHandle()}
}

// Clone implements the tabletest.Cloner contract: a fresh single-goroutine
// view over the same table.
func (s *Sync) Clone() table.Map { return s.t.NewSync() }

// CloseSync closes the view's writer endpoint.
func (s *Sync) CloseSync() { s.w.Close() }

// Shutdown closes the underlying table (all producer endpoints and the
// delegation threads). All goroutines using views of the table must have
// quiesced. It implements the conformance suite's teardown hook.
func (s *Sync) Shutdown() { s.t.Close() }

// Get implements table.Map (direct, non-delegated read, after settling any
// outstanding writes from this view).
func (s *Sync) Get(key uint64) (uint64, bool) {
	s.settle()
	return s.r.Get(key)
}

// Put implements table.Map. The write is delegated fire-and-forget; a
// partition-full denial reports false.
func (s *Sync) Put(key, value uint64) bool {
	if !s.w.Put(key, value) {
		return false
	}
	s.dirty = true
	return true
}

// Upsert implements table.Map. Reading the resulting value requires a
// barrier (delegated updates return no result).
func (s *Sync) Upsert(key, delta uint64) (uint64, bool) {
	if !s.w.Upsert(key, delta) {
		return 0, false
	}
	s.w.Barrier()
	s.dirty = false
	return s.r.Get(key)
}

// Delete implements table.Map.
func (s *Sync) Delete(key uint64) bool {
	s.settle()
	_, present := s.r.Get(key)
	s.w.Delete(key)
	s.dirty = true
	return present
}

// Release settles outstanding writes; a goroutine that used a cloned view
// calls it before handing control back (tabletest's concurrency helpers do).
func (s *Sync) Release() { s.settle() }

// Len implements table.Map.
func (s *Sync) Len() int {
	s.settle()
	return s.t.Len()
}

// Cap implements table.Map.
func (s *Sync) Cap() int { return s.t.Cap() }

var _ table.Map = (*Sync)(nil)
