// Package dramhitp implements DRAMHiT-P, the partitioned variant of DRAMHiT
// (paper §3.2): the key space is split across non-overlapping partitions;
// read operations execute directly on any partition from any thread with no
// atomic instructions, while update operations are delegated over the
// message-passing fabric to the single thread that owns the destination
// partition. Single-writer partitions eliminate coherence contention under
// skew — under high contention explicit delegation outperforms the hardware
// coherence protocol.
//
// Updates issued through the delegated interface return no result
// (fire-and-forget), which is what keeps a delegated update within a few
// tens of cycles. A WriteHandle.Barrier gives read-your-writes when callers
// need it.
package dramhitp

import (
	"sync"
	"sync/atomic"

	"dramhit/internal/arena"
	"dramhit/internal/delegation"
	"dramhit/internal/governor"
	"dramhit/internal/hashfn"
	"dramhit/internal/obs"
	"dramhit/internal/simd"
	"dramhit/internal/slotarr"
	"dramhit/internal/table"
)

// Config parameterizes a Table.
type Config struct {
	// Slots is the total capacity across all partitions.
	Slots uint64
	// Producers is the number of writer (application) threads that will
	// request WriteHandles.
	Producers int
	// Consumers is the number of delegation threads; the paper finds a
	// 1-to-3 producer:consumer split optimal for write-heavy workloads.
	Consumers int
	// PartitionsPerConsumer sets how many partitions each delegation thread
	// owns (default 1; the paper's Figure 3 shows 3).
	PartitionsPerConsumer int
	// PrefetchWindow is the read-pipeline depth (default
	// DefaultPrefetchWindow).
	PrefetchWindow int
	// QueueCapacity is the per-delegation-queue capacity (default 512).
	QueueCapacity int
	// Sections per queue (default capacity/8).
	Sections int
	// Hash overrides the hash function (default hashfn.City64).
	Hash func(uint64) uint64
	// ProbeKernel selects the probe strategy of partition owners and the
	// read path. The zero value (table.KernelSWAR) is the branchless
	// cache-line-wide probe of the DRAMHiT-P-SIMD variant (§3.4);
	// table.KernelScalar keeps the slot-by-slot loop for ablation.
	ProbeKernel table.ProbeKernel
	// ProbeFilter selects whether the SWAR probe paths (owner-local updates
	// and the direct/pipelined read paths) consult the packed
	// tag-fingerprint sidecar before loading key lines. The zero value
	// (table.FilterTags) is the default; table.FilterNone is the A/B
	// baseline. Scalar-kernel tables are forced to FilterNone.
	ProbeFilter table.ProbeFilter
	// UseSIMD is the legacy switch for the line-wide probe; it is implied
	// by the default and overrides ProbeKernel when set.
	UseSIMD bool
	// Combining selects whether handles merge same-key requests in flight:
	// WriteHandles fold duplicate-key Upserts into one delegated message,
	// ReadHandles piggyback duplicate-key Gets on one pipelined probe. The
	// zero value (table.CombineOn) is the default; table.CombineOff is the
	// A/B baseline.
	Combining table.Combining
	// Observe, when non-nil, attaches the table to the observability
	// registry: each handle registers a padded counter shard published at
	// batch boundaries (Flush/Barrier for writers, Submit/Flush for
	// readers), plus a table-level pull source of quiescent-safe aggregates.
	// Nil — the default — is bit-identical and allocation-free.
	Observe *obs.Registry
	// Layout selects the physical slot layout of every partition. The zero
	// value (table.LayoutFlat) is the interleaved uint64 array, bit-identical
	// to prior configurations. table.LayoutBucket gives each partition a
	// one-line-bucket index over one arena shared across all partitions:
	// probes touch a single cache line, partitions resize themselves (updates
	// are never dropped for a full partition), reserved keys are ordinary
	// byte strings (no side slots), and the handles grow byte-string
	// operations. A bucket table ignores Config.Hash, ProbeKernel and
	// ProbeFilter (the engine owns hashing and has no sidecar).
	Layout table.Layout
	// Governor selects the read-pipeline adaptive controller.
	// table.GovernorOff (the zero value) keeps ReadHandles exactly as
	// configured — bit-identical to an ungoverned table.
	// table.GovernorAuto attaches a shared hill-climbing controller that
	// tunes window depth, piggybacking and the tag filter from the handles'
	// own counters, including a degraded direct mode where Submit answers
	// each lookup synchronously via the no-atomics read path.
	// table.GovernorDirect forces that direct mode unconditionally.
	// The write path is not governed: updates are delegated fire-and-forget
	// and have no pipeline to tune.
	Governor table.GovernorMode
}

// DefaultPrefetchWindow mirrors dramhit.DefaultPrefetchWindow.
const DefaultPrefetchWindow = 16

// FilterStats counts tag-filter events on one probe path: line visits
// whose key lanes were loaded (KeyLines), visits rejected from the tag
// word alone (TagSkips), and admitted visits the kernel resolved (TagHits)
// or missed (TagFalse, the filter's false positives). With FilterNone only
// KeyLines advances, so KeyLines(tags) + TagSkips(tags) = KeyLines(none)
// over the same traversal.
type FilterStats struct {
	KeyLines, TagSkips, TagHits, TagFalse uint64
}

// Add accumulates o into s.
func (s *FilterStats) Add(o FilterStats) {
	s.KeyLines += o.KeyLines
	s.TagSkips += o.TagSkips
	s.TagHits += o.TagHits
	s.TagFalse += o.TagFalse
}

// partition is a single-writer region of the table. The owner thread writes
// with release stores (value before key), concurrent readers probe with
// plain atomic loads; no CAS is needed anywhere because writes are
// serialized by ownership. wstats is owner-local too (written only under
// apply); reader-side filter events live on each ReadHandle instead, so no
// cache line ping-pongs between readers. The struct is exactly one cache
// line, keeping partitions off each other's lines.
type partition struct {
	arr    *slotarr.Array
	count  uint64 // owner-local: claimed slots (incl. tombstones)
	live   int64  // owner-local: present entries
	full   atomic.Bool
	_      [7]byte
	wstats FilterStats // owner-local: write-path filter events
	// bkt is the partition's self-resizing bucket index (non-nil iff the
	// table's Layout is table.LayoutBucket; arr is nil then). All partition
	// engines share one arena, so a record's Ref is meaningful table-wide.
	bkt *slotarr.BucketTable
}

// Table is a partitioned DRAMHiT. Obtain WriteHandles (one per writer
// goroutine) and ReadHandles (one per reader goroutine); call Start before
// use and Close when done.
type Table struct {
	cfg       Config
	parts     []partition
	partSlots uint64
	nparts    uint64
	total     uint64
	hash      func(uint64) uint64
	side      slotarr.SidePair
	fabric    *delegation.Fabric
	kernel    table.ProbeKernel
	filter    table.ProbeFilter
	combine   table.Combining
	layout    table.Layout
	ar        *arena.Arena // shared KV arena; non-nil iff layout is bucket

	started atomic.Bool
	wg      sync.WaitGroup
	// dropped counts updates rejected because their partition was full.
	dropped atomic.Uint64
	// handleSeq hands out producer indices to cloned adapters.
	handleSeq atomic.Int32
	closeOnce sync.Once
	obsReg    *obs.Registry
	// nread names ReadHandle worker shards.
	nread atomic.Int32
	// gov is the shared read-pipeline governor; nil when GovernorOff.
	gov *governor.Governor
}

// New builds the table. Call Start to launch the delegation threads.
func New(cfg Config) *Table {
	if cfg.Slots == 0 {
		panic("dramhitp: Config.Slots must be positive")
	}
	if cfg.Producers <= 0 {
		cfg.Producers = 1
	}
	if cfg.Consumers <= 0 {
		cfg.Consumers = 1
	}
	if cfg.PartitionsPerConsumer <= 0 {
		cfg.PartitionsPerConsumer = 1
	}
	if cfg.PrefetchWindow == 0 {
		cfg.PrefetchWindow = DefaultPrefetchWindow
	}
	if cfg.Hash == nil {
		cfg.Hash = hashfn.City64
	}
	kernel := cfg.ProbeKernel
	if cfg.UseSIMD {
		kernel = table.KernelSWAR
	}
	filter := cfg.ProbeFilter
	if kernel == table.KernelScalar {
		// Line-granular filter, slot-granular kernel: nothing to gate.
		filter = table.FilterNone
	}
	if cfg.Layout == table.LayoutBucket {
		// The bucket engine owns hashing and has no sidecar to filter.
		filter = table.FilterNone
	}
	nparts := uint64(cfg.Consumers * cfg.PartitionsPerConsumer)
	partSlots := (cfg.Slots + nparts - 1) / nparts
	if partSlots == 0 {
		partSlots = 1
	}
	t := &Table{
		cfg:       cfg,
		parts:     make([]partition, nparts),
		partSlots: partSlots,
		nparts:    nparts,
		total:     partSlots * nparts,
		hash:      cfg.Hash,
		kernel:    kernel,
		filter:    filter,
		combine:   cfg.Combining,
		layout:    cfg.Layout,
		fabric: delegation.New(delegation.Config{
			Producers:     cfg.Producers,
			Consumers:     cfg.Consumers,
			QueueCapacity: cfg.QueueCapacity,
			Sections:      cfg.Sections,
		}),
	}
	if cfg.Layout == table.LayoutBucket {
		// One arena across all partitions: records written by any owner are
		// readable from any partition handle, and reclamation epochs advance
		// table-wide. Each partition gets its own self-resizing index.
		t.ar = arena.New()
		for i := range t.parts {
			t.parts[i].bkt = slotarr.NewBucketTable(slotarr.BucketConfig{
				Buckets: (partSlots + slotarr.BucketLanes - 1) / slotarr.BucketLanes,
				Arena:   t.ar,
			})
		}
	} else {
		for i := range t.parts {
			if filter == table.FilterTags {
				t.parts[i].arr = slotarr.NewTagged(partSlots)
			} else {
				t.parts[i].arr = slotarr.New(partSlots)
			}
		}
	}
	switch cfg.Governor {
	case table.GovernorAuto:
		t.gov = governor.New(governor.Config{
			Window:    cfg.PrefetchWindow,
			Combining: cfg.Combining == table.CombineOn,
			Tags:      filter == table.FilterTags,
			Direct:    true,
		})
	case table.GovernorDirect:
		t.gov = governor.NewForced(governor.Decision{
			Direct: true,
			Window: cfg.PrefetchWindow,
			Filter: filter == table.FilterTags,
		})
	}
	t.obsReg = cfg.Observe
	if t.obsReg != nil {
		// Only atomically-readable aggregates are exposed here: the
		// owner-local write-path filter counters (WriteFilterStats) are plain
		// fields, exact only at quiescence, so a live scrape must not touch
		// them.
		t.obsReg.AddSource("dramhitp", func() map[string]float64 {
			return map[string]float64{
				"live":       float64(t.Len()),
				"slots":      float64(t.Cap()),
				"dropped":    float64(t.Dropped()),
				"partitions": float64(t.Partitions()),
			}
		})
		t.obsReg.AddHeatmapSource("dramhitp", t.heatmap)
		if t.gov != nil {
			// Distinct source name from the core table's "governor" so a
			// process embedding both tables scrapes both controllers.
			t.obsReg.AddSource("governor_read", t.gov.Metrics)
			if tr := t.obsReg.Trace(); tr != nil {
				t.gov.OnDecision = func(d governor.Decision, epoch uint64) {
					mode := uint8(0)
					if d.Direct {
						mode = 1
					}
					tr.Record(tr.NextID(), obs.EvGovern, mode, governor.Pack(d, epoch), uint32(epoch))
				}
			}
		}
	}
	return t
}

// GovernorState reports the read-path governor's current decision, epochs
// stepped, and convergence flag; ok is false on an ungoverned table.
func (t *Table) GovernorState() (d governor.Decision, epochs uint64, pinned, ok bool) {
	if t.gov == nil {
		return governor.Decision{}, 0, false, false
	}
	return t.gov.Decision(), t.gov.Epochs(), t.gov.Pinned(), true
}

// locate maps a key to (partition, local slot). The global slot index is a
// fastrange over the whole table so key density stays uniform; the partition
// is its quotient, keeping linear probe chains entirely within one
// partition.
func (t *Table) locate(key uint64) (part, local uint64) {
	g := hashfn.Fastrange(t.hash(key), t.total)
	return g / t.partSlots, g % t.partSlots
}

// locateTag is locate plus the key's tag fingerprint, computed from the
// same single hash invocation (Fastrange consumes the high bits, TagOf the
// low byte — disjoint, see table.TagOf).
func (t *Table) locateTag(key uint64) (part, local uint64, tag uint8) {
	h := t.hash(key)
	g := hashfn.Fastrange(h, t.total)
	return g / t.partSlots, g % t.partSlots, table.TagOf(h)
}

// locateBucket maps a key to its partition and the bucket engine's hash.
// The partition selector scrambles the hash through the splitmix64
// finalizer first (the shardmap precedent): Fastrange over both the raw
// hash and its in-partition bucket index would consume the same high bits,
// clustering each partition's keys into a band of buckets.
func (t *Table) locateBucket(key uint64) (part, hv uint64) {
	var kb [8]byte
	putLE(kb[:], key)
	return t.locateBucketBytes(kb[:])
}

// locateBucketBytes is locateBucket for a byte-string key.
func (t *Table) locateBucketBytes(key []byte) (part, hv uint64) {
	hv = t.parts[0].bkt.HashOf(key) // all partitions share one hash
	return hashfn.Fastrange(hashfn.Shard64(hv), t.nparts), hv
}

// partOf maps a key to its partition under the table's layout. Every
// routing decision for one key must go through one locator: the flat and
// bucket locators disagree, and mixing them would send same-key updates to
// different owners, breaking the per-key FIFO that delegation guarantees.
func (t *Table) partOf(key uint64) uint64 {
	if t.layout == table.LayoutBucket {
		part, _ := t.locateBucket(key)
		return part
	}
	part, _ := t.locate(key)
	return part
}

// Layout returns the physical layout the table was constructed with.
func (t *Table) Layout() table.Layout { return t.layout }

// Filter returns the effective probe filter (FilterNone on scalar-kernel
// tables regardless of the configured value).
func (t *Table) Filter() table.ProbeFilter { return t.filter }

// Combining reports whether handles merge in-flight same-key requests.
func (t *Table) Combining() table.Combining { return t.combine }

// WriteFilterStats aggregates the owner-local write-path filter counters
// across all partitions. Exact only when the delegation threads are
// quiescent (Barrier/Close), like Len.
func (t *Table) WriteFilterStats() FilterStats {
	var s FilterStats
	for i := range t.parts {
		s.Add(t.parts[i].wstats)
	}
	return s
}

// ownerOf returns the consumer index that owns partition p (round-robin
// assignment, paper Figure 3).
func (t *Table) ownerOf(part uint64) int {
	return int(part % uint64(t.cfg.Consumers))
}

// Start launches the delegation (consumer) goroutines.
func (t *Table) Start() {
	if t.started.Swap(true) {
		panic("dramhitp: Start called twice")
	}
	for c := 0; c < t.cfg.Consumers; c++ {
		t.wg.Add(1)
		go func(c int) {
			defer t.wg.Done()
			cons := t.fabric.Consumer(c)
			if t.layout == table.LayoutBucket {
				// Consumer-goroutine-local engine handles: each owns an arena
				// writer (records this consumer appends go to its own
				// segments) and the goroutine's reclamation pin.
				bhs := t.newPartHandles()
				cons.Run(func(m delegation.Message) { t.applyBucket(m, bhs) })
				return
			}
			cons.Run(func(m delegation.Message) { t.apply(m) })
		}(c)
	}
}

// Close shuts the table down: it closes every producer endpoint
// (Producer.Close is idempotent, so handles already closed by their owners
// are unaffected) and joins the delegation threads. All writer goroutines
// must have quiesced before Close is called.
func (t *Table) Close() {
	t.closeOnce.Do(func() {
		for p := 0; p < t.cfg.Producers; p++ {
			t.fabric.Producer(p).Close()
		}
		t.wg.Wait()
	})
}

// Dropped returns the number of updates discarded because their partition
// was full.
func (t *Table) Dropped() uint64 { return t.dropped.Load() }

// Len returns the number of live entries. Exact only when writers are
// quiescent (counters are owner-local and read without synchronization
// beyond atomics).
func (t *Table) Len() int {
	n := 0
	if t.layout == table.LayoutBucket {
		for i := range t.parts {
			n += t.parts[i].bkt.Len()
		}
		return n
	}
	for i := range t.parts {
		n += int(atomic.LoadInt64(&t.parts[i].live))
	}
	return n + t.side.Count()
}

// Cap returns the total slot capacity (current, on self-resizing bucket
// partitions).
func (t *Table) Cap() int {
	if t.layout == table.LayoutBucket {
		n := 0
		for i := range t.parts {
			n += t.parts[i].bkt.Cap()
		}
		return n
	}
	return int(t.total)
}

// Partitions returns the partition count.
func (t *Table) Partitions() int { return int(t.nparts) }

// newPartHandles builds one bucket-engine handle per partition for a single
// goroutine's use.
func (t *Table) newPartHandles() []*slotarr.BucketHandle {
	bhs := make([]*slotarr.BucketHandle, len(t.parts))
	for i := range t.parts {
		bhs[i] = t.parts[i].bkt.NewHandle()
	}
	return bhs
}

// putLE stores v into b[0:8] little-endian (the fixed encoding bridging
// uint64 keys and values onto the byte-record arena).
func putLE(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// getLE loads a little-endian uint64 from b[0:8].
func getLE(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// applyBucket executes one delegated update against the owning partition's
// bucket engine. Reserved keys take this path like any other (the layout
// has no side slots), and a bucket partition never reports full — the
// engine resizes itself, so fire-and-forget updates are never dropped.
func (t *Table) applyBucket(m delegation.Message, bhs []*slotarr.BucketHandle) {
	op := table.Op(m.Aux)
	part, _ := t.locateBucket(m.A)
	bh := bhs[part]
	var kb, vb [8]byte
	putLE(kb[:], m.A)
	switch op {
	case table.Put:
		putLE(vb[:], m.B)
		bh.Put(kb[:], vb[:])
	case table.Upsert:
		bh.Mutate(kb[:], func(old []byte, present bool) []byte {
			nv := m.B
			if present {
				nv += getLE(old)
			}
			putLE(vb[:], nv)
			return vb[:]
		})
	case table.Delete:
		bh.Delete(kb[:])
	}
}

// apply executes one delegated update on the owning consumer thread.
func (t *Table) apply(m delegation.Message) {
	op := table.Op(m.Aux)
	key, value := m.A, m.B
	if s := t.side.For(key); s != nil {
		switch op {
		case table.Put:
			s.Put(value)
		case table.Upsert:
			s.Upsert(value)
		case table.Delete:
			s.Delete()
		}
		return
	}
	part, local, tag := t.locateTag(key)
	pt := &t.parts[part]
	switch op {
	case table.Put:
		if !t.putLocal(pt, local, key, value, tag, false) {
			t.dropped.Add(1)
		}
	case table.Upsert:
		if !t.putLocal(pt, local, key, value, tag, true) {
			t.dropped.Add(1)
		}
	case table.Delete:
		t.deleteLocal(pt, local, key, tag)
	}
}

// putLocal inserts or updates (key, value) in partition pt starting at slot
// `local`. Single-writer: publication order is value first, then key, then
// tag — so a concurrent reader never observes a claimed-but-unvalued slot,
// and a nonzero tag always implies a visible key (which is what lets tag
// rejections prune the lane). Under the SWAR kernel the probe advances a
// whole cache line per step; ownership makes the line snapshot
// authoritative (no claim CAS is needed), so the kernel's verdict is acted
// on directly. With FilterTags the packed tag word is consulted before
// each line's key lanes; a rejected line is advanced past unread.
func (t *Table) putLocal(pt *partition, local, key, value uint64, tag uint8, add bool) bool {
	arr := pt.arr
	if t.kernel == table.KernelSWAR {
		tagged := t.filter == table.FilterTags
		i := local
		for probes := uint64(0); ; {
			if tagged {
				base := i &^ (table.SlotsPerCacheLine - 1)
				if arr.LineCandidates(base, tag)>>(i-base) == 0 {
					pt.wstats.TagSkips++
					valid := t.partSlots - base
					if valid > table.SlotsPerCacheLine {
						valid = table.SlotsPerCacheLine
					}
					probes += valid - (i - base)
					if probes >= t.partSlots {
						break
					}
					i = base + table.SlotsPerCacheLine
					if i >= t.partSlots {
						i = 0
					}
					continue
				}
			}
			pt.wstats.KeyLines++
			l0, l1, l2, l3, base, valid := arr.LoadKeys4(i)
			lane, res := simd.ProbeLine4(l0, l1, l2, l3, key, table.EmptyKey, int(i-base))
			switch res {
			case simd.HitKey:
				if tagged {
					pt.wstats.TagHits++
				}
				slot := base + uint64(lane)
				if add {
					arr.AddValue(slot, value)
				} else {
					arr.StoreValue(slot, value)
				}
				return true
			case simd.HitEmpty:
				if tagged {
					pt.wstats.TagHits++
				}
				slot := base + uint64(lane)
				arr.StoreValue(slot, value)
				arr.StoreKey(slot, key)
				arr.PublishTag(slot, tag)
				pt.count++
				atomic.AddInt64(&pt.live, 1)
				if pt.count >= t.partSlots {
					// Deny further inserts before the next one is attempted
					// (paper §3.2: the owner sets the flag; producers check
					// it).
					pt.full.Store(true)
				}
				return true
			}
			if tagged {
				pt.wstats.TagFalse++
			}
			probes += valid - (i - base)
			if probes >= t.partSlots {
				break
			}
			i = base + table.SlotsPerCacheLine
			if i >= t.partSlots {
				i = 0
			}
		}
		pt.full.Store(true)
		return false
	}
	i := local
	for probes := uint64(0); probes < t.partSlots; probes++ {
		switch arr.Key(i) {
		case key:
			if add {
				arr.AddValue(i, value)
			} else {
				arr.StoreValue(i, value)
			}
			return true
		case table.EmptyKey:
			arr.StoreValue(i, value)
			arr.StoreKey(i, key)
			pt.count++
			atomic.AddInt64(&pt.live, 1)
			if pt.count >= t.partSlots {
				// Deny further inserts before the next one is attempted
				// (paper §3.2: the owner sets the flag; producers check it).
				pt.full.Store(true)
			}
			return true
		}
		i++
		if i == t.partSlots {
			i = 0
		}
	}
	pt.full.Store(true)
	return false
}

// deleteLocal tombstones key in partition pt. The tombstoned slot keeps
// its stale tag (tags are write-once); a probe for the same fingerprint
// still admits the line and the kernel skips the tombstone, so staleness
// costs at most a false positive.
func (t *Table) deleteLocal(pt *partition, local, key uint64, tag uint8) {
	arr := pt.arr
	if t.kernel == table.KernelSWAR {
		tagged := t.filter == table.FilterTags
		i := local
		for probes := uint64(0); ; {
			if tagged {
				base := i &^ (table.SlotsPerCacheLine - 1)
				if arr.LineCandidates(base, tag)>>(i-base) == 0 {
					pt.wstats.TagSkips++
					valid := t.partSlots - base
					if valid > table.SlotsPerCacheLine {
						valid = table.SlotsPerCacheLine
					}
					probes += valid - (i - base)
					if probes >= t.partSlots {
						return
					}
					i = base + table.SlotsPerCacheLine
					if i >= t.partSlots {
						i = 0
					}
					continue
				}
			}
			pt.wstats.KeyLines++
			l0, l1, l2, l3, base, valid := arr.LoadKeys4(i)
			lane, res := simd.ProbeLine4(l0, l1, l2, l3, key, table.EmptyKey, int(i-base))
			switch res {
			case simd.HitKey:
				if tagged {
					pt.wstats.TagHits++
				}
				arr.StoreKey(base+uint64(lane), table.TombstoneKey)
				atomic.AddInt64(&pt.live, -1)
				return
			case simd.HitEmpty:
				if tagged {
					pt.wstats.TagHits++
				}
				return
			}
			if tagged {
				pt.wstats.TagFalse++
			}
			probes += valid - (i - base)
			if probes >= t.partSlots {
				return
			}
			i = base + table.SlotsPerCacheLine
			if i >= t.partSlots {
				i = 0
			}
		}
	}
	i := local
	for probes := uint64(0); probes < t.partSlots; probes++ {
		switch arr.Key(i) {
		case key:
			arr.StoreKey(i, table.TombstoneKey)
			atomic.AddInt64(&pt.live, -1)
			return
		case table.EmptyKey:
			return
		}
		i++
		if i == t.partSlots {
			i = 0
		}
	}
}

// getLocal is the lock-free read path: no atomic RMW anywhere. Under the
// SWAR kernel it is one LoadKeys4 snapshot of the line's key lanes and one
// lane compare per line; the matched lane's value is loaded after its key
// was observed, which is all the single-writer publication order
// value-then-key needs (once the key is visible the value is already
// published, so the read completes without spinning). When tagged, each
// line's packed tag word is consulted first and rejected lines are never
// loaded; filter events land in fs, which is caller-owned (one per
// ReadHandle) so concurrent readers share no counter cache lines.
//
// tagged is the CALLER's effective filter, not the table's: a governed
// ReadHandle that has switched its filter off must skip the sidecar loads
// entirely (gating on t.filter here would keep issuing the tag-word load —
// exactly the traffic the decision was meant to shed — and skew the
// KeyLines/TagSkips sensors the governor steers by). Callers on tagged
// paths always hold t.filter == table.FilterTags, so the sidecar exists.
func (t *Table) getLocal(pt *partition, local, key uint64, tag uint8, tagged bool, fs *FilterStats) (uint64, bool) {
	arr := pt.arr
	if t.kernel == table.KernelSWAR {
		i := local
		for probes := uint64(0); ; {
			if tagged {
				base := i &^ (table.SlotsPerCacheLine - 1)
				if arr.LineCandidates(base, tag)>>(i-base) == 0 {
					fs.TagSkips++
					valid := t.partSlots - base
					if valid > table.SlotsPerCacheLine {
						valid = table.SlotsPerCacheLine
					}
					probes += valid - (i - base)
					if probes >= t.partSlots {
						return 0, false
					}
					i = base + table.SlotsPerCacheLine
					if i >= t.partSlots {
						i = 0
					}
					continue
				}
			}
			fs.KeyLines++
			l0, l1, l2, l3, base, valid := arr.LoadKeys4(i)
			lane, res := simd.ProbeLine4(l0, l1, l2, l3, key, table.EmptyKey, int(i-base))
			switch res {
			case simd.HitKey:
				if tagged {
					fs.TagHits++
				}
				return arr.WaitValue(base + uint64(lane)), true
			case simd.HitEmpty:
				if tagged {
					fs.TagHits++
				}
				return 0, false
			}
			if tagged {
				fs.TagFalse++
			}
			probes += valid - (i - base)
			if probes >= t.partSlots {
				return 0, false
			}
			i = base + table.SlotsPerCacheLine
			if i >= t.partSlots {
				i = 0
			}
		}
	}
	i := local
	for probes := uint64(0); probes < t.partSlots; probes++ {
		switch arr.Key(i) {
		case key:
			return arr.WaitValue(i), true
		case table.EmptyKey:
			return 0, false
		}
		i++
		if i == t.partSlots {
			i = 0
		}
	}
	return 0, false
}
