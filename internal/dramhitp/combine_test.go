package dramhitp

import (
	"math/rand"
	"sync"
	"testing"

	"dramhit/internal/table"
	"dramhit/internal/workload"
)

func newCombineTable(n uint64, c table.Combining) *Table {
	t := New(Config{
		Slots:                 n,
		Producers:             4,
		Consumers:             2,
		PartitionsPerConsumer: 2,
		Combining:             c,
	})
	t.Start()
	return t
}

// TestPCombineConfigWiring pins the knob: combining defaults on, off is
// selectable, and an off-table's handles carry no combining state.
func TestPCombineConfigWiring(t *testing.T) {
	on := newCombineTable(1024, table.CombineOn)
	defer on.Close()
	off := newCombineTable(1024, table.CombineOff)
	defer off.Close()
	if on.Combining() != table.CombineOn || off.Combining() != table.CombineOff {
		t.Fatalf("combining wiring: on=%v off=%v", on.Combining(), off.Combining())
	}
	if New(Config{Slots: 64, Producers: 1, Consumers: 1}).Combining() != table.CombineOn {
		t.Fatal("zero-value Config must default to CombineOn")
	}
	rOn, rOff := on.NewReadHandle(), off.NewReadHandle()
	if !rOn.combine || rOn.rtags == nil {
		t.Fatal("on-table ReadHandle missing combining state")
	}
	if rOff.combine || rOff.rtags != nil {
		t.Fatal("off-table ReadHandle must carry no combining state")
	}
	wOn, wOff := on.NewWriteHandle(), off.NewWriteHandle()
	if !wOn.coalesce || wOff.coalesce {
		t.Fatalf("write coalesce wiring: on=%v off=%v", wOn.coalesce, wOff.coalesce)
	}
	wOn.Close()
	wOff.Close()
}

// TestPCombineWriteCoalescing folds a duplicate-heavy upsert stream and
// demands the exact per-key sums an uncombined table would hold, plus
// evidence the folds actually happened (Combined counter, fewer delegated
// messages is implied by it).
func TestPCombineWriteCoalescing(t *testing.T) {
	for _, mode := range []table.Combining{table.CombineOn, table.CombineOff} {
		tbl := newCombineTable(4096, mode)
		w := tbl.NewWriteHandle()
		rng := rand.New(rand.NewSource(7))
		want := map[uint64]uint64{}
		for i := 0; i < 20000; i++ {
			k := uint64(1 + rng.Intn(64)) // dense duplication: 64 hot keys
			w.Upsert(k, k)
			want[k] += k
		}
		w.Barrier()
		combined := w.Combined
		w.Close()
		if mode == table.CombineOn && combined == 0 {
			t.Fatal("combining on: expected folded upserts on a 64-key stream")
		}
		if mode == table.CombineOff && combined != 0 {
			t.Fatalf("combining off: Combined = %d, want 0", combined)
		}
		r := tbl.NewReadHandle()
		for k, sum := range want {
			if v, ok := r.Get(k); !ok || v != sum {
				t.Fatalf("mode %v key %d: got (%d,%v) want (%d,true)", mode, k, v, ok, sum)
			}
		}
		tbl.Close()
	}
}

// TestPCombineWriteOrdering pins the per-key order contract around held
// entries: a Put or Delete of a held key releases the held delta first, so
// the partition owner applies the two in submission order.
func TestPCombineWriteOrdering(t *testing.T) {
	tbl := newCombineTable(1024, table.CombineOn)
	defer tbl.Close()
	w := tbl.NewWriteHandle()
	defer w.Close()
	r := tbl.NewReadHandle()

	w.Upsert(10, 5)
	w.Put(10, 9) // releases the held 5 first; Put overwrites
	w.Barrier()
	if v, ok := r.Get(10); !ok || v != 9 {
		t.Fatalf("upsert-then-put: got (%d,%v) want (9,true)", v, ok)
	}

	w.Put(11, 9)
	w.Upsert(11, 5)
	w.Barrier()
	if v, ok := r.Get(11); !ok || v != 14 {
		t.Fatalf("put-then-upsert: got (%d,%v) want (14,true)", v, ok)
	}

	w.Upsert(12, 5)
	w.Delete(12) // releases the held 5 first; Delete tombstones it
	w.Upsert(12, 3)
	w.Barrier()
	if v, ok := r.Get(12); !ok || v != 3 {
		t.Fatalf("upsert-delete-upsert: got (%d,%v) want (3,true)", v, ok)
	}

	// A held entry for a different key is NOT flushed by Put/Delete and
	// must still land at the next barrier.
	w.Upsert(13, 7)
	w.Put(14, 1)
	w.Barrier()
	if v, ok := r.Get(13); !ok || v != 7 {
		t.Fatalf("held entry survived wrong flush: got (%d,%v) want (7,true)", v, ok)
	}
}

// drainReads pushes every request through r and returns the responses.
func drainReads(t *testing.T, r *ReadHandle, reqs []table.Request) []table.Response {
	t.Helper()
	res := make([]table.Response, len(reqs)+8)
	n := 0
	rem := reqs
	for len(rem) > 0 {
		nreq, nresp := r.Submit(rem, res[n:])
		rem = rem[nreq:]
		n += nresp
	}
	for {
		nresp, done := r.Flush(res[n:])
		n += nresp
		if done {
			break
		}
	}
	return res[:n]
}

// TestPCombineReadEquivalenceProperty drives identical duplicate-heavy Get
// streams through a combining and a non-combining table populated with the
// same contents, and demands the same answer for every request ID.
// Combining may reorder responses (piggybacked Gets complete with their
// leader) but never change them: the table is read-only during the stream,
// so every in-flight same-key Get has exactly one correct answer.
func TestPCombineReadEquivalenceProperty(t *testing.T) {
	mk := func(mode table.Combining) *Table {
		tbl := newCombineTable(4096, mode)
		w := tbl.NewWriteHandle()
		for _, k := range workload.UniqueKeys(42, 2500) {
			w.Put(k, k^7)
		}
		w.Barrier()
		w.Close()
		return tbl
	}
	onT, offT := mk(table.CombineOn), mk(table.CombineOff)
	defer onT.Close()
	defer offT.Close()

	keys := workload.UniqueKeys(42, 2500)
	miss := workload.MissKeys(42, 2500, 500)
	rng := rand.New(rand.NewSource(99))
	reqs := make([]table.Request, 6000)
	for i := range reqs {
		var k uint64
		if rng.Intn(4) == 0 {
			k = miss[rng.Intn(len(miss))]
		} else if rng.Intn(3) > 0 {
			k = keys[rng.Intn(16)] // hot set: dense in-window duplication
		} else {
			k = keys[rng.Intn(len(keys))]
		}
		reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i)}
	}

	rOn, rOff := onT.NewReadHandle(), offT.NewReadHandle()
	got := drainReads(t, rOn, reqs)
	want := drainReads(t, rOff, reqs)
	if len(got) != len(reqs) || len(want) != len(reqs) {
		t.Fatalf("response counts: on %d off %d want %d", len(got), len(want), len(reqs))
	}
	byID := make(map[uint64]table.Response, len(want))
	for _, resp := range want {
		byID[resp.ID] = resp
	}
	seen := make(map[uint64]bool, len(got))
	for _, resp := range got {
		if seen[resp.ID] {
			t.Fatalf("request %d answered twice", resp.ID)
		}
		seen[resp.ID] = true
		if w := byID[resp.ID]; resp != w {
			t.Fatalf("request %d diverged: on %+v off %+v", resp.ID, resp, w)
		}
	}
	if rOn.Piggybacked == 0 {
		t.Fatal("hot-key stream produced no piggybacked Gets")
	}
	if rOff.Piggybacked != 0 {
		t.Fatalf("combining off: Piggybacked = %d, want 0", rOff.Piggybacked)
	}
	if rOn.Gets != uint64(len(reqs)) || rOff.Gets != uint64(len(reqs)) {
		t.Fatalf("Gets must count every request once: on %d off %d want %d",
			rOn.Gets, rOff.Gets, len(reqs))
	}
	if rOn.Hits != rOff.Hits {
		t.Fatalf("hit counts diverged: on %d off %d", rOn.Hits, rOff.Hits)
	}
}

// TestPCombineReadBackpressure forces chain emission through a one-slot
// response buffer: the resolved leader must park, resume across calls, and
// still answer every piggybacked ID exactly once.
func TestPCombineReadBackpressure(t *testing.T) {
	tbl := newCombineTable(1024, table.CombineOn)
	defer tbl.Close()
	w := tbl.NewWriteHandle()
	w.Put(77, 42)
	w.Barrier()
	w.Close()

	r := tbl.NewReadHandle()
	reqs := make([]table.Request, 8)
	for i := range reqs {
		reqs[i] = table.Request{Op: table.Get, Key: 77, ID: uint64(i)}
	}
	one := make([]table.Response, 1)
	var got []table.Response
	rem := reqs
	for len(rem) > 0 {
		nreq, nresp := r.Submit(rem, one)
		rem = rem[nreq:]
		got = append(got, one[:nresp]...)
	}
	for guard := 0; ; guard++ {
		if guard > 100 {
			t.Fatal("flush livelocked under 1-slot backpressure")
		}
		nresp, done := r.Flush(one)
		got = append(got, one[:nresp]...)
		if done {
			break
		}
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d responses, want %d", len(got), len(reqs))
	}
	seen := map[uint64]bool{}
	for _, resp := range got {
		if seen[resp.ID] {
			t.Fatalf("request %d answered twice", resp.ID)
		}
		seen[resp.ID] = true
		if !resp.Found || resp.Value != 42 {
			t.Fatalf("request %d: got (%d,%v) want (42,true)", resp.ID, resp.Value, resp.Found)
		}
	}
	if r.Piggybacked != 7 {
		t.Fatalf("Piggybacked = %d, want 7", r.Piggybacked)
	}
}

// TestPCombineConcurrentWritersReaders runs coalescing writers against
// pipelined combining readers under the race detector, then verifies exact
// per-key sums after the final barrier. Readers observe monotonic partial
// sums; exactness is asserted post-quiescence.
func TestPCombineConcurrentWritersReaders(t *testing.T) {
	tbl := New(Config{
		Slots:                 8192,
		Producers:             3,
		Consumers:             2,
		PartitionsPerConsumer: 2,
	})
	tbl.Start()
	defer tbl.Close()

	const nkeys, rounds = 64, 400
	var wg sync.WaitGroup
	for wi := 0; wi < 3; wi++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			w := tbl.NewWriteHandle()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				for k := uint64(1); k <= nkeys; k++ {
					w.Upsert(k, 1)
				}
				if rng.Intn(8) == 0 {
					w.Flush()
				}
			}
			w.Barrier()
			w.Close()
		}(int64(wi + 1))
	}
	stop := make(chan struct{})
	for ri := 0; ri < 2; ri++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := tbl.NewReadHandle()
			reqs := make([]table.Request, nkeys*2)
			for i := range reqs {
				reqs[i] = table.Request{Op: table.Get, Key: uint64(1 + i%nkeys), ID: uint64(i)}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, resp := range drainReads(t, r, reqs) {
					if resp.Found && resp.Value > 3*rounds {
						t.Errorf("key sum overshot: %d > %d", resp.Value, 3*rounds)
						return
					}
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Detect writer completion by polling for key 1's exact final sum
	// (sums only grow, so the exact value is reached once, at the end).
	wfin := make(chan struct{})
	go func() {
		r := tbl.NewReadHandle()
		for {
			v, ok := r.Get(1)
			if ok && v == 3*rounds {
				close(wfin)
				return
			}
		}
	}()
	<-wfin
	close(stop)
	<-done

	r := tbl.NewReadHandle()
	for k := uint64(1); k <= nkeys; k++ {
		if v, ok := r.Get(k); !ok || v != 3*rounds {
			t.Fatalf("key %d: got (%d,%v) want (%d,true)", k, v, ok, 3*rounds)
		}
	}
}
