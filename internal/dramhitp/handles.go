package dramhitp

import (
	"strconv"
	"time"

	"dramhit/internal/delegation"
	"dramhit/internal/governor"
	"dramhit/internal/hashfn"
	"dramhit/internal/obs"
	"dramhit/internal/simd"
	"dramhit/internal/slotarr"
	"dramhit/internal/table"
)

// WriteHandle is a per-goroutine writer endpoint. Updates are delegated to
// partition owners and return no result. With combining on (the default),
// duplicate-key Upserts fold into a small held window before delegation;
// held deltas drain on Flush, Barrier, Close, window overflow, and
// same-key Put/Delete, so owners still see one linearizable per-key
// stream. Obtain with NewWriteHandle and Close when the goroutine is done
// writing.
type WriteHandle struct {
	t        *Table
	p        *delegation.Producer
	coalesce bool
	cn       int
	ckeys    [coalesceWindow]uint64
	cvals    [coalesceWindow]uint64
	// Combined counts Upserts folded into a held entry instead of sent.
	Combined uint64
	// sends counts delegation messages dispatched (plain field, published
	// into obsw at Flush/Barrier/Close boundaries).
	sends uint64
	obsw  *obs.Worker
	// hot feeds the writer's hot-key sketch (nil unless the registry armed
	// EnableHotKeys); opLat times the synchronous submission cost of each
	// update — the delegation send or the local coalesce, not the owner-side
	// apply, which is what this handle can observe.
	hot   *obs.TopK
	opLat bool
	// wbhs holds this writer's per-partition bucket-engine handles (non-nil
	// iff the table's Layout is bucket). The byte-string operations execute
	// through them synchronously — direct to the engine, not delegated: a
	// variable-length record does not fit a delegation message, and the
	// engine's CAS protocol already serializes racing writers safely.
	wbhs []*slotarr.BucketHandle
}

// NewWriteHandle allocates the next producer slot. It panics if more
// handles are requested than Config.Producers.
func (t *Table) NewWriteHandle() *WriteHandle {
	id := int(t.handleSeq.Add(1)) - 1
	if id >= t.cfg.Producers {
		panic("dramhitp: more WriteHandles requested than Config.Producers")
	}
	w := &WriteHandle{t: t, p: t.fabric.Producer(id), coalesce: t.combine == table.CombineOn}
	if t.layout == table.LayoutBucket {
		w.wbhs = t.newPartHandles()
	}
	if t.obsReg != nil {
		w.obsw = t.obsReg.Worker("dramhitp-w" + strconv.Itoa(id))
		w.hot = w.obsw.Hot
		w.opLat = t.obsReg.OpLatencyEnabled()
	}
	return w
}

// requireBucket panics unless the table's Layout is bucket — the byte API
// has nowhere to store variable-length records on a flat table.
func (t *Table) requireBucket() {
	if t.layout != table.LayoutBucket {
		panic("dramhitp: byte-string API requires Config.Layout == table.LayoutBucket")
	}
}

// PutBytes stores value for a byte-string key, overwriting silently,
// reporting whether the key existed. Synchronous (direct to the partition
// engine, not delegated): it does not order against this handle's
// delegated uint64 updates until a Barrier, and a uint64 key k aliases the
// byte key of its 8-byte little-endian encoding.
func (w *WriteHandle) PutBytes(key, value []byte) (existed bool) {
	w.t.requireBucket()
	part, _ := w.t.locateBucketBytes(key)
	return w.wbhs[part].Put(key, value)
}

// UpsertBytes atomically read-modify-writes a byte-string key: fn receives
// the current value (nil, false when absent) and returns the value to
// store; under contention fn may run multiple times and exactly the final
// invocation's result is published. Synchronous, like PutBytes.
func (w *WriteHandle) UpsertBytes(key []byte, fn func(old []byte, present bool) []byte) (existed bool) {
	w.t.requireBucket()
	part, _ := w.t.locateBucketBytes(key)
	return w.wbhs[part].Mutate(key, fn)
}

// DeleteBytes removes a byte-string key, reporting whether it was present.
// Synchronous, like PutBytes.
func (w *WriteHandle) DeleteBytes(key []byte) bool {
	w.t.requireBucket()
	part, _ := w.t.locateBucketBytes(key)
	return w.wbhs[part].Delete(key)
}

// obsPublish copies the writer's plain counters into its registry shard and
// refreshes the delegation-backlog gauge. Called at Flush/Barrier/Close.
func (w *WriteHandle) obsPublish() {
	w.obsw.Store(obs.CQueueSends, w.sends)
	w.obsw.Store(obs.CCombinedUpserts, w.Combined)
	w.obsw.SetGauge(obs.GQueueDepth, uint64(w.p.Pending()))
}

// send routes an update to the owner of the key's partition, checking the
// partition-full flag first (a shared-state L1 hit in steady state, paper
// §3.2). It reports false if the update was denied.
func (w *WriteHandle) send(op table.Op, key, value uint64) bool {
	t := w.t
	if t.layout == table.LayoutBucket {
		// Bucket partitions resize themselves (no full flag) and reserved
		// keys are ordinary engine keys (no side slots): every update routes
		// straight to its partition's owner.
		part, _ := t.locateBucket(key)
		w.p.Send(t.ownerOf(part), delegation.Message{A: key, B: value, Aux: uint64(op)})
		w.sends++
		return true
	}
	if t.side.For(key) != nil {
		// Reserved keys are owned by consumer 0.
		w.p.Send(0, delegation.Message{A: key, B: value, Aux: uint64(op)})
		w.sends++
		return true
	}
	part, _ := t.locate(key)
	if op != table.Delete && t.parts[part].full.Load() {
		t.dropped.Add(1)
		return false
	}
	w.p.Send(t.ownerOf(part), delegation.Message{A: key, B: value, Aux: uint64(op)})
	w.sends++
	return true
}

// opStart/opEnd time the submission-side cost of one update into the
// handle's per-op-class histograms when the registry armed EnableOpLatency.
// The owner-side apply is asynchronous by design; Barrier is the
// read-your-writes point, so the distribution here prices what delegation
// puts ON the caller's critical path — the paper's argument, in a metric.
func (w *WriteHandle) opStart() int64 {
	if w.opLat {
		return time.Now().UnixNano()
	}
	return 0
}

func (w *WriteHandle) opEnd(start int64, op table.Op, hit bool) {
	if start != 0 {
		w.obsw.Op[obs.OpClass(op, hit)].Record(uint64(time.Now().UnixNano() - start))
	}
}

// Put requests an insert/overwrite. It returns false if the destination
// partition is full (the update is dropped, fire-and-forget semantics). A
// held coalesced Upsert of the same key is released first so the owner
// applies the two in submission order.
func (w *WriteHandle) Put(key, value uint64) bool {
	if w.hot != nil {
		w.hot.OfferSampled(key)
	}
	start := w.opStart()
	if w.cn > 0 {
		w.flushKey(key)
	}
	ok := w.send(table.Put, key, value)
	w.opEnd(start, table.Put, ok)
	return ok
}

// Upsert requests an insert-or-add of delta. With combining on, duplicate
// keys fold locally (see holdUpsert) and a window of distinct keys rides
// one delegation flush.
func (w *WriteHandle) Upsert(key, delta uint64) bool {
	if w.hot != nil {
		w.hot.OfferSampled(key)
	}
	start := w.opStart()
	var ok bool
	if !w.coalesce ||
		(w.t.layout != table.LayoutBucket && w.t.side.For(key) != nil) {
		ok = w.send(table.Upsert, key, delta)
	} else {
		ok = w.holdUpsert(key, delta)
	}
	w.opEnd(start, table.Upsert, ok)
	return ok
}

// Delete requests a tombstone, releasing any held same-key Upsert first so
// the owner applies the two in submission order.
func (w *WriteHandle) Delete(key uint64) {
	if w.hot != nil {
		w.hot.OfferSampled(key)
	}
	start := w.opStart()
	if w.cn > 0 {
		w.flushKey(key)
	}
	w.send(table.Delete, key, 0)
	// A delegated delete reports nothing back; class it as a hit (the
	// delete_miss class is for synchronous tables that observed the miss).
	w.opEnd(start, table.Delete, true)
}

// Flush publishes partially filled delegation sections, including any held
// coalesced Upserts. Call at batch boundaries so trailing updates are not
// stranded.
func (w *WriteHandle) Flush() {
	if w.cn > 0 {
		w.flushHeld()
	}
	w.p.Flush()
	if w.obsw != nil {
		w.obsPublish()
	}
}

// Barrier blocks until every update this handle sent has been executed by
// the partition owners (read-your-writes point). Held coalesced Upserts
// are released first so they are covered by the barrier.
func (w *WriteHandle) Barrier() {
	if w.cn > 0 {
		w.flushHeld()
	}
	w.p.Barrier()
	if w.obsw != nil {
		w.obsPublish()
	}
}

// Close flushes and releases the producer slot. Must be called exactly once
// per handle; the table cannot shut down until all issued handles are
// closed.
func (w *WriteHandle) Close() {
	if w.cn > 0 {
		w.flushHeld()
	}
	w.p.Close()
	if w.obsw != nil {
		w.obsPublish()
	}
}

// ReadHandle is a per-goroutine reader with the same prefetch-window
// pipeline as base DRAMHiT, probing partitions directly (reads are not
// delegated; any thread may read any partition).
type ReadHandle struct {
	t       *Table
	q       []rpending
	mask    int
	head    int
	tail    int
	window  int
	sink    uint64
	kernel  table.ProbeKernel
	filter  table.ProbeFilter
	combine bool
	// rtags mirrors the tag byte of each live ring slot (one byte per
	// slot, eight slots per word) so Submit can spot an in-flight lookup
	// of the same key without touching the pending structs. Nil when
	// combining is off.
	rtags []uint64
	// tagcnt counts live pending lookups per tag byte: push increments,
	// position retirement decrements (reading the byte back from rtags), and
	// Submit runs combineScan only when tagcnt[tag] != 0 — one L1 load on
	// the common no-duplicate submission. Entry 0 absorbs the pops of parked
	// slots (byte cleared, count released at park time) and is never read:
	// published tags are 1..255.
	tagcnt [256]int32
	// merged is the piggybacked-Get node arena; mfree heads its free list
	// (1+index encoding, 0 = empty).
	merged []rmerged
	mfree  int32
	// Gets counts completed lookups; Hits those that found their key.
	Gets, Hits uint64
	// Piggybacked counts Gets answered by an in-flight same-key probe
	// instead of issuing their own.
	Piggybacked uint64
	// Filter accumulates this reader's tag-filter events (handle-local so
	// concurrent readers never share counter cache lines).
	Filter FilterStats
	// rbhs holds per-partition bucket-engine handles (non-nil iff the
	// table's Layout is bucket): lookups resolve through them in one bucket
	// line, and their line/hop counters fold into Filter.KeyLines.
	rbhs []*slotarr.BucketHandle

	// Observability (nil/zero without a registry): the plain counters above
	// are published into obsw at Submit/Flush exit; trace samples 1-in-
	// traceEvery pipelined lookups through the lifecycle ring.
	obsw       *obs.Worker
	trace      *obs.TraceRing
	traceEvery int
	traceCnt   int
	pubCnt     int // Submit calls since the last throttled publish
	occMax     uint64
	// hot feeds the reader's hot-key sketch at Submit (nil unless armed);
	// opLat stamps each pending lookup so retire can record pipeline
	// residency into the per-op-class histograms.
	hot   *obs.TopK
	opLat bool

	// Byte-lookup pipeline (netbatch.go): in-flight byte-string Gets whose
	// home bucket lines were prefetched at SubmitGetBytes, completed in FIFO
	// order through onBGet. Nil until OnGetBytesComplete arms it.
	bq     []bGetPending
	bqhead int
	bqtail int
	onBGet func(id uint64, value []byte, found bool)

	// Governor plumbing (nil/zero on an ungoverned table): the handle polls
	// the shared decision word every govPollEvery Submits, feeds its counter
	// deltas as sensors, and actuates adopted decisions only while the
	// pipeline is empty. direct mirrors the decision's Direct bit: Submit
	// answers each lookup synchronously through getLocal instead of the
	// prefetch ring.
	gov        *governor.Governor
	govWord    uint64
	direct     bool
	govCnt     int
	govLastNS  int64
	govPrevOps uint64 // Gets at last poll
	govPrevPB  uint64 // Piggybacked at last poll
	govPrevSk  uint64 // Filter.TagSkips at last poll
	govPrevLn  uint64 // Filter.KeyLines+TagSkips at last poll
}

type rpending struct {
	key    uint64
	id     uint64
	part   uint64
	idx    uint64 // partition-local
	probes uint64
	rval   uint64 // resolved value of a parked leader (state != stateProbing)
	trace  uint64 // lifecycle trace id; 0 = not sampled
	start  int64  // submit stamp for op-latency recording; 0 = not armed
	chain  int32  // 1+index into merged of the newest piggybacked Get; 0 = none
	ngets  int32
	tag    uint8 // key's tag fingerprint (table.TagOf of the full hash)
	state  uint8
}

// NewReadHandle creates a reader pipeline. Under the default
// table.KernelSWAR kernel the handle probes whole cache lines branchlessly
// (the DRAMHiT-P-SIMD read path, §3.4).
func (t *Table) NewReadHandle() *ReadHandle {
	capacity := 1
	for capacity < t.cfg.PrefetchWindow+1 {
		capacity <<= 1
	}
	r := &ReadHandle{
		t:       t,
		q:       make([]rpending, capacity),
		mask:    capacity - 1,
		window:  t.cfg.PrefetchWindow,
		kernel:  t.kernel,
		filter:  t.filter,
		combine: t.combine == table.CombineOn,
	}
	if r.combine {
		r.rtags = make([]uint64, (capacity+7)/8)
	}
	if t.layout == table.LayoutBucket {
		r.rbhs = t.newPartHandles()
	}
	if t.obsReg != nil {
		n := t.nread.Add(1)
		r.obsw = t.obsReg.Worker("dramhitp-r" + strconv.Itoa(int(n)-1))
		r.trace = t.obsReg.Trace()
		r.traceEvery = t.obsReg.TraceSampleN()
		r.hot = r.obsw.Hot
		r.opLat = t.obsReg.OpLatencyEnabled()
	}
	if t.gov != nil {
		r.gov = t.gov
		r.govWord = t.gov.Word()
		r.applyDecision(governor.Unpack(r.govWord))
	}
	return r
}

// applyDecision actuates a governor decision on this reader. Callers must
// only invoke it while the pipeline is empty (head == tail): the tagcnt
// occupancy counts are balanced there, so toggling piggybacking cannot strand
// a parked chain, and the filter toggle is traversal-safe because PublishTag
// on the write path is unconditional. The decision is clamped to the table's
// constructed capabilities.
func (r *ReadHandle) applyDecision(d governor.Decision) {
	r.direct = d.Direct
	w := d.Window
	if w < 1 {
		w = 1
	}
	if w > r.t.cfg.PrefetchWindow {
		w = r.t.cfg.PrefetchWindow // ring capacity was sized for this
	}
	r.window = w
	r.combine = d.Combine && r.rtags != nil
	if d.Filter && r.t.filter == table.FilterTags {
		r.filter = table.FilterTags
	} else {
		r.filter = table.FilterNone
	}
}

// govPollEvery mirrors the core table's Submit-poll throttle: one time.Now
// plus one atomic load per govPollEvery Submit calls.
const govPollEvery = 64

// govPoll feeds the governor this reader's sensor deltas and adopts a
// changed decision at the empty-pipeline boundary.
func (r *ReadHandle) govPoll() {
	if r.govCnt++; r.govCnt < govPollEvery {
		return
	}
	r.govCnt = 0
	now := time.Now().UnixNano()
	if r.govLastNS != 0 {
		lines := r.Filter.KeyLines + r.Filter.TagSkips
		r.gov.Feed(governor.Sample{
			Ops:         r.Gets - r.govPrevOps,
			NS:          uint64(now - r.govLastNS),
			CombineHits: r.Piggybacked - r.govPrevPB,
			TagSkips:    r.Filter.TagSkips - r.govPrevSk,
			Lines:       lines - r.govPrevLn,
		})
		r.govPrevOps, r.govPrevPB = r.Gets, r.Piggybacked
		r.govPrevSk, r.govPrevLn = r.Filter.TagSkips, lines
	}
	r.govLastNS = now
	r.govApply()
}

// govApply adopts a changed decision word, but only while the pipeline is
// empty — the boundary where every actuation is proven safe.
func (r *ReadHandle) govApply() {
	if w := r.gov.Word(); w != r.govWord && r.head == r.tail {
		r.govWord = w
		r.applyDecision(governor.Unpack(w))
	}
}

// submitDirect is Submit's direct-mode body: each lookup is answered
// synchronously through the same no-atomics read path Get uses, skipping the
// ring, the prefetches and the out-of-order completion machinery. Responses
// come back in submission order; the per-ID responses are identical to the
// pipelined path's against the same table state.
func (r *ReadHandle) submitDirect(reqs []table.Request, resps []table.Response) (nreq, nresp int) {
	t := r.t
	for nreq < len(reqs) {
		if nresp >= len(resps) {
			return nreq, nresp
		}
		req := reqs[nreq]
		if r.hot != nil {
			r.hot.OfferSampled(req.Key)
		}
		var startNS int64
		if r.opLat {
			startNS = time.Now().UnixNano()
		}
		var traceID uint64
		if r.trace != nil {
			if r.traceCnt++; r.traceCnt >= r.traceEvery {
				r.traceCnt = 0
				traceID = r.trace.NextID()
				r.trace.Record(traceID, obs.EvSubmit, uint8(table.Get), req.Key, 0)
			}
		}
		var v uint64
		var ok bool
		if r.rbhs != nil {
			v, ok = r.getBucket(req.Key)
		} else if s := t.side.For(req.Key); s != nil {
			v, ok = s.Get()
		} else {
			part, local, tag := t.locateTag(req.Key)
			v, ok = t.getLocal(&t.parts[part], local, req.Key, tag,
				r.filter == table.FilterTags, &r.Filter)
		}
		resps[nresp] = table.Response{ID: req.ID, Value: v, Found: ok}
		nresp++
		r.complete(ok)
		if startNS != 0 {
			r.obsw.Op[obs.OpClass(table.Get, ok)].Record(uint64(time.Now().UnixNano() - startNS))
		}
		if traceID != 0 {
			arg := uint32(0)
			if ok {
				arg = 1
			}
			r.trace.Record(traceID, obs.EvComplete, uint8(table.Get), req.Key, arg)
		}
		nreq++
	}
	return nreq, nresp
}

// obsPublishThrottled tracks the occupancy high-water on every Submit and
// forwards one call in obsPublishEvery to obsPublish — same rationale as
// the core table: per-batch publishing alone would blow the ≤2% observe-on
// budget on batch-16 streams. Flush still publishes unconditionally, so a
// drained pipeline always scrapes exact.
const obsPublishEvery = 64

func (r *ReadHandle) obsPublishThrottled() {
	if occ := uint64(r.head - r.tail); occ > r.occMax {
		r.occMax = occ
	}
	if r.pubCnt++; r.pubCnt >= obsPublishEvery {
		r.pubCnt = 0
		r.obsPublish()
	}
}

// obsPublish copies the reader's plain counters into its registry shard.
// Called at Flush exit and every obsPublishEvery-th Submit
// (batch-amortized, uncontended stores).
func (r *ReadHandle) obsPublish() {
	w := r.obsw
	w.Store(obs.CGets, r.Gets)
	w.Store(obs.CHits, r.Hits)
	w.Store(obs.CPiggybackedGets, r.Piggybacked)
	w.Store(obs.CKeyLines, r.Filter.KeyLines)
	w.Store(obs.CTagSkips, r.Filter.TagSkips)
	w.Store(obs.CTagHits, r.Filter.TagHits)
	w.Store(obs.CTagFalse, r.Filter.TagFalse)
	occ := uint64(r.head - r.tail)
	if occ > r.occMax {
		r.occMax = occ
	}
	w.SetGauge(obs.GWindowOcc, occ)
	w.SetGauge(obs.GWindowMax, r.occMax)
}

// getBucket resolves a uint64 lookup through the key's partition engine,
// folding the engine's bucket-line loads and stash hops into this reader's
// KeyLines (every bucket visit consults key material — there is no sidecar
// to skip from, so the other filter counters stay zero).
func (r *ReadHandle) getBucket(key uint64) (uint64, bool) {
	var kb [8]byte
	putLE(kb[:], key)
	part, _ := r.t.locateBucketBytes(kb[:])
	bh := r.rbhs[part]
	pre := bh.Lines + bh.Hops
	vb, ok := bh.Get(kb[:])
	r.Filter.KeyLines += bh.Lines + bh.Hops - pre
	if !ok {
		return 0, false
	}
	return getLE(vb), true
}

// Get is the direct synchronous read path (two loads, no atomics beyond
// plain atomic loads), bypassing the pipeline.
func (r *ReadHandle) Get(key uint64) (uint64, bool) {
	t := r.t
	if r.rbhs != nil {
		return r.getBucket(key)
	}
	if s := t.side.For(key); s != nil {
		return s.Get()
	}
	part, local, tag := t.locateTag(key)
	return t.getLocal(&t.parts[part], local, key, tag,
		r.filter == table.FilterTags, &r.Filter)
}

// GetBytes looks up a byte-string key directly. The returned slice aliases
// the arena record: valid indefinitely, stale once the key is overwritten.
// Zero-allocation.
func (r *ReadHandle) GetBytes(key []byte) ([]byte, bool) {
	r.t.requireBucket()
	part, _ := r.t.locateBucketBytes(key)
	bh := r.rbhs[part]
	pre := bh.Lines + bh.Hops
	v, ok := bh.Get(key)
	r.Filter.KeyLines += bh.Lines + bh.Hops - pre
	r.complete(ok)
	return v, ok
}

// Submit pipelines lookup requests; completed responses are appended into
// resps exactly as in dramhit.Handle.Submit. With combining on, a request
// whose key already has a pending lookup in the window piggybacks on it
// (one probe, N responses) instead of enqueueing. Returns requests
// consumed and responses written.
func (r *ReadHandle) Submit(reqs []table.Request, resps []table.Response) (nreq, nresp int) {
	if r.obsw != nil {
		defer r.obsPublishThrottled()
	}
	if r.gov != nil {
		r.govPoll()
		if r.direct {
			return r.submitDirect(reqs, resps)
		}
	}
	t := r.t
	for nreq < len(reqs) {
		req := reqs[nreq]
		var part, local uint64
		var tag uint8
		hashed := false
		// In bucket mode reserved keys are ordinary engine keys, so they
		// combine like any other; local carries the engine's full hash (the
		// drain re-derives the bucket against the live, possibly resized
		// state).
		if r.combine && r.head != r.tail &&
			(r.rbhs != nil || t.side.For(req.Key) == nil) {
			if r.rbhs != nil {
				part, local = t.locateBucket(req.Key)
				tag = table.TagOf(local)
			} else {
				part, local, tag = t.locateTag(req.Key)
			}
			hashed = true
			// tagcnt gates the ring scan down to one L1 load when nothing in
			// flight shares the tag byte — the overwhelmingly common case
			// under low skew.
			if r.tagcnt[tag] != 0 {
				if pos := r.combineScan(req.Key, tag); pos >= 0 && r.tryCombine(req.ID, pos) {
					// The sketch feed sits on the combining sidecar path:
					// a piggybacked key is by definition in-window hot, so
					// it must reach the sketch even though no probe issues.
					if r.hot != nil {
						r.hot.OfferSampled(req.Key)
					}
					nreq++
					continue
				}
			}
		}
		for r.head-r.tail >= r.window {
			if blocked := r.processOldest(resps, &nresp); blocked {
				return nreq, nresp
			}
		}
		if !hashed {
			if r.rbhs != nil {
				part, local = t.locateBucket(req.Key)
				tag = table.TagOf(local)
			} else {
				part, local, tag = t.locateTag(req.Key)
			}
		}
		// Feed after the backpressure loop so a blocked-and-resubmitted
		// request is counted once.
		if r.hot != nil {
			r.hot.OfferSampled(req.Key)
		}
		p := rpending{key: req.Key, id: req.ID, part: part, idx: local, tag: tag}
		if r.opLat {
			p.start = time.Now().UnixNano()
		}
		if r.trace != nil {
			if r.traceCnt++; r.traceCnt >= r.traceEvery {
				r.traceCnt = 0
				p.trace = r.trace.NextID()
			}
		}
		if r.rbhs != nil {
			t.parts[part].bkt.Prefetch(local)
			r.push(p)
			nreq++
			continue
		}
		arr := t.parts[part].arr
		if r.filter == table.FilterTags {
			// The cache-hot tag word already proves a doomed home line; only
			// pull the 64-byte data line when it can matter.
			base := local &^ (table.SlotsPerCacheLine - 1)
			if arr.LineCandidates(base, tag)>>(local-base) != 0 {
				r.sink += arr.Prefetch(local)
			}
		} else {
			r.sink += arr.Prefetch(local)
		}
		r.push(p)
		nreq++
	}
	return nreq, nresp
}

// Flush drains the read pipeline.
func (r *ReadHandle) Flush(resps []table.Response) (nresp int, done bool) {
	if r.obsw != nil {
		defer r.obsPublish()
	}
	for r.head > r.tail {
		if blocked := r.processOldest(resps, &nresp); blocked {
			return nresp, false
		}
	}
	if r.gov != nil {
		// The pipeline is provably empty: adopt any pending decision so
		// submit/flush-batched callers actuate within one batch.
		r.govApply()
	}
	return nresp, true
}

// processOldest resolves the oldest pending lookup over its current line,
// reprobing with a fresh prefetch on line crossings. A parked leader (its
// probe already resolved, chain emission stalled on response space) is
// resumed before anything else.
func (r *ReadHandle) processOldest(resps []table.Response, nresp *int) (blocked bool) {
	p := r.q[r.tail&r.mask]
	if p.trace != 0 && p.state == stateProbing {
		r.trace.Record(p.trace, obs.EvProbe, uint8(table.Get), p.key, uint32(p.probes))
	}
	if p.state != stateProbing {
		if r.emitChain(&p, p.rval, p.state == stateHit, resps, nresp) {
			r.pop()
			return false
		}
		r.q[r.tail&r.mask] = p
		return true
	}
	t := r.t
	// Bucket layout: the home bucket line was prefetched at Submit and the
	// probe resolves in-cell, so the drain is one synchronous engine lookup
	// with no reprobe loop (and no side slots — reserved keys are ordinary).
	if r.rbhs != nil {
		if *nresp >= len(resps) {
			return true
		}
		v, ok := r.getBucket(p.key)
		return r.retire(p, v, ok, resps, nresp)
	}
	if s := t.side.For(p.key); s != nil {
		if *nresp >= len(resps) {
			return true
		}
		v, ok := s.Get()
		return r.retire(p, v, ok, resps, nresp)
	}
	arr := t.parts[p.part].arr
	if r.kernel == table.KernelSWAR {
		return r.processOldestSWAR(resps, nresp, p, arr)
	}
	line := slotarr.LineOf(p.idx)
	for {
		if slotarr.LineOf(p.idx) != line || p.probes >= t.partSlots {
			if p.probes >= t.partSlots {
				if *nresp >= len(resps) {
					return true
				}
				return r.retire(p, 0, false, resps, nresp)
			}
			r.pop()
			r.sink += arr.Prefetch(p.idx)
			r.push(p)
			return false
		}
		switch k := arr.Key(p.idx); k {
		case p.key:
			if *nresp >= len(resps) {
				return true
			}
			return r.retire(p, arr.WaitValue(p.idx), true, resps, nresp)
		case table.EmptyKey:
			if *nresp >= len(resps) {
				return true
			}
			return r.retire(p, 0, false, resps, nresp)
		default:
			p.idx++
			if p.idx == t.partSlots {
				p.idx = 0
			}
			p.probes++
		}
	}
}

// processOldestSWAR resolves the oldest pending lookup with the branchless
// cache-line-wide probe of §3.4: one slotarr.LoadKeys4 snapshot of the
// prefetched line's key lanes (passed in registers — no lane array touches
// the stack), one lane-parallel compare covering all four key lanes at once.
// Like the dramhit drains, it opens with an entry-lane peek that resolves
// home-slot hits and home-slot misses-on-empty at exactly the scalar path's
// cost; the kernel engages only once a cluster walk has started. The matched
// lane's value is loaded after its key was observed (the key-then-value
// order every path uses), from the line the kernel just touched, so a hit
// costs no second memory touch; a miss reprobes into the next line. On a
// single-line partition the wrap stays resident and the kernel reruns from
// lane 0 without a reprobe.
// With FilterTags the entry peek is replaced by one load of the packed tag
// word: a rejected line is advanced past with the kernel's exact Miss
// accounting (so the traversal and out-of-order completion order match
// FilterNone bit for bit) and neither its key lanes nor — at reprobe time —
// its data line are touched. A zero (unpublished) tag keeps its lane in
// the candidate mask, so a write racing through the single-writer
// value→key→tag publication sequence can never be missed.
func (r *ReadHandle) processOldestSWAR(resps []table.Response, nresp *int, p rpending, arr *slotarr.Array) (blocked bool) {
	t := r.t
	tagged := r.filter == table.FilterTags
	if !tagged {
		r.Filter.KeyLines++
		switch k := arr.Key(p.idx); k {
		case p.key:
			if *nresp >= len(resps) {
				return true
			}
			return r.retire(p, arr.WaitValue(p.idx), true, resps, nresp)
		case table.EmptyKey:
			if *nresp >= len(resps) {
				return true
			}
			return r.retire(p, 0, false, resps, nresp)
		}
	}
	for {
		if tagged {
			base := p.idx &^ (table.SlotsPerCacheLine - 1)
			if arr.LineCandidates(base, p.tag)>>(p.idx-base) == 0 {
				r.Filter.TagSkips++
				valid := t.partSlots - base
				if valid > table.SlotsPerCacheLine {
					valid = table.SlotsPerCacheLine
				}
				p.probes += valid - (p.idx - base)
				if p.probes >= t.partSlots {
					if *nresp >= len(resps) {
						return true
					}
					return r.retire(p, 0, false, resps, nresp)
				}
				next := base + table.SlotsPerCacheLine
				if next >= t.partSlots {
					next = 0
				}
				p.idx = next
				if slotarr.LineOf(next) == slotarr.LineOf(base) {
					continue
				}
				r.pop()
				if arr.LineCandidates(next, p.tag) != 0 {
					r.sink += arr.Prefetch(next)
				}
				r.push(p)
				return false
			}
			r.Filter.KeyLines++
		}
		l0, l1, l2, l3, base, valid := arr.LoadKeys4(p.idx)
		lane, res := simd.ProbeLine4(l0, l1, l2, l3, p.key, table.EmptyKey, int(p.idx-base))
		switch res {
		case simd.HitKey:
			if *nresp >= len(resps) {
				return true
			}
			if tagged {
				r.Filter.TagHits++
			}
			return r.retire(p, arr.WaitValue(base+uint64(lane)), true, resps, nresp)
		case simd.HitEmpty:
			if *nresp >= len(resps) {
				return true
			}
			if tagged {
				r.Filter.TagHits++
			}
			return r.retire(p, 0, false, resps, nresp)
		}
		if tagged {
			r.Filter.TagFalse++
		}
		p.probes += valid - (p.idx - base)
		if p.probes >= t.partSlots {
			if *nresp >= len(resps) {
				return true
			}
			return r.retire(p, 0, false, resps, nresp)
		}
		next := base + table.SlotsPerCacheLine
		if next >= t.partSlots {
			next = 0
		}
		p.idx = next
		if slotarr.LineOf(next) == slotarr.LineOf(base) {
			if !tagged {
				r.Filter.KeyLines++
			}
			continue
		}
		r.pop()
		if tagged && arr.LineCandidates(next, p.tag) == 0 {
			// Rejected at reprobe: skip the data prefetch, the drain's gate
			// will bounce the line from the same cache-hot tag word.
			r.push(p)
			return false
		}
		r.sink += arr.Prefetch(p.idx)
		r.push(p)
		return false
	}
}

func (r *ReadHandle) complete(hit bool) {
	r.Gets++
	if hit {
		r.Hits++
	}
}

// GetBatch performs positional batched lookups (see dramhit.Handle.GetBatch).
func (r *ReadHandle) GetBatch(keys []uint64, vals []uint64, found []bool) {
	reqs := make([]table.Request, len(keys))
	for i, k := range keys {
		reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i)}
	}
	resps := make([]table.Response, len(keys))
	scatter := func(rs []table.Response) {
		for _, resp := range rs {
			vals[resp.ID] = resp.Value
			found[resp.ID] = resp.Found
		}
	}
	rem := reqs
	for len(rem) > 0 {
		nreq, nresp := r.Submit(rem, resps)
		scatter(resps[:nresp])
		rem = rem[nreq:]
	}
	for {
		nresp, done := r.Flush(resps)
		scatter(resps[:nresp])
		if done {
			return
		}
	}
}

// hashOf is exposed for tests that need to co-locate keys in partitions.
func (t *Table) hashOf(key uint64) uint64 { return hashfn.Fastrange(t.hash(key), t.total) }
