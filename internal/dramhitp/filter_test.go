package dramhitp

import (
	"sync"
	"testing"

	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// newFilterTable builds a single-producer single-consumer table: with one
// writer and one partition owner per consumer thread, apply order — and
// therefore slot placement — is deterministic, so a FilterNone table and a
// FilterTags table fed the same update stream hold byte-identical key
// arrays. That determinism is what lets the equivalence tests below demand
// response-by-response equality rather than just set equality.
func newFilterTable(n uint64, filter table.ProbeFilter) *Table {
	t := New(Config{
		Slots:                 n,
		Producers:             1,
		Consumers:             2,
		PartitionsPerConsumer: 2,
		ProbeKernel:           table.KernelSWAR,
		ProbeFilter:           filter,
	})
	t.Start()
	return t
}

// TestPFilterReadPipelineEquivalence is the dramhitp analogue of the dramhit
// filter property test: tags and none tables populated identically must
// return identical responses in identical order through the pipelined read
// path, and the filter counters must satisfy the accounting identity
// KeyLines(tags) + TagSkips(tags) == KeyLines(none) — every line visit is
// either admitted to the key lanes or skipped, never both, never neither.
func TestPFilterReadPipelineEquivalence(t *testing.T) {
	mk := func(filter table.ProbeFilter) *Table {
		tbl := newFilterTable(4096, filter)
		w := tbl.NewWriteHandle()
		keys := workload.UniqueKeys(42, 2500) // ~61% fill: real reprobe chains
		for i, k := range keys {
			w.Put(k, k^7)
			if i%9 == 0 {
				w.Delete(k) // tombstones leave stale (nonmatching-safe) tags
			}
			if i%13 == 0 {
				w.Upsert(k, 3)
			}
		}
		w.Barrier()
		w.Close()
		return tbl
	}
	noneT, tagsT := mk(table.FilterNone), mk(table.FilterTags)
	defer noneT.Close()
	defer tagsT.Close()

	if noneT.Filter() != table.FilterNone || tagsT.Filter() != table.FilterTags {
		t.Fatalf("filter wiring: none=%v tags=%v", noneT.Filter(), tagsT.Filter())
	}

	// Hits, deleted keys, and structural misses in one stream.
	probe := append(append([]uint64{}, workload.UniqueKeys(42, 2500)...),
		workload.MissKeys(42, 2500, 800)...)
	rn, rt := noneT.NewReadHandle(), tagsT.NewReadHandle()
	resN := make([]table.Response, len(probe)+8)
	resT := make([]table.Response, len(probe)+8)
	drive := func(r *ReadHandle, res []table.Response) int {
		reqs := make([]table.Request, len(probe))
		for i, k := range probe {
			reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i)}
		}
		n := 0
		rem := reqs
		for len(rem) > 0 {
			nreq, nresp := r.Submit(rem, res[n:])
			rem = rem[nreq:]
			n += nresp
		}
		for {
			nresp, done := r.Flush(res[n:])
			n += nresp
			if done {
				return n
			}
		}
	}
	nn, nt := drive(rn, resN), drive(rt, resT)
	if nn != nt {
		t.Fatalf("response counts diverged: none %d tags %d", nn, nt)
	}
	for i := 0; i < nn; i++ {
		if resN[i] != resT[i] {
			t.Fatalf("response %d diverged: none %+v tags %+v", i, resN[i], resT[i])
		}
	}
	if rn.Gets != rt.Gets || rn.Hits != rt.Hits {
		t.Fatalf("reader stats diverged: none gets=%d hits=%d, tags gets=%d hits=%d",
			rn.Gets, rn.Hits, rt.Gets, rt.Hits)
	}

	// None mode must not touch the tag counters at all.
	if rn.Filter.TagSkips != 0 || rn.Filter.TagHits != 0 || rn.Filter.TagFalse != 0 {
		t.Fatalf("none-mode reader has tag counters: %+v", rn.Filter)
	}
	// The accounting identity: tags mode visits exactly the lines none mode
	// visits; each is either gated out or admitted.
	if got := rt.Filter.KeyLines + rt.Filter.TagSkips; got != rn.Filter.KeyLines {
		t.Fatalf("line accounting: tags KeyLines+TagSkips = %d, none KeyLines = %d (tags %+v)",
			got, rn.Filter.KeyLines, rt.Filter)
	}
	if rt.Filter.TagHits+rt.Filter.TagFalse > rt.Filter.KeyLines {
		t.Fatalf("admitted-line accounting: hits %d + false %d > keylines %d",
			rt.Filter.TagHits, rt.Filter.TagFalse, rt.Filter.KeyLines)
	}
	if rt.Filter.TagSkips == 0 {
		t.Fatal("tags reader skipped zero lines over 800 structural misses at 61% fill")
	}

	// Write-path counters: the tags table's owners gated their probe loops,
	// the none table's owners never touched the tag counters.
	wn, wt := noneT.WriteFilterStats(), tagsT.WriteFilterStats()
	if wn.TagSkips != 0 || wn.TagHits != 0 || wn.TagFalse != 0 {
		t.Fatalf("none-mode write stats have tag counters: %+v", wn)
	}
	if wt.KeyLines == 0 || wt.KeyLines+wt.TagSkips != wn.KeyLines {
		t.Fatalf("write-path line accounting: tags %+v vs none %+v", wt, wn)
	}
}

// TestPFilterSyncGetCounts pins the direct (non-pipelined) Get path: it must
// consult the same filter and account its line visits on the caller's
// handle-local FilterStats.
func TestPFilterSyncGetCounts(t *testing.T) {
	tbl := newFilterTable(4096, table.FilterTags)
	defer tbl.Close()
	w := tbl.NewWriteHandle()
	keys := workload.UniqueKeys(5, 3000) // ~73% fill
	for _, k := range keys {
		w.Put(k, k+1)
	}
	w.Barrier()
	w.Close()

	r := tbl.NewReadHandle()
	for _, k := range keys[:500] {
		if v, ok := r.Get(k); !ok || v != k+1 {
			t.Fatalf("key %d: (%d, %v)", k, v, ok)
		}
	}
	hitLines := r.Filter
	if hitLines.KeyLines == 0 {
		t.Fatal("sync Get path recorded no key-line visits")
	}
	for _, k := range workload.MissKeys(5, 3000, 500) {
		if _, ok := r.Get(k); ok {
			t.Fatalf("structural miss key %d reported found", k)
		}
	}
	if r.Filter.TagSkips == hitLines.TagSkips {
		t.Fatal("500 negative sync Gets at 73% fill produced zero tag skips")
	}
}

// TestPFilterSkipsNegativeLookups is the headline-win check on the
// partitioned reader: at high fill, negative lookups walk long clusters, and
// the tag filter must reject most of those lines from the tag word alone.
func TestPFilterSkipsNegativeLookups(t *testing.T) {
	const slots = 4096
	fill := workload.UniqueKeys(3, slots*3/4)
	mk := func(filter table.ProbeFilter) *Table {
		tbl := newFilterTable(slots, filter)
		w := tbl.NewWriteHandle()
		for _, k := range fill {
			w.Put(k, 1)
		}
		w.Barrier()
		w.Close()
		return tbl
	}
	noneT, tagsT := mk(table.FilterNone), mk(table.FilterTags)
	defer noneT.Close()
	defer tagsT.Close()

	miss := workload.MissKeys(3, len(fill), 4096)
	vals := make([]uint64, len(miss))
	found := make([]bool, len(miss))
	rn, rt := noneT.NewReadHandle(), tagsT.NewReadHandle()
	for _, r := range []*ReadHandle{rn, rt} {
		r.GetBatch(miss, vals, found)
		for i := range found {
			if found[i] {
				t.Fatalf("miss key %d reported found", miss[i])
			}
		}
	}
	if rt.Filter.TagSkips == 0 {
		t.Fatal("tags reader skipped no lines on an all-miss workload")
	}
	// A 1/255 per-lane false-positive rate must cut key-line loads by far
	// more than half on negative lookups; 2x is a very loose floor.
	if rt.Filter.KeyLines*2 >= rn.Filter.KeyLines {
		t.Fatalf("tag filter too weak: tags loaded %d key lines, none loaded %d",
			rt.Filter.KeyLines, rn.Filter.KeyLines)
	}
	if got := rt.Filter.KeyLines + rt.Filter.TagSkips; got != rn.Filter.KeyLines {
		t.Fatalf("line accounting: %d != %d", got, rn.Filter.KeyLines)
	}
}

// TestPFilterConcurrentReadersAndWriters races pipelined readers against
// delegated writers on a FilterTags table. Under -race this exercises the
// single-writer value→key→tag publication order against concurrent tag-word
// loads: a reader that sees a nonzero tag must find the key already
// published, and a reader that sees zero treats the lane as must-check, so
// no interleaving can produce a false negative for a key whose Barrier
// completed before the read.
func TestPFilterConcurrentReadersAndWriters(t *testing.T) {
	tbl := New(Config{
		Slots:                 1 << 15,
		Producers:             4,
		Consumers:             3,
		ProbeFilter:           table.FilterTags,
		PartitionsPerConsumer: 2,
	})
	tbl.Start()
	defer tbl.Close()

	const perWriter = 3000
	keys := workload.UniqueKeys(11, 4*perWriter)
	// Stable keys are barriered in before readers start: lookups for them
	// must always hit, whatever the concurrent writers are doing.
	stable := keys[:perWriter]
	wh := tbl.NewWriteHandle()
	for _, k := range stable {
		wh.Put(k, k^0xbeef)
	}
	wh.Barrier()
	wh.Close()

	var wg sync.WaitGroup
	for w := 1; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tbl.NewWriteHandle()
			defer h.Close()
			for _, k := range keys[w*perWriter : (w+1)*perWriter] {
				h.Put(k, k^0xbeef)
			}
			h.Barrier()
		}(w)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := tbl.NewReadHandle()
			vals := make([]uint64, len(stable))
			found := make([]bool, len(stable))
			for round := 0; round < 5; round++ {
				r.GetBatch(stable, vals, found)
				for i, k := range stable {
					if !found[i] || vals[i] != k^0xbeef {
						t.Errorf("goroutine %d round %d: stable key %d got (%d, %v)",
							g, round, k, vals[i], found[i])
						return
					}
				}
			}
			if r.Filter.KeyLines == 0 {
				t.Errorf("goroutine %d: reader recorded no key-line visits", g)
			}
		}(g)
	}
	wg.Wait()

	// After all barriers, every key — including those inserted concurrently
	// with the readers — must be visible with a published, matching tag.
	r := tbl.NewReadHandle()
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	r.GetBatch(keys, vals, found)
	for i, k := range keys {
		if !found[i] || vals[i] != k^0xbeef {
			t.Fatalf("key %d: (%d, %v)", k, vals[i], found[i])
		}
	}
}

// TestPFilterScalarForcedNone pins the config contract: the tag sidecar is a
// line-granular accelerator, so scalar-kernel tables must silently run
// FilterNone (and allocate no tag words) even when tags are requested.
func TestPFilterScalarForcedNone(t *testing.T) {
	tbl := New(Config{
		Slots:       1024,
		Producers:   1,
		Consumers:   1,
		ProbeKernel: table.KernelScalar,
		ProbeFilter: table.FilterTags,
	})
	if tbl.Filter() != table.FilterNone {
		t.Fatalf("scalar table filter = %v, want none", tbl.Filter())
	}
	for i := range tbl.parts {
		if tbl.parts[i].arr.HasTags() {
			t.Fatalf("scalar table partition %d allocated a tag sidecar", i)
		}
	}
	// Default SWAR tables get tags.
	def := New(Config{Slots: 1024, Producers: 1, Consumers: 1})
	if def.Filter() != table.FilterTags {
		t.Fatalf("default filter = %v, want tags", def.Filter())
	}
	for i := range def.parts {
		if !def.parts[i].arr.HasTags() {
			t.Fatalf("default table partition %d missing tag sidecar", i)
		}
	}
}
