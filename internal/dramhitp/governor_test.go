package dramhitp

import (
	"math/rand"
	"sync"
	"testing"

	"dramhit/internal/governor"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// loadPair builds two identically-loaded tables, one ungoverned and one with
// the given governor mode, and returns them started. Callers must Close both.
func loadPair(t *testing.T, slots uint64, mode table.GovernorMode, keys []uint64) (pipe, gov *Table) {
	t.Helper()
	build := func(m table.GovernorMode) *Table {
		tb := New(Config{Slots: slots, Producers: 1, Consumers: 2, Governor: m})
		tb.Start()
		w := tb.NewWriteHandle()
		for i, k := range keys {
			w.Put(k, uint64(i)+1)
		}
		w.Barrier()
		w.Close()
		return tb
	}
	return build(table.GovernorOff), build(mode)
}

// TestReadDirectEquivalence is the direct≡pipelined property for the
// partitioned read path: a forced-direct table must answer every lookup —
// hits, misses, reserved keys — identically to the ungoverned pipeline,
// per ID, over randomized batched streams with random flush boundaries.
func TestReadDirectEquivalence(t *testing.T) {
	const slots = 1 << 10
	keys := workload.UniqueKeys(31, slots/2)
	pipeT, dirT := loadPair(t, slots, table.GovernorDirect, keys)
	defer pipeT.Close()
	defer dirT.Close()

	rp, rd := pipeT.NewReadHandle(), dirT.NewReadHandle()
	if !rd.direct {
		t.Fatal("GovernorDirect read handle did not start direct")
	}
	rng := rand.New(rand.NewSource(7))
	collect := func(r *ReadHandle, reqs []table.Request) map[uint64]table.Response {
		out := make(map[uint64]table.Response, len(reqs))
		resps := make([]table.Response, 16)
		rem := reqs
		for len(rem) > 0 {
			n, nr := r.Submit(rem, resps)
			for _, resp := range resps[:nr] {
				out[resp.ID] = resp
			}
			rem = rem[n:]
		}
		for {
			nr, done := r.Flush(resps)
			for _, resp := range resps[:nr] {
				out[resp.ID] = resp
			}
			if done {
				return out
			}
		}
	}
	for round := 0; round < 50; round++ {
		reqs := make([]table.Request, 1+rng.Intn(200))
		for i := range reqs {
			var k uint64
			switch rng.Intn(10) {
			case 0:
				k = table.EmptyKey
			case 1:
				k = table.TombstoneKey
			case 2:
				k = uint64(rng.Int63()) | 1<<40 // almost surely absent
			default:
				k = keys[rng.Intn(len(keys))]
			}
			reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(round)<<32 | uint64(i)}
		}
		mp, md := collect(rp, reqs), collect(rd, reqs)
		if len(mp) != len(md) {
			t.Fatalf("round %d: pipelined %d responses, direct %d", round, len(mp), len(md))
		}
		for id, p := range mp {
			if d, ok := md[id]; !ok || d != p {
				t.Fatalf("round %d ID %d: pipelined %+v direct %+v", round, id, p, md[id])
			}
		}
	}
	// The direct reader shares the pipelined reader's hit accounting.
	if rp.Gets != rd.Gets || rp.Hits != rd.Hits {
		t.Fatalf("read accounting diverged: pipelined (%d,%d) direct (%d,%d)",
			rp.Gets, rp.Hits, rd.Gets, rd.Hits)
	}
}

// TestReadGovernorFlipMidStream exercises mid-stream decision flips on the
// partitioned read path under -race: readers on one GovernorAuto table
// alternate direct and full-pipelined configurations at empty-pipeline
// boundaries while the shared controller steps from their concurrent sensor
// feeds. Every lookup must keep returning the loaded value in both modes.
func TestReadGovernorFlipMidStream(t *testing.T) {
	const slots = 1 << 12
	keys := workload.UniqueKeys(13, 512)
	tb := New(Config{Slots: slots, Producers: 1, Consumers: 2, Governor: table.GovernorAuto})
	tb.Start()
	defer tb.Close()
	w := tb.NewWriteHandle()
	for i, k := range keys {
		w.Put(k, uint64(i)+1)
	}
	w.Barrier()
	w.Close()

	const goroutines = 8
	const rounds = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := tb.NewReadHandle()
			full := governor.Decision{Window: DefaultPrefetchWindow, Combine: true, Filter: true}
			dir := governor.Decision{Direct: true, Window: DefaultPrefetchWindow, Filter: true}
			vals := make([]uint64, len(keys))
			found := make([]bool, len(keys))
			for round := 0; round < rounds; round++ {
				r.GetBatch(keys, vals, found) // flushes internally: pipeline empty after
				for i := range keys {
					if !found[i] || vals[i] != uint64(i)+1 {
						t.Errorf("g%d round %d key %d: (%d,%v), want (%d,true)",
							g, round, keys[i], vals[i], found[i], i+1)
						return
					}
				}
				if (round+g)%2 == 0 {
					r.applyDecision(dir)
				} else {
					r.applyDecision(full)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestReadGovernorWiring pins the partitioned config contract: off is the
// zero value and attaches nothing; auto starts pipelined; direct starts
// pinned; capability clamps hold.
func TestReadGovernorWiring(t *testing.T) {
	off := New(Config{Slots: 64})
	if off.gov != nil {
		t.Fatal("GovernorOff table allocated a governor")
	}
	if _, _, _, ok := off.GovernorState(); ok {
		t.Fatal("GovernorState ok on an ungoverned table")
	}
	auto := New(Config{Slots: 64, Governor: table.GovernorAuto})
	if d, _, _, ok := auto.GovernorState(); !ok || d.Direct {
		t.Fatalf("auto initial state: ok=%v d=%v", ok, d)
	}
	dir := New(Config{Slots: 64, Governor: table.GovernorDirect})
	if d, _, pinned, ok := dir.GovernorState(); !ok || !pinned || !d.Direct {
		t.Fatalf("direct state: ok=%v pinned=%v d=%v", ok, pinned, d)
	}
	// Capability clamp: a combining-off table must never actuate combining.
	offc := New(Config{Slots: 64, Combining: table.CombineOff, Governor: table.GovernorAuto})
	r := offc.NewReadHandle()
	r.applyDecision(governor.Decision{Window: 8, Combine: true, Filter: true})
	if r.combine {
		t.Fatal("combining actuated on a CombineOff table")
	}
}

// TestReadDirectZeroAlloc pins the direct read path's zero-allocation
// guarantee.
func TestReadDirectZeroAlloc(t *testing.T) {
	tb := New(Config{Slots: 1 << 10, Producers: 1, Consumers: 1, Governor: table.GovernorDirect})
	tb.Start()
	defer tb.Close()
	w := tb.NewWriteHandle()
	keys := workload.UniqueKeys(3, 256)
	for i, k := range keys {
		w.Put(k, uint64(i)+1)
	}
	w.Barrier()
	w.Close()
	r := tb.NewReadHandle()
	reqs := make([]table.Request, len(keys))
	for i, k := range keys {
		reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i)}
	}
	resps := make([]table.Response, len(keys))
	if avg := testing.AllocsPerRun(100, func() {
		rem := reqs
		for len(rem) > 0 {
			n, nr := r.Submit(rem, resps)
			rem = rem[n:]
			_ = nr
		}
	}); avg != 0 {
		t.Fatalf("direct read Submit allocates %.1f per run, want 0", avg)
	}
}
