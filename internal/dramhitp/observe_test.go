package dramhitp

import (
	"math/rand"
	"testing"

	"dramhit/internal/obs"
	"dramhit/internal/table"
)

func newObsTable(reg *obs.Registry) *Table {
	t := New(Config{
		Slots:                 1 << 13,
		Producers:             2,
		Consumers:             2,
		PartitionsPerConsumer: 2,
		Observe:               reg,
	})
	t.Start()
	return t
}

// obsFill delegates a write workload (with duplicate keys so coalescing
// fires) and barriers it visible.
func obsFill(t *Table, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	w := t.NewWriteHandle()
	for i := 0; i < n; i++ {
		w.Upsert(uint64(rng.Intn(n/4)+1), 1)
	}
	w.Barrier()
	w.Close()
}

// obsRead pipelines Gets (heavy duplication so piggybacking fires) and
// returns the responses plus the handle for counter inspection.
func obsRead(t *Table, n int, seed int64) ([]table.Response, *ReadHandle) {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]table.Request, n)
	for i := range reqs {
		reqs[i] = table.Request{Op: table.Get, Key: uint64(rng.Intn(n/2) + 1), ID: uint64(i)}
	}
	r := t.NewReadHandle()
	buf := make([]table.Response, 64)
	var resps []table.Response
	rem := reqs
	for len(rem) > 0 {
		nreq, nresp := r.Submit(rem, buf)
		resps = append(resps, buf[:nresp]...)
		rem = rem[nreq:]
	}
	for {
		nresp, done := r.Flush(buf)
		resps = append(resps, buf[:nresp]...)
		if done {
			break
		}
	}
	return resps, r
}

// TestPObserveBitIdentical: attaching a registry must not change a single
// read response or any handle counter of the partitioned table.
func TestPObserveBitIdentical(t *testing.T) {
	base := newObsTable(nil)
	obsd := newObsTable(obs.NewWith(1024, 8))
	defer base.Close()
	defer obsd.Close()
	obsFill(base, 6000, 21)
	obsFill(obsd, 6000, 21)
	if base.Len() != obsd.Len() {
		t.Fatalf("table contents differ after writes: %d vs %d", base.Len(), obsd.Len())
	}
	r1, h1 := obsRead(base, 8000, 33)
	r2, h2 := obsRead(obsd, 8000, 33)
	if len(r1) != len(r2) {
		t.Fatalf("response counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("response %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
	if h1.Gets != h2.Gets || h1.Hits != h2.Hits || h1.Piggybacked != h2.Piggybacked || h1.Filter != h2.Filter {
		t.Fatalf("read stats differ:\n  off: %d/%d/%d %+v\n  on:  %d/%d/%d %+v",
			h1.Gets, h1.Hits, h1.Piggybacked, h1.Filter,
			h2.Gets, h2.Hits, h2.Piggybacked, h2.Filter)
	}
}

// TestPObservePublished pins the publish contract on both handle kinds and
// the pull source.
func TestPObservePublished(t *testing.T) {
	reg := obs.NewWith(1<<15, 1)
	tb := newObsTable(reg)
	defer tb.Close()
	obsFill(tb, 6000, 5)
	_, rh := obsRead(tb, 6000, 7)

	var wsends, rgets, rhits, rpig uint64
	for _, w := range reg.Workers() {
		switch w.Name()[:9] {
		case "dramhitp-":
		default:
			t.Fatalf("unexpected worker %q", w.Name())
		}
		wsends += w.Counter(obs.CQueueSends)
		rgets += w.Counter(obs.CGets)
		rhits += w.Counter(obs.CHits)
		rpig += w.Counter(obs.CPiggybackedGets)
	}
	if wsends == 0 {
		t.Error("no delegation sends published")
	}
	if rgets != rh.Gets || rhits != rh.Hits || rpig != rh.Piggybacked {
		t.Errorf("published read counters %d/%d/%d, want %d/%d/%d",
			rgets, rhits, rpig, rh.Gets, rh.Hits, rh.Piggybacked)
	}

	snap := reg.TakeSnapshot()
	src, ok := snap.Sources["dramhitp"]
	if !ok {
		t.Fatal("dramhitp pull source missing")
	}
	if src["live"] != float64(tb.Len()) {
		t.Errorf("pull source live = %v, want %d", src["live"], tb.Len())
	}
	if src["partitions"] != float64(tb.Partitions()) {
		t.Errorf("pull source partitions = %v, want %d", src["partitions"], tb.Partitions())
	}

	// With 1-in-1 sampling the read pipeline must leave complete lifecycles.
	evs := reg.Trace().Snapshot()
	var submits, completes int
	for _, e := range evs {
		switch e.Kind {
		case obs.EvSubmit:
			submits++
		case obs.EvComplete:
			completes++
		}
	}
	if submits == 0 || completes == 0 {
		t.Fatalf("trace missing lifecycle events: %d submits, %d completes", submits, completes)
	}
}

// TestPObserveZeroAlloc pins the pipelined read path at zero allocations per
// batch with observation off AND on.
func TestPObserveZeroAlloc(t *testing.T) {
	armed := obs.NewWith(4096, 8)
	armed.EnableHotKeys(256)
	armed.EnableOpLatency()
	for _, mode := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"off", nil},
		{"on", obs.NewWith(4096, 8)},
		// Hot-key sketch feed and per-op-class latency must stay
		// allocation-free on the pipelined read path.
		{"hotkeys+oplat", armed},
	} {
		tb := newObsTable(mode.reg)
		obsFill(tb, 4000, 3)
		r := tb.NewReadHandle()
		reqs := make([]table.Request, 2048)
		rng := rand.New(rand.NewSource(9))
		for i := range reqs {
			reqs[i] = table.Request{Op: table.Get, Key: uint64(rng.Intn(2000) + 1), ID: uint64(i)}
		}
		buf := make([]table.Response, len(reqs))
		run := func() {
			rem := reqs
			for len(rem) > 0 {
				nreq, _ := r.Submit(rem, buf)
				rem = rem[nreq:]
			}
			for {
				if _, done := r.Flush(buf); done {
					break
				}
			}
		}
		run() // warm the merged-node arena
		if n := testing.AllocsPerRun(5, run); n != 0 {
			t.Errorf("observe %s: %v allocs per batch, want 0", mode.name, n)
		}
		tb.Close()
	}
	snap := armed.TakeSnapshot()
	if len(snap.HotKeys) == 0 {
		t.Error("armed registry collected no hot keys")
	}
	if snap.OpLatency["get_hit"].Count == 0 {
		t.Error("armed registry recorded no get_hit latencies")
	}
}
