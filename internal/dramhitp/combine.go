// In-window request combining for the partitioned table (Config.Combining).
//
// The two handle kinds merge duplicate-key work at opposite ends of the
// delegation fabric:
//
//   - WriteHandle coalesces Upserts: a small per-handle window holds
//     (key, delta) pairs and folds a duplicate key's delta into the held
//     entry instead of sending a second delegation message. Held entries
//     drain on window overflow and — before anything that could observe
//     them — on Flush, Barrier, Close, and same-key Put/Delete, so the
//     partition owner still sees one linearizable per-key stream.
//
//   - ReadHandle piggybacks Gets: a tag-byte sidecar over the prefetch
//     ring (same scheme as dramhit.Handle) spots an in-flight lookup of
//     the same key; the newcomer chains onto it and the one probe's
//     result fans out to every chained request ID. A chain that outgrows
//     the response buffer parks its resolved leader at the queue head and
//     resumes on the next process call, so backpressure never drops a
//     response.
//
// Both sides touch memory exactly once per distinct in-flight key: a fold
// or a piggyback costs no delegation slot, no prefetch, and no probe.
package dramhitp

import (
	"math/bits"
	"time"

	"dramhit/internal/delegation"
	"dramhit/internal/obs"
	"dramhit/internal/simd"
	"dramhit/internal/table"
)

// coalesceWindow is the WriteHandle hold capacity. Small and fixed: the
// scan is a linear pass over at most 16 resident keys (two cache lines),
// cheaper than the delegation enqueue it saves even on a miss.
const coalesceWindow = 16

// maxCombinedGets caps one leader's piggyback chain so a single hot key
// cannot grow an unbounded merged-node arena.
const maxCombinedGets = 64

// rpending.state values. A parked leader (stateHit/stateMiss) has resolved
// its probe and is only waiting for response-buffer space to finish
// emitting its chain.
const (
	stateProbing = iota
	stateHit
	stateMiss
)

// rmerged is one piggybacked Get: just the request ID to answer with the
// leader's result, and the chain link (1+index; 0 terminates).
type rmerged struct {
	id   uint64
	next int32
}

// holdUpsert folds delta into a held same-key entry, or holds a new one.
// Partition fullness is checked at hold time, mirroring send, so the
// caller sees the same drop signal the direct path would give it.
func (w *WriteHandle) holdUpsert(key, delta uint64) bool {
	for i := 0; i < w.cn; i++ {
		if w.ckeys[i] == key {
			w.cvals[i] += delta
			w.Combined++
			return true
		}
	}
	t := w.t
	part := t.partOf(key)
	if t.layout != table.LayoutBucket && t.parts[part].full.Load() {
		t.dropped.Add(1)
		return false
	}
	if w.cn == coalesceWindow {
		w.flushHeld()
	}
	w.ckeys[w.cn] = key
	w.cvals[w.cn] = delta
	w.cn++
	return true
}

// flushHeld delegates every held upsert to its partition owner. Fullness
// was checked at hold time (and putLocal re-checks capacity regardless),
// so the flush sends unconditionally.
func (w *WriteHandle) flushHeld() {
	t := w.t
	for i := 0; i < w.cn; i++ {
		part := t.partOf(w.ckeys[i])
		w.p.Send(t.ownerOf(part), delegation.Message{A: w.ckeys[i], B: w.cvals[i], Aux: uint64(table.Upsert)})
	}
	w.sends += uint64(w.cn)
	w.cn = 0
}

// flushKey releases just the held entry for key, preserving per-key
// operation order when a Put or Delete trails a held Upsert.
func (w *WriteHandle) flushKey(key uint64) {
	for i := 0; i < w.cn; i++ {
		if w.ckeys[i] != key {
			continue
		}
		t := w.t
		part := t.partOf(key)
		w.p.Send(t.ownerOf(part), delegation.Message{A: key, B: w.cvals[i], Aux: uint64(table.Upsert)})
		w.sends++
		w.cn--
		w.ckeys[i] = w.ckeys[w.cn]
		w.cvals[i] = w.cvals[w.cn]
		return
	}
}

// push enqueues p, mirroring its tag into the ring's tag sidecar so later
// Submits can spot it with one byte-wide scan per eight slots.
func (r *ReadHandle) push(p rpending) {
	s := r.head & r.mask
	r.q[s] = p
	if r.combine {
		shift := uint(s&7) * 8
		r.rtags[s>>3] = r.rtags[s>>3]&^(0xff<<shift) | uint64(p.tag)<<shift
		r.tagcnt[p.tag]++
	}
	r.head++
	if p.trace != 0 {
		// First entry (probes == 0) is the submission; a re-push with probe
		// progress is a line crossing's reprobe.
		if p.probes == 0 {
			r.trace.Record(p.trace, obs.EvSubmit, uint8(table.Get), p.key, 0)
		} else {
			r.trace.Record(p.trace, obs.EvReprobe, uint8(table.Get), p.key, uint32(p.probes))
		}
	}
}

// pop retires the queue-head position, releasing the slot's tag byte from
// the per-tag occupancy counts. A reprobe's push re-increments the same tag;
// a parked leader released its count (and cleared its byte) when it parked,
// so here its decrement lands on the never-consulted entry 0.
func (r *ReadHandle) pop() {
	if r.combine {
		s := r.tail & r.mask
		r.tagcnt[uint8(r.rtags[s>>3]>>(uint(s&7)*8))]--
	}
	r.tail++
}

// combineScan looks for a live pending lookup of key in the ring; the
// newest match wins. Tag bytes are a prefilter (eight ring slots per scan
// word); a matching byte is confirmed against the slot's key. Bytes are
// never cleared on dequeue, so validity is positional: a slot's byte was
// written by its last enqueue and therefore describes either the current
// occupant or a dead position, and dead positions are rejected by
// reconstructing the slot's queue position from tail.
// Only the words covering live positions [tail, head) are scanned, and the
// caller's tagcnt gate means the scan runs only when some live slot shares
// the tag byte. Words are walked newest-first: the queue is never full, so
// each word's live positions are consecutive and strictly newer than those
// of the words behind it, which lets the scan return at the first word with
// a key-confirmed match — under skew the duplicate was just enqueued, so
// the hot case touches one word.
func (r *ReadHandle) combineScan(key uint64, tag uint8) int {
	nw := len(r.rtags)
	s0 := r.tail & r.mask
	wc := ((s0 & 7) + r.head - r.tail + 7) >> 3
	if wc > nw {
		wc = nw
	}
	for i := wc - 1; i >= 0; i-- {
		w := (s0>>3 + i) & (nw - 1)
		m := simd.MatchBytes8(r.rtags[w], tag)
		best := -1
		for m != 0 {
			lane := bits.TrailingZeros8(m)
			m &= m - 1
			s := w<<3 | lane
			if s > r.mask {
				continue
			}
			pos := r.tail + ((s - r.tail) & r.mask)
			if pos < r.head && pos > best && r.q[s].key == key {
				best = pos
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1
}

// tryCombine chains request id onto the pending leader at queue position
// pos. It refuses parked leaders (their result is already fixed; a request
// submitted after the park must observe any later write) and full chains.
func (r *ReadHandle) tryCombine(id uint64, pos int) bool {
	lead := &r.q[pos&r.mask]
	if lead.state != stateProbing || lead.ngets >= maxCombinedGets {
		return false
	}
	r.Piggybacked++
	n := r.allocMerged()
	r.merged[n] = rmerged{id: id, next: lead.chain}
	lead.chain = n + 1
	lead.ngets++
	if lead.trace != 0 {
		r.trace.Record(lead.trace, obs.EvCombine, uint8(table.Get), lead.key, uint32(lead.ngets))
	}
	return true
}

// allocMerged pops the free list or grows the arena (amortized; steady
// state recycles nodes and never allocates).
func (r *ReadHandle) allocMerged() int32 {
	if r.mfree != 0 {
		n := r.mfree - 1
		r.mfree = r.merged[n].next
		return n
	}
	r.merged = append(r.merged, rmerged{})
	return int32(len(r.merged) - 1)
}

// emitChain answers p's piggybacked Gets with the leader's (v, ok) while
// response space lasts, recycling each node. Reports whether the chain
// fully drained.
func (r *ReadHandle) emitChain(p *rpending, v uint64, ok bool, resps []table.Response, nresp *int) bool {
	for p.chain != 0 {
		if *nresp >= len(resps) {
			return false
		}
		n := p.chain - 1
		node := r.merged[n]
		resps[*nresp] = table.Response{ID: node.id, Value: v, Found: ok}
		*nresp++
		r.complete(ok)
		p.chain = node.next
		r.merged[n].next = r.mfree
		r.mfree = n + 1
	}
	return true
}

// retire completes the oldest pending lookup p with (v, ok): it writes the
// leader's response, then fans the result out to the piggyback chain. If
// resps fills mid-chain the leader parks at the queue head with its result
// frozen in state/rval and its tag byte cleared (no further combines may
// land on a resolved leader), and processOldest resumes the emission on
// the next call. The caller has already reserved the leader's response
// slot and must not advance tail itself.
func (r *ReadHandle) retire(p rpending, v uint64, ok bool, resps []table.Response, nresp *int) (blocked bool) {
	resps[*nresp] = table.Response{ID: p.id, Value: v, Found: ok}
	*nresp++
	r.complete(ok)
	if p.start != 0 {
		// Pipeline residency of the leader: submit to retire. Piggybacked
		// chain members share the leader's probe and are not re-timed.
		r.obsw.Op[obs.OpClass(table.Get, ok)].Record(uint64(time.Now().UnixNano() - p.start))
	}
	if p.trace != 0 {
		var arg uint32
		if ok {
			arg = 1
		}
		r.trace.Record(p.trace, obs.EvComplete, uint8(table.Get), p.key, arg)
	}
	if r.obsw != nil && p.ngets != 0 {
		r.obsw.MaxGauge(obs.GChainMax, uint64(p.ngets))
	}
	if p.chain == 0 || r.emitChain(&p, v, ok, resps, nresp) {
		r.pop()
		return false
	}
	if ok {
		p.state = stateHit
	} else {
		p.state = stateMiss
	}
	if r.obsw != nil {
		// Backpressure park: chain emission stalled on response space.
		r.obsw.Inc(obs.CParks)
	}
	p.rval = v
	s := r.tail & r.mask
	r.tagcnt[p.tag]-- // released here, not at the eventual pop (byte now 0)
	r.rtags[s>>3] &^= 0xff << (uint(s&7) * 8)
	r.q[s] = p
	return true
}
