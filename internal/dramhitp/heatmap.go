package dramhitp

import (
	"dramhit/internal/hashfn"
	"dramhit/internal/obs"
	"dramhit/internal/slotarr"
	"dramhit/internal/table"
)

// heatmap is the table's registered obs heatmap source: the concatenation of
// the partitions' slot (or bucket) ranges in partition order, walked by the
// slotarr multi-table builders. One Regions row therefore shows partition
// skew directly — owner sharding never moves keys, so a hot partition is a
// hot selector range. The flat home function re-derives the global fastrange
// slot and reduces it to the partition-local coordinate, exactly as locate
// does, so probe_depth/probe_lines measure real probe displacement.
func (t *Table) heatmap() obs.Heatmap {
	if t.layout == table.LayoutBucket {
		bkts := make([]*slotarr.BucketTable, len(t.parts))
		for i := range t.parts {
			bkts[i] = t.parts[i].bkt
		}
		return slotarr.BucketHeatmapMulti(bkts, 0)
	}
	arrs := make([]*slotarr.Array, len(t.parts))
	for i := range t.parts {
		arrs[i] = t.parts[i].arr
	}
	return slotarr.FlatHeatmapMulti(arrs, func(_ int, key uint64) uint64 {
		return hashfn.Fastrange(t.hash(key), t.total) % t.partSlots
	}, 0)
}
