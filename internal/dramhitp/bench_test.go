package dramhitp

import (
	"sync"
	"testing"

	"dramhit/internal/workload"
)

func benchTable(b *testing.B, producers, consumers int) *Table {
	b.Helper()
	t := New(Config{
		Slots:     1 << 20,
		Producers: producers,
		Consumers: consumers,
	})
	t.Start()
	b.Cleanup(t.Close)
	return t
}

func BenchmarkDelegatedUpsert(b *testing.B) {
	t := benchTable(b, 1, 2)
	w := t.NewWriteHandle()
	defer w.Close()
	keys := workload.UniqueKeys(1, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Upsert(keys[i&(1<<14-1)], 1)
	}
	w.Barrier()
}

func BenchmarkDelegatedPutSkewed(b *testing.B) {
	// Hot-key puts: the case where delegation replaces coherence storms.
	t := benchTable(b, 1, 2)
	w := t.NewWriteHandle()
	defer w.Close()
	keys := workload.NewKeyStream(2, 1<<14, 1.09)
	hot := make([]uint64, 1<<12)
	for i := range hot {
		hot[i] = keys.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Put(hot[i&(1<<12-1)], uint64(i))
	}
	w.Barrier()
}

func BenchmarkDirectRead(b *testing.B) {
	t := benchTable(b, 1, 2)
	w := t.NewWriteHandle()
	keys := workload.UniqueKeys(3, 1<<14)
	for _, k := range keys {
		w.Put(k, k)
	}
	w.Barrier()
	w.Close()
	r := t.NewReadHandle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Get(keys[i&(1<<14-1)])
	}
}

func BenchmarkPipelinedReadBatch(b *testing.B) {
	t := benchTable(b, 1, 2)
	w := t.NewWriteHandle()
	keys := workload.UniqueKeys(4, 1<<14)
	for _, k := range keys {
		w.Put(k, k)
	}
	w.Barrier()
	w.Close()
	r := t.NewReadHandle()
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	b.ResetTimer()
	for done := 0; done < b.N; done += len(keys) {
		n := len(keys)
		if b.N-done < n {
			n = b.N - done
		}
		r.GetBatch(keys[:n], vals[:n], found[:n])
	}
}

func BenchmarkMultiWriterUpsert(b *testing.B) {
	const writers = 4
	t := benchTable(b, writers, 2)
	keys := workload.UniqueKeys(5, 1<<12)
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / writers
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := t.NewWriteHandle()
			defer w.Close()
			for i := 0; i < per; i++ {
				w.Upsert(keys[i&(1<<12-1)], 1)
			}
			w.Barrier()
		}()
	}
	wg.Wait()
}
