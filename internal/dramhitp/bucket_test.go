package dramhitp

import (
	"testing"

	"dramhit/internal/governor"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

func newBucketTableP(slots uint64, consumers int) *Table {
	t := New(Config{
		Slots:     slots,
		Producers: 2,
		Consumers: consumers,
		Layout:    table.LayoutBucket,
	})
	t.Start()
	return t
}

// TestPBucketDelegatedOps drives delegated uint64 updates and direct reads
// through bucket partitions, including reserved keys (ordinary here) and
// enough inserts to force partition resizes.
func TestPBucketDelegatedOps(t *testing.T) {
	tb := newBucketTableP(64, 2) // tiny partitions: inserts force growth
	defer tb.Close()
	if tb.Layout() != table.LayoutBucket {
		t.Fatal("table does not report LayoutBucket")
	}
	w := tb.NewWriteHandle()
	r := tb.NewReadHandle()
	keys := workload.UniqueKeys(11, 3000)
	for _, k := range keys {
		if !w.Put(k, k^0xbeef) {
			t.Fatalf("bucket Put(%d) denied — partitions must never be full", k)
		}
	}
	for _, k := range []uint64{table.EmptyKey, table.TombstoneKey, table.MovedKey} {
		w.Put(k, k+5)
	}
	w.Barrier()
	if tb.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 on the self-resizing layout", tb.Dropped())
	}
	for _, k := range keys {
		if v, ok := r.Get(k); !ok || v != k^0xbeef {
			t.Fatalf("Get(%d) = (%d, %v)", k, v, ok)
		}
	}
	for _, k := range []uint64{table.EmptyKey, table.TombstoneKey, table.MovedKey} {
		if v, ok := r.Get(k); !ok || v != k+5 {
			t.Fatalf("reserved Get(%#x) = (%d, %v)", k, v, ok)
		}
	}
	if tb.Len() != len(keys)+3 {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(keys)+3)
	}
	// Upserts fold through delegation to an exact count.
	for i := 0; i < 10; i++ {
		w.Upsert(keys[0], 1)
	}
	w.Barrier()
	if v, _ := r.Get(keys[0]); v != (keys[0]^0xbeef)+10 {
		t.Fatalf("after 10 upserts, value = %d", v)
	}
	w.Delete(keys[1])
	w.Barrier()
	if _, ok := r.Get(keys[1]); ok {
		t.Fatal("deleted key still present")
	}
	if r.Filter.KeyLines == 0 {
		t.Fatal("bucket reads did not fold engine lines into KeyLines")
	}
	if r.Filter.TagSkips != 0 || r.Filter.TagHits != 0 {
		t.Fatal("bucket reads advanced sidecar counters that cannot exist")
	}
}

// TestPBucketPipelinedReads checks the prefetch-ring read path (Submit/
// Flush with ID scatter) against bucket partitions, piggybacking included.
func TestPBucketPipelinedReads(t *testing.T) {
	tb := newBucketTableP(4096, 2)
	defer tb.Close()
	w := tb.NewWriteHandle()
	keys := workload.UniqueKeys(23, 1000)
	for _, k := range keys {
		w.Put(k, k*3)
	}
	w.Barrier()
	r := tb.NewReadHandle()
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	r.GetBatch(keys, vals, found)
	for i, k := range keys {
		if !found[i] || vals[i] != k*3 {
			t.Fatalf("GetBatch[%d] = (%d, %v), want (%d, true)", i, vals[i], found[i], k*3)
		}
	}
	// A same-key burst exercises piggybacking over the bucket drain.
	burst := make([]uint64, 32)
	for i := range burst {
		burst[i] = keys[7]
	}
	bv := make([]uint64, len(burst))
	bf := make([]bool, len(burst))
	r.GetBatch(burst, bv, bf)
	for i := range burst {
		if !bf[i] || bv[i] != keys[7]*3 {
			t.Fatalf("burst[%d] = (%d, %v)", i, bv[i], bf[i])
		}
	}
	if r.Piggybacked == 0 {
		t.Fatal("same-key burst piggybacked nothing")
	}
}

// TestPBucketByteAPI exercises the byte-string surface: synchronous writes
// through the WriteHandle, reads through the ReadHandle, across partitions.
func TestPBucketByteAPI(t *testing.T) {
	tb := newBucketTableP(1024, 2)
	defer tb.Close()
	w := tb.NewWriteHandle()
	r := tb.NewReadHandle()
	kv := map[string]string{
		"gene:BRCA2":        "chr13",
		"k":                 "",
		"a-much-longer-key": "with a much longer value than eight bytes",
	}
	for k, v := range kv {
		if w.PutBytes([]byte(k), []byte(v)) {
			t.Fatalf("fresh byte key %q reported existing", k)
		}
	}
	for k, v := range kv {
		got, ok := r.GetBytes([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("GetBytes(%q) = (%q, %v), want (%q, true)", k, got, ok, v)
		}
	}
	w.UpsertBytes([]byte("k"), func(old []byte, present bool) []byte {
		if !present {
			t.Fatal("UpsertBytes missed an existing key")
		}
		return append(append([]byte(nil), old...), 'x')
	})
	if got, _ := r.GetBytes([]byte("k")); string(got) != "x" {
		t.Fatalf("after mutate, value = %q", got)
	}
	if !w.DeleteBytes([]byte("gene:BRCA2")) {
		t.Fatal("DeleteBytes of present key reported absent")
	}
	if _, ok := r.GetBytes([]byte("gene:BRCA2")); ok {
		t.Fatal("deleted byte key still present")
	}
}

// TestPBucketByteAPIRequiresLayout pins the flat-table panic contract.
func TestPBucketByteAPIRequiresLayout(t *testing.T) {
	tb := New(Config{Slots: 64, Producers: 1, Consumers: 1})
	tb.Start()
	defer tb.Close()
	w := tb.NewWriteHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("byte API on a flat table did not panic")
		}
	}()
	w.PutBytes([]byte("k"), []byte("v"))
}

// TestGetLocalHonorsHandleFilter pins the satellite fix: a governed
// ReadHandle whose decision turned the tag filter OFF must not touch the
// sidecar on the direct read path. Before the fix getLocal gated on the
// TABLE's filter, so a filter-off handle kept loading the tag word (the
// exact traffic the governor decided to shed) and kept advancing TagSkips
// — skewing the sensors the controller steers by.
func TestGetLocalHonorsHandleFilter(t *testing.T) {
	tb := New(Config{
		Slots:       4096,
		Producers:   1,
		Consumers:   1,
		ProbeFilter: table.FilterTags, // sidecar exists table-wide
		Governor:    table.GovernorAuto,
	})
	tb.Start()
	defer tb.Close()
	w := tb.NewWriteHandle()
	keys := workload.UniqueKeys(31, 512)
	for _, k := range keys {
		w.Put(k, k+1)
	}
	w.Barrier()

	r := tb.NewReadHandle()
	// Actuate a filter-off direct decision at the (empty) pipeline boundary,
	// exactly as govApply would on adoption.
	r.applyDecision(governor.Decision{Direct: true, Filter: false, Window: 4})
	if r.filter != table.FilterNone {
		t.Fatal("decision did not switch the handle's filter off")
	}
	// Misses are the filter's showcase: with tags on they resolve from the
	// sidecar alone (TagSkips), with tags off they must load key lines.
	probe := workload.UniqueKeys(37, 256)
	for _, k := range probe {
		r.Get(k)
	}
	if r.Filter.TagSkips != 0 {
		t.Fatalf("filter-off handle recorded %d TagSkips — getLocal consulted the sidecar",
			r.Filter.TagSkips)
	}
	if r.Filter.KeyLines == 0 {
		t.Fatal("filter-off handle loaded no key lines")
	}

	// Control: a tags-on handle over the same table sees sidecar activity on
	// the same workload, proving the counter would have moved.
	ron := tb.NewReadHandle()
	ron.applyDecision(governor.Decision{Direct: true, Filter: true, Window: 4})
	for _, k := range probe {
		ron.Get(k)
	}
	if ron.Filter.TagSkips == 0 {
		t.Fatal("control handle with the filter on never skipped a line")
	}
}

// TestPBucketSyncConformsSequentially smoke-checks the Sync adapter on the
// bucket layout against a reference map (the full conformance suite runs
// from tabletest).
func TestPBucketSyncConformsSequentially(t *testing.T) {
	tb := newBucketTableP(512, 2)
	s := tb.NewSync()
	defer s.Shutdown()
	ref := make(map[uint64]uint64)
	for i := 0; i < 4000; i++ {
		k := uint64(i % 97)
		switch i % 5 {
		case 0, 1:
			v := uint64(i)
			s.Put(k, v)
			ref[k] = v
		case 2:
			got, ok := s.Upsert(k, 2)
			ref[k] += 2
			if !ok || got != ref[k] {
				t.Fatalf("op %d: Upsert(%d) = (%d, %v), want %d", i, k, got, ok, ref[k])
			}
		case 3:
			_, want := ref[k]
			if got := s.Delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		default:
			got, ok := s.Get(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = (%d, %v), want (%d, %v)", i, k, got, ok, want, wok)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, reference %d", i, s.Len(), len(ref))
		}
	}
}
