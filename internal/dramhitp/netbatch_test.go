package dramhitp

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dramhit/internal/table"
)

// TestByteGetPipelineOracle drives the partitioned reader's async byte-Get
// pipeline against a reference map: FIFO completion order, correct values,
// correct hit/miss — including pipelined repeats of the same key.
func TestByteGetPipelineOracle(t *testing.T) {
	tb := New(Config{Slots: 1 << 14, Producers: 1, Consumers: 4, Layout: table.LayoutBucket})
	defer tb.Close()
	w := tb.NewWriteHandle()
	ref := map[string]string{}
	for i := 0; i < 300; i++ {
		k, v := fmt.Sprintf("pk-%03d", i), fmt.Sprintf("pv-%d", i)
		if i%3 != 0 { // leave a third of the keyspace absent
			w.PutBytes([]byte(k), []byte(v))
			ref[k] = v
		}
	}
	w.Close()

	r := tb.NewReadHandle()
	type exp struct {
		key   string
		val   string
		found bool
	}
	var queue []exp
	done := 0
	r.OnGetBytesComplete(func(id uint64, value []byte, found bool) {
		e := queue[done]
		if id != uint64(done) {
			t.Fatalf("completion id %d at position %d: not FIFO", id, done)
		}
		done++
		if found != e.found {
			t.Fatalf("Get %q: found=%v, want %v", e.key, found, e.found)
		}
		if found && string(value) != e.val {
			t.Fatalf("Get %q = %q, want %q", e.key, value, e.val)
		}
	})

	rng := rand.New(rand.NewSource(3))
	const lookups = 5000
	for i := 0; i < lookups; i++ {
		k := fmt.Sprintf("pk-%03d", rng.Intn(330)) // includes never-written keys
		v, ok := ref[k]
		queue = append(queue, exp{key: k, val: v, found: ok})
		r.SubmitGetBytes(uint64(i), []byte(k))
		if rng.Intn(64) == 0 {
			r.FlushGetBytes()
		}
	}
	r.FlushGetBytes()
	if done != lookups {
		t.Fatalf("completed %d of %d lookups", done, lookups)
	}
	if r.PendingGetBytes() != 0 {
		t.Fatalf("PendingGetBytes = %d after flush", r.PendingGetBytes())
	}
	if r.Gets != lookups || r.Hits == 0 || r.Hits == lookups {
		t.Fatalf("counters off: Gets=%d Hits=%d", r.Gets, r.Hits)
	}
}

// TestByteGetPipelineConcurrentReaders runs one async byte-Get pipeline per
// goroutine over a shared table (the server's deployment shape); run under
// -race this doubles as the reader-concurrency safety check.
func TestByteGetPipelineConcurrentReaders(t *testing.T) {
	tb := New(Config{Slots: 1 << 13, Producers: 1, Consumers: 4, Layout: table.LayoutBucket})
	defer tb.Close()
	w := tb.NewWriteHandle()
	const nkeys = 256
	for i := 0; i < nkeys; i++ {
		w.PutBytes([]byte(fmt.Sprintf("ck-%03d", i)), []byte(fmt.Sprintf("cv-%d", i)))
	}
	w.Close()

	const readers = 4
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := tb.NewReadHandle()
			misses := 0
			r.OnGetBytesComplete(func(id uint64, value []byte, found bool) {
				if !found {
					misses++
				}
			})
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("ck-%03d", rng.Intn(nkeys))
				r.SubmitGetBytes(uint64(i), []byte(k))
			}
			r.FlushGetBytes()
			if misses != 0 {
				t.Errorf("reader %d saw %d misses on fully-populated keys", seed, misses)
			}
		}(int64(g))
	}
	wg.Wait()
}
