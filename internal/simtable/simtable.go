// Package simtable ports the three hash-table designs — Folklore, DRAMHiT,
// and DRAMHiT-P (with its SIMD variant) — onto the cycle-level machine model
// of internal/memsim. The tables execute their real probe sequences over a
// compact occupancy representation (one fingerprint byte per slot), and
// every cache-line touch, prefetch, CAS, store and delegation message is
// charged through the timing model. This is the layer that regenerates the
// paper's figures: throughput in Mops emerges from latency, bandwidth and
// contention rather than being curve-fit.
package simtable

import (
	"dramhit/internal/hashfn"
	"dramhit/internal/memsim"
	"dramhit/internal/table"
)

// Kind selects a table design.
type Kind int

// The designs compared throughout the paper's evaluation.
const (
	Folklore Kind = iota
	DRAMHiT
	DRAMHiTP
	DRAMHiTPSIMD
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Folklore:
		return "folklore"
	case DRAMHiT:
		return "dramhit"
	case DRAMHiTP:
		return "dramhit-p"
	case DRAMHiTPSIMD:
		return "dramhit-p-simd"
	}
	return "invalid"
}

// Per-operation pure-compute costs in cycles. The paper's budget analysis:
// CRC32 hashing is 2–3 cycles, the whole processing path must stay within a
// few tens of cycles.
// The pipeline-engine costs are calibrated against the paper's small-table
// measurements, where the memory system is not the bottleneck and the
// engine overhead is directly visible: DRAMHiT spends ~110 cycles/op on
// small finds (1513 Mops on 64×2.6 GHz threads) against Folklore's ~103 —
// the batched engine costs roughly 90–100 cycles of queue bookkeeping,
// request copying and completion handling per operation, which prefetching
// must buy back from memory latency to win.
const (
	hashCycles          = 8.0  // hash + fastrange + dispatch
	slotScanScalar      = 1.5  // per-slot key compare + branch (scalar probe)
	lineScanSIMD        = 3.0  // whole-line masked compare (vectorized probe)
	queueOpCycles       = 52.0 // pipeline enqueue + dequeue + request copy
	completionCost      = 22.0 // response marshaling / OOO id handling
	batchOverhead       = 40.0 // per-batch submission bookkeeping
	loopCycles          = 12.0 // folklore's synchronous per-op loop body
	msgEnqueue          = 5.0  // delegation: pack + store message
	msgDequeue          = 5.0
	pollEmptyCycles     = 30.0 // consumer scan over empty queues
	ownerDispatchCycles = 20.0 // partition owner: dequeue-to-pipeline dispatch
	fullCheckCycles     = 2.0  // producer-side partition-full flag test (L1 hit)
	tagCheckCycles      = 2.0  // tag-word byte-match + mask shift (SWAR, register-only)
)

// fingerprints: 0 = empty, 1 = tombstone, 2..65535 = occupied. Sixteen bits
// keep the false-match rate (two distinct keys treated as equal during a
// probe) below 0.002%, so fill factors and probe lengths track the real
// table.
const (
	fpEmpty     = 0
	fpTombstone = 1
)

// array is the occupancy image of one contiguous slot array, mapped onto
// simulated cache lines starting at baseLine.
type array struct {
	fp       []uint16
	size     uint64
	baseLine uint64
	// tags is the packed tag-fingerprint sidecar image (one byte per slot,
	// 0 = unpublished/empty), present only when Config.TagFilter is set;
	// tagBase is its simulated line range. See internal/slotarr for the real
	// sidecar this models.
	tags    []uint8
	tagBase uint64
}

// lineAlloc is a bump allocator for simulated line addresses; distinct
// structures (tables, queue buffers, pollution arrays) get disjoint ranges.
type lineAlloc struct{ next uint64 }

// alloc reserves n cache lines and returns the base line address.
func (la *lineAlloc) alloc(n uint64) uint64 {
	base := la.next
	la.next += n + 16 // guard gap so structures never share a line
	return base
}

func newArray(la *lineAlloc, slots uint64) *array {
	return &array{
		fp:       make([]uint16, slots),
		size:     slots,
		baseLine: la.alloc(slots/table.SlotsPerCacheLine + 1),
	}
}

// line returns the simulated line address of slot i.
func (a *array) line(i uint64) uint64 {
	return a.baseLine + i/table.SlotsPerCacheLine
}

// tagsPerLine: the sidecar packs one tag byte per slot, so a 64-byte line
// covers 64 slots — 16 data lines' worth of metadata per metadata line.
const tagsPerLine = 64

// tag8 folds a 16-bit fingerprint to the sidecar's tag byte, with 0 reserved
// for empty/unpublished exactly like table.TagOf.
func tag8(f uint16) uint8 {
	t := uint8(f)
	if t == 0 {
		t = 1
	}
	return t
}

// enableTags allocates and populates the tag sidecar for an (already
// prefilled) array. It is called lazily, after every other allocation the
// caller has made, so line addresses of existing structures never shift when
// the filter is off — archived figure captures stay bit-identical.
func (a *array) enableTags(la *lineAlloc) {
	if a.tags != nil {
		return
	}
	a.tags = make([]uint8, a.size)
	a.tagBase = la.alloc(a.size/tagsPerLine + 1)
	for i, f := range a.fp {
		if f != fpEmpty && f != fpTombstone {
			a.tags[i] = tag8(f)
		}
	}
}

// tagLine returns the simulated line address of slot i's tag byte.
func (a *array) tagLine(i uint64) uint64 { return a.tagBase + i/tagsPerLine }

// tagLines returns the sidecar's line count (for LLC warming).
func (a *array) tagLines() uint64 { return a.size/tagsPerLine + 1 }

// lineCandidates reports whether the cache line containing slot i has any
// lane the tag word cannot rule out for the given tag: a matching tag byte
// or a zero (must-check) byte. Mirrors slotarr.LineCandidates.
func (a *array) lineCandidates(i uint64, tag uint8) bool {
	base := i &^ (table.SlotsPerCacheLine - 1)
	end := base + table.SlotsPerCacheLine
	if end > a.size {
		end = a.size
	}
	for s := i; s < end; s++ {
		if t := a.tags[s]; t == tag || t == 0 {
			return true
		}
	}
	return false
}

func fpOf(h uint64) uint16 {
	// Fastrange consumes the hash's HIGH bits for the slot index, so the
	// fingerprint must come from the LOW bits — otherwise keys that share
	// a home slot would share a fingerprint and alias each other.
	f := uint16(h)
	if f < 2 {
		f += 2
	}
	return f
}

// place performs an untimed insert (prefill): it walks the real probe
// sequence and claims the first free slot, so the timed phase sees the
// correct probe-length distribution for the fill factor.
func (a *array) place(h uint64) bool {
	i := hashfn.Fastrange(h, a.size)
	f := fpOf(h)
	for probes := uint64(0); probes < a.size; probes++ {
		switch a.fp[i] {
		case fpEmpty:
			a.fp[i] = f
			return true
		case f:
			return true // same fingerprint: treated as the same key
		}
		i++
		if i == a.size {
			i = 0
		}
	}
	return false
}

// probe walks the probe sequence for hash h, reporting the resolution slot,
// whether the fingerprint matched (hit) and the number of distinct lines
// inspected. It does not touch the timing model; callers charge accesses.
type probeStep struct {
	slot    uint64
	line    uint64
	newLine bool // first touch of this cache line
}

// occupancy returns the fraction of non-empty slots (diagnostics). Large
// arrays are sampled — a full scan of a 64M-slot table costs more than some
// quick experiment runs.
func (a *array) occupancy() float64 {
	stride := uint64(1)
	if a.size > 1<<22 {
		stride = 16
	}
	n, seen := 0, 0
	for i := uint64(0); i < a.size; i += stride {
		if a.fp[i] != fpEmpty {
			n++
		}
		seen++
	}
	return float64(n) / float64(seen)
}

// scalarInsert walks the probe path of an insert, invoking touch(line) on
// every newly entered cache line and charging per-slot scan compute via
// scan(slots). It returns the slot claimed or matched, and whether the key
// already existed.
func (a *array) scalarInsert(h uint64, touch func(line uint64), scan func(slots int)) (slot uint64, existed, ok bool) {
	i := hashfn.Fastrange(h, a.size)
	f := fpOf(h)
	cur := a.line(i)
	touch(cur)
	scanned := 0
	for probes := uint64(0); probes < a.size; probes++ {
		if l := a.line(i); l != cur {
			scan(scanned)
			scanned = 0
			cur = l
			touch(cur)
		}
		scanned++
		switch a.fp[i] {
		case fpEmpty:
			a.fp[i] = f
			scan(scanned)
			return i, false, true
		case f:
			scan(scanned)
			return i, true, true
		}
		i++
		if i == a.size {
			i = 0
		}
	}
	scan(scanned)
	return 0, false, false
}

// scalarFind walks the probe path of a lookup.
func (a *array) scalarFind(h uint64, touch func(line uint64), scan func(slots int)) (slot uint64, found bool) {
	i := hashfn.Fastrange(h, a.size)
	f := fpOf(h)
	cur := a.line(i)
	touch(cur)
	scanned := 0
	for probes := uint64(0); probes < a.size; probes++ {
		if l := a.line(i); l != cur {
			scan(scanned)
			scanned = 0
			cur = l
			touch(cur)
		}
		scanned++
		switch a.fp[i] {
		case f:
			scan(scanned)
			return i, true
		case fpEmpty:
			scan(scanned)
			return i, false
		}
		i++
		if i == a.size {
			i = 0
		}
	}
	scan(scanned)
	return 0, false
}

// folkloreInsert executes one synchronous Folklore insert on thread t. The
// probe path is resolved first (untimed), then charged: intermediate lines
// are unprefetched loads, and the final line — where the CAS claims the
// slot — is charged as a single RMW. On x86 a lock-prefixed instruction
// serializes the pipeline, so the out-of-order window cannot hide any part
// of the claiming line's transfer; modeling the claim as an RMW fill (which
// the timing model never OOO-hides) captures exactly the penalty that makes
// Folklore's insert path so much slower than its read path (417 vs 451 Mops
// large, 441 vs 1616 small in the paper).
func folkloreInsert(t *memsim.Thread, a *array, h uint64) {
	t.Compute(hashCycles + loopCycles)
	var lines []uint64
	slot, existed, ok := a.scalarInsert(h,
		func(line uint64) { lines = append(lines, line) },
		func(slots int) { t.Compute(slotScanScalar * float64(slots)) })
	for _, l := range lines[:len(lines)-1] {
		t.Access(l, memsim.Load)
	}
	last := lines[len(lines)-1]
	if !ok {
		t.Access(last, memsim.Load)
		return
	}
	if existed {
		// Overwrite: load the line, then store the value word.
		t.Access(last, memsim.Load)
		t.Access(a.line(slot), memsim.Store)
		return
	}
	t.Access(last, memsim.RMW) // CAS claim + value store, serializing
}

// folkloreUpsert is folkloreInsert with counting semantics: updating an
// existing key is an atomic add, so hot keys contend exactly like the
// k-mer counting workload of Figure 12.
func folkloreUpsert(t *memsim.Thread, a *array, h uint64) {
	t.Compute(hashCycles + loopCycles)
	var lines []uint64
	_, _, _ = a.scalarInsert(h,
		func(line uint64) { lines = append(lines, line) },
		func(slots int) { t.Compute(slotScanScalar * float64(slots)) })
	for _, l := range lines[:len(lines)-1] {
		t.Access(l, memsim.Load)
	}
	// Claim or add: either way an atomic on the final line.
	t.Access(lines[len(lines)-1], memsim.RMW)
}

// folkloreFind executes one synchronous lookup (no atomics on the read
// path).
func folkloreFind(t *memsim.Thread, a *array, h uint64) bool {
	t.Compute(hashCycles + loopCycles)
	_, found := a.scalarFind(h,
		func(line uint64) { t.Access(line, memsim.Load) },
		func(slots int) { t.Compute(slotScanScalar * float64(slots)) })
	return found
}
