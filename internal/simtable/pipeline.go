package simtable

import (
	"dramhit/internal/hashfn"
	"dramhit/internal/memsim"
	"dramhit/internal/table"
)

// pipeOp is one in-flight request in a simulated prefetch pipeline.
type pipeOp struct {
	h      uint64
	fp     uint16
	idx    uint64
	probes uint64
	insert bool
	// checked marks a tagged op whose current line passed the tag-word gate
	// and whose data line is already being prefetched; the next head pass
	// consults the key lanes.
	checked bool
	// submitClock records when the request entered the pipeline (latency
	// CDF experiment).
	submitClock float64
}

// pipeline mirrors dramhit.Handle on the simulated machine: a bounded FIFO
// of pending requests, a prefetch per enqueued line, processing restricted
// to the already-prefetched line, and reprobes that re-enqueue with a fresh
// prefetch.
type pipeline struct {
	a      *array
	q      []pipeOp
	head   int
	tail   int
	mask   int
	window int
	simd   bool
	// tagged models the packed tag-fingerprint filter as a pipelined
	// metadata stream: enqueuing a line visit prefetches the (16x denser)
	// tag sidecar line; when the op reaches the head, the tag word decides.
	// A rejected line advances without ever touching its data line — no
	// DRAM transaction, which is the filter's entire win — while an
	// admitted line prefetches its data and takes one more queue pass
	// before the key lanes are scanned. Engaged when the array carries a
	// sidecar and the pipeline is SIMD — the filter is line-granular, so
	// the scalar probe runs unfiltered, exactly like the real tables force
	// FilterNone under KernelScalar.
	tagged bool
	// singleWriter selects plain stores over CAS for slot claims
	// (DRAMHiT-P partition owners).
	singleWriter bool
	// combining models in-window request combining: a submitted hash that
	// already has a pending op in the window folds onto it — duplicate
	// upserts merge their deltas, duplicate reads piggyback one probe —
	// paying only the completion work. No prefetch, no line access, no
	// queue slot: a combined op is zero additional DRAM transactions,
	// which is the entire win on skewed streams.
	combining bool
	// submitCost/completeCost are the engine compute charges. The
	// concurrent table pays full request marshaling and response handling;
	// a partition owner applying delegated fire-and-forget updates has no
	// response path and a leaner dispatch, which is part of why delegation
	// wins on write-heavy skew.
	submitCost   float64
	completeCost float64
	// upsert marks counting semantics: updating an existing key is an
	// atomic add (RMW) rather than a plain overwrite store. Single-writer
	// partitions never need the atomic — ownership serializes them.
	upsert bool

	// Stats.
	ops      uint64
	hits     uint64
	reprobes uint64
	// keyLines / tagSkips mirror the real tables' filter counters: line
	// visits that consulted key lanes vs visits rejected from the tag word.
	keyLines uint64
	tagSkips uint64
	// combined counts ops folded onto a pending in-window duplicate.
	combined uint64
	// onComplete, when set, receives (submitClock, completeClock) pairs.
	onComplete func(submit, complete float64)
}

func newPipeline(a *array, window int, simd, singleWriter, combining bool) *pipeline {
	capacity := 1
	for capacity < window+1 {
		capacity <<= 1
	}
	p := &pipeline{
		a:            a,
		q:            make([]pipeOp, capacity),
		mask:         capacity - 1,
		window:       window,
		simd:         simd,
		tagged:       simd && a.tags != nil,
		singleWriter: singleWriter,
		combining:    combining,
		submitCost:   hashCycles + queueOpCycles,
		completeCost: completionCost,
	}
	if singleWriter {
		// Delegated updates arrive pre-hashed and produce no response.
		p.submitCost = ownerDispatchCycles
		p.completeCost = 2
	}
	return p
}

func (p *pipeline) pending() int { return p.head - p.tail }

// submit enqueues one request, prefetching its home line, and drains the
// pipeline head while the window is full.
func (p *pipeline) submit(t *memsim.Thread, h uint64, insert bool) {
	t.Compute(p.submitCost)
	if p.combining {
		for i := p.tail; i < p.head; i++ {
			if p.q[i&p.mask].h == h {
				// In-window duplicate: fold onto the pending op (merged
				// delta or piggybacked read). Only the completion work is
				// charged — the op issues no prefetch, takes no queue slot,
				// and touches no cache line. Skewed duplicates overwhelmingly
				// target resident keys, so the fold counts as a hit.
				p.combined++
				p.ops++
				p.hits++
				t.Compute(p.completeCost)
				if p.onComplete != nil {
					p.onComplete(t.Clock, t.Clock)
				}
				return
			}
		}
	}
	op := pipeOp{
		h:           h,
		fp:          fpOf(h),
		idx:         hashfn.Fastrange(h, p.a.size),
		insert:      insert,
		submitClock: t.Clock,
	}
	if p.tagged {
		t.Prefetch(p.a.tagLine(op.idx))
	} else {
		t.Prefetch(p.a.line(op.idx))
	}
	p.q[p.head&p.mask] = op
	p.head++
	for p.pending() >= p.window {
		p.processOldest(t)
	}
}

// flush drains the pipeline.
func (p *pipeline) flush(t *memsim.Thread) {
	for p.pending() > 0 {
		p.processOldest(t)
	}
}

// processOldest pops the oldest request and executes it over its current
// cache line; a crossing re-enqueues with a new prefetch.
func (p *pipeline) processOldest(t *memsim.Thread) {
	op := p.q[p.tail&p.mask]
	p.tail++
	a := p.a

	for {
		line := a.line(op.idx)
		lineEnd := (op.idx/table.SlotsPerCacheLine + 1) * table.SlotsPerCacheLine
		if lineEnd > a.size {
			lineEnd = a.size
		}
		if p.tagged && !op.checked {
			// The metadata stream: read the (prefetched) tag-sidecar line
			// and run the register-only byte match.
			t.Access(a.tagLine(op.idx), memsim.Load)
			t.Compute(tagCheckCycles)
			if !a.lineCandidates(op.idx, tag8(op.fp)) {
				// Rejected from the tag word alone: the data line's key
				// lanes are never consulted and no DRAM transaction is
				// issued for it. The cursor still advances exactly as a
				// full miss scan would, so the traversal matches the
				// unfiltered pipeline line for line.
				p.tagSkips++
				op.probes += lineEnd - op.idx
				op.idx = lineEnd
				if op.probes >= a.size {
					p.complete(t, op, false)
					return
				}
				if op.idx == a.size {
					op.idx = 0
				}
				p.reprobes++
				t.Compute(queueOpCycles)
				t.Prefetch(a.tagLine(op.idx))
				p.q[p.head&p.mask] = op
				p.head++
				return
			}
			// Candidate line: pull the data line and revisit at the head
			// once it has (likely) arrived — the extra queue pass is the
			// filter's latency cost on admitted lines.
			op.checked = true
			t.Compute(queueOpCycles)
			t.Prefetch(a.line(op.idx))
			p.q[p.head&p.mask] = op
			p.head++
			return
		}
		p.keyLines++
		// Consume the (ideally prefetched) line.
		t.Access(line, memsim.Load)
		if p.simd {
			t.Compute(lineScanSIMD)
		}
		for op.idx < lineEnd && op.probes < a.size {
			if !p.simd {
				t.Compute(slotScanScalar)
			}
			f := a.fp[op.idx]
			if op.insert {
				switch f {
				case fpEmpty:
					a.fp[op.idx] = op.fp
					if a.tags != nil {
						// Publish the tag: one extra store on the sidecar
						// line (the real table's PublishTag CAS).
						a.tags[op.idx] = tag8(op.fp)
						t.Access(a.tagLine(op.idx), memsim.Store)
					}
					p.claim(t, line)
					p.complete(t, op, true)
					return
				case op.fp:
					// Existing key: overwrite/add the value word.
					p.update(t, line)
					p.complete(t, op, true)
					return
				}
			} else {
				switch f {
				case op.fp:
					p.complete(t, op, true)
					return
				case fpEmpty:
					p.complete(t, op, false)
					return
				}
			}
			op.idx++
			op.probes++
		}
		if op.probes >= a.size {
			p.complete(t, op, false) // table exhausted
			return
		}
		if op.idx == a.size {
			op.idx = 0
		}
		// Crossing into the next line: reprobe through the queue.
		p.reprobes++
		t.Compute(queueOpCycles)
		if p.tagged {
			op.checked = false
			t.Prefetch(a.tagLine(op.idx))
		} else {
			t.Prefetch(a.line(op.idx))
		}
		p.q[p.head&p.mask] = op
		p.head++
		return
	}
}

// claim charges the slot-claim write: a CAS for the concurrent table, a
// plain store for a single-writer partition.
func (p *pipeline) claim(t *memsim.Thread, line uint64) {
	if p.singleWriter {
		t.Access(line, memsim.Store)
	} else {
		t.Access(line, memsim.RMW)
	}
}

// update charges an overwrite (Put) or atomic add (Upsert) of an existing
// tuple's value word.
func (p *pipeline) update(t *memsim.Thread, line uint64) {
	if p.upsert && !p.singleWriter {
		t.Access(line, memsim.RMW)
		return
	}
	t.Access(line, memsim.Store)
}

func (p *pipeline) complete(t *memsim.Thread, op pipeOp, hit bool) {
	t.Compute(p.completeCost)
	p.ops++
	if hit {
		p.hits++
	}
	if p.onComplete != nil {
		p.onComplete(op.submitClock, t.Clock)
	}
}
