package simtable

import (
	"testing"

	"dramhit/internal/memsim"
)

// quick run sizes for tests; the real harness uses larger budgets.
const testOps = 60_000

func runQuick(t *testing.T, kind Kind, threads int, slots uint64, theta float64, mix OpMix) Result {
	t.Helper()
	r := Run(Config{
		Machine:    memsim.IntelSkylake(),
		Kind:       kind,
		Threads:    threads,
		Slots:      slots,
		Theta:      theta,
		MeasureOps: testOps,
		Seed:       42,
	}, mix)
	if r.Mops <= 0 {
		t.Fatalf("%v: nonpositive throughput", kind)
	}
	return r
}

const largeTest = 8 << 20 // 128 MB simulated footprint: far beyond the 44 MB LLC

func TestDRAMHiTBeatsFolkloreLargeUniform(t *testing.T) {
	// The headline result (Figure 6b): on a DRAM-resident table with
	// uniform keys, prefetch-pipelined DRAMHiT roughly doubles Folklore.
	for _, mix := range []OpMix{Inserts, Finds} {
		f := runQuick(t, Folklore, 64, largeTest, 0, mix)
		d := runQuick(t, DRAMHiT, 64, largeTest, 0, mix)
		ratio := d.Mops / f.Mops
		if ratio < 1.5 {
			t.Errorf("mix %v: DRAMHiT/Folklore = %.2f (%.0f vs %.0f Mops), want ≥ 1.5",
				mix, ratio, d.Mops, f.Mops)
		}
		if ratio > 4.5 {
			t.Errorf("mix %v: ratio %.2f implausibly high", mix, ratio)
		}
	}
}

func TestFolkloreWinsSmallReadOnly(t *testing.T) {
	// Figure 6a: on a cache-resident table, Folklore's lean read path beats
	// DRAMHiT, which pays the prefetch-engine overhead for nothing.
	f := runQuick(t, Folklore, 64, DefaultSmall, 0, Finds)
	d := runQuick(t, DRAMHiT, 64, DefaultSmall, 0, Finds)
	if f.Mops <= d.Mops*0.95 {
		t.Errorf("small finds: Folklore %.0f vs DRAMHiT %.0f Mops; Folklore should lead", f.Mops, d.Mops)
	}
}

func TestSkewCollapsesCASInserts(t *testing.T) {
	// Figure 8b: at skew 1.09 insertions contend; Folklore and DRAMHiT both
	// collapse, DRAMHiT-P sustains much higher throughput via delegation.
	fUni := runQuick(t, Folklore, 64, largeTest, 0, Inserts)
	fSkew := runQuick(t, Folklore, 64, largeTest, 1.09, Inserts)
	if fSkew.Mops > fUni.Mops*0.7 {
		t.Errorf("folklore skewed inserts %.0f vs uniform %.0f: contention collapse missing",
			fSkew.Mops, fUni.Mops)
	}
	dSkew := runQuick(t, DRAMHiT, 64, largeTest, 1.09, Inserts)
	pSkew := runQuick(t, DRAMHiTP, 64, largeTest, 1.09, Inserts)
	if pSkew.Mops < dSkew.Mops*1.3 {
		t.Errorf("skewed inserts: DRAMHiT-P %.0f vs DRAMHiT %.0f Mops; delegation should win clearly",
			pSkew.Mops, dSkew.Mops)
	}
}

func TestSkewedReadsBenefitFromCaching(t *testing.T) {
	// Figure 8a/8b lookups: hot keys cache; skewed finds beat uniform finds
	// for every design (reads take no atomics).
	for _, kind := range []Kind{Folklore, DRAMHiT} {
		uni := runQuick(t, kind, 64, largeTest, 0, Finds)
		skew := runQuick(t, kind, 64, largeTest, 1.09, Finds)
		if skew.Mops < uni.Mops*1.2 {
			t.Errorf("%v: skewed finds %.0f vs uniform %.0f; caching win missing",
				kind, skew.Mops, uni.Mops)
		}
	}
}

func TestPollutionDegradesDRAMHiT(t *testing.T) {
	// Figure 6c: polluting the cache after every op destroys the prefetch
	// advantage; DRAMHiT converges toward Folklore.
	clean := Run(Config{Machine: memsim.IntelSkylake(), Kind: DRAMHiT, Threads: 64,
		Slots: largeTest, MeasureOps: testOps, Seed: 1}, Finds)
	dirty := Run(Config{Machine: memsim.IntelSkylake(), Kind: DRAMHiT, Threads: 64,
		Slots: largeTest, MeasureOps: testOps, Seed: 1, Pollutions: 320}, Finds)
	if dirty.Mops > clean.Mops*0.6 {
		t.Errorf("pollution barely hurt: clean %.0f vs 320-pollutions %.0f Mops", clean.Mops, dirty.Mops)
	}
}

func TestThreadScaling(t *testing.T) {
	// Throughput grows with threads until the memory subsystem saturates.
	m1 := runQuick(t, DRAMHiT, 4, largeTest, 0, Finds)
	m2 := runQuick(t, DRAMHiT, 32, largeTest, 0, Finds)
	if m2.Mops < m1.Mops*2 {
		t.Errorf("4→32 threads: %.0f → %.0f Mops; expected strong scaling", m1.Mops, m2.Mops)
	}
}

func TestWindowOneApproachesFolklore(t *testing.T) {
	// Ablation: a window of 1 forfeits pipelining; DRAMHiT should fall to
	// roughly Folklore's level.
	w16 := runQuick(t, DRAMHiT, 64, largeTest, 0, Finds)
	w1 := Run(Config{Machine: memsim.IntelSkylake(), Kind: DRAMHiT, Threads: 64,
		Slots: largeTest, Window: 1, MeasureOps: testOps, Seed: 42}, Finds)
	if w1.Mops > w16.Mops*0.7 {
		t.Errorf("window=1 %.0f vs window=16 %.0f Mops: pipelining ablation missing", w1.Mops, w16.Mops)
	}
}

func TestAMDOutpacesIntelUniform(t *testing.T) {
	// Figures 10a/10b: the AMD machine (8 channels @ 3200) posts higher
	// absolute throughput than Intel on uniform workloads at matched
	// thread counts. AMD's LLC totals 512 MB, so the DRAM-resident test
	// needs the full 1 GB table.
	intel := Run(Config{Machine: memsim.IntelSkylake(), Kind: DRAMHiT, Threads: 32,
		Slots: DefaultLarge, MeasureOps: testOps, Seed: 7}, Finds)
	amd := Run(Config{Machine: memsim.AMDMilan(), Kind: DRAMHiT, Threads: 32,
		Slots: DefaultLarge, MeasureOps: testOps, Seed: 7}, Finds)
	if amd.Mops <= intel.Mops {
		t.Errorf("AMD %.0f ≤ Intel %.0f Mops on uniform finds", amd.Mops, intel.Mops)
	}
}

func TestAMDAnomalyBeyond32Threads(t *testing.T) {
	// Figure 10b: on the AMD machine, DRAMHiT peaks near 32 threads and
	// drops at higher counts (probe-fabric saturation), while the
	// partitioned table's single-writer partitions bypass the probe
	// broadcasts and keep scaling.
	at32 := Run(Config{Machine: memsim.AMDMilan(), Kind: DRAMHiT, Threads: 32,
		Slots: DefaultLarge, MeasureOps: testOps, Seed: 9}, Finds)
	at128 := Run(Config{Machine: memsim.AMDMilan(), Kind: DRAMHiT, Threads: 128,
		Slots: DefaultLarge, MeasureOps: testOps, Seed: 9}, Finds)
	if at128.Mops > at32.Mops*0.9 {
		t.Errorf("AMD 128-thread finds %.0f vs 32-thread %.0f: anomaly missing", at128.Mops, at32.Mops)
	}
	// DRAMHiT-P must NOT collapse the way DRAMHiT does: its single-writer
	// partitions bypass the probe broadcasts. (In this model it reaches
	// its bandwidth ceiling already at 32 threads, so "keeps growing"
	// manifests as "stays at the ceiling" while DRAMHiT halves.)
	p32 := Run(Config{Machine: memsim.AMDMilan(), Kind: DRAMHiTP, Threads: 32,
		Slots: DefaultLarge, MeasureOps: testOps, Seed: 9}, Inserts)
	p128 := Run(Config{Machine: memsim.AMDMilan(), Kind: DRAMHiTP, Threads: 128,
		Slots: DefaultLarge, MeasureOps: testOps, Seed: 9}, Inserts)
	if p128.Mops < p32.Mops*0.85 {
		t.Errorf("AMD DRAMHiT-P inserts collapsed 32→128 threads: %.0f → %.0f Mops", p32.Mops, p128.Mops)
	}
	d128 := Run(Config{Machine: memsim.AMDMilan(), Kind: DRAMHiT, Threads: 128,
		Slots: DefaultLarge, MeasureOps: testOps, Seed: 9}, Inserts)
	if p128.Mops < d128.Mops*1.2 {
		t.Errorf("AMD @128: DRAMHiT-P %.0f should clearly beat collapsed DRAMHiT %.0f", p128.Mops, d128.Mops)
	}
}

func TestLatencySinkFires(t *testing.T) {
	count := 0
	var worst float64
	Run(Config{Machine: memsim.IntelSkylake(), Kind: DRAMHiT, Threads: 8,
		Slots: DefaultSmall, MeasureOps: 20000, Seed: 3,
		LatencySink: func(submit, complete float64) {
			count++
			if d := complete - submit; d > worst {
				worst = d
			}
		}}, Inserts)
	if count != 20000 {
		t.Errorf("latency sink fired %d times, want 20000", count)
	}
	if worst <= 0 {
		t.Error("latencies not positive")
	}
}

func TestResultFillTracksPrefill(t *testing.T) {
	r := Run(Config{Machine: memsim.IntelSkylake(), Kind: Folklore, Threads: 4,
		Slots: 1 << 18, Prefill: 0.75, MeasureOps: 10000, Seed: 5}, Finds)
	if r.Fill < 0.74 || r.Fill > 0.77 {
		t.Errorf("fill = %.3f, want ~0.75", r.Fill)
	}
}

func TestArrayPlaceAndProbe(t *testing.T) {
	la := &lineAlloc{}
	a := newArray(la, 1024)
	if !a.place(12345) {
		t.Fatal("place failed on empty array")
	}
	if a.occupancy() == 0 {
		t.Fatal("occupancy did not grow")
	}
	// A find for the same hash must succeed without timing.
	_, found := a.scalarFind(12345, func(uint64) {}, func(int) {})
	if !found {
		t.Fatal("placed hash not findable")
	}
	_, found = a.scalarFind(0xdeadbeefcafe, func(uint64) {}, func(int) {})
	_ = found // may rarely false-positive via fingerprint collision; no assert
}

func TestLineAllocDisjoint(t *testing.T) {
	la := &lineAlloc{}
	a := la.alloc(100)
	b := la.alloc(100)
	if b < a+100 {
		t.Errorf("overlapping allocations: %d then %d", a, b)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{Folklore: "folklore", DRAMHiT: "dramhit",
		DRAMHiTP: "dramhit-p", DRAMHiTPSIMD: "dramhit-p-simd", Kind(99): "invalid"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
}
