package simtable

import (
	"testing"

	"dramhit/internal/hashfn"
	"dramhit/internal/kmer"
	"dramhit/internal/memsim"
)

func TestDelegationCostFlat(t *testing.T) {
	// Figure 5: 22–37 cycles per message, roughly constant as the mesh
	// scales from 1×1 to 32×32.
	m := memsim.IntelSkylake()
	var costs []float64
	for _, n := range []int{1, 4, 16, 32} {
		r := RunDelegation(m, n, n, 4000)
		if r.Messages != uint64(n*4000) {
			t.Fatalf("n=%d delivered %d messages", n, r.Messages)
		}
		costs = append(costs, r.CyclesPerMsg)
		if r.CyclesPerMsg < 8 || r.CyclesPerMsg > 80 {
			t.Errorf("n=%d: %.1f cycles/msg outside the plausible band", n, r.CyclesPerMsg)
		}
	}
	// Flatness: max/min within 3x across the sweep.
	min, max := costs[0], costs[0]
	for _, c := range costs {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max/min > 3 {
		t.Errorf("delegation cost not flat: %v", costs)
	}
}

// kmerTrace builds a hash trace from a synthetic genome.
func kmerTrace(t *testing.T, p kmer.GenomeProfile, k int) []uint64 {
	t.Helper()
	var trace []uint64
	for _, rec := range p.Generate() {
		it := kmer.NewIterator(rec, k)
		for {
			km, ok := it.Next()
			if !ok {
				break
			}
			trace = append(trace, hashfn.City64(km))
		}
	}
	return trace
}

func TestTraceRunKmerShapes(t *testing.T) {
	// Figure 12's core claim: on the skewed k-mer workload, DRAMHiT-P
	// clearly beats DRAMHiT (delegation wins under write skew) and
	// everything beats the chained CHTKC-style baseline at scale.
	trace := kmerTrace(t, kmer.DMelanogaster(300_000), 16)
	cfg := Config{Machine: memsim.IntelSkylake(), Threads: 64, Slots: 1 << 22, Seed: 3}

	d := RunTrace(withKind(cfg, DRAMHiT), trace)
	p := RunTrace(withKind(cfg, DRAMHiTP), trace)
	f := RunTrace(withKind(cfg, Folklore), trace)
	c := RunChainedTrace(withKind(cfg, Folklore), trace)

	if p.Mops < d.Mops*1.2 {
		t.Errorf("kmer: DRAMHiT-P %.0f vs DRAMHiT %.0f Mops; partitioning should win on skewed upserts",
			p.Mops, d.Mops)
	}
	if d.Mops < f.Mops*0.9 {
		t.Errorf("kmer: DRAMHiT %.0f well below Folklore %.0f", d.Mops, f.Mops)
	}
	if p.Mops < c.Mops*2 {
		t.Errorf("kmer: DRAMHiT-P %.0f should dwarf chained CHTKC %.0f", p.Mops, c.Mops)
	}
}

func withKind(c Config, k Kind) Config { c.Kind = k; return c }

func TestTraceProcessesEverything(t *testing.T) {
	trace := kmerTrace(t, kmer.FVesca(50_000), 8)
	r := RunTrace(Config{Machine: memsim.IntelSkylake(), Kind: DRAMHiT, Threads: 8,
		Slots: 1 << 18, Seed: 1}, trace)
	if r.Ops != uint64(len(trace)) {
		t.Fatalf("ops %d != trace %d", r.Ops, len(trace))
	}
	if r.Fill <= 0 {
		t.Fatal("trace inserted nothing")
	}
}

func TestChainedTraceHopsGrowWithLoad(t *testing.T) {
	// More keys per bucket must slow the chained design (dependent-miss
	// chains), visibly in cycles/op.
	mk := func(slots uint64) float64 {
		trace := make([]uint64, 40000)
		for i := range trace {
			trace[i] = hashfn.City64(uint64(i))
		}
		r := RunChainedTrace(Config{Machine: memsim.IntelSkylake(), Kind: Folklore,
			Threads: 16, Slots: slots, Seed: 2}, trace)
		return r.CyclesPerOp
	}
	light := mk(1 << 18) // ~0.3 keys per bucket
	heavy := mk(1 << 11) // ~40 keys per bucket
	if heavy < light*1.3 {
		t.Errorf("chained cycles/op: light-load %.0f vs heavy-load %.0f; chains should hurt", light, heavy)
	}
}
