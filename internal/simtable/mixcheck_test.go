package simtable

import (
	"testing"

	"dramhit/internal/memsim"
)

func TestMixedDRAMHiTPRisesWithReads(t *testing.T) {
	run := func(p float64) float64 {
		return Run(Config{Machine: memsim.IntelSkylake(), Kind: DRAMHiTP, Threads: 64,
			Slots: largeTest, ReadProb: p, MeasureOps: 50000, Seed: 4}, Mixed).Mops
	}
	p0, p5, p1 := run(0), run(0.5), run(1)
	t.Logf("p=0: %.0f, p=0.5: %.0f, p=1: %.0f", p0, p5, p1)
	// The paper's Figure 8c: throughput rises with the read fraction. The
	// -P curve is nearly flat through the middle (delegation costs trade
	// against read savings), so assert the strong endpoints plus
	// no-collapse in the middle.
	if p1 < p0*1.3 {
		t.Errorf("DRAMHiT-P all-reads %.0f should clearly exceed all-writes %.0f", p1, p0)
	}
	if p5 < p0*0.85 {
		t.Errorf("DRAMHiT-P mid-mix %.0f collapsed below all-writes %.0f", p5, p0)
	}
}
