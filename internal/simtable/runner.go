package simtable

import (
	"math/rand"
	"sync"

	"dramhit/internal/hashfn"
	"dramhit/internal/memsim"
	"dramhit/internal/workload"
)

// OpMix selects what the measured phase does.
type OpMix int

// Workload phases.
const (
	// Inserts measures insertions of the workload's key stream.
	Inserts OpMix = iota
	// Finds measures lookups of populated keys.
	Finds
	// Mixed interleaves finds and inserts per ReadProb.
	Mixed
)

// Config describes one simulated experiment run.
type Config struct {
	Machine *memsim.Machine
	Kind    Kind
	// Threads is the total simulated thread count. For DRAMHiT-P write
	// workloads it is split 1:3 into producers and delegation threads
	// (paper §4.2); reads use every thread.
	Threads int
	// Slots is the table capacity (the paper's small table is 1M slots =
	// 16 MB; its large is 1G slots = 16 GB, which we scale to keep the
	// footprint ≫ LLC while simulable — see DefaultLarge).
	Slots uint64
	// Window is the prefetch window (default 16; 1 disables pipelining).
	Window int
	// Batch is the submission batch size (Figure 7); it only adds the
	// per-batch bookkeeping overhead. Default 16.
	Batch int
	// Theta is the zipf skew of the measured key stream (0 = uniform).
	Theta float64
	// ReadProb applies to Mixed.
	ReadProb float64
	// MissRatio is the fraction of lookups redirected to keys that were
	// never inserted (ranks beyond the prefill region, mirroring
	// workload.NewKeyStreamMiss): negative lookups walk their full cluster,
	// the regime where the tag filter pays off most.
	MissRatio float64
	// Prefill is the occupancy fraction established untimed before
	// measurement. Defaults: 0.45 for Inserts (the average fill of an
	// empty-to-75% run), 0.75 for Finds/Mixed.
	Prefill float64
	// MeasureOps is the total timed operations across all threads
	// (default 400_000).
	MeasureOps int
	// Pollutions is the number of application cache-line prefetches
	// injected after every operation (Figure 6c).
	Pollutions int
	// TagFilter enables the packed tag-fingerprint sidecar (§3.1.2 of the
	// design doc): every line visit loads the 16x-denser metadata line
	// first, and lines the tag word rejects never pay the data access or
	// prefetch. It engages only on SIMD pipelines (the filter is
	// line-granular) — i.e. the DRAMHiTPSIMD kind. Opt-in, unlike the real
	// tables' tags-by-default, so archived simulated figures stay
	// bit-identical when the flag is absent.
	TagFilter bool
	// Combining enables in-window request combining: a submitted key whose
	// hash already has a pending op in the prefetch window folds onto it
	// (merged upsert delta / piggybacked read) for just the completion
	// cost — zero additional DRAM transactions. Opt-in like TagFilter so
	// archived simulated figures stay bit-identical when the flag is
	// absent; the win grows with zipf skew and vanishes at Theta = 0.
	Combining bool
	// Shards partitions the table into that many equal contiguous slot
	// regions (power of two; 0 or 1 = unsharded), mirroring
	// internal/shardmap's range-of-hash router: thread tid works shard
	// tid mod Shards, and its key stream is confined to the shard's slice of
	// the hash space (the router's top selector bits), so every probe lands
	// in the shard's own region. Supported for the Folklore and DRAMHiT
	// kinds; the partitioned kinds already shard by consumer.
	Shards int
	// Placement selects the NUMA homing of the table's data lines:
	//
	//	""/"interleave"  lines alternate sockets (the default and the
	//	                 paper's configuration);
	//	"node0"          the whole table homed on socket 0 — a single
	//	                 first-touch allocation, the realistic unsharded
	//	                 baseline;
	//	"local"          each shard's region homed on its worker threads'
	//	                 socket (shard s → socket s mod Sockets, threads
	//	                 pinned to match) — shard-per-node placement.
	//
	// Placement only moves the table's own lines; queues and pollution
	// arrays stay interleaved. Pair with Machine.InterconnectGBs to model
	// the cross-socket link.
	Placement string
	// Seed fixes the run's randomness.
	Seed int64
	// LatencySink, when non-nil, receives per-op (submit, complete) cycle
	// pairs (Figure 9).
	LatencySink func(submit, complete float64)
}

// sharding is the resolved shard geometry of a run.
type sharding struct {
	n     uint64 // shard count; <=1 disables
	log2  uint
	shift uint // 64 - log2: shard id occupies the hash's top bits
}

func (c *Config) sharding() sharding {
	if c.Shards <= 1 {
		return sharding{n: 1}
	}
	n := uint64(c.Shards)
	if n&(n-1) != 0 {
		panic("simtable: Shards must be a power of two")
	}
	log2 := uint(0)
	for 1<<log2 < n {
		log2++
	}
	return sharding{n: n, log2: log2, shift: 64 - log2}
}

func (s sharding) enabled() bool { return s.n > 1 }

// confine maps a full-range hash into shard's slice of the hash space: the
// top log2(n) bits select the shard (so fastrange lands in the shard's
// contiguous slot region) and the rest stay uniform.
func (s sharding) confine(h, shard uint64) uint64 {
	if !s.enabled() {
		return h
	}
	return h>>s.log2 | shard<<s.shift
}

// Result aggregates a run.
type Result struct {
	Mops        float64
	CyclesPerOp float64
	GBs         float64
	Ops         uint64
	Fill        float64
	// MemTransactions counts cache-line transfers the timed phase caused;
	// TransPerOp normalizes to the per-request DRAM cost the paper argues
	// from (§2: one line in, one line out is the floor).
	MemTransactions uint64
	TransPerOp      float64
}

// Table sizes used throughout the evaluation.
const (
	// DefaultSmall is 1M slots = 16 MB, fitting the caching hierarchy of a
	// socket, exactly as in the paper.
	DefaultSmall = 1 << 20
	// DefaultLarge is 64M slots = 1 GB. The paper's large table is 16 GB;
	// what matters for the memory-subsystem behaviour is footprint ≫ LLC
	// (44 MB total on the Intel machine), which 1 GB preserves while
	// keeping simulation memory reasonable (the paper itself uses 1 GB as
	// its "large" dataset in Figure 2).
	DefaultLarge = 64 << 20
)

func (c *Config) defaults(mix OpMix) Config {
	cfg := *c
	if cfg.Window == 0 {
		cfg.Window = 16
	}
	if cfg.Batch == 0 {
		cfg.Batch = 16
	}
	if cfg.MeasureOps == 0 {
		cfg.MeasureOps = 400_000
	}
	if cfg.Prefill == 0 {
		if mix == Inserts {
			cfg.Prefill = 0.45
		} else {
			cfg.Prefill = 0.75
		}
	}
	return cfg
}

// prefillCache memoizes the expensive untimed prefill (placing tens of
// millions of keys into a large table) across runs of the same
// configuration: sweeps re-run the identical prefill dozens of times, so the
// occupancy image is computed once and copied per run. The cache is bounded.
var (
	prefillMu    sync.Mutex
	prefillCache = map[prefillKey][]uint16{}
)

type prefillKey struct {
	slots, count, shards uint64
	seed                 int64
}

func prefilled(slots, count, shards uint64, seed int64, hashOf func(uint64) uint64, la *lineAlloc) *array {
	arr := newArray(la, slots)
	k := prefillKey{slots, count, shards, seed}
	prefillMu.Lock()
	master, ok := prefillCache[k]
	prefillMu.Unlock()
	if ok {
		copy(arr.fp, master)
		return arr
	}
	for r := uint64(0); r < count; r++ {
		arr.place(hashOf(r))
	}
	prefillMu.Lock()
	if len(prefillCache) >= 4 {
		for key := range prefillCache {
			delete(prefillCache, key)
			break
		}
	}
	prefillCache[k] = append([]uint16(nil), arr.fp...)
	prefillMu.Unlock()
	return arr
}

// Run executes one experiment and returns its throughput.
func Run(c Config, mix OpMix) Result {
	cfg := c.defaults(mix)
	m := cfg.Machine
	la := &lineAlloc{}
	sh := cfg.sharding()
	if sh.enabled() && cfg.Kind != Folklore && cfg.Kind != DRAMHiT {
		panic("simtable: Shards > 1 supports the Folklore and DRAMHiT kinds")
	}

	// Untimed prefill with unique keys. Rank r belongs to shard r mod n, and
	// its hash is confined to that shard's slice so the timed find streams
	// (which draw shard-local ranks) genuinely hit the placed fingerprints.
	salt := rand.New(rand.NewSource(cfg.Seed)).Uint64() | 1
	keyOf := func(rank uint64) uint64 { return hashfn.City64(rank ^ salt) }
	hashOf := func(rank uint64) uint64 {
		return sh.confine(hashfn.City64(keyOf(rank)), rank&(sh.n-1))
	}
	prefillCount := uint64(float64(cfg.Slots) * cfg.Prefill)
	arr := prefilled(cfg.Slots, prefillCount, sh.n, cfg.Seed, hashOf, la)
	if cfg.TagFilter {
		arr.enableTags(la)
	}

	sim := buildSim(m, cfg, sh, arr)
	pollBase := la.alloc(1 << 22) // 256 MB pollution array

	// A cache-resident table has been pulled into the LLCs by its
	// population phase; warm the LLC so the timed phase measures the
	// steady state (the paper's small-table runs) instead of compulsory
	// misses. Large tables stay cold — they cannot fit.
	tableLines := cfg.Slots/4 + 1
	if int(tableLines) <= sim.LLCLinesTotal() {
		sim.WarmLLC(arr.baseLine, tableLines)
	}
	if arr.tags != nil && int(arr.tagLines()) <= sim.LLCLinesTotal() {
		// The sidecar is 1/16 the data footprint; it is LLC-resident far
		// beyond the point where the data lines stop fitting.
		sim.WarmLLC(arr.tagBase, arr.tagLines())
	}

	switch cfg.Kind {
	case Folklore:
		runFolklore(sim, arr, cfg, mix, keyOf, prefillCount, pollBase)
	case DRAMHiT:
		runDRAMHiT(sim, arr, cfg, mix, keyOf, prefillCount, pollBase)
	case DRAMHiTP, DRAMHiTPSIMD:
		runDRAMHiTP(sim, arr, la, cfg, mix, keyOf, prefillCount, pollBase, cfg.Kind == DRAMHiTPSIMD)
	}

	ops := uint64(cfg.MeasureOps)
	return Result{
		Mops:            sim.Mops(ops),
		CyclesPerOp:     sim.MaxClock() * float64(cfg.Threads) / float64(ops),
		GBs:             sim.AchievedGBs(),
		Ops:             ops,
		Fill:            arr.occupancy(),
		MemTransactions: sim.MemTransactions(),
		TransPerOp:      float64(sim.MemTransactions()) / float64(ops),
	}
}

// buildSim constructs the simulated machine for a run: default round-robin
// thread spread, or — for "local" placement — threads pinned so each
// shard's workers sit on the socket that homes the shard's slot region.
func buildSim(m *memsim.Machine, cfg Config, sh sharding, arr *array) *memsim.Sim {
	base := arr.baseLine
	tableLines := cfg.Slots/4 + 1
	interleave := func(line uint64) int { return int(line) & (m.Sockets - 1) }
	switch cfg.Placement {
	case "", "interleave":
		return memsim.NewSim(m, cfg.Threads)
	case "node0":
		sim := memsim.NewSim(m, cfg.Threads)
		sim.SetPlacement(func(line uint64) int {
			if line >= base && line < base+tableLines {
				return 0
			}
			return interleave(line)
		})
		return sim
	case "local":
		socketOf := func(i int) int { return int(uint64(i)&(sh.n-1)) % m.Sockets }
		sim := memsim.NewSimPinned(m, cfg.Threads, socketOf)
		sim.SetPlacement(func(line uint64) int {
			if line >= base && line < base+tableLines {
				shard := (line - base) * sh.n / tableLines
				return int(shard) % m.Sockets
			}
			return interleave(line)
		})
		return sim
	}
	panic("simtable: unknown Placement " + cfg.Placement)
}

// opStream yields the hash of the next key for a thread, plus whether the
// op is a read (for Mixed).
type opStream struct {
	zipf     *workload.Zipf
	rng      *rand.Rand
	keyOf    func(uint64) uint64
	mix      OpMix
	readProb float64
	// missProb redirects this fraction of reads to absent ranks (beyond the
	// prefill region), making them guaranteed negative lookups.
	missProb float64
	// insertNext hands out fresh unique ranks for insert ops.
	nextFresh func() uint64
	theta     float64
	keySpace  uint64
	// sh/shard confine this stream to one shard's slice of the rank and
	// hash spaces (rank r maps to global rank r*n+shard; the hash's top
	// bits are forced to the shard id).
	sh    sharding
	shard uint64
}

func newOpStream(cfg Config, mix OpMix, keyOf func(uint64) uint64, prefill uint64, tid int, fresh *freshRanks) *opStream {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(tid)*0x9e37 + 1))
	sh := cfg.sharding()
	space := prefill
	if sh.enabled() {
		// Shard-local rank space: this stream only ever addresses the
		// prefilled ranks congruent to its shard.
		space = prefill / sh.n
	}
	if space == 0 {
		space = 1
	}
	return &opStream{
		zipf:      workload.NewZipf(rng, space, cfg.Theta),
		rng:       rng,
		keyOf:     keyOf,
		mix:       mix,
		readProb:  cfg.ReadProb,
		missProb:  cfg.MissRatio,
		nextFresh: fresh.next,
		keySpace:  space,
		sh:        sh,
		shard:     uint64(tid) & (sh.n - 1),
	}
}

// hash maps a (possibly shard-local) rank to its probe hash, confining it to
// the stream's shard when sharding is on.
func (o *opStream) hash(rank uint64) uint64 {
	if o.sh.enabled() {
		rank = rank*o.sh.n + o.shard
		return o.sh.confine(hashfn.City64(o.keyOf(rank)), o.shard)
	}
	return hashfn.City64(o.keyOf(rank))
}

// readRank draws the rank for a lookup: with probability missProb it lands
// in [keySpace, 2*keySpace), ranks no insert path ever placed, so the
// lookup is structurally negative (same construction as
// workload.NewKeyStreamMiss).
func (o *opStream) readRank() uint64 {
	if o.missProb > 0 && o.rng.Float64() < o.missProb {
		return o.keySpace + o.zipf.Next()
	}
	return o.zipf.Next()
}

// freshRanks hands out globally unique ranks beyond the prefill region.
type freshRanks struct{ next func() uint64 }

func newFreshRanks(start uint64) *freshRanks {
	n := start
	return &freshRanks{next: func() uint64 { v := n; n++; return v }}
}

// freshPool builds the fresh-rank source for each thread: one shared global
// counter when unsharded, or one counter per shard (handing out shard-local
// ranks that opStream.hash maps past the prefill region) when sharded.
func freshPool(cfg Config, prefill uint64) func(tid int) *freshRanks {
	sh := cfg.sharding()
	if !sh.enabled() {
		f := newFreshRanks(prefill)
		return func(int) *freshRanks { return f }
	}
	pool := make([]*freshRanks, sh.n)
	start := (prefill + sh.n - 1) / sh.n // mapped rank = r*n+shard ≥ prefill
	for i := range pool {
		pool[i] = newFreshRanks(start)
	}
	return func(tid int) *freshRanks { return pool[uint64(tid)&(sh.n-1)] }
}

// next returns (hash, isRead).
func (o *opStream) next() (uint64, bool) {
	switch o.mix {
	case Finds:
		return o.hash(o.readRank()), true
	case Mixed:
		if o.rng.Float64() < o.readProb {
			return o.hash(o.readRank()), true
		}
		return o.hash(o.zipf.Next()), false
	default: // Inserts
		if o.zipf.Theta() > 0 {
			// Skewed insertions revisit hot keys (overwrites), exactly the
			// contended pattern of Figure 8.
			return o.hash(o.zipf.Next()), false
		}
		return o.hash(o.nextFresh()), false
	}
}

// pollute injects the Figure-6c cache pollution after an operation. Only
// the first handful of prefetches occupy line-fill buffers and actually
// fetch (and evict); the rest are dropped by the hardware but still age
// the thread's outstanding table prefetches and burn issue slots.
func pollute(t *memsim.Thread, rng *rand.Rand, base uint64, n int) {
	const lfb = 16
	for i := 0; i < n; i++ {
		if i < lfb {
			t.Pollute(base + uint64(rng.Intn(1<<22)))
		} else {
			t.PolluteDropped()
		}
	}
}

// runFolklore drives the synchronous baseline: every thread performs ops
// back to back, each paying its critical-path miss.
func runFolklore(sim *memsim.Sim, arr *array, cfg Config, mix OpMix, keyOf func(uint64) uint64, prefill, pollBase uint64) {
	per := opsPerThread(cfg.MeasureOps, cfg.Threads)
	fresh := freshPool(cfg, prefill)
	streams := make([]*opStream, cfg.Threads)
	polls := make([]*rand.Rand, cfg.Threads)
	remaining := make([]int, cfg.Threads)
	for i := range streams {
		streams[i] = newOpStream(cfg, mix, keyOf, prefill, i, fresh(i))
		polls[i] = rand.New(rand.NewSource(cfg.Seed ^ int64(i)))
		remaining[i] = per[i]
	}
	sim.Run(func(t *memsim.Thread) bool {
		if remaining[t.ID] == 0 {
			return false
		}
		remaining[t.ID]--
		h, isRead := streams[t.ID].next()
		start := t.Clock
		if isRead {
			folkloreFind(t, arr, h)
		} else {
			folkloreInsert(t, arr, h)
		}
		if cfg.LatencySink != nil {
			cfg.LatencySink(start, t.Clock)
		}
		if cfg.Pollutions > 0 {
			pollute(t, polls[t.ID], pollBase, cfg.Pollutions)
		}
		return true
	})
}

// runDRAMHiT drives the pipelined table: each thread owns a pipeline and
// submits in batches.
func runDRAMHiT(sim *memsim.Sim, arr *array, cfg Config, mix OpMix, keyOf func(uint64) uint64, prefill, pollBase uint64) {
	per := opsPerThread(cfg.MeasureOps, cfg.Threads)
	fresh := freshPool(cfg, prefill)
	streams := make([]*opStream, cfg.Threads)
	polls := make([]*rand.Rand, cfg.Threads)
	remaining := make([]int, cfg.Threads)
	pipes := make([]*pipeline, cfg.Threads)
	inBatch := make([]int, cfg.Threads)
	for i := range streams {
		streams[i] = newOpStream(cfg, mix, keyOf, prefill, i, fresh(i))
		polls[i] = rand.New(rand.NewSource(cfg.Seed ^ int64(i)))
		remaining[i] = per[i]
		pipes[i] = newPipeline(arr, cfg.Window, false, false, cfg.Combining)
		pipes[i].onComplete = wrapSink(cfg.LatencySink)
	}
	sim.Run(func(t *memsim.Thread) bool {
		p := pipes[t.ID]
		if remaining[t.ID] == 0 {
			if p.pending() > 0 {
				p.flush(t)
			}
			return false
		}
		remaining[t.ID]--
		h, isRead := streams[t.ID].next()
		p.submit(t, h, !isRead)
		inBatch[t.ID]++
		if inBatch[t.ID] >= cfg.Batch {
			inBatch[t.ID] = 0
			t.Compute(batchOverhead)
		}
		if cfg.Pollutions > 0 {
			pollute(t, polls[t.ID], pollBase, cfg.Pollutions)
		}
		return true
	})
}

func wrapSink(sink func(submit, complete float64)) func(float64, float64) {
	if sink == nil {
		return nil
	}
	return sink
}

// runDRAMHiTP drives the partitioned table. For write-bearing workloads the
// threads split 1:3 into producers and partition-owning consumers; for pure
// finds every thread reads directly with a pipeline (plus the partition
// dispatch overhead).
func runDRAMHiTP(sim *memsim.Sim, arr *array, la *lineAlloc, cfg Config, mix OpMix, keyOf func(uint64) uint64, prefill, pollBase uint64, simd bool) {
	if mix == Finds {
		// Reads are never delegated.
		per := opsPerThread(cfg.MeasureOps, cfg.Threads)
		fresh := newFreshRanks(prefill)
		streams := make([]*opStream, cfg.Threads)
		polls := make([]*rand.Rand, cfg.Threads)
		remaining := make([]int, cfg.Threads)
		pipes := make([]*pipeline, cfg.Threads)
		for i := range streams {
			streams[i] = newOpStream(cfg, mix, keyOf, prefill, i, fresh)
			polls[i] = rand.New(rand.NewSource(cfg.Seed ^ int64(i)))
			remaining[i] = per[i]
			pipes[i] = newPipeline(arr, cfg.Window, simd, false, cfg.Combining)
			pipes[i].onComplete = wrapSink(cfg.LatencySink)
		}
		sim.Run(func(t *memsim.Thread) bool {
			p := pipes[t.ID]
			if remaining[t.ID] == 0 {
				if p.pending() > 0 {
					p.flush(t)
				}
				return false
			}
			remaining[t.ID]--
			h, _ := streams[t.ID].next()
			t.Compute(fullCheckCycles) // partition dispatch
			p.submit(t, h, false)
			if cfg.Pollutions > 0 {
				pollute(t, polls[t.ID], pollBase, cfg.Pollutions)
			}
			return true
		})
		return
	}

	if mix == Mixed {
		runDRAMHiTPMixed(sim, arr, la, cfg, keyOf, prefill, pollBase, simd)
		return
	}

	// Producer / consumer split (1:3, at least one of each).
	producers := cfg.Threads / 4
	if producers < 1 {
		producers = 1
	}
	consumers := cfg.Threads - producers
	if consumers < 1 {
		consumers = 1
		producers = cfg.Threads - 1
		if producers < 1 {
			// Single thread: it is both; degrade to DRAMHiT-style local.
			producers = 1
			consumers = 0
		}
	}
	if consumers == 0 {
		runDRAMHiT(sim, arr, cfg, mix, keyOf, prefill, pollBase)
		return
	}

	// Queues: producer p -> consumer c.
	queues := make([][]*simQueue, producers)
	for p := 0; p < producers; p++ {
		queues[p] = make([]*simQueue, consumers)
		for c := 0; c < consumers; c++ {
			queues[p][c] = newSimQueue(la, 512, 64)
		}
	}
	// Partition ownership: consumer for a hash.
	ownerOf := func(h uint64) int {
		return int(hashfn.Fastrange(h, uint64(consumers)))
	}

	per := opsPerThread(cfg.MeasureOps, producers)
	fresh := newFreshRanks(prefill)
	streams := make([]*opStream, producers)
	polls := make([]*rand.Rand, cfg.Threads)
	remaining := make([]int, producers)
	for i := 0; i < producers; i++ {
		streams[i] = newOpStream(cfg, mix, keyOf, prefill, i, fresh)
		remaining[i] = per[i]
	}
	for i := range polls {
		polls[i] = rand.New(rand.NewSource(cfg.Seed ^ int64(i)))
	}
	pipes := make([]*pipeline, consumers)
	readPipes := make([]*pipeline, producers)
	for c := 0; c < consumers; c++ {
		pipes[c] = newPipeline(arr, cfg.Window, simd, true, cfg.Combining)
		// Partition lines are only ever cached by their owner: the probe
		// filter resolves them without cross-CCX broadcasts.
		sim.Threads[producers+c].ProbeExempt = true
	}
	for p := 0; p < producers; p++ {
		readPipes[p] = newPipeline(arr, cfg.Window, simd, false, cfg.Combining)
	}
	producersDone := 0
	rr := make([]int, consumers)

	sim.Run(func(t *memsim.Thread) bool {
		id := t.ID
		if id < producers {
			// Producer.
			if remaining[id] == 0 {
				// Publish trailing sections once.
				for c := 0; c < consumers; c++ {
					queues[id][c].publish(t)
				}
				readPipes[id].flush(t)
				producersDone++
				return false
			}
			h, isRead := streams[id].next()
			if isRead {
				t.Compute(fullCheckCycles)
				readPipes[id].submit(t, h, false)
				remaining[id]--
				return true
			}
			t.Compute(hashCycles + fullCheckCycles)
			c := ownerOf(h)
			if !queues[id][c].send(t, h) {
				// Queue full: back off and retry this op later.
				t.Compute(100)
				return true
			}
			if cfg.LatencySink != nil {
				// Fire-and-forget: the paper measures DRAMHiT-P insert
				// latency as submission time (90% within 52 cycles).
				cfg.LatencySink(t.Clock-msgEnqueue-hashCycles, t.Clock)
			}
			remaining[id]--
			if cfg.Pollutions > 0 {
				pollute(t, polls[id], pollBase, cfg.Pollutions)
			}
			return true
		}

		// Consumer.
		c := id - producers
		got := false
		for tries := 0; tries < producers; tries++ {
			q := queues[rr[c]%producers][c]
			rr[c]++
			if msg, ok := q.recv(t); ok {
				// Prefetch the queue we will serve next (§3.3).
				queues[rr[c]%producers][c].prefetchHead(t)
				pipes[c].submit(t, msg.h, true)
				got = true
				break
			}
		}
		if got {
			return true
		}
		// Idle: are we done?
		if producersDone == producers {
			empty := true
			for p := 0; p < producers; p++ {
				if queues[p][c].backlog() > 0 {
					empty = false
					break
				}
			}
			if empty {
				pipes[c].flush(t)
				return false
			}
		}
		t.Compute(pollEmptyCycles)
		return true
	})
}

// opsPerThread splits total ops evenly with the remainder spread over the
// first threads.
func opsPerThread(total, threads int) []int {
	per := make([]int, threads)
	base := total / threads
	rem := total % threads
	for i := range per {
		per[i] = base
		if i < rem {
			per[i]++
		}
	}
	return per
}

// runDRAMHiTPMixed models the partitioned table under a read/write mix the
// way the design intends: EVERY thread executes its reads directly (reads
// are never delegated), while writes are delegated to the consumer-role
// threads (the last 3/4), which interleave applying delegated updates with
// generating their own operations. At read-probability 1 this converges to
// the all-threads read pipeline; at 0 it approaches the producer/consumer
// insert configuration.
func runDRAMHiTPMixed(sim *memsim.Sim, arr *array, la *lineAlloc, cfg Config, keyOf func(uint64) uint64, prefill, pollBase uint64, simd bool) {
	threads := cfg.Threads
	producersOnly := threads / 4
	if producersOnly < 1 {
		producersOnly = 1
	}
	consumers := threads - producersOnly
	if consumers < 1 {
		runDRAMHiT(sim, arr, cfg, Mixed, keyOf, prefill, pollBase)
		return
	}
	// Every thread can send; consumer role = ids >= producersOnly.
	queues := make([][]*simQueue, threads)
	for p := 0; p < threads; p++ {
		queues[p] = make([]*simQueue, consumers)
		for c := 0; c < consumers; c++ {
			queues[p][c] = newSimQueue(la, 512, 64)
		}
	}
	ownerOf := func(h uint64) int { return int(hashfn.Fastrange(h, uint64(consumers))) }

	per := opsPerThread(cfg.MeasureOps, threads)
	fresh := newFreshRanks(prefill)
	streams := make([]*opStream, threads)
	remaining := make([]int, threads)
	polls := make([]*rand.Rand, threads)
	readPipes := make([]*pipeline, threads)
	applyPipes := make([]*pipeline, consumers)
	for i := 0; i < threads; i++ {
		streams[i] = newOpStream(cfg, Mixed, keyOf, prefill, i, fresh)
		remaining[i] = per[i]
		polls[i] = rand.New(rand.NewSource(cfg.Seed ^ int64(i)))
		readPipes[i] = newPipeline(arr, cfg.Window, simd, false, cfg.Combining)
	}
	for c := 0; c < consumers; c++ {
		applyPipes[c] = newPipeline(arr, cfg.Window, simd, true, cfg.Combining)
		sim.Threads[producersOnly+c].ProbeExempt = true
	}
	closed := make([]bool, threads)
	closedCount := 0
	rr := make([]int, consumers)

	sim.Run(func(t *memsim.Thread) bool {
		id := t.ID
		isConsumer := id >= producersOnly
		// Consumers drain one delegated write per step (so queues never
		// back up) and still advance their own operation stream below —
		// otherwise a busy mesh starves the consumers' own reads and the
		// run's makespan stretches on their tail.
		if isConsumer {
			c := id - producersOnly
			for tries := 0; tries < threads; tries++ {
				q := queues[rr[c]%threads][c]
				rr[c]++
				if msg, ok := q.recv(t); ok {
					queues[rr[c]%threads][c].prefetchHead(t)
					applyPipes[c].submit(t, msg.h, true)
					break
				}
			}
		}
		if remaining[id] > 0 {
			remaining[id]--
			h, isRead := streams[id].next()
			if isRead {
				t.Compute(fullCheckCycles)
				readPipes[id].submit(t, h, false)
			} else {
				t.Compute(hashCycles + fullCheckCycles)
				if !queues[id][ownerOf(h)].send(t, h) {
					t.Compute(100)
					remaining[id]++ // retry later
				}
			}
			if cfg.Pollutions > 0 {
				pollute(t, polls[id], pollBase, cfg.Pollutions)
			}
			return true
		}
		// Done generating: publish trailing sections once, then (consumers)
		// keep draining until everything is closed and empty.
		if !closed[id] {
			closed[id] = true
			closedCount++
			for c := 0; c < consumers; c++ {
				queues[id][c].publish(t)
			}
			readPipes[id].flush(t)
		}
		if !isConsumer {
			return false
		}
		c := id - producersOnly
		if closedCount == threads {
			empty := true
			for p := 0; p < threads; p++ {
				if queues[p][c].backlog() > 0 {
					empty = false
					break
				}
			}
			if empty {
				applyPipes[c].flush(t)
				return false
			}
		}
		t.Compute(pollEmptyCycles)
		return true
	})
}
