package simtable

import (
	"testing"

	"dramhit/internal/memsim"
)

// TestCombiningWinsOnSkew is the simulator's A/B for in-window request
// combining: on a zipf-skewed upsert stream, duplicate keys land inside the
// prefetch window constantly, and each fold saves a whole DRAM round trip —
// throughput must rise and traffic must fall. At Theta = 0 duplicates
// essentially never collide inside a 16-deep window over a large key space,
// so combining must be free: the same run with the flag on stays within a
// few percent.
func TestCombiningWinsOnSkew(t *testing.T) {
	run := func(combining bool, theta float64) Result {
		return Run(Config{
			Machine:    memsim.IntelSkylake(),
			Kind:       DRAMHiT,
			Threads:    64,
			Slots:      largeTest,
			Theta:      theta,
			Combining:  combining,
			MeasureOps: testOps,
			Seed:       42,
		}, Inserts)
	}
	off, on := run(false, 0.99), run(true, 0.99)
	if off.Mops <= 0 || on.Mops <= 0 {
		t.Fatalf("nonpositive throughput: off %.0f on %.0f", off.Mops, on.Mops)
	}
	if on.Mops <= off.Mops {
		t.Errorf("combining did not speed up skewed upserts: %.0f vs %.0f Mops",
			on.Mops, off.Mops)
	}
	// GBs is an achieved rate and rises with throughput; the per-op
	// traffic (GB/s over Mops ∝ bytes per op) is what folds must cut.
	if on.GBs/on.Mops >= off.GBs/off.Mops {
		t.Errorf("combining did not reduce DRAM traffic per op: %.4f vs %.4f KB/op",
			on.GBs/on.Mops, off.GBs/off.Mops)
	}
	t.Logf("theta 0.99: %.0f vs %.0f Mops (%.2fx), %.4f vs %.4f KB/op",
		on.Mops, off.Mops, on.Mops/off.Mops, on.GBs/on.Mops, off.GBs/off.Mops)

	// Uniform direction: the scan is register-only work over at most
	// window entries; the run must stay within 3% of the baseline.
	offU, onU := run(false, 0), run(true, 0)
	if onU.Mops < offU.Mops*0.97 {
		t.Errorf("combining regressed uniform inserts beyond 3%%: %.0f vs %.0f Mops",
			onU.Mops, offU.Mops)
	}
}

// TestCombiningFoldAccounting pins the pipeline-level contract: every
// submitted op completes exactly once (folded or probed), and folds charge
// no line accesses — keyLines counts only the non-combined ops' visits.
func TestCombiningFoldAccounting(t *testing.T) {
	la := &lineAlloc{}
	arr := newArray(la, 4096)
	m := memsim.IntelSkylake()
	sim := memsim.NewSim(m, 1)
	p := newPipeline(arr, 16, true, false, true)
	const dups = 128
	h := uint64(0x9e3779b97f4a7c15)
	sim.Run(func(t *memsim.Thread) bool {
		for i := 0; i < dups; i++ {
			p.submit(t, h, true)
		}
		p.flush(t)
		return false
	})
	if p.ops != dups {
		t.Fatalf("ops = %d, want %d (every submit completes once)", p.ops, dups)
	}
	if p.combined != dups-1 {
		t.Fatalf("combined = %d, want %d (all but the leader fold)", p.combined, dups-1)
	}
	if p.keyLines != 1 {
		t.Fatalf("keyLines = %d, want 1 (folds touch no lines)", p.keyLines)
	}
}
