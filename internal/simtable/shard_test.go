package simtable

import (
	"testing"

	"dramhit/internal/hashfn"
	"dramhit/internal/memsim"
)

// TestShardConfinement checks the sharded key-stream machinery end to end:
// confined hashes land fastrange in the shard's contiguous slot region,
// prefill places ranks in their owning shard, and a sharded find run probes
// only placed fingerprints (reprobe-free hit rates show up as sane per-op
// transaction counts).
func TestShardConfinement(t *testing.T) {
	cfg := Config{Shards: 8}
	sh := cfg.sharding()
	if sh.n != 8 || sh.log2 != 3 || sh.shift != 61 {
		t.Fatalf("sharding geometry = %+v", sh)
	}
	const slots = 1 << 16
	for _, h := range []uint64{0, 1 << 20, ^uint64(0), 0xdeadbeefcafebabe} {
		for shard := uint64(0); shard < 8; shard++ {
			c := sh.confine(h, shard)
			if got := c >> sh.shift; got != shard {
				t.Fatalf("confine(%#x, %d) top bits = %d", h, shard, got)
			}
			slot := hashfn.Fastrange(c, slots)
			lo, hi := shard*slots/8, (shard+1)*slots/8
			if slot < lo || slot >= hi {
				t.Fatalf("confined hash maps to slot %d outside shard %d's region [%d,%d)",
					slot, shard, lo, hi)
			}
		}
	}
	// Unsharded geometry is the identity.
	id := (&Config{}).sharding()
	if id.enabled() || id.confine(42, 0) != 42 {
		t.Fatal("unsharded confine is not the identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two Shards did not panic")
		}
	}()
	_ = (&Config{Shards: 6}).sharding()
}

// TestShardedRunFinds runs a small sharded find workload on each supported
// kind and sanity-checks throughput and fill. A sharded run whose streams
// missed the prefilled fingerprints would walk long failed probes and blow
// up TransPerOp; requiring < 4 lines/op (one tag/data line plus slack)
// catches a rank/hash mismatch between prefill and the timed phase.
func TestShardedRunFinds(t *testing.T) {
	for _, kind := range []Kind{Folklore, DRAMHiT} {
		res := Run(Config{
			Machine:    memsim.IntelSkylake(),
			Kind:       kind,
			Threads:    8,
			Slots:      1 << 18,
			Shards:     8,
			MeasureOps: 60_000,
			Seed:       7,
		}, Finds)
		if res.Mops <= 0 {
			t.Fatalf("%v sharded: Mops = %v", kind, res.Mops)
		}
		if res.Fill < 0.70 || res.Fill > 0.80 {
			t.Fatalf("%v sharded: fill = %v, want ~0.75", kind, res.Fill)
		}
		if res.TransPerOp > 4 {
			t.Fatalf("%v sharded: %.1f mem transactions/op — find streams are missing the prefill",
				kind, res.TransPerOp)
		}
	}
}

// TestShardedInsertsStayDisjoint checks sharded insert streams hand out
// globally fresh ranks: the run must not blow past the shard regions' fill
// (duplicate ranks would collapse into overwrites and skew occupancy).
func TestShardedInsertsStayDisjoint(t *testing.T) {
	res := Run(Config{
		Machine:    memsim.IntelSkylake(),
		Kind:       DRAMHiT,
		Threads:    8,
		Slots:      1 << 18,
		Shards:     4,
		Prefill:    0.45,
		MeasureOps: 50_000,
		Seed:       3,
	}, Inserts)
	wantFill := 0.45 + 50_000.0/float64(1<<18)
	if res.Fill < wantFill-0.02 || res.Fill > wantFill+0.02 {
		t.Fatalf("sharded inserts: fill = %v, want ~%v (fresh ranks not globally unique?)",
			res.Fill, wantFill)
	}
}

// TestShardedPanicsOnPartitionedKinds locks the supported-kind contract.
func TestShardedPanicsOnPartitionedKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sharded DRAMHiT-P run did not panic")
		}
	}()
	Run(Config{
		Machine: memsim.IntelSkylake(), Kind: DRAMHiTP,
		Threads: 4, Slots: 1 << 14, Shards: 2, MeasureOps: 1000,
	}, Finds)
}

// TestPlacementSweep is the NUMA experiment behind the sharded bench's
// headline: at full machine width (64 workers) on a genuinely DRAM-resident
// table (256 MB — far past either socket's 22 MB LLC, like the paper's
// multi-GB tables) with the interconnect modeled, 8 shards placed
// shard-local must beat the same table interleaved, which must beat a single
// node0-homed table, and the local/node0 gap must be wide. Table size
// matters: at 64 MB a third of the node0 baseline's probes hit socket 0's
// LLC and flatter it; once the table is DRAM-resident, node0 sits at its
// six-channel bound (directory write-backs inflating every remote read)
// while shard-local runs compute-bound on all twelve channels.
// internal/bench's shard experiment reruns this at 512 MB for the headline
// ≥3x aggregate ratio.
func TestPlacementSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("placement sweep is a multi-run simulation")
	}
	m := memsim.IntelSkylake()
	m.InterconnectGBs = 41.6
	base := Config{
		Machine:    m,
		Kind:       DRAMHiT,
		Threads:    64,
		Slots:      1 << 24, // 256 MB data: DRAM-resident on both sockets
		MeasureOps: 300_000,
		Seed:       11,
	}

	run := func(shards int, placement string) float64 {
		cfg := base
		cfg.Shards = shards
		cfg.Placement = placement
		return Run(cfg, Finds).Mops
	}
	local := run(8, "local")
	inter := run(8, "interleave")
	node0 := run(1, "node0")
	t.Logf("Mops: 8-shard local=%.1f 8-shard interleave=%.1f 1-shard node0=%.1f (local/node0 = %.2fx)",
		local, inter, node0, local/node0)
	if local <= inter {
		t.Fatalf("shard-local (%.1f Mops) did not beat interleave (%.1f)", local, inter)
	}
	if inter <= node0 {
		t.Fatalf("interleave (%.1f Mops) did not beat node0 (%.1f)", inter, node0)
	}
	if local < 2.8*node0 {
		t.Fatalf("shard-local (%.1f Mops) only %.2fx over node0 (%.1f), want ≥2.8x",
			local, local/node0, node0)
	}
}
