package simtable

import (
	"testing"

	"dramhit/internal/hashfn"
	"dramhit/internal/memsim"
)

func TestTagSidecarImage(t *testing.T) {
	la := &lineAlloc{}
	a := newArray(la, 1024)
	for h := uint64(1); h < 400; h++ {
		a.place(h * 0x9e3779b97f4a7c15)
	}
	a.enableTags(la)
	if a.tagBase < a.baseLine+1024/4 {
		t.Fatalf("tag sidecar overlaps data: tagBase %d, data ends %d", a.tagBase, a.baseLine+1024/4)
	}
	for i := uint64(0); i < 1024; i++ {
		switch f := a.fp[i]; f {
		case fpEmpty, fpTombstone:
			if a.tags[i] != 0 {
				t.Fatalf("slot %d: empty/tombstone but tag %d", i, a.tags[i])
			}
		default:
			if a.tags[i] != tag8(f) {
				t.Fatalf("slot %d: tag %d, want %d", i, a.tags[i], tag8(f))
			}
			if a.tags[i] == 0 {
				t.Fatalf("slot %d: occupied slot has reserved tag 0", i)
			}
		}
	}
	// A line of all-occupied nonmatching tags must be rejectable; any zero
	// byte must force must-check.
	for i := uint64(0); i < 1024; i += 4 {
		allOcc := true
		for s := i; s < i+4; s++ {
			if a.tags[s] == 0 {
				allOcc = false
			}
		}
		if !allOcc && !a.lineCandidates(i, 0xFF) {
			t.Fatalf("line at %d has a zero tag but was rejected", i)
		}
	}
}

// TestTagFilterCutsKeyLineLoads runs the simulated SIMD read pipeline on a
// miss-heavy stream with and without the sidecar and checks the same
// accounting identity the real tables obey: the filtered run visits the same
// lines but resolves most of them from the metadata stream alone.
func TestTagFilterCutsKeyLineLoads(t *testing.T) {
	run := func(tagFilter bool) (keyLines, tagSkips, ops uint64) {
		la := &lineAlloc{}
		arr := newArray(la, 1<<16)
		for r := uint64(0); r < (1<<16)*3/4; r++ {
			arr.place(hashfn.City64(r))
		}
		if tagFilter {
			arr.enableTags(la)
		}
		sim := memsim.NewSim(memsim.IntelSkylake(), 1)
		p := newPipeline(arr, 16, true, false, false)
		sim.Run(func(th *memsim.Thread) bool {
			if ops >= 30000 {
				p.flush(th)
				return false
			}
			// Probe keys disjoint from the fill (ranks beyond the prefill):
			// every lookup misses and walks its full cluster.
			h := hashfn.City64(1<<20 + ops)
			p.submit(th, h, false)
			ops++
			return true
		})
		return p.keyLines, p.tagSkips, p.ops
	}
	klNone, skNone, opsNone := run(false)
	klTags, skTags, opsTags := run(true)
	if opsNone != opsTags || opsNone == 0 {
		t.Fatalf("op counts diverged: %d vs %d", opsNone, opsTags)
	}
	if skNone != 0 {
		t.Fatalf("unfiltered pipeline recorded %d tag skips", skNone)
	}
	// Traversal parity: the filtered pipeline visits exactly the lines the
	// unfiltered one loads, each either admitted or skipped.
	if klTags+skTags != klNone {
		t.Fatalf("line accounting: tags %d+%d != none %d", klTags, skTags, klNone)
	}
	// A negative lookup's terminating line holds the empty slot that ends
	// the probe; its zero tag is must-check, so roughly one admitted line
	// per op (plus ~1/255-per-lane false positives) is the floor. Every
	// interior cluster line should be rejected.
	if klTags*3 >= klNone*2 {
		t.Fatalf("filter too weak on misses: %d key lines with tags, %d without", klTags, klNone)
	}
	if klTags < opsTags || klTags > opsTags*11/10 {
		t.Fatalf("admitted lines %d out of expected band around ops %d", klTags, opsTags)
	}
}

// TestTagFilterSpeedsSimulatedNegativeFinds is the simulator's end-to-end
// A/B. The filter trades serialized latency (an extra queue pass per
// admitted line) for DRAM traffic (rejected lines issue no transaction), so
// it wins exactly when bandwidth is the binding constraint: at 64 threads
// the unfiltered all-miss run saturates the Skylake channels (~105 GB/s,
// per-op cycles balloon) while the filtered run cuts traffic roughly in
// half and posts far higher Mops. At low thread counts — latency-bound, the
// machine nowhere near its bandwidth ceiling — the filter costs a little,
// the same asymmetry the real-host BenchmarkProbeFilter capture shows; that
// direction only gets a sanity bound, not a win requirement.
func TestTagFilterSpeedsSimulatedNegativeFinds(t *testing.T) {
	run := func(tagFilter bool, threads int, missRatio float64) Result {
		return Run(Config{
			Machine:    memsim.IntelSkylake(),
			Kind:       DRAMHiTPSIMD,
			Threads:    threads,
			Slots:      largeTest,
			Prefill:    0.75,
			MissRatio:  missRatio,
			TagFilter:  tagFilter,
			MeasureOps: testOps,
			Seed:       42,
		}, Finds)
	}
	off, on := run(false, 64, 1), run(true, 64, 1)
	if off.Mops <= 0 || on.Mops <= 0 {
		t.Fatalf("nonpositive throughput: off %.0f on %.0f", off.Mops, on.Mops)
	}
	if on.Mops < off.Mops*1.2 {
		t.Errorf("tag filter did not speed up bandwidth-bound all-miss finds: %.0f vs %.0f Mops",
			on.Mops, off.Mops)
	}
	if on.GBs >= off.GBs {
		t.Errorf("tag filter did not reduce DRAM traffic: %.1f vs %.1f GB/s", on.GBs, off.GBs)
	}
	// Latency-bound all-hit direction: the filter may cost, but within 2x.
	offHit, onHit := run(false, 32, 0), run(true, 32, 0)
	if onHit.Mops*2 < offHit.Mops {
		t.Errorf("tag filter implausibly slow on all-hit finds: %.0f vs %.0f Mops",
			onHit.Mops, offHit.Mops)
	}
}
