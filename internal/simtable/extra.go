package simtable

import (
	"math/rand"

	"dramhit/internal/hashfn"
	"dramhit/internal/memsim"
)

// DelegationResult reports the Figure-5 microbenchmark.
type DelegationResult struct {
	CyclesPerMsg float64
	Messages     uint64
}

// RunDelegation reproduces the paper's delegation microbenchmark (§4.1,
// Figure 5): p producers each send msgs 16-byte messages round-robin to c
// consumers over section queues; consumers poll and read. It returns the
// average producer-side cost per message in cycles (the paper measures
// 22–37 cycles, flat from 1×1 to 32×32).
func RunDelegation(m *memsim.Machine, p, c, msgs int) DelegationResult {
	sim := memsim.NewSim(m, p+c)
	la := &lineAlloc{}
	queues := make([][]*simQueue, p)
	for i := 0; i < p; i++ {
		queues[i] = make([]*simQueue, c)
		for j := 0; j < c; j++ {
			queues[i][j] = newSimQueue(la, 512, 64)
		}
	}
	remaining := make([]int, p)
	rrP := make([]int, p)
	rrC := make([]int, c)
	done := 0
	var prodCycles float64
	for i := range remaining {
		remaining[i] = msgs
	}
	startClocks := make([]float64, p+c)
	for i, t := range sim.Threads {
		startClocks[i] = t.Clock
	}
	sim.Run(func(t *memsim.Thread) bool {
		id := t.ID
		if id < p {
			if remaining[id] == 0 {
				for j := 0; j < c; j++ {
					queues[id][j].publish(t)
				}
				done++
				prodCycles += t.Clock - startClocks[id]
				return false
			}
			j := rrP[id] % c
			rrP[id]++
			if !queues[id][j].send(t, uint64(id)<<32|uint64(remaining[id])) {
				t.Compute(50)
				return true
			}
			remaining[id]--
			return true
		}
		ci := id - p
		for tries := 0; tries < p; tries++ {
			q := queues[rrC[ci]%p][ci]
			rrC[ci]++
			if _, ok := q.recv(t); ok {
				queues[rrC[ci]%p][ci].prefetchHead(t)
				t.Compute(2) // read the received value
				return true
			}
		}
		if done == p {
			empty := true
			for i := 0; i < p; i++ {
				if queues[i][ci].backlog() > 0 {
					empty = false
					break
				}
			}
			if empty {
				return false
			}
		}
		t.Compute(pollEmptyCycles)
		return true
	})
	total := uint64(p * msgs)
	return DelegationResult{
		CyclesPerMsg: prodCycles / float64(total),
		Messages:     total,
	}
}

// RunTrace measures upsert throughput over an explicit key-hash trace (the
// Figure-12 k-mer workload): the trace is split across threads in
// round-robin chunks, preserving each chunk's sequential locality.
func RunTrace(cfg Config, trace []uint64) Result {
	cfgd := cfg.defaults(Inserts)
	la := &lineAlloc{}
	arr := newArray(la, cfgd.Slots)
	if cfgd.TagFilter {
		arr.enableTags(la)
	}
	sim := memsim.NewSim(cfgd.Machine, cfgd.Threads)

	switch cfgd.Kind {
	case Folklore:
		runTraceSync(sim, arr, cfgd, trace, folkloreUpsert)
	case DRAMHiT:
		runTraceDRAMHiT(sim, arr, cfgd, trace)
	case DRAMHiTP, DRAMHiTPSIMD:
		runTraceDRAMHiTP(sim, arr, la, cfgd, trace, cfgd.Kind == DRAMHiTPSIMD)
	}
	ops := uint64(len(trace))
	return Result{
		Mops:        sim.Mops(ops),
		CyclesPerOp: sim.MaxClock() * float64(cfgd.Threads) / float64(ops),
		GBs:         sim.AchievedGBs(),
		Ops:         ops,
		Fill:        arr.occupancy(),
	}
}

// traceChunks splits a trace into contiguous per-thread chunks.
func traceChunks(trace []uint64, threads int) [][]uint64 {
	chunks := make([][]uint64, threads)
	per := len(trace) / threads
	for i := 0; i < threads; i++ {
		lo := i * per
		hi := lo + per
		if i == threads-1 {
			hi = len(trace)
		}
		chunks[i] = trace[lo:hi]
	}
	return chunks
}

func runTraceSync(sim *memsim.Sim, arr *array, cfg Config, trace []uint64, op func(*memsim.Thread, *array, uint64)) {
	chunks := traceChunks(trace, cfg.Threads)
	pos := make([]int, cfg.Threads)
	sim.Run(func(t *memsim.Thread) bool {
		if pos[t.ID] >= len(chunks[t.ID]) {
			return false
		}
		h := chunks[t.ID][pos[t.ID]]
		pos[t.ID]++
		op(t, arr, h)
		return true
	})
}

func runTraceDRAMHiT(sim *memsim.Sim, arr *array, cfg Config, trace []uint64) {
	chunks := traceChunks(trace, cfg.Threads)
	pos := make([]int, cfg.Threads)
	pipes := make([]*pipeline, cfg.Threads)
	for i := range pipes {
		pipes[i] = newPipeline(arr, cfg.Window, false, false, cfg.Combining)
		pipes[i].upsert = true // counting semantics: adds are atomic
	}
	sim.Run(func(t *memsim.Thread) bool {
		p := pipes[t.ID]
		if pos[t.ID] >= len(chunks[t.ID]) {
			if p.pending() > 0 {
				p.flush(t)
			}
			return false
		}
		h := chunks[t.ID][pos[t.ID]]
		pos[t.ID]++
		p.submit(t, h, true)
		return true
	})
}

func runTraceDRAMHiTP(sim *memsim.Sim, arr *array, la *lineAlloc, cfg Config, trace []uint64, simd bool) {
	producers := cfg.Threads / 4
	if producers < 1 {
		producers = 1
	}
	consumers := cfg.Threads - producers
	if consumers < 1 {
		runTraceDRAMHiT(sim, arr, cfg, trace)
		return
	}
	queues := make([][]*simQueue, producers)
	for p := 0; p < producers; p++ {
		queues[p] = make([]*simQueue, consumers)
		for c := 0; c < consumers; c++ {
			queues[p][c] = newSimQueue(la, 512, 64)
		}
	}
	ownerOf := func(h uint64) int { return int(hashfn.Fastrange(h, uint64(consumers))) }
	chunks := traceChunks(trace, producers)
	pos := make([]int, producers)
	pipes := make([]*pipeline, consumers)
	for c := 0; c < consumers; c++ {
		pipes[c] = newPipeline(arr, cfg.Window, simd, true, cfg.Combining)
		sim.Threads[producers+c].ProbeExempt = true
	}
	producersDone := 0
	rr := make([]int, consumers)
	sim.Run(func(t *memsim.Thread) bool {
		id := t.ID
		if id < producers {
			if pos[id] >= len(chunks[id]) {
				for c := 0; c < consumers; c++ {
					queues[id][c].publish(t)
				}
				producersDone++
				return false
			}
			h := chunks[id][pos[id]]
			t.Compute(hashCycles + fullCheckCycles)
			c := ownerOf(h)
			if !queues[id][c].send(t, h) {
				t.Compute(100)
				return true
			}
			pos[id]++
			return true
		}
		c := id - producers
		for tries := 0; tries < producers; tries++ {
			q := queues[rr[c]%producers][c]
			rr[c]++
			if msg, ok := q.recv(t); ok {
				queues[rr[c]%producers][c].prefetchHead(t)
				pipes[c].submit(t, msg.h, true)
				return true
			}
		}
		if producersDone == producers {
			empty := true
			for p := 0; p < producers; p++ {
				if queues[p][c].backlog() > 0 {
					empty = false
					break
				}
			}
			if empty {
				pipes[c].flush(t)
				return false
			}
		}
		t.Compute(pollEmptyCycles)
		return true
	})
}

// RunChainedTrace measures the CHTKC-style chained counter on the simulated
// machine: each upsert loads the bucket head line and then walks chain
// nodes, each hop a dependent unprefetchable miss; inserting pushes a node
// with a CAS on the bucket head. Chain occupancy is tracked per bucket so
// hop counts reflect the actual load factor of the run.
func RunChainedTrace(cfg Config, trace []uint64) Result {
	cfgd := cfg.defaults(Inserts)
	m := cfgd.Machine
	la := &lineAlloc{}
	nb := uint64(1)
	for nb < cfgd.Slots/2 {
		nb <<= 1
	}
	bucketBase := la.alloc(nb/8 + 1) // 8 bucket-head pointers per line
	nodeBase := la.alloc(uint64(len(trace))/2 + 1)

	// chains[b] holds the node line addresses of bucket b's chain, newest
	// first; chainKey mirrors the fingerprints for membership checks.
	chains := make(map[uint64][]uint64, 1<<16)
	keys := make(map[uint64][]uint64, 1<<16)
	var nodesAlloc uint64

	sim := memsim.NewSim(m, cfgd.Threads)
	chunks := traceChunks(trace, cfgd.Threads)
	pos := make([]int, cfgd.Threads)
	rng := rand.New(rand.NewSource(cfgd.Seed))
	_ = rng
	sim.Run(func(t *memsim.Thread) bool {
		if pos[t.ID] >= len(chunks[t.ID]) {
			return false
		}
		h := chunks[t.ID][pos[t.ID]]
		pos[t.ID]++
		t.Compute(hashCycles + loopCycles)
		b := hashfn.Fastrange(h, nb)
		t.Access(bucketBase+b/8, memsim.Load)
		// Walk the chain: each node is a dependent load of its own line.
		for i, k := range keys[b] {
			t.Access(chains[b][i], memsim.Load)
			t.Compute(2)
			if k == h {
				// Found: atomic add on the node's counter.
				t.Access(chains[b][i], memsim.RMW)
				return true
			}
		}
		// Not found: allocate a node and CAS it onto the bucket head.
		nodeLine := nodeBase + nodesAlloc/2 // two 32-byte nodes per line
		nodesAlloc++
		t.Access(nodeLine, memsim.Store)
		t.Access(bucketBase+b/8, memsim.RMW)
		chains[b] = append([]uint64{nodeLine}, chains[b]...)
		keys[b] = append([]uint64{h}, keys[b]...)
		return true
	})
	ops := uint64(len(trace))
	return Result{
		Mops:        sim.Mops(ops),
		CyclesPerOp: sim.MaxClock() * float64(cfgd.Threads) / float64(ops),
		GBs:         sim.AchievedGBs(),
		Ops:         ops,
	}
}
