package simtable

import (
	"dramhit/internal/memsim"
)

// simMsg is a delegated update traveling through a simulated section queue.
type simMsg struct {
	h uint64
	// visibleAt is the producer's clock when the message's section was
	// published; the consumer may not observe it earlier.
	visibleAt float64
}

// simQueue models one SPSC section queue: message slots live on real
// simulated cache lines (four 16-byte messages per line), the shared
// head/tail indices live on two further lines, and messages become visible
// only when their section is published — all the costs of §3.3 fall out of
// ordinary Access calls on these lines.
type simQueue struct {
	buf       []simMsg
	local     []simMsg // produced but unpublished (current section)
	baseLine  uint64
	headLine  uint64
	tailLine  uint64
	capacity  int
	section   int
	sent      uint64 // published messages
	consumed  uint64
	produced  uint64 // including unpublished
	ringLines uint64
}

const msgsPerLine = 4 // 16-byte messages

func newSimQueue(la *lineAlloc, capacity, section int) *simQueue {
	ringLines := uint64(capacity/msgsPerLine + 1)
	return &simQueue{
		baseLine:  la.alloc(ringLines),
		headLine:  la.alloc(1),
		tailLine:  la.alloc(1),
		capacity:  capacity,
		section:   section,
		ringLines: ringLines,
	}
}

// msgLine returns the simulated line of message index i.
func (q *simQueue) msgLine(i uint64) uint64 {
	return q.baseLine + (i/msgsPerLine)%q.ringLines
}

// send enqueues a message on producer thread t, returning false (and
// charging only the check) when the queue is full — the caller backs off.
func (q *simQueue) send(t *memsim.Thread, h uint64) bool {
	if int(q.produced-q.consumed) >= q.capacity {
		// Re-read the shared consumer index (possibly a coherence miss).
		t.Access(q.tailLine, memsim.Load)
		if int(q.produced-q.consumed) >= q.capacity {
			return false
		}
	}
	t.Compute(msgEnqueue)
	t.Access(q.msgLine(q.produced), memsim.Store)
	q.local = append(q.local, simMsg{h: h})
	q.produced++
	if len(q.local) >= q.section {
		q.publish(t)
	}
	return true
}

// publish makes the buffered section visible and updates the shared head
// index (a store other cores will read: this is the amortized cross-core
// transfer of the section design).
func (q *simQueue) publish(t *memsim.Thread) {
	if len(q.local) == 0 {
		return
	}
	t.Access(q.headLine, memsim.Store)
	for i := range q.local {
		q.local[i].visibleAt = t.Clock
		q.buf = append(q.buf, q.local[i])
	}
	q.local = q.local[:0]
	q.sent = q.produced
}

// recv dequeues one visible message on consumer thread t.
func (q *simQueue) recv(t *memsim.Thread) (simMsg, bool) {
	if q.consumed >= q.sent || len(q.buf) == 0 {
		return simMsg{}, false
	}
	m := q.buf[0]
	if m.visibleAt > t.Clock {
		// Published in the consumer's future; not yet observable.
		return simMsg{}, false
	}
	q.buf = q.buf[1:]
	t.Compute(msgDequeue)
	t.Access(q.msgLine(q.consumed), memsim.Load)
	if q.consumed%msgsPerLine == 0 {
		// Entering a fresh line: stream-prefetch the following line of the
		// ring so its transfer overlaps with consuming the current four
		// messages (§3.3: "We prefetch only the next line of the queue
		// data when we approach the end of the current cache-line").
		t.Prefetch(q.msgLine(q.consumed + msgsPerLine))
	}
	q.consumed++
	if q.consumed%uint64(q.section) == 0 {
		t.Access(q.tailLine, memsim.Store)
	}
	return m, true
}

// prefetchHead prefetches the line the consumer will read on its next
// visit to this queue (paper §3.3: "Consumer prefetches the next queue
// before trying to access it"); by the time the round-robin returns here the
// transfer has landed.
func (q *simQueue) prefetchHead(t *memsim.Thread) {
	t.Prefetch(q.msgLine(q.consumed))
}

// backlog reports published-but-unconsumed messages.
func (q *simQueue) backlog() int { return int(q.sent - q.consumed) }
