package governor

import "sync/atomic"

// pad keeps the accumulator words off the decision word's cache line so
// feeders adding samples never invalidate the line every handle polls.
type pad [64]byte

// Governor is the concurrent face of a Controller: handles feed epoch
// deltas with uncontended-in-practice atomic adds, and whichever feed tips
// the accumulated op count over the epoch size tries a CAS latch; the
// winner swaps the accumulators out, steps the controller once, and
// publishes the new decision word. Everyone else pays one atomic add per
// feed and one atomic load per poll — no locks anywhere near the op path.
type Governor struct {
	word atomic.Uint64 // Pack(decision, epoch): THE published configuration
	_    pad

	ops     atomic.Uint64
	ns      atomic.Uint64
	chits   atomic.Uint64
	skips   atomic.Uint64
	lines   atomic.Uint64
	_       pad
	latch   atomic.Uint32
	forced  bool
	cfg     Config
	ctl     *Controller
	epochs  atomic.Uint64
	adopted atomic.Uint64
	pinned  atomic.Uint32

	// OnDecision, when set before the first Feed, observes every published
	// decision change (trace-event wiring). Called under the step latch, so
	// implementations must be brief and must not re-enter the Governor.
	OnDecision func(d Decision, epoch uint64)
}

// New creates an auto-mode governor around a fresh controller.
func New(cfg Config) *Governor {
	cfg.fill()
	g := &Governor{cfg: cfg, ctl: NewController(cfg)}
	g.word.Store(Pack(g.ctl.Current(), 0))
	return g
}

// NewForced creates a governor permanently pinned to d: Feed is a no-op and
// the word never changes. This is how GovernorDirect (and tests) get the
// same handle-side plumbing without a controller.
func NewForced(d Decision) *Governor {
	g := &Governor{forced: true}
	g.word.Store(Pack(d, 0))
	g.pinned.Store(1)
	return g
}

// Word returns the packed current decision; handles cache it and re-decode
// only when it changes.
func (g *Governor) Word() uint64 { return g.word.Load() }

// Decision returns the decoded current decision.
func (g *Governor) Decision() Decision { return Unpack(g.word.Load()) }

// Epochs returns the number of controller steps taken.
func (g *Governor) Epochs() uint64 { return g.epochs.Load() }

// Adoptions returns how many trials beat their incumbent.
func (g *Governor) Adoptions() uint64 { return g.adopted.Load() }

// Pinned reports whether the controller has converged (always true for a
// forced governor).
func (g *Governor) Pinned() bool { return g.pinned.Load() != 0 }

// Feed accumulates one handle's epoch-fragment deltas and steps the
// controller when the epoch fills. Safe for concurrent use from any number
// of handles.
func (g *Governor) Feed(s Sample) {
	if g.forced || s.Ops == 0 {
		return
	}
	g.ns.Add(s.NS)
	g.chits.Add(s.CombineHits)
	g.skips.Add(s.TagSkips)
	g.lines.Add(s.Lines)
	if g.ops.Add(s.Ops) < g.cfg.EpochOps {
		return
	}
	if !g.latch.CompareAndSwap(0, 1) {
		return // someone else is stepping
	}
	// Re-check under the latch: the winner of a racing pair may have
	// already drained the accumulators.
	if g.ops.Load() >= g.cfg.EpochOps {
		sample := Sample{
			Ops:         g.ops.Swap(0),
			NS:          g.ns.Swap(0),
			CombineHits: g.chits.Swap(0),
			TagSkips:    g.skips.Swap(0),
			Lines:       g.lines.Swap(0),
		}
		prev := g.ctl.Current()
		d := g.ctl.Step(sample)
		epoch := g.ctl.Epochs()
		g.epochs.Store(epoch)
		g.adopted.Store(g.ctl.Adoptions())
		if g.ctl.Pinned() {
			g.pinned.Store(1)
		} else {
			g.pinned.Store(0)
		}
		g.word.Store(Pack(d, epoch))
		if d != prev && g.OnDecision != nil {
			g.OnDecision(d, epoch)
		}
	}
	g.latch.Store(0)
}

// Metrics returns the pull-source gauge map the observability layer scrapes:
// the required governor_mode / governor_window / governor_epochs names plus
// the rest of the decision and the controller's progress counters.
// governor_mode encodes 0=pipelined (governed off or auto in pipelined
// state), 1=direct.
func (g *Governor) Metrics() map[string]float64 {
	d := g.Decision()
	mode := 0.0
	if d.Direct {
		mode = 1
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return map[string]float64{
		"governor_mode":      mode,
		"governor_window":    float64(d.Window),
		"governor_epochs":    float64(g.Epochs()),
		"governor_combine":   b2f(d.Combine),
		"governor_filter":    b2f(d.Filter),
		"governor_adoptions": float64(g.Adoptions()),
		"governor_pinned":    b2f(g.Pinned()),
	}
}
