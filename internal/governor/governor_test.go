package governor

import (
	"sync"
	"testing"
)

// env models a workload as a pure map from configuration to epoch sample:
// the throughput surface the controller climbs, plus the sensor readings
// (combine hit-rate, tag skip-rate) that configuration would produce. A
// deterministic ±1% alternating jitter — well inside the 5% adoption
// margin — stands in for measurement noise.
type env struct {
	tput     func(d Decision) float64 // ops per ns, scaled arbitrarily
	combine  float64                  // combine hit-rate when combining is on
	tagskip  float64                  // tag skip-rate when the filter is on
	epochOps uint64
	step     int
}

func (e *env) sample(d Decision) Sample {
	e.step++
	t := e.tput(d)
	if e.step%2 == 0 {
		t *= 1.01
	} else {
		t *= 0.99
	}
	ops := e.epochOps
	s := Sample{Ops: ops, NS: uint64(float64(ops) / t)}
	if d.Combine && !d.Direct {
		s.CombineHits = uint64(float64(ops) * e.combine)
	}
	s.Lines = ops
	if d.Filter {
		s.TagSkips = uint64(float64(ops) * e.tagskip)
	}
	return s
}

// drive runs the controller against the environment for maxEpochs and
// returns the decision trace.
func drive(c *Controller, e *env, maxEpochs int) []Decision {
	trace := make([]Decision, 0, maxEpochs)
	for i := 0; i < maxEpochs; i++ {
		d := c.Step(e.sample(c.Current()))
		trace = append(trace, d)
	}
	return trace
}

// requireConverged asserts that the trace's tail is constant and equal to
// want within kMax epochs, and that the controller reports pinned.
func requireConverged(t *testing.T, c *Controller, trace []Decision, want Decision, kMax int) {
	t.Helper()
	conv := -1
	for i, d := range trace {
		if d == want {
			// Converged only if every later decision matches too.
			stable := true
			for _, e := range trace[i:] {
				if e != want {
					stable = false
					break
				}
			}
			if stable {
				conv = i
				break
			}
		}
	}
	if conv < 0 {
		t.Fatalf("never converged to %v; tail = %v", want, trace[len(trace)-5:])
	}
	if conv > kMax {
		t.Fatalf("converged at epoch %d, want <= %d", conv, kMax)
	}
	if !c.Pinned() {
		t.Fatalf("converged but not pinned after %d epochs", len(trace))
	}
}

// capAll is the full-capability table every test explores from.
var capAll = Config{Window: 16, Combining: true, Tags: true, Direct: true, EpochOps: 1024}

// TestConvergeDirectUniform models the folklore-gap workload: uniform keys,
// nothing combines, and the async machinery's fixed overhead exceeds the
// latency it hides — direct mode is strictly fastest. The controller must
// find it and pin.
func TestConvergeDirectUniform(t *testing.T) {
	e := &env{
		tput: func(d Decision) float64 {
			if d.Direct {
				return 10
			}
			// Pipelined pays ring overhead; combining scans buy nothing
			// without duplicates; deeper windows amortize slightly better.
			t := 6 + 0.05*float64(d.Window)
			if d.Combine {
				t -= 0.3
			}
			return t
		},
		combine:  0,
		tagskip:  0.3,
		epochOps: 1024,
	}
	c := NewController(capAll)
	trace := drive(c, e, 64)
	requireConverged(t, c, trace, Decision{Direct: true, Window: 16, Filter: true}, 32)
}

// TestConvergeCombineZipf models a high-skew many-worker stream: in-window
// combining collapses the hot keys' traffic, making the full pipeline the
// winner over both direct and combining-off.
func TestConvergeCombineZipf(t *testing.T) {
	e := &env{
		tput: func(d Decision) float64 {
			if d.Direct {
				return 7
			}
			t := 8 + 0.01*float64(d.Window)
			if d.Combine {
				t += 4 // hot keys fold: fewer probes, fewer atomics
			}
			return t
		},
		combine:  0.35,
		tagskip:  0.3,
		epochOps: 1024,
	}
	c := NewController(capAll)
	trace := drive(c, e, 64)
	requireConverged(t, c, trace, Decision{Window: 16, Combine: true, Filter: true}, 32)
}

// TestConvergeShallowWindow models a single low-occupancy worker where a
// shallow pipeline wins (less ring churn) but direct loses (the misses do
// overlap a little): the window hill-climb must walk 16 → 8 → ... → 2.
func TestConvergeShallowWindow(t *testing.T) {
	e := &env{
		tput: func(d Decision) float64 {
			if d.Direct {
				return 5
			}
			// Peak at window 2.
			switch {
			case d.Window <= 2:
				return 10
			case d.Window <= 4:
				return 9
			case d.Window <= 8:
				return 8
			default:
				return 7
			}
		},
		combine:  0.1,
		tagskip:  0.3,
		epochOps: 1024,
	}
	c := NewController(capAll)
	trace := drive(c, e, 96)
	requireConverged(t, c, trace, Decision{Window: 2, Combine: true, Filter: true}, 64)
}

// TestConvergeFilterOff models a cold, sparse table where the tag sidecar
// prunes nothing and its extra load costs 6%: the controller must shed it.
// The low skip-rate sensor should jump the filter trial to the front of the
// round, so convergence is fast.
func TestConvergeFilterOff(t *testing.T) {
	e := &env{
		tput: func(d Decision) float64 {
			t := 10.0
			if d.Filter {
				t *= 0.94
			}
			if d.Direct {
				t *= 0.8
			}
			if d.Combine {
				t *= 0.99
			}
			return t
		},
		combine:  0.2,
		tagskip:  0.001,
		epochOps: 1024,
	}
	c := NewController(capAll)
	trace := drive(c, e, 64)
	requireConverged(t, c, trace, Decision{Window: 16, Combine: true}, 32)
}

// TestNoOscillation pins the hysteresis guarantee: once converged, sub-margin
// throughput jitter must never unpin the controller or change the decision.
func TestNoOscillation(t *testing.T) {
	e := &env{
		tput: func(d Decision) float64 {
			if d.Direct {
				return 10
			}
			return 6
		},
		tagskip:  0.3,
		epochOps: 1024,
	}
	c := NewController(capAll)
	drive(c, e, 64)
	if !c.Pinned() {
		t.Fatal("controller did not pin")
	}
	want := c.Current()
	// 3% jitter: inside the margin band, inside the drift band.
	for i := 0; i < 256; i++ {
		s := e.sample(c.Current())
		s.NS = s.NS * uint64(100+3*(i%2)) / 100
		if d := c.Step(s); d != want {
			t.Fatalf("epoch %d: pinned decision changed %v -> %v", i, want, d)
		}
	}
	if !c.Pinned() {
		t.Fatal("sub-margin jitter unpinned the controller")
	}
}

// TestDriftReopens verifies the converse: a workload change (throughput
// collapse on the pinned configuration) re-opens exploration and the
// controller re-converges to the new optimum.
func TestDriftReopens(t *testing.T) {
	direct := 10.0
	e := &env{
		tput: func(d Decision) float64 {
			if d.Direct {
				return direct
			}
			t := 8.0
			if d.Combine {
				t += 1
			}
			return t
		},
		combine:  0.2,
		tagskip:  0.3,
		epochOps: 1024,
	}
	c := NewController(capAll)
	drive(c, e, 64)
	if got := c.Current(); !got.Direct {
		t.Fatalf("phase 1: expected direct, got %v", got)
	}
	// Phase change: duplicates appear, direct collapses.
	direct = 4
	trace := drive(c, e, 96)
	requireConverged(t, c, trace, Decision{Window: 16, Combine: true, Filter: true}, 96)
}

// TestCapabilityBounds: a table built without combining or tags must never
// see a decision enabling them.
func TestCapabilityBounds(t *testing.T) {
	e := &env{
		tput:     func(d Decision) float64 { return 10 },
		epochOps: 1024,
	}
	c := NewController(Config{Window: 8, Combining: false, Tags: false, Direct: true, EpochOps: 1024})
	for _, d := range drive(c, e, 64) {
		if d.Combine || d.Filter {
			t.Fatalf("decision %v enables a feature the table lacks", d)
		}
		if d.Window > 8 {
			t.Fatalf("decision %v exceeds constructed window", d)
		}
	}
}

func TestPackUnpack(t *testing.T) {
	cases := []Decision{
		{},
		{Direct: true},
		{Window: 1},
		{Window: 255, Combine: true, Filter: true},
		{Direct: true, Window: 16, Filter: true},
	}
	for _, d := range cases {
		got := Unpack(Pack(d, 77))
		want := d
		if want.Window < 1 {
			want.Window = 1 // Pack clamps
		}
		if got != want {
			t.Fatalf("roundtrip %v -> %v", d, got)
		}
	}
	if w1, w2 := Pack(Decision{Window: 4}, 1), Pack(Decision{Window: 4}, 2); w1 == w2 {
		t.Fatal("epochs must distinguish identical decisions")
	}
}

// TestGovernorFeedConcurrent exercises the CAS-latched epoch step from many
// feeders at once (run under -race in CI).
func TestGovernorFeedConcurrent(t *testing.T) {
	g := New(Config{Window: 16, Combining: true, Tags: true, Direct: true, EpochOps: 512})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4096; i++ {
				g.Feed(Sample{Ops: 64, NS: 6400, Lines: 70})
				_ = g.Word()
			}
		}()
	}
	wg.Wait()
	if g.Epochs() == 0 {
		t.Fatal("no epochs stepped")
	}
	m := g.Metrics()
	for _, k := range []string{"governor_mode", "governor_window", "governor_epochs"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("Metrics missing %s", k)
		}
	}
}

// TestForcedGovernor: a forced governor never moves.
func TestForcedGovernor(t *testing.T) {
	d := Decision{Direct: true, Window: 3, Filter: true}
	g := NewForced(d)
	w := g.Word()
	for i := 0; i < 1000; i++ {
		g.Feed(Sample{Ops: 1000, NS: 100})
	}
	if g.Word() != w {
		t.Fatal("forced governor changed its word")
	}
	if g.Decision() != d {
		t.Fatalf("forced decision %v != %v", g.Decision(), d)
	}
	if !g.Pinned() {
		t.Fatal("forced governor must report pinned")
	}
}
