// Package governor is the adaptive pipeline controller: a per-table
// epoch-based hill-climber that watches the hot path's own counters
// (throughput, combine hit-rate, tag skip-rate, lines per op, window
// occupancy) and tunes the live pipeline — prefetch-window depth (including
// the degraded direct mode, depth "0"), in-window combining, and the probe
// filter — publishing each decision through one atomic word that handles
// re-read at batch boundaries. No locks, no channels, no goroutines: the
// controller steps inside whichever worker happens to close an epoch, and
// every other worker pays one atomic load per poll.
//
// The design splits three ways so each layer is independently testable:
//
//   - Decision is the packed configuration word (mode, window, combining,
//     filter) plus the epoch sequence number that makes every publish
//     distinguishable from the last.
//   - Controller is a PURE state machine: Step(Sample) → Decision, no
//     atomics, no time, no randomness. The convergence property tests drive
//     it with synthetic sensor traces and assert it lands on the known-best
//     configuration and pins there (hysteresis).
//   - Governor wraps a Controller with the concurrent plumbing: padded
//     sample accumulators fed by handles, a CAS latch so exactly one feeder
//     steps the controller per epoch, and the atomic decision word.
package governor

import "fmt"

// Decision is one pipeline configuration chosen by the controller.
type Decision struct {
	// Direct selects the degraded synchronous mode: Submit bypasses the
	// prefetch ring and executes a folklore-style inline probe. Window,
	// Combine are ignored while Direct (there is no window to combine in);
	// Filter still applies — the inline probe keeps the tag gate.
	Direct bool
	// Window is the prefetch-window depth in pipelined mode, 1..255.
	Window int
	// Combine enables in-window request combining (only meaningful on a
	// table built with combining capability).
	Combine bool
	// Filter enables the tag-fingerprint probe filter (only meaningful on a
	// table built with the tag sidecar).
	Filter bool
}

// String renders the decision for logs and benchmark artifacts.
func (d Decision) String() string {
	if d.Direct {
		return fmt.Sprintf("direct(filter=%v)", d.Filter)
	}
	return fmt.Sprintf("window=%d,combine=%v,filter=%v", d.Window, d.Combine, d.Filter)
}

// Decision word layout. The epoch sequence lives in the high 32 bits so two
// publishes of the same configuration still differ, letting handles use a
// plain != test on their cached word.
const (
	bitDirect  = 1 << 0
	bitCombine = 1 << 1
	bitFilter  = 1 << 2
	windowShf  = 8
	epochShf   = 32
)

// Pack encodes d and the epoch sequence into one word.
func Pack(d Decision, epoch uint64) uint64 {
	w := uint64(epoch) << epochShf
	if d.Direct {
		w |= bitDirect
	}
	if d.Combine {
		w |= bitCombine
	}
	if d.Filter {
		w |= bitFilter
	}
	win := d.Window
	if win < 1 {
		win = 1
	}
	if win > 255 {
		win = 255
	}
	w |= uint64(win) << windowShf
	return w
}

// Unpack decodes a word produced by Pack.
func Unpack(w uint64) Decision {
	return Decision{
		Direct:  w&bitDirect != 0,
		Combine: w&bitCombine != 0,
		Filter:  w&bitFilter != 0,
		Window:  int(w >> windowShf & 0xff),
	}
}

// Sample is one epoch's aggregated sensor readings, in deltas.
type Sample struct {
	// Ops and NS measure throughput: completed operations and the wall-clock
	// nanoseconds the feeding handles spent completing them.
	Ops uint64
	NS  uint64
	// CombineHits counts requests absorbed by in-window combining (folded
	// upserts + piggybacked + forwarded gets).
	CombineHits uint64
	// TagSkips and Lines characterize the probe filter's effectiveness:
	// line visits rejected from the tag word alone over total line visits.
	TagSkips uint64
	Lines    uint64
}

// tput is the sample's throughput in ops per nanosecond (the unit cancels
// in every comparison the controller makes).
func (s Sample) tput() float64 {
	ns := s.NS
	if ns == 0 {
		ns = 1
	}
	return float64(s.Ops) / float64(ns)
}

// Config bounds the controller's search space and sets its cadence. The
// capability fields matter: the governor may only toggle features the table
// was CONSTRUCTED with (a table without the tag sidecar cannot grow one at
// runtime, a combining-off table allocated no ptags mirror), so the neighbor
// generator never proposes a configuration the handles cannot apply.
type Config struct {
	// Window is the construction-time prefetch window — the pipelined mode's
	// maximum depth.
	Window int
	// Combining reports whether the table was built with combining
	// capability.
	Combining bool
	// Tags reports whether the table was built with the tag sidecar.
	Tags bool
	// Direct, when false, removes the direct mode from the search space
	// (used by the partitioned read pipeline before its direct path existed;
	// the core table always allows it).
	Direct bool

	// EpochOps is the number of operations per measurement epoch; 0 selects
	// DefaultEpochOps.
	EpochOps uint64
	// Margin is the relative throughput improvement a trial must show over
	// the incumbent to be adopted (the hysteresis band); 0 selects
	// DefaultMargin.
	Margin float64
	// SettleRounds is how many full exploration rounds must pass without an
	// adoption before the controller pins; 0 selects DefaultSettleRounds.
	SettleRounds int
	// DriftFactor is the relative throughput drift on a pinned
	// configuration that re-opens exploration; 0 selects DefaultDriftFactor.
	DriftFactor float64
}

// Defaults. EpochOps trades reaction time against measurement noise: 16k
// ops is ~2ms at folklore-class speeds, long enough that per-epoch jitter
// stays well inside the adoption margin.
const (
	DefaultEpochOps     = 16384
	DefaultMargin       = 0.05
	DefaultSettleRounds = 2
	DefaultDriftFactor  = 0.5
)

func (c *Config) fill() {
	if c.Window < 1 {
		c.Window = 1
	}
	if c.EpochOps == 0 {
		c.EpochOps = DefaultEpochOps
	}
	if c.Margin == 0 {
		c.Margin = DefaultMargin
	}
	if c.SettleRounds == 0 {
		c.SettleRounds = DefaultSettleRounds
	}
	if c.DriftFactor == 0 {
		c.DriftFactor = DefaultDriftFactor
	}
}

// Controller is the pure hill-climbing state machine. Zero value is not
// usable; create with NewController. Not safe for concurrent use — Governor
// serializes Step calls through its epoch latch.
//
// The search runs in rounds. A round measures the incumbent ("base")
// configuration for one epoch, then each neighbor configuration for one
// epoch; after every configuration change one transition epoch is discarded
// (the pipeline refills, caches re-warm). A neighbor that beats the base by
// more than Margin becomes the new base immediately and a fresh round starts
// around it; a round that ends with no adoption increments the quiet count,
// and SettleRounds quiet rounds pin the controller: it stops proposing
// changes entirely (the decision word goes constant — the "never oscillate"
// guarantee) until the pinned configuration's own throughput drifts by more
// than DriftFactor, which re-opens exploration (workload change).
type Controller struct {
	cfg Config

	cur      Decision // decision currently in force
	base     Decision // incumbent the round explores around
	baseTput float64  // incumbent's measured throughput
	pinTput  float64  // throughput reference while pinned

	neighbors []Decision
	trial     int  // index into neighbors; -1 = measuring base
	skip      bool // next sample is a transition epoch: discard

	quiet  int // completed rounds without an adoption
	pinned bool

	epochs    uint64
	adoptions uint64
}

// NewController creates a controller whose initial decision is the table's
// constructed configuration.
func NewController(cfg Config) *Controller {
	cfg.fill()
	base := Decision{
		Window:  cfg.Window,
		Combine: cfg.Combining,
		Filter:  cfg.Tags,
	}
	return &Controller{
		cfg:   cfg,
		cur:   base,
		base:  base,
		trial: -1,
		// The very first sample measures a fresh table mid-warmup; discard
		// it like any other transition epoch.
		skip: true,
	}
}

// Current returns the decision currently in force.
func (c *Controller) Current() Decision { return c.cur }

// Pinned reports whether the controller has converged (hysteresis pin).
func (c *Controller) Pinned() bool { return c.pinned }

// Epochs returns the number of samples consumed (including discarded
// transition epochs).
func (c *Controller) Epochs() uint64 { return c.epochs }

// Adoptions returns how many times a trial configuration beat the incumbent.
func (c *Controller) Adoptions() uint64 { return c.adoptions }

// Step consumes one epoch's sample and returns the decision for the next
// epoch. The returned decision may equal the current one.
func (c *Controller) Step(s Sample) Decision {
	c.epochs++
	if c.skip {
		// Transition epoch: the sample straddles a configuration change.
		c.skip = false
		return c.cur
	}
	tput := s.tput()

	if c.pinned {
		if c.pinTput > 0 {
			drift := (tput - c.pinTput) / c.pinTput
			if drift < -c.cfg.DriftFactor || drift > c.cfg.DriftFactor {
				// Workload change: re-open exploration around the incumbent.
				c.pinned = false
				c.quiet = 0
				c.trial = -1
				c.baseTput = 0
				return c.cur
			}
			// Slow EWMA track so gradual drift doesn't accumulate into a
			// spurious re-exploration, while a step change still trips it.
			c.pinTput = 0.9*c.pinTput + 0.1*tput
		} else {
			c.pinTput = tput
		}
		return c.cur
	}

	if c.trial < 0 {
		// This sample measured the incumbent.
		c.baseTput = tput
		c.neighbors = c.genNeighbors(s)
		if len(c.neighbors) == 0 {
			c.pin(tput)
			return c.cur
		}
		c.trial = 0
		c.cur = c.neighbors[0]
		c.skip = true
		return c.cur
	}

	// This sample measured neighbors[c.trial].
	if tput > c.baseTput*(1+c.cfg.Margin) {
		// Adopt: the trial becomes the incumbent and a fresh round starts
		// around it. Its measurement doubles as the new base measurement.
		c.adoptions++
		c.quiet = 0
		c.base = c.cur
		c.baseTput = tput
		c.neighbors = c.genNeighbors(s)
		if len(c.neighbors) == 0 {
			c.pin(tput)
			return c.cur
		}
		c.trial = 0
		c.cur = c.neighbors[0]
		c.skip = true
		return c.cur
	}

	// Reject: move to the next neighbor, or close the round.
	c.trial++
	if c.trial < len(c.neighbors) {
		c.cur = c.neighbors[c.trial]
		c.skip = true
		return c.cur
	}
	c.cur = c.base
	c.skip = true
	c.trial = -1
	c.quiet++
	if c.quiet >= c.cfg.SettleRounds {
		c.pin(c.baseTput)
	}
	return c.cur
}

func (c *Controller) pin(tput float64) {
	c.pinned = true
	c.pinTput = tput
	c.cur = c.base
}

// genNeighbors builds the round's trial list around the incumbent,
// capability-bounded and sensor-ordered: the sample's combine hit-rate and
// tag skip-rate decide which toggles are worth trying first, so a converging
// run spends its epochs on the moves most likely to pay.
func (c *Controller) genNeighbors(s Sample) []Decision {
	b := c.base
	var out []Decision
	add := func(d Decision) {
		if d == b {
			return
		}
		for _, e := range out {
			if e == d {
				return
			}
		}
		out = append(out, d)
	}

	combineRate := 0.0
	if s.Ops > 0 {
		combineRate = float64(s.CombineHits) / float64(s.Ops)
	}
	skipRate := 0.0
	if s.Lines > 0 {
		skipRate = float64(s.TagSkips) / float64(s.Lines)
	}

	if b.Direct {
		// The only move out of direct is back into the pipeline, at full
		// depth (half-depths are reachable from there next round).
		d := b
		d.Direct = false
		d.Window = c.cfg.Window
		d.Combine = c.cfg.Combining
		add(d)
	} else {
		// Mode switch first when the pipeline shows no sign of paying:
		// nothing combines and the window runs shallow relative to its
		// configured depth, the async machinery is pure overhead.
		if c.cfg.Direct && combineRate < 0.05 {
			d := b
			d.Direct = true
			d.Combine = false // canonical: no window to combine in
			add(d)
		}
		if b.Window > 1 {
			d := b
			d.Window = b.Window / 2
			add(d)
		}
		if b.Window < c.cfg.Window {
			d := b
			d.Window = b.Window * 2
			if d.Window > c.cfg.Window {
				d.Window = c.cfg.Window
			}
			add(d)
		}
		if c.cfg.Combining {
			d := b
			d.Combine = !b.Combine
			add(d)
		}
		// Direct as a late trial even under combining traffic: measured, not
		// assumed (a hot-everything workload can still be latency-bound).
		if c.cfg.Direct {
			d := b
			d.Direct = true
			d.Combine = false // canonical: no window to combine in
			add(d)
		}
	}
	if c.cfg.Tags {
		d := b
		d.Filter = !b.Filter
		if b.Filter && skipRate < 0.02 {
			// The filter pruned almost nothing this epoch: it is pure sidecar
			// traffic, so trying it off jumps the queue.
			out = append([]Decision{d}, out...)
		} else {
			add(d)
		}
	}
	return out
}
