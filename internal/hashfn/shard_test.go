package hashfn

import (
	"math"
	"math/rand"
	"testing"
)

func TestShard64Bijective(t *testing.T) {
	// Like City64, the splitmix64 finalizer is a bijection; any collision
	// among random samples disproves it immediately.
	seen := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1<<16; i++ {
		k := rng.Uint64()
		h := Shard64(k)
		if prev, ok := seen[h]; ok && prev != k {
			t.Fatalf("collision: Shard64(%d) == Shard64(%d) == %d", k, prev, h)
		}
		seen[h] = k
	}
}

func TestShard64Uniform(t *testing.T) {
	// Shard indices over sequential keys must be uniform: the router's whole
	// point is that real key streams (ranks, counters, pointers) spread evenly.
	const shards = 8
	const samples = 1 << 16
	var counts [shards]int
	for k := uint64(0); k < samples; k++ {
		counts[Shard64(k)>>(64-3)]++
	}
	mean := float64(samples) / shards
	sigma := math.Sqrt(mean * (1 - 1.0/shards))
	for i, c := range counts {
		if math.Abs(float64(c)-mean) > 5*sigma {
			t.Errorf("shard %d has %d keys, mean %.0f sigma %.1f", i, c, mean, sigma)
		}
	}
}

// chiSquaredIndependence builds the (shard × home-bucket-group) contingency
// table for keys and returns the chi-squared statistic of the independence
// test. shardOf and bucketOf map a key to its router shard and its in-table
// home-bucket group respectively.
func chiSquaredIndependence(keys []uint64, shards, groups int,
	shardOf, bucketOf func(uint64) int) float64 {
	obs := make([][]float64, shards)
	for i := range obs {
		obs[i] = make([]float64, groups)
	}
	rowTot := make([]float64, shards)
	colTot := make([]float64, groups)
	n := float64(len(keys))
	for _, k := range keys {
		s, b := shardOf(k), bucketOf(k)
		obs[s][b]++
		rowTot[s]++
		colTot[b]++
	}
	chi2 := 0.0
	for s := 0; s < shards; s++ {
		for b := 0; b < groups; b++ {
			exp := rowTot[s] * colTot[b] / n
			if exp == 0 {
				continue
			}
			d := obs[s][b] - exp
			chi2 += d * d / exp
		}
	}
	return chi2
}

// chi2Critical approximates the upper-tail critical value of the chi-squared
// distribution with df degrees of freedom at normal quantile z, via the
// Wilson–Hilferty cube transform.
func chi2Critical(df int, z float64) float64 {
	d := float64(df)
	v := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * v * v * v
}

// TestShardSelectorIndependence is the satellite guarantee of the sharding
// PR: the router hash (Shard64, high bits) and the in-table probe hashes
// (City64 and CRC64, reduced by Fastrange) must be statistically independent,
// so horizontal sharding cannot create correlated per-shard bucket hotspots
// — a shard's keys land uniformly over its table's buckets. A chi-squared
// test over the (shard, home-bucket-group) joint distribution accepts the
// Shard64 pairings and, as a power check, rejects the pathological pairing
// that derives both coordinates from the same hash.
func TestShardSelectorIndependence(t *testing.T) {
	const (
		shards  = 8
		depth   = 3 // shards == 1<<depth
		groups  = 64
		samples = 1 << 16
		buckets = 1 << 20 // the in-table bucket space being grouped
	)
	// df = (shards-1)(groups-1); accept below the 1e-6 critical value — loose
	// enough to be seed-stable, tight enough that any structural correlation
	// (which shows up as chi2 ≫ 10·df) fails.
	crit := chi2Critical((shards-1)*(groups-1), 4.75)

	keySets := map[string][]uint64{}
	seq := make([]uint64, samples)
	for i := range seq {
		seq[i] = uint64(i)
	}
	keySets["sequential"] = seq
	rng := rand.New(rand.NewSource(4))
	rnd := make([]uint64, samples)
	for i := range rnd {
		rnd[i] = rng.Uint64()
	}
	keySets["random"] = rnd

	shardOf := func(k uint64) int { return int(Shard64(k) >> (64 - depth)) }
	group := func(h uint64) int {
		return int(Fastrange(h, buckets) * groups / buckets)
	}
	for name, keys := range keySets {
		for _, probe := range []struct {
			name string
			fn   func(uint64) uint64
		}{{"city64", City64}, {"crc64", CRC64}} {
			chi2 := chiSquaredIndependence(keys, shards, groups, shardOf,
				func(k uint64) int { return group(probe.fn(k)) })
			if chi2 > crit {
				t.Errorf("%s keys, shard=Shard64 × bucket=%s: chi2 = %.1f > critical %.1f — selector correlates with probe hash",
					name, probe.name, chi2, crit)
			}
		}
	}

	// Power check: deriving the shard from the probe hash's own high bits is
	// maximal correlation (the shard index is a function of the bucket), and
	// the statistic must explode. If this ever passes, the test has no teeth.
	badShard := func(k uint64) int { return int(City64(k) >> (64 - depth)) }
	chi2 := chiSquaredIndependence(keySets["random"], shards, groups, badShard,
		func(k uint64) int { return group(City64(k)) })
	if chi2 < 100*crit {
		t.Errorf("power check: same-hash pairing chi2 = %.1f, expected ≫ %.1f", chi2, 100*crit)
	}
}
