// Package hashfn provides the hash functions and index-reduction primitives
// used throughout the DRAMHiT hash tables: a hardware-style CRC32-C based
// 64-bit hash, a City-style 64-bit mixer for 8-byte keys, a byte-slice hash
// for variable-length keys (k-mers), and Lemire's fastrange reduction that
// maps a hash into [0, n) without a modulo and without requiring n to be a
// power of two.
package hashfn

import (
	"hash/crc32"
	"math/bits"
)

// castagnoli is the CRC32-C polynomial table. DRAMHiT uses the CRC32
// instruction (SSE4.2) as its default hash; hash/crc32 uses the same
// polynomial and is hardware accelerated on amd64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC64 hashes an 8-byte key with CRC32-C, widening the 32-bit digest to 64
// bits by mixing the key back in. The paper's implementation uses the raw
// crc32 result as the table index; we fold the high key bits in so that the
// full 64-bit hash has entropy in its upper half too (fastrange consumes the
// high bits first).
func CRC64(key uint64) uint64 {
	var buf [8]byte
	putUint64(buf[:], key)
	c := uint64(crc32.Checksum(buf[:], castagnoli))
	// Spread the 32-bit digest across 64 bits. The multiply by a
	// 64-bit odd constant is a bijection, so no entropy is lost.
	return (c ^ ((key >> 32) * 0x9e3779b97f4a7c15)) * 0xff51afd7ed558ccd
}

// City64 is a fast City/wyhash-style mixer for 8-byte keys. It is a bijection
// on uint64, which several tests exploit (distinct keys can never collide on
// the full 64-bit hash).
func City64(key uint64) uint64 {
	h := key
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Shard64 is the dedicated shard-selector hash of the horizontal router
// (internal/shardmap). It is the splitmix64 finalizer — a bijection on
// uint64 like City64, but built from a disjoint constant family
// (0xbf58476d1ce4e5b9 / 0x94d049bb133111eb, shifts 30/27/31 versus City64's
// murmur3 constants and 33/33/33), so the bits that pick a key's shard are
// statistically independent of the bits that pick its home bucket inside the
// shard. The router consumes the HIGH bits (shard = Shard64(k) >> (64-depth));
// TestShardSelectorIndependence pins the chi-squared independence of the
// (shard, home-bucket) joint distribution.
func Shard64(key uint64) uint64 {
	h := key
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Bytes hashes an arbitrary byte slice (used for k-mer keys longer than 8
// bytes). It is a simple multiply-rotate construction seeded per 8-byte lane,
// finished with the City64 mixer.
func Bytes(b []byte) uint64 {
	var h uint64 = 0x2545f4914f6cdd1d
	for len(b) >= 8 {
		h = mix(h, getUint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		h = mix(h, getUint64(tail[:])^uint64(len(b)))
	}
	return City64(h)
}

func mix(h, v uint64) uint64 {
	h ^= v * 0x9e3779b97f4a7c15
	return bits.RotateLeft64(h, 31) * 0xbf58476d1ce4e5b9
}

// xxh3-style striping primes for Bytes64 (the XXH64 prime family, disjoint
// from both the City64/murmur3 finalizer constants and the splitmix64
// constants of Shard64).
const (
	xxPrime1 = 0x9e3779b185ebca87
	xxPrime2 = 0xc2b2ae3d27d4eb4f
	xxPrime3 = 0x165667b19e3779f9
	xxPrime4 = 0x27d4eb2f165667c5
)

// Bytes64 is the byte-string hash of the bucket layout's index (the arena's
// variable-length keys). It is an xxh3-style construction — two independent
// accumulator lanes striped over 16-byte blocks with rotate-multiply folds,
// length-seeded so prefixes of each other cannot collide trivially —
// finished with the City64 avalanche core, so its low byte (the bucket
// fingerprint via table.TagOf) and high bits (the bucket index via
// Fastrange) get the same finalizer quality as the fixed-width hashes.
// Zero-allocation on every input length.
func Bytes64(b []byte) uint64 {
	n := uint64(len(b))
	acc0 := xxPrime1 + n*xxPrime2
	acc1 := uint64(xxPrime3)
	for len(b) >= 16 {
		acc0 = bits.RotateLeft64(acc0^(getUint64(b)*xxPrime2), 27) * xxPrime1
		acc1 = bits.RotateLeft64(acc1^(getUint64(b[8:])*xxPrime1), 29) * xxPrime2
		b = b[16:]
	}
	if len(b) >= 8 {
		acc0 = bits.RotateLeft64(acc0^(getUint64(b)*xxPrime2), 27) * xxPrime1
		b = b[8:]
	}
	var tail uint64
	for i := 0; i < len(b); i++ {
		tail |= uint64(b[i]) << (8 * i)
	}
	// The length seed in acc0 disambiguates inputs whose tails zero-extend
	// to the same word (e.g. "a" vs "a\x00").
	acc0 ^= tail * xxPrime4
	return City64(acc0 + bits.RotateLeft64(acc1, 23))
}

// Fastrange maps a 64-bit hash into [0, n) in an approximately uniform
// manner using the high bits of the 128-bit product hash*n. It replaces the
// modulo reduction and lets table sizes be arbitrary (not powers of two).
func Fastrange(hash, n uint64) uint64 {
	hi, _ := bits.Mul64(hash, n)
	return hi
}

// Fastrange32 is the 32-bit variant used where the index space is known to
// fit in 32 bits (partition selection).
func Fastrange32(hash uint32, n uint32) uint32 {
	return uint32((uint64(hash) * uint64(n)) >> 32)
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
