package hashfn

import (
	"encoding/binary"
	"math/rand"
	"strconv"
	"testing"
)

func TestBytes64Deterministic(t *testing.T) {
	// Same content must hash identically regardless of backing array, and
	// re-hashing must be stable.
	b := []byte("the quick brown fox jumps over the lazy dog")
	h1 := Bytes64(b)
	h2 := Bytes64(append([]byte(nil), b...))
	if h1 != h2 {
		t.Error("same content, different hash")
	}
	if Bytes64(b) != h1 {
		t.Error("re-hash differs")
	}
}

func TestBytes64LengthAndContent(t *testing.T) {
	// Prefixes, zero extensions, and nearby lengths must all hash apart:
	// acc0 is seeded with the length, so "abc" and "abc\x00" cannot collide
	// by construction, and the all-zero inputs of every length differ too.
	b := []byte("the quick brown fox jumps over the lazy dog")
	if Bytes64(b[:10]) == Bytes64(b) {
		t.Error("prefix hash equals full hash")
	}
	if Bytes64([]byte("abc")) == Bytes64([]byte("abc\x00")) {
		t.Error("zero-extended key collides with its prefix")
	}
	seen := make(map[uint64]int)
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33, 63, 64, 65} {
		if h := Bytes64(make([]byte, n)); func() bool {
			prev, ok := seen[h]
			seen[h] = n
			return ok && prev != n
		}() {
			t.Errorf("all-zero inputs of two lengths collide at length %d", n)
		}
	}
}

func TestBytes64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the 64 output bits.
	// 24 bytes spans both lanes of the two-lane stripe loop.
	base := make([]byte, 24)
	for i := range base {
		base[i] = byte(i * 7)
	}
	h0 := Bytes64(base)
	total := 0
	trials := len(base) * 8
	for i := 0; i < trials; i++ {
		mod := append([]byte(nil), base...)
		mod[i/8] ^= 1 << (i % 8)
		diff := h0 ^ Bytes64(mod)
		for diff != 0 {
			total++
			diff &= diff - 1
		}
	}
	avg := float64(total) / float64(trials)
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average %.1f bits flipped, want roughly 32", avg)
	}
}

// TestBytes64Uniform is the distribution guarantee for the bucket layout's
// home-bucket selector: Fastrange over Bytes64 must spread realistic key
// streams (little-endian counters, short ASCII strings) evenly over the
// bucket space. A chi-squared goodness-of-fit test over cell counts accepts
// each stream well below the 1e-6 critical value.
func TestBytes64Uniform(t *testing.T) {
	const (
		cells   = 256
		samples = 1 << 16
		buckets = 1 << 20
	)
	crit := chi2Critical(cells-1, 4.75)

	streams := map[string]func(i int) []byte{
		"le-counter": func(i int) []byte {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(i))
			return b[:]
		},
		"ascii": func(i int) []byte {
			return []byte("user:" + strconv.Itoa(i))
		},
	}
	rng := rand.New(rand.NewSource(7))
	streams["random-var"] = func(i int) []byte {
		b := make([]byte, 1+rng.Intn(40))
		rng.Read(b)
		return b
	}
	for name, gen := range streams {
		var counts [cells]float64
		seen := make(map[string]bool)
		n := 0
		for i := 0; n < samples; i++ {
			k := gen(i)
			if seen[string(k)] {
				continue // variable-length streams may repeat; count distinct keys
			}
			seen[string(k)] = true
			counts[Fastrange(Bytes64(k), buckets)*cells/buckets]++
			n++
		}
		exp := float64(samples) / cells
		chi2 := 0.0
		for _, c := range counts {
			d := c - exp
			chi2 += d * d / exp
		}
		if chi2 > crit {
			t.Errorf("%s stream: chi2 = %.1f > critical %.1f — Bytes64 buckets non-uniformly", name, chi2, crit)
		}
	}
}

// TestBytes64SelectorIndependence pins the partitioned bucket router's
// hygiene: dramhitp derives the partition from Shard64(Bytes64(k)) and the
// in-partition home bucket from Fastrange(Bytes64(k), nb) — the scramble
// exists precisely so the two coordinates, both consuming the hash's high
// bits, stay statistically independent. The power check shows the pairing
// the scramble avoids (partition straight from the raw hash's high bits)
// explodes the statistic.
func TestBytes64SelectorIndependence(t *testing.T) {
	const (
		parts   = 8
		depth   = 3 // parts == 1<<depth
		groups  = 64
		samples = 1 << 16
		buckets = 1 << 20
	)
	crit := chi2Critical((parts-1)*(groups-1), 4.75)

	keys := make([]uint64, samples)
	hv := make(map[uint64]uint64, samples)
	for i := range keys {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		keys[i] = uint64(i)
		hv[uint64(i)] = Bytes64(b[:])
	}
	group := func(h uint64) int { return int(Fastrange(h, buckets) * groups / buckets) }
	chi2 := chiSquaredIndependence(keys, parts, groups,
		func(k uint64) int { return int(Shard64(hv[k]) >> (64 - depth)) },
		func(k uint64) int { return group(hv[k]) })
	if chi2 > crit {
		t.Errorf("part=Shard64∘Bytes64 × bucket=Bytes64: chi2 = %.1f > critical %.1f — partition selector correlates with home bucket",
			chi2, crit)
	}

	// Power check: the unscrambled pairing is maximal correlation.
	bad := chiSquaredIndependence(keys, parts, groups,
		func(k uint64) int { return int(hv[k] >> (64 - depth)) },
		func(k uint64) int { return group(hv[k]) })
	if bad < 100*crit {
		t.Errorf("power check: raw-hash pairing chi2 = %.1f, expected ≫ %.1f", bad, 100*crit)
	}
}

func BenchmarkBytes64(b *testing.B) {
	for _, n := range []int{8, 16, 64, 256} {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i)
		}
		b.Run(map[int]string{8: "8", 16: "16", 64: "64", 256: "256"}[n], func(b *testing.B) {
			b.SetBytes(int64(n))
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += Bytes64(buf)
			}
			_ = sink
		})
	}
}
