package hashfn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFastrangeBounds(t *testing.T) {
	sizes := []uint64{1, 2, 3, 7, 100, 1 << 20, 1<<20 + 7, math.MaxUint64}
	hashes := []uint64{0, 1, math.MaxUint64, math.MaxUint64 / 2, 0xdeadbeef}
	for _, n := range sizes {
		for _, h := range hashes {
			got := Fastrange(h, n)
			if got >= n {
				t.Fatalf("Fastrange(%d, %d) = %d, out of range", h, n, got)
			}
		}
	}
}

func TestFastrangeExtremes(t *testing.T) {
	// Hash 0 must map to index 0 and MaxUint64 to the last index: fastrange
	// is monotone in the hash.
	const n = 1000
	if got := Fastrange(0, n); got != 0 {
		t.Errorf("Fastrange(0, %d) = %d, want 0", n, got)
	}
	if got := Fastrange(math.MaxUint64, n); got != n-1 {
		t.Errorf("Fastrange(max, %d) = %d, want %d", n, got, n-1)
	}
}

func TestFastrangeMonotone(t *testing.T) {
	f := func(a, b uint64) bool {
		if a > b {
			a, b = b, a
		}
		const n = 12345
		return Fastrange(a, n) <= Fastrange(b, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFastrangeUniformity(t *testing.T) {
	// Feed uniform random hashes, check bucket occupancy over a small range
	// stays within 5 sigma of the expectation.
	const n = 64
	const samples = 1 << 18
	rng := rand.New(rand.NewSource(1))
	var counts [n]int
	for i := 0; i < samples; i++ {
		counts[Fastrange(rng.Uint64(), n)]++
	}
	mean := float64(samples) / n
	sigma := math.Sqrt(mean * (1 - 1.0/n))
	for i, c := range counts {
		if math.Abs(float64(c)-mean) > 5*sigma {
			t.Errorf("bucket %d has %d entries, mean %.1f sigma %.1f", i, c, mean, sigma)
		}
	}
}

func TestFastrange32Bounds(t *testing.T) {
	f := func(h uint32) bool {
		const n = 48
		return Fastrange32(h, n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCity64Bijective(t *testing.T) {
	// City64 must be invertible: distinct inputs give distinct outputs. We
	// cannot check all 2^64, but any collision among random samples would
	// disprove bijectivity immediately.
	seen := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1<<16; i++ {
		k := rng.Uint64()
		h := City64(k)
		if prev, ok := seen[h]; ok && prev != k {
			t.Fatalf("collision: City64(%d) == City64(%d) == %d", k, prev, h)
		}
		seen[h] = k
	}
}

func TestCity64Deterministic(t *testing.T) {
	f := func(k uint64) bool { return City64(k) == City64(k) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC64Deterministic(t *testing.T) {
	f := func(k uint64) bool { return CRC64(k) == CRC64(k) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC64Spread(t *testing.T) {
	// Sequential keys must not land in sequential buckets: the hash must
	// break up monotone runs. Count how many adjacent keys land within
	// distance 4 of each other in a 2^20 bucket space.
	const n = 1 << 20
	close := 0
	prev := Fastrange(CRC64(0), n)
	for k := uint64(1); k < 4096; k++ {
		cur := Fastrange(CRC64(k), n)
		d := int64(cur) - int64(prev)
		if d < 0 {
			d = -d
		}
		if d <= 4 {
			close++
		}
		prev = cur
	}
	if close > 40 {
		t.Errorf("%d of 4095 adjacent keys hash within distance 4; hash is too sequential", close)
	}
}

func TestBytesMatchesLength(t *testing.T) {
	// Hashes of a prefix and the full slice must differ (with overwhelming
	// probability); also the same content must hash identically regardless
	// of backing array.
	b := []byte("the quick brown fox jumps over the lazy dog")
	h1 := Bytes(b)
	h2 := Bytes(append([]byte(nil), b...))
	if h1 != h2 {
		t.Error("same content, different hash")
	}
	if Bytes(b[:10]) == h1 {
		t.Error("prefix hash equals full hash")
	}
}

func TestBytesEmptyAndShort(t *testing.T) {
	lens := []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 31}
	seen := make(map[uint64]int)
	for _, n := range lens {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i + 1)
		}
		h := Bytes(b)
		if prev, ok := seen[h]; ok {
			t.Errorf("length %d and %d hash identically", n, prev)
		}
		seen[h] = n
	}
}

func TestBytesAvalanche(t *testing.T) {
	// Flipping one bit should flip roughly half the output bits on average.
	base := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	h0 := Bytes(base)
	total := 0
	const trials = 96
	for i := 0; i < trials; i++ {
		mod := append([]byte(nil), base...)
		mod[i/8] ^= 1 << (i % 8)
		diff := h0 ^ Bytes(mod)
		for diff != 0 {
			total++
			diff &= diff - 1
		}
	}
	avg := float64(total) / trials
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average %.1f bits flipped, want roughly 32", avg)
	}
}

func BenchmarkCRC64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += CRC64(uint64(i))
	}
	_ = sink
}

func BenchmarkCity64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += City64(uint64(i))
	}
	_ = sink
}

func BenchmarkBytes16(b *testing.B) {
	buf := make([]byte, 16)
	var sink uint64
	for i := 0; i < b.N; i++ {
		buf[0] = byte(i)
		sink += Bytes(buf)
	}
	_ = sink
}
