package memsim

// cache is a set-associative cache model with LRU replacement, tracking for
// each resident line the core that last wrote it (so a read by a different
// core can be charged a cache-to-cache transfer instead of a clean hit).
type cache struct {
	setMask  uint64
	ways     int
	tags     []uint64 // (set*ways + way); 0 = invalid, else line+1
	stamp    []uint64 // LRU timestamps
	writer   []int32  // last writing core, -1 = clean/unknown
	clock    uint64
	hits     uint64
	misses   uint64
	sampleSh uint // address shift for set selection
}

// newCache builds a cache of the given capacity in lines. Capacity is
// rounded down to a power-of-two number of sets; tiny capacities collapse to
// a single set.
func newCache(lines, ways int) *cache {
	if ways < 1 {
		ways = 1
	}
	sets := 1
	for sets*ways*2 <= lines {
		sets <<= 1
	}
	c := &cache{
		setMask: uint64(sets - 1),
		ways:    ways,
		tags:    make([]uint64, sets*ways),
		stamp:   make([]uint64, sets*ways),
		writer:  make([]int32, sets*ways),
	}
	for i := range c.writer {
		c.writer[i] = -1
	}
	return c
}

// capacityLines returns the number of lines the cache can hold.
func (c *cache) capacityLines() int { return int(c.setMask+1) * c.ways }

// setOf maps a line to its set index. A multiplicative hash avoids
// pathological striding from the hash tables' linear probe sequences
// aligning with set indexing.
func (c *cache) setOf(line uint64) uint64 {
	return (line * 0x9e3779b97f4a7c15 >> 17) & c.setMask
}

// lookup returns the way index of line if resident, else -1.
func (c *cache) lookup(line uint64) int {
	base := int(c.setOf(line)) * c.ways
	tag := line + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			return base + w
		}
	}
	return -1
}

// access touches the line, installing it on a miss (evicting LRU). It
// returns whether the access hit and, on a hit, the last writer core.
func (c *cache) access(line uint64, core int32, write bool) (hit bool, lastWriter int32) {
	c.clock++
	base := int(c.setOf(line)) * c.ways
	tag := line + 1
	lruIdx, lruStamp := base, c.stamp[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.hits++
			c.stamp[i] = c.clock
			lw := c.writer[i]
			if write {
				c.writer[i] = core
			}
			return true, lw
		}
		if c.stamp[i] < lruStamp {
			lruIdx, lruStamp = i, c.stamp[i]
		}
	}
	c.misses++
	c.tags[lruIdx] = tag
	c.stamp[lruIdx] = c.clock
	if write {
		c.writer[lruIdx] = core
	} else {
		c.writer[lruIdx] = -1
	}
	return false, -1
}

// contains reports residency without disturbing LRU state.
func (c *cache) contains(line uint64) bool { return c.lookup(line) >= 0 }

// invalidate drops the line if resident (RFO by another core).
func (c *cache) invalidate(line uint64) {
	if i := c.lookup(line); i >= 0 {
		c.tags[i] = 0
		c.stamp[i] = 0
		c.writer[i] = -1
	}
}

// hitRate returns hits/(hits+misses); 0 when unused.
func (c *cache) hitRate() float64 {
	tot := c.hits + c.misses
	if tot == 0 {
		return 0
	}
	return float64(c.hits) / float64(tot)
}
