package memsim

import (
	"testing"
)

func TestWarmLLCMakesLinesCacheHits(t *testing.T) {
	m := IntelSkylake()
	s := NewSim(m, 2)
	s.WarmLLC(0, 1000)
	th := s.Threads[0]
	cost := th.Access(500, Load)
	// A warmed line must be far cheaper than DRAM (L3 or a cache transfer).
	if cost >= float64(m.DRAMLat)*(1-m.OOOHideDRAM) {
		t.Errorf("warmed-line access cost %0.0f, expected a cache hit", cost)
	}
}

func TestLLCLinesTotal(t *testing.T) {
	m := IntelSkylake()
	s := NewSim(m, 1)
	want := 2 * (m.L3Bytes / 64)
	got := s.LLCLinesTotal()
	// Cache construction rounds sets to powers of two; allow that slack.
	if got < want/2 || got > want {
		t.Errorf("LLC lines = %d, want within (%d, %d]", got, want/2, want)
	}
}

func TestPolluteEvictsPrefetches(t *testing.T) {
	m := IntelSkylake()
	s := NewSim(m, 1)
	th := s.Threads[0]
	line := uint64(8 + th.Socket)
	th.Prefetch(line)
	th.Compute(float64(m.DRAMLat) * 2) // prefetch has landed
	// Pollute past the worst-case survival bound (4x L1 capacity — the
	// eviction point is set-conflict dependent): the prefetched line is
	// gone.
	for i := 0; i < th.l1.capacityLines()*4+1; i++ {
		th.Pollute(uint64(1<<30/64) + uint64(i)*7)
	}
	cost := th.Access(line, Load)
	if cost < float64(m.L2Lat) {
		t.Errorf("post-pollution access cost %0.0f; prefetch should have been evicted", cost)
	}
}

func TestPolluteConsumesBandwidth(t *testing.T) {
	m := IntelSkylake()
	s := NewSim(m, 1)
	th := s.Threads[0]
	before := s.MemTransactions()
	for i := 0; i < 100; i++ {
		th.Pollute(uint64(i) * 999)
	}
	if got := s.MemTransactions() - before; got != 100 {
		t.Errorf("%d transactions from 100 pollutions", got)
	}
}

func TestStreamSequentialFasterThanRandom(t *testing.T) {
	run := func(seq bool) float64 {
		m := IntelSkylake()
		m.Sockets = 1
		s := NewSim(m, 16)
		counts := make([]int, 16)
		s.Run(func(th *Thread) bool {
			if counts[th.ID] >= 2000 {
				return false
			}
			counts[th.ID]++
			line := uint64(th.ID)<<32 + uint64(counts[th.ID])*977
			th.Stream(line, false, seq)
			return true
		})
		return s.AchievedGBs()
	}
	if seqGBs, randGBs := run(true), run(false); seqGBs <= randGBs {
		t.Errorf("sequential %0.1f GB/s <= random %0.1f", seqGBs, randGBs)
	}
}

func TestAccessLockedSerializesHarderThanRMW(t *testing.T) {
	run := func(spin bool) float64 {
		m := IntelSkylake()
		s := NewSim(m, 16)
		counts := make([]int, 16)
		s.Run(func(th *Thread) bool {
			if counts[th.ID] >= 100 {
				return false
			}
			counts[th.ID]++
			if spin {
				th.AccessLocked(7, 20)
				th.Access(7, Store)
			} else {
				th.Access(7, RMW)
			}
			return true
		})
		return s.MaxClock()
	}
	rmw, lock := run(false), run(true)
	if lock < rmw*1.5 {
		t.Errorf("spinlock run %0.0f not clearly slower than atomic run %0.0f", lock, rmw)
	}
}

func TestDirectoryDegradesWithQueueDepth(t *testing.T) {
	d := newDirectory(100)
	// Back-to-back handoffs from alternating cores at the same instant
	// build a queue; later grants must be spaced MORE than the base
	// service (degradation), and the spacing must grow.
	var prev float64
	var gaps []float64
	for i := 0; i < 8; i++ {
		start, _ := d.exclusive(1, int32(i), 0, 0)
		if i > 0 {
			gaps = append(gaps, start-prev)
		}
		prev = start
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1] {
			t.Fatalf("handoff spacing should be non-decreasing under queueing: %v", gaps)
		}
	}
	if gaps[len(gaps)-1] <= 100 {
		t.Errorf("deep-queue handoff %0.0f not degraded beyond base service", gaps[len(gaps)-1])
	}
}

func TestFluidChannelBackfillsIdleGaps(t *testing.T) {
	m := IntelSkylake()
	g := newChannelGroup(m)
	// A burst at t=0…
	for i := 0; i < 60; i++ {
		g.transact(0, txRandRead)
	}
	// …then a long idle gap: an arrival at t=10000 must start immediately.
	if start := g.transact(10000, txRandRead); start != 10000 {
		t.Errorf("post-idle transaction starts at %0.0f, want 10000", start)
	}
	// An early (out-of-order) arrival must not be dragged forward when the
	// backlog is empty.
	g2 := newChannelGroup(m)
	g2.transact(5000, txRandRead)
	if start := g2.transact(100, txRandRead); start >= 5000 {
		t.Errorf("early arrival dragged to %0.0f", start)
	}
}
