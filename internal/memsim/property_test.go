package memsim

import (
	"testing"
	"testing/quick"
)

func TestCacheRepeatAccessAlwaysHits(t *testing.T) {
	// Property: accessing the same line twice back to back always hits the
	// second time, regardless of history.
	prop := func(lines []uint16, probe uint16) bool {
		c := newCache(64, 8)
		for _, l := range lines {
			c.access(uint64(l), 0, false)
		}
		c.access(uint64(probe), 0, false)
		hit, _ := c.access(uint64(probe), 0, false)
		return hit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCacheInvalidateRemoves(t *testing.T) {
	prop := func(line uint32) bool {
		c := newCache(128, 8)
		c.access(uint64(line), 0, true)
		if !c.contains(uint64(line)) {
			return false
		}
		c.invalidate(uint64(line))
		return !c.contains(uint64(line))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelStartsMonotoneUnderMonotoneArrivals(t *testing.T) {
	// Property: with non-decreasing arrival times, transaction start times
	// are non-decreasing and never precede the arrival.
	prop := func(deltas []uint8) bool {
		g := newChannelGroup(IntelSkylake())
		now := 0.0
		prevStart := 0.0
		for _, d := range deltas {
			now += float64(d)
			start := g.transact(now, txRandRead)
			if start < now || start < prevStart {
				return false
			}
			prevStart = start
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDirectoryGrantNeverPrecedesRequest(t *testing.T) {
	prop := func(cores []uint8, gaps []uint8) bool {
		d := newDirectory(100)
		now := 0.0
		for i, c := range cores {
			if i < len(gaps) {
				now += float64(gaps[i])
			}
			start, _ := d.exclusive(7, int32(c%8), now, 0)
			if start < now {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProbeFabricMonotone(t *testing.T) {
	prop := func(gaps []uint8) bool {
		p := newProbeFabric(0.25)
		now := 0.0
		prev := 0.0
		for _, g := range gaps {
			now += float64(g)
			start := p.admit(now)
			if start < now || start < prev {
				return false
			}
			prev = start
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestThreadClockNeverDecreases(t *testing.T) {
	m := IntelSkylake()
	s := NewSim(m, 4)
	prop := func(ops []uint16) bool {
		for i, o := range ops {
			th := s.Threads[i%4]
			before := th.Clock
			line := uint64(o)
			switch o % 4 {
			case 0:
				th.Access(line, Load)
			case 1:
				th.Access(line, Store)
			case 2:
				th.Access(line, RMW)
			case 3:
				th.Prefetch(line)
			}
			if th.Clock < before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
