package memsim

import (
	"math"
	"testing"
)

func TestChannelMath(t *testing.T) {
	m := IntelSkylake()
	// 2666 MT/s * 8 B / 64 B = 333.25 M lines/s per channel.
	if got := m.LinesPerSecondPerChannel(); math.Abs(got-333.25e6) > 1e5 {
		t.Errorf("lines/s/channel = %g", got)
	}
	// Six channels: 127.97 GB/s theoretical (the paper rounds to 127.8).
	if got := m.TheoreticalGBs(); got < 127 || got > 129 {
		t.Errorf("theoretical GB/s = %g", got)
	}
	// 2.6 GHz / 333.25 M = 7.8 cycles per line per channel.
	if got := m.CyclesPerLine(); math.Abs(got-7.8) > 0.05 {
		t.Errorf("cycles/line = %g", got)
	}
}

func TestStreamBandwidthMatchesTable1(t *testing.T) {
	// 32 threads on one socket streaming random reads must achieve
	// ~85.4 GB/s (Table 1), i.e. theoretical * RandReadEff.
	m := IntelSkylake()
	m.Sockets = 1 // one-socket experiment, as in the paper's MLC run
	s := NewSim(m, 32)
	const opsPer = 20000
	counts := make([]int, len(s.Threads))
	s.Run(func(th *Thread) bool {
		if counts[th.ID] >= opsPer {
			return false
		}
		counts[th.ID]++
		// Spread lines so no cache reuse.
		line := uint64(th.ID)<<32 + uint64(counts[th.ID])*97
		th.Stream(line, false, false)
		return true
	})
	want := m.TheoreticalGBs() * m.RandReadEff
	got := s.AchievedGBs()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("random-read bandwidth %0.1f GB/s, want ~%0.1f", got, want)
	}
}

func TestStreamMixedBandwidth(t *testing.T) {
	// A 1:1 random read/write mix lands near Table 1's 76.3 GB/s.
	m := IntelSkylake()
	m.Sockets = 1
	s := NewSim(m, 32)
	const opsPer = 20000
	counts := make([]int, len(s.Threads))
	s.Run(func(th *Thread) bool {
		if counts[th.ID] >= opsPer {
			return false
		}
		counts[th.ID]++
		line := uint64(th.ID)<<32 + uint64(counts[th.ID])*131
		th.Stream(line, counts[th.ID]%2 == 0, false)
		return true
	})
	got := s.AchievedGBs()
	if got < 70 || got > 83 {
		t.Errorf("1:1 random r/w bandwidth %0.1f GB/s, want ~76", got)
	}
}

func TestUnprefetchedLoadPaysDRAMLatency(t *testing.T) {
	m := IntelSkylake()
	s := NewSim(m, 1)
	th := s.Threads[0]
	// A cold load of a local line costs at least DRAMLat.
	line := uint64(th.Socket) // homed locally (homeSocket = line & 1)
	cost := th.Access(line, Load)
	if want := float64(m.DRAMLat) * (1 - m.OOOHideDRAM); cost < want-1 {
		t.Errorf("cold load cost %0.0f < effective DRAM latency %0.0f", cost, want)
	}
	// A second access is an L1 hit.
	if cost := th.Access(line, Load); cost != float64(m.L1Lat) {
		t.Errorf("warm load cost %0.0f, want %d", cost, m.L1Lat)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	m := IntelSkylake()
	s := NewSim(m, 1)
	th := s.Threads[0]
	line := uint64(2 + th.Socket)
	th.Prefetch(line)
	// Simulate the window: do unrelated compute longer than the miss.
	th.Compute(float64(m.DRAMLat) * 2)
	cost := th.Access(line, Load)
	if cost != float64(m.L1Lat) {
		t.Errorf("prefetched access cost %0.0f, want L1 %d", cost, m.L1Lat)
	}
}

func TestPrefetchTooLateStillWaits(t *testing.T) {
	m := IntelSkylake()
	s := NewSim(m, 1)
	th := s.Threads[0]
	line := uint64(4 + th.Socket)
	th.Prefetch(line)
	// Immediately consume: must wait out most of the miss.
	cost := th.Access(line, Load)
	if cost < float64(m.DRAMLat)/2 {
		t.Errorf("immediate post-prefetch access cost %0.0f; prefetch cannot time-travel", cost)
	}
	if cost > float64(m.RemoteDRAMLat)*1.5 {
		t.Errorf("cost %0.0f exceeds a plain miss", cost)
	}
}

func TestContendedRMWSerializes(t *testing.T) {
	// 32 threads hammering one line with RMW: average cost must grow to
	// roughly threads × DirectoryService, reproducing Figure 2's blow-up.
	m := IntelSkylake()
	s := NewSim(m, 32)
	const opsPer = 200
	counts := make([]int, len(s.Threads))
	s.Run(func(th *Thread) bool {
		if counts[th.ID] >= opsPer {
			return false
		}
		counts[th.ID]++
		th.Access(42, RMW)
		return true
	})
	totalOps := uint64(32 * opsPer)
	avg := s.MaxClock() / float64(opsPer) // per-thread observed latency per op
	_ = totalOps
	// All 6400 RMWs serialize at >= DirectoryService apart: the run takes
	// at least 32*opsPer*service cycles, so each thread's per-op latency
	// is >= 32 * service.
	min := float64(32*m.DirectoryService) * 0.8
	if avg < min {
		t.Errorf("contended RMW per-op latency %0.0f, want >= %0.0f", avg, min)
	}
}

func TestUncontendedRMWIsCheap(t *testing.T) {
	// A single thread RMW-ing its own line repeatedly pays L1 + lock
	// overhead only.
	m := IntelSkylake()
	s := NewSim(m, 1)
	th := s.Threads[0]
	th.Access(7, RMW) // cold
	cost := th.Access(7, RMW)
	want := float64(m.L1Lat + m.LockOverhead)
	if cost != want {
		t.Errorf("warm owned RMW cost %0.0f, want %0.0f", cost, want)
	}
}

func TestDistinctLinesNoContention(t *testing.T) {
	// Threads writing distinct lines never serialize.
	m := IntelSkylake()
	s := NewSim(m, 8)
	const opsPer = 100
	counts := make([]int, len(s.Threads))
	s.Run(func(th *Thread) bool {
		if counts[th.ID] >= opsPer {
			return false
		}
		counts[th.ID]++
		th.Access(uint64(1000+th.ID), RMW)
		return true
	})
	// After the first miss, every op is warm: clock ≈ miss + (ops-1)*(L1+lock).
	warm := float64(m.L1Lat + m.LockOverhead)
	for _, th := range s.Threads {
		upper := float64(m.RemoteDRAMLat+m.DirectoryService) + float64(opsPer)*warm*1.2
		if th.Clock > upper {
			t.Errorf("thread %d clock %0.0f; distinct lines should not serialize (upper %0.0f)", th.ID, th.Clock, upper)
		}
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	c := newCache(64, 8)
	if c.capacityLines() != 64 {
		t.Fatalf("capacity = %d", c.capacityLines())
	}
	// Fill far past capacity, then re-touch the early lines: mostly misses.
	for l := uint64(0); l < 1024; l++ {
		c.access(l, 0, false)
	}
	hits := 0
	for l := uint64(0); l < 64; l++ {
		if h, _ := c.access(l, 0, false); h {
			hits++
		}
	}
	if hits > 16 {
		t.Errorf("%d/64 early lines survived 1024-line sweep of a 64-line cache", hits)
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	c := newCache(16, 2) // 8 sets x 2 ways
	// Two lines in the same set stay resident; a third evicts the LRU.
	var a, b uint64
	var set uint64
	// find three lines mapping to one set
	lines := []uint64{}
	for l := uint64(0); len(lines) < 3; l++ {
		if len(lines) == 0 {
			set = c.setOf(l)
			lines = append(lines, l)
		} else if c.setOf(l) == set {
			lines = append(lines, l)
		}
	}
	a, b = lines[0], lines[1]
	c.access(a, 0, false)
	c.access(b, 0, false)
	c.access(a, 0, false)        // a is MRU
	c.access(lines[2], 0, false) // evicts b (LRU)
	if !c.contains(a) {
		t.Error("MRU line evicted")
	}
	if c.contains(b) {
		t.Error("LRU line survived")
	}
}

func TestWriterTrackingChargesTransfer(t *testing.T) {
	// Thread A writes a line; thread B on the same socket reading it pays
	// a local cache transfer, not a clean L3 hit.
	m := IntelSkylake()
	s := NewSim(m, 4) // threads 0,2 socket 0; 1,3 socket 1
	a, b := s.Threads[0], s.Threads[2]
	if a.Socket != b.Socket {
		t.Fatal("test assumes same-socket threads")
	}
	line := uint64(100 + a.Socket&1) // any line
	a.Access(line, Store)
	cost := b.Access(line, Load)
	want := float64(m.LocalCacheLat) * (1 - m.OOOHideOnDie)
	if cost != want {
		t.Errorf("read of peer-dirtied line cost %0.0f, want %0.0f", cost, want)
	}
}

func TestRemoteSocketTransfer(t *testing.T) {
	m := IntelSkylake()
	s := NewSim(m, 2) // thread 0 socket 0, thread 1 socket 1
	a, b := s.Threads[0], s.Threads[1]
	if a.Socket == b.Socket {
		t.Fatal("want threads on different sockets")
	}
	line := uint64(200)
	a.Access(line, Store)
	cost := b.Access(line, Load)
	want := float64(m.RemoteCacheLat) * (1 - m.OOOHideOnDie)
	if cost != want {
		t.Errorf("cross-socket transfer cost %0.0f, want %0.0f", cost, want)
	}
}

func TestSkylakeDirectoryWritebackExtraTxn(t *testing.T) {
	// A remote-socket DRAM read must consume an extra write transaction on
	// the home node (clearing the directory bit on eviction).
	m := IntelSkylake()
	s := NewSim(m, 2)
	th := s.Threads[0]
	home := 1 - th.Socket // pick a line homed on the other socket
	line := uint64(1000)
	for s.homeSocket(line) != home {
		line++
	}
	before := s.mem[home].writes
	th.Access(line, Load)
	if got := s.mem[home].writes - before; got != 1 {
		t.Errorf("remote read generated %d write transactions, want 1", got)
	}
	// AMD has no directory writeback.
	m2 := AMDMilan()
	s2 := NewSim(m2, 2)
	th2 := s2.Threads[0]
	home2 := 1 - th2.Socket
	line2 := uint64(1000)
	for s2.homeSocket(line2) != home2 {
		line2++
	}
	before2 := s2.mem[home2].writes
	th2.Access(line2, Load)
	if got := s2.mem[home2].writes - before2; got != 0 {
		t.Errorf("AMD remote read generated %d write transactions, want 0", got)
	}
}

func TestTopologyAssignment(t *testing.T) {
	m := IntelSkylake()
	s := NewSim(m, 64)
	socketCount := [2]int{}
	coreSeen := map[int]int{}
	for _, th := range s.Threads {
		socketCount[th.Socket]++
		coreSeen[th.Core]++
	}
	if socketCount[0] != 32 || socketCount[1] != 32 {
		t.Errorf("socket split %v, want 32/32", socketCount)
	}
	// With 64 threads on 32 cores, every core hosts exactly 2.
	for core, n := range coreSeen {
		if n != 2 {
			t.Errorf("core %d hosts %d threads", core, n)
		}
	}
	// AMD CCX mapping: 4 cores per CCX.
	ma := AMDMilan()
	sa := NewSim(ma, 128)
	for _, th := range sa.Threads {
		wantCCX := th.Socket*8 + (th.Core-th.Socket*32)/4
		if th.CCX != wantCCX {
			t.Errorf("thread %d: CCX %d, want %d", th.ID, th.CCX, wantCCX)
		}
	}
}

func TestNewSimBounds(t *testing.T) {
	m := IntelSkylake()
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSim(%d) did not panic", n)
				}
			}()
			NewSim(m, n)
		}()
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		m := IntelSkylake()
		s := NewSim(m, 16)
		counts := make([]int, len(s.Threads))
		s.Run(func(th *Thread) bool {
			if counts[th.ID] >= 500 {
				return false
			}
			counts[th.ID]++
			line := uint64(th.ID*counts[th.ID]) % 4096
			if counts[th.ID]%3 == 0 {
				th.Access(line, RMW)
			} else {
				th.Access(line, Load)
			}
			return true
		})
		return s.MaxClock()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("two identical runs diverged: %0.2f vs %0.2f", a, b)
	}
}

func TestProbeFabricThrottles(t *testing.T) {
	p := newProbeFabric(0.5) // one probe per 2 cycles
	start0 := p.admit(0)
	start1 := p.admit(0)
	start2 := p.admit(0)
	if start0 != 0 || start1 != 2 || start2 != 4 {
		t.Errorf("probe starts %v %v %v, want 0 2 4", start0, start1, start2)
	}
	unlimited := newProbeFabric(0)
	if unlimited.admit(5) != 5 {
		t.Error("unlimited fabric delayed a probe")
	}
}

func TestMopsComputation(t *testing.T) {
	m := IntelSkylake() // 2.6 GHz
	s := NewSim(m, 1)
	s.Threads[0].Clock = 2.6e9 // one second
	if got := s.Mops(1_000_000); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Mops = %g, want 1", got)
	}
}
