package memsim

import "testing"

// numaMachine returns a Skylake-like two-socket machine with the
// interconnect modeled (the defaults keep InterconnectGBs at 0 so calibrated
// figures stay put; NUMA experiments opt in).
func numaMachine() *Machine {
	m := IntelSkylake()
	m.InterconnectGBs = 41.6
	return m
}

// randLine is a cheap deterministic line scrambler for access streams.
func randLine(i uint64) uint64 {
	i *= 0x9e3779b97f4a7c15
	i ^= i >> 32
	return i
}

// runNUMALoad drives the threads through ops random reads each over their
// region using a 16-deep software-prefetch window — the pipelined access
// pattern the hash table actually issues, which is what lets a handful of
// threads push the memory channels to saturation (demand loads alone are
// latency-bound and never expose a bandwidth asymmetry). Returns the finish
// clock. Each thread draws lines from regionOf(thread), so placement
// experiments can give threads socket-local or remote working sets.
func runNUMALoad(s *Sim, ops int, regionOf func(t *Thread) (base, lines uint64)) float64 {
	const window = 16
	done := make(map[int]int, len(s.Threads))
	s.Run(func(t *Thread) bool {
		i := done[t.ID]
		if i == ops {
			return false
		}
		done[t.ID] = i + 1
		base, lines := regionOf(t)
		lineAt := func(op int) uint64 {
			return base + randLine(uint64(op)<<8|uint64(t.ID))%lines
		}
		t.Prefetch(lineAt(i + window))
		t.Access(lineAt(i), Load)
		t.Compute(20)
		return true
	})
	return s.MaxClock()
}

// TestInterconnectDefaultsUnmodeled locks the back-compat contract: the
// stock machines ship with InterconnectGBs = 0, so every calibrated figure
// (Table 1, the throughput curves) is computed without link queues.
func TestInterconnectDefaultsUnmodeled(t *testing.T) {
	for _, m := range []*Machine{IntelSkylake(), AMDMilan()} {
		if m.InterconnectGBs != 0 {
			t.Fatalf("%s: InterconnectGBs = %v, want 0 (opt-in)", m.Name, m.InterconnectGBs)
		}
		if got := m.InterconnectLinesPerCycle(); got != 0 {
			t.Fatalf("%s: InterconnectLinesPerCycle = %v, want 0", m.Name, got)
		}
		if s := NewSim(m, 4); s.upi != nil {
			t.Fatalf("%s: sim built link queues with InterconnectGBs = 0", m.Name)
		}
	}
	m := numaMachine()
	lpc := m.InterconnectLinesPerCycle()
	if lpc <= 0 {
		t.Fatalf("InterconnectLinesPerCycle = %v with cap set", lpc)
	}
	// 41.6 GB/s at 2.6 GHz: 41.6/(64*2.6) = 0.25 lines/cycle.
	if lpc < 0.24 || lpc > 0.26 {
		t.Fatalf("InterconnectLinesPerCycle = %v, want ~0.25", lpc)
	}
	if s := NewSim(m, 4); len(s.upi) != m.Sockets*m.Sockets {
		t.Fatalf("built %d link queues, want %d", len(s.upi), m.Sockets*m.Sockets)
	}
}

// TestNewSimPinnedTopology checks explicit placement: threads land on the
// requested sockets, fill physical cores before hyperthread siblings, and
// the default round-robin delegate reproduces NewSim's layout exactly.
func TestNewSimPinnedTopology(t *testing.T) {
	m := IntelSkylake()

	// All threads on socket 1.
	s := NewSimPinned(m, 8, func(i int) int { return 1 })
	cores := map[int]bool{}
	for _, th := range s.Threads {
		if th.Socket != 1 {
			t.Fatalf("thread %d on socket %d, pinned to 1", th.ID, th.Socket)
		}
		if cores[th.Core] {
			t.Fatalf("core %d assigned twice with only 8 threads on 16 cores", th.Core)
		}
		cores[th.Core] = true
	}

	// Round-robin delegate matches NewSim thread for thread.
	a, b := NewSim(m, 11), NewSimPinned(m, 11, func(i int) int { return i % m.Sockets })
	for i := range a.Threads {
		ta, tb := a.Threads[i], b.Threads[i]
		if ta.Socket != tb.Socket || ta.Core != tb.Core || ta.CCX != tb.CCX {
			t.Fatalf("thread %d: NewSim (socket %d core %d ccx %d) != pinned (socket %d core %d ccx %d)",
				i, ta.Socket, ta.Core, ta.CCX, tb.Socket, tb.Core, tb.CCX)
		}
	}

	// Oversubscribing one socket past core count engages hyperthread
	// halving even though the global count fits the machine's cores.
	ht := NewSimPinned(m, 20, func(i int) int { return 0 })
	full := NewSim(m, 20)
	if got, want := ht.Threads[0].l1.capacityLines(), full.Threads[0].l1.capacityLines()/2; got != want {
		t.Fatalf("oversubscribed socket kept full L1: %d lines, want %d", got, want)
	}

	// Out-of-range pins and over-capacity sockets panic.
	for name, f := range map[string]func(){
		"socket-range": func() { NewSimPinned(m, 2, func(i int) int { return 5 }) },
		"overcommit":   func() { NewSimPinned(m, 33, func(i int) int { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestPlacementPolicy checks SetPlacement overrides the per-line
// interleave and nil restores it.
func TestPlacementPolicy(t *testing.T) {
	s := NewSim(IntelSkylake(), 2)
	if s.homeSocket(0) != 0 || s.homeSocket(1) != 1 {
		t.Fatalf("default interleave broken: home(0)=%d home(1)=%d", s.homeSocket(0), s.homeSocket(1))
	}
	s.SetPlacement(func(line uint64) int { return 1 })
	for _, l := range []uint64{0, 1, 2, 1 << 30} {
		if got := s.homeSocket(l); got != 1 {
			t.Fatalf("homeSocket(%d) = %d under node1 policy", l, got)
		}
	}
	s.SetPlacement(nil)
	if s.homeSocket(0) != 0 || s.homeSocket(1) != 1 {
		t.Fatal("nil placement did not restore interleave")
	}
}

// TestShardLocalBeatsInterleaveBeatsNode0 is the experiment the sharded
// table's NUMA claim rests on: 16 threads stream random loads over a
// DRAM-resident region under three placements —
//
//   - local: the region is split into per-socket halves and each thread
//     reads only its own socket's half (shard-per-node placement);
//   - interleave: lines alternate sockets and every thread reads the whole
//     region (the default);
//   - node0: the whole region is homed on socket 0 (a single first-touch
//     allocation), so socket 1's threads read remote and socket 0's six
//     channels carry all the traffic.
//
// Local must beat interleave, interleave must beat node0, and node0 must
// trail local by at least 1.8× (six channels serving everyone plus the
// directory write-back doubling remote read traffic plus the link cap).
func TestShardLocalBeatsInterleaveBeatsNode0(t *testing.T) {
	m := numaMachine()
	const (
		threads = 16
		ops     = 4000
		lines   = 1 << 22 // 256 MB: far beyond the LLCs
		base    = uint64(1) << 40
	)
	build := func(place func(line uint64) int) *Sim {
		s := NewSim(m, threads)
		if place != nil {
			s.SetPlacement(place)
		}
		return s
	}
	wholeRegion := func(t *Thread) (uint64, uint64) { return base, lines }

	// local: socket s owns [base + s*lines/2, base + (s+1)*lines/2).
	half := uint64(lines / 2)
	localSim := build(func(line uint64) int {
		if line >= base && line < base+half {
			return 0
		}
		if line >= base+half && line < base+lines {
			return 1
		}
		return int(line) & 1
	})
	localClock := runNUMALoad(localSim, ops, func(th *Thread) (uint64, uint64) {
		return base + uint64(th.Socket)*half, half
	})

	interClock := runNUMALoad(build(nil), ops, wholeRegion)

	node0Sim := build(func(line uint64) int {
		if line >= base && line < base+lines {
			return 0
		}
		return int(line) & 1
	})
	node0Clock := runNUMALoad(node0Sim, ops, wholeRegion)

	t.Logf("clocks: local=%.0f interleave=%.0f node0=%.0f (node0/local = %.2fx)",
		localClock, interClock, node0Clock, node0Clock/localClock)
	if !(localClock < interClock) {
		t.Fatalf("shard-local (%.0f) did not beat interleave (%.0f)", localClock, interClock)
	}
	if !(interClock < node0Clock) {
		t.Fatalf("interleave (%.0f) did not beat node0 (%.0f)", interClock, node0Clock)
	}
	if node0Clock < 1.8*localClock {
		t.Fatalf("node0 (%.0f) only %.2fx slower than local (%.0f), want ≥1.8x",
			node0Clock, node0Clock/localClock, localClock)
	}
}

// TestInterconnectCapThrottles checks the link queue actually backpressures:
// an all-remote read stream against a tight cap finishes later than the same
// stream with the interconnect unmodeled, and an otherwise identical
// socket-local stream is untouched by the cap.
func TestInterconnectCapThrottles(t *testing.T) {
	const (
		threads = 8
		ops     = 3000
		lines   = 1 << 22
		base    = uint64(1) << 40
	)
	node0 := func(line uint64) int {
		if line >= base && line < base+lines {
			return 0
		}
		return int(line) & 1
	}
	// Pin every thread to socket 1 so all fills cross the link.
	run := func(m *Machine, place func(uint64) int) float64 {
		s := NewSimPinned(m, threads, func(i int) int { return 1 })
		s.SetPlacement(place)
		return runNUMALoad(s, ops, func(th *Thread) (uint64, uint64) { return base, lines })
	}

	uncapped := IntelSkylake()
	capped := IntelSkylake()
	capped.InterconnectGBs = 5 // deliberately starved link

	free := run(uncapped, node0)
	tight := run(capped, node0)
	if tight <= free*1.05 {
		t.Fatalf("5 GB/s link cap did not throttle remote reads: capped %.0f vs unmodeled %.0f", tight, free)
	}

	// Same cap, but the region homed on the reading socket: no link
	// crossings, so the cap must not change the clock at all.
	node1 := func(line uint64) int {
		if line >= base && line < base+lines {
			return 1
		}
		return int(line) & 1
	}
	localFree := run(uncapped, node1)
	localCapped := run(capped, node1)
	if localFree != localCapped {
		t.Fatalf("link cap perturbed socket-local traffic: %.0f vs %.0f", localCapped, localFree)
	}
}
