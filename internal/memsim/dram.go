package memsim

// channelGroup models one socket's memory channels as a fluid multi-server
// queue: each transaction adds its service time to an aggregate backlog that
// drains at the combined rate of all channels, and the transaction starts
// once the backlog ahead of it has been served. The fluid formulation (as
// opposed to per-channel next-free scalars) backfills idle gaps correctly
// even though the discrete-event driver executes whole multi-access
// operations at a time, reserving channel work slightly out of global time
// order.
type channelGroup struct {
	backlog float64 // outstanding single-channel service cycles
	lastT   float64 // clock of the latest arrival observed
	nch     float64
	svc     [4]float64
	reads   uint64
	writes  uint64
	busy    float64 // accumulated service cycles (bandwidth accounting)
}

// access-pattern indices into svc.
const (
	txSeqRead = iota
	txSeqWrite
	txRandRead
	txRandWrite
)

func newChannelGroup(m *Machine) *channelGroup {
	base := m.CyclesPerLine()
	return &channelGroup{
		nch: float64(m.ChannelsPerSocket),
		svc: [4]float64{
			txSeqRead:   base / m.SeqReadEff,
			txSeqWrite:  base / m.SeqWriteEff,
			txRandRead:  base / m.RandReadEff,
			txRandWrite: base / m.RandWriteEff,
		},
	}
}

// transact schedules one line transfer at or after now, returning the cycle
// at which the transfer starts (queueing delay = start - now).
func (g *channelGroup) transact(now float64, kind int) (start float64) {
	return g.transactScaled(now, kind, 1)
}

// transactScaled is transact with a service-time multiplier (software
// prefetch fills lose row-buffer locality; see
// Machine.PrefetchServicePenalty).
func (g *channelGroup) transactScaled(now float64, kind int, scale float64) (start float64) {
	if now > g.lastT {
		// Idle/elapsed time drains the backlog at the aggregate channel
		// rate.
		g.backlog -= (now - g.lastT) * g.nch
		if g.backlog < 0 {
			g.backlog = 0
		}
		g.lastT = now
	}
	// The driver may present arrivals slightly out of time order (it
	// executes one whole operation per step). The wait is anchored at the
	// arrival's own clock — an early arrival sees the current backlog
	// estimate but is never dragged forward to the latest clock observed.
	start = now + g.backlog/g.nch
	work := g.svc[kind] * scale
	g.backlog += work
	g.busy += work
	if kind == txSeqWrite || kind == txRandWrite {
		g.writes++
	} else {
		g.reads++
	}
	return start
}

// transactions returns the total line transfers served.
func (g *channelGroup) transactions() uint64 { return g.reads + g.writes }

// probeFabric bounds coherence probes per cycle (the AMD cross-CCX probe
// filter), using the same fluid backlog formulation as channelGroup.
type probeFabric struct {
	backlog float64
	lastT   float64
	rate    float64 // probes per cycle; 0 = unlimited
}

func newProbeFabric(rate float64) *probeFabric {
	return &probeFabric{rate: rate}
}

// admit schedules a probe at or after now and returns its start time.
func (p *probeFabric) admit(now float64) float64 {
	if p.rate == 0 {
		return now
	}
	if now > p.lastT {
		p.backlog -= (now - p.lastT) * p.rate
		if p.backlog < 0 {
			p.backlog = 0
		}
		p.lastT = now
	}
	start := now + p.backlog/p.rate
	p.backlog += 1
	return start
}

// directory serializes contended exclusive (write/atomic) requests per cache
// line, reproducing the linearization the paper's Figure 2 measures: the
// latency of acquiring a line exclusive grows linearly with the number of
// cores queueing for it. A core that already holds the line exclusive pays
// nothing for repeated writes; only ownership handoffs between cores are
// spaced by the directory service interval.
type directory struct {
	states  map[uint64]*dirLine
	service float64
	ops     uint64
}

type dirLine struct {
	nextFree float64
	holder   int32
}

// dirDegradeFactor scales how much each queued waiter inflates the next
// handoff's service time. Calibrated against Figure 2: at skew 1.1 on the
// 32 MB dataset, 64 threads doing atomic increments average ~16K cycles per
// op; a constant-service FIFO cannot reach that (the hottest line carries
// only a few percent of the traffic), so the directory must degrade under
// queueing — each waiter's request forces directory state re-processing.
const dirDegradeFactor = 0.15

func newDirectory(serviceCycles int) *directory {
	return &directory{
		states:  make(map[uint64]*dirLine),
		service: float64(serviceCycles),
	}
}

// exclusive schedules an exclusive acquisition of line by core at or after
// now. It returns the grant time and the previous holder (-1 when the line
// had no exclusive owner). Re-acquisition by the current holder is free.
//
// Handoffs between cores are spaced by the directory service interval, and
// the interval GROWS with the depth of the queue already waiting for the
// line: the latency of acquiring a contended line in the exclusive state
// grows linearly with the number of requesting cores (Boyd-Wickizer et al.,
// the paper's [4]), because the directory linearizes and re-processes the
// whole waiting set on every handoff. occupy extends the exclusivity past
// the grant (a held spinlock's critical section plus the interference of
// spinning waiters).
func (d *directory) exclusive(line uint64, core int32, now, occupy float64) (start float64, prevHolder int32) {
	d.ops++
	if d.ops&0xffff == 0 {
		d.gc(now)
	}
	st, ok := d.states[line]
	if !ok {
		d.states[line] = &dirLine{nextFree: now + occupy, holder: core}
		return now, -1
	}
	if st.holder == core {
		// Already owned: repeated writes by the holder are free.
		return now, core
	}
	prevHolder = st.holder
	start = now
	depth := 0.0
	if st.nextFree > start {
		start = st.nextFree
		depth = (st.nextFree - now) / d.service
		if depth > 64 {
			depth = 64
		}
	}
	// Spin-waiters interfere with the critical section itself the same way
	// they delay the handoff, so the occupancy degrades with depth too.
	st.nextFree = start + (d.service+occupy)*(1+depth*dirDegradeFactor)
	st.holder = core
	return start, prevHolder
}

// gc drops entries idle for more than ~1M cycles.
func (d *directory) gc(now float64) {
	if len(d.states) < 1<<14 {
		return
	}
	for l, st := range d.states {
		if st.nextFree < now-1e6 {
			delete(d.states, l)
		}
	}
}
