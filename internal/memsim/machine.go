// Package memsim is a cycle-level timing model of the memory subsystem of a
// modern two-socket server — caches, MESI-style coherence with directory
// linearization, NUMA, finite memory-channel bandwidth, and software
// prefetch — built to reproduce the DRAMHiT paper's evaluation on hardware
// Go cannot reach (no prefetch intrinsics, no thread pinning, and this
// reproduction environment has a single CPU).
//
// The simulator executes real algorithm traces: the hash-table ports in
// internal/simtable run their actual probe sequences against a simulated
// machine, and every memory access is charged latency and bandwidth
// according to where the line is (L1/L2/L3/remote cache/DRAM), whether it
// was prefetched early enough, and how contended it is. Simulated threads
// carry local cycle clocks and are interleaved in timestamp order, so shared
// resources (memory channels, the coherence directory for hot lines) create
// the same queueing behaviour the paper measures.
//
// Parameters come from the paper's §2 and Table 1 and the literature it
// cites (David et al. SOSP'13, Velten et al. ICPE'22, McCalpin's Skylake
// directory analysis): see IntelSkylake and AMDMilan.
package memsim

// Machine describes the simulated server.
type Machine struct {
	// Name identifies the configuration in reports.
	Name string
	// Sockets, CoresPerSocket, ThreadsPerCore give the topology; the
	// maximum simulated thread count is the product.
	Sockets, CoresPerSocket, ThreadsPerCore int
	// FreqGHz converts cycles to seconds.
	FreqGHz float64

	// Private cache capacities in bytes. When both hardware threads of a
	// core are active each simulated thread gets half (the paper's Figure
	// 6c notes 32 KB L1 "shared between two hyperthreads").
	L1Bytes, L2Bytes int
	// L3Bytes is the last-level cache per socket (Intel) or per core
	// complex (AMD, with CCXPerSocket > 1).
	L3Bytes      int
	CCXPerSocket int // 1 = monolithic socket LLC

	// Latencies in cycles (load-to-use).
	L1Lat, L2Lat, L3Lat int
	// LocalCacheLat is a transfer from another core's private cache or a
	// modified LLC line on the same die (paper: 54–132 cycles).
	LocalCacheLat int
	// RemoteCacheLat is a transfer from the other socket's caches
	// (184–320 cycles).
	RemoteCacheLat int
	// DRAMLat / RemoteDRAMLat are loads served from local / remote-socket
	// memory (the paper's Figure 2 observes ~394 cycles from memory under
	// its measurement methodology; raw loaded latency is lower).
	DRAMLat, RemoteDRAMLat int

	// Memory channels.
	ChannelsPerSocket int
	// MTPerSec is the DDR transfer rate in mega-transfers/s (each transfer
	// moves 8 bytes; a 64-byte line takes 8 transfers, so one channel at
	// 2666 MT/s moves 333.25 M lines/s).
	MTPerSec int
	// Efficiency factors (measured bandwidth / theoretical) by access
	// pattern, from Table 1's MLC measurements. Service time per line on a
	// channel is scaled by 1/efficiency.
	SeqReadEff, SeqWriteEff, RandReadEff, RandWriteEff float64

	// DirectoryWriteback models Skylake's memory directory: a read of
	// local memory issued by the OTHER socket acquires the line exclusive
	// and must later write back to clear the directory bit, consuming an
	// extra write transaction (paper §2, McCalpin).
	DirectoryWriteback bool

	// Contention model.
	// LockOverhead is the cost of locking a line already resident in the
	// local L1 (11–30 cycles per David et al.).
	LockOverhead int
	// DirectoryService is the serialization interval of the LLC cache
	// directory for contended exclusive requests: back-to-back exclusive
	// acquisitions of the same line by different cores are spaced by at
	// least this many cycles (ownership handoff ≈ a cache-to-cache
	// transfer).
	DirectoryService int

	// CoherenceProbeRate bounds cross-CCX/cross-die coherence probes per
	// cycle per socket (AMD's probe filter fabric); 0 = unmodeled. Every
	// DRAM access by a thread consumes one probe. This reproduces the AMD
	// >32-thread throughput collapse of Figure 10b.
	CoherenceProbeRate float64

	// OOOHideOnDie is the fraction of ON-DIE load latency (LLC hits and
	// cache-to-cache transfers) hidden by the core's out-of-order window —
	// the paper's §1 observation that CPUs partially hide miss cost
	// through speculative execution across loop iterations.
	OOOHideOnDie float64
	// OOOHideDRAM is the (much smaller) fraction of a DRAM stall the
	// reorder buffer can overlap with adjacent independent operations.
	OOOHideDRAM float64
	// PrefetchServicePenalty scales DRAM channel service time for
	// software-prefetch fills: bursts of independent random prefetches
	// lose row-buffer locality and suffer bank conflicts relative to
	// demand-paced access streams. Calibrated so DRAMHiT's saturated
	// throughput lands near the paper's measurements rather than the
	// idealized channel arithmetic. 0 means 1.0 (no penalty).
	PrefetchServicePenalty float64
	// ProbeSaturationThreads is the busy-thread count beyond which the
	// probe fabric's per-probe interval grows linearly (the coherence
	// bottleneck behind Figure 10b's >32-thread collapse); 0 disables.
	ProbeSaturationThreads int

	// InterconnectGBs caps the cross-socket interconnect (UPI / xGMI)
	// bandwidth per direction in GB/s: every line that crosses sockets — a
	// remote DRAM fill, a remote cache-to-cache transfer, a write-back to
	// the other socket's memory — queues on the corresponding directional
	// link (the same fluid formulation as the memory channels). 0 leaves the
	// interconnect unmodeled, which keeps every previously calibrated
	// figure bit-identical; the NUMA placement experiments
	// (internal/simtable, placement "local"/"node0") opt in. Latency is not
	// added here — RemoteDRAMLat/RemoteCacheLat already include the hop —
	// only bandwidth backpressure. A two-link Skylake UPI moves ~41.6 GB/s
	// per direction; Milan's four xGMI-2 links ~64 GB/s.
	InterconnectGBs float64
}

// InterconnectLinesPerCycle converts the per-direction interconnect cap to
// cache lines per CPU cycle (the rate of one directional link's fluid
// queue); 0 when unmodeled.
func (m *Machine) InterconnectLinesPerCycle() float64 {
	if m.InterconnectGBs == 0 {
		return 0
	}
	return m.InterconnectGBs / (64 * m.FreqGHz)
}

// MaxThreads returns the hardware thread count.
func (m *Machine) MaxThreads() int {
	return m.Sockets * m.CoresPerSocket * m.ThreadsPerCore
}

// LinesPerSecondPerChannel returns the theoretical cache-line rate of one
// channel.
func (m *Machine) LinesPerSecondPerChannel() float64 {
	return float64(m.MTPerSec) * 1e6 * 8 / 64
}

// CyclesPerLine is the theoretical per-channel service time of one line in
// CPU cycles.
func (m *Machine) CyclesPerLine() float64 {
	return m.FreqGHz * 1e9 / m.LinesPerSecondPerChannel()
}

// TheoreticalGBs is the theoretical bandwidth of one socket in GB/s.
func (m *Machine) TheoreticalGBs() float64 {
	return float64(m.ChannelsPerSocket) * m.LinesPerSecondPerChannel() * 64 / 1e9
}

// IntelSkylake describes the paper's c6420 testbed: two Xeon Gold 6142
// 16-core Skylake sockets at 2.6 GHz, six DDR4-2666 channels per socket,
// 22 MB LLC per socket, with the Skylake memory directory enabled.
func IntelSkylake() *Machine {
	return &Machine{
		Name:              "intel-skylake-6142",
		Sockets:           2,
		CoresPerSocket:    16,
		ThreadsPerCore:    2,
		FreqGHz:           2.6,
		L1Bytes:           32 << 10,
		L2Bytes:           1 << 20,
		L3Bytes:           22 << 20,
		CCXPerSocket:      1,
		L1Lat:             4,
		L2Lat:             14,
		L3Lat:             50,
		LocalCacheLat:     90,
		RemoteCacheLat:    250,
		DRAMLat:           300,
		RemoteDRAMLat:     400,
		ChannelsPerSocket: 6,
		MTPerSec:          2666,
		// Table 1: 111.0/127.8, and write efficiencies fitted so the
		// measured 1:1 and 2:1 mixes fall out of the read/write service
		// times (see TestTable1Reproduction).
		SeqReadEff:             0.868,
		SeqWriteEff:            0.656,
		RandReadEff:            0.668,
		RandWriteEff:           0.540,
		DirectoryWriteback:     true,
		LockOverhead:           20,
		DirectoryService:       250,
		OOOHideOnDie:           0.50,
		OOOHideDRAM:            0.15,
		PrefetchServicePenalty: 1.4,
	}
}

// AMDMilan describes the r6525 testbed: two EPYC 7543 32-core Milan sockets
// at 2.8 GHz, eight DDR4-3200 channels per socket, 32 MB L3 per 4-core
// complex (8 CCXs per socket), no Skylake-style directory writeback, and a
// bounded cross-CCX probe rate that saturates past ~32 busy threads
// (Figure 10b's anomaly).
func AMDMilan() *Machine {
	return &Machine{
		Name:              "amd-milan-7543",
		Sockets:           2,
		CoresPerSocket:    32,
		ThreadsPerCore:    2,
		FreqGHz:           2.8,
		L1Bytes:           32 << 10,
		L2Bytes:           512 << 10,
		L3Bytes:           32 << 20,
		CCXPerSocket:      8,
		L1Lat:             4,
		L2Lat:             13,
		L3Lat:             46,
		LocalCacheLat:     110,
		RemoteCacheLat:    280,
		DRAMLat:           330,
		RemoteDRAMLat:     440,
		ChannelsPerSocket: 8,
		MTPerSec:          3200,
		// Paper §4.5: 167 GB/s random reads of 204.8 theoretical; 144 GB/s
		// for 1:1 random read/write.
		SeqReadEff:             0.88,
		SeqWriteEff:            0.70,
		RandReadEff:            0.815,
		RandWriteEff:           0.62,
		DirectoryWriteback:     false,
		LockOverhead:           22,
		DirectoryService:       280,
		CoherenceProbeRate:     0.40,
		ProbeSaturationThreads: 32,
		OOOHideOnDie:           0.50,
		OOOHideDRAM:            0.15,
		PrefetchServicePenalty: 1.4,
	}
}
