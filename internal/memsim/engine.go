package memsim

import (
	"container/heap"
	"fmt"
)

// Sim is one simulated machine execution: a set of threads with private
// cycle clocks sharing caches, memory channels, the coherence directory and
// (on AMD) the probe fabric. Sims are single-goroutine and deterministic.
type Sim struct {
	M       *Machine
	Threads []*Thread

	mem    []*channelGroup // per socket
	l3     []*cache        // per socket (Intel) or per CCX (AMD)
	l3per  int             // threads sharing one l3 slice... derived
	dir    *directory
	probes []*probeFabric // per socket

	// upi holds one directional interconnect link queue per ordered socket
	// pair (index from*sockets+to); nil when Machine.InterconnectGBs is 0.
	upi []*probeFabric

	// place overrides the line→home-socket mapping (NUMA placement policy);
	// nil interleaves by line.
	place func(line uint64) int

	// homeMask interleaves line homes across sockets.
	sockets int
}

// Thread is one simulated hardware thread.
type Thread struct {
	sim    *Sim
	ID     int
	Core   int // global core id (threads sharing a core share L1/L2 capacity)
	Socket int
	CCX    int // global CCX id for AMD LLC slicing
	Clock  float64

	l1, l2 *cache

	// prefetch table: line -> ready time. Bounded ring keyed by insertion
	// order so stale prefetches expire.
	pfLine  []uint64
	pfReady []float64
	pfEpoch []uint64
	pfPos   int

	// pollution counts competing cache-line installs since thread start; a
	// prefetched line is considered evicted (cold again) once enough
	// pollution has passed through the L1 between prefetch and use
	// (Figure 6c's experiment).
	pollution uint64

	// ProbeExempt marks a thread whose table accesses touch lines no other
	// core ever caches (a DRAMHiT-P partition owner): the probe filter
	// resolves them without cross-CCX broadcasts, so they bypass the probe
	// fabric. This is the mechanism behind DRAMHiT-P's continued scaling
	// on AMD past the Figure 10b collapse.
	ProbeExempt bool

	// holdCycles extends the next exclusive acquisition (AccessLocked).
	holdCycles float64

	// Stats.
	Ops       uint64
	DRAMLoads uint64
	CacheHits uint64
}

// NewSim builds a simulation with n threads spread round-robin across
// sockets (the paper uniformly distributes execution threads between
// sockets). When n exceeds the physical core count, hyperthread pairs share
// a core and each thread's private cache capacity halves.
func NewSim(m *Machine, n int) *Sim {
	return NewSimPinned(m, n, func(i int) int { return i % m.Sockets })
}

// NewSimPinned builds a simulation with explicit thread placement: socketOf
// maps each thread index to the socket it is pinned to (numactl-style
// affinity). Threads fill a socket's physical cores in assignment order and
// wrap onto hyperthread siblings; when any socket's assignment exceeds its
// physical core count, hyperthread pairs are active and every thread's
// private cache capacity halves. NewSim is NewSimPinned with round-robin
// placement, and produces identical topology.
func NewSimPinned(m *Machine, n int, socketOf func(i int) int) *Sim {
	if n < 1 || n > m.MaxThreads() {
		panic(fmt.Sprintf("memsim: thread count %d out of range 1..%d", n, m.MaxThreads()))
	}
	perSocket := make([]int, m.Sockets)
	for i := 0; i < n; i++ {
		sk := socketOf(i)
		if sk < 0 || sk >= m.Sockets {
			panic(fmt.Sprintf("memsim: thread %d pinned to socket %d of %d", i, sk, m.Sockets))
		}
		perSocket[sk]++
	}
	ht := false // hyperthread pairs active: halve private caches
	for sk, c := range perSocket {
		if c > m.CoresPerSocket*m.ThreadsPerCore {
			panic(fmt.Sprintf("memsim: %d threads pinned to socket %d (max %d)",
				c, sk, m.CoresPerSocket*m.ThreadsPerCore))
		}
		if c > m.CoresPerSocket {
			ht = true
		}
	}

	s := &Sim{M: m, sockets: m.Sockets, dir: newDirectory(m.DirectoryService)}
	probeRate := m.CoherenceProbeRate
	if probeRate > 0 && m.ProbeSaturationThreads > 0 && n > m.ProbeSaturationThreads {
		// Past the saturation point the probe filter fabric degrades: the
		// per-probe interval grows with the busy thread count (the paper
		// observes the sharp drop but could not root-cause it; a linear
		// congestion model reproduces the shape).
		probeRate *= float64(m.ProbeSaturationThreads) / float64(n)
	}
	for sk := 0; sk < m.Sockets; sk++ {
		s.mem = append(s.mem, newChannelGroup(m))
		s.probes = append(s.probes, newProbeFabric(probeRate))
	}
	if rate := m.InterconnectLinesPerCycle(); rate > 0 {
		for i := 0; i < m.Sockets*m.Sockets; i++ {
			s.upi = append(s.upi, newProbeFabric(rate))
		}
	}
	nL3 := m.Sockets * m.CCXPerSocket
	for i := 0; i < nL3; i++ {
		s.l3 = append(s.l3, newCache(m.L3Bytes/64, 16))
	}

	l1Lines := m.L1Bytes / 64
	l2Lines := m.L2Bytes / 64
	if ht {
		l1Lines /= 2
		l2Lines /= 2
	}
	coresPerCCX := m.CoresPerSocket / m.CCXPerSocket
	nextOnSocket := make([]int, m.Sockets)
	for i := 0; i < n; i++ {
		socket := socketOf(i)
		coreInSocket := nextOnSocket[socket] % m.CoresPerSocket
		nextOnSocket[socket]++
		core := socket*m.CoresPerSocket + coreInSocket
		ccx := socket*m.CCXPerSocket + coreInSocket/coresPerCCX
		t := &Thread{
			sim:    s,
			ID:     i,
			Core:   core,
			Socket: socket,
			CCX:    ccx,
			// Stagger start times so the closed-loop threads do not stay
			// phase-locked, hammering the channels in synchronized bursts
			// no real machine would produce.
			Clock:   float64(i) * 29,
			l1:      newCache(l1Lines, 8),
			l2:      newCache(l2Lines, 8),
			pfLine:  make([]uint64, 64),
			pfReady: make([]float64, 64),
			pfEpoch: make([]uint64, 64),
		}
		s.Threads = append(s.Threads, t)
	}
	return s
}

// homeSocket returns the socket whose memory holds the line (the paper
// splits the table across both NUMA nodes; we interleave by line unless a
// placement policy overrides it).
func (s *Sim) homeSocket(line uint64) int {
	if s.place != nil {
		return s.place(line)
	}
	return int(line) & (s.sockets - 1)
}

// SetPlacement installs a NUMA placement policy: p maps a line to the
// socket whose memory homes it (first-touch / numactl membind / per-shard
// local allocation). nil restores the default per-line interleave. The
// policy must return sockets in range; it is consulted on every DRAM fill,
// write-back and stream, so it should be cheap.
func (s *Sim) SetPlacement(p func(line uint64) int) { s.place = p }

// upiAdmit queues one line transfer on the directional from→to interconnect
// link and returns the cycle at which it crosses. It is the identity when
// the transfer is socket-local or the interconnect is unmodeled
// (Machine.InterconnectGBs == 0).
func (s *Sim) upiAdmit(from, to int, when float64) float64 {
	if s.upi == nil || from == to {
		return when
	}
	return s.upi[from*s.sockets+to].admit(when)
}

// l3For returns the LLC slice for a thread.
func (s *Sim) l3For(t *Thread) *cache { return s.l3[t.CCX] }

// AccessKind classifies a memory operation for the timing model.
type AccessKind uint8

// Access kinds.
const (
	// Load is an ordinary read.
	Load AccessKind = iota
	// Store is an ordinary write (allocates exclusive; writes back).
	Store
	// RMW is an atomic read-modify-write (CAS, locked add): a Store plus
	// lock overhead, serialized by the directory when contended.
	RMW
)

// Compute advances the thread's clock by a pure-computation interval
// (hashing, queue manipulation).
func (t *Thread) Compute(cycles float64) { t.Clock += cycles }

// Prefetch issues a non-blocking prefetch for the line: the memory
// transaction is scheduled now (consuming bandwidth), and the line becomes
// ready after the full miss latency. A later Access that finds the line
// ready pays only L1 time. Prefetching a line already in the private caches
// costs nothing (the paper's conditional prefetch re-prefetches the same
// cached line for exactly this reason).
func (t *Thread) Prefetch(line uint64) {
	t.Clock += 1 // issue cost
	if t.l1.contains(line) || t.l2.contains(line) {
		return
	}
	if _, ok := t.prefetchReady(line); ok {
		return // already in flight
	}
	ready := t.fill(line, Load, t.Clock, true)
	// Record in the bounded prefetch table; the line is installed in the
	// caches only when the consuming Access lands (so an access that
	// arrives before `ready` still waits out the remainder).
	t.pfLine[t.pfPos] = line + 1
	t.pfReady[t.pfPos] = ready
	t.pfEpoch[t.pfPos] = t.pollution
	t.pfPos = (t.pfPos + 1) & 63
}

// Pollute models the Figure 6c experiment: the application prefetches a
// random cache line of its own large array, consuming memory bandwidth,
// installing the line into the private caches (evicting useful lines), and
// aging every outstanding hash-table prefetch — once pollution exceeds the
// L1 capacity between a prefetch and its use, the prefetched line is gone
// and the consuming access pays a full miss again.
func (t *Thread) Pollute(line uint64) {
	t.Clock += 1
	home := t.sim.homeSocket(line)
	t.sim.mem[home].transact(t.Clock, txRandRead)
	t.install(line, false)
	t.pollution++
}

// PolluteDropped models a prefetch issued past the core's miss-queue depth:
// hardware drops it (no fill, no bandwidth), but the instruction still costs
// an issue slot and the earlier pollution keeps aging the caches. The
// Figure 6c experiment issues up to 512 prefetches per operation — far more
// than the ~16 line-fill buffers a core has — so most are drops.
func (t *Thread) PolluteDropped() {
	t.Clock += 1
	t.pollution++
}

// prefetchReady returns the ready time if the line has an outstanding
// prefetch record that pollution has not evicted.
func (t *Thread) prefetchReady(line uint64) (float64, bool) {
	tag := line + 1
	for i := range t.pfLine {
		if t.pfLine[i] == tag {
			// Pollution evicts a prefetched line once enough competing
			// installs have passed through the L1 — but eviction is
			// set-granular on real hardware: a line survives until ITS set
			// fills, which happens after anywhere from ~½ to ~4× the cache
			// capacity of uniformly random pollution. A per-line
			// deterministic factor spreads the cliff the way set-conflict
			// randomness does.
			factor := 0.5 + 3.5*float64(line*0x9e3779b97f4a7c15>>56&0xff)/255
			limit := uint64(float64(t.l1.capacityLines()) * factor)
			if t.pollution-t.pfEpoch[i] >= limit {
				return 0, false // evicted by pollution before use
			}
			return t.pfReady[i], true
		}
	}
	return 0, false
}

// install puts the line into L1/L2 (and the LLC slice).
func (t *Thread) install(line uint64, write bool) {
	core := int32(t.Core)
	t.l1.access(line, core, write)
	t.l2.access(line, core, write)
	t.sim.l3For(t).access(line, core, write)
}

// fillLatency schedules the off-core portion of a miss starting at `when`
// and returns the absolute cycle at which the line arrives. It charges
// channel bandwidth for DRAM fills, the Skylake directory write-back for
// remote reads, and the AMD probe fabric.
func (t *Thread) fillLatency(line uint64, kind AccessKind, when float64) float64 {
	return t.fill(line, kind, when, false)
}

func (t *Thread) fill(line uint64, kind AccessKind, when float64, prefetch bool) float64 {
	s := t.sim
	m := s.M
	// On-die transfer latencies are partially hidden by the out-of-order
	// window for ordinary loads (never for RMW). A small fraction of DRAM
	// stalls overlaps with adjacent independent work too.
	hide := 1.0
	hideDRAM := 1.0
	if kind == Load && !prefetch {
		hide = 1.0 - m.OOOHideOnDie
		hideDRAM = 1.0 - m.OOOHideDRAM
	}
	scale := 1.0
	if prefetch && m.PrefetchServicePenalty > 0 {
		scale = m.PrefetchServicePenalty
	}

	// Another cache on the same socket?
	own := s.l3For(t)
	localSlices := s.l3[t.Socket*m.CCXPerSocket : (t.Socket+1)*m.CCXPerSocket]
	for _, l3 := range localSlices {
		if i := l3.lookup(line); i >= 0 {
			if l3 == own {
				// Our own LLC slice: clean hit unless another core dirtied
				// the line (then it sits modified in that core's private
				// cache and must be transferred).
				if lw := l3.writer[i]; lw >= 0 && lw != int32(t.Core) {
					return when + float64(m.LocalCacheLat)*hide
				}
				return when + float64(m.L3Lat)*hide
			}
			// A peer complex on the same die: cache-to-cache transfer. A
			// write invalidates the peer's copy.
			if kind != Load {
				l3.invalidate(line)
			}
			return when + float64(m.LocalCacheLat)*hide
		}
	}
	// The other socket's caches?
	for sk := 0; sk < m.Sockets; sk++ {
		if sk == t.Socket {
			continue
		}
		for _, l3 := range s.l3[sk*m.CCXPerSocket : (sk+1)*m.CCXPerSocket] {
			if l3.contains(line) {
				if kind != Load {
					l3.invalidate(line)
				}
				// The line crosses the socket interconnect from its holder.
				when = s.upiAdmit(sk, t.Socket, when)
				return when + float64(m.RemoteCacheLat)*hide
			}
		}
	}

	// DRAM fill.
	t.DRAMLoads++
	home := s.homeSocket(line)
	start := when
	if m.CoherenceProbeRate > 0 && !t.ProbeExempt {
		start = s.probes[home].admit(start)
	}
	// Write-back bandwidth for dirtied lines is charged at the directory
	// upgrade in Access, so a fill is always one read transaction here.
	start = s.mem[home].transactScaled(start, txRandRead, scale)
	lat := float64(m.DRAMLat) * hideDRAM
	if home != t.Socket {
		// The filled line crosses home→requester on the interconnect.
		start = s.upiAdmit(home, t.Socket, start)
		lat = float64(m.RemoteDRAMLat) * hideDRAM
		if m.DirectoryWriteback && kind == Load {
			// Skylake: a remote read acquires the line exclusive and will
			// write back to clear the directory bit — an extra write
			// transaction on the home node's channels, carried back over
			// the interconnect (non-stalling for the reader).
			s.upiAdmit(t.Socket, home, start)
			s.mem[home].transactScaled(start, txRandWrite, scale)
		}
	}
	return start + lat
}

// AccessLocked performs an atomic lock acquisition that keeps the line
// exclusively held for holdCycles after the grant — the critical section of
// a spinlock, plus the coherence interference of the waiters spinning on the
// line. Queued acquirers wait out the hold (Figure 2's spinlock series).
func (t *Thread) AccessLocked(line uint64, holdCycles float64) float64 {
	t.holdCycles = holdCycles + 2*t.sim.dir.service
	cost := t.Access(line, RMW)
	t.holdCycles = 0
	return cost
}

// Access performs a memory operation on the line, advancing the thread's
// clock by its full cost, and returns that cost in cycles.
func (t *Thread) Access(line uint64, kind AccessKind) float64 {
	s := t.sim
	m := s.M
	start := t.Clock
	var done float64

	if hit, lastWriter := t.l1.access(line, int32(t.Core), kind != Load); hit {
		_ = lastWriter
		done = start + float64(m.L1Lat)
	} else if hit, _ := t.l2.access(line, int32(t.Core), kind != Load); hit {
		t.CacheHits++
		done = start + float64(m.L2Lat)
	} else if ready, ok := t.prefetchReady(line); ok {
		// Prefetched: if it landed, the access is an L1 hit; if the
		// prefetch is still in flight, wait out the remainder.
		t.CacheHits++
		wait := ready - start
		if wait < 0 {
			wait = 0
		}
		done = start + wait + float64(m.L1Lat)
		t.install(line, kind != Load)
	} else if kind == Store {
		// A plain store that misses retires into the store buffer: the
		// thread does not wait for the fill. The fill's bandwidth and
		// coherence side effects still happen (fillLatency schedules them),
		// and sustained contention still stalls through the directory
		// grant below.
		t.fillLatency(line, kind, start)
		t.install(line, true)
		done = start + float64(m.L1Lat)
	} else {
		done = t.fillLatency(line, kind, start)
		t.install(line, kind != Load)
	}

	if kind != Load {
		// Exclusive acquisition: serialized by the LLC directory when other
		// cores contend for the same line (ownership handoffs), free for
		// the current holder.
		granted, prev := s.dir.exclusive(line, int32(t.Core), done, t.holdCycles)
		if granted > done {
			if kind == Store {
				// A plain store retires into the store buffer; the thread
				// only stalls once sustained contention fills the buffer,
				// which bounds the per-store penalty. Atomics (RMW) must
				// wait for the grant in full.
				wait := granted - done
				if cap := 12 * float64(m.DirectoryService); wait > cap {
					wait = cap
				}
				done += wait
			} else {
				done = granted
			}
		}
		if kind == RMW {
			done += float64(m.LockOverhead)
		}
		// Dirtying a line this core did not already own will eventually
		// write it back: charge the write transaction to the home node
		// without stalling the thread (crossing the interconnect when the
		// home is the other socket).
		if prev != int32(t.Core) {
			home := s.homeSocket(line)
			s.upiAdmit(t.Socket, home, done)
			s.mem[home].transact(done, txRandWrite)
		}
	}

	t.Ops++
	cost := done - start
	t.Clock = done
	return cost
}

// Stream performs a fully pipelined access (the MLC measurement kernel and
// hardware-prefetched sequential scans): the thread pays only issue cost and
// channel backpressure, never the DRAM latency — the hardware prefetcher
// and out-of-order window hide it. seq selects the sequential service rate.
func (t *Thread) Stream(line uint64, write, seq bool) {
	home := t.sim.homeSocket(line)
	kind := txRandRead
	switch {
	case write && seq:
		kind = txSeqWrite
	case write:
		kind = txRandWrite
	case seq:
		kind = txSeqRead
	}
	now := t.Clock
	if write {
		now = t.sim.upiAdmit(t.Socket, home, now)
	} else {
		now = t.sim.upiAdmit(home, t.Socket, now)
	}
	start := t.sim.mem[home].transact(now, kind)
	// Thread advances to when its transaction STARTED plus a small issue
	// cost: with deep pipelining a core keeps ~10 line transfers in
	// flight, so backpressure — not latency — paces it.
	t.Clock = start + 2
	t.Ops++
}

// runHeap orders threads by clock.
type runHeap []*Thread

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return h[i].Clock < h[j].Clock }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*Thread)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run drives all threads in timestamp order: step is called with the
// earliest thread and performs one unit of work (one operation), returning
// false when that thread has no more work. Run returns when every thread is
// done.
func (s *Sim) Run(step func(t *Thread) bool) {
	h := make(runHeap, 0, len(s.Threads))
	for _, t := range s.Threads {
		h = append(h, t)
	}
	heap.Init(&h)
	for len(h) > 0 {
		t := h[0]
		if step(t) {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
}

// WarmLLC installs n lines starting at base into the machine's last-level
// caches, spread across sockets and CCX slices — the state of a
// cache-resident table after its population phase. Used by the small-table
// experiments so the timed phase measures the cached steady state rather
// than compulsory misses.
func (s *Sim) WarmLLC(base, n uint64) {
	m := s.M
	for i := uint64(0); i < n; i++ {
		line := base + i
		socket := int(line>>1) & (m.Sockets - 1)
		slice := socket*m.CCXPerSocket + int(line>>2)%m.CCXPerSocket
		s.l3[slice].access(line, -1, false)
	}
}

// LLCLinesTotal returns the aggregate LLC capacity in lines.
func (s *Sim) LLCLinesTotal() int {
	n := 0
	for _, c := range s.l3 {
		n += c.capacityLines()
	}
	return n
}

// MaxClock returns the finish time (cycles) across threads.
func (s *Sim) MaxClock() float64 {
	max := 0.0
	for _, t := range s.Threads {
		if t.Clock > max {
			max = t.Clock
		}
	}
	return max
}

// Mops converts an operation count and the sim's finish time into millions
// of operations per second.
func (s *Sim) Mops(ops uint64) float64 {
	cycles := s.MaxClock()
	if cycles == 0 {
		return 0
	}
	secs := cycles / (s.M.FreqGHz * 1e9)
	return float64(ops) / secs / 1e6
}

// MemTransactions returns total line transfers across sockets.
func (s *Sim) MemTransactions() uint64 {
	var n uint64
	for _, g := range s.mem {
		n += g.transactions()
	}
	return n
}

// AchievedGBs returns the realized memory bandwidth over the run.
func (s *Sim) AchievedGBs() float64 {
	cycles := s.MaxClock()
	if cycles == 0 {
		return 0
	}
	secs := cycles / (s.M.FreqGHz * 1e9)
	return float64(s.MemTransactions()) * 64 / secs / 1e9
}
