// Package growt provides an automatically resizing hash table built on the
// Folklore layout — the capability the paper defers ("we assume that an
// efficient resizing scheme can be implemented similar to Growt [35]").
//
// The full Growt algorithm migrates concurrently with lock-free helping and
// per-slot migration markers; reproducing it faithfully is a paper of its
// own. This package makes the honest engineering trade the repository can
// stand behind: operations take a shared (read) gate — one uncontended
// atomic per op — and a resize takes the exclusive gate, migrates every
// live entry into a table twice the size, and swaps. Between resizes the
// fast path is exactly Folklore's; during the (rare, amortized) migration,
// writers wait. The README and DESIGN.md document this as the deliberate
// departure from Growt's lock-free migration.
//
// Tombstone space is reclaimed on every resize (the paper: "The space is
// freed only when the hash table is resized").
package growt

import (
	"sync"

	"dramhit/internal/folklore"
	"dramhit/internal/table"
)

// DefaultMaxFill is the fill factor (claimed slots, including tombstones,
// over capacity) that triggers growth; open addressing degrades sharply
// past ~0.8, and the paper evaluates at 0.75.
const DefaultMaxFill = 0.75

// Table is an auto-resizing hash table implementing table.Map. All methods
// are safe for concurrent use.
type Table struct {
	gate    sync.RWMutex
	cur     *folklore.Table
	maxFill float64
	// grows counts completed resizes (observability).
	grows int
}

// New creates a table with an initial capacity of n slots (minimum 16) that
// grows when fill exceeds DefaultMaxFill.
func New(n uint64) *Table {
	if n < 16 {
		n = 16
	}
	return &Table{cur: folklore.New(n), maxFill: DefaultMaxFill}
}

// Get implements table.Map.
func (t *Table) Get(key uint64) (uint64, bool) {
	t.gate.RLock()
	v, ok := t.cur.Get(key)
	t.gate.RUnlock()
	return v, ok
}

// Put implements table.Map. It never reports full: crossing the fill
// threshold triggers growth.
func (t *Table) Put(key, value uint64) bool {
	for {
		t.gate.RLock()
		cur := t.cur
		ok := cur.Fill() < t.maxFill && cur.Put(key, value)
		t.gate.RUnlock()
		if ok {
			return true
		}
		t.grow(cur)
	}
}

// Upsert implements table.Map.
func (t *Table) Upsert(key, delta uint64) (uint64, bool) {
	for {
		t.gate.RLock()
		cur := t.cur
		var v uint64
		ok := cur.Fill() < t.maxFill
		if ok {
			v, ok = cur.Upsert(key, delta)
		}
		t.gate.RUnlock()
		if ok {
			return v, true
		}
		t.grow(cur)
	}
}

// Delete implements table.Map.
func (t *Table) Delete(key uint64) bool {
	t.gate.RLock()
	ok := t.cur.Delete(key)
	t.gate.RUnlock()
	return ok
}

// Len implements table.Map.
func (t *Table) Len() int {
	t.gate.RLock()
	n := t.cur.Len()
	t.gate.RUnlock()
	return n
}

// Cap implements table.Map (the current generation's capacity).
func (t *Table) Cap() int {
	t.gate.RLock()
	c := t.cur.Cap()
	t.gate.RUnlock()
	return c
}

// Grows returns the number of completed resizes.
func (t *Table) Grows() int {
	t.gate.RLock()
	g := t.grows
	t.gate.RUnlock()
	return g
}

// Fill returns the current generation's fill factor.
func (t *Table) Fill() float64 {
	t.gate.RLock()
	f := t.cur.Fill()
	t.gate.RUnlock()
	return f
}

// grow migrates to a table of twice the capacity. `seen` is the generation
// the caller observed as over-full; if another goroutine already grew past
// it, the call is a no-op.
func (t *Table) grow(seen *folklore.Table) {
	t.gate.Lock()
	defer t.gate.Unlock()
	if t.cur != seen {
		return // someone else already resized
	}
	old := t.cur
	// Growth policy: when the table is genuinely filling with live entries,
	// double; when tombstone churn (insert/delete cycles) consumed the
	// claimed-slot budget while the live count stayed low, rebuild at the
	// same size — a pure compaction that keeps capacity proportional to
	// live data.
	newCap := uint64(old.Cap()) * 2
	if float64(old.Len())/float64(old.Cap()) < t.maxFill/2 {
		newCap = uint64(old.Cap())
	}
	next := folklore.New(newCap)
	// Migrate every live entry; tombstones evaporate here, restoring the
	// claimed-slot budget.
	old.Range(func(k, v uint64) bool {
		next.Put(k, v)
		return true
	})
	t.cur = next
	t.grows++
}

var _ table.Map = (*Table)(nil)
