// Package growt provides an automatically resizing hash table built on the
// Folklore layout — the capability the paper defers ("we assume that an
// efficient resizing scheme can be implemented similar to Growt [35]").
//
// Resizes are incremental and cooperative, in the spirit of Growt's helping
// migration: when fill crosses the threshold, an operation installs a
// successor table (twice the size, or equal for a pure tombstone compaction)
// together with a migration cursor, and every subsequent operation helps by
// claiming one fixed-size chunk of old-generation slots and copying its live
// entries across. Migrated slots are retired with the reserved
// table.MovedKey sentinel, so the old generation's probe chains stay intact
// while entries drain out of it. During the window readers consult the old
// generation and then the new one; writers go to the new generation after
// relocating any old-generation entry for their key (see migrate.go for the
// protocol and its correctness argument). The swap to the successor is a
// plain compare-and-swap once the last chunk completes — no operation ever
// waits for more than one chunk copy.
//
// The pre-incremental behaviour — migrate everything under the exclusive
// gate, writers stall for the full copy — is retained as
// table.ResizeGate, the A/B baseline of the resize-ab experiment.
//
// Tombstone space is reclaimed on every resize (the paper: "The space is
// freed only when the hash table is resized"): the chunk copy skips
// tombstones, so they simply do not exist in the successor.
package growt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dramhit/internal/folklore"
	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// DefaultMaxFill is the fill factor (claimed slots, including tombstones,
// over capacity) that triggers growth; open addressing degrades sharply
// past ~0.8, and the paper evaluates at 0.75.
const DefaultMaxFill = 0.75

// DefaultChunkSlots is the number of old-generation slots one helping
// operation migrates. It bounds the worst-case latency any single operation
// pays during a resize: one 512-slot copy (≤128 cache lines of keys at 75%
// fill) instead of the whole table.
const DefaultChunkSlots = 512

// state is one generation of the table: the current Folklore table and, when
// a resize window is open, the in-flight migration to its successor. A fresh
// state object is published for every transition (install and swap), so the
// pointer doubles as the generation identity the lock-free swap CAS keys on.
type state struct {
	cur *folklore.Table
	mig *migration // nil outside a resize window
}

// Table is an auto-resizing hash table implementing table.Map. All methods
// are safe for concurrent use.
type Table struct {
	// gate is an install barrier, not an operation lock: operations hold the
	// read side for their duration (one uncontended atomic each), and a
	// resize takes the write side only for the O(1) publication of a
	// pre-built successor — never for the migration itself. The exclusive
	// acquisition is what guarantees no operation started before the window
	// can still write the old generation once the window is open.
	gate    sync.RWMutex
	st      atomic.Pointer[state]
	maxFill float64
	mode    table.ResizeMode
	chunk   uint64 // slots migrated per helping claim

	grows  atomic.Uint64 // completed resizes
	helped atomic.Uint64 // chunks migrated by helping/relocating operations
	waits  atomic.Uint64 // operations that waited on another owner's chunk

	// installing single-flights successor construction: exactly one goroutine
	// allocates the O(n) successor per window, whether it is the background
	// pre-installer or an operation that hit the threshold first. Without it,
	// every writer that finds the table full races to build its own duplicate
	// successor — a global stall the incremental mode exists to avoid.
	installing atomic.Uint32

	trace *obs.TraceRing // nil unless Observe attached a ring

	// obsw/opLat arm per-op-class latency timing (set by Observe when the
	// registry enabled it). Like folklore, growt has no per-goroutine handle,
	// so all operators share one Worker's atomic histograms.
	obsw  *obs.Worker
	opLat bool

	// noHelp disables the one-chunk-per-operation helping so the migration
	// property test can step the window manually; relocation (correctness)
	// is unaffected. Set only before the table is shared.
	noHelp bool
}

// Option configures a Table.
type Option func(*Table)

// WithResizeMode selects incremental (default) or gate migration.
func WithResizeMode(m table.ResizeMode) Option {
	return func(t *Table) { t.mode = m }
}

// WithChunkSlots overrides the migration chunk size (minimum 1). Small
// chunks mean more, cheaper helping claims; tests use chunk=1 to maximise
// the number of observable interruption points.
func WithChunkSlots(n uint64) Option {
	return func(t *Table) {
		if n < 1 {
			n = 1
		}
		t.chunk = n
	}
}

// New creates a table with an initial capacity of n slots (minimum 16) that
// grows when fill exceeds DefaultMaxFill.
func New(n uint64, opts ...Option) *Table {
	if n < 16 {
		n = 16
	}
	t := &Table{maxFill: DefaultMaxFill, chunk: DefaultChunkSlots}
	for _, o := range opts {
		o(t)
	}
	t.st.Store(&state{cur: folklore.New(n)})
	return t
}

// opStart/opEnd time one operation into the shared Worker's per-op-class
// histogram when Observe armed latency recording; see folklore for the
// pattern. The recorded span covers helping work (chunk copies, relocation)
// an operation performed inside a resize window — deliberately, since that
// is exactly the latency tail the incremental scheme trades throughput for.
func (t *Table) opStart() int64 {
	if t.opLat {
		return time.Now().UnixNano()
	}
	return 0
}

func (t *Table) opEnd(start int64, op table.Op, hit bool) {
	if start != 0 {
		t.obsw.Op[obs.OpClass(op, hit)].Record(uint64(time.Now().UnixNano() - start))
	}
}

// Get implements table.Map.
func (t *Table) Get(key uint64) (uint64, bool) {
	start := t.opStart()
	v, ok := t.get(key)
	t.opEnd(start, table.Get, ok)
	return v, ok
}

func (t *Table) get(key uint64) (uint64, bool) {
	t.gate.RLock()
	s := t.st.Load()
	if s.mig == nil {
		v, ok := s.cur.Get(key)
		t.gate.RUnlock()
		return v, ok
	}
	if !t.noHelp {
		t.helpOne(s)
	}
	// Old-then-new: a migrated entry is published in the successor before
	// its old slot is retired, so missing it in the old generation implies
	// it is visible in the new one. Reserved keys live in the successor for
	// the whole window (install moves them), so they skip the old probe.
	var v uint64
	var ok bool
	if table.IsReservedKey(key) {
		v, ok = s.mig.next.Get(key)
	} else if v, ok = s.cur.Get(key); !ok {
		v, ok = s.mig.next.Get(key)
	}
	t.gate.RUnlock()
	t.maybeSwap(s)
	return v, ok
}

// Put implements table.Map. It never reports full: crossing the fill
// threshold triggers growth.
func (t *Table) Put(key, value uint64) bool {
	start := t.opStart()
	ok := t.put(key, value)
	t.opEnd(start, table.Put, ok)
	return ok
}

func (t *Table) put(key, value uint64) bool {
	for {
		t.gate.RLock()
		s := t.st.Load()
		if s.mig != nil {
			if !t.noHelp {
				t.helpOne(s)
			}
			t.relocate(s, key)
			ok := s.mig.next.Fill() < t.maxFill && s.mig.next.Put(key, value)
			t.gate.RUnlock()
			t.maybeSwap(s)
			if ok {
				return true
			}
			// The successor itself crossed the threshold mid-window (heavy
			// insert pressure): drain the remaining chunks, swap, retry
			// against the new stable generation, which will grow again.
			t.drain(s)
			continue
		}
		cur := s.cur
		fill := cur.Fill()
		ok := fill < t.maxFill && cur.Put(key, value)
		t.gate.RUnlock()
		if ok {
			t.maybePreGrow(s, fill)
			return true
		}
		t.grow(s)
	}
}

// Upsert implements table.Map.
func (t *Table) Upsert(key, delta uint64) (uint64, bool) {
	start := t.opStart()
	v, ok := t.upsert(key, delta)
	t.opEnd(start, table.Upsert, ok)
	return v, ok
}

func (t *Table) upsert(key, delta uint64) (uint64, bool) {
	for {
		t.gate.RLock()
		s := t.st.Load()
		if s.mig != nil {
			if !t.noHelp {
				t.helpOne(s)
			}
			t.relocate(s, key)
			var v uint64
			ok := s.mig.next.Fill() < t.maxFill
			if ok {
				v, ok = s.mig.next.Upsert(key, delta)
			}
			t.gate.RUnlock()
			t.maybeSwap(s)
			if ok {
				return v, true
			}
			t.drain(s)
			continue
		}
		cur := s.cur
		var v uint64
		fill := cur.Fill()
		ok := fill < t.maxFill
		if ok {
			v, ok = cur.Upsert(key, delta)
		}
		t.gate.RUnlock()
		if ok {
			t.maybePreGrow(s, fill)
			return v, true
		}
		t.grow(s)
	}
}

// Delete implements table.Map.
func (t *Table) Delete(key uint64) bool {
	start := t.opStart()
	hit := t.del(key)
	t.opEnd(start, table.Delete, hit)
	return hit
}

func (t *Table) del(key uint64) bool {
	t.gate.RLock()
	s := t.st.Load()
	if s.mig == nil {
		ok := s.cur.Delete(key)
		t.gate.RUnlock()
		return ok
	}
	if !t.noHelp {
		t.helpOne(s)
	}
	// A delete is a write: relocate the key's old-generation entry (if any)
	// so the tombstone lands in the successor, where it is authoritative.
	t.relocate(s, key)
	ok := s.mig.next.Delete(key)
	t.gate.RUnlock()
	t.maybeSwap(s)
	return ok
}

// Len implements table.Map. During a window it is the sum of both
// generations' live counts; relocation marks the old slot before the
// operation returns, so the sum is exact whenever no operation is in flight.
func (t *Table) Len() int {
	t.gate.RLock()
	s := t.st.Load()
	n := s.cur.Len()
	if s.mig != nil {
		n += s.mig.next.Len()
	}
	t.gate.RUnlock()
	return n
}

// Cap implements table.Map. During a window it reports the successor's
// capacity — that allocation is already committed.
func (t *Table) Cap() int {
	t.gate.RLock()
	s := t.st.Load()
	c := s.cur.Cap()
	if s.mig != nil {
		c = s.mig.next.Cap()
	}
	t.gate.RUnlock()
	return c
}

// Grows returns the number of completed resizes.
func (t *Table) Grows() int { return int(t.grows.Load()) }

// Fill returns the fill factor of the generation accepting writes (the
// successor during a window — the old generation is by definition over the
// threshold then, which is transient state, not capacity pressure).
func (t *Table) Fill() float64 {
	t.gate.RLock()
	s := t.st.Load()
	f := s.cur.Fill()
	if s.mig != nil {
		f = s.mig.next.Fill()
	}
	t.gate.RUnlock()
	return f
}

// Stats is a point-in-time snapshot of the table's resize machinery.
type Stats struct {
	// Grows counts completed resizes (swaps to a successor generation).
	Grows uint64
	// ChunksHelped counts migration chunks copied by helping or relocating
	// operations over the table's lifetime.
	ChunksHelped uint64
	// ChunkWaits counts operations that had to wait for another operation's
	// in-flight chunk copy (the bounded wait of the protocol).
	ChunkWaits uint64
	// Migrating reports whether a resize window is currently open;
	// MigrationDone/MigrationTotal are its chunk progress when it is.
	Migrating      bool
	MigrationDone  uint64
	MigrationTotal uint64
	// InstallPending reports that a successor is being built (the window
	// will open once the allocation lands) — the pre-install phase.
	InstallPending bool
}

// Stats returns the current resize statistics.
func (t *Table) Stats() Stats {
	st := Stats{
		Grows:          t.grows.Load(),
		ChunksHelped:   t.helped.Load(),
		ChunkWaits:     t.waits.Load(),
		InstallPending: t.installing.Load() == 1,
	}
	if s := t.st.Load(); s.mig != nil {
		st.Migrating = true
		st.MigrationDone = s.mig.done.Load()
		st.MigrationTotal = s.mig.nchunks
	}
	return st
}

// Observe attaches the table to the observability registry: a pull source
// reports the resize counters and migration progress at scrape time, and
// resize lifecycle events (install / chunk / swap) are recorded into the
// registry's trace ring. Call before the table is shared.
func (t *Table) Observe(reg *obs.Registry) {
	t.trace = reg.Trace()
	if reg.OpLatencyEnabled() {
		t.obsw = reg.Worker("growt")
		t.opLat = true
	}
	reg.AddHeatmapSource("growt", func() obs.Heatmap {
		// The write generation's map is the one that predicts op cost: the
		// successor during a window (the old generation is by definition
		// over-full transient state). Migration progress rides along as
		// gauges so a scrape can tell "bimodal fill" from "mid-resize".
		t.gate.RLock()
		s := t.st.Load()
		gen := s.cur
		var done, total uint64
		if s.mig != nil {
			gen = s.mig.next
			done, total = s.mig.done.Load(), s.mig.nchunks
		}
		t.gate.RUnlock()
		hm := gen.Heatmap()
		hm.Gauges["grows"] = float64(t.grows.Load())
		hm.Gauges["migrating"] = 0
		if total != 0 {
			hm.Gauges["migrating"] = 1
			hm.Gauges["migration_progress"] = float64(done) / float64(total)
		}
		return hm
	})
	reg.AddSource("growt", func() map[string]float64 {
		st := t.Stats()
		migrating := 0.0
		progress := 1.0
		if st.Migrating {
			migrating = 1
			progress = float64(st.MigrationDone) / float64(st.MigrationTotal)
		}
		return map[string]float64{
			"grows":              float64(st.Grows),
			"chunks_helped":      float64(st.ChunksHelped),
			"chunk_waits":        float64(st.ChunkWaits),
			"migrating":          migrating,
			"migration_progress": progress,
			"live":               float64(t.Len()),
			"slots":              float64(t.Cap()),
			"fill":               t.Fill(),
		}
	})
}

// preGrowFill is the fraction of maxFill at which incremental tables start
// building the successor in the background, so the O(n) allocation overlaps
// with the inserts that will eventually need it instead of stalling the one
// operation that crosses the threshold. The ~10% headroom covers the
// allocation at realistic insert rates; if inserts outrun it, threshold
// crossers wait for the in-flight install rather than allocating duplicates.
const preGrowFill = 0.9

// maybePreGrow kicks off a background successor install once fill reaches
// preGrowFill·maxFill. Single-flighted by the installing latch; a no-op in
// gate mode (the baseline keeps its synchronous stall by construction) and
// under noHelp (tests drive windows manually).
func (t *Table) maybePreGrow(s *state, fill float64) {
	if fill < t.maxFill*preGrowFill || t.mode == table.ResizeGate || t.noHelp {
		return
	}
	if !t.installing.CompareAndSwap(0, 1) {
		return
	}
	go func() {
		defer t.installing.Store(0)
		if t.st.Load() == s { // still the generation we saw filling up
			t.install(s, t.growCap(s.cur))
		}
	}()
}

// growCap applies the growth policy: when the table is genuinely filling
// with live entries, double; when tombstone churn (insert/delete cycles)
// consumed the claimed-slot budget while the live count stayed low, rebuild
// at the same size — a pure compaction that keeps capacity proportional to
// live data.
func (t *Table) growCap(old *folklore.Table) uint64 {
	newCap := uint64(old.Cap()) * 2
	if float64(old.Len())/float64(old.Cap()) < t.maxFill/2 {
		newCap = uint64(old.Cap())
	}
	return newCap
}

// grow starts a resize from the generation the caller observed as over-full;
// if another goroutine already moved past it, the call is a no-op.
func (t *Table) grow(seen *state) {
	if t.mode == table.ResizeGate {
		t.growGate(seen, t.growCap(seen.cur))
		return
	}
	if t.installing.CompareAndSwap(0, 1) {
		t.install(seen, t.growCap(seen.cur))
		t.installing.Store(0)
		return
	}
	// The successor is already being built (usually by the background
	// pre-installer). Wait for the window instead of allocating a duplicate:
	// the stall is bounded by the remainder of one allocation, and only
	// operations that outran the pre-install headroom ever get here.
	for t.st.Load() == seen && t.installing.Load() == 1 {
		runtime.Gosched()
	}
}

// growGate is the ResizeGate baseline: migrate everything to the successor
// under the exclusive gate — every concurrent operation stalls for the copy.
func (t *Table) growGate(seen *state, newCap uint64) {
	t.gate.Lock()
	defer t.gate.Unlock()
	if t.st.Load() != seen {
		return // someone else already resized
	}
	next := folklore.New(newCap)
	// Migrate every live entry; tombstones evaporate here, restoring the
	// claimed-slot budget.
	seen.cur.Range(func(k, v uint64) bool {
		next.Put(k, v)
		return true
	})
	t.st.Store(&state{cur: next})
	t.grows.Add(1)
}

var _ table.Map = (*Table)(nil)
