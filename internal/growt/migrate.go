// The incremental migration state machine. One resize window turns the
// coarse "copy everything under the lock" of the gate baseline into a
// four-phase concurrent protocol:
//
//	install  — the operation that finds the current generation over-full
//	           pre-builds the successor outside the gate, then takes the
//	           exclusive gate for an O(1) publication of state{cur, mig}.
//	           The exclusive acquisition is the window's memory barrier: no
//	           operation started before it can still be writing the old
//	           generation afterwards, so the migration copy never races a
//	           stale writer. Reserved-key side entries move to the successor
//	           here (O(3)), making the successor authoritative for them for
//	           the whole window.
//	help     — every subsequent operation claims at most one chunk of
//	           old-generation slots (CAS unclaimed→busy on the chunk's state
//	           cell, cursor-ordered) and copies its live entries with
//	           folklore.MigrateRange: publish in the successor, then retire
//	           the old slot with table.MovedKey. Single ownership per chunk
//	           is what makes the copy race-free.
//	relocate — a writer (Put/Upsert/Delete) whose key still has a live
//	           old-generation entry first ensures that entry's chunk is
//	           migrated — claiming it if unclaimed, waiting out the owner if
//	           busy — and only then operates on the successor. This is the
//	           linearizability linchpin: without it, a chunk owner's
//	           copy-if-absent could resurrect a value the writer had already
//	           overwritten or deleted in the successor. With it, for any key
//	           the old-generation copy strictly precedes every new-generation
//	           write of that key, so insert-if-absent always resolves in
//	           favour of the newer value. Readers never relocate: old-then-new
//	           lookup is already consistent, because retiring an old slot
//	           (MovedKey) happens only after the successor holds the entry.
//	swap     — when the last chunk completes, any operation CASes the state
//	           pointer to state{cur: successor}; the old generation, now all
//	           Empty/Tombstone/MovedKey, is garbage. Tombstones died in the
//	           copy (MigrateRange skips them), reclaiming their space exactly
//	           as the paper requires.
//
// The worst case any single operation pays is one chunk copy — either its
// own helping claim or the bounded wait in relocate — which is what the
// resize-ab experiment measures against the gate baseline's full-table
// stall.
package growt

import (
	"runtime"
	"sync/atomic"

	"dramhit/internal/folklore"
	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// Chunk migration states (migration.state values).
const (
	chunkUnclaimed uint32 = iota
	chunkBusy
	chunkDone
)

// migration is one open resize window.
type migration struct {
	next    *folklore.Table // the successor generation
	size    uint64          // old-generation slot count
	chunk   uint64          // slots per claim
	nchunks uint64
	cursor  atomic.Uint64   // next chunk index offered to helpers
	state   []atomic.Uint32 // per-chunk unclaimed/busy/done
	done    atomic.Uint64   // completed chunks; == nchunks ⇒ ready to swap
	traceID uint64          // trace identifier shared by this window's events
}

// install publishes a migration window from the generation the caller
// observed as over-full. The successor's O(n) allocation happens before the
// exclusive gate; the critical section is O(1) bookkeeping plus the three
// reserved-key side slots.
func (t *Table) install(seen *state, newCap uint64) {
	if t.st.Load() != seen {
		return // stale observation: someone else already resized
	}
	next := folklore.New(newCap)
	t.gate.Lock()
	if t.st.Load() != seen {
		t.gate.Unlock()
		return // lost the install race; drop our successor
	}
	old := seen.cur
	// Move the reserved-key side entries now, under exclusivity: for the
	// whole window the successor is authoritative for reserved keys, so
	// operations on them skip the old generation entirely.
	for _, rk := range []uint64{table.EmptyKey, table.TombstoneKey, table.MovedKey} {
		if v, ok := old.Get(rk); ok {
			next.Put(rk, v)
			old.Delete(rk)
		}
	}
	size := uint64(old.Cap())
	m := &migration{
		next:    next,
		size:    size,
		chunk:   t.chunk,
		nchunks: (size + t.chunk - 1) / t.chunk,
	}
	m.state = make([]atomic.Uint32, m.nchunks)
	if t.trace != nil {
		m.traceID = t.trace.NextID()
		t.trace.Record(m.traceID, obs.EvResize, obs.ResizeInstall, size, uint32(m.nchunks))
	}
	t.st.Store(&state{cur: old, mig: m})
	t.gate.Unlock()
}

// helpOne claims and migrates at most one chunk — the fixed helping quantum
// every operation contributes during a window.
func (t *Table) helpOne(s *state) {
	m := s.mig
	for m.done.Load() < m.nchunks {
		c := m.cursor.Add(1) - 1
		if c >= m.nchunks {
			return // every chunk claimed; stragglers are finishing
		}
		if m.state[c].CompareAndSwap(chunkUnclaimed, chunkBusy) {
			t.migrateChunk(s, c)
			return
		}
		// Claimed out of cursor order by a relocating writer; offer the next.
	}
}

// relocate guarantees key's old-generation entry, if one is live, has been
// migrated before the caller writes key in the successor. See the package
// comment for why every window writer must do this.
func (t *Table) relocate(s *state, key uint64) {
	if table.IsReservedKey(key) {
		return // reserved keys moved at install; successor is authoritative
	}
	slot, found := s.cur.Locate(key)
	if !found {
		return // absent or already migrated: nothing to order against
	}
	t.ensureChunk(s, slot/s.mig.chunk)
}

// ensureChunk returns once chunk c's migration is complete, claiming the
// copy itself when the chunk is unclaimed and otherwise waiting out the
// owner — a wait bounded by one chunk copy.
func (t *Table) ensureChunk(s *state, c uint64) {
	m := s.mig
	waited := false
	for spins := 0; ; spins++ {
		switch m.state[c].Load() {
		case chunkDone:
			return
		case chunkUnclaimed:
			if m.state[c].CompareAndSwap(chunkUnclaimed, chunkBusy) {
				t.migrateChunk(s, c)
				return
			}
		default: // busy
			if !waited {
				waited = true
				t.waits.Add(1)
			}
			if spins > 32 {
				runtime.Gosched()
			}
		}
	}
}

// migrateChunk copies chunk c (the caller holds its busy claim) and marks it
// done.
func (t *Table) migrateChunk(s *state, c uint64) {
	m := s.mig
	lo := c * m.chunk
	hi := lo + m.chunk
	if hi > m.size {
		hi = m.size
	}
	s.cur.MigrateRange(lo, hi, m.next)
	m.state[c].Store(chunkDone)
	done := m.done.Add(1)
	t.helped.Add(1)
	if t.trace != nil {
		t.trace.Record(m.traceID, obs.EvResize, obs.ResizeChunk, c,
			uint32(done*1000/m.nchunks))
	}
}

// maybeSwap retires a fully-migrated window: the state pointer CAS succeeds
// for exactly one caller (the pointer is the generation identity), making
// the successor the stable current generation.
func (t *Table) maybeSwap(s *state) {
	m := s.mig
	if m == nil || m.done.Load() < m.nchunks {
		return
	}
	if t.st.CompareAndSwap(s, &state{cur: m.next}) {
		t.grows.Add(1)
		if t.trace != nil {
			t.trace.Record(m.traceID, obs.EvResize, obs.ResizeSwap, m.size, 1000)
		}
	}
}

// drain force-completes a window: claim every remaining chunk, wait out busy
// owners, swap. Used when the successor itself crossed the fill threshold
// mid-window — the next growth must not start until this one has retired.
func (t *Table) drain(s *state) {
	m := s.mig
	for {
		c := m.cursor.Add(1) - 1
		if c >= m.nchunks {
			break
		}
		if m.state[c].CompareAndSwap(chunkUnclaimed, chunkBusy) {
			t.migrateChunk(s, c)
		}
	}
	for spins := 0; m.done.Load() < m.nchunks; spins++ {
		if spins > 32 {
			runtime.Gosched()
		}
	}
	t.maybeSwap(s)
}
