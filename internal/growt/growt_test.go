package growt

import (
	"sync"
	"testing"

	"dramhit/internal/table"
	"dramhit/internal/tabletest"
	"dramhit/internal/workload"
)

func TestConformance(t *testing.T) {
	// A resizing table never reports full, so the tight-capacity tests do
	// not apply.
	tabletest.Run(t, "Growt", func(n uint64) table.Map { return New(n) },
		tabletest.LooseCapacity())
}

func TestGrowsPastInitialCapacity(t *testing.T) {
	m := New(16)
	keys := workload.UniqueKeys(1, 10_000)
	for _, k := range keys {
		if !m.Put(k, k^1) {
			t.Fatal("Put failed on resizable table")
		}
	}
	if m.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(keys))
	}
	if m.Grows() == 0 {
		t.Fatal("no resize happened")
	}
	if m.Cap() < len(keys) {
		t.Fatalf("Cap %d below live entries %d", m.Cap(), m.Len())
	}
	for _, k := range keys {
		if v, ok := m.Get(k); !ok || v != k^1 {
			t.Fatalf("key lost across resizes: (%d, %v)", v, ok)
		}
	}
}

func TestFillStaysBounded(t *testing.T) {
	m := New(64)
	for _, k := range workload.UniqueKeys(2, 5000) {
		m.Put(k, 1)
	}
	if f := m.Fill(); f > DefaultMaxFill+0.01 {
		t.Errorf("fill %.2f exceeds threshold", f)
	}
}

func TestTombstonesReclaimedOnResize(t *testing.T) {
	m := New(64)
	// Churn: insert and delete so tombstones accumulate and force growth
	// even though live count stays small.
	keys := workload.UniqueKeys(3, 20_000)
	for i, k := range keys {
		m.Put(k, 1)
		if i >= 8 {
			m.Delete(keys[i-8]) // keep ~8 live
		}
	}
	if m.Len() != 8 {
		t.Fatalf("Len = %d, want 8", m.Len())
	}
	// Tombstones evaporate at each resize, so capacity stays modest
	// despite 20K claimed-and-deleted slots.
	if m.Cap() > 256 {
		t.Errorf("cap %d after churn; tombstones apparently migrated", m.Cap())
	}
	for _, k := range keys[len(keys)-8:] {
		if _, ok := m.Get(k); !ok {
			t.Fatal("live key lost in churn")
		}
	}
}

func TestUpsertAcrossResizes(t *testing.T) {
	m := New(16)
	keys := workload.UniqueKeys(4, 300)
	const rounds = 10
	for r := 0; r < rounds; r++ {
		for _, k := range keys {
			m.Upsert(k, 1)
		}
	}
	for _, k := range keys {
		if v, _ := m.Get(k); v != rounds {
			t.Fatalf("count %d, want %d", v, rounds)
		}
	}
}

func TestConcurrentGrowth(t *testing.T) {
	m := New(32)
	const g, perG = 8, 3000
	keys := workload.UniqueKeys(5, g*perG)
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, k := range keys[w*perG : (w+1)*perG] {
				m.Put(k, k+3)
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != g*perG {
		t.Fatalf("Len = %d, want %d", m.Len(), g*perG)
	}
	for _, k := range keys {
		if v, ok := m.Get(k); !ok || v != k+3 {
			t.Fatalf("lost key during concurrent growth: (%d, %v)", v, ok)
		}
	}
	if m.Grows() == 0 {
		t.Fatal("expected growth")
	}
}

func TestConcurrentReadersDuringGrowth(t *testing.T) {
	m := New(32)
	seed := workload.UniqueKeys(6, 100)
	for _, k := range seed {
		m.Put(k, k)
	}
	stop := make(chan struct{})
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, k := range seed {
				if v, ok := m.Get(k); !ok || v != k {
					t.Errorf("seed key corrupted during growth: (%d, %v)", v, ok)
					return
				}
			}
		}
	}()
	for _, k := range workload.UniqueKeys(7, 20_000) {
		m.Put(k, 1)
	}
	close(stop)
	readerWg.Wait()
}

func TestRangeVisitsEverything(t *testing.T) {
	// folklore.Range via growt's migration is implicitly tested above;
	// check it directly through a migration cycle with reserved keys.
	m := New(16)
	m.Put(table.EmptyKey, 11)
	m.Put(table.TombstoneKey, 22)
	for _, k := range workload.UniqueKeys(8, 500) {
		m.Put(k, 9)
	}
	if v, ok := m.Get(table.EmptyKey); !ok || v != 11 {
		t.Fatalf("reserved key lost in migration: (%d, %v)", v, ok)
	}
	if v, ok := m.Get(table.TombstoneKey); !ok || v != 22 {
		t.Fatalf("reserved key lost in migration: (%d, %v)", v, ok)
	}
}

func BenchmarkPutWithGrowth(b *testing.B) {
	m := New(64)
	keys := workload.UniqueKeys(9, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(keys[i], 1)
	}
}

func BenchmarkGetStable(b *testing.B) {
	m := New(1 << 16)
	keys := workload.UniqueKeys(10, 1<<15)
	for _, k := range keys {
		m.Put(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(keys[i&(1<<15-1)])
	}
}
