package growt

import (
	"sync"
	"testing"

	"dramhit/internal/obs"
	"dramhit/internal/workload"
)

// checkMigrationInvariants asserts, at one interruption point of an open (or
// just-closed) window, the three properties the migration protocol promises:
//
//  1. the multiset of live entries across old∪new equals the reference map
//     (same size, same keys, same values);
//  2. no key is live in both generations at once (copy-then-kill means a key
//     is visible on exactly one side of the MovedKey transition);
//  3. every reference entry is visible through the public Get, and Len
//     agrees with the reference size.
//
// Called only at quiescent points (no operation in flight), where the sums
// are exact.
func checkMigrationInvariants(t *testing.T, tb *Table, ref map[uint64]uint64) {
	t.Helper()
	s := tb.st.Load()
	if got := tb.Len(); got != len(ref) {
		t.Fatalf("Len = %d, reference %d", got, len(ref))
	}
	union := make(map[uint64]uint64, len(ref))
	s.cur.Range(func(k, v uint64) bool {
		union[k] = v
		return true
	})
	if s.mig != nil {
		s.mig.next.Range(func(k, v uint64) bool {
			if _, dup := union[k]; dup {
				t.Fatalf("key %#x live in both generations", k)
			}
			union[k] = v
			return true
		})
	}
	if len(union) != len(ref) {
		t.Fatalf("old∪new holds %d entries, reference %d", len(union), len(ref))
	}
	for k, want := range ref {
		if got, ok := union[k]; !ok || got != want {
			t.Fatalf("old∪new[%#x] = (%d,%v), want (%d,true)", k, got, ok, want)
		}
		if got, ok := tb.Get(k); !ok || got != want {
			t.Fatalf("Get(%#x) = (%d,%v), want (%d,true)", k, got, ok, want)
		}
	}
}

// openWindow seeds tb (with tombstone churn) until a migration window is
// installed, mirroring every mutation into ref, and returns the key slice
// used. Requires tb.noHelp so the window stays open.
func openWindow(t *testing.T, tb *Table, ref map[uint64]uint64, seed int64) []uint64 {
	t.Helper()
	keys := workload.UniqueKeys(seed, 4096)
	for i := 0; ; i++ {
		if i >= len(keys) {
			t.Fatal("window never opened")
		}
		k := keys[i]
		tb.Put(k, k^5)
		ref[k] = k ^ 5
		// Check before the churn delete: the Put above may have opened the
		// window, and a delete issued after install would (correctly)
		// tombstone the successor, muddying the callers' accounting.
		if tb.st.Load().mig != nil {
			return keys
		}
		if i%7 == 3 { // churn: accumulate old-generation tombstones
			tb.Delete(keys[i-1])
			delete(ref, keys[i-1])
		}
	}
}

// TestMigrationInvariantsAtEveryInterruption steps an open window one chunk
// at a time and, between chunk claims, injects a goroutine performing
// puts, upserts, and deletes that race the copy (relocation and all); after
// each join the three window invariants must hold exactly. Run under -race
// this doubles as the protocol's visibility check at every interruption
// point a helping schedule can produce.
func TestMigrationInvariantsAtEveryInterruption(t *testing.T) {
	tb := New(512, WithChunkSlots(16))
	tb.noHelp = true
	ref := make(map[uint64]uint64)
	openWindow(t, tb, ref, 4242)
	checkMigrationInvariants(t, tb, ref) // freshly installed, zero chunks done

	windowDeletes := 0
	for step := 0; ; step++ {
		s := tb.st.Load()
		if s.mig == nil {
			break
		}
		// Inject concurrent mutations racing this step's chunk copy. Keys
		// are fresh each step and (deterministically, for this fixed seed)
		// disjoint from the seeded keys, so the reference outcome after the
		// join is exact.
		base := uint64(1)<<40 + uint64(step)*8
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tb.Put(base, base)
			tb.Put(base+1, base+1)
			tb.Upsert(base, 2)
			tb.Delete(base + 1)
			tb.Put(base+2, base+2)
		}()
		// Step the migration forward one chunk while the ops run.
		if s.mig != nil {
			tb.helpOne(s)
			tb.maybeSwap(s)
		}
		wg.Wait()
		ref[base] = base + 2
		ref[base+2] = base + 2
		windowDeletes++
		checkMigrationInvariants(t, tb, ref)
	}
	// The resize completed. Tombstones from before and during the old
	// generation's lifetime were reclaimed by the copy; the only tombstones
	// the final table may carry are the deletes issued into the successor
	// while its window was open.
	s := tb.st.Load()
	if s.mig != nil {
		t.Fatal("window still open after loop exit")
	}
	if tombs := s.cur.Used() - s.cur.Len(); tombs > windowDeletes {
		t.Fatalf("%d tombstones survived the resize; only %d deletes hit the successor",
			tombs, windowDeletes)
	}
	checkMigrationInvariants(t, tb, ref)
}

// TestTombstonesNeverSurviveCompletedResize drives a window to completion
// with no deletes after install: the successor must then contain zero
// tombstones (Used == Len), i.e. all pre-window churn was reclaimed.
func TestTombstonesNeverSurviveCompletedResize(t *testing.T) {
	tb := New(256, WithChunkSlots(4))
	tb.noHelp = true
	ref := make(map[uint64]uint64)
	openWindow(t, tb, ref, 777)
	old := tb.st.Load().cur
	if old.Used() == old.Len() {
		t.Fatal("seeding produced no tombstones; churn broken")
	}
	for {
		s := tb.st.Load()
		if s.mig == nil {
			break
		}
		tb.helpOne(s)
		tb.maybeSwap(s)
		checkMigrationInvariants(t, tb, ref)
	}
	cur := tb.st.Load().cur
	if cur.Used() != cur.Len() {
		t.Fatalf("completed resize carries %d tombstones (used %d, live %d)",
			cur.Used()-cur.Len(), cur.Used(), cur.Len())
	}
}

// TestRelocationOrdersWriterAgainstCopy pins the linchpin interleaving the
// relocation rule exists for: with the key's chunk never helped, a window
// writer must itself migrate the chunk before writing the successor, so a
// put-then-delete during the window can never be resurrected by a later
// chunk copy replaying the old value.
func TestRelocationOrdersWriterAgainstCopy(t *testing.T) {
	tb := New(64, WithChunkSlots(1))
	tb.noHelp = true
	ref := make(map[uint64]uint64)
	keys := openWindow(t, tb, ref, 31337)
	// Pick a key that is still live in the old generation.
	var victim uint64
	s := tb.st.Load()
	found := false
	for _, k := range keys {
		if _, ok := ref[k]; !ok {
			continue
		}
		if _, live := s.cur.Locate(k); live {
			victim, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no live old-generation key to test against")
	}
	// Overwrite then delete through the public API mid-window.
	tb.Put(victim, 999)
	tb.Delete(victim)
	delete(ref, victim)
	if _, ok := tb.Get(victim); ok {
		t.Fatal("deleted key still visible mid-window")
	}
	// Drain the rest of the window; the delete must not be resurrected by
	// any remaining chunk copy.
	for {
		s := tb.st.Load()
		if s.mig == nil {
			break
		}
		tb.helpOne(s)
		tb.maybeSwap(s)
		if _, ok := tb.Get(victim); ok {
			t.Fatal("chunk copy resurrected a deleted key")
		}
	}
	checkMigrationInvariants(t, tb, ref)
}

// TestStatsAndObserve pins the atomic Grows/Stats accessors and the obs
// pull source through a forced doubling (satellite: the former plain-int
// grows field is now published state).
func TestStatsAndObserve(t *testing.T) {
	tb := New(16)
	reg := obs.NewWith(1024, 1)
	tb.Observe(reg)
	for _, k := range workload.UniqueKeys(9, 2000) {
		tb.Put(k, k)
	}
	st := tb.Stats()
	if st.Grows == 0 || int(st.Grows) != tb.Grows() {
		t.Fatalf("Stats.Grows = %d, Grows() = %d; want equal and nonzero", st.Grows, tb.Grows())
	}
	if st.ChunksHelped == 0 {
		t.Fatal("no chunks recorded as helped across forced doublings")
	}
	if st.Migrating {
		// Quiescent after sequential puts — any window must have closed by
		// the op that completed its last chunk.
		t.Fatal("window reported open at quiescence")
	}
	var vals map[string]float64
	for _, src := range reg.Sources() {
		if src.Name == "growt" {
			vals = src.Collect()
		}
	}
	if vals == nil {
		t.Fatal("Observe did not register the growt source")
	}
	if vals["grows"] != float64(st.Grows) {
		t.Fatalf("obs source grows = %v, want %d", vals["grows"], st.Grows)
	}
	if vals["migration_progress"] != 1.0 {
		t.Fatalf("obs migration_progress = %v at quiescence, want 1", vals["migration_progress"])
	}
	if vals["chunks_helped"] == 0 {
		t.Fatal("obs source chunks_helped is zero")
	}
	if got := int(vals["live"]); got != tb.Len() {
		t.Fatalf("obs live = %d, Len = %d", got, tb.Len())
	}
	// EvResize lifecycle: install/chunk/swap events must be in the ring.
	if tb.trace == nil {
		t.Fatal("Observe did not attach the trace ring")
	}
	var sawInstall, sawChunk, sawSwap bool
	for _, ev := range tb.trace.Snapshot() {
		if ev.Kind != obs.EvResize {
			continue
		}
		switch ev.Op {
		case obs.ResizeInstall:
			sawInstall = true
		case obs.ResizeChunk:
			sawChunk = true
		case obs.ResizeSwap:
			sawSwap = true
		}
	}
	if !sawInstall || !sawChunk || !sawSwap {
		t.Fatalf("trace ring missing resize phases: install=%v chunk=%v swap=%v",
			sawInstall, sawChunk, sawSwap)
	}
}
