package slotarr

import (
	"bytes"
	"math/bits"
	"sync"
	"sync/atomic"

	"dramhit/internal/arena"
	"dramhit/internal/hashfn"
	"dramhit/internal/simd"
	"dramhit/internal/table"
)

// BucketTable is the concurrent engine over the bucket layout (bucket.go):
// an array of one-line buckets indexing variable-length key/value records
// in a log-structured arena. It is the storage the dramhit front ends run
// on when Config.Layout is LayoutBucket, and it carries the byte-string
// API (GetBytes/PutBytes) the flat layout cannot.
//
// Concurrency model:
//
//   - Readers are lock-free. A Get loads the state pointer once, loads the
//     bucket's meta word, SWAR-matches the fingerprint bytes
//     (simd.BucketCandidates7), and resolves only candidate lanes — one
//     cache line for the whole bucket, plus stash hops on overflow.
//     Readers pin the arena epoch around record resolution so a
//     concurrently reclaimed segment cannot be unlinked under them.
//
//   - Writers take a read-lock on one of the striped gates (keyed by the
//     key's hash, so racing writers of the same key share a stripe only
//     incidentally — correctness never depends on it). Inside the gate
//     every mutation is CAS-based and the gate is only there to let the
//     resizer quiesce writers by write-locking every stripe.
//
//   - Duplicate-insert races are resolved structurally: an inserter (1)
//     checks every claimed lane and the stash chain for its key, (2)
//     targets the LOWEST free lane it observed, and (3) restarts the whole
//     operation on any CAS failure. Lanes are monotone (empty →
//     published → tombstone, never back), so two inserters of the same key
//     must collide on a CAS: if both observed the same free-lane set they
//     target the same lane; if one observed a lane the other found free,
//     the ordering of those observations forces one CAS to fail. The
//     lane-versus-stash case reduces to the same argument — reaching the
//     stash requires observing all seven lanes claimed, which
//     happens-after the other inserter's lane claim, so the stash inserter
//     finds the duplicate during its mandatory scan. Stash-versus-stash
//     duplicates collide on the head-prepend CAS. Tombstoned stash nodes
//     are never reused for the same reason fingerprint bytes are
//     write-once: two inserters reviving different dead nodes would both
//     succeed.
//
//   - Resize (grow) is an index-only stop-the-writers copy: it
//     write-locks all gates, rebuilds the bucket array — moving 8-byte
//     slot words, never record bytes, and dropping tombstones — and swaps
//     the state pointer. Readers continue on the old state throughout and
//     linearize before any post-swap write. Migration completion steps the
//     arena's reclamation epoch (arena.Advance), the hook that lets
//     fully-dead segments from pre-resize churn be unlinked.
type BucketTable struct {
	hash    func([]byte) uint64
	ar      *arena.Arena
	state   atomic.Pointer[bucketState]
	gates   [bucketGateStripes]sync.RWMutex
	growMu  sync.Mutex
	maxLoad float64
	live    atomic.Int64
	grows   atomic.Uint64
}

// bucketGateStripes is the number of writer-gate stripes. Any function of
// the key hash may pick a stripe; resize takes all of them.
const bucketGateStripes = 64

// bucketState is one immutable-size generation of the index. claimed
// counts lanes and stash nodes ever claimed in this generation (tombstones
// included — they consume space until the next rebuild); stashed counts
// stash nodes linked.
type bucketState struct {
	words   []uint64
	stash   []atomic.Pointer[stashNode]
	nb      uint64
	claimed atomic.Int64
	stashed atomic.Int64
}

func newBucketState(nb uint64) *bucketState {
	return &bucketState{
		words: make([]uint64, nb*BucketWords),
		stash: make([]atomic.Pointer[stashNode], nb),
		nb:    nb,
	}
}

// BucketConfig configures NewBucketTable. The zero value of every field
// has a usable default.
type BucketConfig struct {
	// Buckets is the initial bucket count (7 payload lanes each).
	Buckets uint64
	// Hash is the byte-string hash (default hashfn.Bytes64).
	Hash func([]byte) uint64
	// Arena is the record store; one arena may back several tables
	// (dramhitp shares one across partitions). Default: a private arena.
	Arena *arena.Arena
	// MaxLoad is the claimed-lane fraction that triggers a grow. The
	// default 0.95 deliberately sits above the 90% fill the layout is
	// benchmarked at, so high-fill operation measures the stash, not the
	// resizer. Values above 1 disable growth entirely (fixed-size
	// benchmarks; the stash absorbs all overflow).
	MaxLoad float64
}

// NewBucketTable creates an empty table.
func NewBucketTable(cfg BucketConfig) *BucketTable {
	nb := cfg.Buckets
	if nb == 0 {
		nb = 1
	}
	h := cfg.Hash
	if h == nil {
		h = hashfn.Bytes64
	}
	ar := cfg.Arena
	if ar == nil {
		ar = arena.New()
	}
	ml := cfg.MaxLoad
	if ml <= 0 {
		ml = 0.95
	}
	t := &BucketTable{hash: h, ar: ar, maxLoad: ml}
	t.state.Store(newBucketState(nb))
	return t
}

// NewBucketTableSlots sizes a default table for at least slots payload
// lanes, mirroring the flat layout's slot-count constructors.
func NewBucketTableSlots(slots uint64) *BucketTable {
	return NewBucketTable(BucketConfig{Buckets: (slots + BucketLanes - 1) / BucketLanes})
}

// Len returns the number of live entries.
func (t *BucketTable) Len() int { return int(t.live.Load()) }

// Cap returns the current payload-lane count (stash capacity is unbounded
// and excluded).
func (t *BucketTable) Cap() int { return int(t.state.Load().nb) * BucketLanes }

// Buckets returns the current bucket count.
func (t *BucketTable) Buckets() uint64 { return t.state.Load().nb }

// Grows returns how many times the table has rebuilt its index.
func (t *BucketTable) Grows() uint64 { return t.grows.Load() }

// Stashed returns the stash nodes linked in the current generation.
func (t *BucketTable) Stashed() int64 { return t.state.Load().stashed.Load() }

// Claimed returns lanes+stash nodes claimed in the current generation.
func (t *BucketTable) Claimed() int64 { return t.state.Load().claimed.Load() }

// Arena returns the backing record store.
func (t *BucketTable) Arena() *arena.Arena { return t.ar }

// HashOf returns the table's hash of key (the front ends use it to derive
// the prefetch target before the operation runs).
func (t *BucketTable) HashOf(key []byte) uint64 { return t.hash(key) }

// ScanBuckets walks the current index generation for scrape-time
// introspection (the /heatmap collectors). For every bucket it invokes
// bucket (if non-nil) with the lane occupancy — live and tombstoned lane
// counts — and the stash chain's shape: live nodes and total nodes walked
// (tombstones included, since a reader traverses them too). For every live
// record it invokes record (if non-nil) with the number of index loads a
// reader performs to reach it: 1 for a lane hit (the one-line probe), 1+n
// for the n-th node of the stash chain (bucket line plus n node hops).
// The walk reads live state with atomic loads and tolerates concurrent
// mutation; counts are a consistent-enough snapshot, like the trace ring.
func (t *BucketTable) ScanBuckets(
	bucket func(bi uint64, liveLanes, tombLanes, stashLive, stashLen int),
	record func(bi uint64, loads int),
) {
	st := t.state.Load()
	for bi := uint64(0); bi < st.nb; bi++ {
		b := bi * BucketWords
		var live, tomb int
		for lane := 0; lane < BucketLanes; lane++ {
			switch w := atomic.LoadUint64(&st.words[b+uint64(lane)+1]); w {
			case 0:
			case slotTombstone:
				tomb++
			default:
				live++
				if record != nil {
					record(bi, 1)
				}
			}
		}
		var stashLive, stashLen int
		for n := st.stash[bi].Load(); n != nil; n = n.next {
			stashLen++
			if w := n.word.Load(); w != 0 && w != slotTombstone {
				stashLive++
				if record != nil {
					record(bi, 1+stashLen)
				}
			}
		}
		if bucket != nil {
			bucket(bi, live, tomb, stashLive, stashLen)
		}
	}
}

// Prefetch touches the bucket line for hash hv on the current state — the
// model's analogue of issuing a prefetch for the one line a probe needs.
func (t *BucketTable) Prefetch(hv uint64) {
	st := t.state.Load()
	atomic.LoadUint64(&st.words[hashfn.Fastrange(hv, st.nb)*BucketWords])
}

// BucketHandle is a per-goroutine view: it owns an arena Writer (whose
// embedded Pin doubles as the goroutine's reclamation guard) and local,
// unsynchronized probe counters.
type BucketHandle struct {
	t *BucketTable
	w *arena.Writer
	// Lines counts bucket cache-line loads (one per probe attempt,
	// including CAS-failure retries); Hops counts stash-node visits. Both
	// are single-goroutine, like the handle.
	Lines uint64
	Hops  uint64
}

// NewHandle creates a handle. Handles are not safe for concurrent use;
// create one per worker goroutine.
func (t *BucketTable) NewHandle() *BucketHandle {
	return &BucketHandle{t: t, w: t.ar.NewWriter()}
}

// Get returns the value bytes stored for key. The returned slice aliases
// the arena record — valid indefinitely (the garbage collector keeps
// reclaimed segments alive while referenced) but stale once the key is
// overwritten. Zero-allocation.
func (h *BucketHandle) Get(key []byte) ([]byte, bool) {
	t := h.t
	hv := t.hash(key)
	fp := table.TagOf(hv)
	h.w.Enter(t.ar)
	defer h.w.Exit()
	st := t.state.Load()
	b := hashfn.Fastrange(hv, st.nb) * BucketWords
	h.Lines++
	meta := atomic.LoadUint64(&st.words[b])
	for m := simd.BucketCandidates7(meta, fp); m != 0; m &= m - 1 {
		lane := bits.TrailingZeros8(m)
		w := atomic.LoadUint64(&st.words[b+uint64(lane)+1])
		if slotFP(w) != uint16(fp) {
			continue // empty, tombstone, or a mid-publish other key
		}
		k, v := t.ar.Record(slotRef(w))
		if bytes.Equal(k, key) {
			return v, true
		}
	}
	if uint8(meta)&bucketStashBit != 0 {
		for n := st.stash[b/BucketWords].Load(); n != nil; n = n.next {
			h.Hops++
			w := n.word.Load()
			if slotFP(w) != uint16(fp) {
				continue
			}
			k, v := t.ar.Record(slotRef(w))
			if bytes.Equal(k, key) {
				return v, true
			}
		}
	}
	return nil, false
}

// Put stores value for key, overwriting silently. Returns whether the key
// already existed.
func (h *BucketHandle) Put(key, value []byte) (existed bool) {
	return h.mutate(key, value, nil)
}

// Mutate atomically read-modify-writes key: fn receives the current value
// (nil, false when absent) and returns the value to store. Under
// contention fn may run multiple times; exactly the final invocation's
// result is published, and its input is the record it replaced — this is
// the linearizable add the uint64 Upsert contract needs.
func (h *BucketHandle) Mutate(key []byte, fn func(old []byte, present bool) []byte) (existed bool) {
	return h.mutate(key, nil, fn)
}

func (h *BucketHandle) mutate(key, value []byte, fn func([]byte, bool) []byte) (existed bool) {
	t := h.t
	hv := t.hash(key)
	fp := table.TagOf(hv)
	g := &t.gates[hv&(bucketGateStripes-1)]
	g.RLock()
	existed, needGrow := h.mutateLocked(key, value, fn, hv, fp)
	g.RUnlock() // grow() write-locks every stripe; release ours first
	if needGrow {
		t.grow()
	}
	return existed
}

func (h *BucketHandle) mutateLocked(key, value []byte, fn func([]byte, bool) []byte, hv uint64, fp uint8) (existed, needGrow bool) {
	t := h.t
retry:
	st := t.state.Load()
	b := hashfn.Fastrange(hv, st.nb) * BucketWords
	h.Lines++
	free := -1
	for lane := 0; lane < BucketLanes; lane++ {
		w := atomic.LoadUint64(&st.words[b+uint64(lane)+1])
		if w == 0 {
			if free < 0 {
				free = lane
			}
			continue
		}
		if slotFP(w) != uint16(fp) {
			continue
		}
		k, old := t.ar.Record(slotRef(w))
		if !bytes.Equal(k, key) {
			continue
		}
		// Present in a lane: swing the slot word to a fresh record.
		nv := value
		if fn != nil {
			nv = fn(old, true)
		}
		ref := h.w.Append(key, nv)
		if atomic.CompareAndSwapUint64(&st.words[b+uint64(lane)+1], w, slotWord(fp, ref)) {
			t.ar.Retire(slotRef(w))
			return true, false
		}
		t.ar.Retire(ref) // lost the race; the fresh record is already dead
		goto retry
	}
	// Stash search. Writers read the head pointer directly rather than the
	// meta flag: the flag is set before the first prepend, but the head is
	// the ground truth.
	for n := st.stash[b/BucketWords].Load(); n != nil; n = n.next {
		h.Hops++
		w := n.word.Load()
		if slotFP(w) != uint16(fp) {
			continue
		}
		k, old := t.ar.Record(slotRef(w))
		if !bytes.Equal(k, key) {
			continue
		}
		nv := value
		if fn != nil {
			nv = fn(old, true)
		}
		ref := h.w.Append(key, nv)
		if n.word.CompareAndSwap(w, slotWord(fp, ref)) {
			t.ar.Retire(slotRef(w))
			return true, false
		}
		t.ar.Retire(ref)
		goto retry
	}
	// Absent: insert. Targeting the lowest free lane observed is what makes
	// racing same-key inserters collide on their claim CAS (see the type
	// comment); any CAS failure restarts the whole search.
	nv := value
	if fn != nil {
		nv = fn(nil, false)
	}
	ref := h.w.Append(key, nv)
	w := slotWord(fp, ref)
	if free >= 0 {
		if !atomic.CompareAndSwapUint64(&st.words[b+uint64(free)+1], 0, w) {
			t.ar.Retire(ref)
			goto retry
		}
		// Publish the metadata: fingerprint byte plus bitmap bit. Readers
		// arriving between the slot CAS and this OR still find the lane via
		// the zero-byte fold in BucketCandidates7.
		for {
			meta := atomic.LoadUint64(&st.words[b])
			if atomic.CompareAndSwapUint64(&st.words[b], meta,
				meta|metaFPByte(free, fp)|metaPublishBit(free)) {
				break
			}
		}
	} else {
		// All lanes claimed: stash. Set the stash flag before linking so a
		// reader that loads the meta word after our prepend cannot miss it.
		for {
			meta := atomic.LoadUint64(&st.words[b])
			if uint8(meta)&bucketStashBit != 0 {
				break
			}
			if atomic.CompareAndSwapUint64(&st.words[b], meta, meta|bucketStashBit) {
				break
			}
		}
		n := &stashNode{}
		n.word.Store(w)
		head := &st.stash[b/BucketWords]
		n.next = head.Load()
		if !head.CompareAndSwap(n.next, n) {
			t.ar.Retire(ref)
			goto retry
		}
		st.stashed.Add(1)
	}
	t.live.Add(1)
	if claimed := st.claimed.Add(1); float64(claimed) >= t.maxLoad*float64(st.nb*BucketLanes) {
		return false, true
	}
	return false, false
}

// Delete removes key, returning whether it was present. The lane (or stash
// node) is tombstoned, not freed — fingerprint bytes are write-once — and
// swept by the next rebuild.
func (h *BucketHandle) Delete(key []byte) bool {
	t := h.t
	hv := t.hash(key)
	fp := table.TagOf(hv)
	g := &t.gates[hv&(bucketGateStripes-1)]
	g.RLock()
	defer g.RUnlock()
retry:
	st := t.state.Load()
	b := hashfn.Fastrange(hv, st.nb) * BucketWords
	h.Lines++
	for lane := 0; lane < BucketLanes; lane++ {
		w := atomic.LoadUint64(&st.words[b+uint64(lane)+1])
		if slotFP(w) != uint16(fp) {
			continue
		}
		k, _ := t.ar.Record(slotRef(w))
		if !bytes.Equal(k, key) {
			continue
		}
		if atomic.CompareAndSwapUint64(&st.words[b+uint64(lane)+1], w, slotTombstone) {
			t.ar.Retire(slotRef(w))
			t.live.Add(-1)
			return true
		}
		goto retry
	}
	for n := st.stash[b/BucketWords].Load(); n != nil; n = n.next {
		h.Hops++
		w := n.word.Load()
		if slotFP(w) != uint16(fp) {
			continue
		}
		k, _ := t.ar.Record(slotRef(w))
		if !bytes.Equal(k, key) {
			continue
		}
		if n.word.CompareAndSwap(w, slotTombstone) {
			t.ar.Retire(slotRef(w))
			t.live.Add(-1)
			return true
		}
		goto retry
	}
	return false
}

// grow rebuilds the index: same size when churn (tombstones) caused the
// trigger, doubled until live entries sit at or below ~70% of lanes
// otherwise. Index-only — slot words move, record bytes do not.
func (t *BucketTable) grow() {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	st := t.state.Load()
	if float64(st.claimed.Load()) < t.maxLoad*float64(st.nb*BucketLanes) {
		return // another grower already rebuilt this generation
	}
	for i := range t.gates {
		t.gates[i].Lock()
	}
	live := uint64(t.live.Load())
	nb := st.nb
	for float64(live) >= 0.7*float64(nb*BucketLanes) {
		nb *= 2
	}
	ns := newBucketState(nb)
	// Writers are quiesced and the new arrays are private until the state
	// swap (a release store), so plain accesses are sound on both sides.
	migrate := func(w uint64) {
		if w == 0 || w == slotTombstone {
			return
		}
		t.insertRebuilt(ns, t.hash(t.ar.Key(slotRef(w))), w)
	}
	for bi := uint64(0); bi < st.nb; bi++ {
		base := bi * BucketWords
		for lane := 0; lane < BucketLanes; lane++ {
			migrate(st.words[base+uint64(lane)+1])
		}
		for n := st.stash[bi].Load(); n != nil; n = n.next {
			migrate(n.word.Load())
		}
	}
	t.state.Store(ns)
	t.grows.Add(1)
	for i := range t.gates {
		t.gates[i].Unlock()
	}
	// Migration completion is the reclamation hook: the old index holds no
	// refs anymore, so step the arena epoch and unlink what churn killed.
	t.ar.Advance()
}

// insertRebuilt places one live slot word into the private new state. The
// fingerprint is recovered from the word itself; only the bucket index
// needs the hash.
func (t *BucketTable) insertRebuilt(ns *bucketState, hv uint64, w uint64) {
	b := hashfn.Fastrange(hv, ns.nb) * BucketWords
	fp := uint8(slotFP(w))
	for lane := 0; lane < BucketLanes; lane++ {
		if ns.words[b+uint64(lane)+1] == 0 {
			ns.words[b+uint64(lane)+1] = w
			ns.words[b] |= metaFPByte(lane, fp) | metaPublishBit(lane)
			ns.claimed.Add(1)
			return
		}
	}
	n := &stashNode{next: ns.stash[b/BucketWords].Load()}
	n.word.Store(w)
	ns.stash[b/BucketWords].Store(n)
	ns.words[b] |= bucketStashBit
	ns.claimed.Add(1)
	ns.stashed.Add(1)
}
