package slotarr

import (
	"sync/atomic"

	"dramhit/internal/arena"
)

// This file holds the storage primitives of the second physical layout
// ("bucket", selected by Config.Layout; see BucketTable in buckettable.go
// for the engine). The flat layout above keeps keys and values inline and a
// tag sidecar in a separate allocation; the bucket layout instead makes the
// metadata co-resident with the slots, TurboHash-style, so a probe touches
// exactly one cache line:
//
//	word 0  (meta)   byte 0: control — bits 0..6 per-lane publish bitmap,
//	                          bit 7 stash-nonempty flag
//	                  bytes 1..7: H2 fingerprints of payload lanes 0..6
//	word 1..7 (slots) one payload lane each:
//	                  0 = empty, ^0 = tombstone, else
//	                  uint64(fp)<<48 | arena.Ref  (published)
//
// The fingerprint is stored twice — in its metadata byte for the SWAR match
// (simd.BucketCandidates7 against word 0) and redundantly in the slot
// word's spare high 16 bits — so a reader that takes a candidate lane can
// confirm or reject it from the slot word alone, without re-deriving
// anything, and a resize can rebuild metadata from slot words alone.
//
// Publication order is slot-word CAS first (the release edge for the arena
// record bytes), metadata CAS-OR second; the zero-byte fold in
// BucketCandidates7 keeps the window between the two false-negative-free.
// Fingerprint bytes are write-once (0 → fp): a tombstoned lane is never
// reclaimed in place, because reusing it under a different fingerprint
// would let a concurrent reader's candidate mask go stale into a false
// negative. Dead lanes are swept by the next resize, which drops
// tombstones wholesale.

const (
	// BucketWords is the size of one bucket in uint64 words — exactly one
	// cache line (table.CacheLineBytes).
	BucketWords = 8
	// BucketLanes is the number of payload slots per bucket (word 0 is
	// metadata).
	BucketLanes = 7
)

// bucketStashBit is the control-byte flag marking a non-empty stash chain.
const bucketStashBit = 0x80

// slotTombstone marks a deleted lane. A published word can never equal it:
// the fingerprint is 1..255, so a published word's high 16 bits are
// 0x0001..0x00ff, never 0xffff.
const slotTombstone = ^uint64(0)

// slotWord packs a fingerprint and an arena reference into one published
// slot word.
func slotWord(fp uint8, ref arena.Ref) uint64 {
	return uint64(fp)<<arena.RefBits | uint64(ref)
}

// slotFP extracts the full 16-bit tag field: 0x0001..0x00ff for published
// words, 0xffff for the tombstone, 0 for empty.
func slotFP(w uint64) uint16 { return uint16(w >> arena.RefBits) }

// slotRef extracts the arena reference of a published slot word.
func slotRef(w uint64) arena.Ref {
	return arena.Ref(w & (1<<arena.RefBits - 1))
}

// metaFPByte positions fp in lane's metadata byte (bytes 1..7 of the meta
// word; byte 0 is the control byte).
func metaFPByte(lane int, fp uint8) uint64 {
	return uint64(fp) << (8 * (lane + 1))
}

// metaPublishBit is lane's bit in the control byte's publish bitmap.
func metaPublishBit(lane int) uint64 { return 1 << lane }

// stashNode is one overflow entry of a bucket's per-bucket stash chain
// (Dash-style): inserts that find all seven lanes claimed prepend here
// instead of reprobing into neighbouring buckets. word carries the same
// encoding as a slot word and supports the same CAS transitions
// (overwrite, tombstone); next is immutable once the node is linked.
type stashNode struct {
	word atomic.Uint64
	next *stashNode
}
