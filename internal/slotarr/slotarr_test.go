package slotarr

import (
	"sync"
	"testing"

	"dramhit/internal/simd"
	"dramhit/internal/table"
)

func TestNewInitializesInFlight(t *testing.T) {
	a := New(16)
	for i := uint64(0); i < 16; i++ {
		if a.Key(i) != table.EmptyKey {
			t.Fatalf("slot %d key not empty", i)
		}
		if a.Value(i) != InFlightValue {
			t.Fatalf("slot %d value not in-flight", i)
		}
	}
}

func TestClaimThenPublish(t *testing.T) {
	a := New(4)
	if !a.CASKey(2, table.EmptyKey, 99) {
		t.Fatal("claim CAS failed on empty slot")
	}
	if a.CASKey(2, table.EmptyKey, 100) {
		t.Fatal("second claim succeeded")
	}
	a.StoreValue(2, 1234)
	if a.WaitValue(2) != 1234 {
		t.Fatal("published value lost")
	}
}

func TestWaitValueSpinsThroughInFlight(t *testing.T) {
	a := New(4)
	a.CASKey(0, table.EmptyKey, 5)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a.StoreValue(0, 42)
	}()
	if v := a.WaitValue(0); v != 42 {
		t.Fatalf("WaitValue = %d", v)
	}
	wg.Wait()
}

func TestAddValueWaitsOutInFlight(t *testing.T) {
	a := New(4)
	a.CASKey(0, table.EmptyKey, 5)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got := a.AddValue(0, 10); got != 17 {
			t.Errorf("AddValue = %d, want 17", got)
		}
	}()
	a.StoreValue(0, 7)
	<-done
}

func TestLineOf(t *testing.T) {
	for i, want := range []uint64{0, 0, 0, 0, 1, 1, 1, 1, 2} {
		if got := LineOf(uint64(i)); got != want {
			t.Errorf("LineOf(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestPrefetchIsHarmless(t *testing.T) {
	a := New(64)
	a.CASKey(9, table.EmptyKey, 7)
	a.StoreValue(9, 70)
	_ = a.Prefetch(9)
	if a.Key(9) != 7 || a.WaitValue(9) != 70 {
		t.Fatal("prefetch disturbed the slot")
	}
}

func TestSideSlotLifecycle(t *testing.T) {
	var s SideSlot
	if _, ok := s.Get(); ok {
		t.Fatal("fresh side slot present")
	}
	if !s.Put(5) {
		t.Fatal("first Put did not report insert")
	}
	if s.Put(6) {
		t.Fatal("second Put reported insert")
	}
	if v, ok := s.Get(); !ok || v != 6 {
		t.Fatalf("Get = (%d, %v)", v, ok)
	}
	if !s.Delete() {
		t.Fatal("Delete of present failed")
	}
	if s.Delete() {
		t.Fatal("double Delete succeeded")
	}
	// Reinsert after tombstone.
	if !s.Put(9) {
		t.Fatal("reinsert failed")
	}
	if v, _ := s.Get(); v != 9 {
		t.Fatalf("reinserted value = %d", v)
	}
}

func TestSideSlotUpsert(t *testing.T) {
	var s SideSlot
	if v, updated := s.Upsert(3); updated || v != 3 {
		t.Fatalf("first upsert = (%d, %v)", v, updated)
	}
	if v, updated := s.Upsert(4); !updated || v != 7 {
		t.Fatalf("second upsert = (%d, %v)", v, updated)
	}
	s.Delete()
	if v, updated := s.Upsert(2); updated || v != 2 {
		t.Fatalf("post-delete upsert = (%d, %v)", v, updated)
	}
}

func TestSidePairRouting(t *testing.T) {
	var p SidePair
	if p.For(5) != nil {
		t.Fatal("ordinary key routed to a side slot")
	}
	e := p.For(table.EmptyKey)
	d := p.For(table.TombstoneKey)
	if e == nil || d == nil || e == d {
		t.Fatal("reserved keys must route to two distinct side slots")
	}
	if p.Count() != 0 {
		t.Fatal("fresh pair count != 0")
	}
	e.Put(1)
	d.Put(2)
	if p.Count() != 2 {
		t.Fatalf("count = %d", p.Count())
	}
}

func TestSideSlotConcurrentUpserts(t *testing.T) {
	var s SideSlot
	var wg sync.WaitGroup
	const g, n = 4, 1000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n; j++ {
				s.Upsert(1)
			}
		}()
	}
	wg.Wait()
	if v, _ := s.Get(); v != g*n {
		t.Fatalf("count = %d, want %d", v, g*n)
	}
}

func TestLoadLineSnapshot(t *testing.T) {
	a := New(8)
	a.CASKey(5, table.EmptyKey, 50)
	a.StoreValue(5, 500)
	a.CASKey(6, table.EmptyKey, 60)
	// slot 6 stays in-flight: LoadLine must surface InFlightValue, not spin.
	lv, base, valid := a.LoadLine(6)
	if base != 4 || valid != 4 {
		t.Fatalf("base=%d valid=%d, want 4,4", base, valid)
	}
	if lv.Keys[0] != table.EmptyKey || lv.Keys[1] != 50 || lv.Keys[2] != 60 || lv.Keys[3] != table.EmptyKey {
		t.Fatalf("keys = %v", lv.Keys)
	}
	if lv.Vals[1] != 500 {
		t.Fatalf("value lane 1 = %d, want 500", lv.Vals[1])
	}
	if lv.Vals[2] != InFlightValue {
		t.Fatalf("in-flight slot leaked value %d", lv.Vals[2])
	}
	// Any index within the line yields the same snapshot bounds.
	if _, b2, v2 := a.LoadLine(4); b2 != 4 || v2 != 4 {
		t.Fatalf("LoadLine(4) bounds (%d,%d)", b2, v2)
	}
}

func TestLoadLinePartialTail(t *testing.T) {
	// A 6-slot array's second line holds only 2 real slots; the padding
	// lanes must be poisoned so no probe key or EmptyKey can match them.
	a := New(6)
	a.CASKey(4, table.EmptyKey, 44)
	a.StoreValue(4, 4)
	lv, base, valid := a.LoadLine(5)
	if base != 4 || valid != 2 {
		t.Fatalf("base=%d valid=%d, want 4,2", base, valid)
	}
	if lv.Keys[0] != 44 || lv.Keys[1] != table.EmptyKey {
		t.Fatalf("real lanes = %v", lv.Keys[:2])
	}
	for l := valid; l < table.SlotsPerCacheLine; l++ {
		if lv.Keys[l] != table.TombstoneKey {
			t.Fatalf("padding lane %d key = %#x, want tombstone poison", l, lv.Keys[l])
		}
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestLoadKeys4MovedLanesAreOpaque(t *testing.T) {
	// A migrated slot carries table.MovedKey in its key word. The SWAR probe
	// kernel must treat such a lane exactly like a tombstone: it matches
	// neither the probed key (the live copy is in the successor) nor the
	// empty sentinel (the probe chain must continue past it).
	a := New(8)
	// Line 0: [moved, live 77, empty, tombstone].
	a.CASKey(0, table.EmptyKey, 42)
	a.StoreValue(0, 1)
	if !a.CASKey(0, 42, table.MovedKey) {
		t.Fatal("retire CAS failed")
	}
	a.CASKey(1, table.EmptyKey, 77)
	a.StoreValue(1, 7)
	a.CASKey(3, table.EmptyKey, 9)
	a.StoreValue(3, 9)
	a.CASKey(3, 9, table.TombstoneKey)

	l0, l1, l2, l3, _, _ := a.LoadKeys4(0)
	if l0 != table.MovedKey {
		t.Fatalf("lane 0 = %#x, want MovedKey", l0)
	}
	// Probing the retired key must run past the moved lane to the empty slot.
	if lane, res := simd.ProbeLine4(l0, l1, l2, l3, 42, table.EmptyKey, 0); res != simd.HitEmpty || lane != 2 {
		t.Fatalf("probe for retired key = (lane %d, res %d), want (2, HitEmpty)", lane, res)
	}
	// The live lane is still found with the moved lane ahead of it.
	if lane, res := simd.ProbeLine4(l0, l1, l2, l3, 77, table.EmptyKey, 0); res != simd.HitKey || lane != 1 {
		t.Fatalf("probe past moved lane = (lane %d, res %d), want (1, HitKey)", lane, res)
	}
	// A full line of moved lanes is a Miss, not a chain terminator.
	m := table.MovedKey
	if _, res := simd.ProbeLine4(m, m, m, m, 42, table.EmptyKey, 0); res != simd.Miss {
		t.Fatalf("all-moved line = res %d, want Miss", res)
	}
}
