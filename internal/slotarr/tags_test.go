package slotarr

import (
	"math/rand"
	"sync"
	"testing"

	"dramhit/internal/hashfn"
	"dramhit/internal/simd"
	"dramhit/internal/table"
)

func TestNewTaggedLayout(t *testing.T) {
	// Sizes that leave a partial final line: tags must cover the padding.
	for _, n := range []uint64{1, 3, 4, 5, 7, 8, 9, 63, 64, 65} {
		a := NewTagged(n)
		if !a.HasTags() {
			t.Fatalf("n=%d: HasTags false", n)
		}
		padded := uint64(len(a.words)) / 2
		if want := (padded + simd.TagLanes - 1) / simd.TagLanes; uint64(len(a.tags)) != want {
			t.Fatalf("n=%d: %d tag words, want %d", n, len(a.tags), want)
		}
		for i := uint64(0); i < padded; i++ {
			if a.Tag(i) != 0 {
				t.Fatalf("n=%d slot %d: fresh tag %d", n, i, a.Tag(i))
			}
		}
	}
	if New(8).HasTags() {
		t.Fatal("New reported tags")
	}
}

func TestPublishTagUntaggedNoop(t *testing.T) {
	a := New(8)
	a.PublishTag(3, 7) // must not panic
	if a.Tag(3) != 0 {
		t.Fatal("untagged array returned a tag")
	}
}

func TestPublishTagAndLineCandidates(t *testing.T) {
	a := NewTagged(16)
	a.PublishTag(0, 7)
	a.PublishTag(5, 7)
	a.PublishTag(6, 9)
	// Line 0 (slots 0-3): slot 0 matches tag 7, slots 1-3 are zero.
	if m := a.LineCandidates(0, 7); m != 0b1111 {
		t.Fatalf("line 0 tag 7: %04b", m)
	}
	// Line 1 (slots 4-7): slot 4 zero, slot 5 matches, slot 6 mismatches, slot 7 zero.
	if m := a.LineCandidates(4, 7); m != 0b1011 {
		t.Fatalf("line 1 tag 7: %04b", m)
	}
	if m := a.LineCandidates(4, 9); m != 0b1101 {
		t.Fatalf("line 1 tag 9: %04b", m)
	}
	// A probe for an unrelated tag still must check the zero lanes.
	if m := a.LineCandidates(4, 200); m != 0b1001 {
		t.Fatalf("line 1 tag 200: %04b", m)
	}
}

// TestTagPropertyRandomOps is the satellite property test: after a
// randomized op sequence (concurrent claim/publish/tombstone under -race),
// every published slot's tag byte agrees with its key's fingerprint, and
// every empty or tombstoned slot's tag is either still 0 or the stale
// fingerprint of the key that once claimed it (nonmatching-safe: the key
// kernel re-checks every candidate lane, so a stale tag can only cost a
// false positive, never a wrong answer).
func TestTagPropertyRandomOps(t *testing.T) {
	const size = 256
	const workers = 8
	const opsPerWorker = 4000
	a := NewTagged(size)
	hash := hashfn.City64

	// claimed[i] records the key that won slot i's claim CAS (0 = never
	// claimed). Written only by the winning worker, read after Wait.
	var claimed [size]uint64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < opsPerWorker; n++ {
				key := rng.Uint64()%512 + 1 // avoid reserved keys
				h := hash(key)
				i := hashfn.Fastrange(h, size)
				switch rng.Intn(4) {
				case 0, 1: // insert attempt: claim, publish tag, publish value
					if a.CASKey(i, table.EmptyKey, key) {
						claimed[i] = key
						a.PublishTag(i, table.TagOf(h))
						a.StoreValue(i, key*3)
					}
				case 2: // read through the filter path
					base := i &^ (table.SlotsPerCacheLine - 1)
					cand := a.LineCandidates(base, table.TagOf(h))
					if a.Key(i) == key && cand>>(i-base)&1 == 0 {
						t.Errorf("false negative: slot %d holds key %d but lane not candidate", i, key)
						return
					}
				case 3: // tombstone whatever won the slot
					k := a.Key(i)
					if k != table.EmptyKey && k != table.TombstoneKey {
						a.CASKey(i, k, table.TombstoneKey)
					}
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	for i := uint64(0); i < size; i++ {
		tag := a.Tag(i)
		switch k := a.Key(i); k {
		case table.EmptyKey:
			if tag != 0 {
				t.Fatalf("slot %d empty but tag %d", i, tag)
			}
		case table.TombstoneKey:
			// Tag is 0 (tombstoned inside the claim→publish window) or the
			// stale fingerprint of the claiming key.
			if tag != 0 && claimed[i] != 0 && tag != table.TagOf(hash(claimed[i])) {
				t.Fatalf("slot %d tombstoned, tag %d does not match claimer %d", i, tag, claimed[i])
			}
		default:
			want := table.TagOf(hash(k))
			if tag != 0 && tag != want {
				t.Fatalf("slot %d key %d: tag %d, want %d", i, k, tag, want)
			}
			// All workers that claim have published by Wait, so live slots
			// must have their fingerprint by now.
			if tag == 0 {
				t.Fatalf("slot %d key %d: tag never published", i, k)
			}
		}
	}
}

// TestPublishTagConcurrentLanes hammers all eight lanes of a single tag
// word from separate goroutines: the CAS-merge must not lose any lane.
func TestPublishTagConcurrentLanes(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		a := NewTagged(8)
		var wg sync.WaitGroup
		for lane := uint64(0); lane < 8; lane++ {
			wg.Add(1)
			go func(l uint64) {
				defer wg.Done()
				a.PublishTag(l, uint8(l)+1)
			}(lane)
		}
		wg.Wait()
		for lane := uint64(0); lane < 8; lane++ {
			if got := a.Tag(lane); got != uint8(lane)+1 {
				t.Fatalf("iter %d lane %d: tag %d", iter, lane, got)
			}
		}
	}
}
