package slotarr

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"dramhit/internal/hashfn"
	"dramhit/internal/simd"
	"dramhit/internal/table"
)

func TestBucketCandidates7(t *testing.T) {
	// Build a meta word by hand: control byte 0x05, lane fingerprints
	// 0x11 0x22 0x11 0x00 0x33 0x00 0x11 for lanes 0..6.
	var meta uint64 = 0x05
	fps := []uint8{0x11, 0x22, 0x11, 0x00, 0x33, 0x00, 0x11}
	for lane, fp := range fps {
		meta |= metaFPByte(lane, fp)
	}
	// Matching 0x11 must flag lanes 0, 2, 6 plus the zero lanes 3, 5 (the
	// false-negative-free fold), and never the control byte.
	got := simd.BucketCandidates7(meta, 0x11)
	want := uint8(1<<0 | 1<<2 | 1<<6 | 1<<3 | 1<<5)
	if got != want {
		t.Fatalf("candidates = %07b, want %07b", got, want)
	}
	// A fingerprint present nowhere still flags only the zero lanes.
	if got := simd.BucketCandidates7(meta, 0x77); got != 1<<3|1<<5 {
		t.Fatalf("absent fp candidates = %07b", got)
	}
	// A full bucket with no match yields an empty mask — the one-line miss.
	var full uint64 = 0xff
	for lane := 0; lane < BucketLanes; lane++ {
		full |= metaFPByte(lane, 0x44)
	}
	if got := simd.BucketCandidates7(full, 0x55); got != 0 {
		t.Fatalf("full-bucket miss mask = %07b, want 0", got)
	}
}

func TestSlotWordEncoding(t *testing.T) {
	for _, fp := range []uint8{1, 0x7f, 0xff} {
		w := slotWord(fp, 0x0000_1234_5678_9abc)
		if slotFP(w) != uint16(fp) || uint64(slotRef(w)) != 0x0000_1234_5678_9abc {
			t.Fatalf("round trip failed for fp %#x", fp)
		}
		if w == 0 || w == slotTombstone {
			t.Fatalf("published word %#x collides with a sentinel", w)
		}
	}
	if slotFP(slotTombstone) == uint16(0xff) {
		t.Fatal("tombstone tag field collides with a legal fingerprint")
	}
}

func TestBucketBasicBytes(t *testing.T) {
	bt := NewBucketTableSlots(64)
	h := bt.NewHandle()
	if _, ok := h.Get([]byte("absent")); ok {
		t.Fatal("empty table reported a key")
	}
	if h.Put([]byte("k1"), []byte("v1")) {
		t.Fatal("first Put reported existing")
	}
	if v, ok := h.Get([]byte("k1")); !ok || string(v) != "v1" {
		t.Fatalf("Get = (%q, %v)", v, ok)
	}
	if !h.Put([]byte("k1"), []byte("v2-longer-than-before")) {
		t.Fatal("overwrite reported new")
	}
	if v, _ := h.Get([]byte("k1")); string(v) != "v2-longer-than-before" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if bt.Len() != 1 {
		t.Fatalf("Len = %d", bt.Len())
	}
	if !h.Delete([]byte("k1")) || h.Delete([]byte("k1")) {
		t.Fatal("delete semantics broken")
	}
	if _, ok := h.Get([]byte("k1")); ok {
		t.Fatal("deleted key visible")
	}
	if h.Put([]byte("k1"), []byte("back")) {
		t.Fatal("reinsert after delete reported existing")
	}
	if v, _ := h.Get([]byte("k1")); string(v) != "back" {
		t.Fatal("reinsert lost")
	}
}

// TestBucketStashOverflow pins the overflow path: a single bucket with
// growth disabled absorbs far more than its 7 lanes via the stash chain,
// and every key stays reachable, including after deletes.
func TestBucketStashOverflow(t *testing.T) {
	bt := NewBucketTable(BucketConfig{Buckets: 1, MaxLoad: 1000})
	h := bt.NewHandle()
	const n = 64
	for i := 0; i < n; i++ {
		h.Put([]byte(fmt.Sprintf("key-%02d", i)), []byte{byte(i)})
	}
	if bt.Grows() != 0 {
		t.Fatal("growth ran despite MaxLoad > 1")
	}
	if bt.Stashed() < n-BucketLanes {
		t.Fatalf("stashed = %d, want >= %d", bt.Stashed(), n-BucketLanes)
	}
	for i := 0; i < n; i++ {
		v, ok := h.Get([]byte(fmt.Sprintf("key-%02d", i)))
		if !ok || v[0] != byte(i) {
			t.Fatalf("key %d lost in stash (%v)", i, ok)
		}
	}
	// Delete half (both lane and stash residents), verify the rest.
	for i := 0; i < n; i += 2 {
		if !h.Delete([]byte(fmt.Sprintf("key-%02d", i))) {
			t.Fatalf("delete of stashed key %d failed", i)
		}
	}
	for i := 0; i < n; i++ {
		_, ok := h.Get([]byte(fmt.Sprintf("key-%02d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d presence = %v, want %v", i, ok, want)
		}
	}
	if bt.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", bt.Len(), n/2)
	}
}

// TestBucketGrowth starts tiny and forces repeated index rebuilds; every
// key must survive every migration, and the rebuild must sweep tombstones.
func TestBucketGrowth(t *testing.T) {
	bt := NewBucketTable(BucketConfig{Buckets: 2})
	h := bt.NewHandle()
	const n = 500
	key := func(i int) []byte { return []byte(fmt.Sprintf("grow-key-%04d", i)) }
	for i := 0; i < n; i++ {
		h.Put(key(i), []byte(fmt.Sprintf("val-%d", i)))
		if i%3 == 0 {
			h.Delete(key(i)) // interleave churn so rebuilds sweep tombstones
		}
	}
	if bt.Grows() < 2 {
		t.Fatalf("grows = %d, want >= 2", bt.Grows())
	}
	for i := 0; i < n; i++ {
		v, ok := h.Get(key(i))
		if want := i%3 != 0; ok != want {
			t.Fatalf("key %d presence = %v, want %v", i, ok, want)
		}
		if ok && string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %d value corrupted across resize: %q", i, v)
		}
	}
	// The current generation must hold no tombstones: claimed == live.
	if bt.Claimed() < int64(bt.Len()) {
		t.Fatalf("claimed %d < live %d", bt.Claimed(), bt.Len())
	}
}

// TestBucketGetZeroAlloc pins the acceptance criterion: the byte-KV Get
// path allocates nothing.
func TestBucketGetZeroAlloc(t *testing.T) {
	bt := NewBucketTableSlots(1024)
	h := bt.NewHandle()
	key := []byte("the-key")
	h.Put(key, []byte("the-value"))
	var sink byte
	allocs := testing.AllocsPerRun(200, func() {
		v, ok := h.Get(key)
		if !ok {
			t.Fatal("key lost")
		}
		sink += v[0]
	})
	if allocs != 0 {
		t.Fatalf("Get allocated %v times per run", allocs)
	}
	_ = sink
}

// TestBucketMutateExact checks the read-add-CAS loop under concurrency:
// G goroutines each add 1 to the same counters N times; totals must be
// exact (the k-mer counting contract).
func TestBucketMutateExact(t *testing.T) {
	bt := NewBucketTable(BucketConfig{Buckets: 4})
	const g, n, nkeys = 6, 250, 10
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := bt.NewHandle()
			var vb [8]byte
			for i := 0; i < n; i++ {
				for k := 0; k < nkeys; k++ {
					key := []byte(fmt.Sprintf("ctr-%d", k))
					h.Mutate(key, func(old []byte, present bool) []byte {
						var c uint64
						if present {
							c = binary.LittleEndian.Uint64(old)
						}
						binary.LittleEndian.PutUint64(vb[:], c+1)
						return vb[:]
					})
				}
			}
		}()
	}
	wg.Wait()
	h := bt.NewHandle()
	for k := 0; k < nkeys; k++ {
		v, ok := h.Get([]byte(fmt.Sprintf("ctr-%d", k)))
		if !ok || binary.LittleEndian.Uint64(v) != g*n {
			t.Fatalf("counter %d = %d, want %d", k, binary.LittleEndian.Uint64(v), g*n)
		}
	}
}

// TestBucketConcurrentAcrossResize races byte-KV mutators and readers while
// the table grows from 1 bucket through multiple rebuilds — the racing-
// mutators-across-a-resize acceptance case, meaningful under -race.
func TestBucketConcurrentAcrossResize(t *testing.T) {
	bt := NewBucketTable(BucketConfig{Buckets: 1})
	const g, perG = 4, 300
	key := func(w, i int) []byte { return []byte(fmt.Sprintf("rz-%d-%04d", w, i)) }
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := bt.NewHandle()
			for i := 0; i < perG; i++ {
				h.Put(key(w, i), bytes.Repeat([]byte{byte(w)}, 1+i%32))
				if i%5 == 0 {
					h.Delete(key(w, i))
				}
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		h := bt.NewHandle()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for w := 0; w < g; w++ {
				for i := 0; i < perG; i += 17 {
					if v, ok := h.Get(key(w, i)); ok {
						if len(v) != 1+i%32 || v[0] != byte(w) {
							t.Errorf("torn read: key(%d,%d) -> %d bytes", w, i, len(v))
							return
						}
					}
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if bt.Grows() < 1 {
		t.Fatalf("expected at least one grow, got %d", bt.Grows())
	}
	h := bt.NewHandle()
	for w := 0; w < g; w++ {
		for i := 0; i < perG; i++ {
			v, ok := h.Get(key(w, i))
			if want := i%5 != 0; ok != want {
				t.Fatalf("key(%d,%d) presence = %v, want %v", w, i, ok, want)
			}
			if ok && (len(v) != 1+i%32 || v[0] != byte(w)) {
				t.Fatalf("key(%d,%d) corrupted", w, i)
			}
		}
	}
}

// TestBucketMapVsReference drives the uint64 adapter against a Go map,
// mixing all four ops over a small key space with reserved keys included.
func TestBucketMapVsReference(t *testing.T) {
	m := NewBucketMap(256)
	ref := make(map[uint64]uint64)
	rng := hashfn.City64
	state := uint64(1)
	next := func(n uint64) uint64 { state = rng(state); return state % n }
	for i := 0; i < 30000; i++ {
		k := next(200)
		switch k % 17 {
		case 0:
			k = table.TombstoneKey
		case 1:
			k = table.EmptyKey
		case 2:
			k = table.MovedKey
		}
		switch next(10) {
		case 0, 1, 2, 3:
			v := next(1 << 40)
			m.Put(k, v)
			ref[k] = v
		case 4, 5:
			got, _ := m.Upsert(k, 7)
			ref[k] += 7
			if got != ref[k] {
				t.Fatalf("op %d: Upsert(%d) = %d, want %d", i, k, got, ref[k])
			}
		case 6:
			got := m.Delete(k)
			if _, want := ref[k]; got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		default:
			got, ok := m.Get(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, k, got, ok, want, wok)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, ref %d", m.Len(), len(ref))
	}
}

// TestBucketProbeCost pins the headline property at the engine level: at
// 75% fill, a positive lookup costs about one bucket line and almost no
// stash hops.
func TestBucketProbeCost(t *testing.T) {
	const n = 7000 // 75% of 1000 buckets * 7 lanes ≈ 5250; use 1000 buckets
	bt := NewBucketTable(BucketConfig{Buckets: 1000, MaxLoad: 1000})
	h := bt.NewHandle()
	keys := make([][]byte, 0, 5250)
	for i := 0; i < 5250; i++ {
		k := []byte(fmt.Sprintf("probe-key-%05d", i))
		keys = append(keys, k)
		h.Put(k, []byte("v"))
	}
	_ = n
	h.Lines, h.Hops = 0, 0
	for _, k := range keys {
		if _, ok := h.Get(k); !ok {
			t.Fatal("key lost")
		}
	}
	ops := float64(len(keys))
	linesPerOp := (float64(h.Lines) + float64(h.Hops)) / ops
	if linesPerOp > 1.2 {
		t.Fatalf("positive lookup cost %.3f lines/op at 75%% fill, want <= 1.2", linesPerOp)
	}
}
