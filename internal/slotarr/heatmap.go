package slotarr

import (
	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// FlatHeatmapRegions is the default region_fill resolution of the flat
// walker: the slot range is split into this many equal consecutive regions.
const FlatHeatmapRegions = 256

// FlatHeatmap builds the standard open-addressing introspection heatmap
// over a flat Array: spatial occupancy (region fill), the probe-depth
// distribution in slots, and the probe-line distribution (cache lines a
// reader touches to reach each live key, 1 = home line). home maps a stored
// key to its home slot — the walker re-derives displacement from the keys
// themselves, so it needs no write-path bookkeeping. Scrape-time only; reads
// race live writers benignly (atomic key loads, like the scrapers).
func FlatHeatmap(a *Array, home func(key uint64) uint64, regions int) obs.Heatmap {
	return FlatHeatmapMulti([]*Array{a},
		func(_ int, key uint64) uint64 { return home(key) }, regions)
}

// FlatHeatmapMulti is FlatHeatmap over the concatenation of several arrays
// (the partitioned table's per-partition slot ranges, in partition order):
// one Regions row spans the combined slot space, and the probe distributions
// merge across partitions. home receives the partition index alongside the
// key and returns a partition-local home slot; displacement is cyclic within
// each partition, matching the partitioned probe paths.
func FlatHeatmapMulti(as []*Array, home func(part int, key uint64) uint64, regions int) obs.Heatmap {
	var total uint64
	for _, a := range as {
		total += a.Size()
	}
	if regions <= 0 {
		regions = FlatHeatmapRegions
	}
	if uint64(regions) > total {
		regions = int(total)
	}
	regionLive := make([]uint64, regions)
	depth := obs.DistBuilder{}
	lines := obs.DistBuilder{}
	var live, tombs uint64
	off := uint64(0)
	for pi, a := range as {
		size := a.Size()
		nlines := LineOf(size-1) + 1
		for i := uint64(0); i < size; i++ {
			k := a.Key(i)
			if k == table.EmptyKey {
				continue
			}
			if table.IsReservedKey(k) {
				tombs++
				continue
			}
			live++
			regionLive[(off+i)*uint64(regions)/total]++
			h := home(pi, k)
			depth.Add((i + size - h) % size)
			lines.Add((LineOf(i)+nlines-LineOf(h))%nlines + 1)
		}
		off += size
	}
	hm := obs.Heatmap{
		Kind:    "flat",
		Regions: make([]float64, regions),
		Dists: []obs.HeatDist{
			depth.Build("probe_depth_slots"),
			lines.Build("probe_lines"),
		},
		Gauges: map[string]float64{
			"slots":      float64(total),
			"live":       float64(live),
			"tombstones": float64(tombs),
			"fill":       float64(live+tombs) / float64(total),
		},
	}
	if len(as) > 1 {
		hm.Gauges["partitions"] = float64(len(as))
	}
	for r := range hm.Regions {
		lo := uint64(r) * total / uint64(regions)
		hi := uint64(r+1) * total / uint64(regions)
		if hi > lo {
			hm.Regions[r] = float64(regionLive[r]) / float64(hi-lo)
		}
	}
	return hm
}

// BucketHeatmap builds the bucket-layout introspection heatmap over a
// BucketTable: region fill over the bucket range (live lanes per bucket /
// BucketLanes), the index-loads-per-record distribution (1 = the one-line
// probe the layout exists for; 1+n = a record on the n-th stash node), the
// stash-chain-length distribution over buckets, and — when the table's
// arena is non-nil — per-segment utilization of the record store.
func BucketHeatmap(t *BucketTable, regions int) obs.Heatmap {
	return BucketHeatmapMulti([]*BucketTable{t}, regions)
}

// BucketHeatmapMulti is BucketHeatmap over several bucket tables
// (partitions, in partition order), concatenating their bucket ranges into
// one Regions row and merging the distributions. The tables must share one
// arena (the partitioned table's construction) or be a single table: the
// arena section is scraped once, from the first table's arena.
func BucketHeatmapMulti(ts []*BucketTable, regions int) obs.Heatmap {
	var total uint64
	for _, t := range ts {
		total += t.Buckets()
	}
	if regions <= 0 {
		regions = FlatHeatmapRegions
	}
	if uint64(regions) > total {
		regions = int(total)
	}
	regionLive := make([]uint64, regions)
	loads := obs.DistBuilder{}
	chains := obs.DistBuilder{}
	var live, tombs, stashLive, stashLen, grows, entries uint64
	off := uint64(0)
	for _, t := range ts {
		nb := t.Buckets()
		t.ScanBuckets(
			func(bi uint64, liveLanes, tombLanes, sLive, sLen int) {
				live += uint64(liveLanes)
				tombs += uint64(tombLanes)
				stashLive += uint64(sLive)
				stashLen += uint64(sLen)
				// Clamp: a partition that grew between sizing and scanning
				// may present more buckets than the snapshot budgeted for.
				if ri := (off + bi) * uint64(regions) / total; ri < uint64(regions) {
					regionLive[ri] += uint64(liveLanes)
				} else {
					regionLive[regions-1] += uint64(liveLanes)
				}
				chains.Add(uint64(sLen))
			},
			func(bi uint64, n int) { loads.Add(uint64(n)) },
		)
		grows += t.Grows()
		entries += uint64(t.Len())
		off += nb
	}
	hm := obs.Heatmap{
		Kind:    "bucket",
		Regions: make([]float64, regions),
		Dists: []obs.HeatDist{
			loads.Build("probe_loads"),
			chains.Build("stash_chain_len"),
		},
		Gauges: map[string]float64{
			"buckets":      float64(total),
			"lanes":        float64(total * BucketLanes),
			"live_lanes":   float64(live),
			"tomb_lanes":   float64(tombs),
			"stash_live":   float64(stashLive),
			"stash_nodes":  float64(stashLen),
			"fill":         float64(live+tombs) / float64(total*BucketLanes),
			"grows":        float64(grows),
			"live_entries": float64(entries),
		},
	}
	if len(ts) > 1 {
		hm.Gauges["partitions"] = float64(len(ts))
	}
	for r := range hm.Regions {
		lo := uint64(r) * total / uint64(regions)
		hi := uint64(r+1) * total / uint64(regions)
		if hi > lo {
			hm.Regions[r] = float64(regionLive[r]) / float64((hi-lo)*BucketLanes)
		}
	}
	if ar := ts[0].Arena(); ar != nil {
		segs := ar.SegmentStats()
		util := obs.DistBuilder{}
		var used, dead uint64
		for _, s := range segs {
			used += s.Used
			dead += s.Dead
			if s.Cap > 0 {
				util.Add((s.Used - s.Dead) * 100 / s.Cap)
			}
		}
		hm.Dists = append(hm.Dists, util.Build("segment_utilization_pct"))
		hm.Gauges["segments"] = float64(len(segs))
		hm.Gauges["arena_bytes_used"] = float64(used)
		hm.Gauges["arena_bytes_dead"] = float64(dead)
		hm.Gauges["arena_segments_freed"] = float64(ar.Freed())
	}
	return hm
}
