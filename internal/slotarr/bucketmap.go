package slotarr

import (
	"encoding/binary"

	"dramhit/internal/table"
)

// BucketMap adapts BucketTable to the uint64 table.Map contract: keys and
// values travel as 8-byte little-endian records through the arena. The
// reserved key values (EmptyKey, TombstoneKey, MovedKey) need no special
// casing — the bucket layout has no in-band key sentinels, so they are
// ordinary byte strings.
type BucketMap struct {
	t *BucketTable
	h *BucketHandle
}

// NewBucketMap creates a bucket-layout table sized for at least slots
// entries, wrapped in the synchronous uint64 view.
func NewBucketMap(slots uint64) *BucketMap {
	t := NewBucketTableSlots(slots)
	return &BucketMap{t: t, h: t.NewHandle()}
}

// NewBucketMapOf wraps an existing engine in the synchronous uint64 view —
// the hook for conformance and fuzz harnesses that need a hand-built
// configuration (for example Buckets:1 with growth disabled, which forces
// every insert past lane 7 onto the stash chain).
func NewBucketMapOf(t *BucketTable) *BucketMap {
	return &BucketMap{t: t, h: t.NewHandle()}
}

// Clone gives a concurrent goroutine its own handle over the shared table
// (the tabletest Cloner contract).
func (m *BucketMap) Clone() table.Map {
	return &BucketMap{t: m.t, h: m.t.NewHandle()}
}

// Table exposes the underlying engine (benchmarks read its probe stats).
func (m *BucketMap) Table() *BucketTable { return m.t }

// Handle exposes the map's own view (benchmarks read its Lines/Hops).
func (m *BucketMap) Handle() *BucketHandle { return m.h }

// Get implements table.Map.
func (m *BucketMap) Get(key uint64) (uint64, bool) {
	var kb [8]byte
	binary.LittleEndian.PutUint64(kb[:], key)
	v, ok := m.h.Get(kb[:])
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint64(v), true
}

// Put implements table.Map. The engine resizes, so Put never reports full.
func (m *BucketMap) Put(key, value uint64) bool {
	var kb, vb [8]byte
	binary.LittleEndian.PutUint64(kb[:], key)
	binary.LittleEndian.PutUint64(vb[:], value)
	m.h.Put(kb[:], vb[:])
	return true
}

// Upsert implements table.Map: an atomic add via the engine's
// read-modify-write CAS loop, so concurrent upserts of one key never lose
// increments.
func (m *BucketMap) Upsert(key, delta uint64) (uint64, bool) {
	var kb, vb [8]byte
	binary.LittleEndian.PutUint64(kb[:], key)
	var res uint64
	m.h.Mutate(kb[:], func(old []byte, present bool) []byte {
		res = delta
		if present {
			res = binary.LittleEndian.Uint64(old) + delta
		}
		binary.LittleEndian.PutUint64(vb[:], res)
		return vb[:]
	})
	return res, true
}

// Delete implements table.Map.
func (m *BucketMap) Delete(key uint64) bool {
	var kb [8]byte
	binary.LittleEndian.PutUint64(kb[:], key)
	return m.h.Delete(kb[:])
}

// Len implements table.Map.
func (m *BucketMap) Len() int { return m.t.Len() }

// Cap implements table.Map.
func (m *BucketMap) Cap() int { return m.t.Cap() }
