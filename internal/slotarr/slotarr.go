// Package slotarr implements the shared storage substrate of every
// open-addressing table in this repository: a single contiguous array of
// 16-byte key/value slots (four per cache line, as in the paper), the
// reserved-key side slots, and the atomicity protocol.
//
// # Atomicity protocol
//
// The paper relies on a double-word compare-and-swap (cmpxchg16b) to make
// the insertion of a ≤16-byte tuple atomic. Go exposes no 128-bit CAS, so we
// substitute a claim-then-publish protocol with identical reader-visible
// semantics:
//
//   - every value word is initialized to InFlightValue;
//   - an insert claims the slot with an 8-byte CAS on the key word
//     (EmptyKey → key) and then atomically stores the value;
//   - a reader loads the key, and on a match loads the value; if it observes
//     InFlightValue the racing insert has claimed but not yet published, so
//     the reader spins briefly (the window is two instructions wide).
//
// Key words only ever transition EmptyKey → key → TombstoneKey, and
// tombstoned slots are never reused (space is reclaimed on resize only,
// paper §3 "Operations"), which is what makes the unsynchronized read path
// linearizable. InFlightValue is reserved: callers must not store it as a
// value (the tables' public API documents this).
package slotarr

import (
	"runtime"
	"sync/atomic"

	"dramhit/internal/simd"
	"dramhit/internal/table"
)

// InFlightValue marks a claimed-but-unpublished slot value. It is the one
// value-space reservation the protocol needs (the paper reserves two
// key-space values instead, which we also do: see table.EmptyKey and
// table.TombstoneKey).
const InFlightValue uint64 = ^uint64(0) - 1

// Array is a contiguous array of key/value slots. The zero value is not
// usable; construct with New.
type Array struct {
	// words holds key/value pairs interleaved: slot i is
	// (words[2i], words[2i+1]). A flat uint64 slice keeps the layout
	// identical to the paper's: 64-byte line = 4 slots.
	words []uint64
	size  uint64
	// tags is the packed tag-fingerprint sidecar (nil unless constructed
	// with NewTagged): one byte per slot, eight slots per word, so
	// tags[i/8] byte lane i%8 is slot i's fingerprint. A published tag is
	// in 1..255 (table.TagOf); 0 means empty or claimed-but-unpublished
	// and probes must treat it as a candidate. Tags are written exactly
	// once per slot (0 → tag, after the key claim) and never cleared:
	// tombstoned slots keep their stale tag, which is safe because a stale
	// tag either matches the probe (the key compare then sees the
	// tombstone and skips the lane, a false positive) or prunes a lane
	// that provably held a different key.
	tags []uint64
}

// New allocates an array of n slots with all keys Empty and all values
// InFlight. The backing storage is padded to a whole number of cache lines;
// the padding slots' keys are permanently TombstoneKey, so line-granular
// loads can read a full line unconditionally and the kernel skips the
// padding lanes the same way it skips real tombstones.
func New(n uint64) *Array {
	if n == 0 {
		panic("slotarr: zero-size array")
	}
	padded := (n + table.SlotsPerCacheLine - 1) / table.SlotsPerCacheLine * table.SlotsPerCacheLine
	a := &Array{words: make([]uint64, 2*padded), size: n}
	for i := uint64(0); i < n; i++ {
		a.words[2*i+1] = InFlightValue
	}
	for i := n; i < padded; i++ {
		a.words[2*i] = table.TombstoneKey
		a.words[2*i+1] = InFlightValue
	}
	return a
}

// NewTagged is New plus the packed tag-fingerprint sidecar: one tag byte
// per slot, all zero (no candidates pruned) until inserts publish
// fingerprints via PublishTag. Padding slots keep tag 0 forever — they are
// "must check" to the filter, and their TombstoneKey key words make the key
// kernel skip them, so padding stays invisible either way.
func NewTagged(n uint64) *Array {
	a := New(n)
	padded := uint64(len(a.words)) / 2
	a.tags = make([]uint64, (padded+simd.TagLanes-1)/simd.TagLanes)
	return a
}

// HasTags reports whether the array carries the tag sidecar.
func (a *Array) HasTags() bool { return a.tags != nil }

// PublishTag publishes slot i's tag fingerprint after its key claim. On an
// untagged array it is a no-op, so insert paths call it unconditionally.
//
// The byte is merged with a CAS loop rather than an atomic OR (Go 1.22 has
// no atomic.OrUint64); the loop is effectively wait-free in practice because
// each byte lane transitions 0 → tag exactly once — the only contention is
// with concurrent publishers of the other seven lanes in the word.
func (a *Array) PublishTag(i uint64, tag uint8) {
	if a.tags == nil {
		return
	}
	w := &a.tags[i/simd.TagLanes]
	set := uint64(tag) << (8 * (i % simd.TagLanes))
	for {
		old := atomic.LoadUint64(w)
		if old|set == old {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old|set) {
			return
		}
	}
}

// TagWord atomically loads the packed tag word covering slot i (slot
// i&^7 through slot i|7 — two data cache lines' worth of fingerprints).
func (a *Array) TagWord(i uint64) uint64 {
	return atomic.LoadUint64(&a.tags[i/simd.TagLanes])
}

// Tag returns slot i's current tag byte (0 on an untagged array).
func (a *Array) Tag(i uint64) uint8 {
	if a.tags == nil {
		return 0
	}
	return uint8(a.TagWord(i) >> (8 * (i % simd.TagLanes)))
}

// LineCandidates returns the candidate-lane mask for the cache line whose
// lane 0 is slot base (base must be line-aligned): bit l is set iff slot
// base+l's tag matches tag or is 0 (must check). One atomic word load
// covers the line — the filter's whole read cost.
func (a *Array) LineCandidates(base uint64, tag uint8) uint8 {
	w := atomic.LoadUint64(&a.tags[base/simd.TagLanes])
	shift := base % simd.TagLanes // 0 or 4: which half-word this line is
	return uint8(simd.TagCandidates8(w, tag)>>shift) & (1<<table.SlotsPerCacheLine - 1)
}

// Size returns the number of slots.
func (a *Array) Size() uint64 { return a.size }

// Key atomically loads the key word of slot i.
func (a *Array) Key(i uint64) uint64 {
	return atomic.LoadUint64(&a.words[2*i])
}

// Value atomically loads the value word of slot i.
func (a *Array) Value(i uint64) uint64 {
	return atomic.LoadUint64(&a.words[2*i+1])
}

// WaitValue loads the value of slot i, spinning past the in-flight window of
// a racing insert. The spin is bounded by yielding to the scheduler, which
// matters on a single-CPU host where the racing goroutine needs the core to
// finish publishing.
func (a *Array) WaitValue(i uint64) uint64 {
	for spins := 0; ; spins++ {
		v := atomic.LoadUint64(&a.words[2*i+1])
		if v != InFlightValue {
			return v
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// CASKey performs the claim CAS on the key word of slot i.
func (a *Array) CASKey(i, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&a.words[2*i], old, new)
}

// StoreKey atomically stores the key word of slot i (used for tombstoning
// and by single-writer partitions).
func (a *Array) StoreKey(i, k uint64) {
	atomic.StoreUint64(&a.words[2*i], k)
}

// StoreValue publishes the value of slot i.
func (a *Array) StoreValue(i, v uint64) {
	atomic.StoreUint64(&a.words[2*i+1], v)
}

// AddValue atomically adds delta to the value of slot i, first waiting out a
// racing insert's in-flight window, and returns the new value.
func (a *Array) AddValue(i, delta uint64) uint64 {
	// Wait until the initial publish lands; after that the value word never
	// returns to InFlightValue, so the subsequent Add is safe.
	a.WaitValue(i)
	return atomic.AddUint64(&a.words[2*i+1], delta)
}

// LineView is a one-pass snapshot of a full cache line: the four key/value
// slots (eight words) indexed by lane, i.e. slot position within the line.
// Keys[l] is loaded before Vals[l], so a lane whose key matched a probe
// carries a value observed no earlier than its key — the ordering the
// claim-then-publish protocol's read path relies on.
type LineView struct {
	Keys [table.SlotsPerCacheLine]uint64
	Vals [table.SlotsPerCacheLine]uint64
}

// LoadLine snapshots the cache line containing slot i with one pass of
// atomic loads in ascending address order. It returns the view, the slot
// index of lane 0, and the number of lanes backed by real slots (valid <
// SlotsPerCacheLine only on the array's final, partial line). Lanes past the
// end read as TombstoneKey/InFlightValue so they match neither a probe key
// nor EmptyKey in the lane kernel.
//
// The snapshot may be stale by the time the caller acts on it: key words are
// monotonic (EmptyKey → key → TombstoneKey, never reused), so a key match
// stays a match, and a lane seen empty is re-verified by the claim CAS —
// callers re-snapshot when that CAS fails.
func (a *Array) LoadLine(i uint64) (lv LineView, base, valid uint64) {
	base = (i / table.SlotsPerCacheLine) * table.SlotsPerCacheLine
	valid = a.size - base
	if valid > table.SlotsPerCacheLine {
		valid = table.SlotsPerCacheLine
	}
	w := a.words[2*base : 2*base+2*table.SlotsPerCacheLine]
	for l := uint64(0); l < table.SlotsPerCacheLine; l++ {
		lv.Keys[l] = atomic.LoadUint64(&w[2*l])
		lv.Vals[l] = atomic.LoadUint64(&w[2*l+1])
	}
	return lv, base, valid
}

// LoadKeys snapshots only the four key lanes of the cache line containing
// slot i into lanes, returning the slot index of lane 0 and the count of
// lanes backed by real slots. It is the hot-path variant of LoadLine for
// callers that need at most one value afterwards (the matched lane's, an L1
// hit since the line was just touched): half the loads and no 128-byte view
// to copy. Padding lanes read as TombstoneKey, same as LoadLine. The body is
// branchless (New pads the backing array to whole lines) so it inlines into
// the probe loops.
func (a *Array) LoadKeys(lanes *[table.SlotsPerCacheLine]uint64, i uint64) (base, valid uint64) {
	base = i &^ (table.SlotsPerCacheLine - 1)
	valid = a.size - base
	if valid > table.SlotsPerCacheLine {
		valid = table.SlotsPerCacheLine
	}
	w := a.words[2*base : 2*base+2*table.SlotsPerCacheLine]
	lanes[0] = atomic.LoadUint64(&w[0])
	lanes[1] = atomic.LoadUint64(&w[2])
	lanes[2] = atomic.LoadUint64(&w[4])
	lanes[3] = atomic.LoadUint64(&w[6])
	return base, valid
}

// LoadKeys4 is LoadKeys returning the four key lanes in registers instead of
// through a caller-provided array, so the probe loops keep the whole
// snapshot out of memory. Inlines (New pads the array, so no tail branch).
func (a *Array) LoadKeys4(i uint64) (l0, l1, l2, l3, base, valid uint64) {
	base = i &^ (table.SlotsPerCacheLine - 1)
	valid = a.size - base
	if valid > table.SlotsPerCacheLine {
		valid = table.SlotsPerCacheLine
	}
	w := a.words[2*base : 2*base+2*table.SlotsPerCacheLine]
	l0 = atomic.LoadUint64(&w[0])
	l1 = atomic.LoadUint64(&w[2])
	l2 = atomic.LoadUint64(&w[4])
	l3 = atomic.LoadUint64(&w[6])
	return l0, l1, l2, l3, base, valid
}

// LineOf returns the cache-line index of slot i (4 slots per 64-byte line),
// used by the pipelined tables to decide whether a reprobe crosses into a
// new line and needs a fresh prefetch.
func LineOf(i uint64) uint64 { return i / table.SlotsPerCacheLine }

// Prefetch touches the cache line containing slot i to pull it toward the
// core. Go has no prefetch intrinsic; an atomic load of the first word of
// the line is the closest substitute — it lets the CPU's out-of-order engine
// overlap several independent misses when a window of such touches is
// issued back-to-back (memory-level parallelism), which is the effect the
// paper's prefetch engine exploits.
func (a *Array) Prefetch(i uint64) uint64 {
	line := LineOf(i)
	return atomic.LoadUint64(&a.words[2*line*table.SlotsPerCacheLine])
}

// side-slot states.
const (
	sideEmpty uint64 = iota
	sidePresent
	sideTombstone
)

// SideSlot stores the value for one reserved key (EmptyKey or TombstoneKey).
// Unlike array slots it may be reused after deletion, because it is a single
// addressed location with no probe chain to corrupt.
type SideSlot struct {
	state uint64
	val   uint64
	_     [6]uint64 // pad to a cache line so the two side slots don't false-share
}

// Get returns the stored value and presence.
func (s *SideSlot) Get() (uint64, bool) {
	if atomic.LoadUint64(&s.state) != sidePresent {
		return 0, false
	}
	for spins := 0; ; spins++ {
		v := atomic.LoadUint64(&s.val)
		if v != InFlightValue {
			return v, true
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// Put stores v, inserting if needed. Returns true if the key was newly
// inserted (false if it overwrote).
func (s *SideSlot) Put(v uint64) bool {
	for {
		switch atomic.LoadUint64(&s.state) {
		case sidePresent:
			atomic.StoreUint64(&s.val, v)
			return false
		case sideEmpty:
			if atomic.CompareAndSwapUint64(&s.state, sideEmpty, sidePresent) {
				atomic.StoreUint64(&s.val, v)
				return true
			}
		case sideTombstone:
			// Reinsertion: park the value at in-flight before flipping the
			// state so no reader can observe the previous incarnation.
			atomic.StoreUint64(&s.val, InFlightValue)
			if atomic.CompareAndSwapUint64(&s.state, sideTombstone, sidePresent) {
				atomic.StoreUint64(&s.val, v)
				return true
			}
		}
	}
}

// Upsert adds delta, inserting delta if absent; returns the new value and
// whether an existing entry was updated.
func (s *SideSlot) Upsert(delta uint64) (uint64, bool) {
	for {
		switch atomic.LoadUint64(&s.state) {
		case sidePresent:
			for spins := 0; ; spins++ {
				if atomic.LoadUint64(&s.val) != InFlightValue {
					return atomic.AddUint64(&s.val, delta), true
				}
				if spins > 64 {
					runtime.Gosched()
				}
			}
		case sideEmpty:
			if atomic.CompareAndSwapUint64(&s.state, sideEmpty, sidePresent) {
				atomic.StoreUint64(&s.val, delta)
				return delta, false
			}
		case sideTombstone:
			atomic.StoreUint64(&s.val, InFlightValue)
			if atomic.CompareAndSwapUint64(&s.state, sideTombstone, sidePresent) {
				atomic.StoreUint64(&s.val, delta)
				return delta, false
			}
		}
	}
}

// Delete tombstones the slot, reporting whether it was present.
func (s *SideSlot) Delete() bool {
	return atomic.CompareAndSwapUint64(&s.state, sidePresent, sideTombstone)
}

// Present reports whether the slot currently holds a value.
func (s *SideSlot) Present() bool {
	return atomic.LoadUint64(&s.state) == sidePresent
}

// SidePair bundles the reserved-key side slots and routes reserved keys.
// (Historically two slots — empty and tombstone — it grew a third when
// table.MovedKey joined the reserved set for growt's incremental migration;
// the name stuck.)
type SidePair struct {
	empty     SideSlot
	tombstone SideSlot
	moved     SideSlot
}

// For returns the side slot responsible for key, or nil if key is not
// reserved.
func (p *SidePair) For(key uint64) *SideSlot {
	switch key {
	case table.EmptyKey:
		return &p.empty
	case table.TombstoneKey:
		return &p.tombstone
	case table.MovedKey:
		return &p.moved
	}
	return nil
}

// Count returns how many reserved keys are currently present (0–3).
func (p *SidePair) Count() int {
	n := 0
	if p.empty.Present() {
		n++
	}
	if p.tombstone.Present() {
		n++
	}
	if p.moved.Present() {
		n++
	}
	return n
}
