// Socket client driver: the RESP-speaking load side of loadgen -socket and
// the server-ab experiment. It drives a live dramhit-server over many
// concurrent TCP connections, pipelining requests so the server's
// per-connection byte pipeline has wire batches to drain, and reports each
// reply's outcome and latency through a caller-supplied callback.
//
// The driver is deliberately ycsb- and obs-agnostic — it consumes a
// caller-supplied request stream and hands outcomes back — because ycsb
// imports workload for its key and value-size streams, and the obs
// package's own tests import ycsb.

package workload

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dramhit/internal/table"
)

// SocketOp is one request in a socket client stream: GET (table.Get), SET
// (table.Put, Value attached), DEL (table.Delete) or INCR (table.Upsert).
// Key and Value are consumed before the stream's next call, so callers may
// reuse their backing buffers between calls.
type SocketOp struct {
	Op    table.Op
	Key   []byte
	Value []byte
}

// SocketStream yields a connection's request sequence; i counts from 0 and
// is called exactly once per submitted request, in order.
type SocketStream func(i int) SocketOp

// SocketClient drives a RESP server over Conns concurrent TCP connections.
// Each connection is a goroutine that writes wire batches of up to Pipeline
// requests and reads the replies back — the client half of the server's
// parse-batch/flush discipline, so loadgen's network batching exercises the
// server's prefetch-window batching.
type SocketClient struct {
	Addr       string
	Conns      int
	Pipeline   int // max requests in flight per connection (default 16)
	OpsPerConn int
	// Rate is the open-loop target in ops/sec summed over all connections;
	// 0 runs closed-loop (send a full pipeline, read it back, repeat). In
	// open-loop mode each request has a fixed scheduled instant and its
	// latency is measured from that schedule, so server-side queueing shows
	// up in the tail instead of silently stretching the send rate
	// (coordinated omission).
	Rate float64
	// Stream builds connection ci's request sequence.
	Stream func(ci int) SocketStream
	// Record, when set, is called once per reply with the connection
	// index, the opcode it answered, the outcome (GET hit / DEL removed /
	// writes always true), whether the reply was an error, and the
	// measured latency in nanoseconds. It runs on every connection
	// goroutine concurrently — implementations record into shared atomic
	// histograms (obs.Worker shards). Nil skips latency accounting
	// entirely — the load phase runs that way.
	Record func(ci int, op table.Op, hit, isErr bool, ns uint64)
}

// SocketStats aggregates one Run.
type SocketStats struct {
	Ops     uint64 // replies read and classified
	Errors  uint64 // -ERR replies (counted in Ops too)
	Elapsed time.Duration
}

// Run dials every connection, then drives them concurrently until each has
// completed OpsPerConn requests. Elapsed covers the drive phase only, not
// the dials, so Mops = Ops/Elapsed is the sustained service rate.
func (c *SocketClient) Run() (SocketStats, error) {
	pipeline := c.Pipeline
	if pipeline <= 0 {
		pipeline = 16
	}
	conns := make([]net.Conn, c.Conns)
	for i := range conns {
		nc, err := net.Dial("tcp", c.Addr)
		if err != nil {
			for _, pc := range conns[:i] {
				pc.Close()
			}
			return SocketStats{}, fmt.Errorf("dial conn %d/%d: %w", i, c.Conns, err)
		}
		conns[i] = nc
	}

	var ops, errs atomic.Uint64
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	var intervalNS float64
	if c.Rate > 0 {
		intervalNS = float64(c.Conns) / c.Rate * 1e9
	}
	var wg sync.WaitGroup
	for ci, nc := range conns {
		wg.Add(1)
		go func(ci int, nc net.Conn) {
			defer wg.Done()
			defer nc.Close()
			o, e, err := c.runConn(ci, nc, pipeline, intervalNS, start)
			ops.Add(o)
			errs.Add(e)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("conn %d: %w", ci, err)
				}
				mu.Unlock()
			}
		}(ci, nc)
	}
	wg.Wait()
	return SocketStats{Ops: ops.Load(), Errors: errs.Load(), Elapsed: time.Since(start)}, firstErr
}

// pendSock is one in-flight request: its opcode (reply classification needs
// it) and the instant its latency is measured from.
type pendSock struct {
	op      table.Op
	startNS int64
}

func (c *SocketClient) runConn(ci int, nc net.Conn, pipeline int, intervalNS float64, epoch time.Time) (ops, errs uint64, err error) {
	stream := c.Stream(ci)
	br := bufio.NewReaderSize(nc, 1<<16)
	wire := make([]byte, 0, 1<<16)
	pends := make([]pendSock, 0, pipeline)
	for done := 0; done < c.OpsPerConn; {
		batch := pipeline
		if rem := c.OpsPerConn - done; batch > rem {
			batch = rem
		}
		if intervalNS > 0 {
			// Sleep until the next request's scheduled instant, then send
			// everything already due (a client that fell behind bursts to
			// catch up, bounded by the pipeline depth).
			sched := epoch.Add(time.Duration(float64(done) * intervalNS))
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
			due := int(float64(time.Since(epoch).Nanoseconds())/intervalNS) + 1 - done
			if due < 1 {
				due = 1
			}
			if batch > due {
				batch = due
			}
		}
		wire = wire[:0]
		pends = pends[:0]
		for i := 0; i < batch; i++ {
			op := stream(done + i)
			wire = appendRESPCommand(wire, op)
			ts := time.Now().UnixNano()
			if intervalNS > 0 {
				ts = epoch.Add(time.Duration(float64(done+i) * intervalNS)).UnixNano()
			}
			pends = append(pends, pendSock{op.Op, ts})
		}
		if _, werr := nc.Write(wire); werr != nil {
			return ops, errs, werr
		}
		for _, p := range pends {
			hit, isErr, rerr := readRESPReply(br, p.op)
			if rerr != nil {
				return ops, errs, rerr
			}
			ops++
			if isErr {
				errs++
			}
			if c.Record != nil {
				c.Record(ci, p.op, hit, isErr, uint64(time.Now().UnixNano()-p.startNS))
			}
		}
		done += batch
	}
	return ops, errs, nil
}

// appendRESPCommand renders op in multibulk client framing.
func appendRESPCommand(b []byte, op SocketOp) []byte {
	verb, argc := "GET", 2
	switch op.Op {
	case table.Put:
		verb, argc = "SET", 3
	case table.Delete:
		verb = "DEL"
	case table.Upsert:
		verb = "INCR"
	}
	b = append(b, '*')
	b = strconv.AppendInt(b, int64(argc), 10)
	b = append(b, '\r', '\n')
	b = appendRESPBulkString(b, verb)
	b = appendRESPBulk(b, op.Key)
	if argc == 3 {
		b = appendRESPBulk(b, op.Value)
	}
	return b
}

func appendRESPBulk(b, arg []byte) []byte {
	b = append(b, '$')
	b = strconv.AppendInt(b, int64(len(arg)), 10)
	b = append(b, '\r', '\n')
	b = append(b, arg...)
	return append(b, '\r', '\n')
}

func appendRESPBulkString(b []byte, arg string) []byte {
	b = append(b, '$')
	b = strconv.AppendInt(b, int64(len(arg)), 10)
	b = append(b, '\r', '\n')
	b = append(b, arg...)
	return append(b, '\r', '\n')
}

// readRESPReply consumes one reply and resolves its outcome against the
// opcode it answers: GET bulk → hit, GET nil → miss, SET "+OK" → hit,
// INCR ":n" → hit, DEL ":1"/":0" → hit/miss. Error replies ("-...") report
// a miss-side outcome and flag isErr.
func readRESPReply(br *bufio.Reader, op table.Op) (hit, isErr bool, err error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return false, false, err
	}
	if len(line) < 3 || line[len(line)-2] != '\r' {
		return false, false, fmt.Errorf("malformed reply line %q", line)
	}
	switch line[0] {
	case '+':
		return true, false, nil
	case ':':
		return !(op == table.Delete && line[1] == '0'), false, nil
	case '-':
		return false, true, nil
	case '$':
		n, aerr := strconv.Atoi(string(line[1 : len(line)-2]))
		if aerr != nil {
			return false, false, fmt.Errorf("bad bulk header %q", line)
		}
		if n < 0 {
			return false, false, nil
		}
		if _, derr := br.Discard(n + 2); derr != nil {
			return false, false, derr
		}
		return true, false, nil
	}
	return false, false, fmt.Errorf("unexpected reply type %q", line)
}

// SocketLoad SETs every key — rendered in the canonical "user<id>" byte
// form with deterministic size-byte FillValue payloads — through conns
// pipelined connections: the load phase in front of a timed socket run.
// Connection ci covers keys[ci], keys[ci+conns], … so the work divides
// evenly without copying the key slice.
func SocketLoad(addr string, keys []uint64, size, conns, pipeline int) error {
	if conns > len(keys) {
		conns = len(keys)
	}
	if conns < 1 {
		conns = 1
	}
	per := (len(keys) + conns - 1) / conns
	c := &SocketClient{
		Addr: addr, Conns: conns, Pipeline: pipeline, OpsPerConn: per,
		Stream: func(ci int) SocketStream {
			var kb, vb []byte
			return func(i int) SocketOp {
				idx := i*conns + ci
				if idx >= len(keys) {
					idx = len(keys) - 1 // tail padding re-SETs the last key
				}
				k := keys[idx]
				kb = AppendByteKey(kb[:0], k)
				vb = FillValue(vb, k, size)
				return SocketOp{Op: table.Put, Key: kb, Value: vb}
			}
		},
	}
	_, err := c.Run()
	return err
}
