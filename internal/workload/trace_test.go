package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	ops := RecordMixed(7, 1<<16, 0.9, 0.5, 5000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v, %d ops", err, len(got))
	}
}

func TestTraceBadMagic(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("NOPE\x00\x00\x00\x00\x00\x00\x00\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTraceTruncated(t *testing.T) {
	ops := RecordMixed(8, 100, 0, 0.5, 10)
	var buf bytes.Buffer
	WriteTrace(&buf, ops)
	raw := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestTraceInvalidOp(t *testing.T) {
	var buf bytes.Buffer
	WriteTrace(&buf, []TraceOp{{Op: Op(200), Key: 1}})
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestRecordMixedMatchesStream(t *testing.T) {
	ops := RecordMixed(9, 1<<10, 0, 0.8, 2000)
	reads := 0
	for _, op := range ops {
		if op.Op == Get {
			reads++
		}
	}
	frac := float64(reads) / float64(len(ops))
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("read fraction %.2f, want ~0.8", frac)
	}
}
