package workload

import (
	"bytes"
	"testing"
)

func TestByteKeyStreamDeterministicAndConsistent(t *testing.T) {
	a := NewByteKeyStream(9, 1000, 0.9)
	b := NewByteKeyStream(9, 1000, 0.9)
	u := NewKeyStream(9, 1000, 0.9)
	for i := 0; i < 2000; i++ {
		ka := append([]byte(nil), a.Next()...)
		if !bytes.Equal(ka, b.Next()) {
			t.Fatalf("draw %d: same-seed streams diverged", i)
		}
		// Rank for rank, the string stream names the uint64 stream's keys.
		if want := AppendByteKey(nil, u.Next()); !bytes.Equal(ka, want) {
			t.Fatalf("draw %d: %q does not render the uint64 stream's key %q", i, ka, want)
		}
	}
}

func TestUniqueByteKeysMatchLoadPhase(t *testing.T) {
	// A uniform run-phase stream must only name keys the load phase inserted.
	keys := UniqueByteKeys(3, 500)
	loaded := make(map[string]bool, len(keys))
	for _, k := range keys {
		loaded[string(k)] = true
	}
	s := NewByteKeyStream(3, 500, 0)
	for i := 0; i < 5000; i++ {
		if k := s.Next(); !loaded[string(k)] {
			t.Fatalf("draw %d: stream produced unloaded key %q", i, k)
		}
	}
}

func TestByteKeyStreamZeroAlloc(t *testing.T) {
	s := NewByteKeyStream(5, 1<<16, 0.99)
	if avg := testing.AllocsPerRun(1000, func() { s.Next() }); avg != 0 {
		t.Errorf("ByteKeyStream.Next allocates %.1f per draw, want 0", avg)
	}
}

func TestValueSizer(t *testing.T) {
	fixed := NewValueSizer(1, 64, 0)
	for i := 0; i < 100; i++ {
		if n := fixed.Next(); n != 64 {
			t.Fatalf("fixed sizer returned %d, want 64", n)
		}
	}
	a, b := NewValueSizer(2, 512, 0.99), NewValueSizer(2, 512, 0.99)
	small := 0
	for i := 0; i < 10000; i++ {
		n := a.Next()
		if n != b.Next() {
			t.Fatalf("draw %d: same-seed sizers diverged", i)
		}
		if n < 1 || n > 512 {
			t.Fatalf("draw %d: size %d out of [1, 512]", i, n)
		}
		if n <= 8 {
			small++
		}
	}
	// The zipf tail concentrates mass at the small end — that is its point.
	// Uniform sizing would put ~1.6% of draws at <= 8 bytes; theta 0.99
	// puts roughly 40% there.
	if small < 3000 {
		t.Errorf("only %d/10000 zipf-sized values were <= 8 bytes; tail is not heavy", small)
	}
}

func TestFillValue(t *testing.T) {
	v1 := FillValue(nil, 42, 33)
	v2 := FillValue(make([]byte, 0, 64), 42, 33)
	if len(v1) != 33 || !bytes.Equal(v1, v2) {
		t.Fatal("FillValue is not deterministic in (key, length)")
	}
	if bytes.Equal(v1, FillValue(nil, 43, 33)) {
		t.Fatal("distinct keys produced identical values")
	}
	if bytes.Equal(v1[:16], FillValue(nil, 42, 16)) == false {
		t.Fatal("a shorter fill must be a prefix of the longer one")
	}
	if len(FillValue(nil, 7, 0)) != 0 {
		t.Fatal("zero-length fill must return an empty slice")
	}
}
