// Package workload generates the key and operation streams used by the
// DRAMHiT evaluation: uniformly distributed unique keys, zipfian-skewed key
// streams parameterized by theta (the paper's "skew value", where theta = 0
// is uniform and theta = 1.09 sends ~90% of accesses to ~10% of keys), and
// mixed read/write operation streams controlled by a read probability.
package workload

import (
	"math"
	"math/rand"
	"sync"
)

// Zipf draws ranks in [0, n) from a zipfian distribution with exponent
// theta in [0, ~1.3]. It implements the classical Gray et al. / YCSB
// generator: rank probability p(r) ∝ 1/(r+1)^theta. theta = 0 degenerates to
// the uniform distribution, matching how the paper sweeps skew from 0 up.
//
// Unlike math/rand's Zipf (which requires s > 1), this parameterization
// covers the 0..1.2 skew range used in Figures 2, 8 and 11.
type Zipf struct {
	rng   *rand.Rand
	n     uint64
	theta float64

	// Precomputed constants of the Gray et al. method.
	alpha, zetan, eta, thresh float64
	uniform                   bool
}

// NewZipf constructs a zipfian generator over [0, n) with the given skew.
// A skew of exactly 0 yields the uniform distribution.
func NewZipf(rng *rand.Rand, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: NewZipf with n == 0")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	if theta == 0 {
		z.uniform = true
		return z
	}
	// theta == 1 makes alpha blow up; nudge it the way YCSB does.
	if theta == 1 {
		theta = 0.99999
		z.theta = theta
	}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	z.thresh = 1 + math.Pow(0.5, theta)
	return z
}

// zetaCache memoizes the expensive harmonic sums: experiment sweeps create
// one generator per simulated thread over the same (n, theta), and the
// direct sum below costs up to 2^20 math.Pow calls.
var zetaCache sync.Map // key zetaKey -> float64

type zetaKey struct {
	n     uint64
	theta float64
}

// zeta computes the generalized harmonic number H_{n,theta}. For the large n
// used in our experiments (up to 2^30) the direct sum is too slow, so past a
// cutoff we switch to the Euler–Maclaurin integral approximation; the error
// is far below what any of our statistical tests can resolve.
func zeta(n uint64, theta float64) float64 {
	if v, ok := zetaCache.Load(zetaKey{n, theta}); ok {
		return v.(float64)
	}
	v := zetaSlow(n, theta)
	zetaCache.Store(zetaKey{n, theta}, v)
	return v
}

func zetaSlow(n uint64, theta float64) float64 {
	const exactCutoff = 1 << 20
	if n <= exactCutoff {
		sum := 0.0
		for i := uint64(1); i <= n; i++ {
			sum += 1.0 / math.Pow(float64(i), theta)
		}
		return sum
	}
	sum := zeta(exactCutoff, theta)
	// Integral of x^-theta from cutoff..n plus trapezoid correction.
	a, b := float64(exactCutoff), float64(n)
	sum += (math.Pow(b, 1-theta) - math.Pow(a, 1-theta)) / (1 - theta)
	sum += 0.5 * (math.Pow(b, -theta) - math.Pow(a, -theta))
	return sum
}

// Next returns the next rank in [0, n); rank 0 is the hottest.
func (z *Zipf) Next() uint64 {
	if z.uniform {
		return uint64(z.rng.Int63n(int64(z.n)))
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < z.thresh {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// Theta reports the configured skew.
func (z *Zipf) Theta() float64 { return z.theta }

// N reports the rank space size.
func (z *Zipf) N() uint64 { return z.n }

// HotSetFraction returns the fraction of accesses that fall on the hottest
// `frac` fraction of ranks, computed analytically. It is used by tests to
// cross-check the generator (at theta ≈ 1, ~10% of keys draw ~90% of
// accesses) and by the memory simulator's contention model.
func (z *Zipf) HotSetFraction(frac float64) float64 {
	if z.uniform {
		return frac
	}
	k := uint64(float64(z.n) * frac)
	if k == 0 {
		k = 1
	}
	return zeta(k, z.theta) / z.zetan
}

// RankProb returns the analytic probability of drawing rank r.
func (z *Zipf) RankProb(r uint64) float64 {
	if z.uniform {
		return 1.0 / float64(z.n)
	}
	return 1.0 / (math.Pow(float64(r+1), z.theta) * z.zetan)
}
