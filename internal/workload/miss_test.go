package workload

import "testing"

// TestMissKeysDisjointFromUniqueKeys checks the structural guarantee the
// negative-lookup benchmarks lean on: MissKeys(seed, n, count) never collides
// with UniqueKeys(seed, n), because both apply the same salted bijection to
// disjoint rank ranges.
func TestMissKeysDisjointFromUniqueKeys(t *testing.T) {
	const n, count = 5000, 3000
	pos := UniqueKeys(99, n)
	neg := MissKeys(99, n, count)
	if len(neg) != count {
		t.Fatalf("got %d miss keys, want %d", len(neg), count)
	}
	seen := make(map[uint64]bool, n)
	for _, k := range pos {
		seen[k] = true
	}
	for i, k := range neg {
		if seen[k] {
			t.Fatalf("miss key %d (%#x) collides with the positive population", i, k)
		}
		seen[k] = true // also catches duplicates within the miss set
	}
}

// TestKeyStreamMissZeroDegenerates checks that miss=0 reproduces the plain
// stream draw for draw — the knob must be a pure superset of the old API.
func TestKeyStreamMissZeroDegenerates(t *testing.T) {
	a := NewKeyStream(7, 1000, 0.99)
	b := NewKeyStreamMiss(7, 1000, 0.99, 0)
	for i := 0; i < 5000; i++ {
		if ka, kb := a.Next(), b.Next(); ka != kb {
			t.Fatalf("draw %d diverged: %#x vs %#x", i, ka, kb)
		}
	}
}

// TestKeyStreamMissRedirectsToAbsentKeys checks that a miss-ratio stream
// produces roughly the requested fraction of keys outside the positive
// population, and that every redirected key is structurally absent from it.
func TestKeyStreamMissRedirectsToAbsentKeys(t *testing.T) {
	const n = 2000
	pos := make(map[uint64]bool, n)
	for _, k := range UniqueKeys(7, n) {
		pos[k] = true
	}
	// Same seed => same salt as UniqueKeys(7, ·): in-population draws always
	// land in pos, redirected draws never can (disjoint ranks, bijection).
	s := NewKeyStreamMiss(7, n, 0, 0.3)
	misses := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if !pos[s.Next()] {
			misses++
		}
	}
	got := float64(misses) / draws
	if got < 0.25 || got > 0.35 {
		t.Fatalf("miss fraction %.3f, want ~0.30", got)
	}
}

// TestKeyStreamMissRatioValidation checks the panic contract.
func TestKeyStreamMissRatioValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("miss ratio 1.5 did not panic")
		}
	}()
	NewKeyStreamMiss(1, 10, 0, 1.5)
}
