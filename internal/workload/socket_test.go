package workload_test

import (
	"fmt"
	"testing"
	"time"

	"dramhit/internal/kvserver"
	"dramhit/internal/obs"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// recordInto is the standard latency hookup the real drivers use: shared
// worker shards, per-op-class histograms.
func recordInto(pool []*obs.Worker) func(int, table.Op, bool, bool, uint64) {
	return func(ci int, op table.Op, hit, _ bool, ns uint64) {
		w := pool[ci%len(pool)]
		w.Lat.Record(ns)
		w.Op[obs.OpClass(op, hit)].Record(ns)
	}
}

func startKV(t *testing.T) *kvserver.Server {
	t.Helper()
	s, err := kvserver.New(kvserver.Config{RespAddr: "127.0.0.1:0", Slots: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSocketClientClosedLoop drives a live server with a mixed stream and
// checks the driver's accounting: every reply consumed, classified into the
// right op-class histograms, no protocol errors.
func TestSocketClientClosedLoop(t *testing.T) {
	srv := startKV(t)
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := workload.SocketLoad(srv.RespAddr(), keys, 24, 4, 64); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewWith(0, 1)
	pool := []*obs.Worker{reg.Worker("sock-w0"), reg.Worker("sock-w1")}
	const conns, perConn = 4, 500
	c := &workload.SocketClient{
		Addr: srv.RespAddr(), Conns: conns, Pipeline: 16, OpsPerConn: perConn,
		Record: recordInto(pool),
		Stream: func(ci int) workload.SocketStream {
			var kb, vb []byte
			return func(i int) workload.SocketOp {
				switch i % 5 {
				case 0: // present-key GET
					kb = workload.AppendByteKey(kb[:0], keys[i%len(keys)])
					return workload.SocketOp{Op: table.Get, Key: kb}
				case 1: // absent-key GET
					kb = workload.AppendByteKey(kb[:0], uint64(1<<40+i))
					return workload.SocketOp{Op: table.Get, Key: kb}
				case 2: // SET
					kb = workload.AppendByteKey(kb[:0], keys[i%len(keys)])
					vb = workload.FillValue(vb, uint64(i), 16)
					return workload.SocketOp{Op: table.Put, Key: kb, Value: vb}
				case 3: // INCR on a numeric counter keyspace
					kb = append(kb[:0], fmt.Sprintf("ctr%d-%d", ci, i%7)...)
					return workload.SocketOp{Op: table.Upsert, Key: kb}
				default: // DEL (mostly misses: disjoint keyspace)
					kb = append(kb[:0], fmt.Sprintf("gone%d", i)...)
					return workload.SocketOp{Op: table.Delete, Key: kb}
				}
			}
		},
	}
	stats, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops != conns*perConn {
		t.Fatalf("ops = %d, want %d", stats.Ops, conns*perConn)
	}
	if stats.Errors != 0 {
		t.Fatalf("%d error replies from a well-formed stream", stats.Errors)
	}
	var total uint64
	classes := map[int]uint64{}
	for _, w := range pool {
		total += w.Lat.Count()
		for cls := 0; cls < obs.NumOpClasses; cls++ {
			classes[cls] += w.Op[cls].Count()
		}
	}
	if total != conns*perConn {
		t.Fatalf("latency samples = %d, want %d", total, conns*perConn)
	}
	for _, cls := range []int{obs.OpGetHit, obs.OpGetMiss, obs.OpPut, obs.OpUpsert, obs.OpDeleteMiss} {
		if classes[cls] == 0 {
			t.Errorf("op class %s recorded no samples", obs.OpClassNames[cls])
		}
	}
}

// TestSocketClientOpenLoop pins the pacing contract: at a fixed target rate
// the run cannot finish faster than ops/rate, and every op still completes.
func TestSocketClientOpenLoop(t *testing.T) {
	srv := startKV(t)
	const conns, perConn, rate = 2, 100, 2000.0
	c := &workload.SocketClient{
		Addr: srv.RespAddr(), Conns: conns, Pipeline: 8, OpsPerConn: perConn,
		Rate: rate,
		Stream: func(ci int) workload.SocketStream {
			var kb []byte
			return func(i int) workload.SocketOp {
				kb = workload.AppendByteKey(kb[:0], uint64(i))
				return workload.SocketOp{Op: table.Get, Key: kb}
			}
		},
	}
	stats, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops != conns*perConn {
		t.Fatalf("ops = %d, want %d", stats.Ops, conns*perConn)
	}
	// Each connection paces at rate/conns ops/sec; the last of perConn ops
	// is scheduled at (perConn-1)/(rate/conns) seconds. Allow generous
	// slack below that bound for scheduling coarseness.
	minElapsed := time.Duration(float64(perConn-2) / (rate / conns) * float64(time.Second))
	if stats.Elapsed < minElapsed {
		t.Fatalf("open-loop run finished in %v, faster than the %v schedule", stats.Elapsed, minElapsed)
	}
}

// TestSocketLoadThenRead checks the load helper end to end: every loaded
// key reads back as a hit.
func TestSocketLoadThenRead(t *testing.T) {
	srv := startKV(t)
	keys := make([]uint64, 257) // odd count exercises the tail padding
	for i := range keys {
		keys[i] = uint64(i * 3)
	}
	if err := workload.SocketLoad(srv.RespAddr(), keys, 8, 3, 32); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewWith(0, 1)
	pool := []*obs.Worker{reg.Worker("sock-r0")}
	c := &workload.SocketClient{
		Addr: srv.RespAddr(), Conns: 1, Pipeline: 32, OpsPerConn: len(keys),
		Record: recordInto(pool),
		Stream: func(ci int) workload.SocketStream {
			var kb []byte
			return func(i int) workload.SocketOp {
				kb = workload.AppendByteKey(kb[:0], keys[i])
				return workload.SocketOp{Op: table.Get, Key: kb}
			}
		},
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if n := pool[0].Op[obs.OpGetMiss].Count(); n != 0 {
		t.Fatalf("%d loaded keys read back as misses", n)
	}
	if n := pool[0].Op[obs.OpGetHit].Count(); n != uint64(len(keys)) {
		t.Fatalf("get_hit count = %d, want %d", n, len(keys))
	}
}
