// Byte-string workload generation for the bucket layout's KV surface:
// YCSB-style string keys over the same scrambled rank space as the uint64
// streams, and per-operation value sizes (fixed or zipf-tailed) with
// deterministic, verifiable contents. Everything is allocation-free after
// construction — generators hand out internal buffers valid until the next
// draw, matching how the byte APIs borrow their arguments.
package workload

import (
	"math/rand"
	"strconv"
)

// byteKeyPrefix matches YCSB's "user<id>" convention.
const byteKeyPrefix = "user"

// AppendByteKey renders the uint64 key k as its canonical string form —
// "user" plus the decimal digits — appending to dst. The same k always
// renders identically, so a byte-key load phase and a uint64-derived run
// phase agree on which records exist.
func AppendByteKey(dst []byte, k uint64) []byte {
	dst = append(dst, byteKeyPrefix...)
	return strconv.AppendUint(dst, k, 10)
}

// ByteKeyStream draws string keys from the same salted, scrambled rank
// space as NewKeyStream with identical parameters — rank for rank, the
// string stream names exactly the keys the uint64 stream would produce.
type ByteKeyStream struct {
	keys *KeyStream
	buf  []byte
}

// NewByteKeyStream builds a string-key stream over ranks [0, n) with the
// given zipf skew (0 = uniform). Same seed, same sequence.
func NewByteKeyStream(seed int64, n uint64, theta float64) *ByteKeyStream {
	return &ByteKeyStream{
		keys: NewKeyStream(seed, n, theta),
		buf:  make([]byte, 0, len(byteKeyPrefix)+20),
	}
}

// Next returns the next string key. The slice aliases an internal buffer
// and is valid until the next call — callers that retain it must copy.
func (s *ByteKeyStream) Next() []byte {
	return AppendByteKey(s.buf[:0], s.keys.Next())
}

// UniqueByteKeys renders UniqueKeys(seed, n) in string form, for the load
// phase preceding a ByteKeyStream run with the same seed.
func UniqueByteKeys(seed int64, n int) [][]byte {
	ks := UniqueKeys(seed, n)
	keys := make([][]byte, n)
	for i, k := range ks {
		keys[i] = AppendByteKey(nil, k)
	}
	return keys
}

// ValueSizer produces per-operation value sizes. With theta = 0 every draw
// is the fixed size; with theta > 0 sizes follow a zipf tail over [1, size]
// — most values land near 1 byte and a heavy-ranked few reach the cap, the
// shape of real KV value populations (caches, metadata stores), so the
// arena's variable-length records and segment-fill behaviour get exercised
// across their whole range instead of at one point.
type ValueSizer struct {
	fixed int
	zipf  *Zipf
}

// NewValueSizer builds a sizer: fixed at size when theta == 0, zipf-tailed
// over [1, size] otherwise. Same seed, same sequence.
func NewValueSizer(seed int64, size int, theta float64) *ValueSizer {
	if size < 1 {
		panic("workload: value size must be >= 1")
	}
	v := &ValueSizer{fixed: size}
	if theta > 0 {
		v.zipf = NewZipf(rand.New(rand.NewSource(seed)), uint64(size), theta)
	}
	return v
}

// Next returns the next value size in bytes.
func (v *ValueSizer) Next() int {
	if v.zipf == nil {
		return v.fixed
	}
	return 1 + int(v.zipf.Next()) // rank 0 (the hot rank) is the 1-byte value
}

// Max returns the largest size Next can produce, for buffer pre-allocation.
func (v *ValueSizer) Max() int { return v.fixed }

// FillValue writes the canonical n-byte value for key k into dst's first n
// bytes, growing dst if needed, and returns the filled slice. The contents
// are a cheap splitmix-style keyed byte sequence: any reader can recompute
// the expected value from (key, length) alone and verify reads end to end
// without keeping a shadow copy of the dataset.
func FillValue(dst []byte, k uint64, n int) []byte {
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	x := k ^ 0x9e3779b97f4a7c15
	for i := 0; i < n; i++ {
		if i&7 == 0 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		dst[i] = byte(x >> ((i & 7) * 8))
	}
	return dst
}
