package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZipfUniformTheta0(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 1000, 0)
	const samples = 200000
	counts := make([]int, 1000)
	for i := 0; i < samples; i++ {
		counts[z.Next()]++
	}
	mean := float64(samples) / 1000
	for r, c := range counts {
		if math.Abs(float64(c)-mean) > 6*math.Sqrt(mean) {
			t.Errorf("rank %d count %d deviates from uniform mean %.1f", r, c, mean)
		}
	}
}

func TestZipfInRange(t *testing.T) {
	for _, theta := range []float64{0, 0.2, 0.5, 0.99, 1.0, 1.09, 1.2} {
		z := NewZipf(rand.New(rand.NewSource(2)), 100, theta)
		for i := 0; i < 10000; i++ {
			r := z.Next()
			if r >= 100 {
				t.Fatalf("theta %.2f: rank %d out of range", theta, r)
			}
		}
	}
}

func TestZipfHotSetProperty(t *testing.T) {
	// The paper: at skew ~1, roughly 90% of accesses touch 10% of keys.
	z := NewZipf(rand.New(rand.NewSource(3)), 1<<20, 1.0)
	got := z.HotSetFraction(0.10)
	if got < 0.80 || got > 0.95 {
		t.Errorf("hot-set fraction at theta=1.0 is %.3f, want ~0.9", got)
	}
	// And empirically:
	hot := uint64(float64(z.N()) * 0.10)
	const samples = 300000
	inHot := 0
	for i := 0; i < samples; i++ {
		if z.Next() < hot {
			inHot++
		}
	}
	emp := float64(inHot) / samples
	if math.Abs(emp-got) > 0.03 {
		t.Errorf("empirical hot fraction %.3f vs analytic %.3f", emp, got)
	}
}

func TestZipfRankProbMatchesEmpirical(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(4)), 1000, 0.9)
	const samples = 500000
	counts := make([]int, 1000)
	for i := 0; i < samples; i++ {
		counts[z.Next()]++
	}
	for _, r := range []uint64{0, 1, 5, 50} {
		want := z.RankProb(r)
		got := float64(counts[r]) / samples
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("rank %d: empirical p=%.5f analytic p=%.5f", r, got, want)
		}
	}
}

func TestZipfMonotoneRankPopularity(t *testing.T) {
	// Lower ranks must be drawn at least as often as higher ranks (within
	// sampling noise aggregated over decades).
	z := NewZipf(rand.New(rand.NewSource(5)), 1<<16, 1.09)
	const samples = 400000
	counts := make([]int, 1<<16)
	for i := 0; i < samples; i++ {
		counts[z.Next()]++
	}
	// Compare decade sums.
	decade := func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		return s
	}
	d0 := decade(0, 10)
	d1 := decade(10, 100)
	d2 := decade(100, 1000)
	if d0 < d1/4 || d1 < d2/4 {
		t.Errorf("popularity not decreasing across decades: %d %d %d", d0, d1, d2)
	}
}

func TestZetaLargeNApproximation(t *testing.T) {
	// The approximate zeta past the cutoff must agree with a direct sum on a
	// size just above the cutoff.
	const n = 1<<20 + 4096
	theta := 0.8
	direct := 0.0
	for i := uint64(1); i <= n; i++ {
		direct += 1.0 / math.Pow(float64(i), theta)
	}
	approx := zeta(n, theta)
	if math.Abs(direct-approx)/direct > 1e-6 {
		t.Errorf("zeta approximation off: direct %.9f approx %.9f", direct, approx)
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(rand.New(rand.NewSource(7)), 1<<16, 1.09)
	b := NewZipf(rand.New(rand.NewSource(7)), 1<<16, 1.09)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestUniqueKeysAreUnique(t *testing.T) {
	keys := UniqueKeys(11, 1<<16)
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatalf("duplicate key %d", sorted[i])
		}
	}
}

func TestUniqueKeyAtMatchesSlice(t *testing.T) {
	keys := UniqueKeys(13, 1000)
	for _, i := range []uint64{0, 1, 42, 999} {
		if got := UniqueKeyAt(13, i); got != keys[i] {
			t.Errorf("UniqueKeyAt(13, %d) = %d, want %d", i, got, keys[i])
		}
	}
}

func TestScrambleRankBijective(t *testing.T) {
	f := func(a, b uint64) bool {
		const salt = 0x1234567
		if a == b {
			return true
		}
		return ScrambleRank(a, salt) != ScrambleRank(b, salt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyStreamRevisitsHotKeys(t *testing.T) {
	// A skewed key stream must revisit its hottest key many times even
	// after scrambling.
	s := NewKeyStream(17, 1<<16, 1.09)
	counts := make(map[uint64]int)
	const samples = 100000
	for i := 0; i < samples; i++ {
		counts[s.Next()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < samples/100 {
		t.Errorf("hottest key seen only %d/%d times; scrambling broke skew", max, samples)
	}
}

func TestMixedStreamReadFraction(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		m := NewMixedStream(19, 1<<16, 0, p)
		const samples = 50000
		reads := 0
		for i := 0; i < samples; i++ {
			if m.Next().Op == Get {
				reads++
			}
		}
		got := float64(reads) / samples
		if math.Abs(got-p) > 0.02 {
			t.Errorf("readProb %.2f: measured %.3f", p, got)
		}
	}
}

func TestRankStreamReturnsRawRanks(t *testing.T) {
	s := NewRankStream(23, 100, 1.09)
	for i := 0; i < 1000; i++ {
		if r := s.Next(); r >= 100 {
			t.Fatalf("rank stream emitted %d, out of [0,100)", r)
		}
	}
}

func TestNewZipfPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) did not panic")
		}
	}()
	NewZipf(rand.New(rand.NewSource(1)), 0, 0.5)
}

func BenchmarkZipfNextUniform(b *testing.B) {
	z := NewZipf(rand.New(rand.NewSource(1)), 1<<26, 0)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += z.Next()
	}
	_ = sink
}

func BenchmarkZipfNextSkewed(b *testing.B) {
	z := NewZipf(rand.New(rand.NewSource(1)), 1<<26, 1.09)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += z.Next()
	}
	_ = sink
}
