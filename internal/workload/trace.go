package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace record/replay: benchmark runs can persist the exact operation
// stream they executed and replay it byte-identically later (or on another
// machine), removing generator nondeterminism from A/B comparisons.
//
// Format: magic "DHT1", uint64 count, then count records of
// (op uint8, key uint64, value uint64), all little-endian.

const traceMagic = "DHT1"

// TraceOp is one persisted operation.
type TraceOp struct {
	Op    Op
	Key   uint64
	Value uint64
}

// WriteTrace persists ops to w.
func WriteTrace(w io.Writer, ops []TraceOp) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [17]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(ops)))
	if _, err := bw.Write(buf[:8]); err != nil {
		return err
	}
	for _, op := range ops {
		buf[0] = byte(op.Op)
		binary.LittleEndian.PutUint64(buf[1:9], op.Key)
		binary.LittleEndian.PutUint64(buf[9:17], op.Value)
		if _, err := bw.Write(buf[:17]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace loads a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]TraceOp, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading trace magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace count: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	const maxTrace = 1 << 32
	if n > maxTrace {
		return nil, fmt.Errorf("workload: implausible trace length %d", n)
	}
	// Never trust the header for a large preallocation: a corrupt count
	// would allocate gigabytes before the first record fails to parse.
	// Preallocate a bounded amount and let append grow with real data.
	pre := n
	if pre > 1<<20 {
		pre = 1 << 20
	}
	ops := make([]TraceOp, 0, pre)
	var rec [17]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("workload: trace truncated at record %d: %w", i, err)
		}
		op := Op(rec[0])
		if op > Delete {
			return nil, fmt.Errorf("workload: invalid op %d at record %d", rec[0], i)
		}
		ops = append(ops, TraceOp{
			Op:    op,
			Key:   binary.LittleEndian.Uint64(rec[1:9]),
			Value: binary.LittleEndian.Uint64(rec[9:17]),
		})
	}
	return ops, nil
}

// RecordMixed materializes n operations of a mixed stream as a trace.
func RecordMixed(seed int64, keySpace uint64, theta, readProb float64, n int) []TraceOp {
	ms := NewMixedStream(seed, keySpace, theta, readProb)
	ops := make([]TraceOp, n)
	for i := range ops {
		op := ms.Next()
		ops[i] = TraceOp{Op: op.Op, Key: op.Key, Value: uint64(i)}
	}
	return ops
}
