package workload

import (
	"math/rand"

	"dramhit/internal/hashfn"
)

// KeyStream produces uint64 keys for the hash-table experiments. Rank
// streams (uniform or zipfian) are turned into key values through a
// scrambling bijection so that "rank 0" does not mean "key 0": real
// workloads do not present sorted key spaces, and the hash tables reserve a
// couple of key values (empty/tombstone) that the scramble avoids by
// construction only statistically — the tables themselves must handle
// reserved keys via their side slots.
type KeyStream struct {
	zipf  *Zipf
	salt  uint64
	mixed bool
	// miss is the fraction of keys drawn from ranks >= n — keys that are
	// structurally disjoint from the stream's own [0, n) population, so a
	// lookup for one always misses a table populated from the same stream.
	miss    float64
	missRng *rand.Rand
	n       uint64
}

// NewKeyStream builds a stream of keys drawn from ranks in [0, n) with the
// given zipf skew (0 = uniform). Two streams with the same seed and
// parameters produce identical sequences.
func NewKeyStream(seed int64, n uint64, theta float64) *KeyStream {
	return NewKeyStreamMiss(seed, n, theta, 0)
}

// NewKeyStreamMiss is NewKeyStream with a miss ratio: each draw is, with
// probability miss, replaced by a key from the disjoint rank range
// [n, 2n) under the same salt — a key no draw from the positive range can
// ever produce (ScrambleRank is a bijection), so lookups for it are
// guaranteed negative against a table populated with this stream's (or
// UniqueKeys' same-seed) positive keys. miss=0 degenerates to NewKeyStream
// exactly (same sequence, draw for draw).
func NewKeyStreamMiss(seed int64, n uint64, theta, miss float64) *KeyStream {
	if miss < 0 || miss > 1 {
		panic("workload: miss ratio must be in [0, 1]")
	}
	rng := rand.New(rand.NewSource(seed))
	s := &KeyStream{
		zipf:  NewZipf(rng, n, theta),
		salt:  rng.Uint64() | 1,
		mixed: true,
		miss:  miss,
		n:     n,
	}
	if miss > 0 {
		s.missRng = rand.New(rand.NewSource(seed ^ 0x6d697373)) // "miss"
	}
	return s
}

// NewRankStream is like NewKeyStream but returns raw ranks without
// scrambling; useful when the caller wants to map ranks itself (e.g. the
// memory simulator, which needs to know how hot each key is).
func NewRankStream(seed int64, n uint64, theta float64) *KeyStream {
	rng := rand.New(rand.NewSource(seed))
	return &KeyStream{zipf: NewZipf(rng, n, theta), mixed: false}
}

// Next returns the next key (or rank, for a rank stream).
func (s *KeyStream) Next() uint64 {
	r := s.zipf.Next()
	if s.missRng != nil && s.missRng.Float64() < s.miss {
		// Redirect to the never-inserted range: uniform over [n, 2n).
		r = s.n + uint64(s.missRng.Int63n(int64(s.n)))
	}
	if !s.mixed {
		return r
	}
	return ScrambleRank(r, s.salt)
}

// Zipf exposes the underlying distribution (for analytic queries).
func (s *KeyStream) Zipf() *Zipf { return s.zipf }

// ScrambleRank maps a rank to a key with a salted bijection. Identical
// (rank, salt) pairs map to identical keys, so a zipfian stream still
// revisits its hot keys; distinct ranks map to distinct keys.
func ScrambleRank(rank, salt uint64) uint64 {
	return hashfn.City64(rank ^ salt)
}

// UniqueKeys returns n distinct pseudo-random keys, suitable for populating
// a table to a target fill factor. Keys are produced by a bijection over
// 0..n-1, so uniqueness is structural, not probabilistic, and no O(n) set is
// needed for deduplication.
func UniqueKeys(seed int64, n int) []uint64 {
	salt := rand.New(rand.NewSource(seed)).Uint64() | 1
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = ScrambleRank(uint64(i), salt)
	}
	return keys
}

// UniqueKeyAt returns the i-th key of the UniqueKeys(seed, ·) sequence
// without materializing the slice; used by the simulator on key spaces of a
// billion elements.
func UniqueKeyAt(seed int64, i uint64) uint64 {
	salt := rand.New(rand.NewSource(seed)).Uint64() | 1
	return ScrambleRank(i, salt)
}

// MissKeys returns count keys guaranteed absent from UniqueKeys(seed, n):
// the same salted bijection applied to ranks n, n+1, ... — structurally
// disjoint from the positive ranks [0, n), so the negative-lookup
// benchmarks need no membership set to certify their misses.
func MissKeys(seed int64, n, count int) []uint64 {
	salt := rand.New(rand.NewSource(seed)).Uint64() | 1
	keys := make([]uint64, count)
	for i := range keys {
		keys[i] = ScrambleRank(uint64(n+i), salt)
	}
	return keys
}

// Op is a hash-table operation kind in a generated workload.
type Op uint8

// Operation kinds. The zero value is a Get so that a zero-filled request
// slice is harmless.
const (
	Get Op = iota
	Put
	Upsert
	Delete
)

// MixedOp is one element of a mixed read/write stream.
type MixedOp struct {
	Op  Op
	Key uint64
}

// MixedStream generates a stream mixing Gets and Puts over a keyspace with
// the given skew; readProb is the probability that an operation is a Get
// (paper Figure 8c sweeps readProb from 0 to 1).
type MixedStream struct {
	keys     *KeyStream
	rng      *rand.Rand
	readProb float64
}

// NewMixedStream builds a mixed-op stream. Keys are drawn from [0, n) ranks
// with the given theta and scrambled.
func NewMixedStream(seed int64, n uint64, theta, readProb float64) *MixedStream {
	return &MixedStream{
		keys:     NewKeyStream(seed, n, theta),
		rng:      rand.New(rand.NewSource(seed ^ 0x5deece66d)),
		readProb: readProb,
	}
}

// Next returns the next operation.
func (m *MixedStream) Next() MixedOp {
	op := Put
	if m.rng.Float64() < m.readProb {
		op = Get
	}
	return MixedOp{Op: op, Key: m.keys.Next()}
}
