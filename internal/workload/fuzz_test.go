package workload

import (
	"bytes"
	"testing"
)

// FuzzReadTrace checks the trace decoder never panics or over-allocates on
// arbitrary input, and that valid traces round-trip.
func FuzzReadTrace(f *testing.F) {
	var seed bytes.Buffer
	WriteTrace(&seed, RecordMixed(1, 100, 0, 0.5, 3))
	f.Add(seed.Bytes())
	f.Add([]byte("DHT1"))
	f.Add([]byte("DHT1\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ops, err := ReadTrace(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode identically.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, ops); err != nil {
			t.Fatal(err)
		}
		again, err := ReadTrace(&buf)
		if err != nil || len(again) != len(ops) {
			t.Fatalf("round trip: %v, %d vs %d", err, len(again), len(ops))
		}
	})
}
