// Benchmark regression diffing: compare two BENCH_*.json artifacts (or any
// pair of JSON documents) metric by metric, with a relative tolerance and a
// direction per metric. This is the library under cmd/benchdiff, the CI
// gate that turns "the committed baseline says X, this run says Y" into a
// red build when Y regresses past the tolerance.
package bench

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
)

// FlattenJSON reduces a decoded JSON document (the result of json.Unmarshal
// into any) to a path → value map over its numeric leaves. Object fields
// join with "."; array elements key by their "name" field when every
// element is an object carrying a unique string name (the shape of every
// runs[] array in BENCH_*.json — stable under reordering), by index
// otherwise. Booleans count as 0/1; strings and nulls are dropped.
func FlattenJSON(doc any) map[string]float64 {
	out := map[string]float64{}
	flatten("", doc, out)
	return out
}

func flatten(path string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			flatten(join(path, k), e, out)
		}
	case []any:
		if names, ok := uniqueNames(x); ok {
			for i, e := range x {
				flatten(join(path, names[i]), e, out)
			}
			return
		}
		for i, e := range x {
			flatten(join(path, strconv.Itoa(i)), e, out)
		}
	case float64:
		out[path] = x
	case bool:
		if x {
			out[path] = 1
		} else {
			out[path] = 0
		}
	}
}

func join(path, k string) string {
	if path == "" {
		return k
	}
	return path + "." + k
}

// uniqueNames reports the per-element "name" keys of arr if every element
// is an object with a distinct non-empty string name.
func uniqueNames(arr []any) ([]string, bool) {
	if len(arr) == 0 {
		return nil, false
	}
	names := make([]string, len(arr))
	seen := map[string]bool{}
	for i, e := range arr {
		obj, ok := e.(map[string]any)
		if !ok {
			return nil, false
		}
		name, ok := obj["name"].(string)
		if !ok || name == "" || seen[name] {
			return nil, false
		}
		seen[name] = true
		names[i] = name
	}
	return names, true
}

// DiffOptions selects and judges the compared metrics.
type DiffOptions struct {
	// Tol is the relative tolerance: |new-old|/|old| beyond it in the bad
	// direction is a regression. 0 means the default 0.15.
	Tol float64
	// Metrics selects which flattened paths are compared (nil: paths ending
	// in "mops" — the throughput headline of every benchmark artifact).
	Metrics *regexp.Regexp
	// LowerBetter marks selected paths where an increase is the regression
	// direction (latencies, probe costs). Nil: higher is always better.
	LowerBetter *regexp.Regexp
	// MinMetrics is the smallest acceptable number of compared paths; a
	// diff matching fewer is an error, not a pass (a renamed metric must
	// not silently disarm the gate). 0 means 1.
	MinMetrics int
}

// DefaultMetrics matches the throughput headline of every BENCH artifact.
var DefaultMetrics = regexp.MustCompile(`(^|\.)mops$`)

// DiffRow is one compared metric.
type DiffRow struct {
	Path        string  `json:"path"`
	Old         float64 `json:"old"`
	New         float64 `json:"new"`
	Delta       float64 `json:"delta"` // (new-old)/|old|; +Inf shape avoided by the old==0 guard
	LowerBetter bool    `json:"lower_better,omitempty"`
	Regression  bool    `json:"regression,omitempty"`
	Improvement bool    `json:"improvement,omitempty"`
}

// DiffReport is the full comparison: every compared row (sorted by path),
// plus the selected paths present on only one side — a missing metric is a
// regression signal in its own right (the run lost coverage), a new one is
// informational.
type DiffReport struct {
	Rows        []DiffRow `json:"rows"`
	Missing     []string  `json:"missing,omitempty"`
	Added       []string  `json:"added,omitempty"`
	Regressions int       `json:"regressions"`
	Tol         float64   `json:"tol"`
}

// Failed reports whether the diff should gate: any row regressed past the
// tolerance, or a previously present metric disappeared.
func (r *DiffReport) Failed() bool { return r.Regressions > 0 || len(r.Missing) > 0 }

// Diff compares two decoded JSON documents under opts.
func Diff(oldDoc, newDoc any, opts DiffOptions) (*DiffReport, error) {
	tol := opts.Tol
	if tol == 0 {
		tol = 0.15
	}
	if tol < 0 {
		return nil, fmt.Errorf("tolerance must be positive, got %v", tol)
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = DefaultMetrics
	}
	minMetrics := opts.MinMetrics
	if minMetrics == 0 {
		minMetrics = 1
	}

	oldF, newF := FlattenJSON(oldDoc), FlattenJSON(newDoc)
	rep := &DiffReport{Tol: tol}
	for path, ov := range oldF {
		if !metrics.MatchString(path) {
			continue
		}
		nv, ok := newF[path]
		if !ok {
			rep.Missing = append(rep.Missing, path)
			continue
		}
		row := DiffRow{Path: path, Old: ov, New: nv,
			LowerBetter: opts.LowerBetter != nil && opts.LowerBetter.MatchString(path)}
		switch {
		case ov == nv:
			// exact match (covers 0 == 0)
		case ov == 0:
			// No relative scale: any appearance from zero is only judged by
			// direction, never within tolerance.
			worse := nv > 0 == row.LowerBetter
			row.Delta = 0
			row.Regression = worse
			row.Improvement = !worse
		default:
			abs := ov
			if abs < 0 {
				abs = -abs
			}
			row.Delta = (nv - ov) / abs
			bad := row.Delta
			if row.LowerBetter {
				bad = -bad
			}
			// bad < 0 now means the metric moved in the losing direction.
			row.Regression = bad < -tol
			row.Improvement = bad > tol
		}
		if row.Regression {
			rep.Regressions++
		}
		rep.Rows = append(rep.Rows, row)
	}
	for path := range newF {
		if metrics.MatchString(path) {
			if _, ok := oldF[path]; !ok {
				rep.Added = append(rep.Added, path)
			}
		}
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Path < rep.Rows[j].Path })
	sort.Strings(rep.Missing)
	sort.Strings(rep.Added)
	if len(rep.Rows)+len(rep.Missing) < minMetrics {
		return nil, fmt.Errorf("only %d metrics matched %q (want >= %d) — gate would be vacuous",
			len(rep.Rows)+len(rep.Missing), metrics, minMetrics)
	}
	return rep, nil
}
