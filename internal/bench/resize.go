// Resize-stall A/B: incremental cooperative migration versus the
// stop-the-world gate.
//
// The resize-ab experiment drives the real resizable table (internal/growt)
// through several forced doublings under a multi-worker insert stream and
// records per-operation latency into the observability histograms. The two
// migration modes differ only in who pays for the copy: gate mode stalls one
// victim operation for the whole O(capacity) rebuild (and every concurrent
// operation behind the exclusive gate), while incremental mode bounds every
// operation's resize work to at most one fixed-size chunk copy. The tail
// percentiles and the per-mode maximum make that difference directly
// measurable; the machine-readable summary lands in BENCH_resize.json.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dramhit/internal/growt"
	"dramhit/internal/obs"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

func init() {
	register("resize-ab", func(cfg Config) *Artifact {
		a, _ := RunResizeAB(cfg)
		return a
	})
}

// ResizeSchema identifies the BENCH_resize.json layout; bump on incompatible
// change.
const ResizeSchema = "dramhit-bench-resize/v1"

// ResizeRun is one mode's execution: the standard run shape plus the resize
// counters that explain the tail.
type ResizeRun struct {
	RunResult
	// Mode is the migration mode ("incremental" or "gate").
	Mode string `json:"mode"`
	// Grows counts completed capacity transitions during the timed phase.
	Grows uint64 `json:"grows"`
	// ChunksHelped / ChunkWaits are incremental-mode only: chunks copied by
	// helping operations, and operations that found their key's chunk busy.
	ChunksHelped uint64 `json:"chunks_helped,omitempty"`
	ChunkWaits   uint64 `json:"chunk_waits,omitempty"`
	// StallOps / StallMS count operations that took longer than stallCutoff
	// and their summed duration — the write-stall budget the A/B compares:
	// gate mode spends it holding every writer behind the full copy.
	StallOps uint64  `json:"stall_ops"`
	StallMS  float64 `json:"stall_ms"`
}

// stallCutoff classifies an op as stalled: two decimal orders above a worst
// normal op (a chunk-copy help is ~10µs), far below any full-table copy.
const stallCutoff = time.Millisecond

// ResizeSummary is the top-level BENCH_resize.json document.
type ResizeSummary struct {
	Schema     string      `json:"schema"`
	Quick      bool        `json:"quick"`
	ChunkSlots int         `json:"chunk_slots"`
	Runs       []ResizeRun `json:"runs"`
}

// RunResizeAB runs the insert-through-doublings stream in both migration
// modes and returns the text artifact and the machine-readable summary.
func RunResizeAB(cfg Config) (*Artifact, *ResizeSummary) {
	a := &Artifact{
		ID:     "resize-ab",
		Title:  "Resize-stall A/B: incremental migration vs stop-the-world gate",
		Header: []string{"mode", "workers", "Mops", "p50 ns", "p99 ns", "p999 ns", "max ns", "grows", "chunks helped", "stall ms"},
	}
	startSlots := uint64(1 << 18)
	totalOps := 1 << 19
	workers := 4
	if cfg.Quick {
		startSlots = 1 << 14
		totalOps = 1 << 14
		workers = 2
	}
	// More workers than cores measures the scheduler, not the table: each op
	// can sit descheduled for (workers-1) quanta — tens of ms — in either
	// mode, swamping the resize signal.
	if gmp := runtime.GOMAXPROCS(0); workers > gmp {
		workers = gmp
	}
	opsPerWorker := totalOps / workers

	sum := &ResizeSummary{Schema: ResizeSchema, Quick: cfg.Quick, ChunkSlots: growt.DefaultChunkSlots}
	var stallMS [2]float64
	var p999 [2]float64
	for i, mode := range []table.ResizeMode{table.ResizeGate, table.ResizeIncremental} {
		res := resizeRun(cfg, mode, startSlots, opsPerWorker, workers)
		sum.Runs = append(sum.Runs, res)
		stallMS[i] = res.StallMS
		p999[i] = res.LatencyNS.P999
		a.Rows = append(a.Rows, []string{
			mode.String(), fmt.Sprintf("%d", workers),
			fmt.Sprintf("%.1f", res.Mops),
			fmt.Sprintf("%.0f", res.LatencyNS.P50),
			fmt.Sprintf("%.0f", res.LatencyNS.P99),
			fmt.Sprintf("%.0f", res.LatencyNS.P999),
			fmt.Sprintf("%.0f", res.LatencyNS.Max),
			fmt.Sprintf("%d", res.Grows),
			fmt.Sprintf("%d", res.ChunksHelped),
			fmt.Sprintf("%.1f", res.StallMS),
		})
	}
	a.Notes = append(a.Notes,
		fmt.Sprintf("method: %d-slot start loaded to just under the %.0f%% threshold, then %d worker(s) insert %d fresh keys (per-op wall time), forcing doublings mid-stream", startSlots, growt.DefaultMaxFill*100, workers, opsPerWorker*workers),
		fmt.Sprintf("gate mode pays one O(capacity) stop-the-world copy per doubling and stalls every concurrent writer behind it; incremental mode bounds any op's resize work to one %d-slot chunk copy and pre-builds the successor off the op path", growt.DefaultChunkSlots),
		fmt.Sprintf("p99.9: gate %.0f ns vs incremental %.0f ns — the incremental tail is the chunk-copy bound, not the table size; the gate's full-copy stall surfaces in its max and its stall budget", p999[0], p999[1]),
		fmt.Sprintf("stalled time (ops >%v summed): gate %.1f ms vs incremental %.1f ms; absolute maxima on few-core hosts also carry GC and scheduler preemption, which hit both modes alike", stallCutoff, stallMS[0], stallMS[1]),
		"latency is per-op (not batched) because the stall IS the measurement; throughput therefore carries timer overhead equally in both modes",
		"incremental may report one more resize than gate: a stream ending above the pre-install threshold re-arms the background successor build, and the post-run drain completes it; gate only ever resizes when an insert hits the threshold",
		"machine-readable summary: BENCH_resize.json (schema "+ResizeSchema+")")
	return a, sum
}

// resizeRun executes the timed insert stream against one migration mode.
func resizeRun(cfg Config, mode table.ResizeMode, startSlots uint64, opsPerWorker, workers int) ResizeRun {
	reg := cfg.Observe
	if reg == nil {
		reg = obs.NewWith(0, 1)
	}
	tbl := growt.New(startSlots, growt.WithResizeMode(mode))
	tbl.Observe(reg)

	// Load phase (untimed): fill to just under the threshold so the very
	// first timed inserts already push the table into a migration.
	preload := int(float64(startSlots)*growt.DefaultMaxFill) - 64
	keys := workload.UniqueKeys(cfg.Seed, preload+opsPerWorker*workers)
	for _, k := range keys[:preload] {
		tbl.Put(k, k)
	}
	growsBefore := uint64(tbl.Grows())

	var wg sync.WaitGroup
	var stallOps, stallNS atomic.Uint64
	start := time.Now()
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			lat := &reg.Worker(fmt.Sprintf("resize-%s-w%d", mode, wid)).Lat
			mine := keys[preload+wid*opsPerWorker : preload+(wid+1)*opsPerWorker]
			for _, k := range mine {
				t0 := time.Now()
				tbl.Put(k, k)
				d := time.Since(t0)
				lat.Record(uint64(d.Nanoseconds()))
				if d > stallCutoff {
					stallOps.Add(1)
					stallNS.Add(uint64(d.Nanoseconds()))
				}
			}
		}(wid)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Drain to quiescence (untimed): finish any open window and any install
	// the stream left in flight, so Grows is deterministic — every resize
	// the stream caused, including one whose successor was still being
	// built when the last insert returned.
	for {
		st := tbl.Stats()
		if st.Migrating {
			tbl.Get(0) // each lookup helps one chunk
			continue
		}
		if st.InstallPending {
			runtime.Gosched()
			continue
		}
		break
	}

	prefix := fmt.Sprintf("resize-%s-", mode)
	var merged obs.Histogram
	for _, wk := range reg.Workers() {
		if strings.HasPrefix(wk.Name(), prefix) {
			merged.Merge(&wk.Lat)
		}
	}
	pct := PercentilesFromHistogram(&merged)
	st := tbl.Stats()
	totalOps := opsPerWorker * workers
	return ResizeRun{
		RunResult: RunResult{
			Name:      "resize-" + mode.String(),
			Table:     "growt",
			Workload:  "insert-growth",
			Records:   preload,
			Ops:       totalOps,
			Workers:   workers,
			Seconds:   elapsed.Seconds(),
			Mops:      float64(totalOps) / elapsed.Seconds() / 1e6,
			LatencyNS: &pct,
		},
		Mode:         mode.String(),
		Grows:        st.Grows - growsBefore,
		ChunksHelped: st.ChunksHelped,
		ChunkWaits:   st.ChunkWaits,
		StallOps:     stallOps.Load(),
		StallMS:      float64(stallNS.Load()) / 1e6,
	}
}
