// Machine-readable benchmark artifacts: every real-execution run can be
// serialized as a RunResult, and the ycsb experiment aggregates its runs
// into a schema-versioned summary (BENCH_ycsb.json) that CI validates and
// downstream tooling (plotters, regression diffing) consumes without
// scraping the text tables.
package bench

import (
	"encoding/json"
	"os"
	"path/filepath"

	"dramhit/internal/obs"
	"dramhit/internal/shardmap"
)

// YCSBSchema identifies the summary layout; bump on incompatible change.
// v2: runs carry warmup_ops (the untimed per-worker ramp that keeps
// first-touch page faults out of the latency tail), the governor mode and
// its final decision, and an optional latency_hist bucket dump.
const YCSBSchema = "dramhit-bench-ycsb/v2"

// GovernorSchema identifies the governor-ab summary layout (BENCH_governor.json).
const GovernorSchema = "dramhit-bench-governor/v1"

// ShardSchema identifies the shard-ab summary layout (BENCH_shard.json).
const ShardSchema = "dramhit-bench-shard/v1"

// LayoutSchema identifies the layout-ab summary layout (BENCH_layout.json).
const LayoutSchema = "dramhit-bench-layout/v1"

// ServerSchema identifies the server-ab summary layout (BENCH_server.json).
const ServerSchema = "dramhit-bench-server/v1"

// Percentiles summarizes a latency distribution in nanoseconds.
type Percentiles struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Count uint64  `json:"count"`
}

// PercentilesFromHistogram extracts the standard summary from a merged
// observability histogram (log-bucketed: values carry the bucket's ≤1/32
// relative error).
func PercentilesFromHistogram(h *obs.Histogram) Percentiles {
	return Percentiles{
		P50:   float64(h.Quantile(0.50)),
		P90:   float64(h.Quantile(0.90)),
		P99:   float64(h.Quantile(0.99)),
		P999:  float64(h.Quantile(0.999)),
		Max:   float64(h.Max()),
		Mean:  h.Mean(),
		Count: h.Count(),
	}
}

// RunResult is one benchmark execution: what ran, how fast, and the latency
// shape. It is the unit of results/*.json and of the ycsb summary.
type RunResult struct {
	Name      string  `json:"name"`
	Table     string  `json:"table"`
	Workload  string  `json:"workload"`
	Records   int     `json:"records"`
	Ops       int     `json:"ops"`
	Workers   int     `json:"workers"`
	Theta     float64 `json:"theta"`
	MissRatio float64 `json:"miss_ratio,omitempty"`
	Combining string  `json:"combining,omitempty"`
	// WarmupOps is the per-worker untimed ramp executed before the clock
	// starts; it keeps first-touch page faults (multi-ms on a cold table)
	// out of latency_ns.max.
	WarmupOps int `json:"warmup_ops,omitempty"`
	// Governor is the table's governor mode ("off"/"auto"/"direct") and
	// GovernorDecision the controller's final decision string after the run
	// (auto mode only) — e.g. "direct" or "window=16 combine filter".
	Governor         string `json:"governor,omitempty"`
	GovernorDecision string `json:"governor_decision,omitempty"`
	// Layout is the physical slot layout when it is not the flat default
	// ("bucket"); ValueSize and ValueTheta describe byte-string runs
	// (loadgen -valuesize): the value-size cap in bytes and the zipf skew
	// of per-write sizes over [1, ValueSize] (0 = fixed at ValueSize).
	Layout     string  `json:"layout,omitempty"`
	ValueSize  int     `json:"value_size,omitempty"`
	ValueTheta float64 `json:"value_theta,omitempty"`
	// Conns, Pipeline, Proto, TargetRate and Errors describe socket-mode
	// runs (loadgen -socket and the server-ab experiment): client TCP
	// connection count, per-connection pipeline depth, the wire protocol
	// ("resp"), the open-loop target in ops/sec (0 = closed loop), and the
	// number of error replies received.
	Conns      int     `json:"conns,omitempty"`
	Pipeline   int     `json:"pipeline,omitempty"`
	Proto      string  `json:"proto,omitempty"`
	TargetRate float64 `json:"target_rate,omitempty"`
	Errors     uint64  `json:"errors,omitempty"`
	// Shards, ShardStats, SplitAt and SplitSeconds describe sharded runs
	// (loadgen -table sharded): the final shard count, per-shard occupancy,
	// and — when a live split was forced at SplitAt of the timed ops — the
	// split's install-to-completion wall time.
	Shards       int                  `json:"shards,omitempty"`
	ShardStats   []shardmap.ShardStat `json:"shard_stats,omitempty"`
	SplitAt      float64              `json:"split_at,omitempty"`
	SplitSeconds float64              `json:"split_seconds,omitempty"`
	Seconds      float64              `json:"seconds"`
	Mops         float64              `json:"mops"`
	LatencyNS    *Percentiles         `json:"latency_ns,omitempty"`
	// LatencyHist is the merged log-bucketed distribution (occupied buckets
	// only), for consumers that need more than the fixed percentiles.
	LatencyHist []obs.HistBucket `json:"latency_hist,omitempty"`
	// OpsByType counts timed operations per op class (get_hit, get_miss,
	// put, upsert, delete_hit, delete_miss) and OpLatencyNS summarizes each
	// class's client-side latency distribution; HotKeys is the merged
	// Space-Saving hot-key ranking when the run was introspected
	// (loadgen -introspect).
	OpsByType   map[string]uint64      `json:"ops_by_type,omitempty"`
	OpLatencyNS map[string]Percentiles `json:"op_latency_ns,omitempty"`
	HotKeys     []obs.TopKItem         `json:"hot_keys,omitempty"`
}

// YCSBSummary is the top-level BENCH_ycsb.json document.
type YCSBSummary struct {
	Schema string      `json:"schema"`
	Quick  bool        `json:"quick"`
	Runs   []RunResult `json:"runs"`
}

// GovernorSummary is the top-level BENCH_governor.json document: the
// governor-ab matrix plus the headline folklore-gap ratios (dramhit Mops
// over folklore Mops per workload, for the auto-governed table).
type GovernorSummary struct {
	Schema string             `json:"schema"`
	Quick  bool               `json:"quick"`
	Runs   []RunResult        `json:"runs"`
	Ratios map[string]float64 `json:"auto_vs_folklore_mops,omitempty"`
}

// ServerSummary is the top-level BENCH_server.json document: the server-ab
// matrix (dramhit vs folklore backend across connection counts over a live
// loopback RESP socket) plus the headline backend ratios.
type ServerSummary struct {
	Schema string      `json:"schema"`
	Quick  bool        `json:"quick"`
	Runs   []RunResult `json:"runs"`
	// Ratios maps "c<conns>" to dramhit-backend Mops over folklore-backend
	// Mops at that connection count.
	Ratios map[string]float64 `json:"dramhit_vs_folklore_mops,omitempty"`
	// MaxConns is the largest connection count any cell sustained.
	MaxConns int `json:"max_conns"`
}

// ShardSimRun is one cell of the shard-ab experiment's simulated NUMA sweep
// (internal/simtable on the cycle-level machine model).
type ShardSimRun struct {
	Name      string  `json:"name"`
	Shards    int     `json:"shards"`
	Placement string  `json:"placement"`
	Workers   int     `json:"workers"`
	Theta     float64 `json:"theta"`
	Slots     uint64  `json:"slots"`
	Mops      float64 `json:"mops"`
}

// ShardSummary is the top-level BENCH_shard.json document: the simulated
// NUMA placement sweep, the real-execution live-split runs, and the two
// headline acceptance figures.
type ShardSummary struct {
	Schema  string        `json:"schema"`
	Quick   bool          `json:"quick"`
	SimRuns []ShardSimRun `json:"sim_runs"`
	Runs    []RunResult   `json:"runs"`
	// AggMops8v1 is simulated aggregate Mops of 8 shard-local shards over 1
	// node0-homed shard at equal total workers, YCSB-C θ=0 (acceptance ≥ 3).
	AggMops8v1 float64 `json:"agg_mops_8v1"`
	// SplitP999Ratio maps each real-execution config to during-split p99.9
	// over steady-state p99.9 (acceptance ≤ 10 — no stop-the-world plateau).
	SplitP999Ratio map[string]float64 `json:"split_p999_ratio"`
	// SplitsCompleted counts live splits finished during each split run.
	SplitsCompleted map[string]uint64 `json:"splits_completed"`
}

// WriteJSONFile marshals v indented and writes it to path, creating parent
// directories as needed.
func WriteJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
