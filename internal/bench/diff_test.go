package bench

import (
	"encoding/json"
	"regexp"
	"testing"
)

func decode(t *testing.T, s string) any {
	t.Helper()
	var doc any
	if err := json.Unmarshal([]byte(s), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestFlattenJSON pins the path grammar: dotted objects, name-keyed arrays
// of named objects, index-keyed arrays otherwise, numeric leaves only.
func TestFlattenJSON(t *testing.T) {
	doc := decode(t, `{
		"schema": "x/v1",
		"quick": true,
		"runs": [
			{"name": "a", "mops": 10, "latency_ns": {"p50": 100}},
			{"name": "b", "mops": 20}
		],
		"points": [1, 2, 3]
	}`)
	f := FlattenJSON(doc)
	want := map[string]float64{
		"quick":                 1,
		"runs.a.mops":           10,
		"runs.a.latency_ns.p50": 100,
		"runs.b.mops":           20,
		"points.0":              1,
		"points.1":              2,
		"points.2":              3,
	}
	for k, v := range want {
		if f[k] != v {
			t.Errorf("flat[%q] = %v, want %v", k, f[k], v)
		}
	}
	if _, ok := f["schema"]; ok {
		t.Error("string leaf flattened to a metric")
	}
	// Duplicate names fall back to index keying.
	dup := decode(t, `{"runs": [{"name": "a", "m": 1}, {"name": "a", "m": 2}]}`)
	fd := FlattenJSON(dup)
	if fd["runs.0.m"] != 1 || fd["runs.1.m"] != 2 {
		t.Errorf("duplicate-name array not index-keyed: %v", fd)
	}
}

// TestDiffWithinTolerance: a 10% wobble under the 15% gate passes, and run
// reordering does not shift paths.
func TestDiffWithinTolerance(t *testing.T) {
	oldDoc := decode(t, `{"runs": [{"name": "a", "mops": 10}, {"name": "b", "mops": 20}]}`)
	newDoc := decode(t, `{"runs": [{"name": "b", "mops": 21.9}, {"name": "a", "mops": 9.0}]}`)
	rep, err := Diff(oldDoc, newDoc, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("10%% wobble failed the 15%% gate: %+v", rep)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
}

// TestDiffRegression: the CI demonstration case — a synthetic −20% on a
// throughput metric must gate.
func TestDiffRegression(t *testing.T) {
	oldDoc := decode(t, `{"runs": [{"name": "a", "mops": 10}, {"name": "b", "mops": 20}]}`)
	newDoc := decode(t, `{"runs": [{"name": "a", "mops": 8}, {"name": "b", "mops": 20}]}`)
	rep, err := Diff(oldDoc, newDoc, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || rep.Regressions != 1 {
		t.Fatalf("-20%% did not gate: %+v", rep)
	}
	for _, row := range rep.Rows {
		if row.Path == "runs.a.mops" && !row.Regression {
			t.Errorf("runs.a.mops not flagged: %+v", row)
		}
		if row.Path == "runs.b.mops" && (row.Regression || row.Improvement) {
			t.Errorf("unchanged metric flagged: %+v", row)
		}
	}
}

// TestDiffLowerBetter: latency metrics gate on increase, pass on decrease.
func TestDiffLowerBetter(t *testing.T) {
	oldDoc := decode(t, `{"lat": {"p99": 100}, "mops": 10}`)
	upDoc := decode(t, `{"lat": {"p99": 140}, "mops": 10}`)
	opts := DiffOptions{
		Metrics:     regexp.MustCompile(`p99|mops`),
		LowerBetter: regexp.MustCompile(`lat`),
	}
	rep, err := Diff(oldDoc, upDoc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("+40%% latency did not gate: %+v", rep)
	}
	downDoc := decode(t, `{"lat": {"p99": 60}, "mops": 10}`)
	rep, err = Diff(oldDoc, downDoc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("-40%% latency gated: %+v", rep)
	}
}

// TestDiffMissingMetric: losing a previously present metric fails the gate
// (coverage loss is not a pass).
func TestDiffMissingMetric(t *testing.T) {
	oldDoc := decode(t, `{"runs": [{"name": "a", "mops": 10}, {"name": "b", "mops": 20}]}`)
	newDoc := decode(t, `{"runs": [{"name": "a", "mops": 10}]}`)
	rep, err := Diff(oldDoc, newDoc, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || len(rep.Missing) != 1 || rep.Missing[0] != "runs.b.mops" {
		t.Fatalf("missing metric not flagged: %+v", rep)
	}
}

// TestDiffVacuousGate: a metrics regexp that matches nothing is an error,
// never a pass.
func TestDiffVacuousGate(t *testing.T) {
	oldDoc := decode(t, `{"mops": 10}`)
	if _, err := Diff(oldDoc, oldDoc, DiffOptions{Metrics: regexp.MustCompile(`nonexistent`)}); err == nil {
		t.Fatal("zero matched metrics did not error")
	}
}

// TestDiffZeroBaseline: no relative scale at old == 0 — judged by direction
// only, and 0 → 0 is an exact pass.
func TestDiffZeroBaseline(t *testing.T) {
	oldDoc := decode(t, `{"a": {"mops": 0}, "b": {"mops": 0}}`)
	newDoc := decode(t, `{"a": {"mops": 5}, "b": {"mops": 0}}`)
	rep, err := Diff(oldDoc, newDoc, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("throughput appearing from zero gated: %+v", rep)
	}
}
