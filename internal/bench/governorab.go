// The governor-ab experiment: the folklore-gap matrix the adaptive pipeline
// governor exists to close. It reuses the ycsb cells (same load, same zipf
// streams, same warmup protocol) across {workload A, C} × {folklore,
// dramhit governor-off, governor-auto, governor-direct}, so one table shows
// where batched pipelining pays, where the folklore execution model wins,
// and where the auto governor lands relative to both.
package bench

import (
	"fmt"

	tbl "dramhit/internal/table"
)

// govCell is one dramhit-side variant of the governor-ab matrix.
type govCell struct {
	table string
	gov   tbl.GovernorMode
	label string
}

var govCells = []govCell{
	{"folklore", tbl.GovernorOff, "folklore"},
	{"dramhit", tbl.GovernorOff, "dramhit/off"},
	{"dramhit", tbl.GovernorAuto, "dramhit/auto"},
	{"dramhit", tbl.GovernorDirect, "dramhit/direct"},
}

// RunGovernorAB runs the governor A/B matrix and returns the text artifact
// plus the machine-readable summary (BENCH_governor.json).
func RunGovernorAB(cfg Config) (*Artifact, *GovernorSummary) {
	a := &Artifact{
		ID:     "governor-ab",
		Title:  "Adaptive governor vs pinned modes vs folklore (YCSB A/C, zipf 0.99)",
		Header: []string{"workload", "variant", "Mops", "p50 ns", "p99 ns", "max ns", "decision"},
	}
	slots := uint64(1 << 20)
	opsPerWorker := 1 << 20
	workers := 4
	if cfg.Quick {
		slots = 1 << 16
		opsPerWorker = 1 << 13
		workers = 2
	}
	records := int(slots / 2)

	sum := &GovernorSummary{Schema: GovernorSchema, Quick: cfg.Quick, Ratios: map[string]float64{}}
	for _, w := range ycsbWorkloads {
		mops := map[string]float64{}
		for _, c := range govCells {
			res := ycsbRun(cfg, c.table, w, slots, records, opsPerWorker, workers, c.gov)
			res.Name = "governor-ab-" + w.name + "-" + c.label
			if c.table == "dramhit" {
				res.Governor = c.gov.String()
			}
			sum.Runs = append(sum.Runs, res)
			mops[c.label] = res.Mops
			lat := res.LatencyNS
			a.Rows = append(a.Rows, []string{
				w.name, c.label,
				fmt.Sprintf("%.1f", res.Mops),
				fmt.Sprintf("%.0f", lat.P50),
				fmt.Sprintf("%.0f", lat.P99),
				fmt.Sprintf("%.0f", lat.Max),
				res.GovernorDecision,
			})
		}
		if f := mops["folklore"]; f > 0 {
			sum.Ratios[w.name] = mops["dramhit/auto"] / f
		}
	}
	a.Notes = append(a.Notes,
		"method: the ycsb cells (same load, warmup ramp, per-worker zipf streams) across four variants; dramhit/off is the PR-5 pipeline verbatim, dramhit/direct is the folklore execution model on DRAMHiT's SWAR kernel, dramhit/auto lets the hill-climbing controller choose",
		"the folklore gap: synchronous probes win when the working set is cache-resident (zipf 0.99 concentrates hits), pipelining wins when misses dominate; the governor's job is to land on the right side per workload without being told",
		fmt.Sprintf("acceptance: auto_vs_folklore_mops ≥ 1.0 per workload in BENCH_governor.json (schema %s)", GovernorSchema),
		"decision column is the controller's final configuration after the run (auto cells only)")
	return a, sum
}
