package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be registered.
	want := []string{
		"table1", "fig2", "fig5", "fig6a", "fig6b", "fig6c", "fig7",
		"fig8a", "fig8b", "fig8c", "fig9", "fig10a", "fig10b", "fig10c",
		"fig11", "fig12a", "fig12b",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(IDs()), len(want))
	}
}

func TestIDsOrderedAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range IDs() {
		if seen[id] {
			t.Errorf("duplicate id %s", id)
		}
		seen[id] = true
	}
	if IDs()[0] != "table1" {
		t.Errorf("first experiment %s, want table1", IDs()[0])
	}
}

func TestTable1Shape(t *testing.T) {
	r, _ := Get("table1")
	a := r(Config{Quick: true, Seed: 1})
	if len(a.Rows) != 7 {
		t.Fatalf("table1 has %d rows, want 7", len(a.Rows))
	}
	// Ordering property from the paper: theoretical > seq reads > random
	// reads; random r/w mixes below random reads.
	get := func(i int) float64 {
		var v float64
		if _, err := fmt.Sscan(a.Rows[i][1], &v); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		return v
	}
	theo, seqR, randR, randRW := get(0), get(1), get(4), get(5)
	if !(theo > seqR && seqR > randR && randR > randRW) {
		t.Errorf("bandwidth ordering violated: theo %.1f seq %.1f rand %.1f randRW %.1f",
			theo, seqR, randR, randRW)
	}
	// Paper bands: seq reads ~111 of 127.8, random reads ~85.
	if seqR < 100 || seqR > 120 {
		t.Errorf("seq read bandwidth %.1f outside ~111 band", seqR)
	}
	if randR < 75 || randR > 95 {
		t.Errorf("random read bandwidth %.1f outside ~85 band", randR)
	}
}

func TestFig2ContentionBlowUp(t *testing.T) {
	r, _ := Get("fig2")
	a := r(Config{Quick: true, Seed: 1})
	if len(a.Series) != 4 {
		t.Fatalf("fig2 has %d series", len(a.Series))
	}
	for _, s := range a.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last < first*3 {
			t.Errorf("%s: no contention blow-up (%.0f -> %.0f cycles)", s.Name, first, last)
		}
	}
	// Spinlock must exceed atomic inc at high skew.
	bySuffix := map[string][2]float64{}
	for _, s := range a.Series {
		parts := strings.SplitN(s.Name, " ", 2)
		v := bySuffix[parts[1]]
		if parts[0] == "spinlock" {
			v[0] = s.Y[len(s.Y)-1]
		} else {
			v[1] = s.Y[len(s.Y)-1]
		}
		bySuffix[parts[1]] = v
	}
	for ds, v := range bySuffix {
		if v[0] <= v[1] {
			t.Errorf("%s: spinlock (%.0f) should exceed atomic inc (%.0f) under contention", ds, v[0], v[1])
		}
	}
}

func TestFig5Flat(t *testing.T) {
	r, _ := Get("fig5")
	a := r(Config{Quick: true, Seed: 1})
	s := a.Series[0]
	for i, y := range s.Y {
		if y < 8 || y > 80 {
			t.Errorf("delegation cost at n=%v is %.1f cycles, outside the 22-37 neighborhood", s.X[i], y)
		}
	}
}

func TestFig9Percentiles(t *testing.T) {
	r, _ := Get("fig9")
	a := r(Config{Quick: true, Seed: 1})
	if len(a.Series) < 4 {
		t.Fatalf("fig9 has %d series", len(a.Series))
	}
	// DRAMHiT-P insert latency must be far below DRAMHiT's (fire-and-forget
	// submission vs pipelined completion).
	med := map[string]float64{}
	for _, s := range a.Series {
		// median = x where y crosses 0.5
		for i, y := range s.Y {
			if y >= 0.5 {
				med[s.Name] = s.X[i]
				break
			}
		}
	}
	if med["dramhit-p inserts"] >= med["dramhit inserts"] {
		t.Errorf("median latency: dramhit-p %.0f should be far below dramhit %.0f",
			med["dramhit-p inserts"], med["dramhit inserts"])
	}
	if med["folklore inserts"] >= med["dramhit inserts"] {
		t.Errorf("folklore median %.0f should be below pipelined dramhit %.0f",
			med["folklore inserts"], med["dramhit inserts"])
	}
}

func TestFormatRendersSeriesAndTables(t *testing.T) {
	a := &Artifact{
		ID: "x", Title: "T", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}}},
		Notes:  []string{"hello"},
	}
	out := Format(a)
	for _, want := range []string{"# x — T", "s1", "10", "20", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
	tb := &Artifact{ID: "t", Title: "T2", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	if !strings.Contains(Format(tb), "a  b") {
		t.Error("table header not aligned")
	}
}

func TestQuickRunsAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep is slow")
	}
	// Smoke: every runner completes in quick mode and yields data.
	for _, id := range IDs() {
		r, _ := Get(id)
		a := r(Config{Quick: true, Seed: 7})
		if a.ID != id {
			t.Errorf("%s: artifact reports ID %s", id, a.ID)
		}
		if len(a.Series) == 0 && len(a.Rows) == 0 {
			t.Errorf("%s produced no data", id)
		}
		if out := Format(a); len(out) < 40 {
			t.Errorf("%s formatted output suspiciously small", id)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:       "1",
		1.5:     "1.5",
		1.25:    "1.25",
		0:       "0",
		1192.04: "1192.04",
		0.2:     "0.2",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatMismatchedSeriesX(t *testing.T) {
	// Series with disjoint X values must still render, with blanks where a
	// series has no point.
	a := &Artifact{
		ID: "m", Title: "mismatch", XLabel: "x",
		Series: []Series{
			{Name: "a", X: []float64{1, 3}, Y: []float64{10, 30}},
			{Name: "b", X: []float64{2, 3}, Y: []float64{20, 33}},
		},
	}
	out := Format(a)
	for _, want := range []string{"10", "20", "30", "33"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s:\n%s", want, out)
		}
	}
	// Three x rows (1, 2, 3).
	lines := strings.Count(out, "\n")
	if lines < 5 {
		t.Errorf("unexpectedly few lines:\n%s", out)
	}
}

// TestShardABQuick checks the sharding matrix's structural claims in quick
// mode: the summary carries the schema, the simulated sweep covers the four
// placement cells, both real configs have steady and split runs with live
// splits completed, and the acceptance ratios are computed. The acceptance
// thresholds themselves (agg_mops_8v1 ≥ 3, split p99.9 ≤ 10× steady) are
// full-mode claims validated against the committed BENCH_shard.json; quick
// mode only proves the machinery.
func TestShardABQuick(t *testing.T) {
	a, sum := RunShardAB(Config{Quick: true, Seed: 7})
	if sum.Schema != ShardSchema {
		t.Fatalf("schema = %q, want %q", sum.Schema, ShardSchema)
	}
	if len(sum.SimRuns) != 4 {
		t.Fatalf("quick sim sweep has %d runs, want 4", len(sum.SimRuns))
	}
	if sum.AggMops8v1 <= 0 {
		t.Fatalf("agg_mops_8v1 = %v, want > 0", sum.AggMops8v1)
	}
	if len(sum.Runs) != 4 {
		t.Fatalf("real matrix has %d runs, want 4 (2 configs × steady/split)", len(sum.Runs))
	}
	for _, cfg := range []string{"C-theta0", "A-theta099"} {
		if sum.SplitsCompleted[cfg] == 0 {
			t.Errorf("%s: no live splits completed during the split phase", cfg)
		}
		if sum.SplitP999Ratio[cfg] <= 0 {
			t.Errorf("%s: split p99.9 ratio not computed", cfg)
		}
	}
	for _, r := range sum.Runs {
		if r.LatencyNS == nil || r.LatencyNS.P999 <= 0 {
			t.Errorf("run %s: missing latency percentiles", r.Name)
		}
		if r.Mops <= 0 {
			t.Errorf("run %s: Mops = %v", r.Name, r.Mops)
		}
	}
	if len(a.Rows) != len(sum.SimRuns)+len(sum.Runs) {
		t.Errorf("artifact has %d rows, want %d", len(a.Rows), len(sum.SimRuns)+len(sum.Runs))
	}
}

// TestTagsABQuick checks the paired filter A/B's structural claims in quick
// mode: the accounting identity keylines(tags)+tagskips(tags) == keylines(none)
// on every workload, a real key-line reduction on the negative-lookup phase,
// and unchanged hit rates (the filter must never alter results).
func TestTagsABQuick(t *testing.T) {
	r, ok := Get("tags-ab")
	if !ok {
		t.Fatal("tags-ab not registered")
	}
	a := r(Config{Quick: true, Seed: 7})
	if len(a.Rows) != 4 {
		t.Fatalf("want 4 rows (2 workloads x 2 filters), got %d", len(a.Rows))
	}
	col := map[string]int{}
	for i, h := range a.Header {
		col[h] = i
	}
	f64 := func(row []string, name string) float64 {
		v, err := strconv.ParseFloat(row[col[name]], 64)
		if err != nil {
			t.Fatalf("row %v column %s: %v", row, name, err)
		}
		return v
	}
	// Rows come in (none, tags) pairs per workload.
	for i := 0; i < len(a.Rows); i += 2 {
		none, tags := a.Rows[i], a.Rows[i+1]
		if none[1] != "none" || tags[1] != "tags" {
			t.Fatalf("unexpected filter order: %v / %v", none, tags)
		}
		if none[0] != tags[0] {
			t.Fatalf("row pairing broke: %q vs %q", none[0], tags[0])
		}
		if s := f64(none, "tagskips/op"); s != 0 {
			t.Errorf("%s: unfiltered run recorded tag skips (%v)", none[0], s)
		}
		klN, klT, sk := f64(none, "keylines/op"), f64(tags, "keylines/op"), f64(tags, "tagskips/op")
		if diff := klT + sk - klN; diff > 0.001 || diff < -0.001 {
			t.Errorf("%s: accounting identity violated: %v + %v != %v", none[0], klT, sk, klN)
		}
		if hrN, hrT := f64(none, "hitrate"), f64(tags, "hitrate"); hrN != hrT {
			t.Errorf("%s: filter changed hit rate: %v vs %v", none[0], hrN, hrT)
		}
	}
	// Negative-lookup phase (first pair): the headline reduction.
	if klN, klT := f64(a.Rows[0], "keylines/op"), f64(a.Rows[1], "keylines/op"); klT*2 >= klN+1 {
		t.Errorf("filter too weak on negative lookups: %v key lines with tags, %v without", klT, klN)
	}
}
