// The shard-ab experiment: the horizontal-sharding matrix behind
// internal/shardmap. It has two halves, one per acceptance claim:
//
//   - A simulated NUMA sweep (internal/simtable on the cycle-level machine)
//     measuring aggregate find throughput across shards × workers × zipf
//     theta under the three placements — 8 shards placed shard-local, the
//     same table interleaved, and a single shard homed on node 0 (the
//     first-touch layout an unsharded table really gets). The headline is
//     agg_mops_8v1: 8-shard shard-local over 1-shard node0 at equal total
//     workers on YCSB-C (θ=0), which must be ≥ 3.
//
//   - A real-execution split matrix driving shardmap.Map (the actual Go
//     router) with live shard splits racing the op stream, recording per-op
//     latency histograms for a steady-state phase and a split-saturated
//     phase of the same workload. The claim is the absence of a
//     stop-the-world plateau: during-split p99.9 stays within 10× the
//     steady-state p99.9.
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dramhit/internal/memsim"
	"dramhit/internal/obs"
	"dramhit/internal/shardmap"
	"dramhit/internal/simtable"
	"dramhit/internal/workload"
)

func init() {
	register("shard-ab", func(cfg Config) *Artifact {
		a, _ := RunShardAB(cfg)
		return a
	})
}

// shardSimCell is one row of the simulated NUMA sweep.
type shardSimCell struct {
	shards    int
	placement string
	workers   int
	theta     float64
}

// RunShardAB runs the sharding matrix and returns the text artifact plus the
// machine-readable summary (BENCH_shard.json).
func RunShardAB(cfg Config) (*Artifact, *ShardSummary) {
	a := &Artifact{
		ID:    "shard-ab",
		Title: "Horizontal sharding: NUMA placement sweep (sim) + live-split latency (real)",
		Header: []string{"phase", "config", "shards", "workers", "theta",
			"Mops", "p50 ns", "p999 ns", "splits"},
	}
	sum := &ShardSummary{
		Schema:          ShardSchema,
		Quick:           cfg.Quick,
		SplitP999Ratio:  map[string]float64{},
		SplitsCompleted: map[string]uint64{},
	}

	// ---- Simulated NUMA sweep -------------------------------------------
	// Full mode reproduces the headline at the paper machine's full width:
	// 64 workers on the two-socket Skylake with the UPI modeled, a 512 MB
	// table (far beyond either socket's 22 MB LLC — at 64 MB a third of the
	// node0 baseline's probes would hit socket 0's LLC and flatter it).
	simSlots := uint64(1 << 25)
	simOps := 300_000
	width := 64
	narrow := 16
	if cfg.Quick {
		simSlots = 1 << 20
		simOps = 30_000
		width = 16
		narrow = 8
	}
	cells := []shardSimCell{
		{8, "local", width, 0},
		{8, "interleave", width, 0},
		{1, "interleave", width, 0},
		{1, "node0", width, 0},
	}
	if !cfg.Quick {
		cells = append(cells,
			// Worker axis: the gap narrows when compute, not channels, binds.
			shardSimCell{8, "local", narrow, 0},
			shardSimCell{8, "interleave", narrow, 0},
			shardSimCell{1, "interleave", narrow, 0},
			shardSimCell{1, "node0", narrow, 0},
			// Zipf axis: skew concentrates probes and LLC hits soften node0.
			shardSimCell{8, "local", width, 0.99},
			shardSimCell{1, "node0", width, 0.99},
		)
	}
	simMops := map[string]float64{}
	for _, c := range cells {
		m := memsim.IntelSkylake()
		m.InterconnectGBs = 41.6
		res := simtable.Run(simtable.Config{
			Machine:    m,
			Kind:       simtable.DRAMHiT,
			Threads:    c.workers,
			Slots:      simSlots,
			Theta:      c.theta,
			Shards:     c.shards,
			Placement:  c.placement,
			MeasureOps: simOps,
			Seed:       cfg.Seed,
		}, simtable.Finds)
		name := fmt.Sprintf("sim-%dsh-%s-%dw-t%.2f", c.shards, c.placement, c.workers, c.theta)
		run := ShardSimRun{
			Name: name, Shards: c.shards, Placement: c.placement,
			Workers: c.workers, Theta: c.theta, Slots: simSlots, Mops: res.Mops,
		}
		sum.SimRuns = append(sum.SimRuns, run)
		simMops[name] = res.Mops
		a.Rows = append(a.Rows, []string{
			"sim", c.placement, fmt.Sprintf("%d", c.shards), fmt.Sprintf("%d", c.workers),
			fmt.Sprintf("%.2f", c.theta), fmt.Sprintf("%.0f", res.Mops), "-", "-", "-",
		})
	}
	local := simMops[fmt.Sprintf("sim-8sh-local-%dw-t0.00", width)]
	node0 := simMops[fmt.Sprintf("sim-1sh-node0-%dw-t0.00", width)]
	if node0 > 0 {
		sum.AggMops8v1 = local / node0
	}

	// ---- Real-execution live-split matrix -------------------------------
	slots := uint64(1 << 20)
	opsPerWorker := 1 << 18
	workers := 4
	if cfg.Quick {
		slots = 1 << 16
		opsPerWorker = 1 << 13
		workers = 2
	}
	records := int(slots / 2)
	realCells := []struct {
		name     string
		theta    float64
		readProb float64
	}{
		{"C-theta0", 0, 1.0},      // YCSB-C, uniform
		{"A-theta099", 0.99, 0.5}, // YCSB-A-style 50/50, zipf 0.99
	}
	for _, rc := range realCells {
		var steady Percentiles
		for _, split := range []bool{false, true} {
			res, splits := shardSplitRun(cfg, rc.name, rc.theta, rc.readProb,
				split, slots, records, opsPerWorker, workers)
			sum.Runs = append(sum.Runs, res)
			phase := "real/steady"
			if split {
				phase = "real/split"
				sum.SplitsCompleted[rc.name] = splits
				if steady.P999 > 0 {
					sum.SplitP999Ratio[rc.name] = res.LatencyNS.P999 / steady.P999
				}
			} else {
				steady = *res.LatencyNS
			}
			a.Rows = append(a.Rows, []string{
				phase, rc.name, "4→8", fmt.Sprintf("%d", workers),
				fmt.Sprintf("%.2f", rc.theta),
				fmt.Sprintf("%.1f", res.Mops),
				fmt.Sprintf("%.0f", res.LatencyNS.P50),
				fmt.Sprintf("%.0f", res.LatencyNS.P999),
				fmt.Sprintf("%d", splits),
			})
		}
	}

	a.Notes = append(a.Notes,
		fmt.Sprintf("sim method: DRAMHiT kind on the Skylake model with the UPI modeled (41.6 GB/s/direction), %d-slot table (%.0f MB — DRAM-resident on both sockets), range-of-hash confined shard streams, placements local (shard-per-node) / interleave / node0 (single first-touch allocation)", simSlots, float64(simSlots*16)/(1<<20)),
		fmt.Sprintf("headline agg_mops_8v1 = %.2f: 8 shard-local shards over 1 node0 shard at %d total workers, YCSB-C θ=0 (acceptance ≥ 3; node0 pays the six-channel bound plus directory write-backs doubling every remote read, shard-local runs all twelve channels compute-bound)", sum.AggMops8v1, width),
		"real method: shardmap.Map (folklore shards, online re-sharding) under per-worker zipf op streams; the split phase doubles the shard count live (4→8) while ops race every chunk boundary, helping cooperatively; latency is batch-16 wall time per op, log-bucketed histograms",
		fmt.Sprintf("acceptance: during-split p99.9 ≤ 10× steady-state p99.9 per config (no stop-the-world plateau); measured ratios: %s", formatRatioMap(sum.SplitP999Ratio)),
		fmt.Sprintf("machine-readable summary lands in BENCH_shard.json (schema %s)", ShardSchema))
	return a, sum
}

// formatRatioMap renders name=ratio pairs deterministically for notes.
func formatRatioMap(m map[string]float64) string {
	if len(m) == 0 {
		return "n/a"
	}
	parts := make([]string, 0, len(m))
	for _, k := range []string{"C-theta0", "A-theta099"} {
		if v, ok := m[k]; ok {
			parts = append(parts, fmt.Sprintf("%s=%.2fx", k, v))
		}
	}
	for k, v := range m {
		if k != "C-theta0" && k != "A-theta099" {
			parts = append(parts, fmt.Sprintf("%s=%.2fx", k, v))
		}
	}
	return strings.Join(parts, " ")
}

// shardSplitRun executes one real-execution cell: a 4-shard shardmap.Map
// loaded to records keys, then workers × opsPerWorker zipf ops. With split
// set, a driver goroutine doubles the shard count live while the ops run —
// every split window completes cooperatively through the racing operations'
// chunk helping (DrainResharding only sweeps a window still open after the
// last worker exits). Returns the run and the completed split count.
func shardSplitRun(cfg Config, cellCfg string, theta, readProb float64, split bool, slots uint64, records, opsPerWorker, workers int) (RunResult, uint64) {
	reg := cfg.Observe
	if reg == nil {
		reg = obs.NewWith(0, 1)
	}
	cell := "shard-ab-" + cellCfg + "-steady"
	if split {
		cell = "shard-ab-" + cellCfg + "-split"
	}

	const initialShards = 4
	m := shardmap.New(slots, shardmap.WithShards(initialShards))
	keys := workload.UniqueKeys(cfg.Seed, records)
	for _, k := range keys {
		m.Put(k, k)
	}

	warmup := ycsbWarmupOps(opsPerWorker, cfg.Quick)
	var wg, ready sync.WaitGroup
	var running atomic.Int64
	gate := make(chan struct{})
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		ready.Add(1)
		running.Add(1)
		go func(wid int) {
			defer wg.Done()
			defer running.Add(-1)
			lat := &reg.Worker(fmt.Sprintf("%s-w%d", cell, wid)).Lat
			seedw := cfg.Seed ^ int64(wid*7919+1)
			ranks := workload.NewRankStream(seedw, uint64(records), theta)
			coin := rand.New(rand.NewSource(seedw ^ 0x73686172)) // "shar"
			wranks := workload.NewRankStream(seedw^0x7761726d, uint64(records), theta)
			wcoin := rand.New(rand.NewSource(seedw ^ 0x7761726d))
			var discard obs.Histogram
			shardMapWorker(m, keys, wranks, wcoin, readProb, warmup, &discard)
			ready.Done()
			<-gate
			shardMapWorker(m, keys, ranks, coin, readProb, opsPerWorker, lat)
		}(wid)
	}
	ready.Wait()
	start := time.Now()
	close(gate)
	if split {
		// Drive splits for the whole measured phase: each Split opens a
		// window on one shard; the racing workers complete it chunk by
		// chunk, and the driver helps with reads of its own so windows
		// close even when the workers' streams favour uncovered shards.
		// Spread the split keys across the selector space so successive
		// splits hit different shards.
		i, j := 0, 0
		for running.Load() > 0 && m.Stats().Shards < 2*initialShards {
			if m.Split(keys[(i*len(keys)/8+13)%len(keys)]) {
				for m.Resharding() && running.Load() > 0 {
					m.Get(keys[j%len(keys)])
					j++
					runtime.Gosched()
				}
			}
			i++
			runtime.Gosched()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	m.DrainResharding()
	st := m.Stats()

	prefix := cell + "-"
	var merged obs.Histogram
	for _, wk := range reg.Workers() {
		if strings.HasPrefix(wk.Name(), prefix) {
			merged.Merge(&wk.Lat)
		}
	}
	pct := PercentilesFromHistogram(&merged)
	totalOps := opsPerWorker * workers
	return RunResult{
		Name:        cell,
		Table:       "shardmap",
		Workload:    cellCfg,
		Records:     records,
		Ops:         totalOps,
		Workers:     workers,
		Theta:       theta,
		WarmupOps:   warmup,
		Seconds:     elapsed.Seconds(),
		Mops:        float64(totalOps) / elapsed.Seconds() / 1e6,
		LatencyNS:   &pct,
		LatencyHist: merged.Buckets(),
	}, st.Splits
}

// shardMapWorker streams ops batches against the sharded map, recording
// batch-granular per-op latency (the same protocol as the ycsb workers).
func shardMapWorker(m *shardmap.Map, keys []uint64, ranks *workload.KeyStream, coin *rand.Rand, readProb float64, ops int, lat *obs.Histogram) {
	for n := 0; n < ops; n += ycsbBatch {
		b := ycsbBatch
		if ops-n < b {
			b = ops - n
		}
		t0 := time.Now()
		for i := 0; i < b; i++ {
			k := keys[ranks.Next()]
			if coin.Float64() < readProb {
				m.Get(k)
			} else {
				m.Put(k, 1)
			}
		}
		lat.RecordN(uint64(time.Since(t0).Nanoseconds())/uint64(b), uint64(b))
	}
}
