package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dramhit/internal/obs"
)

// TestYCSBSummarySchema pins the machine-readable contract CI validates:
// schema tag, full run matrix, positive throughput, and sane latency
// percentile ordering.
func TestYCSBSummarySchema(t *testing.T) {
	_, sum := RunYCSB(Config{Quick: true, Seed: 1})
	if sum.Schema != YCSBSchema {
		t.Fatalf("schema = %q, want %q", sum.Schema, YCSBSchema)
	}
	if len(sum.Runs) != 4 { // workloads {A,C} × tables {dramhit,folklore}
		t.Fatalf("runs = %d, want 4", len(sum.Runs))
	}
	seen := map[string]bool{}
	for _, r := range sum.Runs {
		seen[r.Name] = true
		if r.Mops <= 0 || r.Seconds <= 0 || r.Ops <= 0 {
			t.Errorf("%s: non-positive measurements: %+v", r.Name, r)
		}
		lat := r.LatencyNS
		if lat == nil {
			t.Fatalf("%s: missing latency", r.Name)
		}
		if lat.Count != uint64(r.Ops) {
			t.Errorf("%s: latency count %d, want %d samples", r.Name, lat.Count, r.Ops)
		}
		if !(lat.P50 <= lat.P90 && lat.P90 <= lat.P99 && lat.P99 <= lat.P999 && lat.P999 <= lat.Max) {
			t.Errorf("%s: percentiles not monotone: %+v", r.Name, *lat)
		}
		// v2 fields: the warmup ramp ran, and the bucket dump carries the
		// full timed-phase mass.
		if r.WarmupOps <= 0 {
			t.Errorf("%s: warmup_ops = %d, want > 0", r.Name, r.WarmupOps)
		}
		var mass uint64
		for _, b := range r.LatencyHist {
			mass += b.Count
		}
		if mass != lat.Count {
			t.Errorf("%s: latency_hist mass %d != count %d", r.Name, mass, lat.Count)
		}
	}
	for _, want := range []string{"ycsb-A-dramhit", "ycsb-A-folklore", "ycsb-C-dramhit", "ycsb-C-folklore"} {
		if !seen[want] {
			t.Errorf("missing run %s", want)
		}
	}

	// WriteJSONFile → parse round-trip, as the CI validation step does.
	path := filepath.Join(t.TempDir(), "sub", "BENCH_ycsb.json")
	if err := WriteJSONFile(path, sum); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back YCSBSummary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if back.Schema != YCSBSchema || len(back.Runs) != len(sum.Runs) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

// TestGovernorSummarySchema pins BENCH_governor.json's contract: schema tag,
// the full 2×4 matrix, governor/decision annotation on the governed cells,
// and the headline auto-vs-folklore ratios.
func TestGovernorSummarySchema(t *testing.T) {
	_, sum := RunGovernorAB(Config{Quick: true, Seed: 1})
	if sum.Schema != GovernorSchema {
		t.Fatalf("schema = %q, want %q", sum.Schema, GovernorSchema)
	}
	if len(sum.Runs) != 8 { // workloads {A,C} × 4 variants
		t.Fatalf("runs = %d, want 8", len(sum.Runs))
	}
	seen := map[string]RunResult{}
	for _, r := range sum.Runs {
		seen[r.Name] = r
		if r.Mops <= 0 {
			t.Errorf("%s: non-positive Mops", r.Name)
		}
	}
	for _, wl := range []string{"A", "C"} {
		for _, v := range []string{"folklore", "dramhit/off", "dramhit/auto", "dramhit/direct"} {
			r, ok := seen["governor-ab-"+wl+"-"+v]
			if !ok {
				t.Fatalf("missing cell %s/%s", wl, v)
			}
			switch v {
			case "dramhit/auto", "dramhit/direct":
				if r.Governor == "" || r.GovernorDecision == "" {
					t.Errorf("%s: governed cell missing annotation: gov=%q decision=%q",
						r.Name, r.Governor, r.GovernorDecision)
				}
			default:
				if r.Governor != "" && v == "folklore" {
					t.Errorf("%s: folklore cell annotated with governor %q", r.Name, r.Governor)
				}
			}
		}
		if ratio, ok := sum.Ratios[wl]; !ok || ratio <= 0 {
			t.Errorf("workload %s: missing auto_vs_folklore ratio (got %v, ok=%v)", wl, ratio, ok)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_governor.json")
	if err := WriteJSONFile(path, sum); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back GovernorSummary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if back.Schema != GovernorSchema || len(back.Runs) != 8 || len(back.Ratios) != 2 {
		t.Fatalf("round-trip mismatch: schema=%q runs=%d ratios=%d",
			back.Schema, len(back.Runs), len(back.Ratios))
	}
}

// TestArtifactJSON pins the per-experiment JSON rendering -out emits.
func TestArtifactJSON(t *testing.T) {
	a := &Artifact{
		ID:     "x",
		Title:  "T",
		Header: []string{"a"},
		Rows:   [][]string{{"1"}},
		Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}},
	}
	b, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "x" || len(back.Rows) != 1 || len(back.Series) != 1 || back.Series[0].Y[0] != 2 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

// TestPercentilesFromHistogram checks the extraction against known mass.
func TestPercentilesFromHistogram(t *testing.T) {
	var h obs.Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Record(i)
	}
	p := PercentilesFromHistogram(&h)
	if p.Count != 1000 {
		t.Fatalf("count = %d", p.Count)
	}
	// Log-bucketed: ≤1/32 relative error at each quantile.
	for _, c := range []struct{ got, want float64 }{
		{p.P50, 500}, {p.P90, 900}, {p.P99, 990}, {p.Max, 1000},
	} {
		if c.got < c.want*(1-1.0/16) || c.got > c.want*(1+1.0/16) {
			t.Errorf("quantile %v outside tolerance of %v", c.got, c.want)
		}
	}
	if p.Mean < 490 || p.Mean > 510 {
		t.Errorf("mean = %v, want ~500.5", p.Mean)
	}
}
