// Package bench is the experiment harness: one registered runner per table
// and figure of the paper's evaluation, producing structured artifacts the
// CLI renders as text and EXPERIMENTS.md records. Experiments run on the
// simulated machine (internal/memsim + internal/simtable) except for the
// real-execution spot checks, which drive the actual Go hash tables.
package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// Config controls an experiment run.
type Config struct {
	// Quick trades precision for speed (fewer measured ops, fewer sweep
	// points); used by tests and `go test -bench`.
	Quick bool
	// Seed fixes all randomness.
	Seed int64
	// ProbeKernel / ProbeFilter configure the real tables' hot path in the
	// real-execution experiments (zero values = package defaults: SWAR
	// kernel, tags filter). The tags-ab experiment ignores ProbeFilter — it
	// runs both sides of the A/B by construction.
	ProbeKernel table.ProbeKernel
	ProbeFilter table.ProbeFilter
	// MissRatio is the fraction of lookups redirected to structurally
	// absent keys in experiments that honor it (tags-ab's mixed phase).
	MissRatio float64
	// Combining configures in-window request combining on the real tables
	// (zero value = on, the package default). The combine-ab experiment
	// ignores it — it runs both sides of the A/B by construction.
	Combining table.Combining
	// Governor configures the adaptive pipeline governor on the dramhit
	// cells of the real-execution experiments (zero value = off). The
	// governor-ab experiment ignores it — it runs off/auto/direct by
	// construction.
	Governor table.GovernorMode
	// Layout selects the physical slot layout of the real tables in the
	// real-execution experiments that honor it (reprobe-stats; zero value =
	// flat, bit-identical to prior configurations). The layout-ab
	// experiment ignores it — it runs both layouts by construction.
	Layout table.Layout
	// Observe, when non-nil, is the live observability registry real-
	// execution experiments attach their tables and workers to, so a
	// concurrently served /metrics endpoint sees the run. The obs-ab
	// experiment ignores it — its observe-on side builds its own registry
	// by construction. Nil keeps runs self-contained.
	Observe *obs.Registry
}

// ops returns the measured-op budget. Quick mode is sized so the whole
// registry smoke-runs within a default `go test` timeout.
func (c Config) ops(full int) int {
	if c.Quick {
		return full / 20
	}
	return full
}

// Series is one line of a figure: Y(X), plus a name for the legend.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Artifact is a regenerated table or figure.
type Artifact struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	XLabel string `json:"x_label,omitempty"`
	YLabel string `json:"y_label,omitempty"`
	// Series carry figure data; Header+Rows carry table data (Table 1).
	Series []Series   `json:"series,omitempty"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	// Notes document paper-vs-sim observations recorded with the artifact.
	Notes []string `json:"notes,omitempty"`
}

// JSON renders the artifact as an indented, machine-readable document — the
// same data Format prints as text, for downstream tooling (plotters, CI
// validation, regression diffing).
func (a *Artifact) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Runner regenerates one artifact.
type Runner func(cfg Config) *Artifact

// registry maps experiment IDs to runners, with ordered IDs for listings.
var (
	registry = map[string]Runner{}
	ordered  []string
)

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("bench: duplicate experiment " + id)
	}
	registry[id] = r
	ordered = append(ordered, id)
}

// IDs returns all experiment IDs in registration (paper) order.
func IDs() []string { return append([]string(nil), ordered...) }

// Get returns the runner for an experiment ID.
func Get(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// Format renders an artifact as aligned text.
func Format(a *Artifact) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", a.ID, a.Title)
	if len(a.Rows) > 0 {
		formatTable(&b, a.Header, a.Rows)
	}
	if len(a.Series) > 0 {
		formatSeries(&b, a)
	}
	for _, n := range a.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func formatTable(b *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
}

func formatSeries(b *strings.Builder, a *Artifact) {
	// Collect the union of X values (series may share or differ).
	xs := map[float64]bool{}
	for _, s := range a.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	header := []string{a.XLabel}
	for _, s := range a.Series {
		header = append(header, s.Name)
	}
	rows := make([][]string, 0, len(sorted))
	for _, x := range sorted {
		row := []string{trimFloat(x)}
		for _, s := range a.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	if a.YLabel != "" {
		fmt.Fprintf(b, "(y: %s)\n", a.YLabel)
	}
	formatTable(b, header, rows)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
