package bench

import (
	"fmt"
	"math/rand"
	"time"

	"dramhit/internal/dramhit"
	"dramhit/internal/kmer"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// This file holds the real-execution experiments: they run the actual Go
// tables on the host (no simulation). Their absolute numbers depend on the
// machine, but the structural claims they check — cache-line accesses per
// operation, probe-length growth with fill, batching effects on the real
// pipeline — are host-independent.

func init() {
	register("reprobe-stats", reprobeStats)
	register("real-kmer", realKmer)
	register("tags-ab", tagsAB)
	register("combine-ab", combineAB)
}

// reprobeStats regenerates the paper's §3 empirical claim: "on a fill
// factor of 75-80%, lookup and insertion operations require only 1.3 cache
// line accesses per request on average (reprobes ... access additional
// cache-lines only 30% of the time)". It measures the real table's
// lines-per-op counter across fill factors.
func reprobeStats(cfg Config) *Artifact {
	a := &Artifact{
		ID:     "reprobe-stats",
		Title:  "Cache-line accesses per operation vs fill factor (real execution)",
		XLabel: "fill factor", YLabel: "cache lines per op",
	}
	size := uint64(1 << 20)
	if cfg.Quick {
		size = 1 << 17
	}
	fills := []float64{0.25, 0.50, 0.625, 0.75, 0.80, 0.875}

	insS := Series{Name: "inserts dramhit"}
	findS := Series{Name: "finds dramhit"}
	if cfg.Layout == table.LayoutBucket {
		insS.Name += " (bucket layout)"
		findS.Name += " (bucket layout)"
	}
	for _, fill := range fills {
		tbl := dramhit.New(dramhit.Config{Slots: size, Layout: cfg.Layout})
		h := tbl.NewHandle()
		n := int(float64(size) * fill)
		keys := workload.UniqueKeys(cfg.Seed, n)
		vals := make([]uint64, n)
		h.PutBatch(keys, vals)
		st := h.Stats()
		insS.X = append(insS.X, fill)
		insS.Y = append(insS.Y, float64(st.Lines)/float64(st.Ops()))

		h2 := tbl.NewHandle()
		found := make([]bool, n)
		h2.GetBatch(keys, vals, found)
		st2 := h2.Stats()
		findS.X = append(findS.X, fill)
		findS.Y = append(findS.Y, float64(st2.Lines)/float64(st2.Ops()))
	}
	a.Series = append(a.Series, insS, findS)
	// Record the 75% anchor explicitly.
	for i, f := range findS.X {
		if f == 0.75 {
			a.Notes = append(a.Notes, fmt.Sprintf(
				"at 75%% fill: %.2f lines/op finds, %.2f inserts (paper: ~1.3; reprobes cross lines ~30%% of the time)",
				findS.Y[i], insS.Y[i]))
		}
	}
	return a
}

// tagsAB is the paired A/B behind results/tags-ab.txt: the same SWAR
// pipelined workloads with (FilterTags) and without (FilterNone) the packed
// tag-fingerprint sidecar, on the two regimes that bracket the filter's
// effect. Uniform negative lookups at 75% fill are the best case — nearly
// every cluster line is rejected from the cache-hot tag word and its key
// lanes are never loaded. Positive lookups at 85% fill are the adversarial
// case — every probe ends at a real key, so only interior cluster lines are
// skippable. The headline columns are the new Stats counters: key lines
// loaded per op and lines rejected per op; Mops is host-dependent context.
func tagsAB(cfg Config) *Artifact {
	a := &Artifact{
		ID:     "tags-ab",
		Title:  "Packed tag-fingerprint filter A/B (real execution)",
		Header: []string{"workload", "filter", "Mops", "keylines/op", "tagskips/op", "falsepos/op", "hitrate"},
	}
	size := uint64(1 << 20)
	if cfg.Quick {
		size = 1 << 17
	}
	filters := []table.ProbeFilter{table.FilterNone, table.FilterTags}

	// Phase 1: uniform negative lookups against a 75%-full table.
	fill75 := workload.UniqueKeys(cfg.Seed, int(size)*3/4)
	missRatio := cfg.MissRatio
	if missRatio == 0 {
		missRatio = 1 // the phase exists to measure misses
	}
	probeN := int(size) / 2
	neg := workload.MissKeys(cfg.Seed, len(fill75), probeN)
	pos := fill75[:probeN]
	probe := make([]uint64, probeN)
	mixRng := rand.New(rand.NewSource(cfg.Seed ^ 0x7461b))
	for i := range probe {
		if mixRng.Float64() < missRatio {
			probe[i] = neg[i]
		} else {
			probe[i] = pos[i]
		}
	}
	for _, f := range filters {
		a.Rows = append(a.Rows, tagsABRow(
			fmt.Sprintf("neg-lookup@75%%(miss=%.2f)", missRatio),
			cfg, size, f, fill75, probe))
	}

	// Phase 2: all-hit lookups against an 85%-full table.
	fill85 := workload.UniqueKeys(cfg.Seed+1, int(size)*17/20)
	for _, f := range filters {
		a.Rows = append(a.Rows, tagsABRow("pos-lookup@85%", cfg, size, f, fill85, fill85[:probeN]))
	}

	a.Notes = append(a.Notes,
		fmt.Sprintf("method: %d-slot tables, SWAR probe; neg phase fills 75%% with UniqueKeys then probes %d structurally absent MissKeys; pos phase fills 85%% and probes loaded keys",
			size, probeN),
		"keylines/op counts cache lines whose key lanes were loaded; tagskips/op counts lines rejected from the tag word alone",
		"invariant: keylines(tags) + tagskips(tags) == keylines(none) — the filter changes what is loaded, never what is probed",
		"a miss's terminating line holds the empty slot that ends the probe and is always admitted (must-check), so ~1 keyline/op is the floor on the miss-heavy workload",
		"Mops are host-dependent; the counter columns are the architecture-independent signal")
	return a
}

// tagsABRow runs one (workload, filter) cell: build, fill, probe, report.
func tagsABRow(name string, cfg Config, size uint64, f table.ProbeFilter, fill, probe []uint64) []string {
	tbl := dramhit.New(dramhit.Config{Slots: size, ProbeKernel: cfg.ProbeKernel, ProbeFilter: f})
	h := tbl.NewHandle()
	h.PutBatch(fill, make([]uint64, len(fill)))
	base := h.Stats()
	vals := make([]uint64, len(probe))
	found := make([]bool, len(probe))
	start := time.Now()
	h.GetBatch(probe, vals, found)
	elapsed := time.Since(start)
	st := h.Stats()
	hits := 0
	for _, ok := range found {
		if ok {
			hits++
		}
	}
	n := float64(len(probe))
	return []string{
		name,
		f.String(),
		fmt.Sprintf("%.1f", n/elapsed.Seconds()/1e6),
		fmt.Sprintf("%.3f", float64(st.KeyLines-base.KeyLines)/n),
		fmt.Sprintf("%.3f", float64(st.TagSkips-base.TagSkips)/n),
		fmt.Sprintf("%.4f", float64(st.TagFalse-base.TagFalse)/n),
		fmt.Sprintf("%.3f", float64(hits)/n),
	}
}

// realKmer runs the actual Go counters on a synthetic genome on this host:
// the cross-design ratios (and exact count agreement) are the signal; see
// fig12a/fig12b for the simulated reproduction of the paper's figure.
func realKmer(cfg Config) *Artifact {
	a := &Artifact{
		ID:     "real-kmer",
		Title:  "K-mer counting on the real tables (this host)",
		XLabel: "K", YLabel: "Mops (host-dependent)",
	}
	bases := 2_000_000
	if cfg.Quick {
		bases = 300_000
	}
	records := kmer.DMelanogaster(bases).Generate()
	ks := []int{8, 16, 32}
	if cfg.Quick {
		ks = []int{16}
	}
	dh := Series{Name: "dramhit (batched upserts)"}
	for _, k := range ks {
		tbl := dramhit.New(dramhit.Config{Slots: 1 << 22})
		c := kmer.NewDRAMHiTCounter(tbl.NewHandle(), 16)
		start := time.Now()
		total := 0
		for _, rec := range records {
			total += kmer.CountSequence(c, rec, k)
		}
		c.Flush()
		mops := float64(total) / time.Since(start).Seconds() / 1e6
		dh.X = append(dh.X, float64(k))
		dh.Y = append(dh.Y, mops)
	}
	a.Series = append(a.Series, dh)
	a.Notes = append(a.Notes, "absolute Mops reflect this host and the Go runtime; the paper's Figure 12 shape is reproduced by fig12a/fig12b")
	return a
}

// combineAB runs the in-window request-combining A/B on the real table: an
// upsert-dominated stream whose zipf skew is swept from uniform to hot
// (theta 0 → 0.99), each point run with combining on and off. The
// architecture-independent signal is memory operations per op — key-line
// loads plus CAS/value-write attempts — which combining must cut as skew
// grows (a folded upsert touches no memory at all); Mops are the
// host-dependent consequence.
func combineAB(cfg Config) *Artifact {
	a := &Artifact{
		ID:     "combine-ab",
		Title:  "In-window request combining A/B (real execution)",
		Header: []string{"theta", "combining", "Mops", "keylines/op", "cas/op", "memops/op", "combined/op"},
	}
	size := uint64(1 << 20)
	ops := 1 << 20
	if cfg.Quick {
		size = 1 << 17
		ops = 1 << 15
	}
	for _, theta := range []float64{0, 0.6, 0.9, 0.99} {
		for _, mode := range []table.Combining{table.CombineOff, table.CombineOn} {
			a.Rows = append(a.Rows, combineABRow(cfg, size, ops, theta, mode))
		}
	}
	a.Notes = append(a.Notes,
		fmt.Sprintf("method: %d-slot tables, prefetch window 64, %d zipf-skewed upserts (Value 1) over a keyspace of half the slots, batch 16", size, ops),
		"memops/op = keylines/op + cas/op: DRAM-touching work per submitted request (a folded upsert contributes zero of either)",
		"combined/op is the fraction of upserts folded onto an in-flight duplicate; it tracks the in-window collision probability, rising with theta",
		"with combining on, memops/op must fall monotonically as theta grows; at theta=0 a 64-deep window over half a million keys almost never collides, so both sides must match",
		"each cell is best-of-3 (counters are deterministic; only the wall clock varies)",
		"Mops are host-dependent; the counter columns are the architecture-independent signal — on hosts whose LLC holds the hot set the saved memory ops buy little wall clock, while the cycle-level DRAM-bound model (internal/simtable, TestCombiningWinsOnSkew) shows the same fold rate as a 1.4-1.5x throughput win at theta=0.99")
	return a
}

// combineABRow runs one (theta, combining) cell best-of-3 (the counters are
// deterministic across repetitions; only the wall clock varies, and the best
// repetition is the least scheduler-disturbed one): build, stream, report.
func combineABRow(cfg Config, size uint64, ops int, theta float64, mode table.Combining) []string {
	reps := 3
	if cfg.Quick {
		reps = 1
	}
	var best []string
	bestMops := -1.0
	for rep := 0; rep < reps; rep++ {
		row, mops := combineABRep(cfg, size, ops, theta, mode)
		if mops > bestMops {
			best, bestMops = row, mops
		}
	}
	return best
}

// combineABRep is one repetition of a combine-ab cell.
func combineABRep(cfg Config, size uint64, ops int, theta float64, mode table.Combining) ([]string, float64) {
	tbl := dramhit.New(dramhit.Config{
		Slots:          size,
		PrefetchWindow: 64,
		ProbeKernel:    cfg.ProbeKernel,
		ProbeFilter:    cfg.ProbeFilter,
		Combining:      mode,
	})
	h := tbl.NewHandle()
	ks := workload.NewKeyStream(cfg.Seed, size/2, theta)
	const batch = 16
	reqs := make([]table.Request, batch)
	base := h.Stats()
	start := time.Now()
	for n := 0; n < ops; n += batch {
		b := batch
		if ops-n < b {
			b = ops - n
		}
		for i := 0; i < b; i++ {
			reqs[i] = table.Request{Op: table.Upsert, Key: ks.Next(), Value: 1}
		}
		rem := reqs[:b]
		for len(rem) > 0 {
			nr, _ := h.Submit(rem, nil)
			rem = rem[nr:]
		}
	}
	for {
		if _, done := h.Flush(nil); done {
			break
		}
	}
	elapsed := time.Since(start)
	st := h.Stats()
	n := float64(ops)
	kl := float64(st.KeyLines-base.KeyLines) / n
	cas := float64(st.CASAttempts-base.CASAttempts) / n
	mops := n / elapsed.Seconds() / 1e6
	return []string{
		fmt.Sprintf("%.2f", theta),
		mode.String(),
		fmt.Sprintf("%.1f", mops),
		fmt.Sprintf("%.3f", kl),
		fmt.Sprintf("%.3f", cas),
		fmt.Sprintf("%.3f", kl+cas),
		fmt.Sprintf("%.3f", float64(st.CombinedUpserts-base.CombinedUpserts)/n),
	}, mops
}
