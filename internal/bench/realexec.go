package bench

import (
	"fmt"
	"time"

	"dramhit/internal/dramhit"
	"dramhit/internal/kmer"
	"dramhit/internal/workload"
)

// This file holds the real-execution experiments: they run the actual Go
// tables on the host (no simulation). Their absolute numbers depend on the
// machine, but the structural claims they check — cache-line accesses per
// operation, probe-length growth with fill, batching effects on the real
// pipeline — are host-independent.

func init() {
	register("reprobe-stats", reprobeStats)
	register("real-kmer", realKmer)
}

// reprobeStats regenerates the paper's §3 empirical claim: "on a fill
// factor of 75-80%, lookup and insertion operations require only 1.3 cache
// line accesses per request on average (reprobes ... access additional
// cache-lines only 30% of the time)". It measures the real table's
// lines-per-op counter across fill factors.
func reprobeStats(cfg Config) *Artifact {
	a := &Artifact{
		ID:     "reprobe-stats",
		Title:  "Cache-line accesses per operation vs fill factor (real execution)",
		XLabel: "fill factor", YLabel: "cache lines per op",
	}
	size := uint64(1 << 20)
	if cfg.Quick {
		size = 1 << 17
	}
	fills := []float64{0.25, 0.50, 0.625, 0.75, 0.80, 0.875}

	insS := Series{Name: "inserts dramhit"}
	findS := Series{Name: "finds dramhit"}
	for _, fill := range fills {
		tbl := dramhit.New(dramhit.Config{Slots: size})
		h := tbl.NewHandle()
		n := int(float64(size) * fill)
		keys := workload.UniqueKeys(cfg.Seed, n)
		vals := make([]uint64, n)
		h.PutBatch(keys, vals)
		st := h.Stats()
		insS.X = append(insS.X, fill)
		insS.Y = append(insS.Y, float64(st.Lines)/float64(st.Ops()))

		h2 := tbl.NewHandle()
		found := make([]bool, n)
		h2.GetBatch(keys, vals, found)
		st2 := h2.Stats()
		findS.X = append(findS.X, fill)
		findS.Y = append(findS.Y, float64(st2.Lines)/float64(st2.Ops()))
	}
	a.Series = append(a.Series, insS, findS)
	// Record the 75% anchor explicitly.
	for i, f := range findS.X {
		if f == 0.75 {
			a.Notes = append(a.Notes, fmt.Sprintf(
				"at 75%% fill: %.2f lines/op finds, %.2f inserts (paper: ~1.3; reprobes cross lines ~30%% of the time)",
				findS.Y[i], insS.Y[i]))
		}
	}
	return a
}

// realKmer runs the actual Go counters on a synthetic genome on this host:
// the cross-design ratios (and exact count agreement) are the signal; see
// fig12a/fig12b for the simulated reproduction of the paper's figure.
func realKmer(cfg Config) *Artifact {
	a := &Artifact{
		ID:     "real-kmer",
		Title:  "K-mer counting on the real tables (this host)",
		XLabel: "K", YLabel: "Mops (host-dependent)",
	}
	bases := 2_000_000
	if cfg.Quick {
		bases = 300_000
	}
	records := kmer.DMelanogaster(bases).Generate()
	ks := []int{8, 16, 32}
	if cfg.Quick {
		ks = []int{16}
	}
	dh := Series{Name: "dramhit (batched upserts)"}
	for _, k := range ks {
		tbl := dramhit.New(dramhit.Config{Slots: 1 << 22})
		c := kmer.NewDRAMHiTCounter(tbl.NewHandle(), 16)
		start := time.Now()
		total := 0
		for _, rec := range records {
			total += kmer.CountSequence(c, rec, k)
		}
		c.Flush()
		mops := float64(total) / time.Since(start).Seconds() / 1e6
		dh.X = append(dh.X, float64(k))
		dh.Y = append(dh.Y, mops)
	}
	a.Series = append(a.Series, dh)
	a.Notes = append(a.Notes, "absolute Mops reflect this host and the Go runtime; the paper's Figure 12 shape is reproduced by fig12a/fig12b")
	return a
}
