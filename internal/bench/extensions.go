package bench

import (
	"fmt"

	"dramhit/internal/dramhit"
	"dramhit/internal/memsim"
	"dramhit/internal/simtable"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

func init() {
	register("ext-channels", extChannels)
	register("ext-tombstones", extTombstones)
}

// extChannels tests the paper's §4.2 speculation head-on: "DRAMHIT comes
// close to saturating memory bandwidth with only 32 cores, which allows for
// the possibility of doubling the number of memory channels, and hence
// doubling the throughput of the hash table." We sweep the simulated
// machine's channel count and measure where each design's 64-thread
// throughput goes.
func extChannels(cfg Config) *Artifact {
	a := &Artifact{
		ID:     "ext-channels",
		Title:  "Extension: throughput vs memory channels per socket (uniform, large, 64 threads)",
		XLabel: "channels per socket", YLabel: "Mops",
	}
	channels := []int{3, 6, 9, 12}
	if cfg.Quick {
		channels = []int{6, 12}
	}
	for _, mix := range []simtable.OpMix{simtable.Inserts, simtable.Finds} {
		for _, kind := range []simtable.Kind{simtable.Folklore, simtable.DRAMHiT} {
			s := Series{Name: mixName(mix) + " " + kind.String()}
			for _, ch := range channels {
				m := memsim.IntelSkylake()
				m.ChannelsPerSocket = ch
				r := simtable.Run(simtable.Config{
					Machine: m, Kind: kind, Threads: 64, Slots: largeSlots,
					MeasureOps: cfg.ops(160_000), Seed: cfg.Seed,
				}, mix)
				s.X = append(s.X, float64(ch))
				s.Y = append(s.Y, r.Mops)
			}
			a.Series = append(a.Series, s)
		}
	}
	// Quantify the speculation: DRAMHiT's 6→12 channel gain vs Folklore's.
	gain := func(name string) float64 {
		for _, s := range a.Series {
			if s.Name == name && len(s.Y) >= 2 {
				return s.Y[len(s.Y)-1] / s.Y[indexOf(s.X, 6)]
			}
		}
		return 0
	}
	a.Notes = append(a.Notes, fmt.Sprintf(
		"doubling channels 6→12 scales dramhit finds by %.2fx but folklore by only %.2fx — the bandwidth-bound design pockets new channels, the latency-bound one cannot (the paper's §4.2 speculation)",
		gain("finds dramhit"), gain("finds folklore")))
	return a
}

func indexOf(xs []float64, v float64) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}

// extTombstones measures (on the real table) how deletion tombstones
// degrade probe lengths — the cost of the paper's "space is freed only when
// the hash table is resized" policy, and the reason the resizable wrapper
// compacts on churn.
func extTombstones(cfg Config) *Artifact {
	a := &Artifact{
		ID:     "ext-tombstones",
		Title:  "Extension: tombstone drift — cache lines per lookup after delete/reinsert churn (real execution)",
		XLabel: "churn rounds (delete+reinsert 25% of keys)", YLabel: "cache lines per find",
	}
	size := uint64(1 << 18)
	if cfg.Quick {
		size = 1 << 15
	}
	live := int(float64(size) * 0.5)
	keys := workload.UniqueKeys(cfg.Seed, live+live/4*12)
	tbl := dramhit.New(dramhit.Config{Slots: size})
	h := tbl.NewHandle()
	h.PutBatch(keys[:live], make([]uint64, live))

	s := Series{Name: "finds dramhit (tombstoned table)"}
	cur := append([]uint64(nil), keys[:live]...)
	nextFresh := live
	churned := 0
	for _, target := range []int{0, 1, 2, 3, 4} {
		// Churn up to the target round count.
		for ; churned < target; churned++ {
			quarter := live / 4
			// Delete a quarter, insert fresh keys in their place.
			for _, k := range cur[:quarter] {
				h.Submit([]table.Request{{Op: table.Delete, Key: k}}, nil)
			}
			fresh := keys[nextFresh : nextFresh+quarter]
			nextFresh += quarter
			h.PutBatch(fresh, make([]uint64, quarter))
			cur = append(cur[quarter:], fresh...)
		}
		h.Flush(nil)
		// Measure lines/op for lookups of the current live set.
		h2 := tbl.NewHandle()
		vals := make([]uint64, len(cur))
		found := make([]bool, len(cur))
		h2.GetBatch(cur, vals, found)
		st := h2.Stats()
		s.X = append(s.X, float64(target))
		s.Y = append(s.Y, float64(st.Lines)/float64(st.Ops()))
	}
	a.Series = append(a.Series, s)
	a.Notes = append(a.Notes,
		"live count is constant; only tombstones accumulate. Probe cost grows with churn — the degradation resizing exists to undo (the resizable wrapper in internal/growt compacts tombstones on migration)")
	return a
}
