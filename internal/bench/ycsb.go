// YCSB-style real-execution benchmark and the observability-overhead A/B.
//
// The ycsb experiment drives the actual Go tables (not the simulated
// machine) through the two YCSB core workloads the paper reports against
// (§4.3): workload C (100% reads) and workload A (50% reads / 50% updates),
// both zipf(0.99) over the loaded keyspace. Latency is recorded into the
// observability layer's log-bucketed histograms (one per worker, merged for
// the summary), so the benchmark is also an end-to-end exercise of
// internal/obs; throughput and percentiles are exported machine-readably
// (RunYCSB → YCSBSummary → BENCH_ycsb.json).
package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"dramhit/internal/dramhit"
	"dramhit/internal/folklore"
	"dramhit/internal/obs"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

func init() {
	register("ycsb", func(cfg Config) *Artifact {
		a, _ := RunYCSB(cfg)
		return a
	})
	register("obs-ab", func(cfg Config) *Artifact {
		a, _ := RunObsAB(cfg)
		return a
	})
	register("governor-ab", func(cfg Config) *Artifact {
		a, _ := RunGovernorAB(cfg)
		return a
	})
}

// ycsbWorkload is one YCSB core-workload shape.
type ycsbWorkload struct {
	name     string
	readProb float64
}

var ycsbWorkloads = []ycsbWorkload{
	{"A", 0.5}, // 50% reads, 50% upserts
	{"C", 1.0}, // read-only
}

const ycsbTheta = 0.99 // YCSB's default zipfian constant

// RunYCSB runs the YCSB benchmark matrix (workload × table) and returns
// both the text artifact and the machine-readable summary.
func RunYCSB(cfg Config) (*Artifact, *YCSBSummary) {
	a := &Artifact{
		ID:     "ycsb",
		Title:  "YCSB A/C on the real tables (zipf 0.99)",
		Header: []string{"workload", "table", "workers", "Mops", "p50 ns", "p99 ns", "p999 ns", "mean ns"},
	}
	slots := uint64(1 << 20)
	opsPerWorker := 1 << 20
	workers := 4
	if cfg.Quick {
		slots = 1 << 16
		opsPerWorker = 1 << 13
		workers = 2
	}
	records := int(slots / 2)

	sum := &YCSBSummary{Schema: YCSBSchema, Quick: cfg.Quick}
	for _, w := range ycsbWorkloads {
		for _, tbl := range []string{"dramhit", "folklore"} {
			gov := table.GovernorOff
			if tbl == "dramhit" {
				gov = cfg.Governor
			}
			res := ycsbRun(cfg, tbl, w, slots, records, opsPerWorker, workers, gov)
			sum.Runs = append(sum.Runs, res)
			lat := res.LatencyNS
			a.Rows = append(a.Rows, []string{
				w.name, tbl, fmt.Sprintf("%d", workers),
				fmt.Sprintf("%.1f", res.Mops),
				fmt.Sprintf("%.0f", lat.P50),
				fmt.Sprintf("%.0f", lat.P99),
				fmt.Sprintf("%.0f", lat.P999),
				fmt.Sprintf("%.0f", lat.Mean),
			})
		}
	}
	a.Notes = append(a.Notes,
		fmt.Sprintf("method: %d-slot tables loaded to %d records, then %d workers × %d zipf(%.2f) ops; workload A is 50/50 read/upsert, C is read-only", slots, records, workers, opsPerWorker, ycsbTheta),
		"each worker runs an untimed warmup ramp before a shared start gate, so first-touch page faults never land in the latency tail (warmup_ops in the summary)",
		"latency is per-op wall time at batch-16 granularity, recorded into internal/obs log-bucketed histograms (≤1/32 relative error) and merged across workers",
		"dramhit pipelines batches through per-worker handles (prefetch window 16); folklore executes each op synchronously — the same interface gap the paper's Figure 6 measures",
		fmt.Sprintf("dramhit cells run with -governor %s; the machine-readable summary lands in BENCH_ycsb.json (schema %s)", cfg.Governor, YCSBSchema))
	return a, sum
}

// ycsbWarmupOps sizes the untimed per-worker ramp: enough batches to fault
// in the worker's slice of the table, its handle ring, and its histogram
// before the clock starts, without materially extending the run.
func ycsbWarmupOps(opsPerWorker int, quick bool) int {
	if quick {
		return 1 << 10
	}
	n := opsPerWorker / 8
	if n > 1<<16 {
		n = 1 << 16
	}
	return n
}

// ycsbRun executes one (table, workload, governor) cell and returns its
// RunResult.
func ycsbRun(cfg Config, tblName string, w ycsbWorkload, slots uint64, records, opsPerWorker, workers int, gov table.GovernorMode) RunResult {
	reg := cfg.Observe // live registry when serving /metrics...
	if reg == nil {
		reg = obs.NewWith(0, 1) // ...else self-contained, histograms only
	}
	// The cell name keys the run, the worker names, and the histogram merge;
	// governed cells get a suffix so governor-ab's dramhit variants never
	// collide on a shared registry.
	cell := "ycsb-" + w.name + "-" + tblName
	if gov != table.GovernorOff {
		cell += "-" + gov.String()
	}
	var flt *folklore.Table
	var dht *dramhit.Table
	switch tblName {
	case "folklore":
		flt = folklore.New(slots)
		flt.Observe(reg)
	default:
		dht = dramhit.New(dramhit.Config{
			Slots:       slots,
			ProbeKernel: cfg.ProbeKernel,
			ProbeFilter: cfg.ProbeFilter,
			Combining:   cfg.Combining,
			Governor:    gov,
			Observe:     reg,
		})
	}

	// Load phase (untimed): unique keys, value = key.
	keys := workload.UniqueKeys(cfg.Seed, records)
	if flt != nil {
		for _, k := range keys {
			flt.Put(k, k)
		}
	} else {
		h := dht.NewHandle()
		const batch = 64
		reqs := make([]table.Request, batch)
		for n := 0; n < len(keys); n += batch {
			b := batch
			if len(keys)-n < b {
				b = len(keys) - n
			}
			for i := 0; i < b; i++ {
				reqs[i] = table.Request{Op: table.Put, Key: keys[n+i], Value: keys[n+i]}
			}
			rem := reqs[:b]
			for len(rem) > 0 {
				nr, _ := h.Submit(rem, nil)
				rem = rem[nr:]
			}
		}
		for {
			if _, done := h.Flush(nil); done {
				break
			}
		}
	}

	// Timed phase: each worker draws ranks from its own zipf stream and maps
	// them onto loaded keys. Before the shared start gate every worker runs
	// an untimed warmup ramp (same op mix, disjoint rank stream, throwaway
	// histogram) so first-touch page faults — observed as multi-ms
	// latency_ns.max outliers — are absorbed before the clock starts. The
	// warmup also feeds the governor real sensor epochs, so an auto cell
	// typically enters the timed region already converged.
	warmup := ycsbWarmupOps(opsPerWorker, cfg.Quick)
	var wg, ready sync.WaitGroup
	gate := make(chan struct{})
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		ready.Add(1)
		go func(wid int) {
			defer wg.Done()
			lat := &reg.Worker(fmt.Sprintf("%s-w%d", cell, wid)).Lat
			// Ranks (not scrambled keys) so draws index the loaded keyset.
			seedw := cfg.Seed ^ int64(wid*7919+1)
			ranks := workload.NewRankStream(seedw, uint64(records), ycsbTheta)
			coin := rand.New(rand.NewSource(seedw ^ 0x79637362)) // "ycsb"
			wranks := workload.NewRankStream(seedw^0x7761726d, uint64(records), ycsbTheta)
			wcoin := rand.New(rand.NewSource(seedw ^ 0x7761726d)) // "warm"
			var dh *dramhit.Handle
			if dht != nil {
				dh = dht.NewHandle() // shared across warmup and timed phases
			}
			var discard obs.Histogram
			if flt != nil {
				ycsbFolkloreWorker(flt, keys, wranks, wcoin, w.readProb, warmup, &discard)
			} else {
				ycsbDramhitWorker(dh, keys, wranks, wcoin, w.readProb, warmup, &discard)
			}
			ready.Done()
			<-gate
			if flt != nil {
				ycsbFolkloreWorker(flt, keys, ranks, coin, w.readProb, opsPerWorker, lat)
			} else {
				ycsbDramhitWorker(dh, keys, ranks, coin, w.readProb, opsPerWorker, lat)
			}
		}(wid)
	}
	ready.Wait()
	start := time.Now()
	close(gate)
	wg.Wait()
	elapsed := time.Since(start)

	// Merge this run's per-worker histograms for the summary (the registry
	// may be shared across cells, so filter by the run's name prefix).
	prefix := cell + "-"
	var merged obs.Histogram
	for _, wk := range reg.Workers() {
		if strings.HasPrefix(wk.Name(), prefix) {
			merged.Merge(&wk.Lat)
		}
	}
	pct := PercentilesFromHistogram(&merged)
	totalOps := opsPerWorker * workers
	res := RunResult{
		Name:        cell,
		Table:       tblName,
		Workload:    w.name,
		Records:     records,
		Ops:         totalOps,
		Workers:     workers,
		Theta:       ycsbTheta,
		Combining:   cfg.Combining.String(),
		WarmupOps:   warmup,
		Seconds:     elapsed.Seconds(),
		Mops:        float64(totalOps) / elapsed.Seconds() / 1e6,
		LatencyNS:   &pct,
		LatencyHist: merged.Buckets(),
	}
	if dht != nil && gov != table.GovernorOff {
		res.Governor = gov.String()
		if d, _, _, ok := dht.GovernorState(); ok {
			res.GovernorDecision = d.String()
		}
	}
	return res
}

// ycsbBatch is the latency-measurement granularity: per-op timer calls would
// dominate the folklore fast path, so both tables record batch-16 wall time
// spread over the batch's ops.
const ycsbBatch = 16

func ycsbFolkloreWorker(t *folklore.Table, keys []uint64, ranks *workload.KeyStream, coin *rand.Rand, readProb float64, ops int, lat *obs.Histogram) {
	for n := 0; n < ops; n += ycsbBatch {
		b := ycsbBatch
		if ops-n < b {
			b = ops - n
		}
		t0 := time.Now()
		for i := 0; i < b; i++ {
			k := keys[ranks.Next()]
			if coin.Float64() < readProb {
				t.Get(k)
			} else {
				t.Upsert(k, 1)
			}
		}
		lat.RecordN(uint64(time.Since(t0).Nanoseconds())/uint64(b), uint64(b))
	}
}

func ycsbDramhitWorker(h *dramhit.Handle, keys []uint64, ranks *workload.KeyStream, coin *rand.Rand, readProb float64, ops int, lat *obs.Histogram) {
	reqs := make([]table.Request, ycsbBatch)
	resps := make([]table.Response, ycsbBatch)
	for n := 0; n < ops; n += ycsbBatch {
		b := ycsbBatch
		if ops-n < b {
			b = ops - n
		}
		t0 := time.Now()
		for i := 0; i < b; i++ {
			k := keys[ranks.Next()]
			if coin.Float64() < readProb {
				reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i)}
			} else {
				reqs[i] = table.Request{Op: table.Upsert, Key: k, Value: 1}
			}
		}
		rem := reqs[:b]
		for len(rem) > 0 {
			nr, _ := h.Submit(rem, resps)
			rem = rem[nr:]
		}
		// Batch latency includes the drain: submit-to-complete for the whole
		// batch, matching what a synchronous caller would wait.
		for {
			if _, done := h.Flush(resps); done {
				break
			}
		}
		lat.RecordN(uint64(time.Since(t0).Nanoseconds())/uint64(b), uint64(b))
	}
}

// RunObsAB measures the observability layer's hot-path cost: the same
// single-handle upsert stream as combine-ab, with Config.Observe nil versus
// attached (histograms + default 1-in-256 lifecycle tracing). Returns the
// artifact and the measured overhead in percent (positive = observe-on is
// slower). The acceptance budget is 2%.
func RunObsAB(cfg Config) (*Artifact, float64) {
	a := &Artifact{
		ID:     "obs-ab",
		Title:  "Observability overhead A/B (real execution)",
		Header: []string{"observe", "Mops", "keylines/op"},
	}
	size := uint64(1 << 20)
	ops := 1 << 21
	reps := 5
	if cfg.Quick {
		size = 1 << 17
		ops = 1 << 15
		reps = 2
	}
	var mops [2]float64
	for side, observed := range []bool{false, true} {
		var reg *obs.Registry
		if observed {
			reg = obs.New() // default trace ring + 1-in-256 sampling
		}
		best := -1.0
		var kl float64
		for rep := 0; rep < reps; rep++ {
			m, k := obsABRep(cfg, size, ops, reg)
			if m > best {
				best, kl = m, k
			}
		}
		mops[side] = best
		a.Rows = append(a.Rows, []string{
			map[bool]string{false: "off", true: "on"}[observed],
			fmt.Sprintf("%.1f", best),
			fmt.Sprintf("%.3f", kl),
		})
	}
	overhead := (mops[0] - mops[1]) / mops[0] * 100
	a.Notes = append(a.Notes,
		fmt.Sprintf("method: %d-slot table, %d zipf(0.60) upserts, batch 16, prefetch window 16, best-of-%d per side", size, ops, reps),
		"observe-on attaches the full registry: per-worker counter shard (published every 64th batch and at every flush), latency histogram, 1-in-256 lifecycle trace sampling",
		fmt.Sprintf("measured overhead: %.2f%% (budget ≤2%%; negative means within noise)", overhead),
		"keylines/op must be identical on both sides — the off/on paths are bit-identical by construction (TestObserveBitIdentical)")
	return a, overhead
}

// obsABRep is one repetition of an obs-ab side: build, stream, report Mops
// and keylines/op.
func obsABRep(cfg Config, size uint64, ops int, reg *obs.Registry) (float64, float64) {
	tbl := dramhit.New(dramhit.Config{
		Slots:       size,
		ProbeKernel: cfg.ProbeKernel,
		ProbeFilter: cfg.ProbeFilter,
		Combining:   cfg.Combining,
		Observe:     reg,
	})
	h := tbl.NewHandle()
	ks := workload.NewKeyStream(cfg.Seed, size/2, 0.6)
	const batch = 16
	reqs := make([]table.Request, batch)
	start := time.Now()
	for n := 0; n < ops; n += batch {
		b := batch
		if ops-n < b {
			b = ops - n
		}
		for i := 0; i < b; i++ {
			reqs[i] = table.Request{Op: table.Upsert, Key: ks.Next(), Value: 1}
		}
		rem := reqs[:b]
		for len(rem) > 0 {
			nr, _ := h.Submit(rem, nil)
			rem = rem[nr:]
		}
	}
	for {
		if _, done := h.Flush(nil); done {
			break
		}
	}
	elapsed := time.Since(start)
	st := h.Stats()
	return float64(ops) / elapsed.Seconds() / 1e6, float64(st.KeyLines) / float64(ops)
}
