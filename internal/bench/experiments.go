package bench

import (
	"fmt"
	"math/rand"

	"dramhit/internal/hashfn"
	"dramhit/internal/kmer"
	"dramhit/internal/latency"
	"dramhit/internal/memsim"
	"dramhit/internal/simtable"
	"dramhit/internal/workload"
)

// Table sizes (see simtable for the scaling note: the paper's 16 GB large
// table is represented by a 1 GB table, which is equally DRAM-resident
// relative to the LLC; the paper itself uses 1 GB as "large" in Figure 2).
const (
	smallSlots = simtable.DefaultSmall
	largeSlots = simtable.DefaultLarge
)

func threadSweep(m *memsim.Machine, quick bool) []int {
	max := m.MaxThreads()
	full := []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128}
	q := []int{16, 64, 128}
	pick := full
	if quick {
		pick = q
	}
	var out []int
	for _, n := range pick {
		if n <= max {
			out = append(out, n)
		}
	}
	return out
}

var allKinds = []simtable.Kind{simtable.Folklore, simtable.DRAMHiT, simtable.DRAMHiTP, simtable.DRAMHiTPSIMD}

func init() {
	register("table1", table1)
	register("fig2", fig2)
	register("fig5", fig5)
	register("fig6a", figure6(smallSlots, "fig6a", "Uniform insertions and lookups (small, 16 MB)"))
	register("fig6b", figure6(largeSlots, "fig6b", "Uniform insertions and lookups (large)"))
	register("fig6c", fig6c)
	register("fig7", fig7)
	register("fig8a", figure8(smallSlots, "fig8a", "Zipfian insertions and finds (small)"))
	register("fig8b", figure8(largeSlots, "fig8b", "Zipfian insertions and finds (large)"))
	register("fig8c", fig8c)
	register("fig9", fig9)
	register("fig10a", figureAMD(smallSlots, "fig10a", "Uniform distribution (AMD, small)", 0))
	register("fig10b", figureAMD(largeSlots, "fig10b", "Uniform distribution (AMD, large)", 0))
	register("fig10c", figureAMD(smallSlots, "fig10c", "Zipfian distribution (AMD, small)", 1.09))
	register("fig11", fig11)
	register("fig12a", figure12(kmer.DMelanogaster(0), "fig12a", "K-mer insertion throughput (D. melanogaster profile)"))
	register("fig12b", figure12(kmer.FVesca(0), "fig12b", "K-mer insertion throughput (F. vesca profile)"))
	register("ablation-window", ablationWindow)
	register("ablation-ratio", ablationRatio)
	register("ablation-section", ablationSection)
}

// table1 reproduces Table 1: bandwidth and cycle budget per cache-line
// transaction from 32 logical cores of one socket.
func table1(cfg Config) *Artifact {
	m := memsim.IntelSkylake()
	m.Sockets = 1
	ops := cfg.ops(200_000)

	run := func(write2 int, seq bool) (gbs, budget float64) {
		// write2: writes per 2 reads... encoded as reads-per-write below.
		mm := memsim.IntelSkylake()
		mm.Sockets = 1
		s := memsim.NewSim(mm, 32)
		counts := make([]int, 32)
		per := ops / 32
		rng := rand.New(rand.NewSource(cfg.Seed))
		_ = rng
		s.Run(func(t *memsim.Thread) bool {
			if counts[t.ID] >= per {
				return false
			}
			counts[t.ID]++
			var line uint64
			if seq {
				line = uint64(t.ID)<<32 + uint64(counts[t.ID])
			} else {
				line = uint64(t.ID)<<32 + uint64(counts[t.ID])*2654435761
			}
			write := false
			switch write2 {
			case 1: // 1:1
				write = counts[t.ID]%2 == 0
			case 2: // 2 reads : 1 write
				write = counts[t.ID]%3 == 0
			}
			t.Stream(line, write, seq)
			return true
		})
		gbs = s.AchievedGBs()
		cycles := s.MaxClock() * 32 / float64(s.MemTransactions())
		return gbs, cycles
	}

	a := &Artifact{
		ID:     "table1",
		Title:  "Theoretical and measured bandwidth and cycle budget (one socket, 32 logical cores)",
		Header: []string{"Configuration", "Bandwidth (GB/s)", "Cycle budget"},
	}
	theoGBs := m.TheoreticalGBs()
	theoBudget := 32 * m.FreqGHz * 1e9 / (theoGBs * 1e9 / 64)
	a.Rows = append(a.Rows, []string{"Theoretical", fmt.Sprintf("%.1f", theoGBs), fmt.Sprintf("%.1f", theoBudget)})
	for _, c := range []struct {
		name   string
		writes int
		seq    bool
	}{
		{"Seq reads", 0, true},
		{"Seq reads-writes (1:1)", 1, true},
		{"Seq reads-writes (2:1)", 2, true},
		{"Random reads", 0, false},
		{"Random reads-writes (1:1)", 1, false},
		{"Random reads-writes (2:1)", 2, false},
	} {
		gbs, budget := run(c.writes, c.seq)
		a.Rows = append(a.Rows, []string{c.name, fmt.Sprintf("%.1f", gbs), fmt.Sprintf("%.1f", budget)})
	}
	a.Notes = append(a.Notes,
		"paper (measured with Intel MLC): 127.8 theoretical, 111.0 seq reads, 95.4 / 97.5 seq r/w, 85.4 random reads, 76.3 / 81.3 random r/w")
	return a
}

// fig2 reproduces Figure 2: synchronization overheads of a spinlock vs an
// atomic increment on 32 MB and 1 GB datasets as skew grows.
func fig2(cfg Config) *Artifact {
	m := memsim.IntelSkylake()
	threads := 64
	ops := cfg.ops(120_000)
	skews := []float64{0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.2}
	if cfg.Quick {
		skews = []float64{0.2, 0.8, 1.1}
	}
	datasets := []struct {
		name  string
		lines uint64
	}{
		{"32mb", 32 << 20 / 64},
		{"1gb", 1 << 30 / 64},
	}

	a := &Artifact{ID: "fig2", Title: "Synchronization overheads (spinlock vs atomic increment)",
		XLabel: "skew", YLabel: "cycles per operation (log in the paper)"}
	for _, ds := range datasets {
		for _, mode := range []string{"spinlock", "atomic-inc"} {
			series := Series{Name: mode + " " + ds.name}
			for _, skew := range skews {
				s := memsim.NewSim(m, threads)
				streams := make([]*workload.Zipf, threads)
				counts := make([]int, threads)
				for i := range streams {
					streams[i] = workload.NewZipf(rand.New(rand.NewSource(cfg.Seed^int64(i))), ds.lines, skew)
				}
				per := ops / threads
				s.Run(func(t *memsim.Thread) bool {
					if counts[t.ID] >= per {
						return false
					}
					counts[t.ID]++
					line := streams[t.ID].Next()
					if mode == "atomic-inc" {
						t.Access(line, memsim.RMW)
						return true
					}
					// Spinlock: the acquisition holds the line exclusively
					// for the critical section, and spinning waiters keep
					// interfering with the handoff; release is a store on
					// the already-owned line.
					t.AccessLocked(line, 10)
					t.Compute(10) // critical section body
					t.Access(line, memsim.Store)
					return true
				})
				cyclesPerOp := s.MaxClock() * float64(threads) / float64(ops)
				series.X = append(series.X, skew)
				series.Y = append(series.Y, cyclesPerOp)
			}
			a.Series = append(a.Series, series)
		}
	}
	a.Notes = append(a.Notes,
		"paper: flat low-hundreds of cycles at low skew; at skew 1.1 the 32 MB dataset reaches ~16K cycles (atomic) and ~66K (spinlock)")
	return a
}

// fig5 reproduces Figure 5: delegation latency across mesh sizes.
func fig5(cfg Config) *Artifact {
	m := memsim.IntelSkylake()
	msgs := cfg.ops(64_000)
	sizes := []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32}
	if cfg.Quick {
		sizes = []int{1, 8, 32}
	}
	a := &Artifact{ID: "fig5", Title: "Latency of delegation",
		XLabel: "producers=consumers", YLabel: "cycles per message"}
	s := Series{Name: "cycles/msg"}
	for _, n := range sizes {
		r := simtable.RunDelegation(m, n, n, msgs/n)
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, r.CyclesPerMsg)
	}
	a.Series = append(a.Series, s)
	a.Notes = append(a.Notes, "paper: 22-37 cycles per message, roughly constant from 1 to 32 producers/consumers")
	return a
}

// figure6 builds fig6a/fig6b: throughput vs threads, uniform keys.
func figure6(slots uint64, id, title string) Runner {
	return func(cfg Config) *Artifact {
		m := memsim.IntelSkylake()
		a := &Artifact{ID: id, Title: title, XLabel: "threads", YLabel: "Mops"}
		for _, mix := range []simtable.OpMix{simtable.Inserts, simtable.Finds} {
			for _, kind := range allKinds {
				s := Series{Name: mixName(mix) + " " + kind.String()}
				for _, n := range threadSweep(m, cfg.Quick) {
					r := simtable.Run(simtable.Config{
						Machine: m, Kind: kind, Threads: n, Slots: slots,
						MeasureOps: cfg.ops(240_000), Seed: cfg.Seed,
					}, mix)
					s.X = append(s.X, float64(n))
					s.Y = append(s.Y, r.Mops)
				}
				a.Series = append(a.Series, s)
			}
		}
		if id == "fig6b" {
			a.Notes = append(a.Notes,
				"paper @64 threads: inserts folklore 417 / dramhit 792 / dramhit-p 671; finds folklore 451 / dramhit 973 / dramhit-p 951 / simd 1008")
		} else {
			a.Notes = append(a.Notes,
				"paper @64 threads: inserts folklore 441 / dramhit 1180 / dramhit-p 975; finds folklore 1616 / dramhit 1513 / dramhit-p 1224")
		}
		return a
	}
}

// fig6c reproduces the cache-pollution experiment.
func fig6c(cfg Config) *Artifact {
	m := memsim.IntelSkylake()
	a := &Artifact{ID: "fig6c", Title: "Impact of cache pollution (uniform, large)",
		XLabel: "pollutions per op", YLabel: "Mops"}
	pollutions := []int{0, 32, 64, 128, 256, 384, 512}
	if cfg.Quick {
		pollutions = []int{0, 128, 512}
	}
	kinds := []simtable.Kind{simtable.Folklore, simtable.DRAMHiT, simtable.DRAMHiTP}
	for _, mix := range []simtable.OpMix{simtable.Inserts, simtable.Finds} {
		for _, kind := range kinds {
			s := Series{Name: mixName(mix) + " " + kind.String()}
			for _, p := range pollutions {
				r := simtable.Run(simtable.Config{
					Machine: m, Kind: kind, Threads: 64, Slots: largeSlots,
					MeasureOps: cfg.ops(120_000), Seed: cfg.Seed, Pollutions: p,
				}, mix)
				s.X = append(s.X, float64(p))
				s.Y = append(s.Y, r.Mops)
			}
			a.Series = append(a.Series, s)
		}
	}
	a.Notes = append(a.Notes,
		"paper: DRAMHiT and DRAMHiT-P degrade gracefully and blend with Folklore once two hyperthreads pollute the entire L1 (256 lines each)")
	return a
}

// fig7 reproduces the batch-size ablation.
func fig7(cfg Config) *Artifact {
	m := memsim.IntelSkylake()
	a := &Artifact{ID: "fig7", Title: "Impact of batch size (uniform, large)",
		XLabel: "batch length", YLabel: "Mops"}
	for _, mix := range []simtable.OpMix{simtable.Inserts, simtable.Finds} {
		for _, kind := range []simtable.Kind{simtable.DRAMHiT, simtable.DRAMHiTP} {
			s := Series{Name: mixName(mix) + " " + kind.String()}
			for _, b := range []int{1, 2, 4, 8, 16} {
				r := simtable.Run(simtable.Config{
					Machine: m, Kind: kind, Threads: 64, Slots: largeSlots,
					Batch: b, MeasureOps: cfg.ops(160_000), Seed: cfg.Seed,
				}, mix)
				s.X = append(s.X, float64(b))
				s.Y = append(s.Y, r.Mops)
			}
			a.Series = append(a.Series, s)
		}
	}
	a.Notes = append(a.Notes, "paper: throughput nearly constant across batch sizes (<10 cycles/op difference)")
	return a
}

// figure8 builds fig8a/fig8b: throughput vs skew at 64 threads.
func figure8(slots uint64, id, title string) Runner {
	return func(cfg Config) *Artifact {
		m := memsim.IntelSkylake()
		a := &Artifact{ID: id, Title: title, XLabel: "skew", YLabel: "Mops"}
		skews := []float64{0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.09}
		if cfg.Quick {
			skews = []float64{0.2, 0.9, 1.09}
		}
		for _, mix := range []simtable.OpMix{simtable.Inserts, simtable.Finds} {
			for _, kind := range allKinds {
				s := Series{Name: mixName(mix) + " " + kind.String()}
				for _, skew := range skews {
					r := simtable.Run(simtable.Config{
						Machine: m, Kind: kind, Threads: 64, Slots: slots,
						Theta: skew, MeasureOps: cfg.ops(160_000), Seed: cfg.Seed,
					}, mix)
					s.X = append(s.X, skew)
					s.Y = append(s.Y, r.Mops)
				}
				a.Series = append(a.Series, s)
			}
		}
		if id == "fig8b" {
			a.Notes = append(a.Notes,
				"paper @skew 1.09 (large): inserts folklore/dramhit 132-143, dramhit-p 245; finds folklore 1499, dramhit 2820, dramhit-p 2133")
		} else {
			a.Notes = append(a.Notes,
				"paper @skew 1.09 (small): inserts dramhit-p 351; finds folklore 4059, dramhit 2919, dramhit-p 2919")
		}
		return a
	}
}

// fig8c reproduces the mixed read/write sweep.
func fig8c(cfg Config) *Artifact {
	m := memsim.IntelSkylake()
	a := &Artifact{ID: "fig8c", Title: "Mixed find/insertion tests (large)",
		XLabel: "read probability", YLabel: "Mops"}
	probs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	if cfg.Quick {
		probs = []float64{0, 0.5, 1.0}
	}
	for _, theta := range []float64{0, 1.09} {
		for _, kind := range []simtable.Kind{simtable.Folklore, simtable.DRAMHiT, simtable.DRAMHiTP} {
			s := Series{Name: fmt.Sprintf("skew%.2f %s", theta, kind)}
			for _, p := range probs {
				r := simtable.Run(simtable.Config{
					Machine: m, Kind: kind, Threads: 64, Slots: largeSlots,
					Theta: theta, ReadProb: p, MeasureOps: cfg.ops(160_000), Seed: cfg.Seed,
				}, simtable.Mixed)
				s.X = append(s.X, p)
				s.Y = append(s.Y, r.Mops)
			}
			a.Series = append(a.Series, s)
		}
	}
	a.Notes = append(a.Notes, "paper: throughput of every table rises with the read fraction")
	return a
}

// fig9 reproduces the latency CDF.
func fig9(cfg Config) *Artifact {
	m := memsim.IntelSkylake()
	a := &Artifact{ID: "fig9", Title: "Cumulative latency distribution (uniform, large, 64 threads)",
		XLabel: "latency (cycles)", YLabel: "cumulative proportion"}
	for _, mix := range []simtable.OpMix{simtable.Inserts, simtable.Finds} {
		for _, kind := range []simtable.Kind{simtable.Folklore, simtable.DRAMHiT, simtable.DRAMHiTP} {
			if kind == simtable.DRAMHiTP && mix == simtable.Finds {
				continue // the paper plots -P inserts only (reads are direct)
			}
			rec := latency.NewRecorder(1 << 18)
			simtable.Run(simtable.Config{
				Machine: m, Kind: kind, Threads: 64, Slots: largeSlots,
				MeasureOps: cfg.ops(120_000), Seed: cfg.Seed,
				LatencySink: func(submit, complete float64) { rec.Add(complete - submit) },
			}, mix)
			cdf := rec.CDF()
			s := Series{Name: kind.String() + " " + mixName(mix)}
			for _, pt := range cdf.Series(24) {
				s.X = append(s.X, pt[0])
				s.Y = append(s.Y, pt[1])
			}
			a.Series = append(a.Series, s)
			a.Notes = append(a.Notes, fmt.Sprintf("%s %s: %s", kind, mixName(mix), cdf.String()))
		}
	}
	a.Notes = append(a.Notes,
		"paper: 90%% of dramhit-p inserts within 52 cycles (fire-and-forget); dramhit within 9090; folklore within 594")
	return a
}

// figureAMD builds fig10a/b/c: thread sweeps on the AMD machine.
func figureAMD(slots uint64, id, title string, theta float64) Runner {
	return func(cfg Config) *Artifact {
		m := memsim.AMDMilan()
		a := &Artifact{ID: id, Title: title, XLabel: "threads", YLabel: "Mops"}
		kinds := []simtable.Kind{simtable.Folklore, simtable.DRAMHiT, simtable.DRAMHiTP}
		for _, mix := range []simtable.OpMix{simtable.Inserts, simtable.Finds} {
			for _, kind := range kinds {
				s := Series{Name: mixName(mix) + " " + kind.String()}
				for _, n := range threadSweep(m, cfg.Quick) {
					r := simtable.Run(simtable.Config{
						Machine: m, Kind: kind, Threads: n, Slots: slots,
						Theta: theta, MeasureOps: cfg.ops(200_000), Seed: cfg.Seed,
					}, mix)
					s.X = append(s.X, float64(n))
					s.Y = append(s.Y, r.Mops)
				}
				a.Series = append(a.Series, s)
			}
		}
		if id == "fig10b" {
			a.Notes = append(a.Notes,
				"paper: dramhit peaks near 32 threads (finds ~1192 / inserts ~1052) then drops sharply — a coherence-subsystem bottleneck; dramhit-p does not collapse")
		}
		return a
	}
}

// fig11 reproduces the AMD zipfian sweep (large).
func fig11(cfg Config) *Artifact {
	m := memsim.AMDMilan()
	a := &Artifact{ID: "fig11", Title: "Lookups and insertions on zipfian distribution (AMD, large)",
		XLabel: "skew", YLabel: "Mops"}
	skews := []float64{0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.09}
	if cfg.Quick {
		skews = []float64{0.2, 0.9, 1.09}
	}
	for _, mix := range []simtable.OpMix{simtable.Inserts, simtable.Finds} {
		for _, kind := range []simtable.Kind{simtable.Folklore, simtable.DRAMHiT, simtable.DRAMHiTP} {
			s := Series{Name: mixName(mix) + " " + kind.String()}
			for _, skew := range skews {
				r := simtable.Run(simtable.Config{
					Machine: m, Kind: kind, Threads: 128, Slots: largeSlots,
					Theta: skew, MeasureOps: cfg.ops(160_000), Seed: cfg.Seed,
				}, mix)
				s.X = append(s.X, skew)
				s.Y = append(s.Y, r.Mops)
			}
			a.Series = append(a.Series, s)
		}
	}
	return a
}

// figure12 builds fig12a/fig12b: k-mer counting throughput vs K.
func figure12(profile kmer.GenomeProfile, id, title string) Runner {
	return func(cfg Config) *Artifact {
		m := memsim.IntelSkylake()
		bases := 600_000
		if cfg.Quick {
			bases = 100_000
		}
		profile.Bases = bases
		records := profile.Generate()
		a := &Artifact{ID: id, Title: title, XLabel: "K", YLabel: "Mops"}
		ks := []int{4, 8, 12, 16, 20, 24, 28, 32}
		if cfg.Quick {
			ks = []int{4, 32}
		}
		type runner struct {
			name string
			run  func(c simtable.Config, trace []uint64) simtable.Result
		}
		runners := []runner{
			{"chtkc (chained)", simtable.RunChainedTrace},
			{"folklore", simtable.RunTrace},
			{"dramhit", simtable.RunTrace},
			{"dramhit-p", simtable.RunTrace},
		}
		kindOf := map[string]simtable.Kind{
			"chtkc (chained)": simtable.Folklore, // kind unused by chained
			"folklore":        simtable.Folklore,
			"dramhit":         simtable.DRAMHiT,
			"dramhit-p":       simtable.DRAMHiTP,
		}
		series := make([]Series, len(runners))
		for i, r := range runners {
			series[i] = Series{Name: r.name}
		}
		for _, k := range ks {
			var trace []uint64
			for _, rec := range records {
				it := kmer.NewIterator(rec, k)
				for {
					km, ok := it.Next()
					if !ok {
						break
					}
					trace = append(trace, hashfn.City64(km))
				}
			}
			for i, r := range runners {
				res := r.run(simtable.Config{
					Machine: m, Kind: kindOf[r.name], Threads: 64,
					Slots: 1 << 22, Seed: cfg.Seed,
				}, trace)
				series[i].X = append(series[i].X, float64(k))
				series[i].Y = append(series[i].Y, res.Mops)
			}
		}
		a.Series = append(a.Series, series...)
		a.Notes = append(a.Notes,
			"paper: dramhit-p considerably outperforms all others on both datasets (zipfian k-mer distribution); chtkc is the slowest at large K",
			fmt.Sprintf("synthetic genome: %s, %d bases (the paper's 7.8/4.8 Gbase datasets scaled; the skew profile, top-25 k-mers covering 50-86%%, is preserved)", profile.Name, bases))
		return a
	}
}

// ablationWindow sweeps the prefetch window (the design's central knob; the
// paper fixes it and reports batching in fig7 instead).
func ablationWindow(cfg Config) *Artifact {
	m := memsim.IntelSkylake()
	a := &Artifact{ID: "ablation-window", Title: "Ablation: prefetch window depth (uniform, large, 64 threads)",
		XLabel: "window", YLabel: "Mops"}
	for _, mix := range []simtable.OpMix{simtable.Inserts, simtable.Finds} {
		s := Series{Name: mixName(mix) + " dramhit"}
		for _, w := range []int{1, 2, 4, 8, 16, 32} {
			r := simtable.Run(simtable.Config{
				Machine: m, Kind: simtable.DRAMHiT, Threads: 64, Slots: largeSlots,
				Window: w, MeasureOps: cfg.ops(160_000), Seed: cfg.Seed,
			}, mix)
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, r.Mops)
		}
		a.Series = append(a.Series, s)
	}
	a.Notes = append(a.Notes, "window 1 disables pipelining and collapses to Folklore-like throughput; gains saturate once the window covers the DRAM latency")
	return a
}

// ablationRatio sweeps the producer:consumer split of DRAMHiT-P (the paper
// reports 1:3 as empirically best).
func ablationRatio(cfg Config) *Artifact {
	m := memsim.IntelSkylake()
	a := &Artifact{ID: "ablation-ratio", Title: "Ablation: DRAMHiT-P producer share of 64 threads (uniform inserts, large)",
		XLabel: "producer fraction x64", YLabel: "Mops"}
	s := Series{Name: "inserts dramhit-p"}
	// Emulate the ratio by varying Threads split — the runner uses 1:4
	// producers; we sweep total threads allocated to emulate ratios by
	// measuring sensitivity to producer starvation instead.
	for _, producers := range []int{4, 8, 12, 16} {
		// Build a custom run: producers fixed via Threads = producers*4
		// (the runner's 1:3 internal split), so the sweep shows where the
		// split saturates.
		r := simtable.Run(simtable.Config{
			Machine: m, Kind: simtable.DRAMHiTP, Threads: producers * 4,
			Slots: largeSlots, MeasureOps: cfg.ops(160_000), Seed: cfg.Seed,
		}, simtable.Inserts)
		s.X = append(s.X, float64(producers))
		s.Y = append(s.Y, r.Mops)
	}
	a.Series = append(a.Series, s)
	a.Notes = append(a.Notes, "paper: a 1-to-3 producer:consumer proportion empirically yields the highest write throughput")
	return a
}

// ablationSection sweeps the delegation mesh shape at a fixed thread budget,
// showing the sensitivity the section-queue design removes.
func ablationSection(cfg Config) *Artifact {
	m := memsim.IntelSkylake()
	a := &Artifact{ID: "ablation-section", Title: "Ablation: delegation mesh shape at 32 threads",
		XLabel: "producers (consumers = 32 - producers)", YLabel: "cycles per message"}
	s := Series{Name: "cycles/msg"}
	for _, p := range []int{4, 8, 16, 24, 28} {
		r := simtable.RunDelegation(m, p, 32-p, cfg.ops(64_000)/p)
		s.X = append(s.X, float64(p))
		s.Y = append(s.Y, r.CyclesPerMsg)
	}
	a.Series = append(a.Series, s)
	return a
}

func mixName(m simtable.OpMix) string {
	switch m {
	case simtable.Inserts:
		return "inserts"
	case simtable.Finds:
		return "finds"
	case simtable.Mixed:
		return "mixed"
	}
	return "?"
}
