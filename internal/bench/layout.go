package bench

import (
	"fmt"
	"time"

	"dramhit/internal/dramhit"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// This file holds the layout A/B: the flat interleaved array (with and
// without the packed tag sidecar) against the one-line bucket layout, on
// positive lookups at 75% and 90% fill. The architecture-independent signal
// is index cache lines touched per lookup:
//
//   - flat+tags: every probe consults the tag sidecar word (one line) and
//     then loads the admitted key line(s) — two distinct lines per op is
//     the floor, so lines/op sits near 2.
//   - bucket: the control byte, fingerprints and slot words share one
//     64-byte bucket, so a lookup is one line load plus a stash hop only
//     when the home bucket's seven lanes overflowed — lines/op sits near 1.
//
// The second claim is fill stability: because overflow goes to a stash
// chain instead of lengthening every neighbour's probe sequence, the
// bucket layout's reprobes/op must grow slowly between 75% and 90% fill
// (the acceptance bound is 1.5x), where the flat layout's probe lengths
// compound.

func init() {
	register("layout-ab", func(cfg Config) *Artifact {
		a, _ := RunLayoutAB(cfg)
		return a
	})
}

// LayoutCell is one (layout, filter, fill) measurement of the A/B.
type LayoutCell struct {
	Layout string  `json:"layout"`
	Filter string  `json:"filter"`
	Fill   float64 `json:"fill"`
	// Mops is host-dependent context; the counters below are the signal.
	Mops float64 `json:"mops"`
	// LinesPerOp is total index cache lines touched per positive lookup:
	// key lines plus tag-sidecar words for the flat layout, bucket lines
	// plus stash hops for the bucket layout.
	LinesPerOp float64 `json:"lines_per_op"`
	// KeyLinesPerOp counts lines whose key material was consulted.
	KeyLinesPerOp float64 `json:"keylines_per_op"`
	// TagWordsPerOp counts tag-sidecar word consults (flat+tags only; the
	// bucket layout keeps its metadata in-cell, so this is zero there).
	TagWordsPerOp float64 `json:"tagwords_per_op"`
	// ReprobesPerOp counts extra line crossings beyond the home line: probe
	// continuations for the flat layout, stash-node hops for the bucket.
	ReprobesPerOp float64 `json:"reprobes_per_op"`
	// Stashed is the bucket layout's overflow-chain population (0 for flat).
	Stashed int64 `json:"stashed,omitempty"`
}

// LayoutSummary is the machine-readable verdict for BENCH_layout.json.
type LayoutSummary struct {
	Schema string       `json:"schema"`
	Quick  bool         `json:"quick"`
	Cells  []LayoutCell `json:"cells"`
	// BucketLines75 / FlatTagsLines75 are the headline lines/op of the two
	// contenders on positive lookups at 75% fill (acceptance: bucket <= 1.2,
	// flat+tags ~ 2.0).
	BucketLines75   float64 `json:"bucket_lines_per_op_75"`
	FlatTagsLines75 float64 `json:"flattags_lines_per_op_75"`
	// BucketReprobes75/90 and their ratio are the fill-stability check
	// (acceptance: ratio <= 1.5).
	BucketReprobes75  float64 `json:"bucket_reprobes_per_op_75"`
	BucketReprobes90  float64 `json:"bucket_reprobes_per_op_90"`
	ReprobeRatio90v75 float64 `json:"bucket_reprobe_ratio_90_vs_75"`
	// BucketGrows must be zero: the default MaxLoad (0.95) sits above the
	// 90% fill point precisely so this experiment measures the stash, not
	// the resizer.
	BucketGrows uint64 `json:"bucket_grows"`
}

// RunLayoutAB runs the layout A/B and returns both the rendered artifact
// and the structured summary (the -layoutjson CLI flag writes the latter).
func RunLayoutAB(cfg Config) (*Artifact, *LayoutSummary) {
	a := &Artifact{
		ID:     "layout-ab",
		Title:  "Flat vs one-line bucket layout A/B (real execution)",
		Header: []string{"layout", "filter", "fill", "Mops", "lines/op", "keylines/op", "tagwords/op", "reprobes/op", "stashed"},
	}
	s := &LayoutSummary{Schema: LayoutSchema, Quick: cfg.Quick}
	size := uint64(1 << 20)
	if cfg.Quick {
		size = 1 << 17
	}
	probeN := int(size) / 4

	// Flat cells: one table per filter, filled incrementally 75% -> 90%,
	// probing the same loaded prefix at both points (the tags-ab
	// methodology: the probe set is the working set, identical across
	// layouts and fills, so only the index layout varies between cells).
	for _, f := range []table.ProbeFilter{table.FilterNone, table.FilterTags} {
		cells := flatLayoutCells(cfg, size, probeN, f)
		for _, c := range cells {
			a.Rows = append(a.Rows, layoutRow(c))
			s.Cells = append(s.Cells, c)
			if f == table.FilterTags && c.Fill == 0.75 {
				s.FlatTagsLines75 = c.LinesPerOp
			}
		}
	}

	// Bucket cells: same incremental fill and probe prefix on one table.
	bcells, grows := bucketLayoutCells(cfg, size, probeN)
	for _, c := range bcells {
		a.Rows = append(a.Rows, layoutRow(c))
		s.Cells = append(s.Cells, c)
		switch c.Fill {
		case 0.75:
			s.BucketLines75 = c.LinesPerOp
			s.BucketReprobes75 = c.ReprobesPerOp
		case 0.90:
			s.BucketReprobes90 = c.ReprobesPerOp
		}
	}
	s.BucketGrows = grows
	if s.BucketReprobes75 > 0 {
		s.ReprobeRatio90v75 = s.BucketReprobes90 / s.BucketReprobes75
	}

	// Byte-KV showcase: the same bucket engine through the byte-string API
	// with zipf-sized variable-length values — the workload class the arena
	// exists for. Context row, not part of the acceptance numbers.
	bc := bucketBytesCell(cfg, size, probeN)
	a.Rows = append(a.Rows, layoutRow(bc))
	s.Cells = append(s.Cells, bc)

	a.Notes = append(a.Notes,
		fmt.Sprintf("method: %d-slot tables filled 75%% then 90%% with UniqueKeys; each fill point probes the first %d loaded keys (all hits), so the probe set is identical across layouts and fills", size, probeN),
		"lines/op is distinct index cache-line touches per lookup: keylines+tagwords for flat (reprobe continuations are already line visits inside those counts; flat+tags pays the sidecar word on every visited line), keylines+reprobes for bucket (stash hops are lines beyond the home bucket; metadata is in-cell, so tagwords is zero)",
		"flat tagwords/op counts sidecar word consults; consecutive probes can share a sidecar cache line, so it slightly overstates distinct-line traffic — the bucket side needs no such correction",
		"bucket reprobes/op are stash-node hops; the 90/75 ratio over the common working set is the fill-stability criterion (<= 1.5). The flat rows repeat exactly across fills — a linear probe's length is fixed at insertion time, so later inserts never lengthen an existing key's probe — while bucket stash chains prepend, pushing earlier overflow keys deeper, which is what the ratio detects",
		"probing a uniform sample of all live keys instead of the common prefix raises the bucket 90%-fill hops (the late keys land in fuller buckets) — roughly 2x the 75% figure — but leaves lines/op near 1.2 and the flat comparison unchanged",
		"bucket-bytes is the byte-string API on the same engine: 'user<id>' keys, zipf-sized 1-256B values in the log-structured arena; Mops include the hash and arena record walk",
		"Mops are host-dependent; the counter columns are the architecture-independent signal")
	return a, s
}

// layoutRow renders one cell for the text artifact.
func layoutRow(c LayoutCell) []string {
	return []string{
		c.Layout,
		c.Filter,
		fmt.Sprintf("%.2f", c.Fill),
		fmt.Sprintf("%.1f", c.Mops),
		fmt.Sprintf("%.3f", c.LinesPerOp),
		fmt.Sprintf("%.3f", c.KeyLinesPerOp),
		fmt.Sprintf("%.3f", c.TagWordsPerOp),
		fmt.Sprintf("%.4f", c.ReprobesPerOp),
		fmt.Sprintf("%d", c.Stashed),
	}
}

// layoutFills are the two fill points of the A/B.
var layoutFills = []float64{0.75, 0.90}

// flatLayoutCells measures one flat table at both fill points.
func flatLayoutCells(cfg Config, size uint64, probeN int, f table.ProbeFilter) []LayoutCell {
	tbl := dramhit.New(dramhit.Config{Slots: size, ProbeKernel: cfg.ProbeKernel, ProbeFilter: f})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(cfg.Seed, int(float64(size)*layoutFills[len(layoutFills)-1]))
	var cells []LayoutCell
	filled := 0
	for _, fill := range layoutFills {
		n := int(float64(size) * fill)
		h.PutBatch(keys[filled:n], make([]uint64, n-filled))
		filled = n
		c, _ := probeLayoutCell("flat", f.String(), fill, keys[:probeN], func(probe []uint64) {
			h.GetBatch(probe, make([]uint64, len(probe)), make([]bool, len(probe)))
		}, func() (kl, tw, rp, total float64) {
			// Every visited line loads key lanes or is tag-skipped, and with
			// the filter on every visit consults the sidecar word first — so
			// distinct line touches are key lines plus sidecar consults, with
			// reprobe continuations already inside those visit counts.
			st := h.Stats()
			kl, tw = float64(st.KeyLines), flatTagWords(f, st)
			return kl, tw, float64(st.Reprobes), kl + tw
		})
		cells = append(cells, c)
	}
	return cells
}

// flatTagWords returns the tag-sidecar consult count: with the filter on,
// every line visit (Stats.Lines) reads the packed tag word first; with it
// off there is no sidecar to read.
func flatTagWords(f table.ProbeFilter, st dramhit.Stats) float64 {
	if f == table.FilterTags {
		return float64(st.Lines)
	}
	return 0
}

// bucketLayoutCells measures one bucket table at both fill points.
func bucketLayoutCells(cfg Config, size uint64, probeN int) ([]LayoutCell, uint64) {
	tbl := dramhit.New(dramhit.Config{Slots: size, Layout: table.LayoutBucket})
	h := tbl.NewHandle()
	// Fill fractions are of the bucket table's own lane capacity (ceil to
	// whole buckets), so "90% fill" means the same pressure it does on flat.
	lanes := uint64(tbl.Cap())
	keys := workload.UniqueKeys(cfg.Seed, int(float64(lanes)*layoutFills[len(layoutFills)-1]))
	var cells []LayoutCell
	filled := 0
	for _, fill := range layoutFills {
		n := int(float64(lanes) * fill)
		h.PutBatch(keys[filled:n], make([]uint64, n-filled))
		filled = n
		c, _ := probeLayoutCell("bucket", "incell", fill, keys[:probeN], func(probe []uint64) {
			h.GetBatch(probe, make([]uint64, len(probe)), make([]bool, len(probe)))
		}, bucketLayoutCounters(h))
		c.Stashed = tbl.Bucket().Stashed()
		cells = append(cells, c)
	}
	return cells, tbl.Bucket().Grows()
}

// bucketBytesCell measures the byte-string API on a fresh bucket table at
// 75% fill: string keys, zipf-sized values out of the arena.
func bucketBytesCell(cfg Config, size uint64, probeN int) LayoutCell {
	tbl := dramhit.New(dramhit.Config{Slots: size, Layout: table.LayoutBucket})
	h := tbl.NewHandle()
	lanes := uint64(tbl.Cap())
	n := int(float64(lanes) * 0.75)
	keys := workload.UniqueByteKeys(cfg.Seed, n)
	sizer := workload.NewValueSizer(cfg.Seed, 256, 0.99)
	var vbuf []byte
	for i, k := range keys {
		vbuf = workload.FillValue(vbuf, uint64(i), sizer.Next())
		h.PutBytes(k, vbuf)
	}
	c, _ := probeLayoutCell("bucket-bytes", "incell", 0.75, keys[:probeN], func(probe [][]byte) {
		for _, k := range probe {
			h.GetBytes(k)
		}
	}, bucketLayoutCounters(h))
	c.Stashed = tbl.Bucket().Stashed()
	return c
}

// bucketLayoutCounters reads a bucket handle's probe counters: home-bucket
// loads land in KeyLines, stash hops in Reprobes, and each hop is a line
// the home count excludes, so total lines = keylines + reprobes.
func bucketLayoutCounters(h *dramhit.Handle) func() (kl, tw, rp, total float64) {
	return func() (kl, tw, rp, total float64) {
		st := h.Stats()
		kl, rp = float64(st.KeyLines), float64(st.Reprobes)
		return kl, 0, rp, kl + rp
	}
}

// probeLayoutCell times one probe pass and converts counter deltas into a
// cell. counters() returns the cumulative (keylines, tagwords, reprobes,
// total-lines) readings before and after; run() performs the probes. The
// total-lines counter is layout-specific — the flat layout's reprobe
// continuations are already line visits inside keylines/tagwords, while the
// bucket layout's stash hops are lines the home-bucket count excludes — so
// each cell function composes it from its own Stats rather than this helper
// guessing.
func probeLayoutCell[K any](layout, filter string, fill float64, probe []K, run func([]K), counters func() (kl, tw, rp, total float64)) (LayoutCell, float64) {
	kl0, tw0, rp0, tot0 := counters()
	start := time.Now()
	run(probe)
	elapsed := time.Since(start)
	kl1, tw1, rp1, tot1 := counters()
	n := float64(len(probe))
	c := LayoutCell{
		Layout:        layout,
		Filter:        filter,
		Fill:          fill,
		Mops:          n / elapsed.Seconds() / 1e6,
		LinesPerOp:    (tot1 - tot0) / n,
		KeyLinesPerOp: (kl1 - kl0) / n,
		TagWordsPerOp: (tw1 - tw0) / n,
		ReprobesPerOp: (rp1 - rp0) / n,
	}
	return c, c.Mops
}
