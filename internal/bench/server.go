// The server-ab experiment: the network front-end A/B. An in-process
// dramhit-server on a loopback socket is driven by the workload socket
// client at rising connection counts, once with the pipelined dramhit
// backend (wire batches drain through the per-connection byte pipeline
// under one prefetch window) and once with the folklore backend (one
// synchronous engine call per request as parsed) — the end-to-end question
// the ROADMAP's serving north star asks: does memory-level batching still
// pay once a real request path feeds the table?
package bench

import (
	"fmt"

	"dramhit/internal/kvserver"
	"dramhit/internal/obs"
	tbl "dramhit/internal/table"
	"dramhit/internal/workload"
	"dramhit/internal/ycsb"
)

// serverPipeline is the per-connection pipeline depth of every cell — the
// same default depth the server's prefetch window covers.
const serverPipeline = 16

// serverValueSize is the SET payload size in bytes.
const serverValueSize = 32

// serverConnLevels returns the connection counts swept. Quick keeps the
// same cell names for its lower levels so the benchdiff gate can compare a
// quick CI regeneration against the committed full baseline.
func serverConnLevels(quick bool) []int {
	if quick {
		return []int{64, 256}
	}
	return []int{64, 256, 1024}
}

// RunServerAB runs the server A/B matrix and returns the text artifact plus
// the machine-readable summary (BENCH_server.json).
func RunServerAB(cfg Config) (*Artifact, *ServerSummary) {
	a := &Artifact{
		ID:     "server-ab",
		Title:  "Network front-end: dramhit vs folklore backend over loopback RESP",
		Header: []string{"conns", "backend", "Mops", "p50 ns", "p99 ns", "p99.9 ns", "errors"},
	}
	// Quick mode only drops the 1024-conn level; records and op count stay
	// at full scale so the quick cells are identical in regime to the
	// committed baseline's lower levels. Cutting either skews the
	// dramhit-vs-folklore ratio (smaller records turn the working set
	// cache-resident and flip the sign, the same effect governor-ab
	// measures; fewer ops under-amortize the pipelined path's warm-up) and
	// the CI benchdiff gate would compare across regimes.
	records := uint64(1 << 17)
	totalOps := 2_000_000
	// One loaded key set shared by every cell: reads draw ranks over it, so
	// hit ratios are structural, not salt luck. The miss pool is disjoint
	// from the loaded ranks by ScrambleRank's bijection.
	loadedKeys := ycsb.LoadKeys(records, 1)
	missKeys := workload.MissKeys(1, int(records), 4096)

	sum := &ServerSummary{Schema: ServerSchema, Quick: cfg.Quick, Ratios: map[string]float64{}}
	for _, conns := range serverConnLevels(cfg.Quick) {
		mops := map[kvserver.Backend]float64{}
		for _, be := range []kvserver.Backend{kvserver.BackendDramhit, kvserver.BackendFolklore} {
			res := serverCell(be, conns, totalOps, loadedKeys, missKeys)
			sum.Runs = append(sum.Runs, res)
			mops[be] = res.Mops
			lat := res.LatencyNS
			a.Rows = append(a.Rows, []string{
				fmt.Sprintf("%d", conns), be.String(),
				fmt.Sprintf("%.2f", res.Mops),
				fmt.Sprintf("%.0f", lat.P50),
				fmt.Sprintf("%.0f", lat.P99),
				fmt.Sprintf("%.0f", lat.P999),
				fmt.Sprintf("%d", res.Errors),
			})
		}
		if f := mops[kvserver.BackendFolklore]; f > 0 {
			sum.Ratios[fmt.Sprintf("c%d", conns)] = mops[kvserver.BackendDramhit] / f
		}
		if conns > sum.MaxConns {
			sum.MaxConns = conns
		}
	}
	a.Notes = append(a.Notes,
		"method: an in-process dramhit-server on 127.0.0.1:0 per cell, driven closed-loop by the workload socket client (pipeline 16 per connection); mix per connection: 78% GET over the loaded zipf-0.99 rank space, 10% structurally absent GET, 9% SET, 3% INCR on a small counter keyspace — all four op classes cross the wire",
		"dramhit backend: requests parse into the per-connection byte pipeline and drain under one prefetch window per wire batch; folklore backend: one synchronous engine call per request as parsed (the folklore execution model on the same kernel, as in governor-ab)",
		fmt.Sprintf("acceptance: the committed full run sustains 1024 concurrent connections with per-op-class p99.9 recorded (schema %s); CI gates dramhit_vs_folklore_mops at matching cells within ±15%%", ServerSchema),
		"loopback RESP is syscall-bound, so the backends land close; the gate catches the pipelined path regressing against the synchronous baseline, not absolute Mops (machine-dependent)")
	return a, sum
}

// serverCell measures one (backend, conns) cell: boot, load, timed drive,
// summarize.
func serverCell(be kvserver.Backend, conns, totalOps int, loadedKeys, missKeys []uint64) RunResult {
	records := len(loadedKeys)
	srv, err := kvserver.New(kvserver.Config{
		RespAddr: "127.0.0.1:0",
		Slots:    uint64(records) * 4,
		Backend:  be,
	})
	if err != nil {
		panic(fmt.Sprintf("server-ab: %v", err))
	}
	defer srv.Close()
	if err := workload.SocketLoad(srv.RespAddr(), loadedKeys, serverValueSize, 16, 128); err != nil {
		panic(fmt.Sprintf("server-ab load: %v", err))
	}

	reg := obs.NewWith(0, 1)
	pool := make([]*obs.Worker, 16)
	for i := range pool {
		pool[i] = reg.Worker(fmt.Sprintf("server-ab-w%d", i))
	}
	perConn := totalOps / conns
	if perConn < 1 {
		perConn = 1
	}
	client := &workload.SocketClient{
		Addr: srv.RespAddr(), Conns: conns, Pipeline: serverPipeline,
		OpsPerConn: perConn,
		Record: func(ci int, op tbl.Op, hit, _ bool, ns uint64) {
			w := pool[ci%len(pool)]
			w.Lat.Record(ns)
			w.Op[obs.OpClass(op, hit)].Record(ns)
		},
		Stream: func(ci int) workload.SocketStream {
			ranks := workload.NewRankStream(int64(ci+1), uint64(records), 0.99)
			var kb, vb []byte
			mi := ci // stagger the miss-pool walk per connection
			return func(i int) workload.SocketOp {
				switch {
				case i%32 == 31: // 3% INCR on a numeric counter keyspace
					// Counter id from the INCR-stream index (i/32), not i
					// itself: i%64 under i%32==31 only ever hits 31 or 63,
					// collapsing the intended 64-key space to 2.
					kb = append(kb[:0], fmt.Sprintf("ctr%d", (i/32)%64)...)
					return workload.SocketOp{Op: tbl.Upsert, Key: kb}
				case i%11 == 9: // 9% SET over the loaded space
					k := loadedKeys[ranks.Next()]
					kb = workload.AppendByteKey(kb[:0], k)
					vb = workload.FillValue(vb, k, serverValueSize)
					return workload.SocketOp{Op: tbl.Put, Key: kb, Value: vb}
				case i%10 == 4: // 10% structurally absent GET
					kb = workload.AppendByteKey(kb[:0], missKeys[mi%len(missKeys)])
					mi++
					return workload.SocketOp{Op: tbl.Get, Key: kb}
				default: // 78% GET over the loaded zipf space
					kb = workload.AppendByteKey(kb[:0], loadedKeys[ranks.Next()])
					return workload.SocketOp{Op: tbl.Get, Key: kb}
				}
			}
		},
	}
	stats, err := client.Run()
	if err != nil {
		panic(fmt.Sprintf("server-ab drive (%s, %d conns): %v", be, conns, err))
	}

	var merged obs.Histogram
	for _, w := range pool {
		merged.Merge(&w.Lat)
	}
	pct := PercentilesFromHistogram(&merged)
	opsByType := map[string]uint64{}
	opLatNS := map[string]Percentiles{}
	for cls := 0; cls < obs.NumOpClasses; cls++ {
		var m obs.Histogram
		for _, w := range pool {
			m.Merge(&w.Op[cls])
		}
		if m.Count() != 0 {
			opsByType[obs.OpClassNames[cls]] = m.Count()
			opLatNS[obs.OpClassNames[cls]] = PercentilesFromHistogram(&m)
		}
	}
	return RunResult{
		Name:        fmt.Sprintf("server-ab-%s-c%d", be, conns),
		Table:       "server/" + be.String(),
		Proto:       "resp",
		Workload:    "mixed-net",
		Records:     records,
		Ops:         int(stats.Ops),
		Workers:     conns,
		Conns:       conns,
		Pipeline:    serverPipeline,
		Errors:      stats.Errors,
		Theta:       0.99,
		MissRatio:   0.1,
		ValueSize:   serverValueSize,
		Seconds:     stats.Elapsed.Seconds(),
		Mops:        float64(stats.Ops) / stats.Elapsed.Seconds() / 1e6,
		LatencyNS:   &pct,
		OpsByType:   opsByType,
		OpLatencyNS: opLatNS,
	}
}
