// The introspection A/B: what the PR-9 observability extras cost and
// whether what they report is true.
//
// Three sections, all real execution on the dramhit table:
//
//  1. Overhead — the same mixed zipf stream through one handle with
//     observation off, with the plain registry attached, and with the
//     introspection arms (hot-key sketch + per-op-class latency) enabled.
//     The introspected side must stay within a few percent of off.
//  2. Sketch recall — the Space-Saving hot-key ranking against exact
//     counts of the same stream at zipf θ ∈ {0.90, 0.99}; acceptance is
//     recall@16 ≥ 0.9 at θ = 0.99.
//  3. Heatmap consistency — the /heatmap bucket collector scraped at 75%
//     fill: its fill gauge must match the table's own occupancy and its
//     probe_loads mean must agree with layout-ab's headline (bucket
//     lines/op ≈ 1 at 75% fill — one cache line per positive lookup).
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"dramhit/internal/dramhit"
	"dramhit/internal/obs"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// IntrospectSchema identifies the introspect-ab summary layout
// (BENCH_introspect.json); bump on incompatible change.
const IntrospectSchema = "dramhit-bench-introspect/v1"

func init() {
	register("introspect-ab", func(cfg Config) *Artifact {
		a, _ := RunIntrospectAB(cfg)
		return a
	})
}

// IntrospectSummary is the top-level BENCH_introspect.json document.
type IntrospectSummary struct {
	Schema string `json:"schema"`
	Quick  bool   `json:"quick"`
	// The overhead ladder: best-of-reps Mops per observation mode, and the
	// relative cost of each armed mode over off (positive = slower), as the
	// median of per-round paired ratios. HotKeysMarginalPct isolates the
	// sketch feed itself — hotkeys versus observe, the mode it extends —
	// and carries the ≤3% budget; full introspect adds two clock reads per
	// op for the latency stamps and is a diagnosis mode, reported but not
	// budgeted.
	OffMops               float64 `json:"off_mops"`
	ObserveMops           float64 `json:"observe_mops"`
	HotKeysMops           float64 `json:"hotkeys_mops"`
	IntrospectMops        float64 `json:"introspect_mops"`
	ObserveOverheadPct    float64 `json:"observe_overhead_pct"`
	HotKeysOverheadPct    float64 `json:"hotkeys_overhead_pct"`
	HotKeysMarginalPct    float64 `json:"hotkeys_marginal_pct"`
	IntrospectOverheadPct float64 `json:"introspect_overhead_pct"`
	// The budget cell: the sampled sketch feed timed directly (two-pass
	// subtraction over a precomputed key slice) and that cost as a share of
	// the off-mode per-op time. The mode A/B above is context — whole-rep
	// noise on a shared box exceeds the nanosecond-scale effect — while
	// this pair is deterministic enough to gate on.
	SketchFeedNS         float64 `json:"sketch_feed_ns_per_op"`
	SketchFeedImpliedPct float64 `json:"sketch_feed_implied_pct"`
	// RecallAt16 maps zipf theta (as printed, e.g. "0.99") to the sketch's
	// recall@16 against exact stream counts (acceptance ≥ 0.9 at 0.99).
	RecallAt16 map[string]float64 `json:"recall_at_16"`
	// The heatmap cross-check at 75% fill: the collector's fill gauge, the
	// table's own fill, and the probe_loads distribution mean (≈ layout-ab's
	// bucket lines/op headline).
	HeatmapFill           float64 `json:"heatmap_fill"`
	TableFill             float64 `json:"table_fill"`
	HeatmapProbeLoadsMean float64 `json:"heatmap_probe_loads_mean"`
}

// RunIntrospectAB runs the introspection A/B and returns the rendered
// artifact plus the structured summary (-introspectjson writes the latter).
func RunIntrospectAB(cfg Config) (*Artifact, *IntrospectSummary) {
	a := &Artifact{
		ID:     "introspect-ab",
		Title:  "Introspection overhead, sketch recall, heatmap consistency (real execution)",
		Header: []string{"cell", "value", "detail"},
	}
	s := &IntrospectSummary{Schema: IntrospectSchema, Quick: cfg.Quick}

	size := uint64(1 << 20)
	ops := 1 << 21
	// Best-of-9: the overhead under test is a few nanoseconds per operation
	// while scheduler and frequency noise on a shared box swings whole reps
	// by ±6%, so the ladder leans on extreme-value estimation — enough
	// interleaved tries that every mode's best rep ran on a quiet machine.
	reps := 9
	if cfg.Quick {
		size = 1 << 17
		ops = 1 << 15
		reps = 3
	}

	// Section 1: the overhead ladder. Same stream, three observation modes;
	// best-of-reps per mode so scheduler noise does not masquerade as cost.
	modes := []struct {
		name string
		mk   func() *obs.Registry
	}{
		{"off", func() *obs.Registry { return nil }},
		{"observe", obs.New},
		{"hotkeys", func() *obs.Registry {
			r := obs.New()
			r.EnableHotKeys(0)
			return r
		}},
		{"introspect", func() *obs.Registry {
			r := obs.New()
			r.EnableHotKeys(0)
			r.EnableOpLatency()
			return r
		}},
	}
	// Reps interleave round-robin across modes (off, observe, hotkeys,
	// introspect, off, ...) with a forced GC between tables, so heap growth
	// and clock drift land evenly on every mode instead of taxing whichever
	// block runs last. Each overhead is then the MEDIAN of per-round paired
	// ratios: a mode's rep is compared against the off rep from the same
	// round (adjacent in time, same machine epoch), which cancels the
	// whole-rep frequency swings that a cross-round best-of cannot — the
	// effect under test is a few nanoseconds per op while shared-box noise
	// moves entire reps by ±6%.
	mops := make([]float64, len(modes))
	for i := range mops {
		mops[i] = -1
	}
	rounds := make([][]float64, reps)
	for rep := 0; rep < reps; rep++ {
		rounds[rep] = make([]float64, len(modes))
		for i, m := range modes {
			runtime.GC()
			v := introspectRep(cfg, size, ops, m.mk())
			rounds[rep][i] = v
			if v > mops[i] {
				mops[i] = v
			}
		}
	}
	overhead := func(base, mode int) float64 {
		ratios := make([]float64, 0, reps)
		for _, r := range rounds {
			ratios = append(ratios, (r[base]-r[mode])/r[base]*100)
		}
		sort.Float64s(ratios)
		return ratios[len(ratios)/2]
	}
	s.OffMops, s.ObserveMops, s.HotKeysMops, s.IntrospectMops = mops[0], mops[1], mops[2], mops[3]
	s.ObserveOverheadPct = overhead(0, 1)
	s.HotKeysOverheadPct = overhead(0, 2)
	s.HotKeysMarginalPct = overhead(1, 2)
	s.IntrospectOverheadPct = overhead(0, 3)
	for i, m := range modes {
		a.Rows = append(a.Rows, []string{"mops " + m.name, fmt.Sprintf("%.1f", mops[i]), ""})
	}
	s.SketchFeedNS = introspectFeedNS(cfg, size, ops, reps)
	s.SketchFeedImpliedPct = s.SketchFeedNS / (1e3 / mops[0]) * 100
	a.Rows = append(a.Rows,
		[]string{"overhead observe", fmt.Sprintf("%.2f%%", s.ObserveOverheadPct), "registry + trace sampling vs off"},
		[]string{"overhead hotkeys", fmt.Sprintf("%.2f%%", s.HotKeysOverheadPct), "observe + sketch feed vs off"},
		[]string{"overhead sketch A/B", fmt.Sprintf("%.2f%%", s.HotKeysMarginalPct), "hotkeys vs observe paired median (shared-box noise ±4%)"},
		[]string{"sketch feed ns/op", fmt.Sprintf("%.2f", s.SketchFeedNS), "direct two-pass timing of the sampled feed, best-of-reps"},
		[]string{"overhead sketch direct", fmt.Sprintf("%.2f%%", s.SketchFeedImpliedPct), "feed ns/op over the off-mode per-op time (budget ≤3%)"},
		[]string{"overhead introspect", fmt.Sprintf("%.2f%%", s.IntrospectOverheadPct), "+ per-op latency stamps (two clock reads/op; diagnosis mode)"})

	// Section 2: sketch recall against exact counts. The recall stream is
	// longer than the overhead reps even in quick mode: the table-side feed
	// samples 1 in 1<<obs.SampleShift submissions, and the sketch needs a
	// few hundred samples of the rank-16 key for the ranking to settle.
	recallOps := ops
	if recallOps < 1<<20 {
		recallOps = 1 << 20
	}
	s.RecallAt16 = map[string]float64{}
	for _, theta := range []float64{0.90, 0.99} {
		r := introspectRecall(cfg, size, recallOps, theta)
		key := fmt.Sprintf("%.2f", theta)
		s.RecallAt16[key] = r
		a.Rows = append(a.Rows, []string{"recall@16 zipf " + key, fmt.Sprintf("%.3f", r), "Space-Saving top-16 vs exact (want ≥0.9 at 0.99)"})
	}

	// Section 3: heatmap consistency at 75% fill, bucket layout.
	hfill, tfill, loads := introspectHeatmap(cfg, size)
	s.HeatmapFill, s.TableFill, s.HeatmapProbeLoadsMean = hfill, tfill, loads
	a.Rows = append(a.Rows,
		[]string{"heatmap fill", fmt.Sprintf("%.3f", hfill), fmt.Sprintf("collector gauge; table reports %.3f", tfill)},
		[]string{"heatmap probe_loads mean", fmt.Sprintf("%.3f", loads), "≈ layout-ab bucket lines/op at 75% fill (~1.0)"})

	a.Notes = append(a.Notes,
		fmt.Sprintf("method: %d-slot dramhit table, %d mixed zipf(0.99) get/upsert ops through one handle (batch 16), best-of-%d per mode", size, ops, reps),
		"hotkeys arms EnableHotKeys alone: Submit feeds the filtered Space-Saving sketch through a 1-in-32 weighted sample (obs.SampleShift) on the combining tag sidecar path; the budget cell is 'overhead sketch direct' — the feed timed by two-pass subtraction, which resolves a nanosecond-scale cost the mode A/B cannot",
		"overheads are medians of per-round paired ratios (each armed rep against the off/observe rep adjacent in time), because shared-box frequency noise swings whole reps by more than the effect under test",
		"introspect additionally arms EnableOpLatency, which stamps every request with two wall-clock reads (submit and retire); that cost is inherent to per-op wall time on a sub-100ns pipeline and the mode is meant for bounded diagnosis sessions, not steady state",
		"recall streams draw from the loaded keyset; exact counts are tallied alongside and compared to the registry's merged TopKeys(16)",
		fmt.Sprintf("heatmap cell: bucket layout filled to 75%%, scraped via the registry's /heatmap collector; machine-readable summary lands in BENCH_introspect.json (schema %s)", IntrospectSchema))
	return a, s
}

// introspectRep is one overhead repetition: a mixed 50/50 get/upsert
// zipf(0.99) stream through one handle, reporting Mops.
func introspectRep(cfg Config, size uint64, ops int, reg *obs.Registry) float64 {
	tbl := dramhit.New(dramhit.Config{
		Slots:       size,
		ProbeKernel: cfg.ProbeKernel,
		ProbeFilter: cfg.ProbeFilter,
		Combining:   cfg.Combining,
		Observe:     reg,
	})
	h := tbl.NewHandle()
	ks := workload.NewKeyStream(cfg.Seed, size/2, 0.99)
	const batch = 16
	reqs := make([]table.Request, batch)
	resps := make([]table.Response, batch)
	start := time.Now()
	for n := 0; n < ops; n += batch {
		b := batch
		if ops-n < b {
			b = ops - n
		}
		for i := 0; i < b; i++ {
			k := ks.Next()
			if i&1 == 0 {
				reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i)}
			} else {
				reqs[i] = table.Request{Op: table.Upsert, Key: k, Value: 1}
			}
		}
		rem := reqs[:b]
		for len(rem) > 0 {
			nr, _ := h.Submit(rem, resps)
			rem = rem[nr:]
		}
		for {
			if _, done := h.Flush(resps); done {
				break
			}
		}
	}
	return float64(ops) / time.Since(start).Seconds() / 1e6
}

// introspectFeedNS times the sampled sketch feed directly: two passes over
// the same precomputed zipf(0.99) key slice, one consuming keys into a sink
// and one additionally calling OfferSampled, best-of-reps each; the
// difference is the feed's amortized cost per operation. Unlike the mode
// A/B, this isolates a nanosecond-scale effect from whole-rep machine noise
// (both passes run back to back and the subtraction cancels the loop).
func introspectFeedNS(cfg Config, size uint64, ops, reps int) float64 {
	ks := workload.NewKeyStream(cfg.Seed^0x66656564, size/2, 0.99) // "feed"
	keys := make([]uint64, ops)
	for i := range keys {
		keys[i] = ks.Next()
	}
	w := obs.NewTopK(obs.DefaultHotKeyCap)
	var sink uint64
	base, feed := -1.0, -1.0
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		for _, k := range keys {
			sink ^= k
		}
		if v := time.Since(t0).Seconds(); base < 0 || v < base {
			base = v
		}
		t0 = time.Now()
		for _, k := range keys {
			sink ^= k
			w.OfferSampled(k)
		}
		if v := time.Since(t0).Seconds(); feed < 0 || v < feed {
			feed = v
		}
	}
	runtime.KeepAlive(sink)
	ns := (feed - base) / float64(ops) * 1e9
	if ns < 0 {
		ns = 0
	}
	return ns
}

// introspectRecall streams zipf(theta) Gets through an armed handle while
// tallying exact counts, and returns the sketch's recall@16.
func introspectRecall(cfg Config, size uint64, ops int, theta float64) float64 {
	reg := obs.NewWith(0, 1)
	reg.EnableHotKeys(0)
	tbl := dramhit.New(dramhit.Config{Slots: size, Observe: reg})
	h := tbl.NewHandle()
	ks := workload.NewKeyStream(cfg.Seed^0x746f706b, size/2, theta) // "topk"
	exact := map[uint64]uint64{}
	const batch = 16
	reqs := make([]table.Request, batch)
	resps := make([]table.Response, batch)
	for n := 0; n < ops; n += batch {
		b := batch
		if ops-n < b {
			b = ops - n
		}
		for i := 0; i < b; i++ {
			k := ks.Next()
			exact[k]++
			reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i)}
		}
		rem := reqs[:b]
		for len(rem) > 0 {
			nr, _ := h.Submit(rem, resps)
			rem = rem[nr:]
		}
		for {
			if _, done := h.Flush(resps); done {
				break
			}
		}
	}
	const k = 16
	type kc struct {
		key uint64
		n   uint64
	}
	all := make([]kc, 0, len(exact))
	for key, n := range exact {
		all = append(all, kc{key, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	truth := map[uint64]bool{}
	for i := 0; i < k && i < len(all); i++ {
		truth[all[i].key] = true
	}
	hit := 0
	for _, it := range reg.TopKeys(k) {
		if truth[it.Key] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// introspectHeatmap fills a bucket-layout table to 75% and cross-checks the
// registry's heatmap collector against the table's own accounting. Returns
// the collector's fill gauge, the table's fill, and the probe_loads mean.
func introspectHeatmap(cfg Config, size uint64) (hfill, tfill, loadsMean float64) {
	reg := obs.NewWith(0, 1)
	tbl := dramhit.New(dramhit.Config{Slots: size, Layout: table.LayoutBucket, Observe: reg})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(cfg.Seed^0x68656174, int(float64(size)*0.75)) // "heat"
	const batch = 64
	reqs := make([]table.Request, batch)
	for n := 0; n < len(keys); n += batch {
		b := batch
		if len(keys)-n < b {
			b = len(keys) - n
		}
		for i := 0; i < b; i++ {
			reqs[i] = table.Request{Op: table.Put, Key: keys[n+i], Value: 1}
		}
		rem := reqs[:b]
		for len(rem) > 0 {
			nr, _ := h.Submit(rem, nil)
			rem = rem[nr:]
		}
	}
	for {
		if _, done := h.Flush(nil); done {
			break
		}
	}
	tfill = float64(tbl.Len()) / float64(size)
	for _, hm := range reg.Heatmaps() {
		if hm.Source != "dramhit" {
			continue
		}
		hfill = hm.Gauges["fill"]
		for _, d := range hm.Dists {
			if d.Name == "probe_loads" {
				loadsMean = d.Mean
			}
		}
	}
	return hfill, tfill, loadsMean
}
