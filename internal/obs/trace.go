package obs

import (
	"sync/atomic"
	"time"
)

// EventKind labels one step of a sampled request's lifecycle.
type EventKind uint8

// Lifecycle events in pipeline order. A sampled request emits Submit when
// it enters a handle's prefetch queue, Probe each time the drain inspects
// its resident line, Reprobe each time it crosses into a new line (re-
// enqueued behind a fresh prefetch), Combine each time another request
// merges onto it, and Complete when it finishes. Resize events (emitted by
// the growing table, not per-request) share the ring: one event per
// migration phase, with the phase code in Op and progress in Arg.
const (
	EvSubmit EventKind = iota + 1
	EvProbe
	EvReprobe
	EvCombine
	EvComplete
	EvResize
	// EvGovern records a governor decision change: Op carries the mode
	// (0 = pipelined, 1 = direct), Key the packed decision word, Arg the
	// controller epoch that published it.
	EvGovern
	// EvReshard records a shardmap re-sharding window phase (split or
	// merge). Like EvResize, Op carries the Resize* phase code, Key the
	// chunk index (install: total chunks), Arg progress in permille.
	EvReshard
)

// Resize-phase codes carried in Event.Op for EvResize events (the Op field
// is a request opcode for lifecycle events; resize events are not requests,
// so the field is reused for the migration phase).
const (
	// ResizeInstall marks the successor table's installation; Arg is the
	// migration's total chunk count.
	ResizeInstall uint8 = iota
	// ResizeChunk marks one migrated chunk; Key is the chunk index, Arg is
	// completed-chunk progress in permille.
	ResizeChunk
	// ResizeSwap marks the completed swap to the successor generation.
	ResizeSwap
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvSubmit:
		return "submit"
	case EvProbe:
		return "probe"
	case EvReprobe:
		return "reprobe"
	case EvCombine:
		return "combine"
	case EvComplete:
		return "complete"
	case EvResize:
		return "resize"
	case EvGovern:
		return "govern"
	case EvReshard:
		return "reshard"
	}
	return "invalid"
}

// Event is one decoded trace entry.
type Event struct {
	// ID is the request's trace identifier (assigned at submit; all of one
	// request's events share it).
	ID uint64 `json:"id"`
	// Key is the request's key.
	Key uint64 `json:"key"`
	// TS is the event's wall-clock timestamp in nanoseconds.
	TS int64 `json:"ts_ns"`
	// Kind is the lifecycle step.
	Kind EventKind `json:"kind"`
	// Op is the request's operation code (table.Op).
	Op uint8 `json:"op"`
	// Arg carries a per-kind detail: probes so far (Reprobe), chain length
	// (Combine), hit flag (Complete).
	Arg uint32 `json:"arg"`
}

// traceSlot is one ring entry stored as four independently-atomic words so
// writers never take a lock and concurrent scrapes are race-free. A scrape
// that overlaps a wrap can observe one slot with fields from two events
// (each field individually valid); that bounded tearing is the price of a
// lock-free sampled diagnostic and is acceptable there.
type traceSlot struct {
	id   atomic.Uint64
	key  atomic.Uint64
	ts   atomic.Uint64
	meta atomic.Uint64 // kind | op<<8 | arg<<16
}

// TraceRing is the fixed-capacity lifecycle event ring: writers claim slots
// with one atomic fetch-add, memory is bounded at capacity events, and the
// record path allocates nothing.
type TraceRing struct {
	mask  uint64
	pos   atomic.Uint64 // next slot (total events recorded)
	ids   atomic.Uint64 // trace-id allocator
	slots []traceSlot
}

// NewTraceRing creates a ring holding capacity events (rounded up to a
// power of two, minimum 64).
func NewTraceRing(capacity int) *TraceRing {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &TraceRing{mask: uint64(n - 1), slots: make([]traceSlot, n)}
}

// Cap returns the ring capacity in events.
func (t *TraceRing) Cap() int { return len(t.slots) }

// Recorded returns the total number of events recorded (not retained).
func (t *TraceRing) Recorded() uint64 { return t.pos.Load() }

// NextID allocates a fresh nonzero trace identifier.
func (t *TraceRing) NextID() uint64 { return t.ids.Add(1) }

// Record appends one event. Safe for concurrent use; allocation-free.
func (t *TraceRing) Record(id uint64, kind EventKind, op uint8, key uint64, arg uint32) {
	s := &t.slots[(t.pos.Add(1)-1)&t.mask]
	s.id.Store(id)
	s.key.Store(key)
	s.ts.Store(uint64(time.Now().UnixNano()))
	s.meta.Store(uint64(kind) | uint64(op)<<8 | uint64(arg)<<16)
}

// Snapshot decodes the retained events oldest-first. Unwritten slots (ring
// not yet full) are skipped.
func (t *TraceRing) Snapshot() []Event {
	n := uint64(len(t.slots))
	end := t.pos.Load()
	start := uint64(0)
	if end > n {
		start = end - n
	}
	out := make([]Event, 0, end-start)
	for p := start; p < end; p++ {
		s := &t.slots[p&t.mask]
		meta := s.meta.Load()
		if meta == 0 {
			continue
		}
		out = append(out, Event{
			ID:   s.id.Load(),
			Key:  s.key.Load(),
			TS:   int64(s.ts.Load()),
			Kind: EventKind(meta & 0xff),
			Op:   uint8(meta >> 8),
			Arg:  uint32(meta >> 16),
		})
	}
	return out
}
