package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Handler returns the observability HTTP surface for r:
//
//	/metrics        Prometheus text exposition format
//	/trace          sampled request-lifecycle events as JSON
//	/debug/vars     expvar (includes the registry snapshot as dramhit_obs)
//	/debug/pprof/   the standard Go profiler endpoints
//	/               a short index of the above
func Handler(r *Registry) http.Handler {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, r)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var evs []Event
		if tr := r.Trace(); tr != nil {
			evs = tr.Snapshot()
		}
		if evs == nil {
			evs = []Event{}
		}
		json.NewEncoder(w).Encode(evs)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "dramhit observability: /metrics /trace /debug/vars /debug/pprof/")
	})
	return mux
}

// Serve starts the observability endpoint on addr (e.g. ":8090") and
// returns the running server; Close it to stop. The listener is bound
// synchronously so a caller that returns without error is scrapeable.
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Addr reflects the bound listener (resolves ":0" and bare-port forms)
	// so callers can print a scrapeable URL.
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Handler(r)}
	go srv.Serve(ln)
	return srv, nil
}

// expvar.Publish panics on duplicate names, so the registry snapshot is
// published once under a package-level indirection that always reflects the
// most recently served registry.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("dramhit_obs", expvar.Func(func() any {
			reg := expvarReg.Load()
			if reg == nil {
				return nil
			}
			return reg.TakeSnapshot()
		}))
	})
}

// promBounds are the cumulative `le` bucket bounds of the latency
// histogram's Prometheus rendering. Each is of the form 2^k-1, aligning
// exactly with the log-bucket octave boundaries, so the cumulative counts
// are exact (no bucket is split by a bound).
var promBounds = func() []uint64 {
	var b []uint64
	for k := 6; k <= 34; k += 2 { // 63ns .. ~17s
		b = append(b, uint64(1)<<k-1)
	}
	return b
}()

// WriteMetrics renders r in the Prometheus text exposition format.
func WriteMetrics(w io.Writer, r *Registry) {
	workers := r.Workers()

	for i := 0; i < NumCounters; i++ {
		any := false
		for _, wk := range workers {
			if wk.Counter(i) != 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		name := "dramhit_" + CounterNames[i] + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		for _, wk := range workers {
			if v := wk.Counter(i); v != 0 {
				fmt.Fprintf(w, "%s{worker=%q} %d\n", name, wk.Name(), v)
			}
		}
	}

	for g := 0; g < NumGauges; g++ {
		any := false
		for _, wk := range workers {
			if wk.Gauge(g) != 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		name := "dramhit_" + GaugeNames[g]
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		for _, wk := range workers {
			fmt.Fprintf(w, "%s{worker=%q} %d\n", name, wk.Name(), wk.Gauge(g))
		}
	}

	// Latency histograms, one series per worker with recorded samples.
	headed := false
	for _, wk := range workers {
		n := wk.Lat.Count()
		if n == 0 {
			continue
		}
		if !headed {
			fmt.Fprintf(w, "# TYPE dramhit_latency_ns histogram\n")
			headed = true
		}
		var cum uint64
		for _, le := range promBounds {
			cum = wk.Lat.CountAtOrBelow(le)
			fmt.Fprintf(w, "dramhit_latency_ns_bucket{worker=%q,le=%q} %d\n",
				wk.Name(), fmt.Sprintf("%d", le), cum)
		}
		fmt.Fprintf(w, "dramhit_latency_ns_bucket{worker=%q,le=\"+Inf\"} %d\n", wk.Name(), n)
		fmt.Fprintf(w, "dramhit_latency_ns_sum{worker=%q} %d\n", wk.Name(), wk.Lat.Sum())
		fmt.Fprintf(w, "dramhit_latency_ns_count{worker=%q} %d\n", wk.Name(), n)
	}

	// Pull sources render as one labelled gauge family.
	srcs := r.Sources()
	if len(srcs) > 0 {
		fmt.Fprintf(w, "# TYPE dramhit_pull gauge\n")
		for _, src := range srcs {
			m := src.Collect()
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "dramhit_pull{source=%q,name=%q} %v\n",
					src.Name, sanitizeLabel(k), m[k])
			}
		}
	}

	if tr := r.Trace(); tr != nil {
		fmt.Fprintf(w, "# TYPE dramhit_trace_events_total counter\n")
		fmt.Fprintf(w, "dramhit_trace_events_total %d\n", tr.Recorded())
	}
	fmt.Fprintf(w, "# TYPE dramhit_uptime_seconds gauge\n")
	fmt.Fprintf(w, "dramhit_uptime_seconds %f\n", r.TakeSnapshot().UptimeSeconds)
}

func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}
