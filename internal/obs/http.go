package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dramhit/internal/table"
)

// parseN parses the /trace ?n= parameter; 0 means "keep all".
func parseN(s string) int {
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// FilterEvents applies the /trace query filters: op selects events by
// opcode name ("get", "put", "upsert", "delete" — lifecycle events only) or
// by event-kind name ("resize", "reshard", "govern", "submit", ...); n > 0
// keeps only the last n events after filtering. The input slice is not
// modified; an empty result is a non-nil empty slice.
func FilterEvents(evs []Event, op string, n int) []Event {
	out := evs
	if op != "" {
		out = make([]Event, 0, len(evs))
		for _, ev := range evs {
			lifecycle := ev.Kind >= EvSubmit && ev.Kind <= EvComplete
			if lifecycle && table.Op(ev.Op).String() == op {
				out = append(out, ev)
				continue
			}
			if ev.Kind.String() == op {
				out = append(out, ev)
			}
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	if out == nil {
		out = []Event{}
	}
	return out
}

// Handler returns the observability HTTP surface for r:
//
//	/metrics        Prometheus text exposition format
//	/trace          sampled request-lifecycle events as JSON; ?n= keeps the
//	                last N events, ?op= filters by opcode ("get", "put",
//	                "upsert", "delete") or event kind ("resize", "reshard",
//	                "govern"), ?format=chrome renders Chrome trace-event
//	                JSON for chrome://tracing / Perfetto
//	/heatmap        structural layout scrape (fill regions, probe-depth /
//	                stash-chain / segment-utilization distributions) as
//	                JSON; ?source= selects one collector
//	/debug/vars     expvar (includes the registry snapshot as dramhit_obs)
//	/debug/pprof/   the standard Go profiler endpoints
//	/               a short index of the above
func Handler(r *Registry) http.Handler {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, r)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		var evs []Event
		if tr := r.Trace(); tr != nil {
			evs = tr.Snapshot()
		}
		evs = FilterEvents(evs, req.URL.Query().Get("op"), parseN(req.URL.Query().Get("n")))
		if req.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			WriteChromeTrace(w, evs)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(evs)
	})
	mux.HandleFunc("/heatmap", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		maps := r.Heatmaps()
		if want := req.URL.Query().Get("source"); want != "" {
			kept := maps[:0]
			for _, h := range maps {
				if h.Source == want {
					kept = append(kept, h)
				}
			}
			maps = kept
		}
		if maps == nil {
			maps = []Heatmap{}
		}
		json.NewEncoder(w).Encode(struct {
			UptimeSeconds float64   `json:"uptime_seconds"`
			Heatmaps      []Heatmap `json:"heatmaps"`
		}{time.Since(r.start).Seconds(), maps})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "dramhit observability: /metrics /trace /heatmap /debug/vars /debug/pprof/")
	})
	return mux
}

// Serve starts the observability endpoint on addr (e.g. ":8090") and
// returns the running server; Close it to stop. The listener is bound
// synchronously so a caller that returns without error is scrapeable.
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Addr reflects the bound listener (resolves ":0" and bare-port forms)
	// so callers can print a scrapeable URL.
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Handler(r)}
	go srv.Serve(ln)
	return srv, nil
}

// expvar.Publish panics on duplicate names, so the registry snapshot is
// published once under a package-level indirection that always reflects the
// most recently served registry.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("dramhit_obs", expvar.Func(func() any {
			reg := expvarReg.Load()
			if reg == nil {
				return nil
			}
			return reg.TakeSnapshot()
		}))
	})
}

// promBounds are the cumulative `le` bucket bounds of the latency
// histogram's Prometheus rendering. Each is of the form 2^k-1, aligning
// exactly with the log-bucket octave boundaries, so the cumulative counts
// are exact (no bucket is split by a bound).
var promBounds = func() []uint64 {
	var b []uint64
	for k := 6; k <= 34; k += 2 { // 63ns .. ~17s
		b = append(b, uint64(1)<<k-1)
	}
	return b
}()

// CounterHelp documents each counter family for the /metrics # HELP line.
var CounterHelp = [NumCounters]string{
	"Completed Get operations",
	"Completed Put operations",
	"Completed Upsert operations",
	"Completed Delete operations",
	"Gets that found their key and Deletes that removed one",
	"Puts/Upserts rejected because the table was full",
	"Probe line crossings re-enqueued behind a fresh prefetch",
	"Cache lines touched by probes",
	"Line visits whose key lanes were consulted",
	"Line visits rejected from the packed tag word alone",
	"Tag-admitted line visits confirmed by the kernel",
	"Tag-admitted line visits rejected by the kernel (false positives)",
	"Upserts folded onto an in-flight upsert to the same key",
	"Gets answered by piggybacking on an in-flight get",
	"Gets answered by store-to-load forwarding from an in-flight write",
	"Atomic RMW/store attempts against slot words",
	"Backpressure parks of combine leaders at the queue head",
	"Delegated messages sent on the partitioned write path",
	"Slots inspected by synchronous probes",
	"Chain-node traversals",
}

// GaugeHelp documents each gauge family for the /metrics # HELP line.
var GaugeHelp = [NumGauges]string{
	"Prefetch-window occupancy at the last publish",
	"Maximum prefetch-window occupancy observed",
	"Delegation-queue backlog at the last publish",
	"Longest combine chain resolved by one leader",
}

// writeHistogram renders one histogram series with the shared
// octave-aligned cumulative bounds; labels is the rendered label set
// (without braces) shared by every line of the series.
func writeHistogram(w io.Writer, name string, h *Histogram, labels string) {
	n := h.Count()
	var cum uint64
	for _, le := range promBounds {
		cum = h.CountAtOrBelow(le)
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n", name, labels, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, n)
	fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, h.Sum())
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, n)
}

// WriteMetrics renders r in the Prometheus text exposition format. Every
// family carries # HELP and # TYPE lines (the metrics format test parses
// the output under internal/promtext's strict grammar).
func WriteMetrics(w io.Writer, r *Registry) {
	workers := r.Workers()

	for i := 0; i < NumCounters; i++ {
		any := false
		for _, wk := range workers {
			if wk.Counter(i) != 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		name := "dramhit_" + CounterNames[i] + "_total"
		fmt.Fprintf(w, "# HELP %s %s\n", name, CounterHelp[i])
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		for _, wk := range workers {
			if v := wk.Counter(i); v != 0 {
				fmt.Fprintf(w, "%s{worker=%q} %d\n", name, wk.Name(), v)
			}
		}
	}

	for g := 0; g < NumGauges; g++ {
		any := false
		for _, wk := range workers {
			if wk.Gauge(g) != 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		name := "dramhit_" + GaugeNames[g]
		fmt.Fprintf(w, "# HELP %s %s\n", name, GaugeHelp[g])
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		for _, wk := range workers {
			fmt.Fprintf(w, "%s{worker=%q} %d\n", name, wk.Name(), wk.Gauge(g))
		}
	}

	// Latency histograms, one series per worker with recorded samples.
	headed := false
	for _, wk := range workers {
		if wk.Lat.Count() == 0 {
			continue
		}
		if !headed {
			fmt.Fprintf(w, "# HELP dramhit_latency_ns Operation latency as recorded by the active latency sink\n")
			fmt.Fprintf(w, "# TYPE dramhit_latency_ns histogram\n")
			headed = true
		}
		writeHistogram(w, "dramhit_latency_ns", &wk.Lat,
			fmt.Sprintf("worker=%q", wk.Name()))
	}

	// Per-op-class latency: one series per (worker, op class) with samples.
	headed = false
	for _, wk := range workers {
		for c := 0; c < NumOpClasses; c++ {
			if wk.Op[c].Count() == 0 {
				continue
			}
			if !headed {
				fmt.Fprintf(w, "# HELP dramhit_op_latency_ns Per-op-class operation latency (op label: kind_outcome)\n")
				fmt.Fprintf(w, "# TYPE dramhit_op_latency_ns histogram\n")
				headed = true
			}
			writeHistogram(w, "dramhit_op_latency_ns", &wk.Op[c],
				fmt.Sprintf("worker=%q,op=%q", wk.Name(), OpClassNames[c]))
		}
	}

	// Hot keys: the merged Space-Saving ranking, one sample per rank.
	if hot := r.TopKeys(16); len(hot) > 0 {
		fmt.Fprintf(w, "# HELP dramhit_hotkey_count Estimated occurrence count of the rank-N hottest key (Space-Saving sketch; overestimates by at most the err label)\n")
		fmt.Fprintf(w, "# TYPE dramhit_hotkey_count gauge\n")
		for rank, it := range hot {
			fmt.Fprintf(w, "dramhit_hotkey_count{rank=\"%d\",key=\"%d\",err=\"%d\"} %d\n",
				rank+1, it.Key, it.Err, it.Count)
		}
	}

	// Pull sources render as one labelled gauge family.
	srcs := r.Sources()
	if len(srcs) > 0 {
		fmt.Fprintf(w, "# HELP dramhit_pull Pull-collected table-level metrics (fill, live entries, filter stats) by source\n")
		fmt.Fprintf(w, "# TYPE dramhit_pull gauge\n")
		for _, src := range srcs {
			m := src.Collect()
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "dramhit_pull{source=%q,name=%q} %v\n",
					src.Name, sanitizeLabel(k), m[k])
			}
		}
	}

	if tr := r.Trace(); tr != nil {
		fmt.Fprintf(w, "# HELP dramhit_trace_events_total Lifecycle trace events recorded since start\n")
		fmt.Fprintf(w, "# TYPE dramhit_trace_events_total counter\n")
		fmt.Fprintf(w, "dramhit_trace_events_total %d\n", tr.Recorded())
	}
	fmt.Fprintf(w, "# HELP dramhit_uptime_seconds Seconds since the registry was created\n")
	fmt.Fprintf(w, "# TYPE dramhit_uptime_seconds gauge\n")
	fmt.Fprintf(w, "dramhit_uptime_seconds %f\n", time.Since(r.start).Seconds())
}

func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}
