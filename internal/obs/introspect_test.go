package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dramhit/internal/promtext"
	"dramhit/internal/table"
)

// populatedRegistry builds a registry exercising every metrics family:
// counters, gauges, aggregate and per-op latency, hot keys, pull sources,
// and the trace ring.
func populatedRegistry() *Registry {
	r := NewWith(256, 1)
	r.EnableHotKeys(64)
	r.EnableOpLatency()
	for _, name := range []string{"w0", "w-1"} {
		w := r.Worker(name)
		for i := 0; i < NumCounters; i++ {
			w.Add(i, uint64(i+1))
		}
		for g := 0; g < NumGauges; g++ {
			w.SetGauge(g, uint64(g+7))
		}
		for i := 0; i < 100; i++ {
			w.Lat.Record(uint64(100 + i))
			w.Op[OpGetHit].Record(uint64(50 + i))
			w.Op[OpUpsert].Record(uint64(500 + i))
			w.Hot.Offer(uint64(i % 10))
		}
	}
	r.AddSource("tbl", func() map[string]float64 {
		return map[string]float64{"fill": 0.75, "live entries": 123}
	})
	tr := r.Trace()
	id := tr.NextID()
	tr.Record(id, EvSubmit, uint8(table.Get), 42, 0)
	tr.Record(id, EvProbe, uint8(table.Get), 42, 1)
	tr.Record(id, EvComplete, uint8(table.Get), 42, 1)
	tr.Record(7, EvResize, ResizeInstall, 8, 0)
	tr.Record(7, EvResize, ResizeChunk, 3, 500)
	tr.Record(7, EvResize, ResizeSwap, 0, 1000)
	tr.Record(9, EvReshard, ResizeInstall, 4, 0)
	tr.Record(0, EvGovern, 1, 0xbeef, 3)
	return r
}

// TestMetricsStrictFormat: every family in /metrics carries # HELP and
// # TYPE and the whole document parses under the strict promtext grammar —
// the satellite guard against scrape drift as new series land.
func TestMetricsStrictFormat(t *testing.T) {
	var buf bytes.Buffer
	WriteMetrics(&buf, populatedRegistry())
	fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse failed: %v\n%s", err, buf.String())
	}
	for _, f := range fams {
		if f.Type == "" {
			t.Errorf("family %q has no # TYPE", f.Name)
		}
		if f.Help == "" {
			t.Errorf("family %q has no # HELP", f.Name)
		}
		if len(f.Samples) == 0 {
			t.Errorf("family %q declared without samples", f.Name)
		}
	}
	for _, want := range []string{
		"dramhit_gets_total", "dramhit_window_occupancy",
		"dramhit_latency_ns", "dramhit_op_latency_ns",
		"dramhit_hotkey_count", "dramhit_pull",
		"dramhit_trace_events_total", "dramhit_uptime_seconds",
	} {
		if promtext.Find(fams, want) == nil {
			t.Errorf("family %q missing from /metrics", want)
		}
	}
	// Per-op series carry the op label and consistent bucket/count sums.
	oplat := promtext.Find(fams, "dramhit_op_latency_ns")
	ops := map[string]bool{}
	for _, s := range oplat.Samples {
		ops[s.Labels["op"]] = true
	}
	if !ops["get_hit"] || !ops["upsert"] {
		t.Errorf("op label values = %v", ops)
	}
}

// TestTraceFilters: ?op= and ?n= narrow the ring dump.
func TestTraceFilters(t *testing.T) {
	r := populatedRegistry()
	evs := r.Trace().Snapshot()

	gets := FilterEvents(evs, "get", 0)
	if len(gets) != 3 {
		t.Fatalf("op=get kept %d events, want 3", len(gets))
	}
	for _, ev := range gets {
		if table.Op(ev.Op) != table.Get {
			t.Fatalf("op=get kept %+v", ev)
		}
	}
	if n := len(FilterEvents(evs, "resize", 0)); n != 3 {
		t.Fatalf("op=resize kept %d, want 3", n)
	}
	if n := len(FilterEvents(evs, "reshard", 0)); n != 1 {
		t.Fatalf("op=reshard kept %d, want 1", n)
	}
	if n := len(FilterEvents(evs, "govern", 0)); n != 1 {
		t.Fatalf("op=govern kept %d, want 1", n)
	}
	last2 := FilterEvents(evs, "", 2)
	if len(last2) != 2 || last2[1].Kind != EvGovern {
		t.Fatalf("n=2 kept %+v", last2)
	}
	if got := FilterEvents(evs, "get", 1); len(got) != 1 || got[0].Kind != EvComplete {
		t.Fatalf("op=get&n=1 kept %+v", got)
	}
	if got := FilterEvents(nil, "", 0); got == nil || len(got) != 0 {
		t.Fatalf("empty filter result = %#v", got)
	}
}

// TestChromeTrace: the flight-recorder export is valid Chrome trace-event
// JSON with lifecycle/migration spans and governor instants.
func TestChromeTrace(t *testing.T) {
	r := populatedRegistry()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Trace().Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			ID   string         `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	phases := map[string][]string{}
	for _, ev := range doc.TraceEvents {
		if ev.TS < 0 {
			t.Fatalf("negative rebased timestamp: %+v", ev)
		}
		phases[ev.Cat+"/"+ev.Name] = append(phases[ev.Cat+"/"+ev.Name], ev.Ph)
	}
	if got := strings.Join(phases["request/get"], ""); got != "bne" {
		t.Fatalf("get lifecycle phases = %q, want bne", got)
	}
	if got := strings.Join(phases["migration/resize"], ""); got != "bne" {
		t.Fatalf("resize span phases = %q, want bne", got)
	}
	if got := strings.Join(phases["migration/reshard"], ""); got != "b" {
		t.Fatalf("reshard span phases = %q, want b", got)
	}
	if got := strings.Join(phases["governor/govern"], ""); got != "i" {
		t.Fatalf("governor phases = %q, want i", got)
	}
}

// TestHeatmapRegistry: collectors register last-wins, results carry the
// source name, and DistBuilder summarizes exactly.
func TestHeatmapRegistry(t *testing.T) {
	r := NewWith(0, 1)
	r.AddHeatmapSource("t", func() Heatmap {
		return Heatmap{Kind: "flat", Regions: []float64{0.1}}
	})
	r.AddHeatmapSource("t", func() Heatmap {
		b := DistBuilder{}
		b.Add(1)
		b.Add(1)
		b.Add(3)
		return Heatmap{
			Kind:    "flat",
			Regions: []float64{0.5, 0.25},
			Dists:   []HeatDist{b.Build("probe_depth")},
			Gauges:  map[string]float64{"fill": 0.75},
		}
	})
	maps := r.Heatmaps()
	if len(maps) != 1 {
		t.Fatalf("heatmaps = %d, want 1 (last-wins)", len(maps))
	}
	h := maps[0]
	if h.Source != "t" || h.Kind != "flat" || len(h.Regions) != 2 {
		t.Fatalf("heatmap = %+v", h)
	}
	d := h.Dists[0]
	if d.Count != 3 || d.Max != 3 || d.Mean != (1+1+3)/3.0 {
		t.Fatalf("dist = %+v", d)
	}
	if len(d.Points) != 2 || d.Points[0].Value != 1 || d.Points[0].Count != 2 {
		t.Fatalf("points = %+v", d.Points)
	}
	if _, err := json.Marshal(h); err != nil {
		t.Fatalf("heatmap not JSON-encodable: %v", err)
	}
}
