package obs

import (
	"sync"
	"testing"
)

func TestTraceRingRecordSnapshot(t *testing.T) {
	r := NewTraceRing(64)
	id := r.NextID()
	if id == 0 {
		t.Fatal("NextID returned zero")
	}
	r.Record(id, EvSubmit, 2, 0xdead, 0)
	r.Record(id, EvReprobe, 2, 0xdead, 3)
	r.Record(id, EvComplete, 2, 0xdead, 1)

	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	kinds := []EventKind{EvSubmit, EvReprobe, EvComplete}
	args := []uint32{0, 3, 1}
	for i, e := range evs {
		if e.ID != id || e.Key != 0xdead || e.Op != 2 {
			t.Fatalf("event %d: %+v", i, e)
		}
		if e.Kind != kinds[i] || e.Arg != args[i] {
			t.Fatalf("event %d: kind %v arg %d, want %v %d", i, e.Kind, e.Arg, kinds[i], args[i])
		}
		if e.TS == 0 {
			t.Fatalf("event %d: zero timestamp", i)
		}
	}
}

func TestTraceRingWrap(t *testing.T) {
	r := NewTraceRing(64)
	for i := 0; i < 200; i++ {
		r.Record(uint64(i+1), EvSubmit, 0, uint64(i), 0)
	}
	if r.Recorded() != 200 {
		t.Fatalf("Recorded = %d, want 200", r.Recorded())
	}
	evs := r.Snapshot()
	if len(evs) != r.Cap() {
		t.Fatalf("retained %d, want cap %d", len(evs), r.Cap())
	}
	// Oldest retained event is number 200-cap+1; order is oldest-first.
	first := uint64(200 - r.Cap() + 1)
	for i, e := range evs {
		if e.ID != first+uint64(i) {
			t.Fatalf("event %d: id %d, want %d", i, e.ID, first+uint64(i))
		}
	}
}

func TestTraceRingMetaPacking(t *testing.T) {
	r := NewTraceRing(64)
	r.Record(9, EvCombine, 0xAB, 7, 0xC0FFEE)
	e := r.Snapshot()[0]
	if e.Kind != EvCombine || e.Op != 0xAB || e.Arg != 0xC0FFEE {
		t.Fatalf("meta round-trip: %+v", e)
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(r.NextID(), EvProbe, uint8(g), uint64(i), 0)
			}
		}(g)
	}
	// Concurrent scrapes must not race or panic.
	for i := 0; i < 20; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	if r.Recorded() != 8000 {
		t.Fatalf("Recorded = %d, want 8000", r.Recorded())
	}
}

func TestTraceRingRecordZeroAlloc(t *testing.T) {
	r := NewTraceRing(64)
	if n := testing.AllocsPerRun(1000, func() {
		r.Record(1, EvProbe, 0, 42, 0)
	}); n != 0 {
		t.Fatalf("Record allocates %v per run, want 0", n)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvSubmit: "submit", EvProbe: "probe", EvReprobe: "reprobe",
		EvCombine: "combine", EvComplete: "complete", EventKind(99): "invalid",
	} {
		if k.String() != want {
			t.Fatalf("EventKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
