package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"dramhit/internal/table"
)

// Chrome trace-event export: the flight recorder renders the trace ring in
// the Trace Event Format that chrome://tracing and Perfetto open directly.
// Request lifecycles become async spans (ph "b"/"n"/"e" correlated by trace
// id), resize and reshard windows become async spans over their migration
// id, and governor decisions become instant events.

// chromeEvent is one entry of the traceEvents array. Fields follow the
// Trace Event Format; Scope ("s") is only set for instant events.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// resizePhaseName maps the ResizeInstall/Chunk/Swap codes carried in
// Event.Op of EvResize/EvReshard events to span phases.
func resizePhase(op uint8) string {
	switch op {
	case ResizeInstall:
		return "b"
	case ResizeSwap:
		return "e"
	default:
		return "n"
	}
}

// WriteChromeTrace renders events as a Chrome trace-event JSON document.
// Timestamps are rebased to the earliest event so the trace opens at t=0.
func WriteChromeTrace(w io.Writer, evs []Event) error {
	var t0 int64
	for i, ev := range evs {
		if i == 0 || ev.TS < t0 {
			t0 = ev.TS
		}
	}
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, ev := range evs {
		ce := chromeEvent{
			TS:  float64(ev.TS-t0) / 1e3,
			PID: 1,
			TID: 1,
			ID:  fmt.Sprintf("%#x", ev.ID),
		}
		switch ev.Kind {
		case EvSubmit, EvProbe, EvReprobe, EvCombine, EvComplete:
			ce.Cat = "request"
			ce.Name = table.Op(ev.Op).String()
			ce.Args = map[string]any{
				"key":  fmt.Sprintf("%#x", ev.Key),
				"step": ev.Kind.String(),
				"arg":  ev.Arg,
			}
			switch ev.Kind {
			case EvSubmit:
				ce.Ph = "b"
			case EvComplete:
				ce.Ph = "e"
			default:
				ce.Ph = "n"
			}
		case EvResize, EvReshard:
			ce.Cat = "migration"
			ce.Name = ev.Kind.String()
			ce.Ph = resizePhase(ev.Op)
			ce.Args = map[string]any{"chunk": ev.Key, "progress_permille": ev.Arg}
		case EvGovern:
			ce.Cat = "governor"
			ce.Name = "govern"
			ce.Ph = "i"
			ce.Scope = "p"
			ce.ID = ""
			ce.Args = map[string]any{
				"decision": fmt.Sprintf("%#x", ev.Key),
				"mode":     ev.Op,
				"epoch":    ev.Arg,
			}
		default:
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
