package obs

import "sort"

// Heatmap is one structural scrape of a table's physical layout: where the
// entries sit (Regions), how far from home they are (Dists), and scalar
// context (Gauges). Heatmaps are pull-only — collectors walk the slot
// arrays, arena segments or shard directories at scrape time and have no
// hot-path presence at all, mirroring Source.
type Heatmap struct {
	// Source is the collector's registry name (stamped by Registry.Heatmaps).
	Source string `json:"source"`
	// Kind tags the layout the collector walked: "flat" (open-addressing
	// slot array), "bucket" (one-line buckets + stash), "shards" (shard
	// directory), "arena" (log-structured segments).
	Kind string `json:"kind"`
	// Regions is spatial occupancy: the index split into equal consecutive
	// ranges, each cell the live fraction of that range in [0, 1].
	Regions []float64 `json:"region_fill,omitempty"`
	// Dists are structural distributions (probe depth, probe lines, stash
	// chain length, segment utilization) keyed by DistName.
	Dists []HeatDist `json:"dists,omitempty"`
	// Gauges carry scalar context (fill, live, tombstones, ...).
	Gauges map[string]float64 `json:"gauges,omitempty"`
}

// HeatDist is one named distribution of a heatmap: exact (value, count)
// points in ascending value order, plus summary moments.
type HeatDist struct {
	Name   string       `json:"name"`
	Points []HeatBucket `json:"points,omitempty"`
	Count  uint64       `json:"count"`
	Mean   float64      `json:"mean"`
	Max    uint64       `json:"max"`
}

// HeatBucket is one exact point of a HeatDist.
type HeatBucket struct {
	Value uint64 `json:"value"`
	Count uint64 `json:"count"`
}

// DistBuilder accumulates exact value counts during a heatmap walk.
// Collectors run at scrape time, so map allocation is fine here.
type DistBuilder map[uint64]uint64

// Add counts one observation of v.
func (b DistBuilder) Add(v uint64) { b[v]++ }

// AddN counts n observations of v.
func (b DistBuilder) AddN(v, n uint64) { b[v] += n }

// Build freezes the builder into a named HeatDist.
func (b DistBuilder) Build(name string) HeatDist {
	d := HeatDist{Name: name}
	vals := make([]uint64, 0, len(b))
	for v := range b {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var sum float64
	for _, v := range vals {
		n := b[v]
		d.Points = append(d.Points, HeatBucket{Value: v, Count: n})
		d.Count += n
		sum += float64(v) * float64(n)
		d.Max = v
	}
	if d.Count > 0 {
		d.Mean = sum / float64(d.Count)
	}
	return d
}

// heatSource is a registered heatmap collector.
type heatSource struct {
	name    string
	collect func() Heatmap
}

// AddHeatmapSource registers a heatmap collector under name. Like
// AddSource, the last registration under a name wins, so rebuilding a table
// against a shared registry does not accumulate stale collectors.
func (r *Registry) AddHeatmapSource(name string, collect func() Heatmap) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.heat {
		if r.heat[i].name == name {
			r.heat[i].collect = collect
			return
		}
	}
	r.heat = append(r.heat, heatSource{name: name, collect: collect})
}

// Heatmaps invokes every registered collector and returns the results with
// their Source names stamped.
func (r *Registry) Heatmaps() []Heatmap {
	r.mu.Lock()
	srcs := append([]heatSource(nil), r.heat...)
	r.mu.Unlock()
	out := make([]Heatmap, 0, len(srcs))
	for _, s := range srcs {
		h := s.collect()
		h.Source = s.name
		out = append(out, h)
	}
	return out
}
