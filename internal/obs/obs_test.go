package obs

import (
	"sync"
	"testing"
	"unsafe"
)

func TestWorkerCountersAndGauges(t *testing.T) {
	r := New()
	w := r.Worker("w0")
	w.Inc(CGets)
	w.Add(CGets, 4)
	w.Store(CPuts, 100)
	if w.Counter(CGets) != 5 || w.Counter(CPuts) != 100 {
		t.Fatalf("counters: gets=%d puts=%d", w.Counter(CGets), w.Counter(CPuts))
	}
	w.SetGauge(GWindowOcc, 12)
	w.MaxGauge(GWindowMax, 7)
	w.MaxGauge(GWindowMax, 3) // lower: no change
	if w.Gauge(GWindowOcc) != 12 || w.Gauge(GWindowMax) != 7 {
		t.Fatalf("gauges: occ=%d max=%d", w.Gauge(GWindowOcc), w.Gauge(GWindowMax))
	}
}

func TestWorkerPadding(t *testing.T) {
	// The counter array must start at least a cache line past the struct
	// start, and the histogram at least a line past the gauges, so two
	// workers allocated adjacently never share hot lines.
	var w Worker
	base := uintptr(unsafe.Pointer(&w))
	if off := uintptr(unsafe.Pointer(&w.c[0])) - base; off < 64 {
		t.Fatalf("counters start at offset %d, want >= 64", off)
	}
	gaugesEnd := uintptr(unsafe.Pointer(&w.g[NumGauges-1])) + 8 - base
	if off := uintptr(unsafe.Pointer(&w.Lat)) - base; off < gaugesEnd+64 {
		t.Fatalf("histogram at offset %d, want >= %d", off, gaugesEnd+64)
	}
}

func TestShardedCounter(t *testing.T) {
	c := NewShardedCounter(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(uint64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if c.Total() != 8000 {
		t.Fatalf("Total = %d, want 8000", c.Total())
	}
	c.Add(3, 42)
	if c.Total() != 8042 {
		t.Fatalf("Total = %d, want 8042", c.Total())
	}
}

func TestShardedCounterZeroAlloc(t *testing.T) {
	c := NewShardedCounter(8)
	if n := testing.AllocsPerRun(1000, func() { c.Inc(7) }); n != 0 {
		t.Fatalf("Inc allocates %v per run, want 0", n)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewWith(128, 4)
	w1 := r.Worker("a")
	w2 := r.Worker("b")
	w1.Add(CGets, 10)
	w2.Add(CGets, 5)
	w1.Lat.Record(100)
	w2.Lat.Record(200)
	r.AddSource("table", func() map[string]float64 {
		return map[string]float64{"fill": 0.5}
	})
	r.Trace().Record(r.Trace().NextID(), EvSubmit, 0, 1, 0)

	s := r.TakeSnapshot()
	if s.Totals["gets"] != 15 {
		t.Fatalf("totals gets = %d, want 15", s.Totals["gets"])
	}
	if len(s.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(s.Workers))
	}
	if s.Latency.Count != 2 {
		t.Fatalf("merged latency count = %d, want 2", s.Latency.Count)
	}
	if s.Sources["table"]["fill"] != 0.5 {
		t.Fatalf("source fill = %v", s.Sources["table"]["fill"])
	}
	if s.TraceEvents != 1 {
		t.Fatalf("trace events = %d, want 1", s.TraceEvents)
	}
	if s.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", s.UptimeSeconds)
	}
}

func TestRegistryTraceDisabled(t *testing.T) {
	r := NewWith(0, 1)
	if r.Trace() != nil {
		t.Fatal("traceCap 0 should disable the ring")
	}
	if r.TraceSampleN() != 1 {
		t.Fatalf("sampleN = %d, want 1", r.TraceSampleN())
	}
	// Snapshot with no trace must not panic.
	if s := r.TakeSnapshot(); s.TraceEvents != 0 {
		t.Fatalf("trace events = %d", s.TraceEvents)
	}
}

func TestWorkerHotOpsZeroAlloc(t *testing.T) {
	r := New()
	w := r.Worker("hot")
	if n := testing.AllocsPerRun(1000, func() {
		w.Inc(CGets)
		w.Store(CPuts, 7)
		w.SetGauge(GWindowOcc, 3)
		w.MaxGauge(GWindowMax, 9)
		w.Lat.Record(55)
	}); n != 0 {
		t.Fatalf("worker hot ops allocate %v per run, want 0", n)
	}
}
