package obs

import (
	"math/rand"
	"testing"

	"dramhit/internal/ycsb"
)

// zipfKeys draws n keys from the YCSB zipfian request distribution over
// records keys at the given theta.
func zipfKeys(n int, records uint64, theta float64, seed int64) []uint64 {
	g := ycsb.NewGeneratorTheta(ycsb.C, records, seed, theta)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = g.Next().Key
	}
	return keys
}

// exactTopK returns the true top-k keys of the stream.
func exactTopK(keys []uint64, k int) map[uint64]bool {
	counts := map[uint64]uint64{}
	for _, key := range keys {
		counts[key]++
	}
	top := map[uint64]bool{}
	for len(top) < k && len(top) < len(counts) {
		var best uint64
		var bestN uint64
		for key, n := range counts {
			if !top[key] && n > bestN {
				best, bestN = key, n
			}
		}
		top[best] = true
	}
	return top
}

func recallAt(t *testing.T, items []TopKItem, truth map[uint64]bool, k int) float64 {
	t.Helper()
	if len(items) > k {
		items = items[:k]
	}
	hit := 0
	for _, it := range items {
		if truth[it.Key] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// TestTopKExact: with fewer distinct keys than the budget the sketch is an
// exact counter (no evictions, zero error bounds).
func TestTopKExact(t *testing.T) {
	tk := NewTopK(64)
	want := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Intn(50))
		tk.Offer(k)
		want[k]++
	}
	if tk.Count() != 10000 {
		t.Fatalf("Count = %d", tk.Count())
	}
	got := tk.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("monitored %d keys, want %d", len(got), len(want))
	}
	for _, it := range got {
		if it.Err != 0 {
			t.Fatalf("key %d has err %d without evictions", it.Key, it.Err)
		}
		if want[it.Key] != it.Count {
			t.Fatalf("key %d count = %d, want %d", it.Key, it.Count, want[it.Key])
		}
	}
}

// TestTopKRecallZipf: the acceptance property — recall ≥ 0.9 for K=16
// against exact counts on zipfian streams at θ ∈ {0.9, 0.99}.
func TestTopKRecallZipf(t *testing.T) {
	const (
		records = 100_000
		ops     = 400_000
		k       = 16
	)
	for _, theta := range []float64{0.9, 0.99} {
		keys := zipfKeys(ops, records, theta, 42)
		truth := exactTopK(keys, k)
		tk := NewTopK(256)
		for _, key := range keys {
			tk.Offer(key)
		}
		if r := recallAt(t, tk.Snapshot(), truth, k); r < 0.9 {
			t.Errorf("theta=%v: recall@%d = %.2f, want >= 0.9", theta, k, r)
		}
	}
}

// TestTopKErrorBound: under eviction churn the Space-Saving invariant holds
// for every monitored key: Count-Err ≤ true ≤ Count.
func TestTopKErrorBound(t *testing.T) {
	keys := zipfKeys(200_000, 50_000, 0.99, 7)
	truth := map[uint64]uint64{}
	tk := NewTopK(128)
	for _, key := range keys {
		tk.Offer(key)
		truth[key]++
	}
	for _, it := range tk.Snapshot() {
		exact := truth[it.Key]
		if it.Count < exact {
			t.Fatalf("key %d: count %d underestimates true %d", it.Key, it.Count, exact)
		}
		if it.Count-it.Err > exact {
			t.Fatalf("key %d: count-err %d exceeds true %d", it.Key, it.Count-it.Err, exact)
		}
	}
}

// TestTopKMergeShards: sharding a stream round-robin over 4 sketches and
// merging matches the single-stream sketch — same recall against exact
// counts and near-identical top-16 membership.
func TestTopKMergeShards(t *testing.T) {
	const k = 16
	keys := zipfKeys(400_000, 100_000, 0.99, 11)
	truth := exactTopK(keys, k)

	single := NewTopK(256)
	shards := make([]*TopK, 4)
	for i := range shards {
		shards[i] = NewTopK(256)
	}
	for i, key := range keys {
		single.Offer(key)
		shards[i%len(shards)].Offer(key)
	}
	snaps := make([][]TopKItem, len(shards))
	for i, sh := range shards {
		snaps[i] = sh.Snapshot()
	}
	merged := MergeTopK(k, snaps...)

	if r := recallAt(t, merged, truth, k); r < 0.9 {
		t.Errorf("merged recall@%d = %.2f, want >= 0.9", k, r)
	}
	singleTop := map[uint64]bool{}
	for i, it := range single.Snapshot() {
		if i >= k {
			break
		}
		singleTop[it.Key] = true
	}
	overlap := 0
	for _, it := range merged {
		if singleTop[it.Key] {
			overlap++
		}
	}
	if overlap < k-2 {
		t.Errorf("merged∩single top-%d = %d, want >= %d", k, overlap, k-2)
	}
}

// TestTopKConcurrentSnapshot: Snapshot is safe against a live writer (run
// under -race in CI).
func TestTopKConcurrentSnapshot(t *testing.T) {
	tk := NewTopK(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 200_000; i++ {
			tk.Offer(uint64(rng.Intn(1000)))
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			_ = tk.Snapshot()
		}
	}
}

// TestTopKZeroAlloc: Offer allocates nothing (the hot paths feed it per
// operation).
func TestTopKZeroAlloc(t *testing.T) {
	tk := NewTopK(32)
	var k uint64
	if n := testing.AllocsPerRun(1000, func() {
		tk.Offer(k)
		k++
	}); n != 0 {
		t.Fatalf("Offer allocates %v per run", n)
	}
}

// TestRegistryHotKeys: EnableHotKeys arms subsequently created workers and
// TopKeys merges their shards.
func TestRegistryHotKeys(t *testing.T) {
	r := NewWith(0, 1)
	w0 := r.Worker("before")
	if w0.Hot != nil {
		t.Fatal("worker created before EnableHotKeys has a sketch")
	}
	r.EnableHotKeys(0)
	if !r.HotKeysEnabled() {
		t.Fatal("HotKeysEnabled = false after EnableHotKeys")
	}
	w1, w2 := r.Worker("a"), r.Worker("b")
	if w1.Hot == nil || w1.Hot.Cap() != DefaultHotKeyCap {
		t.Fatalf("worker sketch cap = %v", w1.Hot)
	}
	for i := 0; i < 100; i++ {
		w1.Hot.Offer(7)
		w2.Hot.Offer(7)
		w2.Hot.Offer(9)
	}
	top := r.TopKeys(2)
	if len(top) != 2 || top[0].Key != 7 || top[0].Count != 200 || top[1].Key != 9 {
		t.Fatalf("TopKeys = %+v", top)
	}
	snap := r.TakeSnapshot()
	if len(snap.HotKeys) == 0 || snap.HotKeys[0].Key != 7 {
		t.Fatalf("snapshot hot keys = %+v", snap.HotKeys)
	}
}
