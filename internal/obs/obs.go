// Package obs is the unified observability layer: sharded per-worker
// counters (cache-line padded, no false sharing), mergeable log-bucketed
// histograms, pipeline gauges, a sampled per-request lifecycle trace ring,
// and the HTTP surface (Prometheus text format, expvar, pprof) that exposes
// them from a live run.
//
// The layer is strictly opt-in: a table built without a Registry executes
// bit-identically to an uninstrumented one and allocates nothing extra on
// the hot path. With a Registry attached, hot paths touch only their own
// padded Worker shard (uncontended atomics, published at batch boundaries),
// so the observe-on overhead stays within the ≤2% budget the obs-ab
// experiment records.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter indices into a Worker's shard. Keeping counters index-addressed
// (rather than one field each) lets the Prometheus renderer, the expvar
// snapshot and the merge loop iterate them uniformly.
const (
	// Completed operations by kind.
	CGets = iota
	CPuts
	CUpserts
	CDeletes
	// CHits counts Gets that found their key and Deletes that removed one.
	CHits
	// CFailed counts Puts/Upserts rejected because the table was full.
	CFailed
	// CReprobes counts line crossings (re-enqueued with a fresh prefetch).
	CReprobes
	// CLines counts cache lines touched.
	CLines
	// CKeyLines counts line visits whose key lanes were consulted.
	CKeyLines
	// CTagSkips counts line visits rejected from the packed tag word alone.
	CTagSkips
	// CTagHits / CTagFalse split tag-admitted visits by kernel outcome.
	CTagHits
	CTagFalse
	// Combine counters (see dramhit.Stats).
	CCombinedUpserts
	CPiggybackedGets
	CForwardedGets
	// CCASAttempts counts atomic RMW/store attempts against slot words.
	CCASAttempts
	// CParks counts backpressure parks: combine leaders frozen at the queue
	// head because the response buffer filled mid-chain.
	CParks
	// CQueueSends counts delegated messages sent (DRAMHiT-P write path).
	CQueueSends
	// CProbeSlots counts slots inspected (synchronous baselines).
	CProbeSlots
	// CChainHops counts chain-node traversals (chtkc).
	CChainHops

	NumCounters
)

// CounterNames maps counter indices to their metric names.
var CounterNames = [NumCounters]string{
	"gets", "puts", "upserts", "deletes", "hits", "failed",
	"reprobes", "lines", "keylines", "tagskips", "taghits", "tagfalse",
	"combined_upserts", "piggybacked_gets", "forwarded_gets",
	"cas_attempts", "parks", "queue_sends", "probe_slots", "chain_hops",
}

// Gauge indices into a Worker's shard.
const (
	// GWindowOcc is the prefetch-window occupancy at the last publish.
	GWindowOcc = iota
	// GWindowMax is the maximum window occupancy observed.
	GWindowMax
	// GQueueDepth is the delegation-queue backlog at the last publish.
	GQueueDepth
	// GChainMax is the longest combine chain resolved by one leader.
	GChainMax

	NumGauges
)

// GaugeNames maps gauge indices to their metric names.
var GaugeNames = [NumGauges]string{
	"window_occupancy", "window_occupancy_max", "queue_depth",
	"combine_chain_max",
}

// pad is one cache line of separation; Worker embeds it around its hot
// words so two workers (or a worker and the registry spine) never share a
// line.
type pad [64]byte

// Worker is one hot path's private shard: a fixed array of counters and
// gauges plus a latency histogram, all updated with uncontended atomics by
// the owning goroutine and read concurrently by the scraper. Create with
// Registry.Worker; never share one Worker between goroutines.
type Worker struct {
	name string
	_    pad
	c    [NumCounters]atomic.Uint64
	g    [NumGauges]atomic.Uint64
	_    pad
	// Lat is the worker's latency histogram (nanoseconds by convention).
	Lat Histogram
	// Op are per-op-class latency histograms (nanoseconds), indexed by the
	// OpGetHit..OpDeleteMiss classes. Always present so external drivers
	// (loadgen) can record into them; the table hot paths only stamp
	// timestamps when the registry has op latency enabled.
	Op [NumOpClasses]Histogram
	// Hot is the worker's hot-key sketch shard, non-nil iff the registry had
	// hot-key tracking enabled when the worker was created. Single-writer,
	// like the counters.
	Hot *TopK
}

// Name returns the worker's registry name.
func (w *Worker) Name() string { return w.name }

// Inc adds 1 to counter i.
func (w *Worker) Inc(i int) { w.c[i].Add(1) }

// Add adds n to counter i.
func (w *Worker) Add(i int, n uint64) { w.c[i].Add(n) }

// Store publishes an absolute counter value (for hot paths that accumulate
// in plain handle-local fields and publish at batch boundaries).
func (w *Worker) Store(i int, v uint64) { w.c[i].Store(v) }

// Counter returns counter i's current value.
func (w *Worker) Counter(i int) uint64 { return w.c[i].Load() }

// SetGauge publishes gauge g.
func (w *Worker) SetGauge(g int, v uint64) { w.g[g].Store(v) }

// MaxGauge raises gauge g to v if v is larger. Single-writer (the owning
// goroutine), so load-then-store suffices.
func (w *Worker) MaxGauge(g int, v uint64) {
	if v > w.g[g].Load() {
		w.g[g].Store(v)
	}
}

// Gauge returns gauge g's current value.
func (w *Worker) Gauge(g int) uint64 { return w.g[g].Load() }

// ShardedCounter is a counter striped over cache-line-padded cells for hot
// paths without a per-goroutine handle (the synchronous baselines): callers
// pass any well-distributed shard hint (home slot index, key hash) and the
// increment lands on one of the padded cells, so concurrent writers rarely
// collide on a line.
type ShardedCounter struct {
	cells []paddedCell
	mask  uint64
}

type paddedCell struct {
	v atomic.Uint64
	_ [7]uint64
}

// NewShardedCounter creates a counter with the given number of stripes
// (rounded up to a power of two, minimum 8).
func NewShardedCounter(shards int) *ShardedCounter {
	n := 8
	for n < shards {
		n <<= 1
	}
	return &ShardedCounter{cells: make([]paddedCell, n), mask: uint64(n - 1)}
}

// Add adds n on the stripe selected by hint.
func (c *ShardedCounter) Add(hint, n uint64) { c.cells[hint&c.mask].v.Add(n) }

// Inc adds 1 on the stripe selected by hint.
func (c *ShardedCounter) Inc(hint uint64) { c.cells[hint&c.mask].v.Add(1) }

// Total sums all stripes.
func (c *ShardedCounter) Total() uint64 {
	var t uint64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Source is a pull-collected metric set: table-level aggregates (fill
// factor, live entries, owner-local filter stats) that are cheap to compute
// at scrape time and have no hot-path presence at all.
type Source struct {
	Name    string
	Collect func() map[string]float64
}

// Registry is the process-wide sink: workers register shards, tables
// register pull sources, and the HTTP layer renders everything. All methods
// are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	workers []*Worker
	sources []Source
	heat    []heatSource
	trace   *TraceRing
	sampleN int
	start   time.Time
	// opLat turns on per-op-class latency stamping in the table hot paths
	// (two clock reads per operation — priced like SetLatencyHook, opt-in).
	opLat atomic.Bool
	// hotCap, when > 0, gives every subsequently created Worker a TopK
	// hot-key shard of that capacity.
	hotCap atomic.Int64
}

// DefaultTraceCap is the default lifecycle-trace ring capacity (events).
const DefaultTraceCap = 4096

// DefaultTraceSample is the default request sampling rate: one request in
// every DefaultTraceSample is traced through its lifecycle.
const DefaultTraceSample = 256

// New creates a registry with the default trace ring (DefaultTraceCap
// events, 1-in-DefaultTraceSample request sampling).
func New() *Registry { return NewWith(DefaultTraceCap, DefaultTraceSample) }

// NewWith creates a registry with an explicit trace capacity and sampling
// rate. traceCap 0 disables lifecycle tracing entirely; sampleN ≤ 1 traces
// every request.
func NewWith(traceCap, sampleN int) *Registry {
	r := &Registry{sampleN: sampleN, start: time.Now()}
	if r.sampleN < 1 {
		r.sampleN = 1
	}
	if traceCap > 0 {
		r.trace = NewTraceRing(traceCap)
	}
	return r
}

// Worker allocates and registers a new padded shard under name. Names need
// not be unique; the scraper labels each shard with its own name.
func (r *Registry) Worker(name string) *Worker {
	w := &Worker{name: name}
	if c := int(r.hotCap.Load()); c > 0 {
		w.Hot = NewTopK(c)
	}
	r.mu.Lock()
	r.workers = append(r.workers, w)
	r.mu.Unlock()
	return w
}

// DefaultHotKeyCap is the default per-worker hot-key sketch budget.
const DefaultHotKeyCap = 1024

// EnableHotKeys arms hot-key tracking: every Worker created after this call
// carries a TopK shard of the given capacity (0 = DefaultHotKeyCap) that the
// table hot paths feed at submit time. Call before creating handles.
func (r *Registry) EnableHotKeys(capacity int) {
	if capacity <= 0 {
		capacity = DefaultHotKeyCap
	}
	r.hotCap.Store(int64(capacity))
}

// HotKeysEnabled reports whether hot-key tracking is armed.
func (r *Registry) HotKeysEnabled() bool { return r.hotCap.Load() > 0 }

// EnableOpLatency arms per-op-class latency: handles created after this call
// stamp a start timestamp per operation and record completion latency into
// their Worker's Op histograms. Costs two clock reads per operation on the
// instrumented paths — opt-in, like SetLatencyHook.
func (r *Registry) EnableOpLatency() { r.opLat.Store(true) }

// OpLatencyEnabled reports whether per-op latency stamping is armed.
func (r *Registry) OpLatencyEnabled() bool { return r.opLat.Load() }

// TopKeys merges every worker's hot-key shard and returns the top k keys by
// estimated count (k ≤ 0 keeps all monitored keys).
func (r *Registry) TopKeys(k int) []TopKItem {
	var shards [][]TopKItem
	for _, w := range r.Workers() {
		if w.Hot != nil && w.Hot.Count() > 0 {
			shards = append(shards, w.Hot.Snapshot())
		}
	}
	if len(shards) == 0 {
		return nil
	}
	return MergeTopK(k, shards...)
}

// AddSource registers a pull-collected metric set.
func (r *Registry) AddSource(name string, collect func() map[string]float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Last registration wins: a name identifies a subsystem, and rebuilding
	// the subsystem (a benchmark harness attaching table after table to one
	// shared registry) must not accumulate stale collectors or duplicate
	// Prometheus label sets.
	for i := range r.sources {
		if r.sources[i].Name == name {
			r.sources[i].Collect = collect
			return
		}
	}
	r.sources = append(r.sources, Source{Name: name, Collect: collect})
}

// Trace returns the lifecycle trace ring, or nil when tracing is disabled.
func (r *Registry) Trace() *TraceRing { return r.trace }

// TraceSampleN returns the request sampling rate (1-in-N).
func (r *Registry) TraceSampleN() int { return r.sampleN }

// Workers returns the registered shards (snapshot of the slice; the shards
// themselves keep updating).
func (r *Registry) Workers() []*Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Worker(nil), r.workers...)
}

// Sources returns the registered pull sources.
func (r *Registry) Sources() []Source {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Source(nil), r.sources...)
}

// WorkerSnapshot is one shard's frozen state.
type WorkerSnapshot struct {
	Name     string            `json:"name"`
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]uint64 `json:"gauges"`
	Latency  HistSnapshot      `json:"latency_ns"`
	// OpLatency holds per-op-class latency summaries for classes with
	// recorded samples (key: OpClassNames value).
	OpLatency map[string]HistSnapshot `json:"op_latency_ns,omitempty"`
}

// Snapshot is the registry's frozen state: per-worker shards, summed
// totals, pull-source gauges and a merged latency summary.
type Snapshot struct {
	UptimeSeconds float64                       `json:"uptime_seconds"`
	Totals        map[string]uint64             `json:"totals"`
	Workers       []WorkerSnapshot              `json:"workers"`
	Sources       map[string]map[string]float64 `json:"sources"`
	Latency       HistSnapshot                  `json:"latency_ns"`
	// OpLatency merges every worker's per-op-class histograms (classes with
	// samples only); HotKeys is the merged top-16 hot-key ranking.
	OpLatency   map[string]HistSnapshot `json:"op_latency_ns,omitempty"`
	HotKeys     []TopKItem              `json:"hot_keys,omitempty"`
	TraceEvents uint64                  `json:"trace_events"`
}

// TakeSnapshot freezes the registry's current state (counters keep moving;
// each value is an atomic read).
func (r *Registry) TakeSnapshot() Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Totals:        map[string]uint64{},
		Sources:       map[string]map[string]float64{},
	}
	var lat Histogram
	opLat := make([]*Histogram, NumOpClasses)
	for _, w := range r.Workers() {
		ws := WorkerSnapshot{
			Name:     w.name,
			Counters: map[string]uint64{},
			Gauges:   map[string]uint64{},
			Latency:  w.Lat.Snapshot(),
		}
		for i := 0; i < NumCounters; i++ {
			v := w.Counter(i)
			ws.Counters[CounterNames[i]] = v
			s.Totals[CounterNames[i]] += v
		}
		for g := 0; g < NumGauges; g++ {
			ws.Gauges[GaugeNames[g]] = w.Gauge(g)
		}
		lat.Merge(&w.Lat)
		for c := 0; c < NumOpClasses; c++ {
			if w.Op[c].Count() == 0 {
				continue
			}
			if ws.OpLatency == nil {
				ws.OpLatency = map[string]HistSnapshot{}
			}
			ws.OpLatency[OpClassNames[c]] = w.Op[c].Snapshot()
			if opLat[c] == nil {
				opLat[c] = &Histogram{}
			}
			opLat[c].Merge(&w.Op[c])
		}
		s.Workers = append(s.Workers, ws)
	}
	s.Latency = lat.Snapshot()
	for c, h := range opLat {
		if h == nil {
			continue
		}
		if s.OpLatency == nil {
			s.OpLatency = map[string]HistSnapshot{}
		}
		s.OpLatency[OpClassNames[c]] = h.Snapshot()
	}
	s.HotKeys = r.TopKeys(16)
	for _, src := range r.Sources() {
		s.Sources[src.Name] = src.Collect()
	}
	if r.trace != nil {
		s.TraceEvents = r.trace.Recorded()
	}
	return s
}
