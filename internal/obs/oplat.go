package obs

import "dramhit/internal/table"

// Op classes split per-op latency by operation kind and outcome, so the tail
// of a miss-heavy Get stream is not averaged away by fast hits, and Deletes
// that actually removed an entry are distinguishable from no-ops. Puts and
// Upserts have no hit/miss outcome split: an overwrite and an insert follow
// the same probe path.
const (
	OpGetHit = iota
	OpGetMiss
	OpPut
	OpUpsert
	OpDeleteHit
	OpDeleteMiss

	NumOpClasses
)

// OpClassNames maps op classes to their metric label values.
var OpClassNames = [NumOpClasses]string{
	"get_hit", "get_miss", "put", "upsert", "delete_hit", "delete_miss",
}

// OpClass maps a table opcode and its outcome to the op class.
func OpClass(op table.Op, hit bool) int {
	switch op {
	case table.Get:
		if hit {
			return OpGetHit
		}
		return OpGetMiss
	case table.Put:
		return OpPut
	case table.Upsert:
		return OpUpsert
	default:
		if hit {
			return OpDeleteHit
		}
		return OpDeleteMiss
	}
}
