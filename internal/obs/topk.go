package obs

import (
	"sort"
	"sync/atomic"
)

// TopK is a filtered Space-Saving hot-key sketch (Metwally et al., with the
// error-filter admission of Homem & Carvalho): a fixed budget of capacity
// monitored keys with per-key count and overestimation-error bounds, plus a
// hashed array of error cells in front of the eviction path. Tail keys — the
// overwhelming majority of distinct arrivals on a zipfian stream — bump one
// writer-private cell and return, instead of churning the heap and the key
// index; a key is admitted only once its cell outgrows the current minimum.
// Offer is O(1) for monitored hits and filtered misses, O(log capacity) only
// on admission, allocation-free, and single-writer: each hot path owns its
// own shard (Worker.Hot) and the scraper merges shards with MergeTopK. The
// estimate bound Count-Err ≤ true ≤ Count holds for every monitored key
// (evicted counts fold back into the victim's cell, so a returning key
// resumes from at least its evicted estimate).
//
// Entry state (keys/counts/errs) lives in atomic arrays indexed by a stable
// entry id, so a concurrent Snapshot never races the writer; like the trace
// ring, a snapshot overlapping an eviction can see one entry with fields
// from two keys (each individually valid) — bounded tearing, acceptable for
// a diagnostic. The heap order and the key index are writer-private.
type TopK struct {
	capacity int
	n        atomic.Uint64 // total keys offered
	used     atomic.Int64  // entries in use (monotone up to capacity)

	// Entry-indexed state, read concurrently by Snapshot.
	keys   []atomic.Uint64
	counts []atomic.Uint64
	errs   []atomic.Uint64

	// Writer-private min-heap over entries (by count) and open-addressing
	// key index (slot -> entry+1; 0 = empty) with backward-shift deletion.
	heap  []int32
	pos   []int32
	idx   []int32
	mask  uint64
	usedW int // writer-private mirror of used (no atomic load per sift)

	// Writer-private error-filter cells, same geometry as idx: cell h bounds
	// the count any unmonitored key hashing to h may have accumulated.
	filter []uint64

	tick uint64 // writer-private decimation counter for OfferSampled
}

// SampleShift sets OfferSampled's decimation: it feeds 1 in 1<<SampleShift
// offers, weighted by 1<<SampleShift so reported counts stay in stream units.
// At 32× the skip path is a counter bump and a branch, which keeps an
// always-on sketch feed around a nanosecond per operation on average while a
// zipfian head still lands hundreds of samples per hot key (at θ=0.99 the
// rank-16 key is ~0.5% of the stream — ~300 samples over a 2M-op window).
const SampleShift = 5

// TopKItem is one monitored key in a sketch snapshot: the estimated count
// and its maximum overestimation (true count is in [Count-Err, Count]).
type TopKItem struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
}

// NewTopK creates a sketch monitoring up to capacity keys (minimum 1).
func NewTopK(capacity int) *TopK {
	if capacity < 1 {
		capacity = 1
	}
	tsize := 8
	for tsize < 4*capacity {
		tsize <<= 1
	}
	return &TopK{
		capacity: capacity,
		keys:     make([]atomic.Uint64, capacity),
		counts:   make([]atomic.Uint64, capacity),
		errs:     make([]atomic.Uint64, capacity),
		heap:     make([]int32, capacity),
		pos:      make([]int32, capacity),
		idx:      make([]int32, tsize),
		mask:     uint64(tsize - 1),
		filter:   make([]uint64, tsize),
	}
}

// Cap returns the monitored-key budget.
func (t *TopK) Cap() int { return t.capacity }

// Count returns the total number of keys offered.
func (t *TopK) Count() uint64 { return t.n.Load() }

// mix64 is a SplitMix64-style finalizer: the sketch index needs its own
// scramble because raw keys (sequential YCSB keyspaces) are not uniform.
func mix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Offer feeds one key occurrence. Single-writer; allocation-free.
func (t *TopK) Offer(key uint64) { t.OfferWeighted(key, 1) }

// OfferSampled feeds 1 in 1<<SampleShift calls, weighted back up so counts
// stay in stream units. This is the always-on table-side feed: the skipped
// calls cost a private counter bump, so the amortized price fits inside the
// introspection budget on a sub-200ns pipeline. Ranking quality is
// unaffected for the skewed streams a hot-key view exists to diagnose; the
// Count/Err fields become sampled estimates rather than deterministic
// bounds (Offer keeps the exact semantics for direct feeds).
func (t *TopK) OfferSampled(key uint64) {
	t.tick++
	if t.tick&(1<<SampleShift-1) != 0 {
		return
	}
	t.OfferWeighted(key, 1<<SampleShift)
}

// OfferWeighted feeds one key occurrence with weight w (a w-sized batch of
// identical keys). Single-writer; allocation-free.
func (t *TopK) OfferWeighted(key uint64, w uint64) {
	t.n.Add(w)
	home := mix64(key) & t.mask
	h := home
	for {
		e := t.idx[h]
		if e == 0 {
			break
		}
		if t.keys[e-1].Load() == key {
			t.counts[e-1].Add(w)
			t.siftDown(int(t.pos[e-1]))
			return
		}
		h = (h + 1) & t.mask
	}
	used := t.usedW
	if used < t.capacity {
		e := used
		t.keys[e].Store(key)
		t.counts[e].Store(w)
		t.errs[e].Store(0)
		t.heap[used] = int32(e)
		t.pos[e] = int32(used)
		t.usedW = used + 1
		t.used.Store(int64(used + 1))
		t.idx[h] = int32(e + 1)
		t.siftUp(used)
		return
	}
	// Budget full: consult the newcomer's error cell before touching the
	// monitored set. While the cell stays at or below the current minimum
	// the key cannot displace anything — bump the cell and return, leaving
	// the heap and the index untouched (the common case for tail keys).
	root := int(t.heap[0])
	min := t.counts[root].Load()
	a := t.filter[home] + w
	if a <= min {
		t.filter[home] = a
		return
	}
	// The cell outgrew the minimum: evict the root, folding its count back
	// into its own cell (a returning key must resume from at least its
	// evicted estimate, or Count ≥ true breaks), and admit the newcomer
	// with its cell value as count and error bound.
	old := t.keys[root].Load()
	t.idxDelete(old)
	if oc := t.counts[root].Load(); oc > t.filter[mix64(old)&t.mask] {
		t.filter[mix64(old)&t.mask] = oc
	}
	t.keys[root].Store(key)
	t.errs[root].Store(a - w)
	t.counts[root].Store(a)
	t.idxInsert(key, int32(root+1))
	t.siftDown(0)
}

func (t *TopK) cnt(i int) uint64 { return t.counts[t.heap[i]].Load() }

func (t *TopK) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.pos[t.heap[i]] = int32(i)
	t.pos[t.heap[j]] = int32(j)
}

func (t *TopK) siftDown(i int) {
	n := t.usedW
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && t.cnt(r) < t.cnt(l) {
			m = r
		}
		if t.cnt(i) <= t.cnt(m) {
			return
		}
		t.swap(i, m)
		i = m
	}
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.cnt(p) <= t.cnt(i) {
			return
		}
		t.swap(i, p)
		i = p
	}
}

func (t *TopK) idxInsert(key uint64, ref int32) {
	h := mix64(key) & t.mask
	for t.idx[h] != 0 {
		h = (h + 1) & t.mask
	}
	t.idx[h] = ref
}

// idxDelete removes key from the open-addressing index with backward-shift
// compaction, so lookup never needs tombstones.
func (t *TopK) idxDelete(key uint64) {
	i := mix64(key) & t.mask
	for {
		e := t.idx[i]
		if e == 0 {
			return
		}
		if t.keys[e-1].Load() == key {
			break
		}
		i = (i + 1) & t.mask
	}
	free := i
	j := i
	for {
		j = (j + 1) & t.mask
		e := t.idx[j]
		if e == 0 {
			break
		}
		home := mix64(t.keys[e-1].Load()) & t.mask
		// Shift e into the hole unless its home lies cyclically inside
		// (free, j] — then the hole is outside e's probe run.
		if (j-home)&t.mask >= (j-free)&t.mask {
			t.idx[free] = e
			free = j
		}
	}
	t.idx[free] = 0
}

// Snapshot returns the monitored keys sorted by estimated count descending.
// Safe to call concurrently with Offer (bounded tearing, see type comment).
func (t *TopK) Snapshot() []TopKItem {
	used := int(t.used.Load())
	out := make([]TopKItem, 0, used)
	for e := 0; e < used; e++ {
		out = append(out, TopKItem{
			Key:   t.keys[e].Load(),
			Count: t.counts[e].Load(),
			Err:   t.errs[e].Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// MergeTopK merges per-shard sketch snapshots into one ranking: counts and
// error bounds add per key (each shard saw a disjoint sub-stream, so the
// merged Count-Err ≤ true ≤ Count bound still holds for keys monitored in
// every shard that saw them). The result is sorted by count descending and
// trimmed to k entries (k ≤ 0 keeps all).
func MergeTopK(k int, shards ...[]TopKItem) []TopKItem {
	sum := map[uint64]*TopKItem{}
	for _, sh := range shards {
		for _, it := range sh {
			if m, ok := sum[it.Key]; ok {
				m.Count += it.Count
				m.Err += it.Err
			} else {
				cp := it
				sum[it.Key] = &cp
			}
		}
	}
	out := make([]TopKItem, 0, len(sum))
	for _, it := range sum {
		out = append(out, *it)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
