package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistBucketBoundsRoundTrip(t *testing.T) {
	// Every bucket's bounds must map back to that bucket, and adjacent
	// buckets must tile the value space without gaps or overlap.
	prevHi := uint64(0)
	for i := 0; i < NumHistBuckets; i++ {
		lo, hi := HistBucketBounds(i)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", i, lo, hi)
		}
		if i == 0 {
			if lo != 0 {
				t.Fatalf("bucket 0 starts at %d, want 0", lo)
			}
		} else if lo != prevHi+1 {
			t.Fatalf("bucket %d: lo %d, want %d (prev hi+1)", i, lo, prevHi+1)
		}
		if got := histBucketOf(lo); got != i {
			t.Fatalf("histBucketOf(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := histBucketOf(hi); got != i {
			t.Fatalf("histBucketOf(hi=%d) = %d, want %d", hi, got, i)
		}
		prevHi = hi
		if hi == math.MaxUint64 {
			if i != NumHistBuckets-1 {
				t.Fatalf("bucket %d already covers MaxUint64", i)
			}
			break
		}
	}
	if prevHi != math.MaxUint64 {
		t.Fatalf("buckets end at %d, want MaxUint64", prevHi)
	}
}

func TestHistSmallValuesExact(t *testing.T) {
	// Values below histSubCount occupy their own bucket: exact recording.
	var h Histogram
	for v := uint64(0); v < histSubCount; v++ {
		h.Record(v)
	}
	for v := uint64(0); v < histSubCount; v++ {
		lo, hi := HistBucketBounds(histBucketOf(v))
		if lo != v || hi != v {
			t.Fatalf("value %d: bounds [%d,%d], want exact", v, lo, hi)
		}
	}
	if h.Count() != histSubCount {
		t.Fatalf("count = %d, want %d", h.Count(), histSubCount)
	}
}

func TestHistMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() *Histogram {
		h := &Histogram{}
		for i := 0; i < 1000; i++ {
			h.Record(uint64(rng.Int63n(1 << 40)))
		}
		return h
	}
	a, b, c := mk(), mk(), mk()

	// (a+b)+c
	var abc1 Histogram
	abc1.Merge(a)
	abc1.Merge(b)
	abc1.Merge(c)
	// a+(c+b) via a scratch: different association and order.
	var cb, abc2 Histogram
	cb.Merge(c)
	cb.Merge(b)
	abc2.Merge(a)
	abc2.Merge(&cb)

	if abc1.Count() != abc2.Count() || abc1.Sum() != abc2.Sum() {
		t.Fatalf("merge not associative: count %d vs %d, sum %d vs %d",
			abc1.Count(), abc2.Count(), abc1.Sum(), abc2.Sum())
	}
	for i := range abc1.counts {
		if abc1.counts[i].Load() != abc2.counts[i].Load() {
			t.Fatalf("bucket %d differs after re-associated merge", i)
		}
	}
}

func TestHistQuantileErrorBound(t *testing.T) {
	// Against the exact CDF of the recorded sample, every quantile estimate
	// must be within the bucket-geometry bound: relative error ≤ half a
	// bucket width = 2^-(histSubBits+1), plus the midpoint offset — use the
	// full width 2^-histSubBits as the hard bound.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform spread so many octaves are exercised.
		v := uint64(math.Exp(rng.Float64()*20) + 64)
		h.Record(v)
		vals = append(vals, float64(v))
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		relErr := math.Abs(got-exact) / exact
		if relErr > 1.0/histSubCount {
			t.Errorf("q=%g: got %g, exact %g, rel err %g > %g",
				q, got, exact, relErr, 1.0/histSubCount)
		}
	}
}

func TestHistCountAtOrBelowExactAtOctaves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	var vals []uint64
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(1 << 30))
		h.Record(v)
		vals = append(vals, v)
	}
	for k := 6; k <= 30; k += 2 {
		bound := uint64(1)<<k - 1
		var want uint64
		for _, v := range vals {
			if v <= bound {
				want++
			}
		}
		if got := h.CountAtOrBelow(bound); got != want {
			t.Fatalf("CountAtOrBelow(2^%d-1) = %d, want %d", k, got, want)
		}
	}
}

func TestHistMeanExact(t *testing.T) {
	var h Histogram
	var sum, n uint64
	for v := uint64(1); v <= 1000; v++ {
		h.RecordN(v*v, 3)
		sum += v * v * 3
		n += 3
	}
	if got, want := h.Mean(), float64(sum)/float64(n); got != want {
		t.Fatalf("Mean = %g, want exact %g", got, want)
	}
}

func TestHistRecordZeroAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Fatalf("Record allocates %v per run, want 0", n)
	}
}

func TestHistEmpty(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Mean()) || !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Max()) {
		t.Fatal("empty histogram should report NaN")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zeroed: %+v", s)
	}
}

func TestHistReset(t *testing.T) {
	var h Histogram
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset did not clear")
	}
	if got := h.CountAtOrBelow(math.MaxUint64); got != 0 {
		t.Fatalf("buckets not cleared: %d", got)
	}
}
