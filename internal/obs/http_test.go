package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestRegistry() *Registry {
	r := NewWith(64, 1)
	w := r.Worker("w0")
	w.Add(CGets, 100)
	w.Add(CHits, 90)
	w.SetGauge(GWindowOcc, 8)
	w.Lat.Record(150)
	w.Lat.Record(900)
	r.AddSource("table", func() map[string]float64 {
		return map[string]float64{"fill factor": 0.42}
	})
	tr := r.Trace()
	id := tr.NextID()
	tr.Record(id, EvSubmit, 0, 7, 0)
	tr.Record(id, EvComplete, 0, 7, 1)
	return r
}

func TestMetricsEndpoint(t *testing.T) {
	h := Handler(newTestRegistry())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`dramhit_gets_total{worker="w0"} 100`,
		`dramhit_hits_total{worker="w0"} 90`,
		`dramhit_window_occupancy{worker="w0"} 8`,
		`dramhit_latency_ns_count{worker="w0"} 2`,
		`dramhit_latency_ns_bucket{worker="w0",le="+Inf"} 2`,
		`dramhit_pull{source="table",name="fill_factor"} 0.42`,
		`dramhit_trace_events_total 2`,
		`dramhit_uptime_seconds`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
	// The cumulative histogram must be monotone and end at the count.
	var prev int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "dramhit_latency_ns_bucket") || strings.Contains(line, "+Inf") {
			continue
		}
		var v int64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("non-monotone cumulative bucket: %q after %d", line, prev)
		}
		prev = v
	}
}

// fmtSscan pulls the trailing integer off a Prometheus sample line.
func fmtSscan(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = jsonNumber(line[i+1:])
	return 1, err
}

func jsonNumber(s string) (int64, error) {
	var n int64
	err := json.Unmarshal([]byte(s), &n)
	return n, err
}

func TestTraceEndpoint(t *testing.T) {
	h := Handler(newTestRegistry())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var evs []Event
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(evs) != 2 || evs[0].Kind != EvSubmit || evs[1].Kind != EvComplete {
		t.Fatalf("trace events: %+v", evs)
	}
}

func TestTraceEndpointDisabled(t *testing.T) {
	h := Handler(NewWith(0, 1))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if got := strings.TrimSpace(rec.Body.String()); got != "[]" {
		t.Fatalf("disabled trace body = %q, want []", got)
	}
}

func TestExpvarEndpoint(t *testing.T) {
	h := Handler(newTestRegistry())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	raw, ok := vars["dramhit_obs"]
	if !ok {
		t.Fatal("expvar missing dramhit_obs")
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("dramhit_obs: %v", err)
	}
	if snap.Totals["gets"] != 100 {
		t.Fatalf("expvar snapshot gets = %d", snap.Totals["gets"])
	}
}

func TestPprofIndex(t *testing.T) {
	h := Handler(newTestRegistry())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatal("pprof index missing profiles")
	}
}

func TestIndexAndNotFound(t *testing.T) {
	h := Handler(newTestRegistry())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "/metrics") {
		t.Fatalf("index: %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path status %d, want 404", rec.Code)
	}
}

func TestServeAndClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", newTestRegistry())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	srv.Close()
}
