package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-size log-bucketed histogram for hot-path latency and
// size distributions: Record is zero-alloc and lock-free (one uncontended
// atomic add), histograms merge exactly (bucket-wise addition, so merging is
// associative and commutative), and quantiles carry a hard relative error
// bound set by the bucket geometry.
//
// Bucketing follows the HDR scheme: values below histSubCount are recorded
// exactly (their own bucket each); above that, every power-of-two octave is
// split into histSubCount sub-buckets, so a bucket's width over its lower
// bound never exceeds 1/histSubCount — quantile estimates (bucket midpoints)
// are within ±1.6% of the true sample, and every bucket boundary of the form
// sub<<exp is exact. This replaces latency.Recorder as the default latency
// sink: the reservoir keeps an unbiased sample for exact CDFs (Figure 9);
// the histogram keeps everything, bounded, mergeable and scrapeable live.
type Histogram struct {
	counts [NumHistBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

const (
	// histSubBits sets the sub-bucket resolution: 2^histSubBits sub-buckets
	// per octave, bounding relative bucket width by 2^-histSubBits (3.125%).
	histSubBits  = 5
	histSubCount = 1 << histSubBits

	// NumHistBuckets covers the full uint64 range: histSubCount exact
	// buckets, then (64 - histSubBits - 1) octaves of histSubCount
	// sub-buckets each (the first split octave shares indices with the
	// exact region's top, see histBucketOf).
	NumHistBuckets = (64 - histSubBits + 1) * histSubCount
)

// histBucketOf maps a value to its bucket index. Values below histSubCount
// map to themselves (exact); larger values keep their top histSubBits+1
// significand bits.
func histBucketOf(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - histSubBits
	// sub is in [histSubCount, 2*histSubCount): the leading bit plus the
	// next histSubBits bits of v.
	sub := int(v >> uint(exp))
	return exp<<histSubBits + sub
}

// HistBucketBounds returns the inclusive value range [lo, hi] covered by
// bucket i.
func HistBucketBounds(i int) (lo, hi uint64) {
	if i < histSubCount {
		return uint64(i), uint64(i)
	}
	exp := uint(i>>histSubBits) - 1
	sub := uint64(i) - uint64(exp)<<histSubBits
	lo = sub << exp
	return lo, lo + 1<<exp - 1
}

// Record adds one observation. Safe for concurrent use; allocation-free.
func (h *Histogram) Record(v uint64) { h.RecordN(v, 1) }

// RecordN adds n observations of value v.
func (h *Histogram) RecordN(v, n uint64) {
	h.counts[histBucketOf(v)].Add(n)
	h.count.Add(n)
	h.sum.Add(v * n)
}

// Merge adds o's observations into h (bucket-wise, exact). o may be recorded
// into concurrently; the merge then reflects some consistent-enough snapshot
// of a monotonically growing histogram.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the exact sample mean (sum and count are tracked exactly).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as the midpoint of the bucket
// holding the nearest-rank sample — within ±(2^-histSubBits)/2 relative of
// the true sample value.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n-1))
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum > rank {
			lo, hi := HistBucketBounds(i)
			return float64(lo+hi) / 2
		}
	}
	// Racing recorders can leave count ahead of the bucket sum; report the
	// largest occupied bucket.
	return h.Max()
}

// Max returns the upper bound of the highest occupied bucket (≥ the true
// maximum, within the bucket width).
func (h *Histogram) Max() float64 {
	for i := NumHistBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() != 0 {
			_, hi := HistBucketBounds(i)
			return float64(hi)
		}
	}
	return math.NaN()
}

// Min returns the lower bound of the lowest occupied bucket.
func (h *Histogram) Min() float64 {
	for i := 0; i < NumHistBuckets; i++ {
		if h.counts[i].Load() != 0 {
			lo, _ := HistBucketBounds(i)
			return float64(lo)
		}
	}
	return math.NaN()
}

// CountAtOrBelow returns the number of observations in buckets entirely at
// or below v. Exact when v is of the form 2^k-1 (bucket boundaries align
// with octaves), which is what the Prometheus renderer uses for its
// cumulative `le` bounds.
func (h *Histogram) CountAtOrBelow(v uint64) uint64 {
	var cum uint64
	for i := range h.counts {
		if _, hi := HistBucketBounds(i); hi > v {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// Reset zeroes the histogram. Not safe against concurrent Record.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// HistBucket is one occupied bucket of a Histogram snapshot: the inclusive
// value range [Lo, Hi] and the number of observations that landed in it.
type HistBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Buckets returns the occupied buckets in ascending value order — the full
// distribution, not just the Snapshot percentiles. Artifact writers (loadgen
// -json, bench) embed this so a run's latency shape survives into the JSON.
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i := 0; i < NumHistBuckets; i++ {
		if n := h.counts[i].Load(); n != 0 {
			lo, hi := HistBucketBounds(i)
			out = append(out, HistBucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return out
}

// HistSnapshot is a frozen summary used by the expvar/JSON exports.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// Snapshot summarizes the histogram. NaNs (empty histogram) are reported as
// zeros so the result is JSON-encodable.
func (h *Histogram) Snapshot() HistSnapshot {
	z := func(v float64) float64 {
		if math.IsNaN(v) {
			return 0
		}
		return v
	}
	return HistSnapshot{
		Count: h.Count(),
		Mean:  z(h.Mean()),
		P50:   z(h.Quantile(0.50)),
		P90:   z(h.Quantile(0.90)),
		P99:   z(h.Quantile(0.99)),
		P999:  z(h.Quantile(0.999)),
		Max:   z(h.Max()),
	}
}
