package mctext

import (
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"
	"testing/iotest"
)

func reader(in string) *Reader { return NewReader(strings.NewReader(in)) }

func TestSetGetDelete(t *testing.T) {
	r := reader("set counter 7 0 5\r\nhello\r\nget counter other\r\ndelete counter\r\n")

	req, err := r.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.Verb != Set || string(req.Key) != "counter" || req.Flags != 7 ||
		string(req.Data) != "hello" || req.NoReply {
		t.Fatalf("set parsed as %+v", req)
	}

	req, err = r.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.Verb != Get || len(req.Keys) != 2 ||
		string(req.Keys[0]) != "counter" || string(req.Keys[1]) != "other" {
		t.Fatalf("get parsed as %+v", req)
	}

	req, err = r.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.Verb != Delete || string(req.Key) != "counter" {
		t.Fatalf("delete parsed as %+v", req)
	}
}

func TestNoreplyAndArithmetic(t *testing.T) {
	r := reader("set k 0 0 1 noreply\r\nx\r\nincr k 41\r\ndecr k 1 noreply\r\nquit\r\n")
	req, _ := r.ReadRequest()
	if req.Verb != Set || !req.NoReply {
		t.Fatalf("set noreply parsed as %+v", req)
	}
	req, _ = r.ReadRequest()
	if req.Verb != Incr || req.Delta != 41 || req.NoReply || string(req.Key) != "k" {
		t.Fatalf("incr parsed as %+v", req)
	}
	req, _ = r.ReadRequest()
	if req.Verb != Decr || req.Delta != 1 || !req.NoReply {
		t.Fatalf("decr parsed as %+v", req)
	}
	req, _ = r.ReadRequest()
	if req.Verb != Quit {
		t.Fatalf("quit parsed as %+v", req)
	}
}

// TestDataBlockIsBinarySafe pins that the data block is length-delimited:
// CRLFs and command-looking text inside it are data, not protocol.
func TestDataBlockIsBinarySafe(t *testing.T) {
	data := "get x\r\nset y\r\n\x00\xff"
	r := reader("set k 0 0 " + itoa(len(data)) + "\r\n" + data + "\r\nget k\r\n")
	req, err := r.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Data) != data {
		t.Fatalf("data block mangled: %q", req.Data)
	}
	if req2, err := r.ReadRequest(); err != nil || req2.Verb != Get {
		t.Fatalf("frame after binary data: %+v, %v", req2, err)
	}
}

func TestSplitReads(t *testing.T) {
	in := "set k 1 0 5\r\nworld\r\nget k\r\nincr k 2\r\n"
	parse := func(r io.Reader) []Request {
		rd := NewReader(r)
		var out []Request
		for {
			req, err := rd.ReadRequest()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, req)
		}
	}
	whole := parse(strings.NewReader(in))
	split := parse(iotest.OneByteReader(strings.NewReader(in)))
	if len(whole) != 3 || len(split) != 3 {
		t.Fatalf("whole=%d split=%d requests", len(whole), len(split))
	}
	if string(split[0].Data) != "world" || string(split[1].Keys[0]) != "k" || split[2].Delta != 2 {
		t.Fatalf("split parse diverged: %+v", split)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]error{
		"bogus foo\r\n":                   ErrBadCommand,
		"flush_all\r\n":                   ErrBadCommand, // unsupported verb
		"set k 0 0\r\n":                   ErrBadLine,    // missing <bytes>
		"set k 0 0 x\r\n":                 ErrBadLine,    // junk <bytes>
		"set k 0 0 2 yesreply\r\nxx\r\n":  ErrBadLine,
		"set k 0 0 9999999999\r\n":        ErrDataTooLong,
		"incr k\r\n":                      ErrBadLine,
		"incr k 18446744073709551616\r\n": ErrBadLine, // overflow
		"get\r\n":                         ErrBadLine,
		"set " + strings.Repeat("k", 251) + " 0 0 1\r\nx\r\n": ErrKeyTooLong,
		"set k 0 0 3\r\nxxxx\r\n":                             ErrBadData, // block longer than declared
	}
	for in, want := range cases {
		_, err := reader(in).ReadRequest()
		if !errors.Is(err, want) {
			t.Errorf("%q: err = %v, want %v", in, err, want)
		}
	}
}

// TestErrorResync pins the memcached behavior the server relies on: an
// unknown verb consumes exactly its line, so parsing can continue.
func TestErrorResync(t *testing.T) {
	r := reader("bogus\r\nversion\r\n")
	if _, err := r.ReadRequest(); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("want ErrBadCommand, got %v", err)
	}
	req, err := r.ReadRequest()
	if err != nil || req.Verb != Version {
		t.Fatalf("resync failed: %+v, %v", req, err)
	}
}

func TestAppendHelpers(t *testing.T) {
	var b []byte
	b = AppendValue(b, []byte("k"), 7, []byte("vv"))
	b = AppendEnd(b)
	b = AppendLine(b, "STORED")
	b = AppendUint(b, 42)
	b = AppendClientError(b, "bad data chunk")
	want := "VALUE k 7 2\r\nvv\r\nEND\r\nSTORED\r\n42\r\nCLIENT_ERROR bad data chunk\r\n"
	if string(b) != want {
		t.Fatalf("got %q, want %q", b, want)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
