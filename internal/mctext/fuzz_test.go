package mctext

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// chunkReader yields one byte per Read (see internal/resp's twin).
type chunkReader struct{ b []byte }

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.b) == 0 {
		return 0, io.EOF
	}
	p[0] = c.b[0]
	c.b = c.b[1:]
	return 1, nil
}

// summarize flattens a request for cross-parse comparison.
func summarize(req Request) []byte {
	var s []byte
	s = append(s, byte(req.Verb))
	for _, k := range req.Keys {
		s = append(s, k...)
		s = append(s, 0)
	}
	s = append(s, req.Key...)
	s = append(s, 0)
	s = append(s, req.Data...)
	if req.NoReply {
		s = append(s, 1)
	}
	return s
}

// FuzzMemcachedParse: arbitrary bytes must never panic the parser or make it
// retain more than it read, and whole-buffer vs byte-at-a-time parses must
// agree. ErrBadCommand is resynchronizable, so parsing continues across it
// exactly as the server's connection loop does.
func FuzzMemcachedParse(f *testing.F) {
	f.Add([]byte("set k 0 0 5\r\nhello\r\nget k\r\n"))
	f.Add([]byte("get a b c\r\ngets a\r\n"))
	f.Add([]byte("set k 1 2 3 noreply\r\nabc\r\ndelete k noreply\r\n"))
	f.Add([]byte("incr k 1\r\ndecr k 18446744073709551615\r\n"))
	// Split-read shapes, oversized lengths, bare \n.
	f.Add([]byte("set k 0 0 1048577\r\n"))
	f.Add([]byte("set k 0 0 99999999999999999999\r\nx\r\n"))
	f.Add([]byte("get k\nset k 0 0 2\nhi\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("set k 0 0 4\r\nab"))
	f.Add([]byte("version\r\nquit\r\n"))
	f.Add(bytes.Repeat([]byte{0}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		parse := func(r *Reader) (reqs [][]byte, clean bool) {
			retained := 0
			for {
				req, err := r.ReadRequest()
				if err == ErrBadCommand {
					reqs = append(reqs, []byte{0xFF}) // marker, keep going
					continue
				}
				if err != nil {
					return reqs, err == io.EOF
				}
				s := summarize(req)
				retained += len(s)
				if retained > len(data)+64 {
					t.Fatalf("parser retained %d bytes from %d input bytes", retained, len(data))
				}
				reqs = append(reqs, s)
			}
		}
		whole, wholeClean := parse(NewReader(bytes.NewReader(data)))
		split, splitClean := parse(NewReader(bufio.NewReaderSize(&chunkReader{b: data}, MaxLine)))
		if len(whole) != len(split) || wholeClean != splitClean {
			t.Fatalf("parses disagree: %d/%v vs %d/%v requests", len(whole), wholeClean, len(split), splitClean)
		}
		for i := range whole {
			if !bytes.Equal(whole[i], split[i]) {
				t.Fatalf("request %d differs across read boundaries", i)
			}
		}
	})
}
