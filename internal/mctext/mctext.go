// Package mctext implements the server side of the memcached text protocol
// subset a hash-table front end needs: retrieval (get/gets), storage (set),
// deletion (delete) and arithmetic (incr/decr), with noreply support.
//
// Like internal/resp, the reader is incremental (frames straddle Read
// boundaries), allocation-bounded (the <bytes> field of a storage command is
// validated against MaxData before any buffer is sized from it), and
// arena-backed (parsed keys and data stay valid across ReadRequest calls
// until Release, so pipelined commands batch into one table flush).
//
// Protocol reference: the memcached source distribution's doc/protocol.txt.
// Error replies follow it: "ERROR\r\n" for an unknown command,
// "CLIENT_ERROR <msg>\r\n" for a malformed known command.
package mctext

import (
	"bufio"
	"errors"
	"io"
	"strconv"
)

// Limits. Real memcached caps keys at 250 bytes and values at 1 MB by
// default; the same numbers are kept here so fixtures captured against a
// real server transfer.
const (
	// MaxKey bounds one key's byte length.
	MaxKey = 250
	// MaxData bounds a storage command's data block.
	MaxData = 1 << 20
	// MaxKeys bounds the key count of one get request.
	MaxKeys = 256
	// MaxLine bounds one command line (terminator included). Sized so a
	// protocol-legal get of MaxKeys keys at MaxKey bytes each fits; a smaller
	// bound would sever clients real memcached accepts.
	MaxLine = MaxKeys*(MaxKey+1) + 16
)

// Errors for protocol violations. ErrBadCommand maps to "ERROR" (unknown
// verb, connection can continue); the others are client errors that leave
// framing undefined, so the server replies CLIENT_ERROR and closes.
var (
	ErrBadCommand  = errors.New("mctext: unknown command")
	ErrBadLine     = errors.New("mctext: malformed command line")
	ErrKeyTooLong  = errors.New("mctext: key exceeds limit")
	ErrDataTooLong = errors.New("mctext: data block exceeds limit")
	ErrLineTooLong = errors.New("mctext: command line exceeds limit")
	ErrBadData     = errors.New("mctext: data block not terminated")
)

// Verb is the parsed command kind.
type Verb uint8

// The supported verbs.
const (
	Get Verb = iota
	Gets
	Set
	Delete
	Incr
	Decr
	Version
	Quit
)

// Request is one parsed client request. Keys, Key and Data alias the
// Reader's arena: valid until Release.
type Request struct {
	Verb Verb
	// Keys holds the key list of a get/gets; Key the single key otherwise.
	Keys [][]byte
	Key  []byte
	// Flags and Exptime are stored verbatim (set); Data is the value block.
	Flags   uint32
	Exptime int64
	Data    []byte
	// Delta is the incr/decr operand.
	Delta uint64
	// NoReply suppresses the success reply (set/delete/incr/decr).
	NoReply bool
}

// Reader incrementally parses requests from a stream.
type Reader struct {
	br    *bufio.Reader
	arena []byte
	keys  [][]byte
	offs  []int
	lens  []int
}

// NewReader wraps r (see resp.NewReader for the bufio note: the buffer is
// sized to MaxLine so the declared line limit is reachable).
func NewReader(r io.Reader) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, MaxLine)
	}
	return &Reader{br: br}
}

// Release invalidates every Request returned since the previous Release and
// reclaims the arena.
func (r *Reader) Release() {
	r.arena = r.arena[:0]
	r.keys = r.keys[:0]
}

// Buffered reports whether further request bytes are already buffered.
func (r *Reader) Buffered() bool { return r.br.Buffered() > 0 }

// ArenaBytes reports how many key/data bytes the arena holds since the last
// Release (see resp.ArenaBytes — the parse-side batch-memory bound).
func (r *Reader) ArenaBytes() int { return len(r.arena) }

// readLine returns the next line without its (CR)LF terminator. The slice
// aliases the bufio buffer.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		for err == bufio.ErrBufferFull {
			_, err = r.br.ReadSlice('\n')
		}
		if err != nil && err != io.EOF {
			return nil, err
		}
		return nil, ErrLineTooLong
	}
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if len(line) > MaxLine {
		return nil, ErrLineTooLong
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// fields splits a line on single spaces (memcached is strict: fields are
// space-separated, empty fields are protocol errors, but a tolerant split
// keeps the parser total). The subslices alias line.
func fields(line []byte, out [][]byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' {
			i++
		}
		if i > start {
			out = append(out, line[start:i])
		}
	}
	return out
}

// hold copies b into the arena, returning a stable reference (recorded as
// offset+len until the arena stops moving for this request).
func (r *Reader) hold(b []byte) {
	r.offs = append(r.offs, len(r.arena))
	r.lens = append(r.lens, len(b))
	r.arena = append(r.arena, b...)
}

// take materializes the i-th held span of the current request.
func (r *Reader) take(i int) []byte {
	return r.arena[r.offs[i] : r.offs[i]+r.lens[i]]
}

func parseUint(b []byte, bits int) (uint64, error) {
	if len(b) == 0 {
		return 0, ErrBadLine
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, ErrBadLine
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, ErrBadLine
		}
		n = n*10 + d
	}
	if bits < 64 && n >= 1<<uint(bits) {
		return 0, ErrBadLine
	}
	return n, nil
}

// verbOf resolves a verb token without allocating.
func verbOf(b []byte) (Verb, bool) {
	switch string(b) { // does not allocate: compiler-recognized comparison
	case "get":
		return Get, true
	case "gets":
		return Gets, true
	case "set":
		return Set, true
	case "delete":
		return Delete, true
	case "incr":
		return Incr, true
	case "decr":
		return Decr, true
	case "version":
		return Version, true
	case "quit":
		return Quit, true
	}
	return 0, false
}

// ReadRequest parses the next request. Unknown verbs return ErrBadCommand
// with the line consumed, so the server can reply "ERROR" and continue —
// matching real memcached, which resynchronizes on the next line.
func (r *Reader) ReadRequest() (Request, error) {
	r.offs = r.offs[:0]
	r.lens = r.lens[:0]
	line, err := r.readLine()
	if err != nil {
		return Request{}, err
	}
	var fbuf [8][]byte
	fs := fields(line, fbuf[:0])
	if len(fs) == 0 {
		return Request{}, ErrBadCommand // empty line: not resynchronizable input
	}
	verb, ok := verbOf(fs[0])
	if !ok {
		return Request{}, ErrBadCommand
	}
	req := Request{Verb: verb}
	switch verb {
	case Get, Gets:
		if len(fs) < 2 {
			return Request{}, ErrBadLine
		}
		if len(fs)-1 > MaxKeys {
			return Request{}, ErrBadLine
		}
		for _, k := range fs[1:] {
			if len(k) > MaxKey {
				return Request{}, ErrKeyTooLong
			}
			r.hold(k)
		}
		base := len(r.keys)
		for i := range fs[1:] {
			r.keys = append(r.keys, r.take(i))
		}
		req.Keys = r.keys[base:]
		return req, nil

	case Set:
		// set <key> <flags> <exptime> <bytes> [noreply]
		if len(fs) < 5 || len(fs) > 6 {
			return Request{}, ErrBadLine
		}
		if len(fs[1]) > MaxKey {
			return Request{}, ErrKeyTooLong
		}
		flags, err := parseUint(fs[2], 32)
		if err != nil {
			return Request{}, err
		}
		exp, err := parseUint(fs[3], 63)
		if err != nil {
			return Request{}, err
		}
		nbytes, err := parseUint(fs[4], 63)
		if err != nil {
			return Request{}, err
		}
		if nbytes > MaxData {
			return Request{}, ErrDataTooLong
		}
		if len(fs) == 6 {
			if string(fs[5]) != "noreply" {
				return Request{}, ErrBadLine
			}
			req.NoReply = true
		}
		req.Flags = uint32(flags)
		req.Exptime = int64(exp)
		r.hold(fs[1])
		// Data block: <bytes> bytes then CRLF. Reserve validated length in
		// the arena and read directly into it.
		off := len(r.arena)
		r.arena = append(r.arena, make([]byte, nbytes)...)
		if _, err := io.ReadFull(r.br, r.arena[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Request{}, err
		}
		term, err := r.readLine()
		if err != nil {
			return Request{}, err
		}
		if len(term) != 0 {
			return Request{}, ErrBadData
		}
		req.Key = r.take(0)
		req.Data = r.arena[off : off+int(nbytes)]
		return req, nil

	case Delete:
		// delete <key> [noreply]
		if len(fs) < 2 || len(fs) > 3 {
			return Request{}, ErrBadLine
		}
		if len(fs[1]) > MaxKey {
			return Request{}, ErrKeyTooLong
		}
		if len(fs) == 3 {
			if string(fs[2]) != "noreply" {
				return Request{}, ErrBadLine
			}
			req.NoReply = true
		}
		r.hold(fs[1])
		req.Key = r.take(0)
		return req, nil

	case Incr, Decr:
		// incr <key> <delta> [noreply]
		if len(fs) < 3 || len(fs) > 4 {
			return Request{}, ErrBadLine
		}
		if len(fs[1]) > MaxKey {
			return Request{}, ErrKeyTooLong
		}
		delta, err := parseUint(fs[2], 64)
		if err != nil {
			return Request{}, err
		}
		if len(fs) == 4 {
			if string(fs[3]) != "noreply" {
				return Request{}, ErrBadLine
			}
			req.NoReply = true
		}
		req.Delta = delta
		r.hold(fs[1])
		req.Key = r.take(0)
		return req, nil

	default: // Version, Quit
		if len(fs) != 1 {
			return Request{}, ErrBadLine
		}
		return req, nil
	}
}

// Reply append helpers.

// AppendValue appends one retrieval hit:
// VALUE <key> <flags> <bytes>\r\n<data>\r\n. The END terminator is appended
// separately (AppendEnd) after the last hit of the get.
func AppendValue(dst, key []byte, flags uint32, data []byte) []byte {
	dst = append(dst, "VALUE "...)
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(len(data)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, data...)
	return append(dst, '\r', '\n')
}

// AppendEnd appends END\r\n.
func AppendEnd(dst []byte) []byte { return append(dst, "END\r\n"...) }

// AppendLine appends s\r\n (STORED, DELETED, NOT_FOUND, ERROR, VERSION ...).
func AppendLine(dst []byte, s string) []byte {
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// AppendUint appends an incr/decr result: <n>\r\n.
func AppendUint(dst []byte, n uint64) []byte {
	dst = strconv.AppendUint(dst, n, 10)
	return append(dst, '\r', '\n')
}

// AppendClientError appends CLIENT_ERROR <msg>\r\n.
func AppendClientError(dst []byte, msg string) []byte {
	dst = append(dst, "CLIENT_ERROR "...)
	dst = append(dst, msg...)
	return append(dst, '\r', '\n')
}
