package kmer

import (
	"testing"
	"testing/quick"
)

func TestReverseComplementKnown(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ACGT", "ACGT"}, // palindrome
		{"AAAA", "TTTT"},
		{"ACCA", "TGGT"},
		{"GATTACA", "TGTAATC"},
	}
	for _, c := range cases {
		k := len(c.in)
		it := NewIterator([]byte(c.in), k)
		km, _ := it.Next()
		got := Decode(ReverseComplement(km, k), k)
		if got != c.want {
			t.Errorf("revcomp(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	prop := func(v uint64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		var mask uint64
		if k == MaxK {
			mask = ^uint64(0)
		} else {
			mask = (1 << (2 * k)) - 1
		}
		v &= mask
		return ReverseComplement(ReverseComplement(v, k), k) == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalSymmetric(t *testing.T) {
	// Canonical(x) == Canonical(revcomp(x)): both strands map to one form.
	prop := func(v uint64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		var mask uint64
		if k == MaxK {
			mask = ^uint64(0)
		} else {
			mask = (1 << (2 * k)) - 1
		}
		v &= mask
		return Canonical(v, k) == Canonical(ReverseComplement(v, k), k)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalIteratorMatchesNaive(t *testing.T) {
	alphabet := []byte("ACGTN")
	prop := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = alphabet[int(b)%len(alphabet)]
		}
		want := naiveKmers(seq, k)
		it := NewCanonicalIterator(seq, k)
		for _, w := range want {
			got, ok := it.Next()
			if !ok || got != Canonical(w, k) {
				return false
			}
		}
		_, ok := it.Next()
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalCountingMergesStrands(t *testing.T) {
	// Counting a sequence and its reverse complement canonically must give
	// exactly doubled counts.
	seq := []byte("GATTACAGATTACAGGGTTT")
	rc := make([]byte, len(seq))
	comp := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C'}
	for i, b := range seq {
		rc[len(seq)-1-i] = comp[b]
	}
	one := MapCounter{}
	CountSequenceCanonical(one, seq, 5)
	both := MapCounter{}
	CountSequenceCanonical(both, seq, 5)
	CountSequenceCanonical(both, rc, 5)
	for km, n := range one {
		if both[km] != 2*n {
			t.Fatalf("k-mer %s: %d + revcomp strand = %d, want %d",
				Decode(km, 5), n, both[km], 2*n)
		}
	}
	if len(both) != len(one) {
		t.Fatalf("strand merge created new canonical k-mers: %d vs %d", len(both), len(one))
	}
}
