package kmer

import (
	"bytes"
	"testing"
)

// FuzzIterator checks that the k-mer iterator never panics and agrees with
// the naive reference on arbitrary byte soup.
func FuzzIterator(f *testing.F) {
	f.Add([]byte("ACGTACGT"), 4)
	f.Add([]byte("acgtNNNNacgt"), 3)
	f.Add([]byte{}, 1)
	f.Add([]byte("zzzz\x00\xff"), 2)
	f.Fuzz(func(t *testing.T, seq []byte, k int) {
		if k < 1 || k > MaxK {
			return
		}
		want := naiveKmers(seq, k)
		it := NewIterator(seq, k)
		for i := 0; ; i++ {
			km, ok := it.Next()
			if !ok {
				if i != len(want) {
					t.Fatalf("iterator yielded %d kmers, reference %d", i, len(want))
				}
				return
			}
			if i >= len(want) || km != want[i] {
				t.Fatalf("kmer %d mismatch", i)
			}
		}
	})
}

// FuzzFASTARoundTrip checks that any records we write parse back
// byte-identically, and that arbitrary input never panics the reader.
func FuzzFASTARoundTrip(f *testing.F) {
	f.Add([]byte(">x\nACGT\n"))
	f.Add([]byte("no header at all\n"))
	f.Add([]byte(";comment\n>\n\n>h\nGG\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, err := ReadFASTA(bytes.NewReader(raw))
		if err != nil {
			return // malformed input may error, but must not panic
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, recs); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFASTA(&buf)
		if err != nil {
			t.Fatalf("re-parse of our own output failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], again[i]) {
				t.Fatalf("record %d changed", i)
			}
		}
	})
}
