package kmer

import (
	"math/rand"

	"dramhit/internal/workload"
)

// GenomeProfile parameterizes a synthetic genome whose k-mer frequency
// distribution reproduces what the paper measured on its real datasets
// (§4.6): "kmers from sequencing data often have zipfian distribution...
// the 25 most accessed kmers occupy 50-86% of the dataset". The generator
// interleaves draws from a small library of repeat motifs (transposons,
// satellite repeats — the biological source of hot k-mers) with uniform
// random background sequence.
type GenomeProfile struct {
	// Name labels the profile in reports.
	Name string
	// Bases is the total genome length to generate.
	Bases int
	// RepeatFraction is the fraction of bases drawn from the repeat
	// library; the paper's D. melanogaster profile concentrates ~50% of
	// k-mers in the hottest 25, F. vesca up to 86%.
	RepeatFraction float64
	// Motifs is the number of distinct repeat motifs.
	Motifs int
	// MotifLen is each motif's length in bases.
	MotifLen int
	// Seed fixes the generated sequence.
	Seed int64
}

// DMelanogaster approximates the paper's 7.8 Gbase fruit-fly dataset at a
// laptop-simulable scale: the k-mer skew profile, not the absolute volume,
// is what drives Figure 12.
func DMelanogaster(bases int) GenomeProfile {
	return GenomeProfile{
		Name:           "d.melanogaster-like",
		Bases:          bases,
		RepeatFraction: 0.55,
		Motifs:         12,
		MotifLen:       360,
		Seed:           0x5f3759df,
	}
}

// FVesca approximates the 4.8 Gbase strawberry dataset, which the paper
// measures as even more skewed (hot 25 k-mers cover up to 86%).
func FVesca(bases int) GenomeProfile {
	return GenomeProfile{
		Name:           "f.vesca-like",
		Bases:          bases,
		RepeatFraction: 0.86,
		Motifs:         8,
		MotifLen:       280,
		Seed:           0x9e3779b9,
	}
}

// Generate produces the synthetic genome as a set of chromosome-like
// records (8 records, mirroring a multi-record FASTA).
func (p GenomeProfile) Generate() [][]byte {
	rng := rand.New(rand.NewSource(p.Seed))
	const bases = "ACGT"

	// Motifs are TANDEM repeats: a short random seed tiled to MotifLen,
	// like the satellite repeats of real genomes. A k-mer window sliding
	// over a tandem repeat of period p sees only p distinct k-mers, which
	// is what concentrates half the dataset onto a couple of dozen k-mers
	// (the paper's measured top-25 profile); long non-repetitive motifs
	// would spread the same mass over hundreds of distinct k-mers.
	motifs := make([][]byte, p.Motifs)
	for i := range motifs {
		period := 3 + rng.Intn(5)
		seed := make([]byte, period)
		for j := range seed {
			seed[j] = bases[rng.Intn(4)]
		}
		m := make([]byte, p.MotifLen)
		for j := range m {
			m[j] = seed[j%period]
		}
		motifs[i] = m
	}
	// Motif popularity is itself zipfian so a handful of motifs dominate,
	// concentrating mass on few k-mers as measured in the paper.
	motifZipf := workload.NewZipf(rng, uint64(p.Motifs), 1.0)

	const records = 8
	perRecord := p.Bases / records
	out := make([][]byte, records)
	for r := range out {
		rec := make([]byte, 0, perRecord)
		for len(rec) < perRecord {
			if rng.Float64() < p.RepeatFraction {
				rec = append(rec, motifs[motifZipf.Next()]...)
			} else {
				// A stretch of unique background sequence.
				n := 200 + rng.Intn(200)
				for i := 0; i < n; i++ {
					rec = append(rec, bases[rng.Intn(4)])
				}
			}
		}
		out[r] = rec[:perRecord]
	}
	return out
}

// SkewStats summarizes a k-mer frequency distribution: the fraction of all
// k-mer occurrences covered by the top-N distinct k-mers (the paper's
// "25 most accessed kmers occupy 50-86%" metric).
func SkewStats(counts map[uint64]uint64, topN int) (fraction float64, distinct int, total uint64) {
	top := make([]uint64, 0, topN+1)
	for _, c := range counts {
		total += c
		// Maintain the topN set with a simple insertion (topN is tiny).
		if len(top) < topN {
			top = append(top, c)
			for i := len(top) - 1; i > 0 && top[i] > top[i-1]; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
		} else if c > top[topN-1] {
			top[topN-1] = c
			for i := topN - 1; i > 0 && top[i] > top[i-1]; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
		}
	}
	var topSum uint64
	for _, c := range top {
		topSum += c
	}
	if total == 0 {
		return 0, 0, 0
	}
	return float64(topSum) / float64(total), len(counts), total
}
