package kmer

// Canonicalization: real k-mer counters (Jellyfish, KMC3, CHTKC) usually
// count a k-mer and its reverse complement as one, because sequencing reads
// come from either DNA strand. The paper disables canonicalization in CHTKC
// to match its benchmark ("we disable the canonicalization of kmers in
// CHTKC as we do not perform that operation"); this file provides it as an
// option so the counters here can also run in the standard genomics mode.

// revCompBase maps a 2-bit base to its complement: A<->T (0<->3), C<->G
// (1<->2) — which is simply XOR 3.

// ReverseComplement returns the reverse complement of a 2-bit packed k-mer.
func ReverseComplement(kmer uint64, k int) uint64 {
	var rc uint64
	for i := 0; i < k; i++ {
		rc = (rc << 2) | ((kmer & 3) ^ 3)
		kmer >>= 2
	}
	return rc
}

// Canonical returns the lexicographically smaller of a k-mer and its
// reverse complement — the standard canonical form.
func Canonical(kmer uint64, k int) uint64 {
	rc := ReverseComplement(kmer, k)
	if rc < kmer {
		return rc
	}
	return kmer
}

// CanonicalIterator wraps Iterator, yielding canonical k-mers. It maintains
// the reverse complement incrementally, so canonicalization costs O(1) per
// base instead of O(k).
type CanonicalIterator struct {
	it      *Iterator
	k       int
	rcShift uint
	rc      uint64
	lastPos int
}

// NewCanonicalIterator creates a canonical k-mer iterator over seq.
func NewCanonicalIterator(seq []byte, k int) *CanonicalIterator {
	return &CanonicalIterator{
		it:      NewIterator(seq, k),
		k:       k,
		rcShift: uint(2 * (k - 1)),
		lastPos: -2,
	}
}

// Next returns the next canonical k-mer.
func (c *CanonicalIterator) Next() (uint64, bool) {
	km, ok := c.it.Next()
	if !ok {
		return 0, false
	}
	if c.it.pos == c.lastPos+1 {
		// Contiguous window: update the reverse complement incrementally —
		// the new base enters at the high end of rc.
		newBase := km & 3
		c.rc = (c.rc >> 2) | ((newBase ^ 3) << c.rcShift)
	} else {
		// Window restarted (start of sequence or after an N): recompute.
		c.rc = ReverseComplement(km, c.k)
	}
	c.lastPos = c.it.pos
	if c.rc < km {
		return c.rc, true
	}
	return km, true
}

// CountSequenceCanonical feeds every canonical k-mer of seq into the
// counter.
func CountSequenceCanonical(c Counter, seq []byte, k int) int {
	it := NewCanonicalIterator(seq, k)
	n := 0
	for {
		km, ok := it.Next()
		if !ok {
			return n
		}
		c.Count(km)
		n++
	}
}
