package kmer

import (
	"bytes"
	"strings"
	"testing"

	"dramhit/internal/chtkc"
	"dramhit/internal/dramhit"
	"dramhit/internal/dramhitp"
	"dramhit/internal/folklore"
)

func TestIteratorBasic(t *testing.T) {
	it := NewIterator([]byte("ACGTA"), 3)
	want := []string{"ACG", "CGT", "GTA"}
	for i, w := range want {
		km, ok := it.Next()
		if !ok {
			t.Fatalf("iterator ended early at %d", i)
		}
		if got := Decode(km, 3); got != w {
			t.Errorf("kmer %d = %s, want %s", i, got, w)
		}
	}
	if _, ok := it.Next(); ok {
		t.Error("iterator did not end")
	}
}

func TestIteratorSkipsInvalidBases(t *testing.T) {
	// N breaks the window: ACGNTT yields only windows entirely within
	// valid runs.
	it := NewIterator([]byte("ACGNTTT"), 3)
	var got []string
	for {
		km, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, Decode(km, 3))
	}
	want := []string{"ACG", "TTT"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestIteratorLowercaseAndShort(t *testing.T) {
	it := NewIterator([]byte("acgt"), 4)
	km, ok := it.Next()
	if !ok || Decode(km, 4) != "ACGT" {
		t.Errorf("lowercase parse failed: %v %v", Decode(km, 4), ok)
	}
	// Sequence shorter than k yields nothing.
	it2 := NewIterator([]byte("AC"), 3)
	if _, ok := it2.Next(); ok {
		t.Error("short sequence yielded a k-mer")
	}
}

func TestIteratorK32(t *testing.T) {
	seq := bytes.Repeat([]byte("ACGT"), 20)
	it := NewIterator(seq, 32)
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != len(seq)-31 {
		t.Errorf("k=32 yielded %d kmers, want %d", n, len(seq)-31)
	}
}

func TestIteratorPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d did not panic", k)
				}
			}()
			NewIterator([]byte("ACGT"), k)
		}()
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	it := NewIterator([]byte("GATTACA"), 7)
	km, ok := it.Next()
	if !ok || Decode(km, 7) != "GATTACA" {
		t.Fatalf("round trip failed: %s %v", Decode(km, 7), ok)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	records := [][]byte{
		[]byte("ACGTACGTACGT"),
		bytes.Repeat([]byte("GATTACA"), 30),
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("got %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Errorf("record %d corrupted", i)
		}
	}
}

func TestFASTAHeadersAndBlankLines(t *testing.T) {
	in := ">chr1 description\nACGT\nACGT\n\n>chr2\nTTTT\n;comment\nGGGG\n"
	got, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		// ACGTACGT, TTTT, GGGG — the comment line splits chr2. Standard
		// FASTA treats ';' as comment; our reader flushes on it, which is
		// conservative but never merges unrelated sequence.
		t.Fatalf("got %d records: %q", len(got), got)
	}
	if string(got[0]) != "ACGTACGT" {
		t.Errorf("record 0 = %s", got[0])
	}
}

func TestSyntheticGenomeSkewProfile(t *testing.T) {
	// The generated genomes must reproduce the paper's measured profile:
	// top-25 k-mers covering 50–86% of the dataset.
	for _, p := range []GenomeProfile{DMelanogaster(400_000), FVesca(400_000)} {
		recs := p.Generate()
		counts := MapCounter{}
		total := 0
		for _, r := range recs {
			total += CountSequence(counts, r, 16)
		}
		frac, distinct, sum := SkewStats(map[uint64]uint64(counts), 25)
		if frac < 0.40 || frac > 0.92 {
			t.Errorf("%s: top-25 fraction %.2f outside the paper's 0.5-0.86 band", p.Name, frac)
		}
		if distinct < 1000 {
			t.Errorf("%s: only %d distinct k-mers", p.Name, distinct)
		}
		if sum != uint64(total) {
			t.Errorf("%s: count sum %d != kmers processed %d", p.Name, sum, total)
		}
	}
}

func TestFVescaMoreSkewedThanDMel(t *testing.T) {
	topFrac := func(p GenomeProfile) float64 {
		counts := MapCounter{}
		for _, r := range p.Generate() {
			CountSequence(counts, r, 16)
		}
		f, _, _ := SkewStats(map[uint64]uint64(counts), 25)
		return f
	}
	d := topFrac(DMelanogaster(300_000))
	f := topFrac(FVesca(300_000))
	if f <= d {
		t.Errorf("F.vesca profile (%.2f) should be more skewed than D.melanogaster (%.2f)", f, d)
	}
}

func TestGenomeDeterministic(t *testing.T) {
	a := DMelanogaster(50_000).Generate()
	b := DMelanogaster(50_000).Generate()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatal("generation is not deterministic")
		}
	}
}

// countersAgree runs every backend over the same genome and cross-checks
// all counts against the map reference.
func TestAllCountersAgree(t *testing.T) {
	recs := DMelanogaster(60_000).Generate()
	const k = 12

	ref := MapCounter{}
	for _, r := range recs {
		CountSequence(ref, r, k)
	}

	// DRAMHiT.
	dt := dramhit.New(dramhit.Config{Slots: 1 << 17})
	dc := NewDRAMHiTCounter(dt.NewHandle(), 16)
	for _, r := range recs {
		CountSequence(dc, r, k)
	}
	dc.Flush()

	// Folklore.
	ft := folklore.New(1 << 17)
	fc := FolkloreCounter{T: ft}
	for _, r := range recs {
		CountSequence(fc, r, k)
	}

	// DRAMHiT-P.
	pt := dramhitp.New(dramhitp.Config{Slots: 1 << 17, Producers: 1, Consumers: 2})
	pt.Start()
	defer pt.Close()
	pc := PartitionedCounter{W: pt.NewWriteHandle(), R: pt.NewReadHandle()}
	for _, r := range recs {
		CountSequence(pc, r, k)
	}
	pc.W.Barrier()

	// CHTKC.
	ct := chtkc.New(1 << 16)
	cc := NewCHTKCCounter(ct)
	for _, r := range recs {
		CountSequence(cc, r, k)
	}

	checked := 0
	for km, want := range ref {
		for name, c := range map[string]Counter{"dramhit": dc, "folklore": fc, "dramhit-p": pc, "chtkc": cc} {
			got, ok := c.Get(km)
			if !ok || got != want {
				t.Fatalf("%s: count(%s) = (%d, %v), want %d", name, Decode(km, k), got, ok, want)
			}
		}
		checked++
		if checked > 2000 {
			break // plenty of coverage; Get on some backends is not free
		}
	}
	pc.W.Close()
}

func TestCHTKCConcurrent(t *testing.T) {
	tbl := chtkc.New(4096)
	recs := DMelanogaster(40_000).Generate()
	const k = 10
	done := make(chan MapCounter, len(recs))
	for _, r := range recs {
		go func(r []byte) {
			local := MapCounter{}
			pool := NewCHTKCCounter(tbl)
			it := NewIterator(r, k)
			for {
				km, ok := it.Next()
				if !ok {
					break
				}
				pool.Count(km)
				local.Count(km)
			}
			pool.Flush() // release coalesced counts before reporting
			done <- local
		}(r)
	}
	ref := MapCounter{}
	for range recs {
		for km, c := range <-done {
			ref[km] += c
		}
	}
	for km, want := range ref {
		if got, ok := tbl.Get(km); !ok || got != want {
			t.Fatalf("concurrent chtkc count(%s) = (%d,%v), want %d", Decode(km, k), got, ok, want)
		}
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tbl.Len(), len(ref))
	}
	if tbl.MaxChain() < 1 {
		t.Error("MaxChain returned nonsense")
	}
}
