// Package kmer implements the k-mer counting macrobenchmark of the paper's
// §4.6: FASTA parsing, 2-bit k-mer encoding with a rolling window, synthetic
// genome generation reproducing the skew profile the paper measures on
// D. melanogaster and F. vesca (the 25 hottest k-mers covering 50–86% of the
// dataset), and counters built on each hash table's upsert operation.
package kmer

import (
	"bufio"
	"fmt"
	"io"
)

// MaxK is the largest k encodable in a uint64 with 2 bits per base.
const MaxK = 32

// base encodings. Any non-ACGT character breaks the current window
// (standard k-mer counter behaviour for N runs).
var baseCode = ['t' + 1]int8{
	'A': 0, 'C': 1, 'G': 2, 'T': 3,
	'a': 0, 'c': 1, 'g': 2, 't': 3,
}

func codeOf(b byte) int8 {
	if int(b) >= len(baseCode) {
		return -1
	}
	c := baseCode[b]
	if c == 0 && b != 'A' && b != 'a' {
		return -1
	}
	return c
}

// Iterator yields the 2-bit packed k-mers of a sequence with a rolling
// window. Windows containing non-ACGT characters are skipped.
type Iterator struct {
	seq  []byte
	k    int
	mask uint64
	cur  uint64
	// have counts valid bases accumulated in the current window.
	have int
	pos  int
}

// NewIterator creates a k-mer iterator over seq.
func NewIterator(seq []byte, k int) *Iterator {
	if k < 1 || k > MaxK {
		panic(fmt.Sprintf("kmer: k=%d out of range 1..%d", k, MaxK))
	}
	var mask uint64
	if k == MaxK {
		mask = ^uint64(0)
	} else {
		mask = (1 << (2 * k)) - 1
	}
	return &Iterator{seq: seq, k: k, mask: mask}
}

// Next returns the next k-mer; ok is false at the end of the sequence.
func (it *Iterator) Next() (kmer uint64, ok bool) {
	for it.pos < len(it.seq) {
		c := codeOf(it.seq[it.pos])
		it.pos++
		if c < 0 {
			it.have = 0
			it.cur = 0
			continue
		}
		it.cur = ((it.cur << 2) | uint64(c)) & it.mask
		if it.have < it.k {
			it.have++
		}
		if it.have == it.k {
			return it.cur, true
		}
	}
	return 0, false
}

// Decode converts a packed k-mer back to its base string (for diagnostics).
func Decode(kmer uint64, k int) string {
	const bases = "ACGT"
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = bases[kmer&3]
		kmer >>= 2
	}
	return string(out)
}

// ReadFASTA parses all sequence records from a FASTA stream, concatenating
// each record's lines. Record boundaries are preserved by returning one
// []byte per record so k-mers never span records.
func ReadFASTA(r io.Reader) ([][]byte, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var records [][]byte
	var cur []byte
	flush := func() {
		if len(cur) > 0 {
			records = append(records, cur)
			cur = nil
		}
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' || line[0] == ';' {
			flush()
			continue
		}
		cur = append(cur, line...)
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kmer: reading FASTA: %w", err)
	}
	return records, nil
}

// WriteFASTA emits records in FASTA format with 70-column wrapping.
func WriteFASTA(w io.Writer, records [][]byte) error {
	bw := bufio.NewWriter(w)
	for i, rec := range records {
		if _, err := fmt.Fprintf(bw, ">record_%d\n", i); err != nil {
			return err
		}
		for off := 0; off < len(rec); off += 70 {
			end := off + 70
			if end > len(rec) {
				end = len(rec)
			}
			bw.Write(rec[off:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// Counter is the minimal interface a k-mer counter backend must provide:
// Upsert semantics identical to the hash tables' (insert 1 or add 1).
type Counter interface {
	// Count adds one occurrence of the k-mer.
	Count(kmer uint64)
	// Get returns the count for a k-mer.
	Get(kmer uint64) (uint64, bool)
}

// CountSequence feeds every k-mer of seq into the counter and returns the
// number of k-mers processed.
func CountSequence(c Counter, seq []byte, k int) int {
	it := NewIterator(seq, k)
	n := 0
	for {
		km, ok := it.Next()
		if !ok {
			return n
		}
		c.Count(km)
		n++
	}
}

// MapCounter is the reference implementation backed by a plain map (tests
// compare every other backend against it).
type MapCounter map[uint64]uint64

// Count implements Counter.
func (m MapCounter) Count(kmer uint64) { m[kmer]++ }

// Get implements Counter.
func (m MapCounter) Get(kmer uint64) (uint64, bool) {
	v, ok := m[kmer]
	return v, ok
}
