package kmer

import (
	"dramhit/internal/chtkc"
	"dramhit/internal/dramhit"
	"dramhit/internal/dramhitp"
	"dramhit/internal/folklore"
	"dramhit/internal/table"
)

// DRAMHiTCounter counts k-mers through a dramhit.Handle's batched upsert
// pipeline, accumulating requests into submission batches exactly as the
// paper's macrobenchmark does ("submit upsertion requests in batches of 16
// requests, which relies on a local array to accumulate the batch").
type DRAMHiTCounter struct {
	h     *dramhit.Handle
	batch []table.Request
	size  int
}

// NewDRAMHiTCounter wraps a handle with a batch accumulator of the given
// size (0 selects 16).
func NewDRAMHiTCounter(h *dramhit.Handle, batchSize int) *DRAMHiTCounter {
	if batchSize <= 0 {
		batchSize = 16
	}
	return &DRAMHiTCounter{h: h, batch: make([]table.Request, 0, batchSize), size: batchSize}
}

// Count implements Counter.
func (c *DRAMHiTCounter) Count(kmer uint64) {
	c.batch = append(c.batch, table.Request{Op: table.Upsert, Key: kmer, Value: 1})
	if len(c.batch) == c.size {
		c.flushBatch()
	}
}

func (c *DRAMHiTCounter) flushBatch() {
	rem := c.batch
	for len(rem) > 0 {
		n, _ := c.h.Submit(rem, nil)
		rem = rem[n:]
	}
	c.batch = c.batch[:0]
}

// Flush drains both the accumulator and the prefetch pipeline; call at the
// end of the dataset.
func (c *DRAMHiTCounter) Flush() {
	c.flushBatch()
	for {
		if _, done := c.h.Flush(nil); done {
			return
		}
	}
}

// Get implements Counter (synchronous; flushes first).
func (c *DRAMHiTCounter) Get(kmer uint64) (uint64, bool) {
	c.Flush()
	reqs := [1]table.Request{{Op: table.Get, Key: kmer}}
	var resps [2]table.Response
	_, n := c.h.Submit(reqs[:], resps[:])
	for {
		more, done := c.h.Flush(resps[n:])
		n += more
		if done {
			break
		}
	}
	if n == 0 {
		return 0, false
	}
	return resps[0].Value, resps[0].Found
}

// FolkloreCounter counts through the synchronous baseline.
type FolkloreCounter struct{ T *folklore.Table }

// Count implements Counter.
func (c FolkloreCounter) Count(kmer uint64) { c.T.Upsert(kmer, 1) }

// Get implements Counter.
func (c FolkloreCounter) Get(kmer uint64) (uint64, bool) { return c.T.Get(kmer) }

// PartitionedCounter counts through a DRAMHiT-P write handle (delegated,
// fire-and-forget upserts) and reads through a read handle.
type PartitionedCounter struct {
	W *dramhitp.WriteHandle
	R *dramhitp.ReadHandle
}

// Count implements Counter.
func (c PartitionedCounter) Count(kmer uint64) { c.W.Upsert(kmer, 1) }

// Get implements Counter (barriers for read-your-writes).
func (c PartitionedCounter) Get(kmer uint64) (uint64, bool) {
	c.W.Barrier()
	return c.R.Get(kmer)
}

// CHTKCCounter counts through the chained baseline, coalescing duplicate
// k-mers in a small window before touching the shared table: genomic
// streams repeat k-mers in close succession (homopolymer runs, repeats),
// and a folded run pays one bucket walk and one atomic add via
// chtkc.Pool.CountN instead of one of each per occurrence.
type CHTKCCounter struct {
	T     *chtkc.Table
	P     *chtkc.Pool
	ckeys [16]uint64
	ccnts [16]uint64
	cn    int
	// Combined counts occurrences folded into a held entry.
	Combined uint64
}

// NewCHTKCCounter creates a counter with its own node pool.
func NewCHTKCCounter(t *chtkc.Table) *CHTKCCounter {
	return &CHTKCCounter{T: t, P: t.NewPool()}
}

// Count implements Counter.
func (c *CHTKCCounter) Count(kmer uint64) {
	for i := 0; i < c.cn; i++ {
		if c.ckeys[i] == kmer {
			c.ccnts[i]++
			c.Combined++
			return
		}
	}
	if c.cn == len(c.ckeys) {
		c.Flush()
	}
	c.ckeys[c.cn] = kmer
	c.ccnts[c.cn] = 1
	c.cn++
}

// Flush releases held counts into the shared table; call at the end of the
// dataset (Get flushes implicitly).
func (c *CHTKCCounter) Flush() {
	for i := 0; i < c.cn; i++ {
		c.P.CountN(c.ckeys[i], c.ccnts[i])
	}
	c.cn = 0
}

// Get implements Counter.
func (c *CHTKCCounter) Get(kmer uint64) (uint64, bool) {
	c.Flush()
	return c.T.Get(kmer)
}
