package kmer

import (
	"testing"
	"testing/quick"
)

// naiveKmers is an obviously-correct reference: enumerate every substring
// of length k consisting solely of ACGT and pack it.
func naiveKmers(seq []byte, k int) []uint64 {
	var out []uint64
	for i := 0; i+k <= len(seq); i++ {
		var v uint64
		ok := true
		for j := 0; j < k; j++ {
			c := codeOf(seq[i+j])
			if c < 0 {
				ok = false
				break
			}
			v = v<<2 | uint64(c)
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}

func TestIteratorMatchesNaiveReference(t *testing.T) {
	alphabet := []byte("ACGTNacgtX")
	prop := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = alphabet[int(b)%len(alphabet)]
		}
		want := naiveKmers(seq, k)
		it := NewIterator(seq, k)
		var got []uint64
		for {
			km, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, km)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeEncodeRoundTripQuick(t *testing.T) {
	prop := func(v uint64, kRaw uint8) bool {
		k := int(kRaw)%MaxK + 1
		var mask uint64
		if k == MaxK {
			mask = ^uint64(0)
		} else {
			mask = (1 << (2 * k)) - 1
		}
		v &= mask
		s := Decode(v, k)
		it := NewIterator([]byte(s), k)
		got, ok := it.Next()
		return ok && got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSkewStatsProperties(t *testing.T) {
	prop := func(counts []uint16) bool {
		m := map[uint64]uint64{}
		var total uint64
		for i, c := range counts {
			if c == 0 {
				continue
			}
			m[uint64(i)] = uint64(c)
			total += uint64(c)
		}
		frac, distinct, sum := SkewStats(m, 25)
		if sum != total || distinct != len(m) {
			return false
		}
		if len(m) == 0 {
			return frac == 0
		}
		// Fraction in [something sane, 1]; with ≤25 keys it must be exactly 1.
		if frac < 0 || frac > 1.0000001 {
			return false
		}
		if len(m) <= 25 && frac < 0.999999 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
