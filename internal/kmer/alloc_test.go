package kmer

import (
	"testing"

	"dramhit/internal/chtkc"
	"dramhit/internal/dramhit"
)

// TestDRAMHiTCounterZeroAllocSteadyState pins the counting hot loop's
// allocation behaviour: the batch accumulator is reused (append into
// retained capacity, reset with [:0]) and the handle's combining arena
// recycles its merged nodes, so after warmup a Count — including the every
// 16th call that flushes a whole batch through Submit — allocates nothing.
func TestDRAMHiTCounterZeroAllocSteadyState(t *testing.T) {
	tbl := dramhit.New(dramhit.Config{Slots: 1 << 16})
	c := NewDRAMHiTCounter(tbl.NewHandle(), 16)
	// Warmup: populate the hot keys, grow the merged-node arena to its
	// steady-state size, and exercise every batch-flush path once.
	for i := 0; i < 10_000; i++ {
		c.Count(uint64(1 + i%64))
	}
	c.Flush()
	var k uint64
	if avg := testing.AllocsPerRun(2000, func() {
		c.Count(1 + k%64)
		k++
	}); avg != 0 {
		t.Fatalf("Count allocates %.2f per op in steady state, want 0", avg)
	}
	c.Flush()
}

// TestCHTKCCounterZeroAllocSteadyState is the same pin for the chained
// baseline: the coalescing window is two fixed arrays and the node pool
// only allocates when a block of 4096 fresh keys is exhausted, so counting
// resident keys allocates nothing.
func TestCHTKCCounterZeroAllocSteadyState(t *testing.T) {
	c := NewCHTKCCounter(chtkc.New(1 << 12))
	for i := 0; i < 10_000; i++ {
		c.Count(uint64(1 + i%64))
	}
	c.Flush()
	var k uint64
	if avg := testing.AllocsPerRun(2000, func() {
		c.Count(1 + k%64)
		k++
	}); avg != 0 {
		t.Fatalf("Count allocates %.2f per op in steady state, want 0", avg)
	}
}
