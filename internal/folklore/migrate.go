// Migration primitives used by the resizing wrapper (internal/growt): a
// probe that locates a key's live slot, an insert-if-absent for copying
// entries into a successor table, and a slot-range migrator that freezes
// old-generation slots with table.MovedKey.
//
// The key-word state machine gains one terminal transition during a
// migration window:
//
//	EmptyKey → key → TombstoneKey   (delete; unchanged)
//	            key → MovedKey      (migrated; new)
//
// Both terminal states are treated identically by the probe loops — the slot
// is skipped, never reused — so readers need no awareness of an in-progress
// migration beyond the old-then-new lookup order growt imposes.
//
// Exclusivity contract: MigrateRange assumes no concurrent writers mutate
// the migrated table (growt guarantees this — the successor is installed
// under the exclusive gate, after which every write is redirected to the new
// generation). Concurrent readers are always safe: the copy publishes the
// entry in the destination before the MovedKey mark retires the source, so
// any reader that misses the old slot finds the new one.
package folklore

import "dramhit/internal/table"

// Used returns the number of claimed slots, including tombstones and
// MovedKey marks — the quantity Fill is computed from. Tests and the
// migration property suite use it to assert that tombstones never survive a
// completed resize (Used == Len on a freshly migrated table).
func (t *Table) Used() int { return int(t.used.Load()) }

// Locate returns the array slot currently holding key live, and whether one
// was found. Reserved keys live in side slots, never in the array, so they
// always report not-found. The result is a snapshot: the slot can be
// tombstoned or migrated by the time the caller acts on it, which the
// callers (growt's relocation path) tolerate — both transitions are
// terminal, so a stale slot index can never point at a different key.
func (t *Table) Locate(key uint64) (uint64, bool) {
	if t.side.For(key) != nil {
		return 0, false
	}
	i := t.index(key)
	for probes := uint64(0); probes < t.size; probes++ {
		switch t.arr.Key(i) {
		case key:
			return i, true
		case table.EmptyKey:
			return 0, false
		}
		i = t.step(i)
	}
	return 0, false
}

// PutIfAbsent stores value for key only if the key is not present, and
// reports whether it inserted. It is the copy primitive of migration: a
// migrated entry must never overwrite a newer value written directly to the
// successor table. Returns false without writing when the key is already
// live (the new generation won the race) and also — like Put — when the
// table has no free slot on the probe path.
func (t *Table) PutIfAbsent(key, value uint64) bool {
	if s := t.side.For(key); s != nil {
		if _, ok := s.Get(); ok {
			return false
		}
		s.Put(value)
		return true
	}
	i := t.index(key)
	for probes := uint64(0); probes < t.size; probes++ {
		switch t.arr.Key(i) {
		case key:
			return false
		case table.EmptyKey:
			if t.arr.CASKey(i, table.EmptyKey, key) {
				t.arr.StoreValue(i, value)
				t.used.Add(1)
				t.live.Add(1)
				return true
			}
			continue // claim race: re-inspect the slot
		}
		i = t.step(i)
	}
	return false
}

// MigrateRange migrates the live entries of slots [lo, hi) into dst and
// returns how many entries it moved. Each live slot is copied with
// insert-if-absent, then retired by CASing its key word to table.MovedKey
// (copy-then-kill: publish in dst strictly before retiring the source, so
// old-then-new readers never miss the entry). Tombstones and already-moved
// slots are skipped — this is where tombstone space is reclaimed, exactly as
// the paper requires ("The space is freed only when the hash table is
// resized"). The caller must guarantee range-exclusivity (one migrator per
// range, no concurrent writers to this table); see the package comment.
func (t *Table) MigrateRange(lo, hi uint64, dst *Table) int {
	return t.MigrateRangeTo(lo, hi, func(uint64) *Table { return dst })
}

// MigrateRangeTo is the cross-shard generalization of MigrateRange: each live
// entry's destination table is chosen per key by dst, so one pass over a
// source range can scatter entries across the two successor shards of a split
// (internal/shardmap routes by a selector-hash bit) just as it funnels them
// into the single successor of a resize or a merge. The protocol is
// unchanged — publish in the destination with insert-if-absent, then retire
// the source slot with table.MovedKey — so the old-then-new read discipline
// and the relocate-before-write rule carry over verbatim; only the "new"
// side of a lookup must consult dst(key) rather than a fixed successor. The
// same exclusivity contract applies.
func (t *Table) MigrateRangeTo(lo, hi uint64, dst func(key uint64) *Table) int {
	if hi > t.size {
		hi = t.size
	}
	moved := 0
	for i := lo; i < hi; i++ {
		k := t.arr.Key(i)
		if table.IsReservedKey(k) {
			continue // empty, tombstone, or already moved
		}
		v := t.arr.WaitValue(i)
		dst(k).PutIfAbsent(k, v)
		// Under the exclusivity contract nothing else transitions this key
		// word, so the CAS cannot lose; the check is defensive.
		if t.arr.CASKey(i, k, table.MovedKey) {
			t.live.Add(-1)
			moved++
		}
	}
	return moved
}
