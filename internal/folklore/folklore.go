// Package folklore implements the Folklore concurrent hash table of Maier,
// Sanders and Dementiev ("Concurrent Hash Tables: Fast and General(?)!",
// ACM TOPC 2019), the baseline the DRAMHiT paper measures against and builds
// upon. Folklore is a lock-free open-addressing table with linear probing: a
// single CAS on the key word claims a slot, updates atomically store the
// value word, and the read path uses no atomic read-modify-write at all, so
// concurrent readers keep their cached copies in the MESI shared state.
//
// The interface is synchronous — one request at a time — which is exactly
// what DRAMHiT changes: every operation here eats its cache miss on the
// critical path.
package folklore

import (
	"sync/atomic"
	"time"

	"dramhit/internal/hashfn"
	"dramhit/internal/obs"
	"dramhit/internal/slotarr"
	"dramhit/internal/table"
)

// Table is a Folklore hash table. All methods are safe for concurrent use.
type Table struct {
	arr  *slotarr.Array
	side slotarr.SidePair
	hash func(uint64) uint64
	size uint64
	used atomic.Int64 // claimed slots, including tombstones (capacity accounting)
	live atomic.Int64 // present entries, excluding tombstones
	obs  *obsCounters // nil unless Observe was called
}

// obsCounters are the table's hot-path observability counters. Folklore has
// no per-goroutine handle to shard by, so each counter stripes over padded
// cells keyed by the operation's home slot — well-distributed by the hash,
// so concurrent operators rarely collide on a counter cache line.
type obsCounters struct {
	ops    *obs.ShardedCounter // completed operations
	probes *obs.ShardedCounter // slots inspected
	hits   *obs.ShardedCounter // Gets that found / Deletes that removed

	// w holds the per-op-class latency histograms when the registry armed
	// EnableOpLatency before Observe. Folklore has no per-goroutine handle,
	// so every operator records into this one Worker — sound because
	// Histogram is bucket-atomic, at the price of shared-line contention
	// the handle-sharded tables don't pay. The hot-key sketch is NOT fed
	// here for the same structural reason: TopK is writer-private by
	// design, and folklore has no single writer to own one.
	w     *obs.Worker
	opLat bool
}

// Observe attaches the table to the observability registry: per-op counters
// stripe over padded cells (see obsCounters), a pull source reports
// table-level aggregates at scrape time, and a heatmap source walks the slot
// array on demand. If the registry armed EnableOpLatency before this call,
// every operation is additionally timed into per-op-class histograms. Call
// before the table is shared; a table without Observe pays one nil check per
// operation and nothing else.
func (t *Table) Observe(reg *obs.Registry) {
	oc := &obsCounters{
		ops:    obs.NewShardedCounter(64),
		probes: obs.NewShardedCounter(64),
		hits:   obs.NewShardedCounter(64),
		w:      reg.Worker("folklore"),
		opLat:  reg.OpLatencyEnabled(),
	}
	t.obs = oc
	reg.AddHeatmapSource("folklore", t.Heatmap)
	reg.AddSource("folklore", func() map[string]float64 {
		return map[string]float64{
			"ops":         float64(oc.ops.Total()),
			"probe_slots": float64(oc.probes.Total()),
			"hits":        float64(oc.hits.Total()),
			"live":        float64(t.Len()),
			"slots":       float64(t.Cap()),
			"fill":        t.Fill(),
		}
	})
}

// obsRec records one completed operation that inspected `slots` slots.
func (t *Table) obsRec(home, slots uint64, hit bool) {
	o := t.obs
	o.ops.Inc(home)
	o.probes.Add(home, slots)
	if hit {
		o.hits.Inc(home)
	}
}

// Option configures a Table.
type Option func(*Table)

// WithHash overrides the hash function (the default is hashfn.City64;
// hashfn.CRC64 matches the paper's CRC32-based configuration).
func WithHash(h func(uint64) uint64) Option {
	return func(t *Table) { t.hash = h }
}

// New creates a table with n slots. Values equal to slotarr.InFlightValue
// are reserved and must not be stored.
func New(n uint64, opts ...Option) *Table {
	t := &Table{arr: slotarr.New(n), hash: hashfn.City64, size: n}
	for _, o := range opts {
		o(t)
	}
	return t
}

// index returns the home slot of key.
func (t *Table) index(key uint64) uint64 {
	return hashfn.Fastrange(t.hash(key), t.size)
}

// step advances a probe index with wraparound.
func (t *Table) step(i uint64) uint64 {
	i++
	if i == t.size {
		return 0
	}
	return i
}

// opStart returns the operation start timestamp when per-op latency is
// armed, else 0. The paired opEnd records into the shared Worker's class
// histogram. Two time.Now calls per op — the same price the pipelined
// tables' latency hook quotes — paid only when EnableOpLatency was set.
func (t *Table) opStart() int64 {
	if o := t.obs; o != nil && o.opLat {
		return time.Now().UnixNano()
	}
	return 0
}

func (t *Table) opEnd(start int64, op table.Op, hit bool) {
	if start != 0 {
		t.obs.w.Op[obs.OpClass(op, hit)].Record(uint64(time.Now().UnixNano() - start))
	}
}

// Get returns the value stored for key and whether it was present.
func (t *Table) Get(key uint64) (uint64, bool) {
	start := t.opStart()
	v, ok := t.get(key)
	t.opEnd(start, table.Get, ok)
	return v, ok
}

func (t *Table) get(key uint64) (uint64, bool) {
	if s := t.side.For(key); s != nil {
		v, ok := s.Get()
		if t.obs != nil {
			t.obsRec(0, 0, ok)
		}
		return v, ok
	}
	i := t.index(key)
	home := i
	for probes := uint64(0); probes < t.size; probes++ {
		switch k := t.arr.Key(i); k {
		case key:
			if t.obs != nil {
				t.obsRec(home, probes+1, true)
			}
			return t.arr.WaitValue(i), true
		case table.EmptyKey:
			if t.obs != nil {
				t.obsRec(home, probes+1, false)
			}
			return 0, false
		}
		i = t.step(i)
	}
	if t.obs != nil {
		t.obsRec(home, t.size, false)
	}
	return 0, false
}

// Put stores value for key, overwriting silently. It returns false only if
// the table has no free slot left on the probe path (table full).
func (t *Table) Put(key, value uint64) bool {
	start := t.opStart()
	ok := t.put(key, value)
	t.opEnd(start, table.Put, ok)
	return ok
}

func (t *Table) put(key, value uint64) bool {
	if s := t.side.For(key); s != nil {
		s.Put(value)
		if t.obs != nil {
			t.obsRec(0, 0, false)
		}
		return true
	}
	i := t.index(key)
	home := i
	for probes := uint64(0); probes < t.size; probes++ {
		switch k := t.arr.Key(i); k {
		case key:
			t.arr.StoreValue(i, value)
			if t.obs != nil {
				t.obsRec(home, probes+1, false)
			}
			return true
		case table.EmptyKey:
			if t.arr.CASKey(i, table.EmptyKey, key) {
				t.arr.StoreValue(i, value)
				t.used.Add(1)
				t.live.Add(1)
				if t.obs != nil {
					t.obsRec(home, probes+1, false)
				}
				return true
			}
			// Lost the claim race; re-inspect the same slot, which now
			// holds some key (possibly ours).
			continue
		}
		// Occupied by another key or a tombstone (never reused): keep
		// probing.
		i = t.step(i)
	}
	if t.obs != nil {
		t.obsRec(home, t.size, false)
	}
	return false
}

// Upsert adds delta to the value for key, inserting delta if the key is
// absent. It returns the resulting value, and false only if the table is
// full.
func (t *Table) Upsert(key, delta uint64) (uint64, bool) {
	start := t.opStart()
	v, ok := t.upsert(key, delta)
	t.opEnd(start, table.Upsert, ok)
	return v, ok
}

func (t *Table) upsert(key, delta uint64) (uint64, bool) {
	if s := t.side.For(key); s != nil {
		v, _ := s.Upsert(delta)
		if t.obs != nil {
			t.obsRec(0, 0, false)
		}
		return v, true
	}
	i := t.index(key)
	home := i
	for probes := uint64(0); probes < t.size; probes++ {
		switch k := t.arr.Key(i); k {
		case key:
			if t.obs != nil {
				t.obsRec(home, probes+1, false)
			}
			return t.arr.AddValue(i, delta), true
		case table.EmptyKey:
			if t.arr.CASKey(i, table.EmptyKey, key) {
				t.arr.StoreValue(i, delta)
				t.used.Add(1)
				t.live.Add(1)
				if t.obs != nil {
					t.obsRec(home, probes+1, false)
				}
				return delta, true
			}
			continue
		}
		i = t.step(i)
	}
	if t.obs != nil {
		t.obsRec(home, t.size, false)
	}
	return 0, false
}

// Delete marks key's slot as a tombstone, returning whether the key was
// present. Tombstoned slots are never reused; space is reclaimed on resize
// only.
func (t *Table) Delete(key uint64) bool {
	start := t.opStart()
	hit := t.del(key)
	t.opEnd(start, table.Delete, hit)
	return hit
}

func (t *Table) del(key uint64) bool {
	if s := t.side.For(key); s != nil {
		ok := s.Delete()
		if t.obs != nil {
			t.obsRec(0, 0, ok)
		}
		return ok
	}
	i := t.index(key)
	home := i
	for probes := uint64(0); probes < t.size; probes++ {
		switch k := t.arr.Key(i); k {
		case key:
			if t.arr.CASKey(i, key, table.TombstoneKey) {
				t.live.Add(-1)
				if t.obs != nil {
					t.obsRec(home, probes+1, true)
				}
				return true
			}
			// The only possible transition under us is key → tombstone by a
			// concurrent delete; report not-present-anymore.
			if t.obs != nil {
				t.obsRec(home, probes+1, false)
			}
			return false
		case table.EmptyKey:
			if t.obs != nil {
				t.obsRec(home, probes+1, false)
			}
			return false
		}
		i = t.step(i)
	}
	if t.obs != nil {
		t.obsRec(home, t.size, false)
	}
	return false
}

// Heatmap walks the slot array and builds the standard flat-layout
// introspection heatmap (region fill, probe-depth and probe-line
// distributions). Scrape-time work, safe against concurrent operations;
// also used by wrappers (growt) that want the active generation's map
// without re-deriving the home function.
func (t *Table) Heatmap() obs.Heatmap {
	return slotarr.FlatHeatmap(t.arr, t.index, 0)
}

// Len returns the number of live entries (including reserved-key entries).
func (t *Table) Len() int { return int(t.live.Load()) + t.side.Count() }

// Cap returns the number of slots.
func (t *Table) Cap() int { return int(t.size) }

// Fill returns the fraction of slots consumed (claimed slots including
// tombstones over capacity); open-addressing performance degrades sharply
// past ~0.8.
func (t *Table) Fill() float64 { return float64(t.used.Load()) / float64(t.size) }

// ProbeLength returns the number of slots inspected to find key, or -1 if
// absent — an observability hook used by tests and by the reprobe-statistics
// experiments (the paper reports 1.3 cache-line accesses per op at 75% fill).
func (t *Table) ProbeLength(key uint64) int {
	if t.side.For(key) != nil {
		return 0
	}
	i := t.index(key)
	for probes := uint64(0); probes < t.size; probes++ {
		switch t.arr.Key(i) {
		case key:
			return int(probes) + 1
		case table.EmptyKey:
			return -1
		}
		i = t.step(i)
	}
	return -1
}

// Range calls fn for every live entry (including reserved-key entries)
// until fn returns false. It takes no snapshot: entries inserted or deleted
// concurrently may or may not be observed, exactly like iterating any
// lock-free structure. The resizing wrapper uses it during migration, when
// it has externally quiesced writers.
func (t *Table) Range(fn func(key, value uint64) bool) {
	for _, rk := range []uint64{table.EmptyKey, table.TombstoneKey, table.MovedKey} {
		if s := t.side.For(rk); s != nil {
			if v, ok := s.Get(); ok {
				if !fn(rk, v) {
					return
				}
			}
		}
	}
	for i := uint64(0); i < t.size; i++ {
		k := t.arr.Key(i)
		if table.IsReservedKey(k) {
			continue
		}
		if !fn(k, t.arr.WaitValue(i)) {
			return
		}
	}
}

var _ table.Map = (*Table)(nil)
