package folklore

import (
	"testing"

	"dramhit/internal/obs"
)

// TestObserveCounters pins the striped-counter contract: ops/probes/hits
// totals reflect the executed workload and the pull source reports live
// table aggregates.
func TestObserveCounters(t *testing.T) {
	reg := obs.New()
	tb := New(1 << 12)
	tb.Observe(reg)

	const n = 3000
	for i := uint64(1); i <= n; i++ {
		tb.Put(i, i*10)
	}
	hits := 0
	for i := uint64(1); i <= 2*n; i++ {
		if _, ok := tb.Get(i); ok {
			hits++
		}
	}
	for i := uint64(1); i <= 100; i++ {
		tb.Upsert(i, 1)
		tb.Delete(i + n) // absent
	}

	snap := reg.TakeSnapshot()
	src, ok := snap.Sources["folklore"]
	if !ok {
		t.Fatal("folklore pull source missing")
	}
	wantOps := float64(n + 2*n + 200)
	if src["ops"] != wantOps {
		t.Errorf("ops = %v, want %v", src["ops"], wantOps)
	}
	if src["hits"] != float64(hits) {
		t.Errorf("hits = %v, want %d", src["hits"], hits)
	}
	if src["probe_slots"] < wantOps {
		t.Errorf("probe_slots = %v, want >= ops %v", src["probe_slots"], wantOps)
	}
	if src["live"] != float64(tb.Len()) {
		t.Errorf("live = %v, want %d", src["live"], tb.Len())
	}
	if src["fill"] != tb.Fill() {
		t.Errorf("fill = %v, want %v", src["fill"], tb.Fill())
	}
}

// TestObserveZeroAlloc pins the synchronous hot path at zero allocations
// with observation on — including with per-op latency armed.
func TestObserveZeroAlloc(t *testing.T) {
	plain := obs.New()
	armed := obs.New()
	armed.EnableOpLatency()
	for _, mode := range []struct {
		name string
		reg  *obs.Registry
	}{{"on", plain}, {"oplat", armed}} {
		tb := New(1 << 12)
		tb.Observe(mode.reg)
		var k uint64
		if n := testing.AllocsPerRun(100, func() {
			k++
			tb.Upsert(k&1023+1, 1)
			tb.Get(k & 2047)
		}); n != 0 {
			t.Errorf("observe %s: %v allocs per op pair, want 0", mode.name, n)
		}
	}
	snap := armed.TakeSnapshot()
	if snap.OpLatency["upsert"].Count == 0 {
		t.Error("armed registry recorded no upsert latencies")
	}
}
