package folklore

import (
	"testing"

	"dramhit/internal/hashfn"
	"dramhit/internal/table"
	"dramhit/internal/tabletest"
	"dramhit/internal/workload"
)

func TestConformance(t *testing.T) {
	tabletest.Run(t, "Folklore", func(n uint64) table.Map { return New(n) })
}

func TestConformanceCRCHash(t *testing.T) {
	tabletest.Run(t, "Folklore-CRC", func(n uint64) table.Map {
		return New(n, WithHash(hashfn.CRC64))
	})
}

func TestFillAccounting(t *testing.T) {
	m := New(1000)
	keys := workload.UniqueKeys(1, 750)
	for _, k := range keys {
		if !m.Put(k, 1) {
			t.Fatal("insert failed below capacity")
		}
	}
	if f := m.Fill(); f < 0.74 || f > 0.76 {
		t.Errorf("Fill = %.3f, want 0.75", f)
	}
	// Deletes do not reduce Fill: tombstones keep the slot claimed.
	for _, k := range keys[:100] {
		m.Delete(k)
	}
	if f := m.Fill(); f < 0.74 {
		t.Errorf("Fill after deletes = %.3f; tombstones must keep slots claimed", f)
	}
	if m.Len() != 650 {
		t.Errorf("Len after 100 deletes = %d, want 650", m.Len())
	}
}

func TestProbeLengthStatistics(t *testing.T) {
	// At 75% fill with linear probing the expected probe length is
	// (1 + 1/(1-a))/2 = 2.5 for hits; the paper's 1.3 cache-line figure
	// follows since 4 slots share a line. Sanity-check the average is in a
	// plausible band.
	const size = 1 << 16
	m := New(size)
	keys := workload.UniqueKeys(2, size*3/4)
	for _, k := range keys {
		m.Put(k, 1)
	}
	total := 0
	for _, k := range keys {
		pl := m.ProbeLength(k)
		if pl <= 0 {
			t.Fatalf("present key has probe length %d", pl)
		}
		total += pl
	}
	avg := float64(total) / float64(len(keys))
	if avg < 1.5 || avg > 4.0 {
		t.Errorf("average probe length %.2f at 75%% fill, want ~2.5", avg)
	}
}

func TestProbeLengthAbsent(t *testing.T) {
	m := New(64)
	if m.ProbeLength(12345) != -1 {
		t.Error("absent key should have probe length -1")
	}
	m.Put(12345, 1)
	if m.ProbeLength(12345) < 1 {
		t.Error("present key should have positive probe length")
	}
}

func TestDeleteContestedReturnsOnce(t *testing.T) {
	// Two logical deletes of the same key: exactly one observes "present".
	m := New(64)
	m.Put(5, 5)
	first := m.Delete(5)
	second := m.Delete(5)
	if !first || second {
		t.Errorf("Delete sequence = (%v, %v), want (true, false)", first, second)
	}
}

func BenchmarkPut(b *testing.B) {
	m := New(uint64(b.N)*2 + 1024)
	keys := workload.UniqueKeys(3, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(keys[i], uint64(i))
	}
}

func BenchmarkGetHit(b *testing.B) {
	const size = 1 << 20
	m := New(size)
	keys := workload.UniqueKeys(4, size*3/4)
	for _, k := range keys {
		m.Put(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(keys[i%len(keys)])
	}
}

func BenchmarkGetMiss(b *testing.B) {
	const size = 1 << 20
	m := New(size)
	for _, k := range workload.UniqueKeys(5, size/2) {
		m.Put(k, k)
	}
	miss := workload.UniqueKeys(6, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(miss[i%len(miss)])
	}
}

func BenchmarkUpsert(b *testing.B) {
	const size = 1 << 16
	m := New(size)
	keys := workload.UniqueKeys(7, size/2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Upsert(keys[i%len(keys)], 1)
	}
}
