package queue

import (
	"sync/atomic"
)

// This file implements two further SPSC designs from the paper's related
// work (§5, "Fast inter-core communication"), so the delegation
// microbenchmarks can compare the whole family:
//
//   - MCRingBuffer (Lee et al., ANCS'09): Lamport's ring with LAZY index
//     publication — both sides work against cached copies of the shared
//     indices and publish only every batchSize operations. The section
//     queue DRAMHiT-P uses is the same idea with publication tied to
//     section boundaries.
//   - FastForward (Giacomoni et al., PPoPP'08): no shared indices at all —
//     a slot's occupancy IS the synchronization, using a reserved "empty"
//     value stored in the slot itself. This removes index coherence traffic
//     entirely but reserves one value and couples producer/consumer to the
//     same cache lines (the adaptive slip-control of the original paper is
//     out of scope).

// MCRingBuffer is a lazily-published Lamport ring.
type MCRingBuffer[T any] struct {
	buf   []T
	mask  uint64
	batch uint64

	_ pad
	// producer-owned
	head      uint64
	tailCache uint64

	_ pad
	// consumer-owned
	tail      uint64
	headCache uint64

	_          pad
	sharedHead atomic.Uint64
	_          pad
	sharedTail atomic.Uint64
}

// NewMCRingBuffer creates a ring with the given capacity and publication
// batch (both rounded to powers of two; batch 0 selects capacity/8).
func NewMCRingBuffer[T any](capacity, batch int) *MCRingBuffer[T] {
	c := 8
	for c < capacity {
		c <<= 1
	}
	bb := 1
	b := batch
	if b <= 0 {
		b = c / 8
	}
	for bb < b {
		bb <<= 1
	}
	if bb > c/2 {
		bb = c / 2
	}
	return &MCRingBuffer[T]{buf: make([]T, c), mask: uint64(c - 1), batch: uint64(bb)}
}

// Cap returns the ring capacity.
func (q *MCRingBuffer[T]) Cap() int { return len(q.buf) }

// Enqueue appends v; the message becomes visible after the next batch
// boundary or Flush.
func (q *MCRingBuffer[T]) Enqueue(v T) bool {
	if q.head-q.tailCache == uint64(len(q.buf)) {
		q.tailCache = q.sharedTail.Load()
		if q.head-q.tailCache == uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[q.head&q.mask] = v
	q.head++
	if q.head%q.batch == 0 {
		q.sharedHead.Store(q.head)
	}
	return true
}

// Flush publishes pending messages.
func (q *MCRingBuffer[T]) Flush() {
	if q.sharedHead.Load() != q.head {
		q.sharedHead.Store(q.head)
	}
}

// Dequeue removes the oldest visible message.
func (q *MCRingBuffer[T]) Dequeue() (T, bool) {
	if q.headCache == q.tail {
		q.headCache = q.sharedHead.Load()
		if q.headCache == q.tail {
			if q.sharedTail.Load() != q.tail {
				q.sharedTail.Store(q.tail)
			}
			var zero T
			return zero, false
		}
	}
	v := q.buf[q.tail&q.mask]
	q.tail++
	if q.tail%q.batch == 0 {
		q.sharedTail.Store(q.tail)
	}
	return v, true
}

// FastForward is a slot-occupancy SPSC queue for uint64 payloads. The zero
// value is reserved as the "empty slot" marker, exactly as FastForward
// stores NULL into consumed slots; callers must not enqueue 0 (Enqueue
// panics). The generic designs in this package exist because of this
// reservation — FastForward's trick fundamentally costs a value.
type FastForward struct {
	buf []atomic.Uint64
	_   pad
	// producer-owned
	head uint64
	_    pad
	// consumer-owned
	tail uint64
}

// NewFastForward creates a queue with capacity rounded up to a power of two
// (minimum 8).
func NewFastForward(capacity int) *FastForward {
	c := 8
	for c < capacity {
		c <<= 1
	}
	return &FastForward{buf: make([]atomic.Uint64, c)}
}

// Cap returns the queue capacity.
func (q *FastForward) Cap() int { return len(q.buf) }

// Enqueue appends v (v must be nonzero), returning false when the slot is
// still occupied (queue full).
func (q *FastForward) Enqueue(v uint64) bool {
	if v == 0 {
		panic("queue: FastForward cannot carry the reserved value 0")
	}
	slot := &q.buf[q.head&uint64(len(q.buf)-1)]
	if slot.Load() != 0 {
		return false
	}
	slot.Store(v)
	q.head++
	return true
}

// Flush is a no-op: every enqueue publishes its slot.
func (q *FastForward) Flush() {}

// Dequeue removes the oldest message.
func (q *FastForward) Dequeue() (uint64, bool) {
	slot := &q.buf[q.tail&uint64(len(q.buf)-1)]
	v := slot.Load()
	if v == 0 {
		return 0, false
	}
	slot.Store(0)
	q.tail++
	return v, true
}

var (
	_ Queue[uint64] = (*MCRingBuffer[uint64])(nil)
	_ Queue[uint64] = (*FastForward)(nil)
)
