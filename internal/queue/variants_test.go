package queue

import (
	"runtime"
	"sync"
	"testing"
)

func TestMCRingBufferFIFO(t *testing.T) {
	q := NewMCRingBuffer[uint64](64, 8)
	for i := uint64(0); i < 40; i++ {
		if !q.Enqueue(i + 1) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	q.Flush()
	for i := uint64(0); i < 40; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i+1 {
			t.Fatalf("dequeue %d = (%d, %v)", i, v, ok)
		}
	}
}

func TestMCRingBufferLazyPublication(t *testing.T) {
	q := NewMCRingBuffer[uint64](64, 16)
	q.Enqueue(7)
	if _, ok := q.Dequeue(); ok {
		t.Fatal("message visible before batch boundary or flush")
	}
	q.Flush()
	if v, ok := q.Dequeue(); !ok || v != 7 {
		t.Fatalf("after flush: (%d, %v)", v, ok)
	}
	// Crossing the batch boundary publishes automatically.
	for i := uint64(0); i < 16; i++ {
		q.Enqueue(100 + i)
	}
	if v, ok := q.Dequeue(); !ok || v != 100 {
		t.Fatalf("batch publication: (%d, %v)", v, ok)
	}
}

func TestMCRingBufferFull(t *testing.T) {
	q := NewMCRingBuffer[uint64](8, 2)
	n := 0
	for q.Enqueue(uint64(n + 1)) {
		n++
		if n > 100 {
			t.Fatal("never full")
		}
	}
	if n != 8 {
		t.Fatalf("accepted %d into capacity 8", n)
	}
}

func TestFastForwardBasic(t *testing.T) {
	q := NewFastForward(16)
	for i := uint64(1); i <= 10; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue = (%d, %v), want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty dequeue succeeded")
	}
}

func TestFastForwardFullAndReuse(t *testing.T) {
	q := NewFastForward(8)
	for i := uint64(1); i <= 8; i++ {
		q.Enqueue(i)
	}
	if q.Enqueue(99) {
		t.Fatal("enqueue into full queue succeeded")
	}
	q.Dequeue()
	if !q.Enqueue(99) {
		t.Fatal("slot not reusable after dequeue")
	}
}

func TestFastForwardRejectsZero(t *testing.T) {
	q := NewFastForward(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Enqueue(0) did not panic")
		}
	}()
	q.Enqueue(0)
}

func TestVariantsConcurrentTransfer(t *testing.T) {
	const n = 100000
	t.Run("MCRingBuffer", func(t *testing.T) {
		q := NewMCRingBuffer[uint64](256, 16)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); i <= n; i++ {
				for !q.Enqueue(i) {
					runtime.Gosched()
				}
			}
			q.Flush()
		}()
		var expect uint64 = 1
		for expect <= n {
			v, ok := q.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != expect {
				t.Fatalf("got %d, want %d", v, expect)
			}
			expect++
		}
		wg.Wait()
	})
	t.Run("FastForward", func(t *testing.T) {
		q := NewFastForward(256)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); i <= n; i++ {
				for !q.Enqueue(i) {
					runtime.Gosched()
				}
			}
		}()
		var expect uint64 = 1
		for expect <= n {
			v, ok := q.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != expect {
				t.Fatalf("got %d, want %d", v, expect)
			}
			expect++
		}
		wg.Wait()
	})
}

func BenchmarkMCRingBufferTransfer(b *testing.B) {
	q := NewMCRingBuffer[msg16](1024, 64)
	benchPingPong(b, q)
}

func BenchmarkFastForwardTransfer(b *testing.B) {
	q := NewFastForward(1024)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			for {
				if _, ok := q.Dequeue(); ok {
					break
				}
				runtime.Gosched()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !q.Enqueue(uint64(i + 1)) {
			runtime.Gosched()
		}
	}
	wg.Wait()
}
