package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// msg16 matches the paper's 16-byte delegation message.
type msg16 struct{ A, B uint64 }

type factory struct {
	name string
	make func(capacity int) Queue[msg16]
}

func factories() []factory {
	return []factory{
		{"SPSC", func(c int) Queue[msg16] { return NewSPSC[msg16](c, 0) }},
		{"SPSC-1section", func(c int) Queue[msg16] { return NewSPSC[msg16](c, 1) }},
		{"Lamport", func(c int) Queue[msg16] { return NewLamport[msg16](c) }},
		{"BQueue", func(c int) Queue[msg16] { return NewBQueue[msg16](c, 0) }},
	}
}

func TestFIFOOrder(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			q := f.make(64)
			for i := uint64(0); i < 32; i++ {
				if !q.Enqueue(msg16{A: i, B: i * 2}) {
					t.Fatalf("enqueue %d failed", i)
				}
			}
			q.Flush()
			for i := uint64(0); i < 32; i++ {
				m, ok := q.Dequeue()
				if !ok || m.A != i || m.B != i*2 {
					t.Fatalf("dequeue %d = (%+v, %v)", i, m, ok)
				}
			}
			if _, ok := q.Dequeue(); ok {
				t.Fatal("dequeue from drained queue succeeded")
			}
		})
	}
}

func TestFillAndDrainRepeatedly(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			q := f.make(16)
			var next, expect uint64
			for round := 0; round < 100; round++ {
				n := 0
				for q.Enqueue(msg16{A: next}) {
					next++
					n++
				}
				q.Flush()
				if n == 0 {
					t.Fatal("could not enqueue anything into an empty queue")
				}
				for {
					m, ok := q.Dequeue()
					if !ok {
						break
					}
					if m.A != expect {
						t.Fatalf("round %d: got %d, want %d", round, m.A, expect)
					}
					expect++
				}
				if expect != next {
					t.Fatalf("round %d: drained to %d, enqueued to %d", round, expect, next)
				}
			}
		})
	}
}

func TestFullRejects(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			q := f.make(8)
			n := 0
			for q.Enqueue(msg16{A: uint64(n)}) {
				n++
				if n > 1000 {
					t.Fatal("queue never reported full")
				}
			}
			if n == 0 || n > q.Cap() {
				t.Fatalf("accepted %d messages with capacity %d", n, q.Cap())
			}
		})
	}
}

func TestFlushPublishesPartialSection(t *testing.T) {
	// Without Flush, a section queue with one big section hides messages.
	q := NewSPSC[msg16](64, 1)
	q.Enqueue(msg16{A: 7})
	if _, ok := q.Dequeue(); ok {
		t.Fatal("message visible before flush with a single section")
	}
	q.Flush()
	m, ok := q.Dequeue()
	if !ok || m.A != 7 {
		t.Fatalf("after flush: (%+v, %v)", m, ok)
	}
}

func TestSectionBoundaryAutoPublishes(t *testing.T) {
	q := NewSPSC[msg16](64, 8) // section size 8
	for i := uint64(0); i < 8; i++ {
		q.Enqueue(msg16{A: i})
	}
	// Crossing the section boundary published without Flush.
	if m, ok := q.Dequeue(); !ok || m.A != 0 {
		t.Fatalf("boundary publish missing: (%+v, %v)", m, ok)
	}
}

func TestSPSCSectionSizing(t *testing.T) {
	q := NewSPSC[msg16](1024, 16)
	if q.Cap() != 1024 {
		t.Errorf("cap = %d", q.Cap())
	}
	if q.SectionSize() != 64 {
		t.Errorf("section size = %d, want 64", q.SectionSize())
	}
	// Degenerate requests are clamped.
	q2 := NewSPSC[msg16](0, 0)
	if q2.Cap() < 8 || q2.SectionSize() < 1 {
		t.Errorf("degenerate queue: cap %d section %d", q2.Cap(), q2.SectionSize())
	}
}

func TestConcurrentTransfer(t *testing.T) {
	// One producer goroutine, one consumer goroutine, a million messages:
	// everything arrives exactly once, in order. Run under -race this is
	// the key memory-model check for the publication protocols.
	const n = 200000
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			q := f.make(256)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(0); i < n; i++ {
					for !q.Enqueue(msg16{A: i, B: ^i}) {
						runtime.Gosched()
					}
				}
				q.Flush()
			}()
			var got uint64
			for got < n {
				m, ok := q.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				if m.A != got || m.B != ^got {
					t.Fatalf("message %d arrived as %+v", got, m)
				}
				got++
			}
			wg.Wait()
			if _, ok := q.Dequeue(); ok {
				t.Fatal("stray message after transfer")
			}
		})
	}
}

func TestQuickPropertyDrainMatchesEnqueue(t *testing.T) {
	// Property: any interleaving of enqueue bursts and full drains
	// preserves the exact message sequence.
	for _, f := range factories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			prop := func(bursts []uint8) bool {
				q := f.make(64)
				var next, expect uint64
				for _, b := range bursts {
					for i := 0; i < int(b%32); i++ {
						if !q.Enqueue(msg16{A: next}) {
							break
						}
						next++
					}
					q.Flush()
					for {
						m, ok := q.Dequeue()
						if !ok {
							break
						}
						if m.A != expect {
							return false
						}
						expect++
					}
					if expect != next {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestPrefetchNextDoesNotConsume(t *testing.T) {
	q := NewSPSC[msg16](32, 4)
	q.Enqueue(msg16{A: 1})
	q.Flush()
	q.PrefetchNext()
	if m, ok := q.Dequeue(); !ok || m.A != 1 {
		t.Fatalf("prefetch consumed the message: (%+v, %v)", m, ok)
	}
}

func benchPingPong(b *testing.B, q Queue[msg16]) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			for {
				if _, ok := q.Dequeue(); ok {
					break
				}
				runtime.Gosched()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !q.Enqueue(msg16{A: uint64(i)}) {
			runtime.Gosched()
		}
		if i&63 == 63 {
			q.Flush()
		}
	}
	q.Flush()
	wg.Wait()
}

func BenchmarkSPSCTransfer(b *testing.B)    { benchPingPong(b, NewSPSC[msg16](1024, 0)) }
func BenchmarkLamportTransfer(b *testing.B) { benchPingPong(b, NewLamport[msg16](1024)) }
func BenchmarkBQueueTransfer(b *testing.B)  { benchPingPong(b, NewBQueue[msg16](1024, 0)) }
