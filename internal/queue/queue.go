// Package queue implements the single-producer/single-consumer queues that
// underpin DRAMHiT-P's delegation scheme (paper §3.3 and Figure 4), plus the
// two designs the paper positions itself against:
//
//   - Section queue (SPSC): a ring buffer split into sections; the shared
//     producer/consumer indices are only published when a side crosses a
//     section boundary, amortizing cross-core cache-line transfers over the
//     whole section. This is the design DRAMHiT-P builds on, combined with
//     explicit producer-side flushing.
//   - Lamport queue: the classic lock-free ring that reads and writes the
//     shared indices on every operation — each op risks a coherence miss.
//   - B-Queue: batched probing with power-of-two backtracking, using a
//     per-slot occupancy flag instead of shared indices.
//
// All queues are generic over the message type; DRAMHiT-P uses 16-byte
// messages, matching the paper's delegation microbenchmark.
package queue

import (
	"sync/atomic"
)

// pad is inserted between producer-owned, consumer-owned and shared fields
// so the two sides never false-share a cache line.
type pad [8]uint64

// SPSC is a section queue. The producer side may be used by one goroutine
// and the consumer side by one (possibly different) goroutine.
//
// Capacity accounting: because the consumer publishes its progress only at
// section boundaries, the producer may observe the queue as full while up to
// sectionSize-1 consumed slots are still unpublished; the effective capacity
// is therefore capacity-sectionSize+1 under pathological timing. Size
// sections accordingly (the default is capacity/8).
type SPSC[T any] struct {
	buf     []T
	mask    uint64
	secMask uint64

	_ pad
	// producer-owned
	head      uint64
	tailCache uint64

	_ pad
	// consumer-owned
	tail      uint64
	headCache uint64

	_          pad
	sharedHead atomic.Uint64
	_          pad
	sharedTail atomic.Uint64
}

// NewSPSC creates a section queue with the given capacity (rounded up to a
// power of two, minimum 8) and number of sections (rounded to a power of two
// that divides the capacity; 0 selects capacity/8, minimum 1 section).
func NewSPSC[T any](capacity, sections int) *SPSC[T] {
	c := 8
	for c < capacity {
		c <<= 1
	}
	s := sections
	if s <= 0 {
		s = c / 8
	}
	if s < 1 {
		s = 1
	}
	sec := 1
	for sec < s {
		sec <<= 1
	}
	if sec > c {
		sec = c
	}
	secSize := c / sec
	return &SPSC[T]{
		buf:     make([]T, c),
		mask:    uint64(c - 1),
		secMask: uint64(secSize - 1),
	}
}

// Cap returns the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// SectionSize returns the publication granularity.
func (q *SPSC[T]) SectionSize() int { return int(q.secMask) + 1 }

// Enqueue appends v, returning false if the queue is full (as currently
// published by the consumer). The message is not visible to the consumer
// until the producer crosses a section boundary or calls Flush.
func (q *SPSC[T]) Enqueue(v T) bool {
	if q.head-q.tailCache == uint64(len(q.buf)) {
		// Reached the published end of free space: re-read the shared
		// consumer index (this is the cross-core access the section design
		// amortizes).
		q.tailCache = q.sharedTail.Load()
		if q.head-q.tailCache == uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[q.head&q.mask] = v
	q.head++
	if q.head&q.secMask == 0 {
		q.sharedHead.Store(q.head)
	}
	return true
}

// Flush publishes all enqueued messages immediately. DRAMHiT-P calls this
// when an application batch ends so delegated updates are not stranded in a
// partial section.
func (q *SPSC[T]) Flush() {
	if q.sharedHead.Load() != q.head {
		q.sharedHead.Store(q.head)
	}
}

// Dequeue removes the oldest message, returning false if none is published.
func (q *SPSC[T]) Dequeue() (T, bool) {
	if q.headCache == q.tail {
		q.headCache = q.sharedHead.Load()
		if q.headCache == q.tail {
			// Publish our progress on empty so the producer's view of free
			// space is exact when it next refreshes (liveness nicety; the
			// section design does not require it).
			if q.sharedTail.Load() != q.tail {
				q.sharedTail.Store(q.tail)
			}
			var zero T
			return zero, false
		}
	}
	v := q.buf[q.tail&q.mask]
	q.tail++
	if q.tail&q.secMask == 0 {
		q.sharedTail.Store(q.tail)
	}
	return v, true
}

// Pending reports the number of published-but-unconsumed messages from the
// consumer's perspective (diagnostic).
func (q *SPSC[T]) Pending() int {
	return int(q.sharedHead.Load() - q.tail)
}

// PendingShared estimates the backlog from the published head/tail words
// only, so any goroutine — producer, scraper — may call it concurrently
// with the endpoints. Section-granular (both words advance at section
// boundaries): a gauge, not a synchronization primitive.
func (q *SPSC[T]) PendingShared() int {
	return int(q.sharedHead.Load() - q.sharedTail.Load())
}

// PrefetchNext touches the cache line the consumer will read next, mirroring
// the paper's consumer-side queue prefetching (§3.3 "L1 residency"). Unlike
// a hardware prefetch instruction, a Go load participates in the memory
// model, so only a slot already published to this consumer is touched.
func (q *SPSC[T]) PrefetchNext() uint64 {
	if q.headCache != q.tail {
		_ = q.buf[q.tail&q.mask]
	}
	return q.tail
}

// Lamport is the classic Lamport SPSC queue: both indices are shared
// atomics consulted on every operation, so steady-state throughput is
// limited by producer/consumer cache-line ping-pong.
type Lamport[T any] struct {
	buf  []T
	mask uint64
	_    pad
	head atomic.Uint64
	_    pad
	tail atomic.Uint64
}

// NewLamport creates a Lamport queue with capacity rounded up to a power of
// two (minimum 8).
func NewLamport[T any](capacity int) *Lamport[T] {
	c := 8
	for c < capacity {
		c <<= 1
	}
	return &Lamport[T]{buf: make([]T, c), mask: uint64(c - 1)}
}

// Cap returns the queue capacity.
func (q *Lamport[T]) Cap() int { return len(q.buf) }

// Enqueue appends v, returning false if full. The message is immediately
// visible (no Flush needed).
func (q *Lamport[T]) Enqueue(v T) bool {
	h := q.head.Load()
	if h-q.tail.Load() == uint64(len(q.buf)) {
		return false
	}
	q.buf[h&q.mask] = v
	q.head.Store(h + 1)
	return true
}

// Flush is a no-op (kept for interface symmetry with SPSC).
func (q *Lamport[T]) Flush() {}

// Dequeue removes the oldest message.
func (q *Lamport[T]) Dequeue() (T, bool) {
	t := q.tail.Load()
	if t == q.head.Load() {
		var zero T
		return zero, false
	}
	v := q.buf[t&q.mask]
	q.tail.Store(t + 1)
	return v, true
}

// BQueue implements the batched SPSC queue of Wang et al. with power-of-two
// backtracking. Instead of shared indices, every slot carries an occupancy
// flag; the producer probes whether the slot batchSize ahead is free and, if
// so, writes the whole batch without further checks, halving the probe
// distance on failure (backtracking).
type BQueue[T any] struct {
	buf   []T
	flags []atomic.Uint32 // 0 = free, 1 = occupied
	mask  uint64
	batch uint64

	_ pad
	// producer-owned
	head      uint64
	freeAhead uint64 // slots known free in front of head

	_ pad
	// consumer-owned
	tail      uint64
	availToMe uint64 // slots known occupied in front of tail
}

// NewBQueue creates a B-Queue with the given capacity and batch size (both
// rounded to powers of two; batch 0 selects capacity/8).
func NewBQueue[T any](capacity, batch int) *BQueue[T] {
	c := 8
	for c < capacity {
		c <<= 1
	}
	b := batch
	if b <= 0 {
		b = c / 8
	}
	bb := 1
	for bb < b {
		bb <<= 1
	}
	if bb > c/2 {
		bb = c / 2
	}
	return &BQueue[T]{
		buf:   make([]T, c),
		flags: make([]atomic.Uint32, c),
		mask:  uint64(c - 1),
		batch: uint64(bb),
	}
}

// Cap returns the queue capacity.
func (q *BQueue[T]) Cap() int { return len(q.buf) }

// Enqueue appends v, returning false if no free slot could be found even
// after backtracking to a probe distance of one.
func (q *BQueue[T]) Enqueue(v T) bool {
	if q.freeAhead == 0 {
		// Probe batch slots ahead; on failure halve the distance
		// (backtracking, power-of-two decrements).
		dist := q.batch
		for dist > 0 {
			if q.flags[(q.head+dist-1)&q.mask].Load() == 0 {
				q.freeAhead = dist
				break
			}
			dist >>= 1
		}
		if q.freeAhead == 0 {
			return false
		}
	}
	q.buf[q.head&q.mask] = v
	q.flags[q.head&q.mask].Store(1)
	q.head++
	q.freeAhead--
	return true
}

// Flush is a no-op: each enqueue publishes its slot flag.
func (q *BQueue[T]) Flush() {}

// Dequeue removes the oldest message.
func (q *BQueue[T]) Dequeue() (T, bool) {
	if q.availToMe == 0 {
		dist := q.batch
		for dist > 0 {
			if q.flags[(q.tail+dist-1)&q.mask].Load() == 1 {
				q.availToMe = dist
				break
			}
			dist >>= 1
		}
		if q.availToMe == 0 {
			var zero T
			return zero, false
		}
	}
	v := q.buf[q.tail&q.mask]
	q.flags[q.tail&q.mask].Store(0)
	q.tail++
	q.availToMe--
	return v, true
}

// Queue is the interface shared by the three designs; the delegation layer
// and the Figure-5 benchmarks are written against it.
type Queue[T any] interface {
	Enqueue(T) bool
	Dequeue() (T, bool)
	Flush()
	Cap() int
}

var (
	_ Queue[uint64] = (*SPSC[uint64])(nil)
	_ Queue[uint64] = (*Lamport[uint64])(nil)
	_ Queue[uint64] = (*BQueue[uint64])(nil)
)
