package dramhit

import (
	"dramhit/internal/hashfn"
	"dramhit/internal/obs"
	"dramhit/internal/slotarr"
)

// heatmap is the table's registered obs heatmap source. Both layouts
// delegate to the slotarr walkers: the flat side re-derives displacement
// from stored keys (the home function is the same fastrange-of-hash the
// probe paths use, so probe_lines is exactly the lines-touched a cold Get
// of that key pays), the bucket side folds the ScanBuckets walk with the
// arena's segment accounting. Scrape-time work only — nothing on the op
// paths feeds it.
func (t *Table) heatmap() obs.Heatmap {
	if t.bkt != nil {
		return slotarr.BucketHeatmap(t.bkt, 0)
	}
	return slotarr.FlatHeatmap(t.arr, func(k uint64) uint64 {
		return hashfn.Fastrange(t.hash(k), t.size)
	}, 0)
}
