package dramhit

import (
	"bytes"
	"sync"
	"testing"

	"dramhit/internal/workload"
)

func TestBigTableBasic(t *testing.T) {
	bt := NewBigTable(256, 24)
	v := bytes.Repeat([]byte{0xab}, 24)
	if !bt.Put(7, v) {
		t.Fatal("Put failed")
	}
	got := make([]byte, 24)
	if !bt.Get(7, got) || !bytes.Equal(got, v) {
		t.Fatalf("Get = %x", got)
	}
	if bt.Get(8, got) {
		t.Fatal("absent key found")
	}
	if bt.Len() != 1 {
		t.Fatalf("Len = %d", bt.Len())
	}
}

func TestBigTableOverwriteAndDelete(t *testing.T) {
	bt := NewBigTable(128, 40)
	mk := func(b byte) []byte { return bytes.Repeat([]byte{b}, 40) }
	bt.Put(5, mk(1))
	bt.Put(5, mk(2))
	got := make([]byte, 40)
	bt.Get(5, got)
	if got[0] != 2 || got[39] != 2 {
		t.Fatalf("overwrite lost: %x", got[:4])
	}
	if bt.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", bt.Len())
	}
	if !bt.Delete(5) {
		t.Fatal("Delete failed")
	}
	if bt.Get(5, got) {
		t.Fatal("deleted key still present")
	}
	if bt.Delete(5) {
		t.Fatal("double delete reported present")
	}
}

func TestBigTableOddSizes(t *testing.T) {
	// Value sizes that are not multiples of 8 must round-trip exactly.
	for _, vs := range []int{1, 3, 7, 9, 17, 33} {
		bt := NewBigTable(64, vs)
		v := make([]byte, vs)
		for i := range v {
			v[i] = byte(i + 1)
		}
		bt.Put(9, v)
		got := make([]byte, vs)
		if !bt.Get(9, got) || !bytes.Equal(got, v) {
			t.Fatalf("vsize %d: got %x want %x", vs, got, v)
		}
	}
}

func TestBigTableManyKeysWithProbing(t *testing.T) {
	bt := NewBigTable(1024, 32)
	keys := workload.UniqueKeys(1, 700)
	for i, k := range keys {
		v := bytes.Repeat([]byte{byte(i)}, 32)
		if !bt.Put(k, v) {
			t.Fatalf("Put %d failed", i)
		}
	}
	got := make([]byte, 32)
	for i, k := range keys {
		if !bt.Get(k, got) || got[0] != byte(i) || got[31] != byte(i) {
			t.Fatalf("key %d: got %x", i, got[:2])
		}
	}
}

func TestBigTableFullReturnsFalse(t *testing.T) {
	bt := NewBigTable(8, 16)
	keys := workload.UniqueKeys(2, 16)
	accepted := 0
	for _, k := range keys {
		if bt.Put(k, make([]byte, 16)) {
			accepted++
		}
	}
	if accepted != 8 {
		t.Fatalf("accepted %d into 8 slots", accepted)
	}
}

func TestBigTableNoTornReads(t *testing.T) {
	// Writers store values whose 32 bytes are all the same byte; a reader
	// observing two different bytes in one value has seen a torn read —
	// exactly what the version protocol must prevent.
	bt := NewBigTable(64, 32)
	keys := workload.UniqueKeys(3, 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := make([]byte, 32)
			for i := 0; i < 3000; i++ {
				b := byte(w*64 + i%64)
				for j := range v {
					v[j] = b
				}
				bt.Put(keys[i%len(keys)], v)
			}
		}(w)
	}
	errc := make(chan string, 1)
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		got := make([]byte, 32)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, k := range keys {
				if !bt.Get(k, got) {
					continue
				}
				for j := 1; j < 32; j++ {
					if got[j] != got[0] {
						select {
						case errc <- "torn read observed":
						default:
						}
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	select {
	case e := <-errc:
		t.Fatal(e)
	default:
	}
}

func TestBigTableConcurrentDistinctKeys(t *testing.T) {
	bt := NewBigTable(4096, 24)
	keys := workload.UniqueKeys(4, 2000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := make([]byte, 24)
			for i := w * 500; i < (w+1)*500; i++ {
				for j := range v {
					v[j] = byte(i)
				}
				bt.Put(keys[i], v)
			}
		}(w)
	}
	wg.Wait()
	got := make([]byte, 24)
	for i, k := range keys {
		if !bt.Get(k, got) || got[0] != byte(i) {
			t.Fatalf("key %d: (%x, present=%v)", i, got[0], bt.Get(k, got))
		}
	}
	if bt.Len() != 2000 {
		t.Fatalf("Len = %d", bt.Len())
	}
}

func TestBigTablePanics(t *testing.T) {
	bt := NewBigTable(8, 16)
	for _, fn := range []func(){
		func() { bt.Put(1, make([]byte, 15)) },
		func() { bt.Get(1, make([]byte, 17)) },
		func() { bt.Put(0, make([]byte, 16)) }, // reserved key
		func() { NewBigTable(0, 16) },
		func() { NewBigTable(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
