package dramhit

import (
	"testing"

	"dramhit/internal/folklore"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// govBenchSetup loads a half-full table (direct-mode governed) and a
// folklore table with identical content, and returns a zipf key stream —
// the cache-resident shape where the folklore execution model historically
// beat the pipeline and the governor's direct mode has to compete.
func govBenchSetup(b *testing.B, slots uint64) (*Handle, *folklore.Table, []uint64) {
	b.Helper()
	t := New(Config{Slots: slots, Governor: table.GovernorDirect})
	h := t.NewHandle()
	f := folklore.New(slots)
	keys := workload.UniqueKeys(42, int(slots/2))
	for _, k := range keys {
		f.Put(k, k)
	}
	vals := make([]uint64, len(keys))
	copy(vals, keys)
	h.PutBatch(keys, vals)
	ks := workload.NewKeyStream(7, uint64(len(keys)), 0.99)
	stream := make([]uint64, 1<<16)
	for i := range stream {
		stream[i] = keys[ks.Next()%uint64(len(keys))]
	}
	return h, f, stream
}

// BenchmarkDirectVsFolklore/direct vs /folklore is the folklore-gap
// microscope: identical zipf(0.99) get streams through the governor's
// synchronous inline path (batch 16, Submit interface) and through
// folklore's bare synchronous calls.
func BenchmarkDirectVsFolklore(b *testing.B) {
	const slots = 1 << 20
	b.Run("direct", func(b *testing.B) {
		h, _, stream := govBenchSetup(b, slots)
		reqs := make([]table.Request, 16)
		resps := make([]table.Response, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i += 16 {
			for j := 0; j < 16; j++ {
				reqs[j] = table.Request{Op: table.Get, Key: stream[(i+j)&(len(stream)-1)], ID: uint64(j)}
			}
			rem := reqs
			for len(rem) > 0 {
				nr, _ := h.Submit(rem, resps)
				rem = rem[nr:]
			}
		}
	})
	b.Run("folklore", func(b *testing.B) {
		_, f, stream := govBenchSetup(b, slots)
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			v, _ := f.Get(stream[i&(len(stream)-1)])
			sink += v
		}
		_ = sink
	})
}
