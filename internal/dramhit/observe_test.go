package dramhit

import (
	"math/rand"
	"testing"

	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// obsWorkload is a mixed-op request stream with heavy key duplication so the
// combining, reprobe and park paths all execute.
func obsWorkload(n int, seed int64) []table.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]table.Request, n)
	for i := range reqs {
		key := uint64(rng.Intn(n/4) + 1)
		var op table.Op
		switch rng.Intn(10) {
		case 0:
			op = table.Put
		case 1:
			op = table.Delete
		case 2, 3, 4:
			op = table.Upsert
		default:
			op = table.Get
		}
		reqs[i] = table.Request{Op: op, Key: key, Value: uint64(i + 1), ID: uint64(i)}
	}
	return reqs
}

func runObsWorkload(t *Table, reqs []table.Request) (resps []table.Response, stats Stats) {
	h := t.NewHandle()
	buf := make([]table.Response, 64)
	rem := reqs
	for len(rem) > 0 {
		nreq, nresp := h.Submit(rem, buf)
		resps = append(resps, buf[:nresp]...)
		rem = rem[nreq:]
	}
	for {
		nresp, done := h.Flush(buf)
		resps = append(resps, buf[:nresp]...)
		if done {
			break
		}
	}
	return resps, h.Stats()
}

// TestObserveBitIdentical is the A/B guarantee: attaching a registry must
// not change a single response (value, found flag, completion order) or any
// handle counter.
func TestObserveBitIdentical(t *testing.T) {
	reqs := obsWorkload(20000, 11)
	for _, kernel := range []table.ProbeKernel{table.KernelSWAR, table.KernelScalar} {
		base := New(Config{Slots: 1 << 12, ProbeKernel: kernel})
		obsd := New(Config{Slots: 1 << 12, ProbeKernel: kernel, Observe: obs.NewWith(1024, 16)})
		r1, s1 := runObsWorkload(base, reqs)
		r2, s2 := runObsWorkload(obsd, reqs)
		if len(r1) != len(r2) {
			t.Fatalf("kernel %v: response counts differ: %d vs %d", kernel, len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("kernel %v: response %d differs: %+v vs %+v", kernel, i, r1[i], r2[i])
			}
		}
		if s1 != s2 {
			t.Fatalf("kernel %v: stats differ:\n  off: %+v\n  on:  %+v", kernel, s1, s2)
		}
		if base.Len() != obsd.Len() {
			t.Fatalf("kernel %v: table contents differ: %d vs %d", kernel, base.Len(), obsd.Len())
		}
	}
}

// TestObserveCountersPublished pins the publish contract: after Flush, the
// registry shard mirrors the handle's stats exactly.
func TestObserveCountersPublished(t *testing.T) {
	reg := obs.NewWith(0, 1)
	tb := New(Config{Slots: 1 << 12, Observe: reg})
	reqs := obsWorkload(5000, 3)
	_, stats := runObsWorkload(tb, reqs)

	workers := reg.Workers()
	if len(workers) != 1 {
		t.Fatalf("workers = %d, want 1", len(workers))
	}
	w := workers[0]
	checks := []struct {
		name string
		idx  int
		want uint64
	}{
		{"gets", obs.CGets, stats.Gets},
		{"puts", obs.CPuts, stats.Puts},
		{"upserts", obs.CUpserts, stats.Upserts},
		{"deletes", obs.CDeletes, stats.Deletes},
		{"hits", obs.CHits, stats.Hits},
		{"reprobes", obs.CReprobes, stats.Reprobes},
		{"lines", obs.CLines, stats.Lines},
		{"keylines", obs.CKeyLines, stats.KeyLines},
		{"combined_upserts", obs.CCombinedUpserts, stats.CombinedUpserts},
		{"piggybacked_gets", obs.CPiggybackedGets, stats.PiggybackedGets},
		{"cas_attempts", obs.CCASAttempts, stats.CASAttempts},
	}
	for _, c := range checks {
		if got := w.Counter(c.idx); got != c.want {
			t.Errorf("published %s = %d, want %d", c.name, got, c.want)
		}
	}
	if w.Gauge(obs.GWindowMax) == 0 {
		t.Error("window occupancy max gauge never published")
	}
	// The pull source must see the table.
	snap := reg.TakeSnapshot()
	if snap.Sources["dramhit"]["live"] != float64(tb.Len()) {
		t.Errorf("pull source live = %v, want %d", snap.Sources["dramhit"]["live"], tb.Len())
	}
}

// TestObserveTraceLifecycle pins the sampled lifecycle: with 1-in-1 sampling
// every completed request leaves a Submit and a Complete, in that order,
// under the same trace id.
func TestObserveTraceLifecycle(t *testing.T) {
	reg := obs.NewWith(1<<16, 1)
	tb := New(Config{Slots: 1 << 12, Observe: reg})
	runObsWorkload(tb, obsWorkload(2000, 5))

	evs := reg.Trace().Snapshot()
	if len(evs) == 0 {
		t.Fatal("no trace events recorded")
	}
	byID := map[uint64][]obs.Event{}
	for _, e := range evs {
		byID[e.ID] = append(byID[e.ID], e)
	}
	complete := 0
	for id, seq := range byID {
		if seq[0].Kind != obs.EvSubmit {
			t.Fatalf("trace %d starts with %v, want submit (%+v)", id, seq[0].Kind, seq)
		}
		last := seq[len(seq)-1]
		if last.Kind == obs.EvComplete {
			complete++
		}
		for i := 1; i < len(seq); i++ {
			if seq[i].TS < seq[i-1].TS {
				t.Fatalf("trace %d: timestamps regress: %+v", id, seq)
			}
		}
	}
	if complete == 0 {
		t.Fatal("no traced request completed")
	}
}

// TestObserveParks forces a combine chain to outlive the response buffer and
// checks the backpressure-park counter and chain gauge.
func TestObserveParks(t *testing.T) {
	reg := obs.NewWith(0, 1)
	tb := New(Config{Slots: 1 << 10, Observe: reg})
	h := tb.NewHandle()

	// One key, many Gets: they piggyback onto one leader whose chain must
	// then drain through a 1-slot response buffer.
	reqs := make([]table.Request, 40)
	for i := range reqs {
		reqs[i] = table.Request{Op: table.Get, Key: 7, ID: uint64(i)}
	}
	buf := make([]table.Response, 1)
	rem := reqs
	for len(rem) > 0 {
		nreq, _ := h.Submit(rem, buf)
		rem = rem[nreq:]
	}
	for {
		if _, done := h.Flush(buf); done {
			break
		}
	}
	w := reg.Workers()[0]
	if w.Counter(obs.CParks) == 0 {
		t.Error("park never counted despite 1-slot response buffer")
	}
	if w.Gauge(obs.GChainMax) == 0 {
		t.Error("combine chain max gauge never raised")
	}
}

// TestObserveZeroAlloc pins the hot path at zero allocations per batch with
// observation off AND on (the merged-Get arena and worker shard are
// allocated up front / on first use, so steady state allocates nothing).
func TestObserveZeroAlloc(t *testing.T) {
	armed := obs.NewWith(4096, 8)
	armed.EnableHotKeys(256)
	armed.EnableOpLatency()
	for _, mode := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"off", nil},
		{"on", obs.NewWith(4096, 8)},
		// The introspection arms must not buy their data with allocations:
		// TopK.Offer and the per-op-class histograms are allocation-free.
		{"hotkeys+oplat", armed},
	} {
		tb := New(Config{Slots: 1 << 14, Observe: mode.reg})
		h := tb.NewHandle()
		reqs := obsWorkload(4096, 9)
		buf := make([]table.Response, len(reqs))
		run := func() {
			rem := reqs
			for len(rem) > 0 {
				nreq, _ := h.Submit(rem, buf)
				rem = rem[nreq:]
			}
			for {
				if _, done := h.Flush(buf); done {
					break
				}
			}
		}
		run() // warm the merged-node arena
		if n := testing.AllocsPerRun(5, run); n != 0 {
			t.Errorf("observe %s: %v allocs per batch, want 0", mode.name, n)
		}
	}
	// The armed registry must actually have collected: hot keys in the
	// sketch, latencies in every exercised op class.
	snap := armed.TakeSnapshot()
	if len(snap.HotKeys) == 0 {
		t.Error("armed registry collected no hot keys")
	}
	if len(snap.OpLatency) == 0 {
		t.Error("armed registry collected no op latencies")
	}
	for _, class := range []string{"get_hit", "put", "upsert"} {
		if snap.OpLatency[class].Count == 0 {
			t.Errorf("op class %s: no latencies recorded", class)
		}
	}
}
