package dramhit

import (
	"dramhit/internal/simd"
	"dramhit/internal/slotarr"
	"dramhit/internal/table"
)

// This file is the table.KernelSWAR execution model: the drain probes whole
// cache lines, not slots. Each drain snapshots the resident line's key lanes
// with one slotarr.LoadKeys pass, runs the lane-parallel branch-free kernel
// of internal/simd over the four key lanes, and acts on the first match in
// probe order. Tombstoned lanes match neither mask and are skipped without a
// branch. At most one value word is touched afterwards (the matched lane's —
// an L1 hit, the line is resident). Every state-changing decision made from
// the snapshot is re-verified against live memory by the claim CAS; a lost
// claim race re-snapshots the line and reruns the kernel rather than falling
// back to the scalar loop (see DESIGN.md "Line-granular SWAR probe kernel").
//
// The drains are specialized per operation so the 4-way op switch runs once
// per drain attempt in processOldest, not once per probed slot.

// Each drain opens with an entry-lane peek: at the fills the tables run at,
// most probes resolve in their home slot, and one load answers that case at
// exactly the scalar path's cost. Only when the peeked lane holds a
// different live key (a cluster walk has started) does the line kernel take
// over, replacing up to three more per-slot iterations with one fused
// lane-compare. The peek writes no Stats, so the counters stay identical to
// the scalar path's in every outcome.

// The FilterTags gate replaces the entry-lane peek: one load of the packed
// tag word (a tiny, cache-hot sidecar — 1 byte per 16-byte slot) answers
// "could any lane at or after the entry offset hold this key or terminate
// the chain?" before the 64-byte key line is touched. A rejected line is
// advanced past with the exact bound/advance accounting of the kernel's
// Miss branch, so the traversal — probes counted, lines visited, reprobes
// enqueued, and therefore the out-of-order completion order — is identical
// to FilterNone's; only the key-lane loads and the data prefetches are
// elided. That traversal parity is what the tags≡none property tests pin.
//
// The gate re-runs on every loop iteration (single-line-table wraps and
// lost-claim re-snapshots), which keeps the skip decision sound against
// concurrent publication: tags only transition 0 → fingerprint, so a
// rejection can never become wrong, and a zero (unpublished) tag keeps the
// lane in the candidate mask (the "must check" rule).

// drainGet resolves a pending Get over its resident line with the lane
// kernel. The matched lane's value is loaded after its key was observed —
// the same key-then-value order the scalar path uses — from the line the
// kernel just touched, so the load is an L1 hit, not a second memory touch.
func (h *Handle) drainGet(p pending, resps []table.Response, nresp *int) (wrote, blocked bool) {
	t := h.t
	tagged := h.filter == table.FilterTags
	if !tagged {
		h.stats.KeyLines++
		switch k := t.arr.Key(p.idx); k {
		case p.req.Key:
			if *nresp >= len(resps) {
				return false, true
			}
			return h.retire(p, table.Get, t.arr.WaitValue(p.idx), true, false, resps, nresp)
		case table.EmptyKey:
			if *nresp >= len(resps) {
				return false, true
			}
			return h.retire(p, table.Get, 0, false, false, resps, nresp)
		}
	}

	for {
		if tagged {
			base := p.idx &^ (table.SlotsPerCacheLine - 1)
			if t.arr.LineCandidates(base, p.tag)>>(p.idx-base) == 0 {
				// Every lane at or after the entry offset provably holds a
				// different published key: skip the line without loading it.
				h.stats.TagSkips++
				valid := t.size - base
				if valid > table.SlotsPerCacheLine {
					valid = table.SlotsPerCacheLine
				}
				if p.probes+valid-(p.idx-base) >= t.size {
					if *nresp >= len(resps) {
						return false, true
					}
					return h.completeFailed(p, resps, nresp)
				}
				p.probes += valid - (p.idx - base)
				next := base + table.SlotsPerCacheLine
				if next >= t.size {
					next = 0
				}
				p.idx = next
				if slotarr.LineOf(next) != slotarr.LineOf(base) {
					h.pop()
					h.prefetchNext(next, p.tag)
					h.stats.Reprobes++
					h.stats.Lines++
					h.enqueue(p)
					return false, false
				}
				continue
			}
			h.stats.KeyLines++
		}
		l0, l1, l2, l3, base, valid := t.arr.LoadKeys4(p.idx)
		lane, res := simd.ProbeLine4(l0, l1, l2, l3, p.req.Key, table.EmptyKey, int(p.idx-base))
		switch res {
		case simd.HitKey:
			if *nresp >= len(resps) {
				return false, true
			}
			if tagged {
				h.stats.TagHits++
			}
			return h.retire(p, table.Get, t.arr.WaitValue(base+uint64(lane)), true, false, resps, nresp)
		case simd.HitEmpty:
			if *nresp >= len(resps) {
				return false, true
			}
			if tagged {
				h.stats.TagHits++
			}
			return h.retire(p, table.Get, 0, false, false, resps, nresp)
		}
		if tagged {
			h.stats.TagFalse++
		}
		if p.probes+valid-(p.idx-base) >= t.size {
			// Full-table probe: not found.
			if *nresp >= len(resps) {
				return false, true
			}
			return h.completeFailed(p, resps, nresp)
		}
		// Missed line: advance past it. Lanes before the entry offset were
		// examined on an earlier pass (or never); only cidx..valid-1 count
		// toward the full-table bound, exactly matching the scalar loop's
		// per-slot accounting. This block is open-coded in each drain (not a
		// helper) so p never has its address taken and stays in registers
		// across the kernel loop, like the scalar path's probe cursor.
		p.probes += valid - (p.idx - base)
		next := base + table.SlotsPerCacheLine
		if next >= t.size {
			next = 0
		}
		p.idx = next
		if slotarr.LineOf(next) != slotarr.LineOf(base) {
			// Crossing into a new line: re-enqueue behind a fresh prefetch.
			h.pop()
			h.prefetchNext(next, p.tag)
			h.stats.Reprobes++
			h.stats.Lines++
			h.enqueue(p)
			return false, false
		}
		// Single-line-table wrap: the probe stays cache-resident; keep
		// draining (the loop top re-counts the new visit of the same line).
		if !tagged {
			h.stats.KeyLines++
		}
	}
}

// drainUpdate resolves a pending Put (add=false) or Upsert (add=true). An
// empty lane located in the snapshot is claimed with the key-word CAS; a
// lost race re-snapshots the line and reruns the kernel — the monotonic key
// transitions (empty → key → tombstone, never reused) guarantee the rerun
// observes the interfering claim and either matches it (same key) or probes
// past it.
func (h *Handle) drainUpdate(p pending, add bool, resps []table.Response, nresp *int) (wrote, blocked bool) {
	t := h.t
	op := table.Put
	if add {
		op = table.Upsert
	}
	tagged := h.filter == table.FilterTags
	if !tagged {
		h.stats.KeyLines++
		switch k := t.arr.Key(p.idx); k {
		case p.req.Key:
			h.stats.CASAttempts++
			v := p.req.Value
			if add {
				v = t.arr.AddValue(p.idx, p.req.Value)
			} else {
				t.arr.StoreValue(p.idx, p.req.Value)
			}
			return h.retire(p, op, v, true, false, resps, nresp)
		case table.EmptyKey:
			h.stats.CASAttempts++
			if t.arr.CASKey(p.idx, table.EmptyKey, p.req.Key) {
				t.arr.PublishTag(p.idx, p.tag)
				h.stats.CASAttempts++
				t.arr.StoreValue(p.idx, p.req.Value)
				t.used.Add(1)
				t.live.Add(1)
				return h.retire(p, op, p.req.Value, true, false, resps, nresp)
			}
			// Claim race lost: fall into the kernel loop, which re-snapshots.
		}
	}

	for {
		if tagged {
			base := p.idx &^ (table.SlotsPerCacheLine - 1)
			if t.arr.LineCandidates(base, p.tag)>>(p.idx-base) == 0 {
				// No lane can match the key and none is empty: skip the
				// line without loading it.
				h.stats.TagSkips++
				valid := t.size - base
				if valid > table.SlotsPerCacheLine {
					valid = table.SlotsPerCacheLine
				}
				if p.probes+valid-(p.idx-base) >= t.size {
					return h.retire(p, op, 0, false, true, resps, nresp)
				}
				p.probes += valid - (p.idx - base)
				next := base + table.SlotsPerCacheLine
				if next >= t.size {
					next = 0
				}
				p.idx = next
				if slotarr.LineOf(next) != slotarr.LineOf(base) {
					h.pop()
					h.prefetchNext(next, p.tag)
					h.stats.Reprobes++
					h.stats.Lines++
					h.enqueue(p)
					return false, false
				}
				continue
			}
			h.stats.KeyLines++
		}
		l0, l1, l2, l3, base, valid := t.arr.LoadKeys4(p.idx)
		lane, res := simd.ProbeLine4(l0, l1, l2, l3, p.req.Key, table.EmptyKey, int(p.idx-base))
		switch res {
		case simd.HitKey:
			if tagged {
				h.stats.TagHits++
			}
			slot := base + uint64(lane)
			h.stats.CASAttempts++
			v := p.req.Value
			if add {
				v = t.arr.AddValue(slot, p.req.Value)
			} else {
				t.arr.StoreValue(slot, p.req.Value)
			}
			return h.retire(p, op, v, true, false, resps, nresp)
		case simd.HitEmpty:
			slot := base + uint64(lane)
			h.stats.CASAttempts++
			if t.arr.CASKey(slot, table.EmptyKey, p.req.Key) {
				if tagged {
					h.stats.TagHits++
				}
				// Publish the fingerprint before the value: the sooner the
				// tag leaves 0, the sooner concurrent probes can prune this
				// lane. A reader that still sees 0 just takes the must-check
				// path — correctness never waits on this store.
				t.arr.PublishTag(slot, p.tag)
				h.stats.CASAttempts++
				t.arr.StoreValue(slot, p.req.Value)
				t.used.Add(1)
				t.live.Add(1)
				return h.retire(p, op, p.req.Value, true, false, resps, nresp)
			}
			// Claim race lost: the lane now holds some key. Re-snapshot and
			// rerun the kernel over the same line (the loop top re-gates on
			// the tag word, which may now reject the whole line outright).
			continue
		}
		if tagged {
			h.stats.TagFalse++
		}
		if p.probes+valid-(p.idx-base) >= t.size {
			// Full-table probe: the table is full.
			return h.retire(p, op, 0, false, true, resps, nresp)
		}
		// Missed line: advance past it. Lanes before the entry offset were
		// examined on an earlier pass (or never); only cidx..valid-1 count
		// toward the full-table bound, exactly matching the scalar loop's
		// per-slot accounting. This block is open-coded in each drain (not a
		// helper) so p never has its address taken and stays in registers
		// across the kernel loop, like the scalar path's probe cursor.
		p.probes += valid - (p.idx - base)
		next := base + table.SlotsPerCacheLine
		if next >= t.size {
			next = 0
		}
		p.idx = next
		if slotarr.LineOf(next) != slotarr.LineOf(base) {
			// Crossing into a new line: re-enqueue behind a fresh prefetch.
			h.pop()
			h.prefetchNext(next, p.tag)
			h.stats.Reprobes++
			h.stats.Lines++
			h.enqueue(p)
			return false, false
		}
		// Single-line-table wrap: the probe stays cache-resident; keep
		// draining (the loop top re-counts the new visit of the same line).
		if !tagged {
			h.stats.KeyLines++
		}
	}
}

// drainDelete resolves a pending Delete: a matched lane is tombstoned with a
// CAS that re-verifies the snapshot (a concurrent Delete of the same key may
// have won, in which case this one reports a miss, exactly like the scalar
// path).
func (h *Handle) drainDelete(p pending) (wrote, blocked bool) {
	t := h.t
	tagged := h.filter == table.FilterTags
	if !tagged {
		h.stats.KeyLines++
		switch k := t.arr.Key(p.idx); k {
		case p.req.Key:
			h.pop()
			if t.arr.CASKey(p.idx, p.req.Key, table.TombstoneKey) {
				t.live.Add(-1)
				h.finish(p, table.Delete, true)
			} else {
				h.finish(p, table.Delete, false)
			}
			return true, false
		case table.EmptyKey:
			h.pop()
			h.finish(p, table.Delete, false)
			return true, false
		}
	}

	for {
		if tagged {
			base := p.idx &^ (table.SlotsPerCacheLine - 1)
			if t.arr.LineCandidates(base, p.tag)>>(p.idx-base) == 0 {
				// The key cannot be in this line and no empty lane ends the
				// chain: skip the line without loading it. (A tombstoned
				// incarnation of the key keeps its stale matching tag, so a
				// line holding it is admitted and the kernel skips it — the
				// tag can prune only lines that never held this fingerprint.)
				h.stats.TagSkips++
				valid := t.size - base
				if valid > table.SlotsPerCacheLine {
					valid = table.SlotsPerCacheLine
				}
				if p.probes+valid-(p.idx-base) >= t.size {
					h.pop()
					h.finish(p, table.Delete, false)
					return true, false
				}
				p.probes += valid - (p.idx - base)
				next := base + table.SlotsPerCacheLine
				if next >= t.size {
					next = 0
				}
				p.idx = next
				if slotarr.LineOf(next) != slotarr.LineOf(base) {
					h.pop()
					h.prefetchNext(next, p.tag)
					h.stats.Reprobes++
					h.stats.Lines++
					h.enqueue(p)
					return false, false
				}
				continue
			}
			h.stats.KeyLines++
		}
		l0, l1, l2, l3, base, valid := t.arr.LoadKeys4(p.idx)
		lane, res := simd.ProbeLine4(l0, l1, l2, l3, p.req.Key, table.EmptyKey, int(p.idx-base))
		switch res {
		case simd.HitKey:
			if tagged {
				h.stats.TagHits++
			}
			h.pop()
			h.stats.CASAttempts++
			if t.arr.CASKey(base+uint64(lane), p.req.Key, table.TombstoneKey) {
				t.live.Add(-1)
				h.finish(p, table.Delete, true)
			} else {
				h.finish(p, table.Delete, false)
			}
			return true, false
		case simd.HitEmpty:
			if tagged {
				h.stats.TagHits++
			}
			h.pop()
			h.finish(p, table.Delete, false)
			return true, false
		}
		if tagged {
			h.stats.TagFalse++
		}
		if p.probes+valid-(p.idx-base) >= t.size {
			h.pop()
			h.finish(p, table.Delete, false)
			return true, false
		}
		// Missed line: advance past it. Lanes before the entry offset were
		// examined on an earlier pass (or never); only cidx..valid-1 count
		// toward the full-table bound, exactly matching the scalar loop's
		// per-slot accounting. This block is open-coded in each drain (not a
		// helper) so p never has its address taken and stays in registers
		// across the kernel loop, like the scalar path's probe cursor.
		p.probes += valid - (p.idx - base)
		next := base + table.SlotsPerCacheLine
		if next >= t.size {
			next = 0
		}
		p.idx = next
		if slotarr.LineOf(next) != slotarr.LineOf(base) {
			// Crossing into a new line: re-enqueue behind a fresh prefetch.
			h.pop()
			h.prefetchNext(next, p.tag)
			h.stats.Reprobes++
			h.stats.Lines++
			h.enqueue(p)
			return false, false
		}
		// Single-line-table wrap: the probe stays cache-resident; keep
		// draining (the loop top re-counts the new visit of the same line).
		if !tagged {
			h.stats.KeyLines++
		}
	}
}
