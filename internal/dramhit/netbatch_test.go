package dramhit

import (
	"fmt"
	"math/rand"
	"testing"

	"dramhit/internal/table"
)

// TestByteGatekeeping pins the byte pipeline's programmer-error panics:
// submit before arming, Upsert ops, and re-arming with requests in flight.
func TestByteGatekeeping(t *testing.T) {
	h := newBucketTable(256).NewHandle()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("SubmitBytes before OnByteComplete", func() {
		h.SubmitBytes(table.Get, 0, []byte("k"), nil)
	})
	h.OnByteComplete(func(ByteCompletion) {})
	mustPanic("SubmitBytes(Upsert)", func() {
		h.SubmitBytes(table.Upsert, 0, []byte("k"), []byte("v"))
	})
	h.SubmitBytes(table.Put, 0, []byte("k"), []byte("v"))
	mustPanic("OnByteComplete with requests in flight", func() {
		h.OnByteComplete(func(ByteCompletion) {})
	})
	h.FlushBytes()
	// Re-arming at an empty pipeline is legal.
	h.OnByteComplete(func(ByteCompletion) {})
}

// TestBytePipelineFIFO pins the property the network servers are built on:
// completions arrive in exact submission order, even when submissions
// trigger window-full drains mid-batch.
func TestBytePipelineFIFO(t *testing.T) {
	h := newBucketTable(4096).NewHandle()
	var order []uint64
	h.OnByteComplete(func(c ByteCompletion) { order = append(order, c.ID) })
	const n = 500 // many multiples of the window
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i%97)) // duplicates included
	}
	for i, k := range keys {
		if i%3 == 0 {
			h.SubmitBytes(table.Put, uint64(i), k, []byte("v"))
		} else {
			h.SubmitBytes(table.Get, uint64(i), k, nil)
		}
	}
	h.FlushBytes()
	if len(order) != n {
		t.Fatalf("completions = %d, want %d", len(order), n)
	}
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("completion %d carries id %d: not FIFO", i, id)
		}
	}
	if h.PendingBytes() != 0 {
		t.Fatalf("PendingBytes = %d after flush", h.PendingBytes())
	}
}

// TestBytePipelineOracle drives a random op sequence through the async byte
// pipeline and checks every completion against a reference map mutated in
// the same submission order — valid precisely because completions are FIFO
// and resolve against table state at drain time, which equals submission
// order state for single-handle use.
func TestBytePipelineOracle(t *testing.T) {
	h := newBucketTable(1 << 14).NewHandle()
	rng := rand.New(rand.NewSource(7))
	ref := map[string]string{}
	type exp struct {
		op    table.Op
		key   string
		val   string // expected Get value
		found bool
	}
	var queue []exp
	ncomplete := 0
	h.OnByteComplete(func(c ByteCompletion) {
		e := queue[ncomplete]
		ncomplete++
		if c.ID != uint64(ncomplete-1) {
			t.Fatalf("completion id %d at position %d", c.ID, ncomplete-1)
		}
		if c.Op != e.op || c.Found != e.found {
			t.Fatalf("op %d on %q: completion (%v, found=%v), want (%v, found=%v)",
				ncomplete-1, e.key, c.Op, c.Found, e.op, e.found)
		}
		if e.op == table.Get && e.found && string(c.Value) != e.val {
			t.Fatalf("Get %q = %q, want %q", e.key, c.Value, e.val)
		}
	})

	const ops = 6000
	keyOf := func(i int) string { return fmt.Sprintf("oracle-key-%03d", i) }
	for i := 0; i < ops; i++ {
		k := keyOf(rng.Intn(200)) // hot keyspace: plenty of same-key pipelining
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // Get
			v, ok := ref[k]
			queue = append(queue, exp{op: table.Get, key: k, val: v, found: ok})
			h.SubmitBytes(table.Get, uint64(i), []byte(k), nil)
		case 4, 5, 6, 7: // Put
			_, existed := ref[k]
			v := fmt.Sprintf("val-%d", i)
			ref[k] = v
			queue = append(queue, exp{op: table.Put, key: k, found: existed})
			h.SubmitBytes(table.Put, uint64(i), []byte(k), []byte(v))
		default: // Delete
			_, existed := ref[k]
			delete(ref, k)
			queue = append(queue, exp{op: table.Delete, key: k, found: existed})
			h.SubmitBytes(table.Delete, uint64(i), []byte(k), nil)
		}
		if rng.Intn(64) == 0 {
			h.FlushBytes()
		}
	}
	h.FlushBytes()
	if ncomplete != ops {
		t.Fatalf("completed %d of %d ops", ncomplete, ops)
	}
}

// TestBytePipelineMatchesSyncAPI replays one workload through the async
// pipeline and the synchronous byte API on twin tables: every result and
// the execution-model-invariant stats must agree (the async path is the
// same engine call, just prefetch-scheduled).
func TestBytePipelineMatchesSyncAPI(t *testing.T) {
	ta, ts := newBucketTable(1<<13), newBucketTable(1<<13)
	ha, hs := ta.NewHandle(), ts.NewHandle()

	type res struct {
		val   string
		found bool
	}
	var async []res
	ha.OnByteComplete(func(c ByteCompletion) {
		async = append(async, res{string(c.Value), c.Found})
	})
	var sync []res

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		k := []byte(fmt.Sprintf("twin-%03d", rng.Intn(300)))
		switch rng.Intn(8) {
		case 0, 1, 2: // Get
			ha.SubmitBytes(table.Get, uint64(i), k, nil)
			v, ok := hs.GetBytes(k)
			sync = append(sync, res{string(v), ok})
		case 3, 4, 5: // Put
			v := []byte(fmt.Sprintf("v%d", i))
			ha.SubmitBytes(table.Put, uint64(i), k, v)
			sync = append(sync, res{"", hs.PutBytes(k, v)})
		default: // Delete
			ha.SubmitBytes(table.Delete, uint64(i), k, nil)
			sync = append(sync, res{"", hs.DeleteBytes(k)})
		}
	}
	ha.FlushBytes()
	if len(async) != len(sync) {
		t.Fatalf("async completed %d, sync %d", len(async), len(sync))
	}
	for i := range async {
		af, sf := async[i], sync[i]
		if af.found != sf.found || af.val != sf.val {
			t.Fatalf("op %d diverged: async (%q, %v) vs sync (%q, %v)",
				i, af.val, af.found, sf.val, sf.found)
		}
	}
	sa, ss := ha.Stats().Core(), hs.Stats().Core()
	// Lines differ by design (the async path counts its prefetches); zero it.
	sa.Lines, ss.Lines = 0, 0
	if sa != ss {
		t.Fatalf("stats diverged:\nasync %+v\nsync  %+v", sa, ss)
	}
	if ta.Len() != ts.Len() {
		t.Fatalf("table lengths diverged: %d vs %d", ta.Len(), ts.Len())
	}
}

// TestBytePipelineZeroAllocSteadyState: a warm pipeline must not allocate
// per op — the ring, the engine handle, and the callback path are all
// allocation-free (completions alias arena records).
func TestBytePipelineZeroAllocSteadyState(t *testing.T) {
	h := newBucketTable(4096).NewHandle()
	var sink int
	h.OnByteComplete(func(c ByteCompletion) { sink += len(c.Value) })
	key, val := []byte("steady-key"), []byte("steady-val")
	h.SubmitBytes(table.Put, 0, key, val)
	h.FlushBytes()
	run := func() {
		for i := 0; i < 64; i++ {
			h.SubmitBytes(table.Get, uint64(i), key, nil)
		}
		h.FlushBytes()
	}
	run() // warm
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("steady-state byte pipeline allocates %v/run", allocs)
	}
}
