package dramhit

import (
	"sync"
	"testing"

	"dramhit/internal/table"
	"dramhit/internal/workload"
)

func newBucketTable(slots uint64, extra ...func(*Config)) *Table {
	cfg := Config{Slots: slots, Layout: table.LayoutBucket}
	for _, fn := range extra {
		fn(&cfg)
	}
	return New(cfg)
}

// TestBucketPipelineBasic drives the batched interface end to end on the
// bucket layout: puts, upserts, gets with ID scatter, deletes.
func TestBucketPipelineBasic(t *testing.T) {
	tb := newBucketTable(4096)
	if tb.Layout() != table.LayoutBucket || tb.Bucket() == nil {
		t.Fatal("bucket table does not report LayoutBucket")
	}
	h := tb.NewHandle()
	keys := workload.UniqueKeys(42, 2000)
	vals := make([]uint64, len(keys))
	for i, k := range keys {
		vals[i] = k ^ 0xdead
	}
	h.PutBatch(keys, vals)
	got := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	h.GetBatch(keys, got, found)
	for i := range keys {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("GetBatch[%d] = (%d, %v), want (%d, true)", i, got[i], found[i], vals[i])
		}
	}
	h.UpsertBatch(keys, 3)
	h.GetBatch(keys, got, found)
	for i := range keys {
		if got[i] != vals[i]+3 {
			t.Fatalf("after upsert, key %d = %d, want %d", keys[i], got[i], vals[i]+3)
		}
	}
	if tb.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(keys))
	}
	s := h.Stats()
	if s.Ops() == 0 || s.KeyLines == 0 {
		t.Fatalf("bucket stats not folded: %+v", s)
	}
}

// TestBucketReservedKeys checks that the reserved uint64 key values are
// ordinary keys on the bucket layout (no side slots involved).
func TestBucketReservedKeys(t *testing.T) {
	s := newBucketTable(256).NewSync()
	for _, k := range []uint64{table.EmptyKey, table.TombstoneKey, table.MovedKey} {
		if !s.Put(k, k+9) {
			t.Fatalf("Put(%#x) failed", k)
		}
		if v, ok := s.Get(k); !ok || v != k+9 {
			t.Fatalf("Get(%#x) = (%d, %v)", k, v, ok)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Delete(table.MovedKey) {
		t.Fatal("Delete(MovedKey) reported absent")
	}
	if _, ok := s.Get(table.MovedKey); ok {
		t.Fatal("deleted reserved key still present")
	}
}

// TestBucketGrowthThroughPipeline forces the engine to resize mid-stream
// under a pipelined writer and checks nothing is lost.
func TestBucketGrowthThroughPipeline(t *testing.T) {
	tb := newBucketTable(32) // tiny: 2000 inserts force several doublings
	h := tb.NewHandle()
	keys := workload.UniqueKeys(7, 2000)
	vals := make([]uint64, len(keys))
	for i, k := range keys {
		vals[i] = k + 1
	}
	h.PutBatch(keys, vals)
	if g := tb.Bucket().Grows(); g < 2 {
		t.Fatalf("Grows = %d, want >= 2", g)
	}
	got := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	h.GetBatch(keys, got, found)
	for i := range keys {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("lost key %d across resize: (%d, %v)", keys[i], got[i], found[i])
		}
	}
}

// TestBucketFlatEquivalence replays one uint64 workload through a flat and
// a bucket table via the synchronous adapter and requires bit-identical
// responses op by op (the layouts differ physically, never semantically).
func TestBucketFlatEquivalence(t *testing.T) {
	flat := New(Config{Slots: 4096}).NewSync()
	bkt := newBucketTable(4096).NewSync()
	rng := workload.UniqueKeys(99, 1)[0] // deterministic scramble seed
	key := func(i int) uint64 { return (uint64(i)%257)*0x9e37 ^ rng }
	for i := 0; i < 12000; i++ {
		k := key(i)
		switch i % 7 {
		case 0, 1:
			v := uint64(i) * 3
			pf, pb := flat.Put(k, v), bkt.Put(k, v)
			if pf != pb {
				t.Fatalf("op %d: Put diverged: flat=%v bucket=%v", i, pf, pb)
			}
		case 2:
			vf, of := flat.Upsert(k, 5)
			vb, ob := bkt.Upsert(k, 5)
			if vf != vb || of != ob {
				t.Fatalf("op %d: Upsert diverged: flat=(%d,%v) bucket=(%d,%v)", i, vf, of, vb, ob)
			}
		case 3:
			df, db := flat.Delete(k), bkt.Delete(k)
			if df != db {
				t.Fatalf("op %d: Delete diverged: flat=%v bucket=%v", i, df, db)
			}
		default:
			vf, of := flat.Get(k)
			vb, ob := bkt.Get(k)
			if vf != vb || of != ob {
				t.Fatalf("op %d: Get diverged: flat=(%d,%v) bucket=(%d,%v)", i, vf, of, vb, ob)
			}
		}
		if flat.Len() != bkt.Len() {
			t.Fatalf("op %d: Len diverged: flat=%d bucket=%d", i, flat.Len(), bkt.Len())
		}
	}
}

// TestBucketConcurrentEquivalence runs racing mutators on both layouts over
// disjoint key ranges (so the final state is deterministic) across at least
// one bucket resize, then requires identical final contents. Run under
// -race this doubles as the layout's pipeline-level race check.
func TestBucketConcurrentEquivalence(t *testing.T) {
	flatT := New(Config{Slots: 1 << 14})
	bktT := newBucketTable(64) // starts tiny: racing writers drive resizes
	const g = 4
	const perG = 1500
	keys := workload.UniqueKeys(123, g*perG)
	run := func(tb *Table) {
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := tb.NewHandle()
				part := keys[w*perG : (w+1)*perG]
				vals := make([]uint64, len(part))
				for i, k := range part {
					vals[i] = k * 2
				}
				h.PutBatch(part, vals)
				h.UpsertBatch(part[:perG/2], 1)
				for i := 0; i < perG/8; i++ {
					h.Submit([]table.Request{{Op: table.Delete, Key: part[perG-1-i]}}, nil)
				}
				h.Flush(nil)
			}(w)
		}
		wg.Wait()
	}
	run(flatT)
	run(bktT)
	if bktT.Bucket().Grows() == 0 {
		t.Fatal("expected at least one resize under racing writers")
	}
	if flatT.Len() != bktT.Len() {
		t.Fatalf("final Len: flat=%d bucket=%d", flatT.Len(), bktT.Len())
	}
	fs, bs := flatT.NewSync(), bktT.NewSync()
	for _, k := range keys {
		vf, of := fs.Get(k)
		vb, ob := bs.Get(k)
		if vf != vb || of != ob {
			t.Fatalf("key %d: flat=(%d,%v) bucket=(%d,%v)", k, vf, of, vb, ob)
		}
	}
}

// TestBucketDirectMode pins the governor's direct path on the bucket
// layout: a forced-direct table must agree with the pipelined one.
func TestBucketDirectMode(t *testing.T) {
	dir := newBucketTable(2048, func(c *Config) { c.Governor = table.GovernorDirect }).NewSync()
	pip := newBucketTable(2048).NewSync()
	for i := 0; i < 4000; i++ {
		k := uint64(i % 301)
		switch i % 6 {
		case 0, 1:
			dir.Put(k, uint64(i))
			pip.Put(k, uint64(i))
		case 2:
			vd, _ := dir.Upsert(k, 2)
			vp, _ := pip.Upsert(k, 2)
			if vd != vp {
				t.Fatalf("op %d: direct Upsert %d != pipelined %d", i, vd, vp)
			}
		case 3:
			if dd, dp := dir.Delete(k), pip.Delete(k); dd != dp {
				t.Fatalf("op %d: direct Delete %v != pipelined %v", i, dd, dp)
			}
		default:
			vd, od := dir.Get(k)
			vp, op := pip.Get(k)
			if vd != vp || od != op {
				t.Fatalf("op %d: direct Get (%d,%v) != pipelined (%d,%v)", i, vd, od, vp, op)
			}
		}
	}
}

// TestBucketByteAPI exercises the byte-string surface the layout grows:
// variable-length keys and values, mutate-in-place, delete.
func TestBucketByteAPI(t *testing.T) {
	h := newBucketTable(1024).NewHandle()
	if existed := h.PutBytes([]byte("chr1:1042"), []byte("ACGTACGT")); existed {
		t.Fatal("fresh byte key reported existing")
	}
	if v, ok := h.GetBytes([]byte("chr1:1042")); !ok || string(v) != "ACGTACGT" {
		t.Fatalf("GetBytes = (%q, %v)", v, ok)
	}
	if _, ok := h.GetBytes([]byte("chr1:1043")); ok {
		t.Fatal("absent byte key reported present")
	}
	h.UpsertBytes([]byte("chr1:1042"), func(old []byte, present bool) []byte {
		if !present || string(old) != "ACGTACGT" {
			t.Fatalf("UpsertBytes saw (%q, %v)", old, present)
		}
		return append(append([]byte(nil), old...), '!')
	})
	if v, _ := h.GetBytes([]byte("chr1:1042")); string(v) != "ACGTACGT!" {
		t.Fatalf("after mutate, value = %q", v)
	}
	if !h.DeleteBytes([]byte("chr1:1042")) {
		t.Fatal("DeleteBytes of present key reported absent")
	}
	if h.DeleteBytes([]byte("chr1:1042")) {
		t.Fatal("second DeleteBytes reported present")
	}
	s := h.Stats()
	if s.Gets != 3 || s.Puts != 1 || s.Upserts != 1 || s.Deletes != 2 {
		t.Fatalf("byte ops miscounted: %+v", s)
	}
}

// TestBucketByteGetZeroAlloc pins the acceptance criterion: a byte-KV Get
// allocates nothing.
func TestBucketByteGetZeroAlloc(t *testing.T) {
	h := newBucketTable(1024).NewHandle()
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte{byte(i), byte(i >> 3), 'k', 'e', 'y'}
		h.PutBytes(keys[i], []byte{byte(i), 0xaa})
	}
	var sink byte
	allocs := testing.AllocsPerRun(200, func() {
		for _, k := range keys {
			v, ok := h.GetBytes(k)
			if !ok {
				t.Fatal("lost key")
			}
			sink ^= v[0]
		}
	})
	if allocs != 0 {
		t.Fatalf("GetBytes allocates %.1f per run, want 0", allocs)
	}
	_ = sink
}

// TestBucketByteAPIRequiresLayout pins the panic contract on flat tables.
func TestBucketByteAPIRequiresLayout(t *testing.T) {
	h := New(Config{Slots: 64}).NewHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("byte API on a flat table did not panic")
		}
	}()
	h.PutBytes([]byte("k"), []byte("v"))
}

// TestBucketCombining checks that in-window combining composes with the
// bucket drain: duplicate upserts fold, duplicate gets piggyback, and the
// counts stay exact.
func TestBucketCombining(t *testing.T) {
	tb := newBucketTable(1024) // CombineOn is the default
	h := tb.NewHandle()
	reqs := make([]table.Request, 0, 64)
	for i := 0; i < 16; i++ {
		reqs = append(reqs, table.Request{Op: table.Upsert, Key: 77, Value: 1})
	}
	resps := make([]table.Response, 64)
	h.Submit(reqs, resps)
	h.Flush(resps)
	if v, ok := tb.NewSync().Get(77); !ok || v != 16 {
		t.Fatalf("combined upserts: Get(77) = (%d, %v), want (16, true)", v, ok)
	}
	if h.Stats().CombinedUpserts == 0 {
		t.Fatal("no upserts were combined in a same-key burst")
	}
	// A burst of Gets for one key: every request gets its own response.
	reqs = reqs[:0]
	for i := 0; i < 16; i++ {
		reqs = append(reqs, table.Request{Op: table.Get, Key: 77, ID: uint64(i)})
	}
	var n int
	_, n = h.Submit(reqs, resps)
	more, done := h.Flush(resps[n:])
	if !done {
		t.Fatal("flush did not finish")
	}
	n += more
	if n != 16 {
		t.Fatalf("16 combined gets produced %d responses", n)
	}
	for _, r := range resps[:16] {
		if !r.Found || r.Value != 16 {
			t.Fatalf("combined get response = %+v", r)
		}
	}
}
