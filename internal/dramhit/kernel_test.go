package dramhit

import (
	"math/rand"
	"sync"
	"testing"

	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// kernelPair drives two tables — one per probe kernel — through the same
// request stream with the same flush boundaries and asserts byte-identical
// behaviour: every response (order included, since both pipelines are
// deterministic for a single handle) and the core Stats counters. The
// filter-observability counters (KeyLines, TagSkips, TagHits, TagFalse)
// are excluded via Stats.Core — they intentionally differ between probe
// configurations; filter_test.go pins their cross-filter invariants.
type kernelPair struct {
	t              *testing.T
	scalar, swar   *Handle
	rScal, rSwar   []table.Response
	nScal, nSwar   int
	scalarT, swarT *Table
}

// respCap must cover the responses that can pile up between compare()
// calls — Submit spins if the response buffer fills before a flush.
func newKernelPair(t *testing.T, slots uint64, window, respCap int) *kernelPair {
	ts := New(Config{Slots: slots, PrefetchWindow: window, ProbeKernel: table.KernelScalar})
	tw := New(Config{Slots: slots, PrefetchWindow: window, ProbeKernel: table.KernelSWAR})
	return &kernelPair{
		t:       t,
		scalarT: ts,
		swarT:   tw,
		scalar:  ts.NewHandle(),
		swar:    tw.NewHandle(),
		rScal:   make([]table.Response, respCap),
		rSwar:   make([]table.Response, respCap),
	}
}

func (kp *kernelPair) compare(what string) {
	kp.t.Helper()
	if kp.nScal != kp.nSwar {
		kp.t.Fatalf("%s: scalar wrote %d responses, swar %d", what, kp.nScal, kp.nSwar)
	}
	for i := 0; i < kp.nScal; i++ {
		if kp.rScal[i] != kp.rSwar[i] {
			kp.t.Fatalf("%s: response %d diverged: scalar %+v swar %+v", what, i, kp.rScal[i], kp.rSwar[i])
		}
	}
	kp.nScal, kp.nSwar = 0, 0
	ss, sw := kp.scalar.Stats().Core(), kp.swar.Stats().Core()
	if ss != sw {
		kp.t.Fatalf("%s: stats diverged:\nscalar %+v\nswar   %+v", what, ss, sw)
	}
}

func (kp *kernelPair) submit(reqs []table.Request) {
	kp.t.Helper()
	remS, remW := reqs, reqs
	for len(remS) > 0 || len(remW) > 0 {
		if len(remS) > 0 {
			n, nr := kp.scalar.Submit(remS, kp.rScal[kp.nScal:])
			remS = remS[n:]
			kp.nScal += nr
		}
		if len(remW) > 0 {
			n, nr := kp.swar.Submit(remW, kp.rSwar[kp.nSwar:])
			remW = remW[n:]
			kp.nSwar += nr
		}
	}
}

func (kp *kernelPair) flush() {
	kp.t.Helper()
	for {
		n, done := kp.scalar.Flush(kp.rScal[kp.nScal:])
		kp.nScal += n
		if done {
			break
		}
	}
	for {
		n, done := kp.swar.Flush(kp.rSwar[kp.nSwar:])
		kp.nSwar += n
		if done {
			break
		}
	}
}

// TestKernelEquivalenceProperty is the SWAR-vs-scalar property test: over
// randomized mixed workloads — all four ops, reserved keys, hot key ranges
// forcing collisions, tombstone churn, wrap-around on tables whose size is
// not a multiple of the line width, single-line tables, and table-full
// failures — the two kernels must produce identical responses and identical
// Stats (including Reprobes and Lines, the line-crossing counters).
func TestKernelEquivalenceProperty(t *testing.T) {
	sizes := []uint64{3, 4, 5, 16, 37, 251, 1024}
	windows := []int{1, 4, 16}
	for _, size := range sizes {
		for _, window := range windows {
			rng := rand.New(rand.NewSource(int64(size)*31 + int64(window)))
			// Key range ~2x the table size: dense collisions, frequent
			// misses, and (for tiny tables) guaranteed table-full Puts.
			keyRange := int(size) * 2
			var batch []table.Request
			var nextID uint64
			ops := 4000
			if size >= 1024 {
				ops = 20000
			}
			kp := newKernelPair(t, size, window, ops+64)
			for i := 0; i < ops; i++ {
				var k uint64
				switch rng.Intn(20) {
				case 0:
					k = table.EmptyKey // side-slot path
				case 1:
					k = table.TombstoneKey // side-slot path
				default:
					k = uint64(rng.Intn(keyRange)) + 1
				}
				op := table.Op(rng.Intn(4))
				id := nextID
				nextID++
				batch = append(batch, table.Request{Op: op, Key: k, Value: uint64(rng.Intn(1 << 16)), ID: id})
				if len(batch) >= 1+rng.Intn(32) {
					kp.submit(batch)
					batch = batch[:0]
					if rng.Intn(4) == 0 {
						kp.flush()
						kp.compare("mid-run")
					}
				}
			}
			kp.submit(batch)
			kp.flush()
			kp.compare("final")
			if kp.scalarT.Len() != kp.swarT.Len() {
				t.Fatalf("size %d window %d: Len diverged: scalar %d swar %d",
					size, window, kp.scalarT.Len(), kp.swarT.Len())
			}
			if kp.scalarT.Fill() != kp.swarT.Fill() {
				t.Fatalf("size %d window %d: Fill diverged: scalar %v swar %v",
					size, window, kp.scalarT.Fill(), kp.swarT.Fill())
			}
		}
	}
}

// TestKernelEquivalenceTableScan cross-checks the final slot arrays: after
// an identical deterministic workload the two kernels must have claimed the
// same slots with the same keys (both probe in the same order, so placement
// — not just content — must agree).
func TestKernelEquivalenceTableScan(t *testing.T) {
	kp := newKernelPair(t, 512, 8, 30064)
	rng := rand.New(rand.NewSource(99))
	var batch []table.Request
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(700)) + 1
		batch = append(batch, table.Request{Op: table.Op(rng.Intn(4)), Key: k, Value: 7, ID: uint64(i)})
		if len(batch) == 24 {
			kp.submit(batch)
			batch = batch[:0]
		}
	}
	kp.submit(batch)
	kp.flush()
	kp.compare("scan")
	for i := uint64(0); i < 512; i++ {
		if ks, kw := kp.scalarT.arr.Key(i), kp.swarT.arr.Key(i); ks != kw {
			t.Fatalf("slot %d: scalar key %#x, swar key %#x", i, ks, kw)
		}
	}
}

// TestKernelClaimRaces hammers the SWAR claim-CAS re-snapshot path: many
// handles race Puts and Upserts over a small hot key set. Run under -race
// this exercises the snapshot/CAS/re-snapshot protocol; the assertions check
// that no key was ever claimed twice and upsert counts aggregated exactly.
func TestKernelClaimRaces(t *testing.T) {
	tbl := New(Config{Slots: 4096, ProbeKernel: table.KernelSWAR})
	keys := workload.UniqueKeys(8, 64)
	const goroutines = 8
	const rounds = 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tbl.NewHandle()
			for r := 0; r < rounds; r++ {
				h.UpsertBatch(keys, 1)
			}
		}(g)
	}
	wg.Wait()

	s := tbl.NewSync()
	for _, k := range keys {
		if v, ok := s.Get(k); !ok || v != goroutines*rounds {
			t.Fatalf("key %d: count (%d, %v), want %d", k, v, ok, goroutines*rounds)
		}
	}
	// No key may occupy two slots: a lost claim race that failed to
	// re-verify would leave a duplicate.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < uint64(tbl.Cap()); i++ {
		k := tbl.arr.Key(i)
		if k == table.EmptyKey || k == table.TombstoneKey {
			continue
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("key %d claimed in slots %d and %d", k, prev, i)
		}
		seen[k] = i
	}
	if len(seen) != len(keys) {
		t.Fatalf("table holds %d live keys, want %d", len(seen), len(keys))
	}
}

// TestKernelMixedOpRaces races all four ops across kernels and handles on
// one SWAR table; invariants (no duplicate claims, live count equals a
// final scan) must hold whatever interleaving the scheduler picks.
func TestKernelMixedOpRaces(t *testing.T) {
	tbl := New(Config{Slots: 1 << 12, ProbeKernel: table.KernelSWAR})
	keys := workload.UniqueKeys(9, 256)
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tbl.NewHandle()
			rng := rand.New(rand.NewSource(int64(g)))
			reqs := make([]table.Request, 16)
			resps := make([]table.Response, 64)
			for r := 0; r < 500; r++ {
				for j := range reqs {
					reqs[j] = table.Request{
						Op:    table.Op(rng.Intn(4)),
						Key:   keys[rng.Intn(len(keys))],
						Value: 1,
						ID:    uint64(j),
					}
				}
				rem := reqs[:]
				for len(rem) > 0 {
					n, _ := h.Submit(rem, resps)
					rem = rem[n:]
				}
			}
			for {
				if _, done := h.Flush(resps); done {
					break
				}
			}
		}(g)
	}
	wg.Wait()

	live := 0
	seen := make(map[uint64]bool)
	for i := uint64(0); i < uint64(tbl.Cap()); i++ {
		k := tbl.arr.Key(i)
		if k == table.EmptyKey || k == table.TombstoneKey {
			continue
		}
		if seen[k] {
			t.Fatalf("key %d claimed twice", k)
		}
		seen[k] = true
		live++
	}
	if got := int(tbl.live.Load()); got != live {
		t.Fatalf("live counter %d, scan found %d", got, live)
	}
}

// TestScalarKernelStillSelectable pins the ablation contract: explicitly
// configured scalar tables run the scalar path and still pass a basic
// workload (the conformance suite runs both kernels; this guards the Config
// wiring itself).
func TestScalarKernelStillSelectable(t *testing.T) {
	tbl := New(Config{Slots: 1024, ProbeKernel: table.KernelScalar})
	if tbl.Kernel() != table.KernelScalar {
		t.Fatalf("Kernel() = %v, want scalar", tbl.Kernel())
	}
	if def := New(Config{Slots: 16}); def.Kernel() != table.KernelSWAR {
		t.Fatalf("default Kernel() = %v, want swar", def.Kernel())
	}
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(10, 700)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = keys[i] * 3
	}
	h.PutBatch(keys, vals)
	got := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	h.GetBatch(keys, got, found)
	for i := range keys {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("scalar kernel: key %d got (%d,%v)", keys[i], got[i], found[i])
		}
	}
}
