package dramhit

import (
	"time"

	"dramhit/internal/hashfn"
	"dramhit/internal/obs"
	"dramhit/internal/simd"
	"dramhit/internal/slotarr"
	"dramhit/internal/table"
)

// This file is the governor's degraded direct mode: when pipelining cannot
// pay (no in-window duplicates, occupancy too shallow to overlap misses, or
// the workload already cache-resident), Submit bypasses the prefetch ring
// and executes each request as one synchronous inline probe — the folklore
// execution model, but keeping this table's line-granular SWAR kernel and
// (when enabled) the tag-fingerprint gate. Responses are produced in
// submission order; the mode is selected by one branch on the handle's
// cached decision word and the op path allocates nothing.
//
// Equivalence: a direct probe walks the same slot sequence as the pipelined
// drains (same hash, same entry offset, same line-advance accounting, same
// claim/delete CASes re-verifying every snapshot), so the two modes produce
// identical per-request responses against identical table states; only
// completion ORDER differs (direct is submission-ordered — strictly
// stronger than the pipeline's out-of-order guarantee). The direct≡pipelined
// property tests pin per-ID response equality and final-state equality.

// submitDirect is Submit's direct-mode body. The contract is unchanged:
// nreq < len(reqs) only when resps ran out of space for a Get's response.
// When no trace ring or latency hook is attached (the common case) the loop
// never builds a pending — completion is countOp, a counter switch — so the
// synchronous path carries none of the ring machinery's per-request weight.
func (h *Handle) submitDirect(reqs []table.Request, resps []table.Response) (nreq, nresp int) {
	if h.t.bkt != nil {
		return h.submitDirectBucket(reqs, resps)
	}
	obsOn := h.trace != nil || h.onComplete != nil || h.opLat
	for nreq < len(reqs) {
		req := reqs[nreq]
		if req.Op == table.Get && nresp >= len(resps) {
			return nreq, nresp
		}
		if h.hot != nil {
			h.hot.Offer(req.Key)
		}
		var traceID uint64
		var startNS int64
		if obsOn {
			if h.onComplete != nil || h.opLat {
				startNS = time.Now().UnixNano()
			}
			if h.trace != nil {
				if h.traceCnt++; h.traceCnt >= h.traceEvery {
					h.traceCnt = 0
					traceID = h.trace.NextID()
					h.trace.Record(traceID, obs.EvSubmit, uint8(req.Op), req.Key, 0)
				}
			}
		}
		// Lines advances per request before the side check, matching the
		// pipelined Submit (which prefetches — touches — the home line even
		// for side-resolved reserved keys), so governed-vs-ungoverned stats
		// stay comparable term for term.
		h.stats.Lines++
		if s := h.t.side.For(req.Key); s != nil {
			h.completeSide(s, pending{req: req, startNS: startNS, trace: traceID}, resps, &nresp)
			nreq++
			continue
		}
		hv := h.t.hash(req.Key)
		idx := hashfn.Fastrange(hv, h.t.size)
		tag := table.TagOf(hv)
		var v uint64
		var found, fail bool
		if h.kernel == table.KernelScalar {
			v, found, fail = h.directScalar(req, idx, tag)
		} else {
			v, found, fail = h.directSWAR(req, idx, tag)
		}
		if req.Op == table.Get {
			resps[nresp] = table.Response{ID: req.ID, Value: v, Found: found}
			nresp++
		}
		if fail {
			h.stats.Failed++
		}
		if obsOn {
			h.finish(pending{req: req, startNS: startNS, trace: traceID}, req.Op, found)
		} else {
			h.countOp(req.Op, found)
		}
		nreq++
	}
	return nreq, nresp
}

// directExhausted maps a full-table probe to its completion: Get/Delete
// report a miss, Put/Upsert report table-full.
func directExhausted(op table.Op) (uint64, bool, bool) {
	if op == table.Put || op == table.Upsert {
		return 0, false, true
	}
	return 0, false, false
}

// directSWAR is the inline line-granular probe: the synchronous twin of the
// drain* loops in swar.go, with identical per-line accounting (KeyLines,
// TagSkips, Reprobes, Lines, CASAttempts advance exactly as a pipelined
// probe's would over the same traversal) but no queue to re-enter — a line
// crossing just keeps walking.
func (h *Handle) directSWAR(req table.Request, idx uint64, tag uint8) (uint64, bool, bool) {
	t := h.t
	tagged := h.filter == table.FilterTags
	// Entry-lane peek: at working fills most probes resolve in their home
	// slot, and one scalar load answers that case without the lane kernel's
	// emulated-SWAR ALU — the load the synchronous path must pay anyway. The
	// drains peek only on the untagged path (the tag gate replaces it), but
	// here the peek is sound tagged too: a resident key's lane is always a
	// candidate (tags transition only 0 → fingerprint and zero means "must
	// check"), so the gate could never have skipped a line whose entry lane
	// the peek resolves. Counters advance exactly as the kernel's would for
	// the same resolution — including the untagged Delete peek's
	// CASAttempts-free shape — so direct stats stay bit-identical to the
	// window-1 pipeline's (the sequential equivalence test compares them
	// term for term). A peeked lane holding a different live key falls into
	// the kernel loop having counted nothing.
	switch k := t.arr.Key(idx); k {
	case req.Key:
		h.stats.KeyLines++
		if tagged {
			h.stats.TagHits++
		}
		switch req.Op {
		case table.Get:
			return t.arr.WaitValue(idx), true, false
		case table.Put:
			h.stats.CASAttempts++
			t.arr.StoreValue(idx, req.Value)
			return req.Value, true, false
		case table.Upsert:
			h.stats.CASAttempts++
			return t.arr.AddValue(idx, req.Value), true, false
		default: // Delete
			if tagged {
				h.stats.CASAttempts++
			}
			if t.arr.CASKey(idx, req.Key, table.TombstoneKey) {
				t.live.Add(-1)
				return 0, true, false
			}
			return 0, false, false
		}
	case table.EmptyKey:
		h.stats.KeyLines++
		if req.Op == table.Get || req.Op == table.Delete {
			if tagged {
				h.stats.TagHits++
			}
			return 0, false, false
		}
		h.stats.CASAttempts++
		if t.arr.CASKey(idx, table.EmptyKey, req.Key) {
			if tagged {
				h.stats.TagHits++
			}
			t.arr.PublishTag(idx, tag)
			h.stats.CASAttempts++
			t.arr.StoreValue(idx, req.Value)
			t.used.Add(1)
			t.live.Add(1)
			return req.Value, true, false
		}
		// Claim race lost: fall into the kernel loop, which re-snapshots.
	}
	var probes uint64
	for {
		if tagged {
			base := idx &^ (table.SlotsPerCacheLine - 1)
			if t.arr.LineCandidates(base, tag)>>(idx-base) == 0 {
				h.stats.TagSkips++
				valid := t.size - base
				if valid > table.SlotsPerCacheLine {
					valid = table.SlotsPerCacheLine
				}
				if probes+valid-(idx-base) >= t.size {
					return directExhausted(req.Op)
				}
				probes += valid - (idx - base)
				next := base + table.SlotsPerCacheLine
				if next >= t.size {
					next = 0
				}
				idx = next
				if slotarr.LineOf(next) != slotarr.LineOf(base) {
					h.stats.Reprobes++
					h.stats.Lines++
				}
				continue
			}
		}
		h.stats.KeyLines++
		l0, l1, l2, l3, base, valid := t.arr.LoadKeys4(idx)
		lane, res := simd.ProbeLine4(l0, l1, l2, l3, req.Key, table.EmptyKey, int(idx-base))
		switch res {
		case simd.HitKey:
			if tagged {
				h.stats.TagHits++
			}
			slot := base + uint64(lane)
			switch req.Op {
			case table.Get:
				return t.arr.WaitValue(slot), true, false
			case table.Put:
				h.stats.CASAttempts++
				t.arr.StoreValue(slot, req.Value)
				return req.Value, true, false
			case table.Upsert:
				h.stats.CASAttempts++
				return t.arr.AddValue(slot, req.Value), true, false
			default: // Delete
				h.stats.CASAttempts++
				if t.arr.CASKey(slot, req.Key, table.TombstoneKey) {
					t.live.Add(-1)
					return 0, true, false
				}
				// A concurrent Delete won the race: report a miss, exactly
				// like the pipelined drain.
				return 0, false, false
			}
		case simd.HitEmpty:
			if req.Op == table.Get || req.Op == table.Delete {
				if tagged {
					h.stats.TagHits++
				}
				return 0, false, false
			}
			slot := base + uint64(lane)
			h.stats.CASAttempts++
			if t.arr.CASKey(slot, table.EmptyKey, req.Key) {
				if tagged {
					h.stats.TagHits++
				}
				t.arr.PublishTag(slot, tag)
				h.stats.CASAttempts++
				t.arr.StoreValue(slot, req.Value)
				t.used.Add(1)
				t.live.Add(1)
				return req.Value, true, false
			}
			// Claim race lost: re-snapshot the same line and rerun the
			// kernel (the loop top re-gates on the tag word).
			continue
		}
		if tagged {
			h.stats.TagFalse++
		}
		if probes+valid-(idx-base) >= t.size {
			return directExhausted(req.Op)
		}
		probes += valid - (idx - base)
		next := base + table.SlotsPerCacheLine
		if next >= t.size {
			next = 0
		}
		idx = next
		if slotarr.LineOf(next) != slotarr.LineOf(base) {
			h.stats.Reprobes++
			h.stats.Lines++
		}
	}
}

// directScalar is the inline slot-by-slot probe, the synchronous twin of
// processScalar (the KernelScalar ablation baseline).
func (h *Handle) directScalar(req table.Request, idx uint64, tag uint8) (uint64, bool, bool) {
	t := h.t
	h.stats.KeyLines++
	line := slotarr.LineOf(idx)
	var probes uint64
	for {
		if slotarr.LineOf(idx) != line || probes >= t.size {
			if probes >= t.size {
				return directExhausted(req.Op)
			}
			line = slotarr.LineOf(idx)
			h.stats.Reprobes++
			h.stats.Lines++
			h.stats.KeyLines++
		}
		k := t.arr.Key(idx)
		switch {
		case k == req.Key:
			switch req.Op {
			case table.Get:
				return t.arr.WaitValue(idx), true, false
			case table.Put:
				h.stats.CASAttempts++
				t.arr.StoreValue(idx, req.Value)
				return req.Value, true, false
			case table.Upsert:
				h.stats.CASAttempts++
				return t.arr.AddValue(idx, req.Value), true, false
			default: // Delete
				h.stats.CASAttempts++
				if t.arr.CASKey(idx, req.Key, table.TombstoneKey) {
					t.live.Add(-1)
					return 0, true, false
				}
				return 0, false, false
			}
		case k == table.EmptyKey:
			if req.Op == table.Get || req.Op == table.Delete {
				return 0, false, false
			}
			h.stats.CASAttempts++
			if t.arr.CASKey(idx, table.EmptyKey, req.Key) {
				t.arr.PublishTag(idx, tag)
				h.stats.CASAttempts++
				t.arr.StoreValue(idx, req.Value)
				t.used.Add(1)
				t.live.Add(1)
				return req.Value, true, false
			}
			continue // re-inspect the contested slot
		default:
			idx++
			if idx == t.size {
				idx = 0
			}
			probes++
		}
	}
}
