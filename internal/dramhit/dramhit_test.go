package dramhit

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dramhit/internal/table"
	"dramhit/internal/tabletest"
	"dramhit/internal/workload"
)

func TestConformanceSyncAdapter(t *testing.T) {
	for _, window := range []int{1, 2, 8, 16} {
		w := window
		tabletest.Run(t, "DRAMHiT", func(n uint64) table.Map {
			return New(Config{Slots: n, PrefetchWindow: w}).NewSync()
		})
	}
}

func TestPipelineAccumulatesWindow(t *testing.T) {
	// Submitting fewer requests than the window completes nothing until
	// Flush: the pipeline is waiting for prefetches to land.
	tbl := New(Config{Slots: 1024, PrefetchWindow: 8})
	h := tbl.NewHandle()
	reqs := make([]table.Request, 7)
	for i := range reqs {
		reqs[i] = table.Request{Op: table.Put, Key: uint64(i + 100), Value: 1}
	}
	nreq, nresp := h.Submit(reqs, nil)
	if nreq != 7 || nresp != 0 {
		t.Fatalf("Submit = (%d, %d), want (7, 0)", nreq, nresp)
	}
	if h.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", h.Pending())
	}
	if got := h.Stats().Puts; got != 0 {
		t.Fatalf("completed %d puts before window filled", got)
	}
	if _, done := h.Flush(nil); !done {
		t.Fatal("Flush did not drain")
	}
	if got := h.Stats().Puts; got != 7 {
		t.Fatalf("after flush completed %d puts, want 7", got)
	}
	if h.Pending() != 0 {
		t.Fatalf("Pending after flush = %d", h.Pending())
	}
}

func TestPipelineDrainsPastWindow(t *testing.T) {
	// Submitting window+k requests completes roughly k ops during Submit.
	tbl := New(Config{Slots: 4096, PrefetchWindow: 8})
	h := tbl.NewHandle()
	reqs := make([]table.Request, 50)
	for i := range reqs {
		reqs[i] = table.Request{Op: table.Put, Key: uint64(i + 1), Value: uint64(i)}
	}
	h.Submit(reqs, nil)
	if p := h.Pending(); p > 8 {
		t.Fatalf("Pending = %d, exceeds window", p)
	}
	if done := h.Stats().Puts; done < 42 {
		t.Fatalf("only %d puts completed during submit of 50 with window 8", done)
	}
}

func TestOutOfOrderCompletionIDs(t *testing.T) {
	// Responses carry caller IDs, and every submitted Get completes exactly
	// once regardless of order.
	tbl := New(Config{Slots: 1 << 14, PrefetchWindow: 16})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(1, 5000)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i) * 3
	}
	h.PutBatch(keys, vals)

	reqs := make([]table.Request, len(keys))
	for i, k := range keys {
		reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i)}
	}
	resps := make([]table.Response, len(keys))
	seen := make([]bool, len(keys))
	rem := reqs
	collect := func(rs []table.Response) {
		for _, r := range rs {
			if seen[r.ID] {
				t.Fatalf("response for ID %d delivered twice", r.ID)
			}
			seen[r.ID] = true
			if !r.Found || r.Value != vals[r.ID] {
				t.Fatalf("ID %d: got (%d, %v), want (%d, true)", r.ID, r.Value, r.Found, vals[r.ID])
			}
		}
	}
	for len(rem) > 0 {
		nreq, nresp := h.Submit(rem, resps)
		collect(resps[:nresp])
		rem = rem[nreq:]
	}
	for {
		nresp, done := h.Flush(resps)
		collect(resps[:nresp])
		if done {
			break
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("request %d never completed", i)
		}
	}
}

func TestResponseBufferBackpressure(t *testing.T) {
	// A tiny response buffer must block Submit rather than lose responses.
	tbl := New(Config{Slots: 4096, PrefetchWindow: 4})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(2, 200)
	vals := make([]uint64, len(keys))
	h.PutBatch(keys, vals)

	reqs := make([]table.Request, len(keys))
	for i, k := range keys {
		reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i)}
	}
	var tiny [3]table.Response
	total := 0
	rem := reqs
	for len(rem) > 0 {
		nreq, nresp := h.Submit(rem, tiny[:])
		total += nresp
		rem = rem[nreq:]
		if nreq == 0 && nresp == 0 {
			t.Fatal("Submit made no progress")
		}
	}
	for {
		nresp, done := h.Flush(tiny[:])
		total += nresp
		if done {
			break
		}
	}
	if total != len(keys) {
		t.Fatalf("collected %d responses, want %d", total, len(keys))
	}
}

func TestReprobeStatistics(t *testing.T) {
	// At 75% fill the paper reports ~1.3 cache lines per op (reprobes cross
	// lines only ~30% of the time). Check the measured ratio is in band.
	const size = 1 << 16
	tbl := New(Config{Slots: size})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(3, size*3/4)
	vals := make([]uint64, len(keys))
	h.PutBatch(keys, vals)

	h2 := tbl.NewHandle()
	found := make([]bool, len(keys))
	h2.GetBatch(keys, vals, found)
	st := h2.Stats()
	ratio := float64(st.Lines) / float64(st.Ops())
	if ratio < 1.05 || ratio > 1.8 {
		t.Errorf("lines/op = %.2f at 75%% fill, paper reports ~1.3", ratio)
	}
}

func TestLatencyHook(t *testing.T) {
	tbl := New(Config{Slots: 1024, PrefetchWindow: 8})
	h := tbl.NewHandle()
	var mu sync.Mutex
	lats := map[uint64]time.Duration{}
	h.SetLatencyHook(func(req table.Request, lat time.Duration) {
		mu.Lock()
		lats[req.ID] = lat
		mu.Unlock()
	})
	reqs := make([]table.Request, 20)
	for i := range reqs {
		reqs[i] = table.Request{Op: table.Put, Key: uint64(i + 1), ID: uint64(i)}
	}
	h.Submit(reqs, nil)
	h.Flush(nil)
	if len(lats) != 20 {
		t.Fatalf("latency hook fired %d times, want 20", len(lats))
	}
	for id, l := range lats {
		if l < 0 {
			t.Errorf("negative latency for ID %d", id)
		}
	}
}

func TestWindowOneIsSynchronous(t *testing.T) {
	// Window 1 completes each request during the next Submit call.
	tbl := New(Config{Slots: 256, PrefetchWindow: 1})
	h := tbl.NewHandle()
	var resp [4]table.Response
	h.Submit([]table.Request{{Op: table.Put, Key: 9, Value: 90}}, resp[:])
	nreq, nresp := h.Submit([]table.Request{{Op: table.Get, Key: 9, ID: 77}}, resp[:])
	if nreq != 1 {
		t.Fatal("submit did not consume")
	}
	// The Put must have completed to make room; the Get may still be
	// pending. Flush and verify.
	n, done := h.Flush(resp[nresp:])
	if !done {
		t.Fatal("flush did not finish")
	}
	nresp += n
	if nresp != 1 || resp[0].ID != 77 || resp[0].Value != 90 || !resp[0].Found {
		t.Fatalf("bad response: %+v (n=%d)", resp[0], nresp)
	}
}

func TestConcurrentHandles(t *testing.T) {
	// Multiple goroutines each with their own handle on one table.
	tbl := New(Config{Slots: 1 << 15})
	const g = 8
	const perG = 2000
	keys := workload.UniqueKeys(4, g*perG)
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tbl.NewHandle()
			part := keys[w*perG : (w+1)*perG]
			vals := make([]uint64, len(part))
			for i := range vals {
				vals[i] = part[i] ^ 0xabc
			}
			h.PutBatch(part, vals)
		}(w)
	}
	wg.Wait()
	if tbl.Len() != g*perG {
		t.Fatalf("Len = %d, want %d", tbl.Len(), g*perG)
	}
	h := tbl.NewHandle()
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	h.GetBatch(keys, vals, found)
	for i, k := range keys {
		if !found[i] || vals[i] != k^0xabc {
			t.Fatalf("key %d: (%d, %v)", i, vals[i], found[i])
		}
	}
}

func TestConcurrentUpsertHandles(t *testing.T) {
	tbl := New(Config{Slots: 4096})
	keys := workload.UniqueKeys(5, 50)
	const g = 6
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tbl.NewHandle()
			for r := 0; r < rounds; r++ {
				h.UpsertBatch(keys, 1)
			}
		}()
	}
	wg.Wait()
	s := tbl.NewSync()
	for _, k := range keys {
		if v, _ := s.Get(k); v != g*rounds {
			t.Fatalf("count = %d, want %d", v, g*rounds)
		}
	}
}

func TestDuplicateKeysInOneWindow(t *testing.T) {
	// The same key submitted multiple times within a single window must not
	// create duplicate slots.
	tbl := New(Config{Slots: 256, PrefetchWindow: 16})
	h := tbl.NewHandle()
	reqs := make([]table.Request, 16)
	for i := range reqs {
		reqs[i] = table.Request{Op: table.Upsert, Key: 42, Value: 1}
	}
	h.Submit(reqs, nil)
	h.Flush(nil)
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after 16 upserts of one key, want 1", tbl.Len())
	}
	s := tbl.NewSync()
	if v, _ := s.Get(42); v != 16 {
		t.Fatalf("value = %d, want 16", v)
	}
}

func TestMixedOpsRandomizedVsMap(t *testing.T) {
	// Drive the batched interface directly (not via Sync) against a
	// reference map, flushing at random batch boundaries.
	tbl := New(Config{Slots: 8192, PrefetchWindow: 8})
	h := tbl.NewHandle()
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(6))
	resps := make([]table.Response, 64)

	var batch []table.Request
	expected := make(map[uint64]uint64) // ID -> expected value at submit time
	expFound := make(map[uint64]bool)
	var nextID uint64

	apply := func(rs []table.Response) {
		for _, r := range rs {
			if want, ok := expected[r.ID]; ok {
				if r.Found != expFound[r.ID] || (r.Found && r.Value != want) {
					t.Fatalf("ID %d: got (%d,%v) want (%d,%v)", r.ID, r.Value, r.Found, want, expFound[r.ID])
				}
				delete(expected, r.ID)
				delete(expFound, r.ID)
			}
		}
	}
	flushAll := func() {
		for {
			n, done := h.Flush(resps)
			apply(resps[:n])
			if done {
				return
			}
		}
	}

	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(600)) + 10
		switch rng.Intn(6) {
		case 0, 1:
			v := uint64(rng.Intn(1 << 30))
			batch = append(batch, table.Request{Op: table.Put, Key: k, Value: v})
			ref[k] = v
		case 2:
			batch = append(batch, table.Request{Op: table.Upsert, Key: k, Value: 5})
			ref[k] += 5
		case 3:
			batch = append(batch, table.Request{Op: table.Delete, Key: k})
			delete(ref, k)
		default:
			// Flush pending same-key mutations first so the expected value
			// is well defined, record the expectation, then submit the Get.
			rem := batch
			for len(rem) > 0 {
				nreq, nresp := h.Submit(rem, resps)
				apply(resps[:nresp])
				rem = rem[nreq:]
			}
			batch = batch[:0]
			flushAll()
			id := nextID
			nextID++
			want, ok := ref[k]
			expected[id] = want
			expFound[id] = ok
			batch = append(batch, table.Request{Op: table.Get, Key: k, ID: id})
		}
		if len(batch) >= 16 {
			rem := batch
			for len(rem) > 0 {
				nreq, nresp := h.Submit(rem, resps)
				apply(resps[:nresp])
				rem = rem[nreq:]
			}
			batch = batch[:0]
		}
	}
	rem := batch
	for len(rem) > 0 {
		nreq, nresp := h.Submit(rem, resps)
		apply(resps[:nresp])
		rem = rem[nreq:]
	}
	flushAll()
	if len(expected) != 0 {
		t.Fatalf("%d Gets never produced a response", len(expected))
	}
	// Final state check.
	s := tbl.NewSync()
	for k, want := range ref {
		if got, ok := s.Get(k); !ok || got != want {
			t.Fatalf("final: Get(%d) = (%d,%v), want (%d,true)", k, got, ok, want)
		}
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{{Slots: 0}, {Slots: 10, PrefetchWindow: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestStatsAccounting(t *testing.T) {
	tbl := New(Config{Slots: 1024})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(7, 100)
	vals := make([]uint64, 100)
	h.PutBatch(keys, vals)
	found := make([]bool, 100)
	h.GetBatch(keys, vals, found)
	st := h.Stats()
	if st.Puts != 100 || st.Gets != 100 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Hits != 100 {
		t.Fatalf("hits = %d, want 100", st.Hits)
	}
	if st.Lines < st.Ops() {
		t.Fatalf("lines %d < ops %d", st.Lines, st.Ops())
	}

	// Combined requests count exactly once each: a duplicate-heavy segment
	// must keep Gets+Puts+Upserts+Deletes equal to the requests submitted,
	// with the combine counters carving out a subset, not adding to it.
	reqs := make([]table.Request, 0, 40)
	for i := 0; i < 10; i++ {
		k := keys[i%2]
		reqs = append(reqs,
			table.Request{Op: table.Upsert, Key: k, Value: 1},
			table.Request{Op: table.Get, Key: k, ID: uint64(i)},
			table.Request{Op: table.Put, Key: k, Value: 9},
			table.Request{Op: table.Delete, Key: k},
		)
	}
	resps := make([]table.Response, len(reqs))
	rem := reqs
	nr := 0
	for len(rem) > 0 {
		n, w := h.Submit(rem, resps[nr:])
		rem = rem[n:]
		nr += w
	}
	for {
		w, done := h.Flush(resps[nr:])
		nr += w
		if done {
			break
		}
	}
	st2 := h.Stats()
	if got := st2.Ops() - st.Ops(); got != uint64(len(reqs)) {
		t.Fatalf("op counters grew by %d, want %d (each combined request once)", got, len(reqs))
	}
	combined := st2.CombinedUpserts + st2.PiggybackedGets + st2.ForwardedGets
	if combined > st2.Ops() {
		t.Fatalf("combine counters %d exceed ops %d", combined, st2.Ops())
	}
	if nr != 10 {
		t.Fatalf("%d Get responses, want 10", nr)
	}
}
