package dramhit

import (
	"time"

	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// This file is the network-facing byte pipeline: the same
// prefetch-then-drain discipline as Submit/Flush, applied to byte-string
// requests and completed through a callback instead of response slices.
//
// On the bucket layout a probe resolves in one synchronous engine call once
// its home bucket line is resident, so the byte pipeline needs no reprobe or
// re-enqueue machinery: requests drain strictly in submission order, which
// means the completion callback sees FIFO completions. A protocol server can
// therefore append each reply to its connection write buffer directly from
// the callback — pipelined requests on one connection come back in request
// order with no per-op channels and no reorder buffer.
//
// The caller owns key and value buffers until the request's completion
// fires (at most one FlushBytes later). This matches the arena contract of
// the internal/resp and internal/mctext readers: parse a wire batch, submit
// it, FlushBytes, then Release the parser arena.

// ByteCompletion reports one finished byte-string request to the
// OnByteComplete callback.
type ByteCompletion struct {
	// ID echoes the submission's id verbatim (a connection sequence number,
	// a pointer cookie — the pipeline never interprets it).
	ID uint64
	// Op is the submitted operation.
	Op table.Op
	// Value is the value read by a Get (nil on miss). It aliases the arena
	// record: valid until the key is overwritten, so consume it inside the
	// callback or copy. Nil for Put and Delete.
	Value []byte
	// Found reports a Get hit, a Delete that removed a key, or — for Put —
	// that the key already existed (the Put itself always succeeds).
	Found bool
}

// bytePending is one in-flight byte request: the caller's buffers, the echo
// id, and the latency stamp. No probe cursor is needed — the bucket engine
// resolves the whole probe in the drain call.
type bytePending struct {
	key     []byte
	val     []byte
	id      uint64
	startNS int64 // submission time, set only when op-latency tracking is on
	op      table.Op
}

// OnByteComplete arms the byte pipeline with its completion callback and
// allocates the ring (same capacity as the uint64 ring, so both pipelines
// honor the table's prefetch window). Must be called before SubmitBytes and
// only while no byte requests are in flight. Bucket layout only.
func (h *Handle) OnByteComplete(fn func(ByteCompletion)) {
	h.requireBucket()
	if h.PendingBytes() != 0 {
		panic("dramhit: OnByteComplete with byte requests in flight")
	}
	h.onByte = fn
	if h.byteQ == nil {
		h.byteQ = make([]bytePending, len(h.q))
	}
}

// PendingBytes returns the number of in-flight byte requests.
func (h *Handle) PendingBytes() int { return h.bhead - h.btail }

// SubmitBytes enqueues one byte-string request (Get, Put, or Delete) after
// prefetching its home bucket line, draining the oldest request first if
// the window is full. The completion callback fires for drained requests
// before SubmitBytes returns — in submission order, as always.
//
// Upserts are not accepted: read-modify-writes are rare on the network path
// (INCR/DECR) and their closure would defeat the flat completion record, so
// servers issue them synchronously via UpsertBytes. Byte requests order
// only against other byte requests; Flush the uint64 pipeline first when
// the two APIs may touch aliasing keys (see GetBytes).
func (h *Handle) SubmitBytes(op table.Op, id uint64, key, value []byte) {
	if h.onByte == nil {
		panic("dramhit: SubmitBytes before OnByteComplete")
	}
	if op == table.Upsert {
		panic("dramhit: SubmitBytes does not accept Upsert; use UpsertBytes")
	}
	for h.PendingBytes() >= h.window {
		h.drainByte()
	}
	hv := h.t.bkt.HashOf(key)
	h.t.bkt.Prefetch(hv)
	h.stats.Lines++
	if h.hot != nil {
		// Byte keys are ranked by hash in the hot-key sketch: the sketch
		// stores uint64 identities, and the full hash is the stable one.
		h.hot.Offer(hv)
	}
	p := bytePending{key: key, val: value, id: id, op: op}
	if h.opLat {
		p.startNS = time.Now().UnixNano()
	}
	h.byteQ[h.bhead&h.mask] = p
	h.bhead++
}

// FlushBytes drains every in-flight byte request, firing the completion
// callback for each in submission order, then publishes observability
// counters (the byte pipeline's Flush-boundary publish, same cadence as
// the uint64 path's).
func (h *Handle) FlushBytes() {
	for h.PendingBytes() > 0 {
		h.drainByte()
	}
	if h.obsw != nil {
		h.obsPublish()
	}
}

// drainByte resolves the oldest byte request against the bucket engine —
// its home line was prefetched at SubmitBytes and is resident by now — and
// fires the completion callback.
func (h *Handle) drainByte() {
	slot := &h.byteQ[h.btail&h.mask]
	p := *slot
	*slot = bytePending{} // release the caller's buffers promptly
	h.btail++

	preL, preH := h.bh.Lines, h.bh.Hops
	var v []byte
	var found bool
	switch p.op {
	case table.Get:
		v, found = h.bh.Get(p.key)
	case table.Put:
		h.stats.CASAttempts++
		found = h.bh.Put(p.key, p.val)
	default: // Delete — Upsert was rejected at submit
		h.stats.CASAttempts++
		found = h.bh.Delete(p.key)
	}
	h.foldBucketStats(preL, preH)
	// A byte Put always succeeds (countOp's hit convention for Puts), while
	// the completion's Found carries the existed bit.
	hit := found
	if p.op == table.Put {
		hit = true
	}
	h.countOp(p.op, hit)
	if h.opLat && p.startNS != 0 {
		lat := time.Now().UnixNano() - p.startNS
		h.obsw.Op[obs.OpClass(p.op, hit)].Record(uint64(lat))
	}
	h.onByte(ByteCompletion{ID: p.id, Op: p.op, Value: v, Found: found})
}
