package dramhit

import (
	"time"

	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// This file is the bucket-layout back end of the handle: the pipeline's
// drain dispatch, the direct-mode twin, and the byte-string API the layout
// grows. A bucket probe is one cache-line load resolved in-cell (the
// engine in internal/slotarr), so the flat layout's reprobe/re-enqueue
// machinery collapses to a single synchronous completion per request — the
// prefetch window still overlaps the bucket-line misses, which is where
// the pipeline's win comes from.
//
// uint64 requests are bridged onto the byte engine by fixed 8-byte
// little-endian encodings of key and value. Reserved keys need no side
// slots here: they are ordinary byte strings to the engine.

// putLE stores v into b[0:8] little-endian.
func putLE(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// getLE loads a little-endian uint64 from b[0:8].
func getLE(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// foldBucketStats folds the engine handle's probe counters (taken as deltas
// against the pre-op snapshot) into the front-end Stats: engine bucket-line
// loads are KeyLines (every bucket visit consults key material — there is
// no sidecar to skip from), stash-node hops are Reprobes, and each hop also
// counts a Line so Lines/Ops keeps its "extra lines beyond the home line"
// reading. CAS-retry re-loads of the same bucket line surface in KeyLines
// only.
func (h *Handle) foldBucketStats(preLines, preHops uint64) {
	dl := h.bh.Lines - preLines
	dh := h.bh.Hops - preHops
	h.stats.KeyLines += dl
	h.stats.Reprobes += dh
	h.stats.Lines += dh
}

// processBucket resolves the queue-head request synchronously against the
// bucket engine. The home bucket line was prefetched at Submit; by drain
// time it is resident, so the one-line probe completes without re-entering
// the queue. retire handles combined-Get chains, parking and Failed
// exactly as on the flat path.
func (h *Handle) processBucket(p pending, resps []table.Response, nresp *int) (wrote, blocked bool) {
	if p.req.Op == table.Get && *nresp >= len(resps) {
		return false, true
	}
	var kb [8]byte
	putLE(kb[:], p.req.Key)
	preL, preH := h.bh.Lines, h.bh.Hops
	switch p.req.Op {
	case table.Get:
		var v uint64
		vb, ok := h.bh.Get(kb[:])
		if ok {
			v = getLE(vb)
		}
		h.foldBucketStats(preL, preH)
		return h.retire(p, table.Get, v, ok, false, resps, nresp)
	case table.Put:
		var vb [8]byte
		putLE(vb[:], p.req.Value)
		h.stats.CASAttempts++
		h.bh.Put(kb[:], vb[:])
		h.foldBucketStats(preL, preH)
		return h.retire(p, table.Put, p.req.Value, true, false, resps, nresp)
	case table.Upsert:
		// The engine's Mutate publishes exactly the final invocation's
		// result, computed from the record it replaced — the linearizable
		// add. res carries it out for retire (and any forwarded Gets).
		var vb [8]byte
		var res uint64
		h.stats.CASAttempts++
		h.bh.Mutate(kb[:], func(old []byte, present bool) []byte {
			res = p.req.Value
			if present {
				res += getLE(old)
			}
			putLE(vb[:], res)
			return vb[:]
		})
		h.foldBucketStats(preL, preH)
		return h.retire(p, table.Upsert, res, true, false, resps, nresp)
	default: // Delete — never a combine leader, so no retire machinery
		h.pop()
		h.stats.CASAttempts++
		hit := h.bh.Delete(kb[:])
		h.foldBucketStats(preL, preH)
		h.finish(p, table.Delete, hit)
		return true, false
	}
}

// submitDirectBucket is submitDirect's bucket-layout body: the governor's
// degraded direct mode executes each request as one synchronous engine
// call, submission-ordered, with the same observe/latency plumbing as the
// flat direct path.
func (h *Handle) submitDirectBucket(reqs []table.Request, resps []table.Response) (nreq, nresp int) {
	obsOn := h.trace != nil || h.onComplete != nil || h.opLat
	for nreq < len(reqs) {
		req := reqs[nreq]
		if req.Op == table.Get && nresp >= len(resps) {
			return nreq, nresp
		}
		if h.hot != nil {
			h.hot.Offer(req.Key)
		}
		var traceID uint64
		var startNS int64
		if obsOn {
			if h.onComplete != nil || h.opLat {
				startNS = time.Now().UnixNano()
			}
			if h.trace != nil {
				if h.traceCnt++; h.traceCnt >= h.traceEvery {
					h.traceCnt = 0
					traceID = h.trace.NextID()
					h.trace.Record(traceID, obs.EvSubmit, uint8(req.Op), req.Key, 0)
				}
			}
		}
		h.stats.Lines++
		var kb, vb [8]byte
		putLE(kb[:], req.Key)
		preL, preH := h.bh.Lines, h.bh.Hops
		var v uint64
		var found bool
		switch req.Op {
		case table.Get:
			if b, ok := h.bh.Get(kb[:]); ok {
				v, found = getLE(b), true
			}
		case table.Put:
			putLE(vb[:], req.Value)
			h.stats.CASAttempts++
			h.bh.Put(kb[:], vb[:])
			v, found = req.Value, true
		case table.Upsert:
			h.stats.CASAttempts++
			h.bh.Mutate(kb[:], func(old []byte, present bool) []byte {
				v = req.Value
				if present {
					v += getLE(old)
				}
				putLE(vb[:], v)
				return vb[:]
			})
			found = true
		default: // Delete
			h.stats.CASAttempts++
			found = h.bh.Delete(kb[:])
		}
		h.foldBucketStats(preL, preH)
		if req.Op == table.Get {
			resps[nresp] = table.Response{ID: req.ID, Value: v, Found: found}
			nresp++
		}
		if obsOn {
			h.finish(pending{req: req, startNS: startNS, trace: traceID}, req.Op, found)
		} else {
			h.countOp(req.Op, found)
		}
		nreq++
	}
	return nreq, nresp
}

// requireBucket panics unless the handle's table is LayoutBucket. The byte
// API is a capability of the bucket layout (variable-length keys and values
// live in the arena); on a flat table there is nowhere to store them.
func (h *Handle) requireBucket() {
	if h.bh == nil {
		panic("dramhit: byte-string API requires Config.Layout == table.LayoutBucket")
	}
}

// GetBytes returns the value stored for a byte-string key. The returned
// slice aliases the arena record: valid indefinitely, stale once the key
// is overwritten. Zero-allocation. Byte operations are synchronous and do
// not order against uint64 requests still in the pipeline — Flush first
// when mixing the two APIs on keys that may alias (a uint64 key k is the
// byte key of its 8-byte little-endian encoding).
func (h *Handle) GetBytes(key []byte) ([]byte, bool) {
	h.requireBucket()
	preL, preH := h.bh.Lines, h.bh.Hops
	v, ok := h.bh.Get(key)
	h.stats.Lines++
	h.foldBucketStats(preL, preH)
	h.countOp(table.Get, ok)
	return v, ok
}

// PutBytes stores value for a byte-string key, overwriting silently, and
// reports whether the key already existed. The table grows itself as
// needed — a byte Put never fails.
func (h *Handle) PutBytes(key, value []byte) (existed bool) {
	h.requireBucket()
	preL, preH := h.bh.Lines, h.bh.Hops
	h.stats.CASAttempts++
	existed = h.bh.Put(key, value)
	h.stats.Lines++
	h.foldBucketStats(preL, preH)
	h.countOp(table.Put, true)
	return existed
}

// UpsertBytes atomically read-modify-writes a byte-string key: fn receives
// the current value (nil, false when absent) and returns the value to
// store. Under contention fn may run multiple times; exactly the final
// invocation's result is published, and its input is the record it
// replaced. Reports whether the key already existed.
func (h *Handle) UpsertBytes(key []byte, fn func(old []byte, present bool) []byte) (existed bool) {
	h.requireBucket()
	preL, preH := h.bh.Lines, h.bh.Hops
	h.stats.CASAttempts++
	existed = h.bh.Mutate(key, fn)
	h.stats.Lines++
	h.foldBucketStats(preL, preH)
	h.countOp(table.Upsert, true)
	return existed
}

// DeleteBytes removes a byte-string key, reporting whether it was present.
func (h *Handle) DeleteBytes(key []byte) bool {
	h.requireBucket()
	preL, preH := h.bh.Lines, h.bh.Hops
	h.stats.CASAttempts++
	hit := h.bh.Delete(key)
	h.stats.Lines++
	h.foldBucketStats(preL, preH)
	h.countOp(table.Delete, hit)
	return hit
}
