package dramhit

import (
	"math/rand"
	"sync"
	"testing"

	"dramhit/internal/governor"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// govPair drives two tables — one ungoverned (pipelined) and one pinned to
// direct mode — through the same request stream with the same flush
// boundaries and asserts equivalent behaviour. Responses are compared per ID
// (the pipeline completes out of order; direct completes in submission
// order — the ordering is not part of the contract, the per-request results
// are), and the order-insensitive Stats are compared exactly: op counts,
// hits, failures, combine counters, CAS attempts and tag resolutions are
// each a pure function of per-request outcomes. The traversal counters
// (Reprobes, Lines, KeyLines, TagSkips, TagFalse) are NOT compared: probe
// chain lengths depend on which neighboring writes had landed when a probe
// ran, and the two modes execute a batch in different orders by design.
//
// Batches use distinct keys: ordering between same-key requests inside one
// pipeline window is explicitly undefined for the pipelined mode (see
// Submit's doc), so only streams where each batch has unique keys have a
// deterministic per-ID outcome to pin. Same-key conflicts across flush
// boundaries are fully exercised.
type govPair struct {
	t            *testing.T
	pipe, direct *Handle
	pipeT, dirT  *Table
	rPipe, rDir  []table.Response
	nPipe, nDir  int
}

func newGovPair(t *testing.T, slots uint64, window, respCap int, combining table.Combining) *govPair {
	tp := New(Config{Slots: slots, PrefetchWindow: window, Combining: combining})
	td := New(Config{Slots: slots, PrefetchWindow: window, Combining: combining, Governor: table.GovernorDirect})
	return &govPair{
		t:      t,
		pipeT:  tp,
		dirT:   td,
		pipe:   tp.NewHandle(),
		direct: td.NewHandle(),
		rPipe:  make([]table.Response, respCap),
		rDir:   make([]table.Response, respCap),
	}
}

func (gp *govPair) submit(reqs []table.Request) {
	gp.t.Helper()
	remP, remD := reqs, reqs
	for len(remP) > 0 || len(remD) > 0 {
		if len(remP) > 0 {
			n, nr := gp.pipe.Submit(remP, gp.rPipe[gp.nPipe:])
			remP = remP[n:]
			gp.nPipe += nr
		}
		if len(remD) > 0 {
			n, nr := gp.direct.Submit(remD, gp.rDir[gp.nDir:])
			remD = remD[n:]
			gp.nDir += nr
		}
	}
}

func (gp *govPair) flush() {
	gp.t.Helper()
	for {
		n, done := gp.pipe.Flush(gp.rPipe[gp.nPipe:])
		gp.nPipe += n
		if done {
			break
		}
	}
	for {
		n, done := gp.direct.Flush(gp.rDir[gp.nDir:])
		gp.nDir += n
		if done {
			break
		}
	}
}

func (gp *govPair) compare(what string) {
	gp.t.Helper()
	if gp.nPipe != gp.nDir {
		gp.t.Fatalf("%s: pipelined wrote %d responses, direct %d", what, gp.nPipe, gp.nDir)
	}
	byID := make(map[uint64]table.Response, gp.nPipe)
	for _, r := range gp.rPipe[:gp.nPipe] {
		byID[r.ID] = r
	}
	for _, r := range gp.rDir[:gp.nDir] {
		p, ok := byID[r.ID]
		if !ok {
			gp.t.Fatalf("%s: direct response ID %d has no pipelined counterpart", what, r.ID)
		}
		if p != r {
			gp.t.Fatalf("%s: ID %d diverged: pipelined %+v direct %+v", what, r.ID, p, r)
		}
	}
	gp.nPipe, gp.nDir = 0, 0
	if sp, sd := outcomeStats(gp.pipe.Stats()), outcomeStats(gp.direct.Stats()); sp != sd {
		gp.t.Fatalf("%s: outcome stats diverged:\npipelined %+v\ndirect    %+v", what, sp, sd)
	}
}

// outcomeStats strips the traversal-order-dependent counters, keeping only
// the fields determined by per-request outcomes.
func outcomeStats(s Stats) Stats {
	s.Reprobes, s.Lines, s.KeyLines, s.TagSkips, s.TagFalse = 0, 0, 0, 0, 0
	return s
}

// compareStrict is the window-1 comparison: both modes execute in submission
// order, so responses must match positionally and every Stats counter —
// traversal accounting included — must be bit-identical.
func (gp *govPair) compareStrict(what string) {
	gp.t.Helper()
	if gp.nPipe != gp.nDir {
		gp.t.Fatalf("%s: pipelined wrote %d responses, direct %d", what, gp.nPipe, gp.nDir)
	}
	for i := 0; i < gp.nPipe; i++ {
		if gp.rPipe[i] != gp.rDir[i] {
			gp.t.Fatalf("%s: response %d diverged: pipelined %+v direct %+v",
				what, i, gp.rPipe[i], gp.rDir[i])
		}
	}
	gp.nPipe, gp.nDir = 0, 0
	if sp, sd := gp.pipe.Stats(), gp.direct.Stats(); sp != sd {
		gp.t.Fatalf("%s: stats diverged:\npipelined %+v\ndirect    %+v", what, sp, sd)
	}
}

// TestDirectSequentialEquivalence is the strict half of the direct≡pipelined
// property: against a window-1 pipeline — which executes requests in
// submission order, the same order direct mode uses — the forced direct
// table must be bit-identical over randomized mixed workloads: all four
// ops, reserved keys, tombstone churn, wrap-around sizes, single-line
// tables and table-full failures. Every response (order included), every
// Stats counter (traversal accounting included), the final Len and a full
// semantic Get sweep must match.
func TestDirectSequentialEquivalence(t *testing.T) {
	sizes := []uint64{3, 4, 5, 16, 37, 251, 1024}
	for _, size := range sizes {
		rng := rand.New(rand.NewSource(int64(size) * 131))
		keyRange := int(size) * 2
		ops := 4000
		if size >= 1024 {
			ops = 20000
		}
		// Combining off: even a window-1 pipeline merges adjacent same-key
		// requests (the merge check precedes the drain), and direct mode
		// canonically never combines — the sequential oracle must not either.
		gp := newGovPair(t, size, 1, ops+64, table.CombineOff)
		var batch []table.Request
		for i := 0; i < ops; i++ {
			var k uint64
			switch rng.Intn(20) {
			case 0:
				k = table.EmptyKey
			case 1:
				k = table.TombstoneKey
			default:
				k = uint64(rng.Intn(keyRange)) + 1
			}
			batch = append(batch, table.Request{
				Op: table.Op(rng.Intn(4)), Key: k,
				Value: uint64(rng.Intn(1 << 16)), ID: uint64(i),
			})
			if len(batch) >= 1+rng.Intn(32) {
				gp.submit(batch)
				batch = batch[:0]
				if rng.Intn(4) == 0 {
					gp.flush()
					gp.compareStrict("mid-run")
				}
			}
		}
		gp.submit(batch)
		gp.flush()
		gp.compareStrict("final")
		if gp.pipeT.Len() != gp.dirT.Len() {
			t.Fatalf("size %d: Len diverged: pipelined %d direct %d",
				size, gp.pipeT.Len(), gp.dirT.Len())
		}
		sp, sd := gp.pipeT.NewSync(), gp.dirT.NewSync()
		for k := uint64(1); k <= uint64(keyRange); k++ {
			vp, okp := sp.Get(k)
			vd, okd := sd.Get(k)
			if vp != vd || okp != okd {
				t.Fatalf("size %d key %d: pipelined (%d,%v) direct (%d,%v)",
					size, k, vp, okp, vd, okd)
			}
		}
	}
}

// TestDirectPipelinedEquivalence is the out-of-order half: against deep
// pipelines (which complete out of submission order), per-ID responses and
// outcome stats must still match wherever the pipelined result is
// deterministic — batches of distinct keys on a table that never saturates
// (no Deletes, fill well under capacity), with flushes between batches.
// Near-full tables are excluded by construction: which of two racing
// inserts wins the last slot is order-dependent in the pipelined mode by
// documented design, so there is no sequential answer to pin there.
func TestDirectPipelinedEquivalence(t *testing.T) {
	sizes := []uint64{64, 251, 1024}
	windows := []int{4, 16}
	for _, size := range sizes {
		for _, window := range windows {
			rng := rand.New(rand.NewSource(int64(size)*17 + int64(window)))
			keyRange := int(size) / 2 // never saturates (no deletes below)
			ops := 6000
			gp := newGovPair(t, size, window, ops+64, table.CombineOn)
			var nextID uint64
			batch := make([]table.Request, 0, 32)
			inBatch := make(map[uint64]bool, 32)
			flushBatch := func(what string) {
				gp.submit(batch)
				gp.flush()
				gp.compare(what)
				batch = batch[:0]
				for kk := range inBatch {
					delete(inBatch, kk)
				}
			}
			for i := 0; i < ops; i++ {
				var k uint64
				switch rng.Intn(24) {
				case 0:
					k = table.EmptyKey
				case 1:
					k = table.TombstoneKey
				default:
					k = uint64(rng.Intn(keyRange)) + 1
				}
				if inBatch[k] {
					// Same-key pairs inside one window have no deterministic
					// pipelined outcome to compare against: flush first.
					flushBatch("same-key boundary")
				}
				inBatch[k] = true
				id := nextID
				nextID++
				batch = append(batch, table.Request{
					Op:  []table.Op{table.Get, table.Put, table.Upsert}[rng.Intn(3)],
					Key: k, Value: uint64(rng.Intn(1 << 16)), ID: id,
				})
				if len(batch) >= 1+rng.Intn(32) {
					flushBatch("batch")
				}
			}
			flushBatch("final")
			if gp.pipeT.Len() != gp.dirT.Len() {
				t.Fatalf("size %d window %d: Len diverged: pipelined %d direct %d",
					size, window, gp.pipeT.Len(), gp.dirT.Len())
			}
			sp, sd := gp.pipeT.NewSync(), gp.dirT.NewSync()
			for k := uint64(1); k <= uint64(keyRange); k++ {
				vp, okp := sp.Get(k)
				vd, okd := sd.Get(k)
				if vp != vd || okp != okd {
					t.Fatalf("size %d window %d key %d: pipelined (%d,%v) direct (%d,%v)",
						size, window, k, vp, okp, vd, okd)
				}
			}
		}
	}
}

// TestDirectEquivalenceScalarKernel re-runs a condensed sequential
// equivalence check on the scalar-kernel ablation path (directScalar vs
// processScalar at window 1 — same execution order, full bit-identity).
func TestDirectEquivalenceScalarKernel(t *testing.T) {
	tp := New(Config{Slots: 64, PrefetchWindow: 1, ProbeKernel: table.KernelScalar, Combining: table.CombineOff})
	td := New(Config{Slots: 64, PrefetchWindow: 1, ProbeKernel: table.KernelScalar, Combining: table.CombineOff, Governor: table.GovernorDirect})
	gp := &govPair{
		t: t, pipeT: tp, dirT: td,
		pipe: tp.NewHandle(), direct: td.NewHandle(),
		rPipe: make([]table.Response, 8192), rDir: make([]table.Response, 8192),
	}
	rng := rand.New(rand.NewSource(99))
	var batch []table.Request
	for i := 0; i < 6000; i++ {
		k := uint64(rng.Intn(100)) + 1
		batch = append(batch, table.Request{Op: table.Op(rng.Intn(4)), Key: k, Value: 3, ID: uint64(i)})
		if len(batch) >= 24 {
			gp.submit(batch)
			gp.flush()
			gp.compareStrict("scalar boundary")
			batch = batch[:0]
		}
	}
	gp.submit(batch)
	gp.flush()
	gp.compareStrict("scalar final")
}

// TestGovernorFlipMidStream exercises decision flips between batches under
// -race: handles on one GovernorAuto table alternate between the direct and
// full-pipelined configurations at empty-pipeline boundaries (exactly where
// govApply actuates) while hammering a shared key set; the shared controller
// keeps stepping from everyone's sensor feeds concurrently. The final counts
// must equal the op count regardless of which mode executed each batch.
func TestGovernorFlipMidStream(t *testing.T) {
	tbl := New(Config{Slots: 4096, Governor: table.GovernorAuto})
	keys := workload.UniqueKeys(21, 64)
	const goroutines = 8
	const rounds = 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tbl.NewHandle()
			full := governor.Decision{Window: DefaultPrefetchWindow, Combine: true, Filter: true}
			dir := governor.Decision{Direct: true, Window: DefaultPrefetchWindow, Filter: true}
			for r := 0; r < rounds; r++ {
				h.UpsertBatch(keys, 1) // flushes internally: pipeline empty after
				if (r+g)%2 == 0 {
					h.applyDecision(dir)
				} else {
					h.applyDecision(full)
				}
			}
		}(g)
	}
	wg.Wait()

	s := tbl.NewSync()
	for _, k := range keys {
		if v, ok := s.Get(k); !ok || v != goroutines*rounds {
			t.Fatalf("key %d: count (%d, %v), want %d", k, v, ok, goroutines*rounds)
		}
	}
}

// TestGovernorOffIsUngoverned pins the bit-identity contract for the zero
// value: GovernorOff attaches no governor at all, so Submit/Flush run the
// exact pre-governor code path (one nil check) and GovernorState reports
// not-ok.
func TestGovernorOffIsUngoverned(t *testing.T) {
	tbl := New(Config{Slots: 64})
	if tbl.gov != nil {
		t.Fatal("GovernorOff table allocated a governor")
	}
	if _, _, _, ok := tbl.GovernorState(); ok {
		t.Fatal("GovernorState ok on an ungoverned table")
	}
	h := tbl.NewHandle()
	if h.gov != nil || h.direct {
		t.Fatal("ungoverned handle carries governor state")
	}
}

// TestGovernorConfigWiring pins the constructed capability bounds: the auto
// controller must be built from the table's effective configuration, and the
// forced-direct governor must report a pinned direct decision.
func TestGovernorConfigWiring(t *testing.T) {
	auto := New(Config{Slots: 64, Governor: table.GovernorAuto})
	if auto.gov == nil {
		t.Fatal("GovernorAuto table has no governor")
	}
	if d, _, _, ok := auto.GovernorState(); !ok || d.Direct {
		t.Fatalf("auto initial state: ok=%v d=%v (want pipelined start)", ok, d)
	}
	dir := New(Config{Slots: 64, Governor: table.GovernorDirect})
	d, _, pinned, ok := dir.GovernorState()
	if !ok || !pinned || !d.Direct {
		t.Fatalf("direct state: ok=%v pinned=%v d=%v", ok, pinned, d)
	}
	h := dir.NewHandle()
	if !h.direct {
		t.Fatal("GovernorDirect handle did not start in direct mode")
	}
	// Capability clamp: a combining-off table must never actuate combining.
	off := New(Config{Slots: 64, Combining: table.CombineOff, Governor: table.GovernorAuto})
	ho := off.NewHandle()
	ho.applyDecision(governor.Decision{Window: 8, Combine: true, Filter: true})
	if ho.combine {
		t.Fatal("combining actuated on a CombineOff table")
	}
}

// TestDirectSubmitZeroAlloc pins the direct op path's zero-allocation
// guarantee (acceptance criterion: direct mode allocates nothing per op).
func TestDirectSubmitZeroAlloc(t *testing.T) {
	tbl := New(Config{Slots: 1 << 12, Governor: table.GovernorDirect})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(5, 512)
	reqs := make([]table.Request, len(keys))
	for i, k := range keys {
		reqs[i] = table.Request{Op: table.Upsert, Key: k, Value: 1, ID: uint64(i)}
	}
	resps := make([]table.Response, len(keys))
	if avg := testing.AllocsPerRun(100, func() {
		rem := reqs
		for len(rem) > 0 {
			n, _ := h.Submit(rem, resps)
			rem = rem[n:]
		}
	}); avg != 0 {
		t.Fatalf("direct Upsert Submit allocates %.1f per run, want 0", avg)
	}
	for i, k := range keys {
		reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i)}
	}
	if avg := testing.AllocsPerRun(100, func() {
		rem := reqs
		for len(rem) > 0 {
			n, _ := h.Submit(rem, resps)
			rem = rem[n:]
		}
	}); avg != 0 {
		t.Fatalf("direct Get Submit allocates %.1f per run, want 0", avg)
	}
}
