package dramhit

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// combinePair drives two otherwise-identical tables — one per combining
// setting — through the same request stream with the same flush boundaries.
// Combining reorders same-key Get/write pairs (a forwarded Get is ordered
// after the write it forwards from), so responses are compared as per-ID
// multisets rather than positionally, and table state is compared at flush
// points on workloads whose per-segment effects commute.
type combinePair struct {
	t        *testing.T
	on, off  *Handle
	onT, ofT *Table
	rOn, rOf []table.Response
	nOn, nOf int
}

func newCombinePair(t *testing.T, slots uint64, window, respCap int) *combinePair {
	on := New(Config{Slots: slots, PrefetchWindow: window, Combining: table.CombineOn})
	off := New(Config{Slots: slots, PrefetchWindow: window, Combining: table.CombineOff})
	return &combinePair{
		t:   t,
		onT: on, ofT: off,
		on: on.NewHandle(), off: off.NewHandle(),
		rOn: make([]table.Response, respCap),
		rOf: make([]table.Response, respCap),
	}
}

func (cp *combinePair) submit(reqs []table.Request) {
	cp.t.Helper()
	remN, remF := reqs, reqs
	for len(remN) > 0 || len(remF) > 0 {
		if len(remN) > 0 {
			n, nr := cp.on.Submit(remN, cp.rOn[cp.nOn:])
			remN = remN[n:]
			cp.nOn += nr
		}
		if len(remF) > 0 {
			n, nr := cp.off.Submit(remF, cp.rOf[cp.nOf:])
			remF = remF[n:]
			cp.nOf += nr
		}
	}
}

func (cp *combinePair) flush() {
	cp.t.Helper()
	for {
		n, done := cp.on.Flush(cp.rOn[cp.nOn:])
		cp.nOn += n
		if done {
			break
		}
	}
	for {
		n, done := cp.off.Flush(cp.rOf[cp.nOf:])
		cp.nOf += n
		if done {
			break
		}
	}
}

// compare checks the response ID multisets and the completion counters; it
// does not compare values (see combinePair) or probe counters (a merged
// request deliberately skips the probe).
func (cp *combinePair) compare(what string) {
	cp.t.Helper()
	if cp.nOn != cp.nOf {
		cp.t.Fatalf("%s: on wrote %d responses, off %d", what, cp.nOn, cp.nOf)
	}
	ids := make(map[uint64]int, cp.nOn)
	for _, r := range cp.rOn[:cp.nOn] {
		ids[r.ID]++
	}
	for _, r := range cp.rOf[:cp.nOf] {
		ids[r.ID]--
	}
	for id, d := range ids {
		if d != 0 {
			cp.t.Fatalf("%s: response ID %d appears %+d more times with combining on", what, id, d)
		}
	}
	cp.nOn, cp.nOf = 0, 0
	so, sf := cp.on.Stats(), cp.off.Stats()
	if so.Gets != sf.Gets || so.Puts != sf.Puts || so.Upserts != sf.Upserts || so.Deletes != sf.Deletes {
		cp.t.Fatalf("%s: completion counts diverged:\non  %+v\noff %+v", what, so, sf)
	}
	if sf.CombinedUpserts != 0 || sf.PiggybackedGets != 0 || sf.ForwardedGets != 0 {
		cp.t.Fatalf("%s: combining-off handle counted combines: %+v", what, sf)
	}
}

// stateEqual asserts both tables hold the same value for every key in keys
// (compared through the synchronous adapter after a full flush).
func (cp *combinePair) stateEqual(what string, keys []uint64) {
	cp.t.Helper()
	so, sf := cp.onT.NewSync(), cp.ofT.NewSync()
	for _, k := range keys {
		vo, oko := so.Get(k)
		vf, okf := sf.Get(k)
		if vo != vf || oko != okf {
			cp.t.Fatalf("%s: key %d diverged: on (%d,%v) off (%d,%v)", what, k, vo, oko, vf, okf)
		}
	}
}

// TestCombineEquivalenceProperty is the on-vs-off property test: over
// randomized hot-key workloads whose per-segment effects commute (Upserts
// fold, Puts of a key always store the same value, Deletes target keys not
// otherwise written in the segment), the two settings must complete the
// same requests, answer the same Gets, and agree on the table state at
// every flush boundary — while the combining side actually combines.
func TestCombineEquivalenceProperty(t *testing.T) {
	sizes := []uint64{16, 64, 251, 1024}
	windows := []int{4, 16, 64}
	for _, size := range sizes {
		for _, window := range windows {
			rng := rand.New(rand.NewSource(int64(size)*131 + int64(window)))
			nkeys := int(size) / 2
			keys := make([]uint64, nkeys)
			for i := range keys {
				keys[i] = uint64(i) + 3
			}
			cp := newCombinePair(t, size, window, 30000)
			var nextID uint64
			for seg := 0; seg < 6; seg++ {
				// A rotating eighth of the keys is delete-only this segment,
				// the rest write-only — no segment orders a Delete against a
				// write of the same key (which would not commute), and the
				// bounded churn keeps tombstones from filling the table (a
				// full table fails order-dependently).
				var batch []table.Request
				for i := 0; i < 200; i++ {
					var r table.Request
					r.ID = nextID
					nextID++
					ki := rng.Intn(nkeys)
					if hot := rng.Intn(3) == 0; hot {
						ki = rng.Intn(4) * nkeys / 4 // concentrate on a few keys
					}
					r.Key = keys[ki]
					switch {
					case (ki+seg)%8 == 7:
						if rng.Intn(2) == 0 {
							r.Op = table.Delete
						} else {
							r.Op = table.Get
						}
					default:
						// Fix each key's write kind for the whole segment:
						// folding may reorder an Upsert across an intervening
						// same-key Put (a legal reordering), so Put and Upsert
						// on one key inside one segment would not commute.
						putKey := (ki+seg)%3 == 0
						switch {
						case rng.Intn(4) == 3:
							r.Op = table.Get
						case putKey:
							r.Op = table.Put
							r.Value = r.Key * 7 // per-key-deterministic store
						default:
							r.Op = table.Upsert
							r.Value = uint64(rng.Intn(100))
						}
					}
					batch = append(batch, r)
					if len(batch) >= 1+rng.Intn(24) {
						cp.submit(batch)
						batch = batch[:0]
					}
				}
				cp.submit(batch)
				cp.flush()
				cp.compare("segment")
				cp.stateEqual("segment", keys)
			}
			if so := cp.on.Stats(); so.CombinedUpserts+so.PiggybackedGets+so.ForwardedGets == 0 && window > 1 {
				t.Fatalf("size %d window %d: hot-key workload never combined: %+v", size, window, so)
			}
		}
	}
}

// TestCombineForwardingExact pins the merge rules' exact values on a quiet
// table: folded upserts sum, forwarded Gets see the in-flight value at the
// leader's completion, piggybacked Gets share one probe result, and every
// request is counted exactly once.
func TestCombineForwardingExact(t *testing.T) {
	tbl := New(Config{Slots: 1 << 12, PrefetchWindow: 16})
	h := tbl.NewHandle()
	const k = 99
	resps := make([]table.Response, 16)

	reqs := []table.Request{
		{Op: table.Upsert, Key: k, Value: 5, ID: 0},
		{Op: table.Get, Key: k, ID: 1},
		{Op: table.Get, Key: k, ID: 2},
		{Op: table.Upsert, Key: k, Value: 3, ID: 3},
		{Op: table.Get, Key: k, ID: 4},
	}
	if n, _ := h.Submit(reqs, resps); n != len(reqs) {
		t.Fatalf("submit consumed %d", n)
	}
	nresp, done := h.Flush(resps)
	if !done {
		t.Fatal("flush not done")
	}
	if nresp != 3 {
		t.Fatalf("got %d responses, want 3", nresp)
	}
	for _, r := range resps[:nresp] {
		if !r.Found || r.Value != 8 {
			t.Fatalf("forwarded Get %d = (%d,%v), want (8,true)", r.ID, r.Value, r.Found)
		}
	}
	st := h.Stats()
	if st.Upserts != 2 || st.CombinedUpserts != 1 {
		t.Fatalf("upsert accounting: %+v", st)
	}
	if st.Gets != 3 || st.ForwardedGets != 3 || st.Hits != 3 {
		t.Fatalf("forwarded-get accounting: %+v", st)
	}
	if st.Lines != 1 {
		t.Fatalf("combined burst touched %d lines, want 1", st.Lines)
	}

	// Piggybacking: three Gets, one probe.
	gets := []table.Request{
		{Op: table.Get, Key: k, ID: 10},
		{Op: table.Get, Key: k, ID: 11},
		{Op: table.Get, Key: k, ID: 12},
	}
	h.Submit(gets, resps)
	nresp, _ = h.Flush(resps)
	if nresp != 3 {
		t.Fatalf("piggyback responses %d", nresp)
	}
	for _, r := range resps[:nresp] {
		if !r.Found || r.Value != 8 {
			t.Fatalf("piggybacked Get %d = (%d,%v), want (8,true)", r.ID, r.Value, r.Found)
		}
	}
	st2 := h.Stats()
	if st2.PiggybackedGets != 2 || st2.Lines != st.Lines+1 {
		t.Fatalf("piggyback accounting: %+v", st2)
	}

	// Delete is a barrier: the second upsert must not fold across it.
	barrier := []table.Request{
		{Op: table.Upsert, Key: k, Value: 1, ID: 20},
		{Op: table.Delete, Key: k, ID: 21},
		{Op: table.Upsert, Key: k, Value: 1, ID: 22},
	}
	h.Submit(barrier, resps)
	h.Flush(resps)
	st3 := h.Stats()
	if st3.CombinedUpserts != st2.CombinedUpserts {
		t.Fatalf("upsert folded across a Delete barrier: %+v", st3)
	}
	if v, ok := tbl.NewSync().Get(k); !ok || v != 1 {
		t.Fatalf("after barrier sequence: (%d,%v), want (1,true)", v, ok)
	}
}

// TestCombineChainBackpressure starves the response buffer below the chain
// length: the leader parks mid-emission at the queue head, Flush reports
// not-done, and emission resumes without losing, duplicating or corrupting
// a single response. A Get submitted while the leader is parked must not
// combine onto the already-resolved probe (its slot's ptag is cleared), but
// must still be answered.
func TestCombineChainBackpressure(t *testing.T) {
	tbl := New(Config{Slots: 1 << 10, PrefetchWindow: 16})
	h := tbl.NewHandle()
	const k = 7
	big := make([]table.Response, 4)
	h.Submit([]table.Request{{Op: table.Put, Key: k, Value: 42, ID: 0}}, big)
	h.Flush(big)

	reqs := make([]table.Request, 8)
	for i := range reqs {
		reqs[i] = table.Request{Op: table.Get, Key: k, ID: uint64(i + 1)}
	}
	h.Submit(reqs, big[:0])

	one := make([]table.Response, 1)
	seen := make(map[uint64]uint64)
	flushes := 0
	for {
		n, done := h.Flush(one)
		if n > 0 {
			if _, dup := seen[one[0].ID]; dup {
				t.Fatalf("duplicate response for ID %d", one[0].ID)
			}
			seen[one[0].ID] = one[0].Value
		}
		flushes++
		if flushes == 2 {
			// Mid-park: this Get must become a fresh leader, not combine
			// onto the resolved one.
			h.Submit([]table.Request{{Op: table.Get, Key: k, ID: 100}}, one[:0])
		}
		if done {
			break
		}
		if flushes > 100 {
			t.Fatal("flush livelocked")
		}
	}
	if len(seen) != 9 {
		t.Fatalf("got %d distinct responses, want 9 (%v)", len(seen), seen)
	}
	for id, v := range seen {
		if v != 42 {
			t.Fatalf("ID %d got value %d, want 42", id, v)
		}
	}
	if st := h.Stats(); st.PiggybackedGets != 7 {
		t.Fatalf("PiggybackedGets = %d, want 7 (parked leader must not absorb)", st.PiggybackedGets)
	}
}

// TestCombineIDMultiset submits a randomized all-ops stream — duplicates,
// reserved keys, Delete barriers — with unique IDs and asserts through the
// completion hook that every submitted request completes exactly once, and
// through the responses that every Get is answered exactly once. This is
// the async contract the combine path must preserve.
func TestCombineIDMultiset(t *testing.T) {
	for _, kernel := range []table.ProbeKernel{table.KernelSWAR, table.KernelScalar} {
		tbl := New(Config{Slots: 256, PrefetchWindow: 16, ProbeKernel: kernel})
		h := tbl.NewHandle()
		completed := make(map[uint64]int)
		h.SetLatencyHook(func(req table.Request, _ time.Duration) { completed[req.ID]++ })
		answered := make(map[uint64]int)
		rng := rand.New(rand.NewSource(42))
		resps := make([]table.Response, 64)
		var nextID uint64
		gets := 0
		for batch := 0; batch < 400; batch++ {
			reqs := make([]table.Request, 1+rng.Intn(24))
			for i := range reqs {
				k := uint64(rng.Intn(12)) // dense duplication
				switch rng.Intn(16) {
				case 0:
					k = table.EmptyKey
				case 1:
					k = table.TombstoneKey
				}
				op := table.Op(rng.Intn(4))
				if op == table.Get {
					gets++
				}
				reqs[i] = table.Request{Op: op, Key: k, Value: 1, ID: nextID}
				nextID++
			}
			rem := reqs
			for len(rem) > 0 {
				n, nr := h.Submit(rem, resps)
				rem = rem[n:]
				for _, r := range resps[:nr] {
					answered[r.ID]++
				}
			}
			if rng.Intn(5) == 0 {
				for {
					nr, done := h.Flush(resps)
					for _, r := range resps[:nr] {
						answered[r.ID]++
					}
					if done {
						break
					}
				}
			}
		}
		for {
			nr, done := h.Flush(resps)
			for _, r := range resps[:nr] {
				answered[r.ID]++
			}
			if done {
				break
			}
		}
		if uint64(len(completed)) != nextID {
			t.Fatalf("kernel %v: %d distinct completions, want %d", kernel, len(completed), nextID)
		}
		for id, n := range completed {
			if n != 1 {
				t.Fatalf("kernel %v: ID %d completed %d times", kernel, id, n)
			}
		}
		if len(answered) != gets {
			t.Fatalf("kernel %v: %d distinct Get responses, want %d", kernel, len(answered), gets)
		}
		for id, n := range answered {
			if n != 1 {
				t.Fatalf("kernel %v: ID %d answered %d times", kernel, id, n)
			}
		}
		st := h.Stats()
		if got := st.Gets + st.Puts + st.Upserts + st.Deletes; got != nextID {
			t.Fatalf("kernel %v: op counters sum to %d, want %d (combined ops must count exactly once)", kernel, got, nextID)
		}
	}
}

// TestCombineZeroExtraTransactions pins the headline claim: a merged
// request adds zero cache-line loads and zero atomics. N duplicate upserts
// in one window must cost exactly one line and the same CAS count one
// upsert costs.
func TestCombineZeroExtraTransactions(t *testing.T) {
	tbl := New(Config{Slots: 1 << 12, PrefetchWindow: 16})
	h := tbl.NewHandle()
	var none []table.Response
	h.Submit([]table.Request{{Op: table.Upsert, Key: 5, Value: 1}}, none)
	h.Flush(none)
	base := h.Stats()

	reqs := make([]table.Request, 64)
	for i := range reqs {
		reqs[i] = table.Request{Op: table.Upsert, Key: 5, Value: 1, ID: uint64(i)}
	}
	rem := reqs
	for len(rem) > 0 {
		n, _ := h.Submit(rem, none)
		rem = rem[n:]
	}
	h.Flush(none)
	st := h.Stats()
	if st.Upserts-base.Upserts != 64 || st.CombinedUpserts-base.CombinedUpserts != 63 {
		t.Fatalf("fold accounting: %+v (base %+v)", st, base)
	}
	if lines := st.Lines - base.Lines; lines != 1 {
		t.Fatalf("64 duplicate upserts touched %d lines, want 1", lines)
	}
	if cas := st.CASAttempts - base.CASAttempts; cas != 1 {
		t.Fatalf("64 duplicate upserts issued %d atomics, want 1", cas)
	}
	if v, ok := tbl.NewSync().Get(5); !ok || v != 65 {
		t.Fatalf("folded sum: (%d,%v), want (65,true)", v, ok)
	}
}

// TestCombineConcurrentFoldRaces races duplicate-heavy upsert streams from
// many handles on one combining table: every fold must survive concurrent
// writers, so the final counts are exact. Run under -race in CI.
func TestCombineConcurrentFoldRaces(t *testing.T) {
	tbl := New(Config{Slots: 1 << 12})
	keys := workload.UniqueKeys(11, 32)
	const goroutines = 6
	const rounds = 200
	const dups = 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tbl.NewHandle()
			rng := rand.New(rand.NewSource(int64(g) * 977))
			reqs := make([]table.Request, 0, len(keys)*dups)
			var none []table.Response
			for r := 0; r < rounds; r++ {
				reqs = reqs[:0]
				for d := 0; d < dups; d++ {
					for _, k := range keys {
						reqs = append(reqs, table.Request{Op: table.Upsert, Key: k, Value: 1})
					}
				}
				rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
				rem := reqs
				for len(rem) > 0 {
					n, _ := h.Submit(rem, none)
					rem = rem[n:]
				}
				if _, done := h.Flush(none); !done {
					t.Error("flush with nil resps not done")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := tbl.NewSync()
	for _, k := range keys {
		if v, ok := s.Get(k); !ok || v != goroutines*rounds*dups {
			t.Fatalf("key %d: (%d,%v), want %d", k, v, ok, goroutines*rounds*dups)
		}
	}
}

// TestCombineConcurrentReadersWriters races piggybacking readers against
// folding writers; every Get must be answered with a value some prefix of
// the upsert stream could have produced (0..total, monotonicity is not
// guaranteed across handles). Run under -race in CI.
func TestCombineConcurrentReadersWriters(t *testing.T) {
	tbl := New(Config{Slots: 1 << 10})
	keys := workload.UniqueKeys(13, 8)
	const writers, readers, rounds = 3, 3, 120
	const total = writers * rounds
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tbl.NewHandle()
			var none []table.Response
			for r := 0; r < rounds; r++ {
				reqs := make([]table.Request, 0, len(keys))
				for _, k := range keys {
					reqs = append(reqs, table.Request{Op: table.Upsert, Key: k, Value: 1})
				}
				rem := reqs
				for len(rem) > 0 {
					n, _ := h.Submit(rem, none)
					rem = rem[n:]
				}
				h.Flush(none)
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			h := tbl.NewHandle()
			resps := make([]table.Response, 64)
			for r := 0; r < rounds; r++ {
				reqs := make([]table.Request, 0, len(keys)*2)
				for d := 0; d < 2; d++ {
					for _, k := range keys {
						reqs = append(reqs, table.Request{Op: table.Get, Key: k, ID: k})
					}
				}
				rem := reqs
				check := func(rs []table.Response) {
					for _, resp := range rs {
						if resp.Found && resp.Value > total {
							t.Errorf("reader %d: key %d read impossible count %d > %d", rd, resp.ID, resp.Value, total)
						}
					}
				}
				for len(rem) > 0 {
					n, nr := h.Submit(rem, resps)
					rem = rem[n:]
					check(resps[:nr])
				}
				for {
					nr, done := h.Flush(resps)
					check(resps[:nr])
					if done {
						break
					}
				}
			}
		}(rd)
	}
	wg.Wait()
}

// TestCombineConfigWiring pins the Config contract: combining defaults on,
// off is selectable, the setting is exposed, and — unlike the tag filter —
// the scalar kernel combines too (the merge decision never reads the
// table, so it is kernel-independent and the kernel equivalence tests rely
// on both kernels combining identically).
func TestCombineConfigWiring(t *testing.T) {
	if def := New(Config{Slots: 16}); def.Combining() != table.CombineOn {
		t.Fatalf("default Combining() = %v, want on", def.Combining())
	}
	if off := New(Config{Slots: 16, Combining: table.CombineOff}); off.Combining() != table.CombineOff {
		t.Fatalf("explicit off: Combining() = %v", off.Combining())
	}
	sc := New(Config{Slots: 16, ProbeKernel: table.KernelScalar})
	if sc.Combining() != table.CombineOn {
		t.Fatalf("scalar kernel: Combining() = %v, want on", sc.Combining())
	}
	h := New(Config{Slots: 16, Combining: table.CombineOff}).NewHandle()
	if h.ptags != nil {
		t.Fatal("combining-off handle allocated a ptag sidecar")
	}
	if on := New(Config{Slots: 16}).NewHandle(); on.ptags == nil {
		t.Fatal("combining-on handle missing its ptag sidecar")
	}
}
